# relser — Relative Serializability in Go

GO ?= go

.PHONY: all build vet test race cover bench experiments fuzz tools clean ci fmt-check

all: build vet test

# Everything CI runs (see .github/workflows/ci.yml).
ci: fmt-check vet build race

# Fail if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per experiment plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every experiment report of EXPERIMENTS.md (E1-E14).
experiments:
	$(GO) run ./cmd/rsbench

# Short fuzzing pass over the parsers.
fuzz:
	$(GO) test -fuzz=FuzzParseOp -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzParseSchedule -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzParseInstance -fuzztime=10s ./internal/core/

tools:
	$(GO) build -o bin/rscheck ./cmd/rscheck
	$(GO) build -o bin/rsenum ./cmd/rsenum
	$(GO) build -o bin/rssim ./cmd/rssim
	$(GO) build -o bin/rsbench ./cmd/rsbench
	$(GO) build -o bin/rschop ./cmd/rschop
	$(GO) build -o bin/rsrecover ./cmd/rsrecover

clean:
	rm -rf bin
	$(GO) clean -testcache
