# relser — Relative Serializability in Go

GO ?= go

# Pinned tool versions, reproducible across CI runs (satellite of the
# rsvet PR: no more @latest drift in required checks).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
BENCHSTAT_VERSION ?= v0.0.0-20240604174448-3b48cf0e4604

.PHONY: all build vet test race cover bench experiments fuzz tools clean ci fmt-check lint staticcheck govulncheck vet-tool rsvet rsvet-spec rsvet-infer test-engine durability-matrix smoke-ops replay-regress

all: build vet test

# Everything CI runs (see .github/workflows/ci.yml).
ci: fmt-check lint build race

# Required lint: go vet, the repo's own rsvet analyzers, staticcheck
# and govulncheck. CI installs the external tools pinned; a local tree
# without them fails here with instructions rather than silently
# passing.
lint: vet rsvet rsvet-spec rsvet-infer staticcheck govulncheck

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not found; install with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
		echo "(skipping locally; CI runs it as a required check)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not found; install with:"; \
		echo "  go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)"; \
		echo "(skipping locally; CI runs it as a required check)"; \
	fi

# Build the repository's own static-analysis tool.
vet-tool:
	$(GO) build -o bin/rsvet ./cmd/rsvet

# Run the custom analyzers over the whole tree — internal/, cmd/ and
# examples/ alike (blocking CI gate). The four interprocedural
# contract analyzers (detlint, walsync, ctxflow, hookshape) run here
# with the registry and lock checks.
rsvet:
	$(GO) run ./cmd/rsvet ./...

# Statically triage the example specs: the partitioned spec must
# certify, the degenerate spec must be rejected, fig1 sits in between
# (warnings only). Exit-code smoke mirrors the CI step.
rsvet-spec:
	$(GO) run ./cmd/rsvet -spec -certify examples/specs/partitioned.txt
	@if $(GO) run ./cmd/rsvet -spec examples/specs/degenerate.txt; then \
		echo "rsvet-spec: degenerate.txt unexpectedly passed"; exit 1; \
	else echo "rsvet-spec: degenerate.txt rejected as expected"; fi
	$(GO) run ./cmd/rsvet -spec examples/specs/fig1.txt

# Static spec synthesis smoke: inferring a spec from the partitioned
# example workload's code must produce a certified full chop (the same
# spec examples/specs/partitioned.txt declares by hand).
rsvet-infer:
	$(GO) run ./cmd/rsvet -infer ./examples/partitioned

# Fail if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused engine-pipeline gate (CI: test job): the serial/concurrent
# parity corpus and per-stage cancellation unwind, race-checked and
# repeated to shake out scheduling-dependent flakes.
test-engine:
	$(GO) test -race -count=2 ./internal/engine ./internal/txn \
		-run 'TestSerialConcurrentParity|TestSerialReplayDeterminism|TestCancel|TestRunOptionsTimeout|TestCorePipeline|TestAbortAll|TestStageNames|TestNewCoreValidation'

# Live ops-endpoint smoke (CI: test job): a run with -ops serving,
# scraped for the canonical /metrics, /healthz and /debug keys while
# the endpoint lingers after the run.
smoke-ops:
	sh scripts/smoke_ops.sh

# Replay-regression gate (CI: test job): every committed .rsrec in
# examples/recordings/ must replay byte-identically, then a fresh
# record/backfill/corrupt cycle certifies rsreplay's exit-code
# contract (0 identical, 3 divergence, 4 unreadable).
replay-regress:
	sh scripts/replay_regress.sh

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per experiment plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# The scheduler/graph/storage hot-path benchmarks the CI perf gate
# compares with benchstat (see .github/workflows/ci.yml, job: bench;
# install the pinned tool with
# `go install golang.org/x/perf/cmd/benchstat@$(BENCHSTAT_VERSION)`).
bench-hot:
	$(GO) test -run 'XXX' -bench . -benchmem -count=5 ./internal/txn ./internal/graph ./internal/storage

# Durability certification matrix (CI: durability job): shards
# {1,4,16} x {legacy WAL, segmented group-commit log}, recovery
# certified with rsrecover -strict plus the deterministic
# first-failing-shard damage leg. RACE=1 for the race detector.
durability-matrix:
	sh scripts/durability_matrix.sh

# Regenerate every experiment report of EXPERIMENTS.md (E1-E19).
experiments:
	$(GO) run ./cmd/rsbench

# Short fuzzing pass over the parsers.
fuzz:
	$(GO) test -fuzz=FuzzParseOp -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzParseSchedule -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzParseInstance -fuzztime=10s ./internal/core/

tools: vet-tool
	$(GO) build -o bin/rscheck ./cmd/rscheck
	$(GO) build -o bin/rsenum ./cmd/rsenum
	$(GO) build -o bin/rssim ./cmd/rssim
	$(GO) build -o bin/rsbench ./cmd/rsbench
	$(GO) build -o bin/rschop ./cmd/rschop
	$(GO) build -o bin/rsrecover ./cmd/rsrecover

clean:
	rm -rf bin
	$(GO) clean -testcache
