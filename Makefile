# relser — Relative Serializability in Go

GO ?= go

.PHONY: all build vet test race cover bench experiments fuzz tools clean ci fmt-check lint staticcheck

all: build vet test

# Everything CI runs (see .github/workflows/ci.yml).
ci: fmt-check lint build race

# Required lint: go vet plus staticcheck. CI installs staticcheck; a
# local tree without it fails here with instructions rather than
# silently passing.
lint: vet staticcheck

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not found; install with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@latest"; \
		echo "(skipping locally; CI runs it as a required check)"; \
	fi

# Fail if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per experiment plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# The scheduler/graph hot-path benchmarks the CI perf gate compares
# with benchstat (see .github/workflows/ci.yml, job: bench).
bench-hot:
	$(GO) test -run 'XXX' -bench . -benchmem -count=5 ./internal/txn ./internal/graph

# Regenerate every experiment report of EXPERIMENTS.md (E1-E15).
experiments:
	$(GO) run ./cmd/rsbench

# Short fuzzing pass over the parsers.
fuzz:
	$(GO) test -fuzz=FuzzParseOp -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzParseSchedule -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzParseInstance -fuzztime=10s ./internal/core/

tools:
	$(GO) build -o bin/rscheck ./cmd/rscheck
	$(GO) build -o bin/rsenum ./cmd/rsenum
	$(GO) build -o bin/rssim ./cmd/rssim
	$(GO) build -o bin/rsbench ./cmd/rsbench
	$(GO) build -o bin/rschop ./cmd/rschop
	$(GO) build -o bin/rsrecover ./cmd/rsrecover

clean:
	rm -rf bin
	$(GO) clean -testcache
