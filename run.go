package relser

import (
	"context"
	"time"

	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

// Execution facade: the runtime side of the reproduction behind one
// context-aware entry point. A run takes a workload (programs plus
// their relative atomicity specification), an online protocol, and
// options; it executes through the engine pipeline (internal/engine)
// and returns the aggregated result, whose committed schedule can be
// certified against Theorem 1 with RunResult.Verify.
type (
	// Protocol is an online concurrency-control policy; construct one
	// with NewProtocol.
	Protocol = sched.Protocol
	// Workload bundles transaction programs with their atomicity
	// specification, initial data, write semantics and invariant.
	Workload = workload.Workload
	// RunOptions tunes a run: seed, multiprogramming level, concurrent
	// (goroutine) execution with sharding, WAL, observability sinks,
	// fault injection, logical deadlines and wall-clock timeout.
	RunOptions = workload.RunOptions
	// RunResult aggregates a run; Verify certifies its committed
	// schedule relatively serializable, RecoveryProperties classifies it
	// in the recoverability hierarchy.
	RunResult = txn.Result
	// Store is the in-memory object store runs execute against.
	Store = storage.Store
)

// Workload constructors and the protocol registry.
var (
	// Banking, CADCAM, LongLived and Synthetic build the paper's
	// workload scenarios (§1, §5).
	Banking   = workload.Banking
	CADCAM    = workload.CADCAM
	LongLived = workload.LongLived
	Synthetic = workload.Synthetic

	// NewProtocol resolves a protocol by name ("nocc", "s2pl", "sgt",
	// "rsgt", "altruistic", ...), binding the workload's oracle to
	// protocols that take one.
	NewProtocol = sched.NewProtocol
)

// Run executes the workload under the protocol with the given options.
// The context governs the whole run: cancellation or deadline expiry
// stops both drivers, unwinds in-flight transactions through the
// engine's Recover stage (effects rolled back, WAL abort records
// appended, store invariant-clean), and fails the run with the
// cancellation cause. The returned store is the one the run executed
// against, usable even when the run itself failed.
func Run(ctx context.Context, w *Workload, p Protocol, opts RunOptions) (*RunResult, *Store, error) {
	return w.RunWithContext(ctx, p, opts)
}

// RunTimeout is Run with a wall-clock budget instead of a caller
// context; zero or negative d means no bound.
func RunTimeout(d time.Duration, w *Workload, p Protocol, opts RunOptions) (*RunResult, *Store, error) {
	opts.Timeout = d
	return w.RunWithContext(context.Background(), p, opts)
}
