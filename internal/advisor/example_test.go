package advisor_test

import (
	"fmt"

	"relser/internal/advisor"
	"relser/internal/core"
)

// ExampleAdvise repairs the classic lost-update rejection: the advisor
// names the single unit split under which the interleaving becomes
// relatively serializable — i.e. the precise atomicity the user is
// being asked to give up.
func ExampleAdvise() {
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.R("x"), core.W("x")),
	)
	s, err := core.ParseSchedule(ts, "r1[x] r2[x] w1[x] w2[x]")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	advice := advisor.Advise(s, core.NewSpec(ts))
	fmt.Println("admissible now:", advice.AlreadyAdmissible)
	for _, sug := range advice.Suggestions {
		fmt.Println("suggest:", sug)
	}
	fmt.Println("repaired spec admits:", core.IsRelativelySerializable(s, advice.Spec))
	// Output:
	// admissible now: false
	// suggest: split Atomicity(T2, T1) after op 0
	// repaired spec admits: true
}
