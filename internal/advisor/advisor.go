// Package advisor answers the practitioner's question the paper's
// model raises: *my execution was rejected — which atomicity do I have
// to give up to admit it?* Relative atomicity specifications are
// conservative by nature (§2: they must anticipate every potential
// conflict), so a rejected schedule often needs only a few extra unit
// boundaries.
//
// Advise inspects the relative serialization graph's cycles. Arcs
// that are purely push-forward or pull-backward (F/B) exist only
// because of unit extents and can be weakened by splitting the unit;
// arcs carrying an I or D component are facts of the execution and
// survive every specification. The advisor repeatedly finds a cycle,
// splits the unit behind one removable arc, and stops when the graph
// is acyclic.
//
// A pleasing consequence of the paper's definitions: repair always
// succeeds. I- and D-arcs follow schedule precedence, so a cycle must
// contain at least one F- or B-arc — and those are exactly the arcs
// unit splitting weakens. The fully breakable specification (every
// operation its own unit) admits every schedule, so Advise converges
// at the latest when it reaches it; Advice.Possible exists for
// defensive completeness and is always true in practice.
package advisor

import (
	"fmt"

	"relser/internal/core"
)

// Suggestion proposes one additional unit boundary:
// Atomicity(Txn, Observer) gains a cut after operation CutAfter.
type Suggestion struct {
	Txn      core.TxnID
	Observer core.TxnID
	CutAfter int
}

// String renders "split Atomicity(T1, T2) after op 1".
func (s Suggestion) String() string {
	return fmt.Sprintf("split Atomicity(T%d, T%d) after op %d", int(s.Txn), int(s.Observer), s.CutAfter)
}

// Advice is the outcome of a specification-repair analysis.
type Advice struct {
	// AlreadyAdmissible: the schedule is relatively serializable under
	// the given specification; no suggestions needed.
	AlreadyAdmissible bool
	// Possible: some relaxation admits the schedule. When false, the
	// schedule's dependency structure is circular and no relative
	// atomicity specification can admit it.
	Possible bool
	// Suggestions lists the unit boundaries to add, in application
	// order.
	Suggestions []Suggestion
	// Spec is the repaired specification (the input plus Suggestions)
	// when Possible; nil otherwise.
	Spec *core.Spec
	// Iterations counts repair rounds (cycles examined).
	Iterations int
}

// maxRounds bounds the repair loop far above any real need (each round
// adds at least one cut; cuts are bounded by total operations).
const maxRounds = 1 << 12

// Advise analyses the schedule under the specification and proposes
// repairs. The input specification is not modified.
func Advise(s *core.Schedule, sp *core.Spec) Advice {
	work := sp.Clone()
	var advice Advice
	for round := 0; round < maxRounds; round++ {
		rsg := core.BuildRSG(s, work)
		cyc := rsg.Cycle()
		if cyc == nil {
			advice.Possible = true
			advice.AlreadyAdmissible = len(advice.Suggestions) == 0
			advice.Iterations = round
			advice.Suggestions, advice.Spec = minimize(s, sp, advice.Suggestions)
			return advice
		}
		sug, ok := removableArc(rsg, cyc, work)
		if !ok {
			advice.Possible = false
			advice.Iterations = round + 1
			advice.Suggestions = nil
			advice.Spec = nil
			return advice
		}
		applied := false
		for _, g := range sug {
			before := work.NumUnits(g.Txn, g.Observer)
			if err := work.CutAfter(g.Txn, g.Observer, g.CutAfter); err != nil {
				continue
			}
			if work.NumUnits(g.Txn, g.Observer) > before {
				advice.Suggestions = append(advice.Suggestions, g)
				applied = true
			}
		}
		if !applied {
			// The removable arc's unit was already fully split: the
			// cycle must be inherent after all (defensive; unreachable
			// when removableArc reports kinds faithfully).
			advice.Possible = false
			advice.Iterations = round + 1
			advice.Suggestions = nil
			advice.Spec = nil
			return advice
		}
	}
	advice.Possible = false
	return advice
}

// minimize greedily drops suggestions that are not needed: each is
// removed in turn and kept out if the remaining set still admits the
// schedule. The result is a locally minimal repair (removing any single
// remaining suggestion breaks admissibility).
func minimize(s *core.Schedule, base *core.Spec, sugs []Suggestion) ([]Suggestion, *core.Spec) {
	kept := append([]Suggestion(nil), sugs...)
	for i := len(kept) - 1; i >= 0; i-- {
		trial := base.Clone()
		for j, g := range kept {
			if j == i {
				continue
			}
			if err := trial.CutAfter(g.Txn, g.Observer, g.CutAfter); err != nil {
				panic(err) // suggestions were validated on creation
			}
		}
		if core.IsRelativelySerializable(s, trial) {
			kept = append(kept[:i], kept[i+1:]...)
		}
	}
	final := base.Clone()
	for _, g := range kept {
		if err := final.CutAfter(g.Txn, g.Observer, g.CutAfter); err != nil {
			panic(err)
		}
	}
	return kept, final
}

// removableArc finds an arc in the cycle whose kinds are purely F
// and/or B and returns the cuts that fully split the unit behind it.
func removableArc(rsg *core.RSG, cyc []core.Op, sp *core.Spec) ([]Suggestion, bool) {
	for i := range cyc {
		u, v := cyc[i], cyc[(i+1)%len(cyc)]
		kinds := rsg.ArcKinds(u, v)
		if kinds == 0 || kinds&(core.IArc|core.DArc) != 0 {
			continue
		}
		var sugs []Suggestion
		if kinds&core.FArc != 0 {
			// u is PushForward(u', txn(v)) for some dependency source
			// u' in u's unit relative to txn(v): split that unit.
			sugs = append(sugs, splitUnit(sp, u.Txn, v.Txn, u.Seq)...)
		}
		if kinds&core.BArc != 0 {
			// v is PullBackward(v', txn(u)): split v's unit relative
			// to txn(u).
			sugs = append(sugs, splitUnit(sp, v.Txn, u.Txn, v.Seq)...)
		}
		if len(sugs) > 0 {
			return sugs, true
		}
	}
	return nil, false
}

// splitUnit proposes cuts at every interior boundary of the unit of
// Atomicity(i, j) containing seq.
func splitUnit(sp *core.Spec, i, j core.TxnID, seq int) []Suggestion {
	start, end := sp.UnitOf(i, seq, j)
	var out []Suggestion
	for p := start; p < end; p++ {
		out = append(out, Suggestion{Txn: i, Observer: j, CutAfter: p})
	}
	return out
}
