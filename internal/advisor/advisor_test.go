package advisor_test

import (
	"math/rand"
	"testing"

	"relser/internal/advisor"
	"relser/internal/core"
	"relser/internal/paperfig"
)

func TestAdviseAlreadyAdmissible(t *testing.T) {
	inst := paperfig.Figure1()
	for _, name := range inst.Names {
		a := advisor.Advise(inst.Schedules[name], inst.Spec)
		if !a.Possible || !a.AlreadyAdmissible || len(a.Suggestions) != 0 {
			t.Errorf("%s: already relatively serializable; advice = %+v", name, a)
		}
	}
}

func TestAdviseRepairsAbsoluteSpec(t *testing.T) {
	// Srs under absolute atomicity is rejected; the advisor must find
	// unit boundaries that admit it, and the repaired spec must indeed
	// admit it.
	inst := paperfig.Figure1()
	srs := inst.Schedules["Srs"]
	abs := core.NewSpec(inst.Set)
	a := advisor.Advise(srs, abs)
	if !a.Possible {
		t.Fatal("Srs is admissible under the Figure 1 spec, so some relaxation exists")
	}
	if a.AlreadyAdmissible || len(a.Suggestions) == 0 {
		t.Fatalf("expected repairs, got %+v", a)
	}
	if !core.IsRelativelySerializable(srs, a.Spec) {
		t.Fatal("repaired specification does not admit the schedule")
	}
	// The input spec must be untouched.
	if !abs.IsAbsolute() {
		t.Fatal("Advise mutated its input specification")
	}
}

func TestAdviseRepairsLostUpdate(t *testing.T) {
	// The classic lost-update interleaving is not conflict serializable
	// — but relative atomicity can *declare* it acceptable: the advisor
	// finds the exact unit split (T2's read/write pair opened to T1)
	// that admits it. The repair names the atomicity the user is being
	// asked to give up.
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.R("x"), core.W("x")),
	)
	s, err := core.ParseSchedule(ts, "r1[x] r2[x] w1[x] w2[x]")
	if err != nil {
		t.Fatal(err)
	}
	a := advisor.Advise(s, core.NewSpec(ts))
	if !a.Possible || a.AlreadyAdmissible {
		t.Fatalf("advice = %+v", a)
	}
	if len(a.Suggestions) == 0 {
		t.Fatal("expected at least one suggested split")
	}
	if !core.IsRelativelySerializable(s, a.Spec) {
		t.Fatal("repaired spec does not admit the schedule")
	}
	if core.IsConflictSerializable(s) {
		t.Fatal("fixture broken: lost update must not be conflict serializable")
	}
}

func TestEveryScheduleAdmissibleUnderFullBreakage(t *testing.T) {
	// The theorem behind the advisor's always-success: I- and D-arcs
	// follow schedule order, so the fully breakable specification
	// (where F/B arcs collapse onto D-arcs) admits everything.
	inst := paperfig.Figure1()
	full := core.NewSpec(inst.Set)
	full.AllowAllPairs()
	for _, name := range inst.Names {
		if !core.IsRelativelySerializable(inst.Schedules[name], full) {
			t.Errorf("%s rejected under full breakage", name)
		}
	}
}

func TestAdviseMatchesFullyBreakableVerdict(t *testing.T) {
	// Property: Advise reports Possible exactly when the fully
	// breakable specification admits the schedule (that spec is the
	// weakest, so it decides feasibility), and repaired specs always
	// admit.
	rng := rand.New(rand.NewSource(321))
	objects := []string{"x", "y", "z"}
	for trial := 0; trial < 200; trial++ {
		nTxn := 2 + rng.Intn(3)
		txns := make([]*core.Transaction, nTxn)
		for i := range txns {
			nOps := 1 + rng.Intn(4)
			ops := make([]core.Op, nOps)
			for k := range ops {
				obj := objects[rng.Intn(len(objects))]
				if rng.Intn(2) == 0 {
					ops[k] = core.R(obj)
				} else {
					ops[k] = core.W(obj)
				}
			}
			txns[i] = core.T(core.TxnID(i+1), ops...)
		}
		ts := core.MustTxnSet(txns...)
		cursors := make([]int, nTxn)
		ops := make([]core.Op, 0, ts.NumOps())
		for len(ops) < ts.NumOps() {
			k := rng.Intn(nTxn)
			if cursors[k] == txns[k].Len() {
				continue
			}
			ops = append(ops, txns[k].Op(cursors[k]))
			cursors[k]++
		}
		s := core.MustSchedule(ts, ops)
		full := core.NewSpec(ts)
		full.AllowAllPairs()
		feasible := core.IsRelativelySerializable(s, full)
		a := advisor.Advise(s, core.NewSpec(ts))
		if a.Possible != feasible {
			t.Fatalf("trial %d: advisor Possible=%v but fully-breakable verdict=%v\nschedule: %s",
				trial, a.Possible, feasible, s)
		}
		if a.Possible && !core.IsRelativelySerializable(s, a.Spec) {
			t.Fatalf("trial %d: repaired spec does not admit the schedule", trial)
		}
	}
}

func TestSuggestionString(t *testing.T) {
	s := advisor.Suggestion{Txn: 1, Observer: 2, CutAfter: 3}
	if s.String() != "split Atomicity(T1, T2) after op 3" {
		t.Errorf("String = %q", s.String())
	}
}

func TestAdviceLocallyMinimal(t *testing.T) {
	// Removing any single remaining suggestion must break
	// admissibility.
	inst := paperfig.Figure1()
	srs := inst.Schedules["Srs"]
	abs := core.NewSpec(inst.Set)
	a := advisor.Advise(srs, abs)
	if !a.Possible || len(a.Suggestions) == 0 {
		t.Fatalf("advice = %+v", a)
	}
	for drop := range a.Suggestions {
		trial := core.NewSpec(inst.Set)
		for j, g := range a.Suggestions {
			if j == drop {
				continue
			}
			if err := trial.CutAfter(g.Txn, g.Observer, g.CutAfter); err != nil {
				t.Fatal(err)
			}
		}
		if core.IsRelativelySerializable(srs, trial) {
			t.Errorf("suggestion %v is redundant", a.Suggestions[drop])
		}
	}
}
