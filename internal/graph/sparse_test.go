package graph

import (
	"math/rand"
	"testing"
)

func TestSparseAddRemoveArc(t *testing.T) {
	g := NewSparse(3)
	g.AddArc(0, 1)
	g.AddArc(0, 1) // multiplicity 2
	g.AddArc(1, 2)
	if !g.HasArc(0, 1) || !g.HasArc(1, 2) {
		t.Fatal("arcs missing after AddArc")
	}
	if g.ArcCount() != 2 {
		t.Fatalf("ArcCount = %d, want 2 distinct arcs", g.ArcCount())
	}
	g.RemoveArc(0, 1)
	if !g.HasArc(0, 1) {
		t.Fatal("arc with multiplicity 2 vanished after one removal")
	}
	g.RemoveArc(0, 1)
	if g.HasArc(0, 1) {
		t.Fatal("arc still present after removing both multiplicities")
	}
	if g.ArcCount() != 1 {
		t.Fatalf("ArcCount = %d, want 1", g.ArcCount())
	}
}

func TestSparseRemoveAbsentArcPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RemoveArc on absent arc should panic")
		}
	}()
	NewSparse(2).RemoveArc(0, 1)
}

func TestSparseIsolateVertex(t *testing.T) {
	g := NewSparse(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(3, 1)
	g.IsolateVertex(1)
	if g.ArcCount() != 0 {
		t.Fatalf("ArcCount = %d after isolating hub, want 0", g.ArcCount())
	}
	if g.HasArc(0, 1) || g.HasArc(1, 2) || g.HasArc(3, 1) {
		t.Fatal("arcs incident to isolated vertex remain")
	}
	// The vertex remains usable.
	g.AddArc(1, 3)
	if !g.HasArc(1, 3) {
		t.Fatal("isolated vertex cannot grow new arcs")
	}
}

func TestSparseSuccessorsPredecessorsSorted(t *testing.T) {
	g := NewSparse(5)
	g.AddArc(2, 4)
	g.AddArc(2, 0)
	g.AddArc(2, 3)
	g.AddArc(1, 2)
	g.AddArc(4, 2)
	succ := g.Successors(2)
	want := []int{0, 3, 4}
	if len(succ) != len(want) {
		t.Fatalf("Successors = %v, want %v", succ, want)
	}
	for i := range want {
		if succ[i] != want[i] {
			t.Fatalf("Successors = %v, want %v", succ, want)
		}
	}
	pred := g.Predecessors(2)
	if len(pred) != 2 || pred[0] != 1 || pred[1] != 4 {
		t.Fatalf("Predecessors = %v, want [1 4]", pred)
	}
	if g.OutDegree(2) != 3 || g.InDegree(2) != 2 {
		t.Fatalf("degrees = (%d out, %d in), want (3, 2)", g.OutDegree(2), g.InDegree(2))
	}
}

func TestSparseCycleDetection(t *testing.T) {
	g := NewSparse(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	if g.HasCycle() {
		t.Fatal("path reported cyclic")
	}
	g.AddArc(3, 1)
	if !g.HasCycle() {
		t.Fatal("cycle 1->2->3->1 not detected")
	}
	cyc := g.FindCycleFrom(-1)
	if len(cyc) != 3 {
		t.Fatalf("cycle = %v, want length 3", cyc)
	}
	for i := range cyc {
		if !g.HasArc(cyc[i], cyc[(i+1)%len(cyc)]) {
			t.Fatalf("returned sequence %v is not a cycle", cyc)
		}
	}
}

func TestSparseFindCycleFromScoped(t *testing.T) {
	g := NewSparse(5)
	// Cycle among 0,1; vertex 4 cannot reach it.
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(4, 3)
	if cyc := g.FindCycleFrom(4); cyc != nil {
		t.Fatalf("FindCycleFrom(4) = %v, want nil (cycle unreachable)", cyc)
	}
	if cyc := g.FindCycleFrom(0); cyc == nil {
		t.Fatal("FindCycleFrom(0) missed the reachable cycle")
	}
}

func TestSparseReachableFrom(t *testing.T) {
	g := NewSparse(5)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(3, 4)
	if !g.ReachableFrom(0, 2) {
		t.Error("2 should be reachable from 0")
	}
	if g.ReachableFrom(0, 4) {
		t.Error("4 should not be reachable from 0")
	}
	if g.ReachableFrom(0, 0) {
		t.Error("0 is not on a cycle; should not be self-reachable")
	}
	g.AddArc(2, 0)
	if !g.ReachableFrom(0, 0) {
		t.Error("0 lies on a cycle; should be self-reachable")
	}
}

func TestSparseSCCs(t *testing.T) {
	g := NewSparse(7)
	// Component {0,1,2}, component {3,4}, singletons {5}, {6}.
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 0)
	g.AddArc(2, 3)
	g.AddArc(3, 4)
	g.AddArc(4, 3)
	g.AddArc(4, 5)
	comps := g.SCCs()
	if len(comps) != 4 {
		t.Fatalf("got %d SCCs, want 4: %v", len(comps), comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 2 {
		t.Fatalf("SCC size histogram wrong: %v", comps)
	}
	// Tarjan emits components in reverse topological order: {5} before
	// {3,4} before {0,1,2}.
	idx := map[int]int{}
	for i, c := range comps {
		for _, v := range c {
			idx[v] = i
		}
	}
	if !(idx[5] < idx[3] && idx[3] < idx[0]) {
		t.Errorf("components not in reverse topological order: %v", comps)
	}
}

func TestSparseGrowAndAddVertex(t *testing.T) {
	g := NewSparse(0)
	v0 := g.AddVertex()
	v1 := g.AddVertex()
	if v0 != 0 || v1 != 1 {
		t.Fatalf("AddVertex returned %d, %d", v0, v1)
	}
	g.Grow(5)
	if g.Len() != 5 {
		t.Fatalf("Len = %d after Grow(5)", g.Len())
	}
	g.AddArc(4, 0)
	if !g.HasArc(4, 0) {
		t.Fatal("arc to grown vertex missing")
	}
}

func TestSparseCycleAgreesWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(15)
		s := NewSparse(n)
		d := NewDense(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.15 {
					s.AddArc(u, v)
					d.AddArc(u, v)
				}
			}
		}
		if s.HasCycle() != d.HasCycle() {
			t.Fatalf("trial %d: sparse=%v dense=%v disagree", trial, s.HasCycle(), d.HasCycle())
		}
	}
}
