package graph

import (
	"math/rand"
	"testing"
)

func TestDenseTopoOrderLine(t *testing.T) {
	g := NewDense(4)
	g.AddArc(2, 1)
	g.AddArc(1, 3)
	g.AddArc(3, 0)
	order, ok := g.TopoOrder()
	if !ok {
		t.Fatal("line graph should be acyclic")
	}
	want := []int{2, 1, 3, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDenseCycleDetection(t *testing.T) {
	g := NewDense(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	if g.HasCycle() {
		t.Fatal("acyclic graph reported cyclic")
	}
	g.AddArc(2, 0)
	if !g.HasCycle() {
		t.Fatal("3-cycle not detected")
	}
	cyc := g.FindCycle()
	if len(cyc) != 3 {
		t.Fatalf("FindCycle = %v, want length 3", cyc)
	}
	// Verify the returned sequence really is a cycle.
	for i := range cyc {
		if !g.HasArc(cyc[i], cyc[(i+1)%len(cyc)]) {
			t.Fatalf("FindCycle %v is not a cycle: missing arc %d->%d", cyc, cyc[i], cyc[(i+1)%len(cyc)])
		}
	}
}

func TestDenseSelfLoop(t *testing.T) {
	g := NewDense(2)
	g.AddArc(1, 1)
	if !g.HasCycle() {
		t.Fatal("self-loop not detected as cycle")
	}
	cyc := g.FindCycle()
	if len(cyc) != 1 || cyc[0] != 1 {
		t.Fatalf("FindCycle = %v, want [1]", cyc)
	}
}

func TestDenseEmptyGraph(t *testing.T) {
	g := NewDense(0)
	if g.HasCycle() {
		t.Error("empty graph reported cyclic")
	}
	order, ok := g.TopoOrder()
	if !ok || len(order) != 0 {
		t.Error("empty graph topological order should be empty")
	}
}

func TestDenseTopoOrderDeterministic(t *testing.T) {
	g := NewDense(5)
	g.AddArc(4, 0)
	// Vertices 1, 2, 3 are unconstrained: Kahn with the smallest-first
	// tie break must order them ascending.
	order, ok := g.TopoOrder()
	if !ok {
		t.Fatal("unexpected cycle")
	}
	want := []int{1, 2, 3, 4, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDenseTopoOrderPreferring(t *testing.T) {
	g := NewDense(4)
	g.AddArc(3, 1)
	// rank reverses the default preference among ready vertices.
	rank := []int{3, 2, 1, 0}
	order, ok := g.TopoOrderPreferring(rank)
	if !ok {
		t.Fatal("unexpected cycle")
	}
	want := []int{3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	g.AddArc(1, 3) // close a cycle
	if _, ok := g.TopoOrderPreferring(rank); ok {
		t.Fatal("cycle not reported by TopoOrderPreferring")
	}
}

func TestDenseReachable(t *testing.T) {
	g := NewDense(6)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	g.AddArc(4, 5)
	r := g.Reachable(0)
	for _, v := range []int{1, 2, 3} {
		if !r.Has(v) {
			t.Errorf("vertex %d should be reachable from 0", v)
		}
	}
	for _, v := range []int{0, 4, 5} {
		if r.Has(v) {
			t.Errorf("vertex %d should not be reachable from 0", v)
		}
	}
}

func TestDenseReachableOnCycle(t *testing.T) {
	g := NewDense(3)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	r := g.Reachable(0)
	if !r.Has(0) {
		t.Error("a vertex on a cycle through itself should be self-reachable")
	}
}

func TestDenseTransitiveClosureDAG(t *testing.T) {
	g := NewDense(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	tc := g.TransitiveClosure()
	wantArcs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if tc.ArcCount() != len(wantArcs) {
		t.Fatalf("closure has %d arcs, want %d", tc.ArcCount(), len(wantArcs))
	}
	for _, a := range wantArcs {
		if !tc.HasArc(a[0], a[1]) {
			t.Errorf("closure missing arc %v", a)
		}
	}
}

func TestDenseTransitiveClosureCyclic(t *testing.T) {
	g := NewDense(3)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(1, 2)
	tc := g.TransitiveClosure()
	for _, a := range [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}} {
		if !tc.HasArc(a[0], a[1]) {
			t.Errorf("closure missing arc %v", a)
		}
	}
	if tc.HasArc(2, 0) {
		t.Error("closure has spurious arc 2->0")
	}
}

func TestDenseTransitiveClosureMatchesReachable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		g := NewDense(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.25 {
					g.AddArc(u, v)
				}
			}
		}
		tc := g.TransitiveClosure()
		for u := 0; u < n; u++ {
			r := g.Reachable(u)
			for v := 0; v < n; v++ {
				if tc.HasArc(u, v) != r.Has(v) {
					t.Fatalf("trial %d: closure(%d,%d)=%v but reachable=%v", trial, u, v, tc.HasArc(u, v), r.Has(v))
				}
			}
		}
	}
}

func TestDenseArcsIteration(t *testing.T) {
	g := NewDense(3)
	g.AddArc(2, 0)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	var got [][2]int
	g.Arcs(func(u, v int) bool {
		got = append(got, [2]int{u, v})
		return true
	})
	want := [][2]int{{0, 1}, {0, 2}, {2, 0}}
	if len(got) != len(want) {
		t.Fatalf("arcs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arcs = %v, want %v", got, want)
		}
	}
}

func TestDenseTopoOrderIsValid(t *testing.T) {
	// Property: on random DAGs (arcs only low->high), TopoOrder succeeds
	// and respects every arc.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(30)
		g := NewDense(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					g.AddArc(u, v)
				}
			}
		}
		order, ok := g.TopoOrder()
		if !ok {
			t.Fatalf("trial %d: DAG reported cyclic", trial)
		}
		posOf := make([]int, n)
		for i, v := range order {
			posOf[v] = i
		}
		g.Arcs(func(u, v int) bool {
			if posOf[u] >= posOf[v] {
				t.Fatalf("trial %d: order violates arc %d->%d", trial, u, v)
			}
			return true
		})
	}
}
