package graph

import "fmt"

// Dense is a directed graph over vertices 0..n-1 with bitset adjacency
// rows. It is the workhorse representation for serialization graphs and
// relative serialization graphs, where arc sets can be quadratic in the
// number of operations.
type Dense struct {
	n   int
	adj []Bitset // adj[u].Has(v) iff u -> v
}

// NewDense returns an empty dense digraph with n vertices.
func NewDense(n int) *Dense {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewDense with negative size %d", n))
	}
	g := &Dense{n: n, adj: make([]Bitset, n)}
	for i := range g.adj {
		g.adj[i] = NewBitset(n)
	}
	return g
}

// Len returns the number of vertices.
func (g *Dense) Len() int { return g.n }

// AddArc inserts the arc u -> v. Self-loops are permitted and are
// reported as cycles by HasCycle.
func (g *Dense) AddArc(u, v int) { g.adj[u].Set(v) }

// HasArc reports whether the arc u -> v is present.
func (g *Dense) HasArc(u, v int) bool { return g.adj[u].Has(v) }

// Succ returns the successor bitset of u. The caller must not mutate it.
func (g *Dense) Succ(u int) Bitset { return g.adj[u] }

// ArcCount returns the total number of arcs.
func (g *Dense) ArcCount() int {
	c := 0
	for _, row := range g.adj {
		c += row.Count()
	}
	return c
}

// Arcs calls fn for every arc in (u, v) lexicographic order.
func (g *Dense) Arcs(fn func(u, v int) bool) {
	for u := 0; u < g.n; u++ {
		stop := false
		g.adj[u].ForEach(func(v int) bool {
			if !fn(u, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

const (
	colorWhite = 0 // unvisited
	colorGray  = 1 // on the DFS stack
	colorBlack = 2 // finished
)

// HasCycle reports whether the graph contains a directed cycle
// (including self-loops). It runs an iterative DFS so deep graphs do
// not overflow the goroutine stack.
func (g *Dense) HasCycle() bool {
	_, ok := g.TopoOrder()
	return !ok
}

// FindCycle returns one directed cycle as a vertex sequence
// v0 -> v1 -> ... -> vk -> v0 (v0 repeated at the end is omitted), or
// nil if the graph is acyclic.
func (g *Dense) FindCycle() []int {
	color := make([]byte, g.n)
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -1
	}
	type frame struct {
		u    int
		iter int // next word index hint is overkill; track successor cursor
	}
	// We iterate successors by materializing them per frame; rows are
	// bitsets so we walk them with an explicit cursor.
	var stack []frame
	cursor := make([][]int, g.n)
	for s := 0; s < g.n; s++ {
		if color[s] != colorWhite {
			continue
		}
		color[s] = colorGray
		cursor[s] = g.adj[s].Elements()
		stack = stack[:0]
		stack = append(stack, frame{u: s})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.u
			if f.iter < len(cursor[u]) {
				v := cursor[u][f.iter]
				f.iter++
				switch color[v] {
				case colorWhite:
					color[v] = colorGray
					parent[v] = u
					cursor[v] = g.adj[v].Elements()
					stack = append(stack, frame{u: v})
				case colorGray:
					// Found a cycle: walk parents from u back to v.
					cyc := []int{v}
					for w := u; w != v; w = parent[w] {
						cyc = append(cyc, w)
					}
					// Reverse so the cycle reads in arc direction.
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[u] = colorBlack
				cursor[u] = nil
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// TopoOrder returns a topological ordering of the vertices and true,
// or (nil, false) if the graph has a cycle. Kahn's algorithm with a
// deterministic smallest-vertex-first tie break.
func (g *Dense) TopoOrder() ([]int, bool) {
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) bool {
			indeg[v]++
			return true
		})
	}
	ready := NewBitset(g.n)
	nReady := 0
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			ready.Set(v)
			nReady++
		}
	}
	order := make([]int, 0, g.n)
	for nReady > 0 {
		// Pop the smallest ready vertex for determinism.
		u := -1
		ready.ForEach(func(i int) bool {
			u = i
			return false
		})
		ready.Clear(u)
		nReady--
		order = append(order, u)
		g.adj[u].ForEach(func(v int) bool {
			indeg[v]--
			if indeg[v] == 0 {
				ready.Set(v)
				nReady++
			}
			return true
		})
	}
	if len(order) != g.n {
		return nil, false
	}
	return order, true
}

// TopoOrderPreferring returns a topological ordering that, among ready
// vertices, picks the one with the smallest rank[v] (ties broken by
// vertex number). This lets callers bias the linearization, e.g. toward
// an original schedule order. Returns (nil, false) on a cycle.
func (g *Dense) TopoOrderPreferring(rank []int) ([]int, bool) {
	if len(rank) != g.n {
		panic(fmt.Sprintf("graph: TopoOrderPreferring rank length %d != %d vertices", len(rank), g.n))
	}
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) bool {
			indeg[v]++
			return true
		})
	}
	ready := NewBitset(g.n)
	nReady := 0
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			ready.Set(v)
			nReady++
		}
	}
	order := make([]int, 0, g.n)
	for nReady > 0 {
		best, bestRank := -1, 0
		ready.ForEach(func(i int) bool {
			if best == -1 || rank[i] < bestRank {
				best, bestRank = i, rank[i]
			}
			return true
		})
		ready.Clear(best)
		nReady--
		order = append(order, best)
		g.adj[best].ForEach(func(v int) bool {
			indeg[v]--
			if indeg[v] == 0 {
				ready.Set(v)
				nReady++
			}
			return true
		})
	}
	if len(order) != g.n {
		return nil, false
	}
	return order, true
}

// Reachable returns the set of vertices reachable from u by one or more
// arcs (u itself is included only if it lies on a cycle through u).
func (g *Dense) Reachable(u int) Bitset {
	seen := NewBitset(g.n)
	var stack []int
	g.adj[u].ForEach(func(v int) bool {
		if !seen.Has(v) {
			seen.Set(v)
			stack = append(stack, v)
		}
		return true
	})
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.adj[w].ForEach(func(v int) bool {
			if !seen.Has(v) {
				seen.Set(v)
				stack = append(stack, v)
			}
			return true
		})
	}
	return seen
}

// TransitiveClosure returns a new graph with an arc u -> v whenever v
// is reachable from u in g.
func (g *Dense) TransitiveClosure() *Dense {
	// Process in reverse topological order when possible so each row is
	// the union of successor rows; fall back to per-vertex BFS on cyclic
	// graphs.
	tc := NewDense(g.n)
	order, ok := g.TopoOrder()
	if ok {
		for i := len(order) - 1; i >= 0; i-- {
			u := order[i]
			row := tc.adj[u]
			g.adj[u].ForEach(func(v int) bool {
				row.Set(v)
				row.UnionWith(tc.adj[v])
				return true
			})
		}
		return tc
	}
	for u := 0; u < g.n; u++ {
		tc.adj[u] = g.Reachable(u)
	}
	return tc
}
