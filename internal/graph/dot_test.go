package graph

import (
	"strings"
	"testing"
)

func TestDotGraphRendering(t *testing.T) {
	var d DotGraph
	d.Name = "RSG"
	d.AddNode(0, "w1[x]", nil)
	d.AddNode(1, "r2[x]", map[string]string{"color": "red"})
	d.AddEdge(0, 1, "D", map[string]string{"style": "dashed"})
	out := d.String()
	for _, want := range []string{
		`digraph "RSG" {`,
		`n0 [label="w1[x]"];`,
		`n1 [label="r2[x]", color="red"];`,
		`n0 -> n1 [label="D", style="dashed"];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestDotGraphDefaultName(t *testing.T) {
	var d DotGraph
	if !strings.HasPrefix(d.String(), `digraph "G" {`) {
		t.Errorf("default name not applied:\n%s", d.String())
	}
}

func TestDotQuoting(t *testing.T) {
	var d DotGraph
	d.AddNode(0, `a"b\c`, nil)
	out := d.String()
	if !strings.Contains(out, `label="a\"b\\c"`) {
		t.Errorf("quotes/backslashes not escaped:\n%s", out)
	}
}

func TestDotDeterministicAttrOrder(t *testing.T) {
	var d DotGraph
	d.AddEdge(0, 1, "", map[string]string{"z": "1", "a": "2", "m": "3"})
	out := d.String()
	ia, im, iz := strings.Index(out, `a="2"`), strings.Index(out, `m="3"`), strings.Index(out, `z="1"`)
	if ia == -1 || im == -1 || iz == -1 || !(ia < im && im < iz) {
		t.Errorf("attributes not sorted deterministically:\n%s", out)
	}
}

func TestDotEdgeWithoutAttrs(t *testing.T) {
	var d DotGraph
	d.AddEdge(2, 3, "", nil)
	if !strings.Contains(d.String(), "n2 -> n3;") {
		t.Errorf("bare edge rendered incorrectly:\n%s", d.String())
	}
}
