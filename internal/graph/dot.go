package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DotNode describes a vertex for DOT rendering.
type DotNode struct {
	ID    int
	Label string
	Attrs map[string]string // extra Graphviz attributes, e.g. "shape"
}

// DotEdge describes an arc for DOT rendering.
type DotEdge struct {
	From, To int
	Label    string
	Attrs    map[string]string // e.g. "style", "color"
}

// DotGraph accumulates nodes and edges and renders Graphviz DOT text.
// It exists so serialization graphs, relative serialization graphs and
// waits-for graphs can all be visualized with one code path.
type DotGraph struct {
	Name  string
	Nodes []DotNode
	Edges []DotEdge
}

// AddNode appends a vertex.
func (d *DotGraph) AddNode(id int, label string, attrs map[string]string) {
	d.Nodes = append(d.Nodes, DotNode{ID: id, Label: label, Attrs: attrs})
}

// AddEdge appends an arc.
func (d *DotGraph) AddEdge(from, to int, label string, attrs map[string]string) {
	d.Edges = append(d.Edges, DotEdge{From: from, To: to, Label: label, Attrs: attrs})
}

// WriteTo renders the graph as DOT. Output is deterministic: nodes and
// edges appear in insertion order and attribute keys are sorted.
func (d *DotGraph) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	name := d.Name
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(&sb, "digraph %s {\n", quoteDotID(name))
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, n := range d.Nodes {
		fmt.Fprintf(&sb, "  n%d [label=%s%s];\n", n.ID, quoteDotID(n.Label), attrString(n.Attrs))
	}
	for _, e := range d.Edges {
		fmt.Fprintf(&sb, "  n%d -> n%d", e.From, e.To)
		var parts []string
		if e.Label != "" {
			parts = append(parts, "label="+quoteDotID(e.Label))
		}
		parts = append(parts, attrList(e.Attrs)...)
		if len(parts) > 0 {
			fmt.Fprintf(&sb, " [%s]", strings.Join(parts, ", "))
		}
		sb.WriteString(";\n")
	}
	sb.WriteString("}\n")
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the graph as DOT text.
func (d *DotGraph) String() string {
	var sb strings.Builder
	d.WriteTo(&sb) //nolint:errcheck // strings.Builder cannot fail
	return sb.String()
}

func attrString(attrs map[string]string) string {
	parts := attrList(attrs)
	if len(parts) == 0 {
		return ""
	}
	return ", " + strings.Join(parts, ", ")
}

func attrList(attrs map[string]string) []string {
	if len(attrs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+quoteDotID(attrs[k]))
	}
	return parts
}

func quoteDotID(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range s {
		if r == '"' || r == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteRune(r)
	}
	sb.WriteByte('"')
	return sb.String()
}
