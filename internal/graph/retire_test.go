package graph

import (
	"math/rand"
	"testing"
)

// chain builds 0 -> 1 -> ... -> n-1.
func chain(t testing.TB, n int) *Incremental {
	inc := NewIncremental(n)
	for v := 0; v+1 < n; v++ {
		if err := inc.AddArc(v, v+1); err != nil {
			t.Fatalf("AddArc(%d, %d): %v", v, v+1, err)
		}
	}
	return inc
}

func TestRetireCompactsAndKeepsHandlesStable(t *testing.T) {
	inc := chain(t, 10)
	// Retire the committed stable prefix 0..5 (isolating is Retire's
	// job; the arcs into 6 go with it).
	res := inc.Retire([]int{0, 1, 2, 3, 4, 5})
	if res.Retired != 6 || res.Live != 4 {
		t.Fatalf("RetireResult = %+v, want Retired=6 Live=4", res)
	}
	if inc.RetiredCount() != 6 {
		t.Fatalf("RetiredCount = %d, want 6", inc.RetiredCount())
	}
	if inc.Len() != 4 {
		t.Fatalf("Len = %d, want 4", inc.Len())
	}
	// Surviving external IDs are stable handles.
	for v := 6; v < 9; v++ {
		if !inc.HasArc(v, v+1) {
			t.Fatalf("arc %d -> %d lost across retirement", v, v+1)
		}
	}
	for v := 0; v < 6; v++ {
		if !inc.Retired(v) {
			t.Fatalf("vertex %d not reported retired", v)
		}
	}
	if inc.Retired(7) {
		t.Fatal("live vertex 7 reported retired")
	}
	// New vertices keep getting fresh IDs after the compaction.
	nv := inc.AddVertex()
	if nv != 10 {
		t.Fatalf("AddVertex after retire = %d, want 10", nv)
	}
	if err := inc.AddArc(9, nv); err != nil {
		t.Fatalf("AddArc(9, %d): %v", nv, err)
	}
	if err := inc.AddArc(nv, 6); err == nil {
		t.Fatal("cycle 6..9 -> 10 -> 6 not rejected after retirement")
	}
	if err := inc.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRetireIsIdempotentAndOrderValid(t *testing.T) {
	inc := chain(t, 8)
	inc.Retire([]int{0, 1, 2})
	res := inc.Retire([]int{0, 1, 2, 3})
	if res.Retired != 1 {
		t.Fatalf("second Retire removed %d, want 1 (0..2 already retired)", res.Retired)
	}
	if got := inc.TopoOrder(); len(got) != 4 {
		t.Fatalf("TopoOrder = %v, want the 4 survivors", got)
	}
	for i, v := range inc.TopoOrder() {
		if v != 4+i {
			t.Fatalf("TopoOrder[%d] = %d, want %d", i, v, 4+i)
		}
	}
	if err := inc.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Regression for the AddVertex bitset growth bug: the old code grew
// mark by at most one word per AddVertex, which under-allocates when a
// retirement-compaction remap leaves the bitset more than one word
// short of the next internal index. Simulate that post-remap state
// directly and check AddVertex restores the exact required length.
func TestAddVertexBitsetGrowthRegression(t *testing.T) {
	inc := chain(t, 200)
	inc.mark = inc.mark[:1] // compaction remap left mark under-allocated
	v := inc.AddVertex()
	if want := 200; v != want {
		t.Fatalf("AddVertex = %d, want %d", v, want)
	}
	if got := len(inc.mark) * wordBits; got < inc.Len() {
		t.Fatalf("mark covers %d vertices, need %d", got, inc.Len())
	}
	// The under-allocated bitset made this panic (index out of range in
	// mark.Set during the cycle search).
	if inc.WouldCycle(0, v) {
		t.Fatal("0 -> 201 cannot cycle")
	}
	if inc.WouldCycle(v, 0) {
		// 201 has no arcs yet; adding 201 -> 0 is acyclic too.
		t.Fatal("201 -> 0 cannot cycle")
	}
	if err := inc.AddArc(199, v); err != nil {
		t.Fatalf("AddArc(199, %d): %v", v, err)
	}
	if !inc.WouldCycle(v, 0) {
		t.Fatal("0..199 -> 201 -> 0 must cycle")
	}
}

// Growth across a real retirement compaction: mark is rebuilt to the
// live count, and subsequent AddVertex calls must track the exact
// word boundary.
func TestAddVertexBitsetGrowthAfterRetire(t *testing.T) {
	inc := chain(t, 130)
	ids := make([]int, 0, 128)
	for v := 0; v < 128; v++ {
		ids = append(ids, v)
	}
	inc.Retire(ids)
	for i := 0; i < 200; i++ {
		nv := inc.AddVertex()
		if err := inc.AddArc(129, nv); err != nil {
			t.Fatalf("AddArc(129, %d): %v", nv, err)
		}
	}
	if inc.WouldCycle(128, 329) {
		t.Fatal("forward arc cannot cycle")
	}
	if err := inc.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFindPathRetiredEndpoints(t *testing.T) {
	inc := chain(t, 6)
	if got := inc.FindPath(1, 4); len(got) != 4 {
		t.Fatalf("FindPath(1, 4) = %v before retirement", got)
	}
	inc.Retire([]int{0, 1, 2})
	// Retired endpoints: nil, not a panic on a remapped ID.
	if got := inc.FindPath(1, 4); got != nil {
		t.Fatalf("FindPath(1, 4) = %v, want nil (1 is retired)", got)
	}
	if got := inc.FindPath(4, 2); got != nil {
		t.Fatalf("FindPath(4, 2) = %v, want nil (2 is retired)", got)
	}
	if got := inc.FindPath(2, 2); got != nil {
		t.Fatalf("FindPath(2, 2) = %v, want nil (2 is retired)", got)
	}
	if got := inc.FindPath(3, 5); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("FindPath(3, 5) = %v, want [3 4 5]", got)
	}
}

func TestRetiredVertexQueriesAreEmpty(t *testing.T) {
	inc := chain(t, 5)
	inc.Retire([]int{1, 2})
	if inc.HasArc(1, 2) || inc.HasArc(0, 1) {
		t.Fatal("retired vertices report arcs")
	}
	if inc.Successors(1) != nil || inc.Predecessors(2) != nil {
		t.Fatal("retired vertices report adjacency")
	}
	if inc.InDegree(1) != 0 || inc.OutDegree(2) != 0 {
		t.Fatal("retired vertices report degrees")
	}
	if inc.Order(1) != -1 {
		t.Fatalf("Order(retired) = %d, want -1", inc.Order(1))
	}
	if inc.WouldCycle(1, 3) || inc.WouldCycle(3, 1) {
		t.Fatal("retired vertices cannot cycle")
	}
	inc.IsolateVertex(1) // no-op, must not panic
}

func TestAppendArcsSettleMatchesAddArcBatch(t *testing.T) {
	// The same acyclic arc set inserted via the fast path (AppendArcs +
	// Settle) and via AddArcBatch must yield identical orders and
	// arc sets.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 30
		arcs := randomDAGArcs(rng, n, 0.15)
		perm := rng.Perm(n) // hide the topological numbering
		relabel := func(a [][2]int) [][2]int {
			out := make([][2]int, len(a))
			for i, arc := range a {
				out[i] = [2]int{perm[arc[0]], perm[arc[1]]}
			}
			return out
		}
		arcs = relabel(arcs)
		fast := NewIncremental(n)
		slow := NewIncremental(n)
		for i := 0; i < len(arcs); i += 3 {
			end := i + 3
			if end > len(arcs) {
				end = len(arcs)
			}
			fast.AppendArcs(arcs[i:end])
			if err := slow.AddArcBatch(arcs[i:end]); err != nil {
				t.Fatalf("trial %d: AddArcBatch rejected acyclic arcs: %v", trial, err)
			}
		}
		if err := fast.Settle(); err != nil {
			t.Fatalf("trial %d: Settle: %v", trial, err)
		}
		if err := fast.Verify(); err != nil {
			t.Fatalf("trial %d: fast Verify: %v", trial, err)
		}
		if fast.ArcCount() != slow.ArcCount() {
			t.Fatalf("trial %d: arc counts diverged: %d vs %d", trial, fast.ArcCount(), slow.ArcCount())
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if fast.HasArc(u, v) != slow.HasArc(u, v) {
					t.Fatalf("trial %d: arc (%d,%d) presence diverged", trial, u, v)
				}
			}
		}
	}
}

func TestSettleDetectsContractViolation(t *testing.T) {
	inc := chain(t, 3)
	inc.AppendArcs([][2]int{{2, 0}}) // closes 0->1->2->0: contract violation
	if err := inc.Settle(); err == nil {
		t.Fatal("Settle accepted a cyclic appended batch")
	}
}

// TestRetireInterleavedRandom drives random interleavings of vertex
// growth, checked batch inserts, fast-path appends and retirement
// epochs, verifying structural invariants after every epoch. This is
// the seeded core of the retirement fuzz; FuzzRetireInterleaving feeds
// it mutated seeds.
func TestRetireInterleavedRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		runRetireInterleaving(t, seed, 400)
	}
}

func runRetireInterleaving(t testing.TB, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	inc := NewIncremental(0)
	var live []int // external IDs not yet retired
	addVertex := func() {
		live = append(live, inc.AddVertex())
	}
	for i := 0; i < 4; i++ {
		addVertex()
	}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 3:
			addVertex()
		case op < 6: // checked batch insert
			var arcs [][2]int
			for k := 0; k < 1+rng.Intn(3); k++ {
				u := live[rng.Intn(len(live))]
				v := live[rng.Intn(len(live))]
				if u != v {
					arcs = append(arcs, [2]int{u, v})
				}
			}
			_ = inc.AddArcBatch(arcs) // ErrCycle is a legal outcome
		case op < 8: // fast-path append of provably forward arcs
			if len(live) >= 2 {
				i1, i2 := rng.Intn(len(live)), rng.Intn(len(live))
				u, v := live[i1], live[i2]
				if u != v && inc.Order(u) < inc.Order(v) {
					inc.AppendArcs([][2]int{{u, v}})
				}
			}
		default: // retirement epoch racing the inserts
			if len(live) > 2 {
				k := 1 + rng.Intn(len(live)-2)
				rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
				inc.Retire(live[:k])
				live = append([]int(nil), live[k:]...)
				if err := inc.Verify(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
	}
	if err := inc.Verify(); err != nil {
		t.Fatalf("seed %d final: %v", seed, err)
	}
}

func FuzzRetireInterleaving(f *testing.F) {
	f.Add(int64(1), 100)
	f.Add(int64(42), 300)
	f.Fuzz(func(t *testing.T, seed int64, steps int) {
		if steps < 0 || steps > 2000 {
			t.Skip()
		}
		runRetireInterleaving(t, seed, steps)
	})
}
