package graph

import (
	"math/rand"
	"testing"
)

func TestAddArcBatchForwardOnly(t *testing.T) {
	inc := NewIncremental(4)
	if err := inc.AddArcBatch([][2]int{{0, 1}, {1, 2}, {2, 3}}); err != nil {
		t.Fatalf("forward batch rejected: %v", err)
	}
	if err := inc.Verify(); err != nil {
		t.Fatalf("Verify after batch: %v", err)
	}
	if inc.ArcCount() != 3 {
		t.Fatalf("ArcCount = %d, want 3", inc.ArcCount())
	}
}

func TestAddArcBatchReorders(t *testing.T) {
	inc := NewIncremental(6)
	// All backward w.r.t. the initial order but acyclic as a set.
	if err := inc.AddArcBatch([][2]int{{5, 0}, {4, 1}, {3, 2}, {5, 4}}); err != nil {
		t.Fatalf("acyclic backward batch rejected: %v", err)
	}
	if err := inc.Verify(); err != nil {
		t.Fatalf("Verify after reordering batch: %v", err)
	}
}

func TestAddArcBatchRejectsCycleAtomically(t *testing.T) {
	inc := NewIncremental(4)
	batchMustAdd(t, inc, 0, 1)
	batchMustAdd(t, inc, 1, 2)
	before := inc.TopoOrder()
	// 2->3 is fine alone; 3->0 closes a cycle through the batch.
	if err := inc.AddArcBatch([][2]int{{2, 3}, {3, 0}}); err != ErrCycle {
		t.Fatalf("cyclic batch: got %v, want ErrCycle", err)
	}
	if inc.HasArc(2, 3) || inc.HasArc(3, 0) {
		t.Fatal("rejected batch left arcs behind")
	}
	if inc.ArcCount() != 2 {
		t.Fatalf("ArcCount after rejection = %d, want 2", inc.ArcCount())
	}
	after := inc.TopoOrder()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rejected batch disturbed the order: %v -> %v", before, after)
		}
	}
	if err := inc.Verify(); err != nil {
		t.Fatalf("Verify after rejection: %v", err)
	}
}

func TestAddArcBatchSelfLoop(t *testing.T) {
	inc := NewIncremental(2)
	if err := inc.AddArcBatch([][2]int{{0, 1}, {1, 1}}); err != ErrCycle {
		t.Fatalf("self-loop batch: got %v, want ErrCycle", err)
	}
	if inc.ArcCount() != 0 {
		t.Fatalf("self-loop batch inserted arcs: ArcCount = %d", inc.ArcCount())
	}
}

// TestAddArcBatchMatchesSequential drives two graphs with the same
// random batches: one through AddArcBatch, one through per-arc AddArc
// with rollback-on-failure (the pre-batch protocol hot path). Both the
// accept/reject verdicts and the resulting arc sets must agree.
func TestAddArcBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(10)
		batched := NewIncremental(n)
		seq := NewIncremental(n)
		for round := 0; round < 12; round++ {
			k := 1 + rng.Intn(4)
			arcs := make([][2]int, 0, k)
			for i := 0; i < k; i++ {
				arcs = append(arcs, [2]int{rng.Intn(n), rng.Intn(n)})
			}
			errB := batched.AddArcBatch(arcs)
			var errS error
			var added [][2]int
			for _, a := range arcs {
				if a[0] == a[1] {
					errS = ErrCycle
					break
				}
				if err := seq.AddArc(a[0], a[1]); err != nil {
					errS = err
					break
				}
				added = append(added, a)
			}
			if errS != nil {
				for _, a := range added {
					seq.RemoveArc(a[0], a[1])
				}
			}
			if (errB == nil) != (errS == nil) {
				t.Fatalf("trial %d round %d: batch err %v, sequential err %v (arcs %v)", trial, round, errB, errS, arcs)
			}
			if err := batched.Verify(); err != nil {
				t.Fatalf("trial %d round %d: batched Verify: %v", trial, round, err)
			}
			if batched.ArcCount() != seq.ArcCount() {
				t.Fatalf("trial %d round %d: arc counts diverged: %d vs %d", trial, round, batched.ArcCount(), seq.ArcCount())
			}
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if batched.HasArc(u, v) != seq.HasArc(u, v) {
						t.Fatalf("trial %d round %d: arc sets diverged at %d->%d", trial, round, u, v)
					}
				}
			}
		}
	}
}

func batchMustAdd(t *testing.T, inc *Incremental, u, v int) {
	t.Helper()
	if err := inc.AddArc(u, v); err != nil {
		t.Fatalf("AddArc(%d,%d): %v", u, v, err)
	}
}
