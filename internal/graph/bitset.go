// Package graph provides the directed-graph machinery used throughout
// relser: dense bitset digraphs for serialization-graph work, sparse
// adjacency-list digraphs for scheduler bookkeeping, cycle detection,
// topological sorting, strongly connected components, incremental
// topological-order maintenance (Pearce–Kelly), and DOT export.
//
// Everything in this package is deterministic: iteration orders depend
// only on vertex numbering, never on map iteration.
package graph

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a fixed-capacity set of small non-negative integers backed
// by a []uint64. The zero value is an empty set of capacity zero; use
// NewBitset to allocate capacity up front.
type Bitset []uint64

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) Bitset {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewBitset with negative capacity %d", n))
	}
	return make(Bitset, (n+wordBits-1)/wordBits)
}

// Set adds i to the set. i must be within capacity.
func (b Bitset) Set(i int) { b[i/wordBits] |= 1 << uint(i%wordBits) }

// Clear removes i from the set. i must be within capacity.
func (b Bitset) Clear(i int) { b[i/wordBits] &^= 1 << uint(i%wordBits) }

// Has reports whether i is in the set. Values at or beyond capacity
// report false rather than panicking, which simplifies probing.
func (b Bitset) Has(i int) bool {
	w := i / wordBits
	if w < 0 || w >= len(b) {
		return false
	}
	return b[w]&(1<<uint(i%wordBits)) != 0
}

// UnionWith adds every element of other to b. The sets must have the
// same capacity.
func (b Bitset) UnionWith(other Bitset) {
	if len(b) != len(other) {
		panic(fmt.Sprintf("graph: UnionWith capacity mismatch %d != %d", len(b)*wordBits, len(other)*wordBits))
	}
	for i, w := range other {
		b[i] |= w
	}
}

// IntersectWith removes from b every element not in other.
func (b Bitset) IntersectWith(other Bitset) {
	if len(b) != len(other) {
		panic(fmt.Sprintf("graph: IntersectWith capacity mismatch %d != %d", len(b)*wordBits, len(other)*wordBits))
	}
	for i, w := range other {
		b[i] &= w
	}
}

// Intersects reports whether b and other share at least one element.
func (b Bitset) Intersects(other Bitset) bool {
	n := len(b)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if b[i]&other[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of elements in the set.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (b Bitset) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset removes all elements, keeping capacity.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Clone returns an independent copy of b.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// ForEach calls fn for every element in ascending order. If fn returns
// false, iteration stops early.
func (b Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Elements returns the members of the set in ascending order.
func (b Bitset) Elements() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as "{a, b, c}" for debugging.
func (b Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
