package graph

import (
	"errors"
	"math/rand"
	"testing"
)

func TestIncrementalBasicOrder(t *testing.T) {
	inc := NewIncremental(4)
	for _, a := range [][2]int{{3, 2}, {2, 1}, {1, 0}} {
		if err := inc.AddArc(a[0], a[1]); err != nil {
			t.Fatalf("AddArc(%v): %v", a, err)
		}
	}
	if err := inc.Verify(); err != nil {
		t.Fatal(err)
	}
	if !(inc.Order(3) < inc.Order(2) && inc.Order(2) < inc.Order(1) && inc.Order(1) < inc.Order(0)) {
		t.Fatalf("order does not respect chain: %v", inc.TopoOrder())
	}
}

func TestIncrementalRejectsCycle(t *testing.T) {
	inc := NewIncremental(3)
	mustAdd(t, inc, 0, 1)
	mustAdd(t, inc, 1, 2)
	if err := inc.AddArc(2, 0); !errors.Is(err, ErrCycle) {
		t.Fatalf("AddArc(2,0) = %v, want ErrCycle", err)
	}
	// The failed insertion must leave the structure unchanged.
	if inc.HasArc(2, 0) {
		t.Fatal("rejected arc was inserted")
	}
	if err := inc.Verify(); err != nil {
		t.Fatal(err)
	}
	if inc.ArcCount() != 2 {
		t.Fatalf("ArcCount = %d, want 2", inc.ArcCount())
	}
}

func TestIncrementalSelfLoopRejected(t *testing.T) {
	inc := NewIncremental(1)
	if err := inc.AddArc(0, 0); !errors.Is(err, ErrCycle) {
		t.Fatalf("self-loop: got %v, want ErrCycle", err)
	}
}

func TestIncrementalWouldCycle(t *testing.T) {
	inc := NewIncremental(3)
	mustAdd(t, inc, 0, 1)
	mustAdd(t, inc, 1, 2)
	if !inc.WouldCycle(2, 0) {
		t.Error("WouldCycle(2,0) = false, want true")
	}
	if inc.WouldCycle(0, 2) {
		t.Error("WouldCycle(0,2) = true, want false")
	}
	if inc.HasArc(2, 0) {
		t.Error("WouldCycle must not insert")
	}
	if err := inc.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalDuplicateArcMultiplicity(t *testing.T) {
	inc := NewIncremental(2)
	mustAdd(t, inc, 0, 1)
	mustAdd(t, inc, 0, 1)
	if inc.ArcCount() != 1 {
		t.Fatalf("ArcCount = %d, want 1 distinct", inc.ArcCount())
	}
	inc.RemoveArc(0, 1)
	if !inc.HasArc(0, 1) {
		t.Fatal("arc vanished while multiplicity remained")
	}
	inc.RemoveArc(0, 1)
	if inc.HasArc(0, 1) {
		t.Fatal("arc present after full removal")
	}
}

func TestIncrementalIsolateVertex(t *testing.T) {
	inc := NewIncremental(3)
	mustAdd(t, inc, 0, 1)
	mustAdd(t, inc, 1, 2)
	inc.IsolateVertex(1)
	if inc.ArcCount() != 0 {
		t.Fatalf("ArcCount = %d after isolate, want 0", inc.ArcCount())
	}
	// Previously cyclic insertion is now allowed.
	mustAdd(t, inc, 2, 0)
	mustAdd(t, inc, 0, 1)
	if err := inc.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalAddVertex(t *testing.T) {
	inc := NewIncremental(0)
	a := inc.AddVertex()
	b := inc.AddVertex()
	c := inc.AddVertex()
	mustAdd(t, inc, c, a)
	mustAdd(t, inc, a, b)
	if err := inc.Verify(); err != nil {
		t.Fatal(err)
	}
	if !(inc.Order(c) < inc.Order(a) && inc.Order(a) < inc.Order(b)) {
		t.Fatalf("order wrong after growth: %v", inc.TopoOrder())
	}
}

func TestIncrementalManyVerticesPastWordBoundary(t *testing.T) {
	inc := NewIncremental(0)
	const n = 200 // crosses several 64-bit mark words
	for i := 0; i < n; i++ {
		inc.AddVertex()
	}
	// Chain n-1 -> n-2 -> ... -> 0, all "backward" insertions that
	// force reordering.
	for i := n - 1; i > 0; i-- {
		mustAdd(t, inc, i, i-1)
	}
	if err := inc.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := inc.AddArc(0, n-1); !errors.Is(err, ErrCycle) {
		t.Fatalf("closing the chain: got %v, want ErrCycle", err)
	}
}

func TestIncrementalAgainstBatchRandom(t *testing.T) {
	// Property: for a random arc stream, Incremental accepts an arc iff
	// the batch graph of previously accepted arcs plus this arc is
	// acyclic; after every step the maintained order verifies.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(12)
		inc := NewIncremental(n)
		accepted := NewDense(n)
		for step := 0; step < 4*n; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			trial := NewDense(n)
			accepted.Arcs(func(a, b int) bool {
				trial.AddArc(a, b)
				return true
			})
			trial.AddArc(u, v)
			wantErr := trial.HasCycle()
			err := inc.AddArc(u, v)
			if (err != nil) != wantErr {
				t.Fatalf("n=%d step=%d arc %d->%d: incremental err=%v, batch cyclic=%v", n, step, u, v, err, wantErr)
			}
			if err == nil {
				accepted.AddArc(u, v)
			}
			if verr := inc.Verify(); verr != nil {
				t.Fatalf("invariants broken after %d->%d: %v", u, v, verr)
			}
		}
	}
}

func mustAdd(t *testing.T, inc *Incremental, u, v int) {
	t.Helper()
	if err := inc.AddArc(u, v); err != nil {
		t.Fatalf("AddArc(%d, %d): %v", u, v, err)
	}
}

func TestIncrementalFindPath(t *testing.T) {
	inc := NewIncremental(6)
	mustAdd(t, inc, 0, 1)
	mustAdd(t, inc, 1, 2)
	mustAdd(t, inc, 2, 3)
	mustAdd(t, inc, 0, 4) // side branch off the path
	mustAdd(t, inc, 5, 3) // joins the path's end from elsewhere

	path := inc.FindPath(0, 3)
	if len(path) < 2 || path[0] != 0 || path[len(path)-1] != 3 {
		t.Fatalf("FindPath(0, 3) = %v, want a 0..3 path", path)
	}
	for i := 0; i+1 < len(path); i++ {
		if !inc.HasArc(path[i], path[i+1]) {
			t.Fatalf("FindPath(0, 3) = %v: no arc %d->%d", path, path[i], path[i+1])
		}
	}
	if got := inc.FindPath(3, 0); got != nil {
		t.Fatalf("FindPath(3, 0) = %v, want nil (no backward path)", got)
	}
	if got := inc.FindPath(4, 3); got != nil {
		t.Fatalf("FindPath(4, 3) = %v, want nil (disconnected)", got)
	}
	if got := inc.FindPath(2, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("FindPath(2, 2) = %v, want [2]", got)
	}

	// The cycle-witness use: a refused AddArc(u, v) means FindPath(v, u)
	// plus the refused arc is a concrete cycle.
	if err := inc.AddArc(3, 0); !errors.Is(err, ErrCycle) {
		t.Fatalf("AddArc(3, 0) = %v, want ErrCycle", err)
	}
	if path := inc.FindPath(0, 3); path == nil {
		t.Fatal("cycle witness path missing after refused arc")
	}
}
