package graph

import (
	"errors"
	"sort"
)

// ErrCycle is returned by Incremental.AddArc when inserting the arc
// would create a directed cycle; the arc is not inserted.
var ErrCycle = errors.New("graph: arc would create a cycle")

// Incremental maintains a topological order of a growing DAG under arc
// insertions (Pearce–Kelly, "A Dynamic Topological Sort Algorithm for
// Directed Acyclic Graphs", 2006). AddArc rejects — rather than
// inserts — arcs that would close a cycle, which is exactly the test an
// online serialization-graph scheduler needs on its hot path.
type Incremental struct {
	g    *Sparse
	ord  []int // ord[v] = position of v in the topological order
	pos  []int // pos[i] = vertex at position i (inverse of ord)
	mark Bitset
}

// NewIncremental returns an incremental DAG with n vertices and no
// arcs, topologically ordered by vertex number.
func NewIncremental(n int) *Incremental {
	inc := &Incremental{g: NewSparse(n)}
	inc.ord = make([]int, n)
	inc.pos = make([]int, n)
	for i := 0; i < n; i++ {
		inc.ord[i] = i
		inc.pos[i] = i
	}
	inc.mark = NewBitset(n)
	return inc
}

// Len returns the number of vertices.
func (inc *Incremental) Len() int { return inc.g.Len() }

// AddVertex appends a fresh vertex (last in the current order) and
// returns its index.
func (inc *Incremental) AddVertex() int {
	v := inc.g.AddVertex()
	inc.ord = append(inc.ord, v)
	inc.pos = append(inc.pos, v)
	if v >= len(inc.mark)*wordBits {
		inc.mark = append(inc.mark, 0)
	}
	return v
}

// HasArc reports whether the arc u -> v is present.
func (inc *Incremental) HasArc(u, v int) bool { return inc.g.HasArc(u, v) }

// ArcCount returns the number of distinct arcs.
func (inc *Incremental) ArcCount() int { return inc.g.ArcCount() }

// Order returns the current topological position of v; if u precedes v
// in every linear extension seen so far then Order(u) < Order(v).
func (inc *Incremental) Order(v int) int { return inc.ord[v] }

// WouldCycle reports whether inserting u -> v would create a cycle,
// without inserting it.
func (inc *Incremental) WouldCycle(u, v int) bool {
	if u == v {
		return true
	}
	if inc.ord[u] < inc.ord[v] || inc.g.HasArc(u, v) {
		return false
	}
	found, _ := inc.forwardSearch(v, inc.ord[u], u)
	inc.clearMarks()
	return found
}

// AddArc inserts u -> v, restoring a valid topological order. If the
// arc would create a cycle (including u == v) it returns ErrCycle and
// leaves the structure unchanged. Inserting an arc that is already
// present just bumps its multiplicity.
func (inc *Incremental) AddArc(u, v int) error {
	if u == v {
		return ErrCycle
	}
	if inc.g.HasArc(u, v) || inc.ord[u] < inc.ord[v] {
		inc.g.AddArc(u, v)
		return nil
	}
	// Affected region: positions (ord[v] .. ord[u]).
	lb, ub := inc.ord[v], inc.ord[u]
	found, deltaF := inc.forwardSearch(v, ub, u)
	if found {
		inc.clearMarks()
		return ErrCycle
	}
	deltaB := inc.backwardSearch(u, lb)
	inc.reorder(deltaF, deltaB)
	inc.clearMarks()
	inc.g.AddArc(u, v)
	return nil
}

// RemoveArc removes one multiplicity of u -> v. The topological order
// remains valid (removal can only relax constraints).
func (inc *Incremental) RemoveArc(u, v int) { inc.g.RemoveArc(u, v) }

// IsolateVertex removes all arcs incident to v. The vertex keeps its
// position; the order remains valid.
func (inc *Incremental) IsolateVertex(v int) { inc.g.IsolateVertex(v) }

// Successors returns the successors of u in ascending vertex order.
func (inc *Incremental) Successors(u int) []int { return inc.g.Successors(u) }

// InDegree returns the number of distinct predecessors of u.
func (inc *Incremental) InDegree(u int) int { return inc.g.InDegree(u) }

// OutDegree returns the number of distinct successors of u.
func (inc *Incremental) OutDegree(u int) int { return inc.g.OutDegree(u) }

// Predecessors returns the predecessors of u in ascending vertex order.
func (inc *Incremental) Predecessors(u int) []int { return inc.g.Predecessors(u) }

// forwardSearch explores forward from start over vertices with order
// <= ub, marking visited vertices. It reports whether target was
// reached and returns the visited set (excluding target).
func (inc *Incremental) forwardSearch(start, ub, target int) (bool, []int) {
	var visited []int
	stack := []int{start}
	inc.mark.Set(start)
	visited = append(visited, start)
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range inc.g.Successors(w) {
			if s == target {
				return true, visited
			}
			if inc.ord[s] <= ub && !inc.mark.Has(s) {
				inc.mark.Set(s)
				visited = append(visited, s)
				stack = append(stack, s)
			}
		}
	}
	return false, visited
}

// backwardSearch explores backward from start over vertices with order
// >= lb, marking and returning visited vertices.
func (inc *Incremental) backwardSearch(start, lb int) []int {
	var visited []int
	stack := []int{start}
	inc.mark.Set(start)
	visited = append(visited, start)
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range inc.g.Predecessors(w) {
			if inc.ord[p] >= lb && !inc.mark.Has(p) {
				inc.mark.Set(p)
				visited = append(visited, p)
				stack = append(stack, p)
			}
		}
	}
	return visited
}

// reorder reassigns the positions occupied by deltaB ∪ deltaF so that
// every vertex of deltaB precedes every vertex of deltaF, preserving
// the relative order within each set.
func (inc *Incremental) reorder(deltaF, deltaB []int) {
	sort.Slice(deltaF, func(i, j int) bool { return inc.ord[deltaF[i]] < inc.ord[deltaF[j]] })
	sort.Slice(deltaB, func(i, j int) bool { return inc.ord[deltaB[i]] < inc.ord[deltaB[j]] })
	merged := make([]int, 0, len(deltaF)+len(deltaB))
	merged = append(merged, deltaB...)
	merged = append(merged, deltaF...)
	slots := make([]int, 0, len(merged))
	for _, v := range merged {
		slots = append(slots, inc.ord[v])
	}
	sort.Ints(slots)
	for i, v := range merged {
		inc.ord[v] = slots[i]
		inc.pos[slots[i]] = v
	}
}

func (inc *Incremental) clearMarks() { inc.mark.Reset() }

// AddArcBatch inserts a set of arcs atomically: either every arc is
// inserted and a valid topological order restored, or (when the union
// would close a directed cycle) none is and ErrCycle is returned.
//
// This is the epoch-batched cycle check the sharded scheduler hot path
// uses: per-shard dependency deltas accumulate into one batch and are
// merged with a single cycle sweep instead of one Pearce–Kelly
// insertion per arc. Accept/reject agrees exactly with inserting the
// arcs one at a time via AddArc with rollback-on-failure: if the union
// is acyclic every sequential prefix is a subgraph of an acyclic graph
// (so AddArc accepts each), and if the union is cyclic some prefix
// insertion must close the cycle (so a sequential pass aborts too).
//
// The sweep is a single Kahn pass restricted to the affected region of
// the maintained order. After inserting the arcs, let lb be the
// minimum order of any violating arc's head and ub the maximum order
// of any violating arc's tail (a violating arc u -> v has
// ord[u] > ord[v]). Any directed cycle is confined to positions
// [lb, ub]: the minimum-order vertex m of a cycle has an incoming
// cycle arc that is necessarily violating, so ord[m] >= lb, and
// symmetrically the maximum-order vertex's outgoing cycle arc is
// violating, bounding it by ub. Re-sorting just that slice of the
// order against its intra-region arcs therefore either exhibits the
// cycle or yields a globally valid order (arcs crossing the region
// boundary were forward before the batch and remain forward, since
// region vertices keep positions inside [lb, ub]).
func (inc *Incremental) AddArcBatch(arcs [][2]int) error {
	for _, a := range arcs {
		if a[0] == a[1] {
			return ErrCycle
		}
	}
	lb, ub := -1, -1
	for _, a := range arcs {
		inc.g.AddArc(a[0], a[1])
		ou, ov := inc.ord[a[0]], inc.ord[a[1]]
		if ou > ov {
			if lb < 0 || ov < lb {
				lb = ov
			}
			if ou > ub {
				ub = ou
			}
		}
	}
	if lb < 0 {
		return nil // every arc already forward: order untouched
	}
	if err := inc.resortRegion(lb, ub); err != nil {
		for _, a := range arcs {
			inc.g.RemoveArc(a[0], a[1])
		}
		return err
	}
	return nil
}

// resortRegion recomputes the order of the vertices occupying
// positions [lb, ub] with one Kahn pass over the arcs internal to the
// region. On success ord/pos are updated in place; on a cycle they are
// left untouched and ErrCycle is returned. Ties break toward the
// vertex with the smallest previous position, keeping the result
// deterministic and close to the old order.
func (inc *Incremental) resortRegion(lb, ub int) error {
	n := ub - lb + 1
	verts := make([]int, n)
	copy(verts, inc.pos[lb:ub+1])
	idx := make(map[int]int, n) // vertex -> region index
	for i, v := range verts {
		idx[v] = i
	}
	indeg := make([]int, n)
	for _, u := range verts {
		for _, s := range inc.g.Successors(u) {
			if j, ok := idx[s]; ok {
				indeg[j]++
			}
		}
	}
	// Min-heap of ready vertices keyed by previous position.
	heap := make([]int, 0, n) // holds region indices
	less := func(a, b int) bool { return inc.ord[verts[a]] < inc.ord[verts[b]] }
	push := func(j int) {
		heap = append(heap, j)
		for c := len(heap) - 1; c > 0; {
			p := (c - 1) / 2
			if !less(heap[c], heap[p]) {
				break
			}
			heap[c], heap[p] = heap[p], heap[c]
			c = p
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for p := 0; ; {
			c := 2*p + 1
			if c >= len(heap) {
				break
			}
			if c+1 < len(heap) && less(heap[c+1], heap[c]) {
				c++
			}
			if !less(heap[c], heap[p]) {
				break
			}
			heap[p], heap[c] = heap[c], heap[p]
			p = c
		}
		return top
	}
	for j := 0; j < n; j++ {
		if indeg[j] == 0 {
			push(j)
		}
	}
	order := make([]int, 0, n)
	for len(heap) > 0 {
		j := pop()
		order = append(order, verts[j])
		for _, s := range inc.g.Successors(verts[j]) {
			if k, ok := idx[s]; ok {
				indeg[k]--
				if indeg[k] == 0 {
					push(k)
				}
			}
		}
	}
	if len(order) < n {
		return ErrCycle
	}
	for i, v := range order {
		inc.ord[v] = lb + i
		inc.pos[lb+i] = v
	}
	return nil
}

// FindPath returns a directed path from -> ... -> to as a vertex
// sequence, or nil if to is unreachable. Schedulers use it to explain
// rejections: after AddArc(u, v) fails with ErrCycle, FindPath(v, u)
// plus the refused arc is a concrete cycle witness. The search prunes
// by the maintained topological order (any path stays within
// [Order(from), Order(to)]), so it touches only the affected region.
func (inc *Incremental) FindPath(from, to int) []int {
	if from == to {
		return []int{from}
	}
	if inc.ord[from] > inc.ord[to] {
		return nil
	}
	parent := make(map[int]int, 16)
	parent[from] = from
	stack := []int{from}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range inc.g.Successors(w) {
			if inc.ord[s] > inc.ord[to] {
				continue
			}
			if _, seen := parent[s]; seen {
				continue
			}
			parent[s] = w
			if s == to {
				var rev []int
				for v := to; ; v = parent[v] {
					rev = append(rev, v)
					if v == from {
						break
					}
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			stack = append(stack, s)
		}
	}
	return nil
}

// TopoOrder returns the maintained topological order as a vertex slice.
func (inc *Incremental) TopoOrder() []int {
	out := make([]int, len(inc.pos))
	copy(out, inc.pos)
	return out
}

// Verify checks the internal invariants (ord/pos inverse bijection,
// every arc forward in the order). It is used by tests and is cheap
// enough to call in debug builds.
func (inc *Incremental) Verify() error {
	for v, o := range inc.ord {
		if inc.pos[o] != v {
			return errors.New("graph: ord/pos bijection broken")
		}
	}
	n := inc.g.Len()
	for u := 0; u < n; u++ {
		for _, v := range inc.g.Successors(u) {
			if inc.ord[u] >= inc.ord[v] {
				return errors.New("graph: arc violates maintained topological order")
			}
		}
	}
	return nil
}
