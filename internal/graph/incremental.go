package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycle is returned by Incremental.AddArc when inserting the arc
// would create a directed cycle; the arc is not inserted.
var ErrCycle = errors.New("graph: arc would create a cycle")

// Incremental maintains a topological order of a growing DAG under arc
// insertions (Pearce–Kelly, "A Dynamic Topological Sort Algorithm for
// Directed Acyclic Graphs", 2006). AddArc rejects — rather than
// inserts — arcs that would close a cycle, which is exactly the test an
// online serialization-graph scheduler needs on its hot path.
//
// Vertices are addressed by stable external IDs: AddVertex hands out
// consecutive integers that remain valid for the vertex's whole life,
// across any number of Retire compactions. Internally the order,
// bitset and sparse adjacency are kept dense over the live vertices
// only, so memory tracks live transactions rather than history; the
// external-ID indirection is what keeps scheduler and trace evidence
// links valid across the internal remap.
//
// Two insertion disciplines are offered:
//
//   - AddArc / AddArcBatch check for cycles and maintain the order
//     eagerly (rejecting with ErrCycle);
//   - AppendArcs inserts arcs the caller has already proven acyclic
//     (e.g. via a conservative vector-clock test) without any cycle
//     sweep, deferring order maintenance to the next Settle — the
//     O(1)-amortized fast path.
type Incremental struct {
	g    *Sparse
	ord  []int // ord[v] = position of v in the topological order
	pos  []int // pos[i] = vertex at position i (inverse of ord)
	mark Bitset

	// External-ID indirection. ext[v] is the stable ID of internal
	// vertex v; intIdx[x-base] is the internal vertex of external ID x
	// (-1 once retired). base advances over the retired prefix so
	// intIdx, too, stays proportional to the live set.
	ext     []int
	base    int
	intIdx  []int
	retired int

	// Deferred-settle window: positions [dirtyLb, dirtyUb] may hold
	// order-violating arcs appended by AppendArcs; -1 when settled.
	dirtyLb, dirtyUb int
}

// NewIncremental returns an incremental DAG with n vertices and no
// arcs, topologically ordered by vertex number.
func NewIncremental(n int) *Incremental {
	inc := &Incremental{g: NewSparse(n), dirtyLb: -1, dirtyUb: -1}
	inc.ord = make([]int, n)
	inc.pos = make([]int, n)
	inc.ext = make([]int, n)
	inc.intIdx = make([]int, n)
	for i := 0; i < n; i++ {
		inc.ord[i] = i
		inc.pos[i] = i
		inc.ext[i] = i
		inc.intIdx[i] = i
	}
	inc.mark = NewBitset(n)
	return inc
}

// Len returns the number of live (non-retired) vertices.
func (inc *Incremental) Len() int { return inc.g.Len() }

// RetiredCount returns the number of vertices removed by Retire over
// the structure's lifetime.
func (inc *Incremental) RetiredCount() int { return inc.retired }

// Retired reports whether the external vertex ID has been retired.
// IDs never handed out by AddVertex panic.
func (inc *Incremental) Retired(x int) bool {
	_, live := inc.intOf(x)
	return !live
}

// intOf translates an external ID to its internal vertex; the second
// result is false when the vertex has been retired.
func (inc *Incremental) intOf(x int) (int, bool) {
	i := x - inc.base
	if i < 0 {
		if x < 0 {
			panic(fmt.Sprintf("graph: negative vertex ID %d", x))
		}
		return -1, false // below the retired prefix
	}
	if i >= len(inc.intIdx) {
		panic(fmt.Sprintf("graph: unknown vertex ID %d (max %d)", x, inc.base+len(inc.intIdx)-1))
	}
	v := inc.intIdx[i]
	if v < 0 {
		return -1, false
	}
	return v, true
}

// mustInt translates an external ID, panicking on retired IDs: arcs
// may only touch live vertices, so a retired operand is a caller bug.
func (inc *Incremental) mustInt(x int) int {
	v, live := inc.intOf(x)
	if !live {
		panic(fmt.Sprintf("graph: vertex ID %d is retired", x))
	}
	return v
}

// AddVertex appends a fresh vertex (last in the current order) and
// returns its stable external ID.
func (inc *Incremental) AddVertex() int {
	v := inc.g.AddVertex()
	inc.ord = append(inc.ord, v)
	inc.pos = append(inc.pos, v)
	// Grow the mark bitset to the exact required length. A single-word
	// append is not enough here: after a retirement compaction rebuilds
	// mark over the live set, the internal index can sit more than one
	// word beyond the current capacity, and under-allocating makes a
	// later mark.Set index out of range.
	for v >= len(inc.mark)*wordBits {
		inc.mark = append(inc.mark, 0)
	}
	x := inc.base + len(inc.intIdx)
	inc.intIdx = append(inc.intIdx, v)
	inc.ext = append(inc.ext, x)
	return x
}

// HasArc reports whether the arc u -> v is present. Retired endpoints
// have no arcs.
func (inc *Incremental) HasArc(u, v int) bool {
	iu, okU := inc.intOf(u)
	iv, okV := inc.intOf(v)
	if !okU || !okV {
		return false
	}
	return inc.g.HasArc(iu, iv)
}

// ArcCount returns the number of distinct arcs.
func (inc *Incremental) ArcCount() int { return inc.g.ArcCount() }

// Order returns the current topological position of v among the live
// vertices; if u precedes v in every linear extension seen so far then
// Order(u) < Order(v). Retired vertices return -1. Positions are
// recomputed by retirement compaction, so they are only comparable
// between calls with no intervening Retire.
func (inc *Incremental) Order(v int) int {
	iv, ok := inc.intOf(v)
	if !ok {
		return -1
	}
	inc.mustSettle()
	return inc.ord[iv]
}

// WouldCycle reports whether inserting u -> v would create a cycle,
// without inserting it. Retired endpoints cannot cycle.
func (inc *Incremental) WouldCycle(u, v int) bool {
	if u == v {
		return true
	}
	iu, okU := inc.intOf(u)
	iv, okV := inc.intOf(v)
	if !okU || !okV {
		return false
	}
	inc.mustSettle()
	if inc.ord[iu] < inc.ord[iv] || inc.g.HasArc(iu, iv) {
		return false
	}
	found, _ := inc.forwardSearch(iv, inc.ord[iu], iu)
	inc.clearMarks()
	return found
}

// AddArc inserts u -> v, restoring a valid topological order. If the
// arc would create a cycle (including u == v) it returns ErrCycle and
// leaves the structure unchanged. Inserting an arc that is already
// present just bumps its multiplicity.
func (inc *Incremental) AddArc(u, v int) error {
	if u == v {
		return ErrCycle
	}
	iu := inc.mustInt(u)
	iv := inc.mustInt(v)
	// While a dirty window is pending, ord is still the order from
	// before the appended arcs, which is exactly the state the window
	// bounds were computed against: a forward arc can be inserted
	// directly (settling later covers it), anything else settles first.
	if inc.g.HasArc(iu, iv) || inc.ord[iu] < inc.ord[iv] {
		inc.g.AddArc(iu, iv)
		return nil
	}
	inc.mustSettle()
	if inc.ord[iu] < inc.ord[iv] {
		inc.g.AddArc(iu, iv)
		return nil
	}
	// Affected region: positions (ord[v] .. ord[u]).
	lb, ub := inc.ord[iv], inc.ord[iu]
	found, deltaF := inc.forwardSearch(iv, ub, iu)
	if found {
		inc.clearMarks()
		return ErrCycle
	}
	deltaB := inc.backwardSearch(iu, lb)
	inc.reorder(deltaF, deltaB)
	inc.clearMarks()
	inc.g.AddArc(iu, iv)
	return nil
}

// RemoveArc removes one multiplicity of u -> v. The topological order
// remains valid (removal can only relax constraints).
func (inc *Incremental) RemoveArc(u, v int) {
	inc.g.RemoveArc(inc.mustInt(u), inc.mustInt(v))
}

// IsolateVertex removes all arcs incident to v. The vertex keeps its
// position; the order remains valid. Retired vertices are already
// isolated, so the call is a no-op for them.
func (inc *Incremental) IsolateVertex(v int) {
	if iv, ok := inc.intOf(v); ok {
		inc.g.IsolateVertex(iv)
	}
}

// Successors returns the successors of u in ascending external-ID
// order; nil for retired vertices.
func (inc *Incremental) Successors(u int) []int {
	iu, ok := inc.intOf(u)
	if !ok {
		return nil
	}
	return inc.toExt(inc.g.Successors(iu))
}

// InDegree returns the number of distinct predecessors of u (zero once
// retired).
func (inc *Incremental) InDegree(u int) int {
	iu, ok := inc.intOf(u)
	if !ok {
		return 0
	}
	return inc.g.InDegree(iu)
}

// OutDegree returns the number of distinct successors of u (zero once
// retired).
func (inc *Incremental) OutDegree(u int) int {
	iu, ok := inc.intOf(u)
	if !ok {
		return 0
	}
	return inc.g.OutDegree(iu)
}

// Predecessors returns the predecessors of u in ascending external-ID
// order; nil for retired vertices.
func (inc *Incremental) Predecessors(u int) []int {
	iu, ok := inc.intOf(u)
	if !ok {
		return nil
	}
	return inc.toExt(inc.g.Predecessors(iu))
}

// toExt maps internal vertices to external IDs in place. ext is
// monotone in the internal index (compaction preserves relative
// order), so ascending input order is preserved.
func (inc *Incremental) toExt(vs []int) []int {
	for i, v := range vs {
		vs[i] = inc.ext[v]
	}
	return vs
}

// forwardSearch explores forward from start over vertices with order
// <= ub, marking visited vertices. It reports whether target was
// reached and returns the visited set (excluding target). Operates on
// internal indices.
func (inc *Incremental) forwardSearch(start, ub, target int) (bool, []int) {
	var visited []int
	stack := []int{start}
	inc.mark.Set(start)
	visited = append(visited, start)
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range inc.g.Successors(w) {
			if s == target {
				return true, visited
			}
			if inc.ord[s] <= ub && !inc.mark.Has(s) {
				inc.mark.Set(s)
				visited = append(visited, s)
				stack = append(stack, s)
			}
		}
	}
	return false, visited
}

// backwardSearch explores backward from start over vertices with order
// >= lb, marking and returning visited vertices. Internal indices.
func (inc *Incremental) backwardSearch(start, lb int) []int {
	var visited []int
	stack := []int{start}
	inc.mark.Set(start)
	visited = append(visited, start)
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range inc.g.Predecessors(w) {
			if inc.ord[p] >= lb && !inc.mark.Has(p) {
				inc.mark.Set(p)
				visited = append(visited, p)
				stack = append(stack, p)
			}
		}
	}
	return visited
}

// reorder reassigns the positions occupied by deltaB ∪ deltaF so that
// every vertex of deltaB precedes every vertex of deltaF, preserving
// the relative order within each set. Internal indices.
func (inc *Incremental) reorder(deltaF, deltaB []int) {
	sort.Slice(deltaF, func(i, j int) bool { return inc.ord[deltaF[i]] < inc.ord[deltaF[j]] })
	sort.Slice(deltaB, func(i, j int) bool { return inc.ord[deltaB[i]] < inc.ord[deltaB[j]] })
	merged := make([]int, 0, len(deltaF)+len(deltaB))
	merged = append(merged, deltaB...)
	merged = append(merged, deltaF...)
	slots := make([]int, 0, len(merged))
	for _, v := range merged {
		slots = append(slots, inc.ord[v])
	}
	sort.Ints(slots)
	for i, v := range merged {
		inc.ord[v] = slots[i]
		inc.pos[slots[i]] = v
	}
}

func (inc *Incremental) clearMarks() { inc.mark.Reset() }

// AddArcBatch inserts a set of arcs atomically: either every arc is
// inserted and a valid topological order restored, or (when the union
// would close a directed cycle) none is and ErrCycle is returned.
//
// This is the epoch-batched cycle check the sharded scheduler hot path
// uses: per-shard dependency deltas accumulate into one batch and are
// merged with a single cycle sweep instead of one Pearce–Kelly
// insertion per arc. Accept/reject agrees exactly with inserting the
// arcs one at a time via AddArc with rollback-on-failure: if the union
// is acyclic every sequential prefix is a subgraph of an acyclic graph
// (so AddArc accepts each), and if the union is cyclic some prefix
// insertion must close the cycle (so a sequential pass aborts too).
//
// The sweep is a single Kahn pass restricted to the affected region of
// the maintained order. After inserting the arcs, let lb be the
// minimum order of any violating arc's head and ub the maximum order
// of any violating arc's tail (a violating arc u -> v has
// ord[u] > ord[v]). Any directed cycle is confined to positions
// [lb, ub]: the minimum-order vertex m of a cycle has an incoming
// cycle arc that is necessarily violating, so ord[m] >= lb, and
// symmetrically the maximum-order vertex's outgoing cycle arc is
// violating, bounding it by ub. Re-sorting just that slice of the
// order against its intra-region arcs therefore either exhibits the
// cycle or yields a globally valid order (arcs crossing the region
// boundary were forward before the batch and remain forward, since
// region vertices keep positions inside [lb, ub]).
func (inc *Incremental) AddArcBatch(arcs [][2]int) error {
	inc.mustSettle()
	for _, a := range arcs {
		if a[0] == a[1] {
			return ErrCycle
		}
	}
	lb, ub := -1, -1
	for _, a := range arcs {
		iu, iv := inc.mustInt(a[0]), inc.mustInt(a[1])
		inc.g.AddArc(iu, iv)
		ou, ov := inc.ord[iu], inc.ord[iv]
		if ou > ov {
			if lb < 0 || ov < lb {
				lb = ov
			}
			if ou > ub {
				ub = ou
			}
		}
	}
	if lb < 0 {
		return nil // every arc already forward: order untouched
	}
	if err := inc.resortRegion(lb, ub); err != nil {
		for _, a := range arcs {
			inc.g.RemoveArc(inc.mustInt(a[0]), inc.mustInt(a[1]))
		}
		return err
	}
	return nil
}

// AppendArcs inserts arcs the caller has already certified acyclic —
// the vector-clock fast path — without any cycle sweep. Only the
// deferred-settle window is extended; the maintained order is restored
// lazily by the next Settle (every order-consuming operation settles
// automatically first). Appending an arc that would close a cycle
// violates the contract and makes the next Settle panic.
func (inc *Incremental) AppendArcs(arcs [][2]int) {
	for _, a := range arcs {
		iu, iv := inc.mustInt(a[0]), inc.mustInt(a[1])
		inc.g.AddArc(iu, iv)
		ou, ov := inc.ord[iu], inc.ord[iv]
		if ou > ov {
			if inc.dirtyLb < 0 || ov < inc.dirtyLb {
				inc.dirtyLb = ov
			}
			if ou > inc.dirtyUb {
				inc.dirtyUb = ou
			}
		}
	}
}

// NeedsSettle reports whether appended arcs are awaiting order
// maintenance.
func (inc *Incremental) NeedsSettle() bool { return inc.dirtyLb >= 0 }

// Settle restores the maintained topological order over the deferred
// window accumulated by AppendArcs. The window argument to the region
// resort is exactly the violating-arc bound AddArcBatch would have
// computed for the union of all appended arcs (ord is untouched while
// the window is dirty), so the single Kahn pass is sound here for the
// same reason it is there. It returns ErrCycle only if an AppendArcs
// caller broke its acyclicity contract; the arcs stay in place in that
// case, so callers treat the error as a certification bug, not a
// recoverable rejection.
func (inc *Incremental) Settle() error {
	if inc.dirtyLb < 0 {
		return nil
	}
	lb, ub := inc.dirtyLb, inc.dirtyUb
	inc.dirtyLb, inc.dirtyUb = -1, -1
	return inc.resortRegion(lb, ub)
}

// mustSettle settles before an order-consuming operation; a cycle here
// means an AppendArcs caller certified a cyclic batch, which is always
// a scheduler bug.
func (inc *Incremental) mustSettle() {
	if err := inc.Settle(); err != nil {
		panic("graph: Settle found a cycle — an AppendArcs caller broke its acyclicity contract")
	}
}

// RetireResult reports what a retirement epoch removed.
type RetireResult struct {
	// Retired counts vertices removed by this call.
	Retired int
	// Live counts vertices remaining after compaction.
	Live int
}

// Retire removes the given external vertex IDs from the structure in
// one epoch batch: any remaining incident arcs are dropped, and the
// Pearce–Kelly order, bitset and sparse adjacency are compacted over
// the surviving vertices. External IDs of survivors are unchanged
// (they are stable handles); retired IDs answer Retired(id) == true,
// degree/successor queries return empty, and FindPath treats them as
// unreachable. Already-retired IDs are skipped, so the call is
// idempotent.
//
// Soundness (why the scheduler may retire a committed transaction's
// vertices): new arcs always terminate at a live requester's vertices,
// so a committed transaction none of whose vertices can acquire an
// incoming arc — no live conflicting peer — can never rejoin a cycle;
// its vertices are permanently cycle-free and only occupy memory.
func (inc *Incremental) Retire(vs []int) RetireResult {
	inc.mustSettle()
	n := inc.g.Len()
	cnt := 0
	drop := make([]bool, n)
	for _, x := range vs {
		v, live := inc.intOf(x)
		if !live {
			continue
		}
		inc.g.IsolateVertex(v)
		if !drop[v] {
			drop[v] = true
			cnt++
		}
	}
	if cnt == 0 {
		return RetireResult{Live: n}
	}
	m := n - cnt
	remap := make([]int, n)
	next := 0
	for v := 0; v < n; v++ {
		if drop[v] {
			remap[v] = -1
		} else {
			remap[v] = next
			next++
		}
	}
	// Compact the order: survivors keep their relative positions.
	newPos := make([]int, 0, m)
	for i := 0; i < n; i++ {
		if v := inc.pos[i]; !drop[v] {
			newPos = append(newPos, remap[v])
		}
	}
	newOrd := make([]int, m)
	for i, v := range newPos {
		newOrd[v] = i
	}
	newExt := make([]int, 0, m)
	for v := 0; v < n; v++ {
		if !drop[v] {
			newExt = append(newExt, inc.ext[v])
		}
	}
	inc.g.Compact(remap, m)
	inc.ord, inc.pos, inc.ext = newOrd, newPos, newExt
	inc.mark = NewBitset(m)
	for i := range inc.intIdx {
		inc.intIdx[i] = -1
	}
	for v, x := range newExt {
		inc.intIdx[x-inc.base] = v
	}
	// Advance the base over the retired prefix so the indirection
	// table, too, shrinks with the live set.
	trim := 0
	for trim < len(inc.intIdx) && inc.intIdx[trim] == -1 {
		trim++
	}
	if trim > 0 {
		inc.base += trim
		inc.intIdx = append(inc.intIdx[:0], inc.intIdx[trim:]...)
	}
	inc.retired += cnt
	return RetireResult{Retired: cnt, Live: m}
}

// resortRegion recomputes the order of the vertices occupying
// positions [lb, ub] with one Kahn pass over the arcs internal to the
// region. On success ord/pos are updated in place; on a cycle they are
// left untouched and ErrCycle is returned. Ties break toward the
// vertex with the smallest previous position, keeping the result
// deterministic and close to the old order. Internal indices.
func (inc *Incremental) resortRegion(lb, ub int) error {
	n := ub - lb + 1
	verts := make([]int, n)
	copy(verts, inc.pos[lb:ub+1])
	idx := make(map[int]int, n) // vertex -> region index
	for i, v := range verts {
		idx[v] = i
	}
	indeg := make([]int, n)
	for _, u := range verts {
		for _, s := range inc.g.Successors(u) {
			if j, ok := idx[s]; ok {
				indeg[j]++
			}
		}
	}
	// Min-heap of ready vertices keyed by previous position.
	heap := make([]int, 0, n) // holds region indices
	less := func(a, b int) bool { return inc.ord[verts[a]] < inc.ord[verts[b]] }
	push := func(j int) {
		heap = append(heap, j)
		for c := len(heap) - 1; c > 0; {
			p := (c - 1) / 2
			if !less(heap[c], heap[p]) {
				break
			}
			heap[c], heap[p] = heap[p], heap[c]
			c = p
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for p := 0; ; {
			c := 2*p + 1
			if c >= len(heap) {
				break
			}
			if c+1 < len(heap) && less(heap[c+1], heap[c]) {
				c++
			}
			if !less(heap[c], heap[p]) {
				break
			}
			heap[p], heap[c] = heap[c], heap[p]
			p = c
		}
		return top
	}
	for j := 0; j < n; j++ {
		if indeg[j] == 0 {
			push(j)
		}
	}
	order := make([]int, 0, n)
	for len(heap) > 0 {
		j := pop()
		order = append(order, verts[j])
		for _, s := range inc.g.Successors(verts[j]) {
			if k, ok := idx[s]; ok {
				indeg[k]--
				if indeg[k] == 0 {
					push(k)
				}
			}
		}
	}
	if len(order) < n {
		return ErrCycle
	}
	for i, v := range order {
		inc.ord[v] = lb + i
		inc.pos[lb+i] = v
	}
	return nil
}

// FindPath returns a directed path from -> ... -> to as a vertex
// sequence, or nil if to is unreachable. Schedulers use it to explain
// rejections: after AddArc(u, v) fails with ErrCycle, FindPath(v, u)
// plus the refused arc is a concrete cycle witness. The search prunes
// by the maintained topological order (any path stays within
// [Order(from), Order(to)]), so it touches only the affected region.
// Retired endpoints are unreachable by construction (their arcs are
// gone), so the path is nil rather than a panic on a remapped ID.
func (inc *Incremental) FindPath(from, to int) []int {
	if from == to {
		if _, ok := inc.intOf(from); !ok {
			return nil
		}
		return []int{from}
	}
	iFrom, okFrom := inc.intOf(from)
	iTo, okTo := inc.intOf(to)
	if !okFrom || !okTo {
		return nil
	}
	inc.mustSettle()
	if inc.ord[iFrom] > inc.ord[iTo] {
		return nil
	}
	parent := make(map[int]int, 16)
	parent[iFrom] = iFrom
	stack := []int{iFrom}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range inc.g.Successors(w) {
			if inc.ord[s] > inc.ord[iTo] {
				continue
			}
			if _, seen := parent[s]; seen {
				continue
			}
			parent[s] = w
			if s == iTo {
				var rev []int
				for v := iTo; ; v = parent[v] {
					rev = append(rev, v)
					if v == iFrom {
						break
					}
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return inc.toExt(rev)
			}
			stack = append(stack, s)
		}
	}
	return nil
}

// TopoOrder returns the maintained topological order of the live
// vertices as a slice of external IDs.
func (inc *Incremental) TopoOrder() []int {
	inc.mustSettle()
	out := make([]int, len(inc.pos))
	copy(out, inc.pos)
	return inc.toExt(out)
}

// Verify checks the internal invariants (ord/pos inverse bijection,
// every arc forward in the order, external-ID indirection consistent).
// It is used by tests and is cheap enough to call in debug builds.
func (inc *Incremental) Verify() error {
	inc.mustSettle()
	for v, o := range inc.ord {
		if inc.pos[o] != v {
			return errors.New("graph: ord/pos bijection broken")
		}
	}
	n := inc.g.Len()
	for u := 0; u < n; u++ {
		for _, v := range inc.g.Successors(u) {
			if inc.ord[u] >= inc.ord[v] {
				return errors.New("graph: arc violates maintained topological order")
			}
		}
	}
	if len(inc.ext) != n {
		return errors.New("graph: ext length diverged from vertex count")
	}
	live := 0
	for i, v := range inc.intIdx {
		if v < 0 {
			continue
		}
		live++
		if v >= n || inc.ext[v] != inc.base+i {
			return errors.New("graph: external-ID indirection broken")
		}
	}
	if live != n {
		return errors.New("graph: intIdx live count diverged from vertex count")
	}
	if n > len(inc.mark)*wordBits {
		return errors.New("graph: mark bitset under-allocated")
	}
	return nil
}
