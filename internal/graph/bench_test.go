package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomDAGArcs(rng *rand.Rand, n int, density float64) [][2]int {
	var arcs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < density {
				arcs = append(arcs, [2]int{u, v})
			}
		}
	}
	rng.Shuffle(len(arcs), func(i, j int) { arcs[i], arcs[j] = arcs[j], arcs[i] })
	return arcs
}

func BenchmarkDenseTopoOrder(b *testing.B) {
	for _, n := range []int{128, 512, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := NewDense(n)
			for _, a := range randomDAGArcs(rng, n, 0.05) {
				g.AddArc(a[0], a[1])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := g.TopoOrder(); !ok {
					b.Fatal("unexpected cycle")
				}
			}
		})
	}
}

func BenchmarkIncrementalAddArc(b *testing.B) {
	// Pearce-Kelly incremental insertion of a shuffled DAG edge stream,
	// the online schedulers' hot path.
	for _, n := range []int{128, 512, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			arcs := randomDAGArcs(rng, n, 0.05)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inc := NewIncremental(n)
				for _, a := range arcs {
					if err := inc.AddArc(a[0], a[1]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkIncrementalAddArcBatch(b *testing.B) {
	// Epoch-batched insertion: the same shuffled DAG edge stream as
	// BenchmarkIncrementalAddArc, but inserted in fixed-size batches
	// with one cycle sweep per batch — the sharded schedulers' delta
	// merge path.
	for _, batch := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			const n = 512
			rng := rand.New(rand.NewSource(2))
			arcs := randomDAGArcs(rng, n, 0.05)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inc := NewIncremental(n)
				for lo := 0; lo < len(arcs); lo += batch {
					hi := lo + batch
					if hi > len(arcs) {
						hi = len(arcs)
					}
					if err := inc.AddArcBatch(arcs[lo:hi]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkIncrementalVsBatchRecheck(b *testing.B) {
	// The alternative to Pearce-Kelly: rebuild-and-recheck the dense
	// graph on every insertion. The incremental structure's advantage
	// is visible by comparing the two benchmarks.
	const n = 256
	rng := rand.New(rand.NewSource(3))
	arcs := randomDAGArcs(rng, n, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewDense(n)
		for _, a := range arcs {
			g.AddArc(a[0], a[1])
			if g.HasCycle() {
				b.Fatal("unexpected cycle")
			}
		}
	}
}

func BenchmarkIncrementalAppendArcs(b *testing.B) {
	// The two insertion paths the certifier chooses between per request:
	// arcs the vector clocks already proved acyclic are appended with
	// the settle deferred (fast-path hit), while suspected batches go
	// through the per-batch cycle sweep. The gate watches both.
	const n = 512
	rng := rand.New(rand.NewSource(2))
	arcs := randomDAGArcs(rng, n, 0.05)
	b.Run("appendarcs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inc := NewIncremental(n)
			for lo := 0; lo < len(arcs); lo += 4 {
				hi := lo + 4
				if hi > len(arcs) {
					hi = len(arcs)
				}
				inc.AppendArcs(arcs[lo:hi])
			}
			if err := inc.Settle(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("addarcbatch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inc := NewIncremental(n)
			for lo := 0; lo < len(arcs); lo += 4 {
				hi := lo + 4
				if hi > len(arcs) {
					hi = len(arcs)
				}
				if err := inc.AddArcBatch(arcs[lo:hi]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkIncrementalRetireStream(b *testing.B) {
	// Steady-state bounded-memory certification: a forward chain of
	// vertices streams through the graph with a sliding live window,
	// retiring in epoch batches once the pending set outnumbers the live
	// half — the schedulers' production retirement schedule. Cost is per
	// streamed vertex, amortizing the epoch compactions.
	for _, epoch := range []int{64, 256} {
		b.Run(fmt.Sprintf("epoch=%d", epoch), func(b *testing.B) {
			const window = 8
			inc := NewIncremental(0)
			var live, retireQ []int
			prev := -1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := inc.AddVertex()
				if prev >= 0 {
					inc.AppendArcs([][2]int{{prev, v}})
				}
				prev = v
				live = append(live, v)
				if len(live) > window {
					retireQ = append(retireQ, live[0])
					live = live[1:]
				}
				if len(retireQ) >= epoch && 2*len(retireQ) >= inc.Len() {
					inc.Retire(retireQ)
					retireQ = retireQ[:0]
				}
			}
		})
	}
}

func BenchmarkDenseTransitiveClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := NewDense(512)
	for _, a := range randomDAGArcs(rng, 512, 0.02) {
		g.AddArc(a[0], a[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.TransitiveClosure()
	}
}
