package graph

import (
	"fmt"
	"sort"
)

// Sparse is a directed graph with adjacency lists and O(1) arc
// multiplicity tracking. It supports vertex growth and arc removal,
// which the online schedulers need (transactions come and go).
type Sparse struct {
	succ  []map[int]int // succ[u][v] = multiplicity of arc u -> v
	pred  []map[int]int
	nArcs int // distinct arcs
}

// NewSparse returns an empty sparse digraph with n vertices.
func NewSparse(n int) *Sparse {
	g := &Sparse{}
	g.Grow(n)
	return g
}

// Len returns the current number of vertices.
func (g *Sparse) Len() int { return len(g.succ) }

// Grow extends the vertex set to at least n vertices.
func (g *Sparse) Grow(n int) {
	for len(g.succ) < n {
		g.succ = append(g.succ, nil)
		g.pred = append(g.pred, nil)
	}
}

// AddVertex appends a fresh vertex and returns its index.
func (g *Sparse) AddVertex() int {
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return len(g.succ) - 1
}

// AddArc inserts the arc u -> v, incrementing its multiplicity if it
// already exists. Multiplicity lets independent arc producers (e.g.
// different arc kinds in an RSG) add and remove the same arc without
// coordinating.
func (g *Sparse) AddArc(u, v int) {
	if g.succ[u] == nil {
		g.succ[u] = make(map[int]int)
	}
	if g.pred[v] == nil {
		g.pred[v] = make(map[int]int)
	}
	if g.succ[u][v] == 0 {
		g.nArcs++
	}
	g.succ[u][v]++
	g.pred[v][u]++
}

// RemoveArc decrements the multiplicity of u -> v, deleting the arc
// when it reaches zero. Removing an absent arc panics: it always
// indicates a bookkeeping bug in the caller.
func (g *Sparse) RemoveArc(u, v int) {
	m, ok := g.succ[u][v]
	if !ok {
		panic(fmt.Sprintf("graph: RemoveArc(%d, %d): arc not present", u, v))
	}
	if m == 1 {
		delete(g.succ[u], v)
		delete(g.pred[v], u)
		g.nArcs--
	} else {
		g.succ[u][v] = m - 1
		g.pred[v][u] = m - 1
	}
}

// HasArc reports whether the arc u -> v is present.
func (g *Sparse) HasArc(u, v int) bool { return g.succ[u][v] > 0 }

// ArcCount returns the number of distinct arcs.
func (g *Sparse) ArcCount() int { return g.nArcs }

// IsolateVertex removes every arc incident to u, leaving the vertex in
// place (vertex indices are stable handles for callers).
func (g *Sparse) IsolateVertex(u int) {
	for v := range g.succ[u] {
		delete(g.pred[v], u)
		g.nArcs--
	}
	g.succ[u] = nil
	for p := range g.pred[u] {
		delete(g.succ[p], u)
		g.nArcs--
	}
	g.pred[u] = nil
}

// Compact renumbers the vertex set according to remap (remap[old] =
// new index, or -1 for a dropped vertex), shrinking it to m vertices.
// Dropped vertices must already be isolated: a dangling arc touching
// one always indicates a bookkeeping bug in the caller, so Compact
// panics rather than silently dropping it. Retirement epochs use this
// to reclaim the adjacency slots of pruned transactions.
func (g *Sparse) Compact(remap []int, m int) {
	if len(remap) != len(g.succ) {
		panic(fmt.Sprintf("graph: Compact remap has %d entries for %d vertices", len(remap), len(g.succ)))
	}
	g.succ = compactAdj(g.succ, remap, m)
	g.pred = compactAdj(g.pred, remap, m)
}

func compactAdj(adj []map[int]int, remap []int, m int) []map[int]int {
	out := make([]map[int]int, m)
	for u, row := range adj {
		nu := remap[u]
		if nu < 0 {
			if len(row) > 0 {
				panic(fmt.Sprintf("graph: Compact dropping vertex %d with %d arcs", u, len(row)))
			}
			continue
		}
		if len(row) == 0 {
			continue
		}
		nr := make(map[int]int, len(row))
		for v, mult := range row {
			nv := remap[v]
			if nv < 0 {
				panic(fmt.Sprintf("graph: Compact dropped vertex %d still has an arc with %d", v, u))
			}
			nr[nv] = mult
		}
		out[nu] = nr
	}
	return out
}

// Successors returns the successors of u in ascending order.
func (g *Sparse) Successors(u int) []int { return sortedKeys(g.succ[u]) }

// Predecessors returns the predecessors of u in ascending order.
func (g *Sparse) Predecessors(u int) []int { return sortedKeys(g.pred[u]) }

// OutDegree returns the number of distinct successors of u.
func (g *Sparse) OutDegree(u int) int { return len(g.succ[u]) }

// InDegree returns the number of distinct predecessors of u.
func (g *Sparse) InDegree(u int) int { return len(g.pred[u]) }

func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *Sparse) HasCycle() bool {
	return g.FindCycleFrom(-1) != nil
}

// FindCycleFrom returns a directed cycle as a vertex sequence, or nil
// if none exists. If start >= 0, only cycles reachable from start are
// searched, which is the common case for incremental checks after
// adding arcs out of start.
func (g *Sparse) FindCycleFrom(start int) []int {
	n := len(g.succ)
	color := make([]byte, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	roots := make([]int, 0, n)
	if start >= 0 {
		roots = append(roots, start)
	} else {
		for v := 0; v < n; v++ {
			roots = append(roots, v)
		}
	}
	type frame struct {
		u    int
		next []int
		i    int
	}
	for _, s := range roots {
		if color[s] != colorWhite {
			continue
		}
		color[s] = colorGray
		stack := []frame{{u: s, next: g.Successors(s)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(f.next) {
				v := f.next[f.i]
				f.i++
				switch color[v] {
				case colorWhite:
					color[v] = colorGray
					parent[v] = f.u
					stack = append(stack, frame{u: v, next: g.Successors(v)})
				case colorGray:
					cyc := []int{v}
					for w := f.u; w != v; w = parent[w] {
						cyc = append(cyc, w)
					}
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[f.u] = colorBlack
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// ReachableFrom reports whether target is reachable from source via one
// or more arcs.
func (g *Sparse) ReachableFrom(source, target int) bool {
	n := len(g.succ)
	seen := NewBitset(n)
	stack := []int{source}
	first := true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range g.succ[u] {
			if v == target {
				return true
			}
			if !seen.Has(v) {
				seen.Set(v)
				stack = append(stack, v)
			}
		}
		_ = first
		first = false
	}
	return false
}

// SCCs returns the strongly connected components in reverse topological
// order (Tarjan, iterative). Vertices inside each component are sorted
// ascending for determinism.
func (g *Sparse) SCCs() [][]int {
	n := len(g.succ)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		comps   [][]int
		tstack  []int
		counter int
	)
	type frame struct {
		u    int
		next []int
		i    int
	}
	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		stack := []frame{{u: s, next: g.Successors(s)}}
		index[s], low[s] = counter, counter
		counter++
		tstack = append(tstack, s)
		onStack[s] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(f.next) {
				v := f.next[f.i]
				f.i++
				if index[v] == -1 {
					index[v], low[v] = counter, counter
					counter++
					tstack = append(tstack, v)
					onStack[v] = true
					stack = append(stack, frame{u: v, next: g.Successors(v)})
				} else if onStack[v] && index[v] < low[f.u] {
					low[f.u] = index[v]
				}
			} else {
				u := f.u
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := &stack[len(stack)-1]
					if low[u] < low[p.u] {
						low[p.u] = low[u]
					}
				}
				if low[u] == index[u] {
					var comp []int
					for {
						w := tstack[len(tstack)-1]
						tstack = tstack[:len(tstack)-1]
						onStack[w] = false
						comp = append(comp, w)
						if w == u {
							break
						}
					}
					sort.Ints(comp)
					comps = append(comps, comp)
				}
			}
		}
	}
	return comps
}
