package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(200)
	if !b.Empty() {
		t.Fatal("new bitset should be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		b.Set(i)
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if !b.Has(i) {
			t.Errorf("Has(%d) = false, want true", i)
		}
	}
	for _, i := range []int{2, 62, 66, 126, 198} {
		if b.Has(i) {
			t.Errorf("Has(%d) = true, want false", i)
		}
	}
	b.Clear(64)
	if b.Has(64) {
		t.Error("Clear(64) did not clear")
	}
	if b.Count() != 7 {
		t.Fatalf("Count after Clear = %d, want 7", b.Count())
	}
}

func TestBitsetHasOutOfRange(t *testing.T) {
	b := NewBitset(10)
	if b.Has(1000) {
		t.Error("Has beyond capacity should report false")
	}
	if b.Has(-1) {
		t.Error("Has(-1) should report false")
	}
}

func TestBitsetUnionIntersect(t *testing.T) {
	a := NewBitset(128)
	b := NewBitset(128)
	a.Set(3)
	a.Set(70)
	b.Set(70)
	b.Set(90)
	if !a.Intersects(b) {
		t.Error("expected intersection at 70")
	}
	u := a.Clone()
	u.UnionWith(b)
	want := []int{3, 70, 90}
	got := u.Elements()
	if len(got) != len(want) {
		t.Fatalf("union elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union elements = %v, want %v", got, want)
		}
	}
	x := a.Clone()
	x.IntersectWith(b)
	if x.Count() != 1 || !x.Has(70) {
		t.Fatalf("intersection = %v, want {70}", x.Elements())
	}
}

func TestBitsetIntersectsDisjoint(t *testing.T) {
	a := NewBitset(64)
	b := NewBitset(64)
	a.Set(0)
	b.Set(1)
	if a.Intersects(b) {
		t.Error("disjoint sets should not intersect")
	}
}

func TestBitsetForEachEarlyStop(t *testing.T) {
	b := NewBitset(100)
	for i := 0; i < 100; i += 10 {
		b.Set(i)
	}
	var seen []int
	b.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 10 || seen[2] != 20 {
		t.Fatalf("early stop saw %v", seen)
	}
}

func TestBitsetResetCloneIndependence(t *testing.T) {
	a := NewBitset(64)
	a.Set(5)
	c := a.Clone()
	a.Reset()
	if !a.Empty() {
		t.Error("Reset did not empty the set")
	}
	if !c.Has(5) {
		t.Error("Clone should be independent of Reset")
	}
}

func TestBitsetString(t *testing.T) {
	b := NewBitset(64)
	b.Set(1)
	b.Set(5)
	if got := b.String(); got != "{1, 5}" {
		t.Errorf("String = %q, want {1, 5}", got)
	}
	if got := NewBitset(64).String(); got != "{}" {
		t.Errorf("empty String = %q, want {}", got)
	}
}

func TestBitsetQuickMatchesMap(t *testing.T) {
	// Property: a bitset agrees with a map[int]bool reference under a
	// random sequence of Set/Clear operations.
	f := func(ops []uint16) bool {
		const n = 256
		b := NewBitset(n)
		ref := make(map[int]bool)
		for _, raw := range ops {
			i := int(raw) % n
			if raw%2 == 0 {
				b.Set(i)
				ref[i] = true
			} else {
				b.Clear(i)
				delete(ref, i)
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Has(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestBitsetCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UnionWith with mismatched capacity should panic")
		}
	}()
	NewBitset(64).UnionWith(NewBitset(128))
}
