// Package trace is the structured observability layer of the runtime:
// every protocol decision, driver transition, WAL append and store
// latch crossing becomes a typed Event that sinks can persist as JSONL,
// render as a Chrome trace_event timeline, or replay against the
// paper's offline theory (VerifyCycles checks that each online
// CycleReject names an RSG cycle the offline core.RSG confirms).
//
// The layer is built to cost nothing when off: a nil *Tracer (the
// default everywhere) reports Enabled() == false, and every
// instrumentation site guards event construction behind that check, so
// the disabled hot path is a single nil comparison with zero
// allocations (bench_test.go holds the guard).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Kind names an event type. Decision kinds (grant, block, abort) are
// emitted by the drivers for every protocol uniformly; explanation
// kinds (cycle-reject, deadlock, lock-wait, ...) are emitted by the
// protocol that made the decision and carry its reasoning.
type Kind string

const (
	// KindBegin marks the admission of a transaction instance; the
	// event carries the full program so offline replay can reconstruct
	// unexecuted suffixes.
	KindBegin Kind = "begin"
	// KindGrant records an admitted (and therefore executed) operation.
	KindGrant Kind = "grant"
	// KindBlock records a deferred operation request.
	KindBlock Kind = "block"
	// KindAbortDecision records a protocol answering Abort to a request.
	KindAbortDecision Kind = "abort"
	// KindCycleReject is RSGT's (and RAL's) explanation for an Abort:
	// the concrete RSG cycle that admitting the operation would close,
	// with op/unit nodes and I/D/F/B arc kinds.
	KindCycleReject Kind = "cycle-reject"
	// KindConflictCycle is SGT's explanation for an Abort: the
	// transaction-granularity serialization-graph cycle.
	KindConflictCycle Kind = "conflict-cycle"
	// KindDeadlock is a locking protocol's explanation for an Abort:
	// the waits-for cycle the request would close.
	KindDeadlock Kind = "deadlock"
	// KindLockWait is a locking protocol's explanation for a Block: the
	// holders the requester now waits on.
	KindLockWait Kind = "lock-wait"
	// KindTimestampReject is TO's explanation for an Abort: the request
	// arrived late with respect to younger accesses.
	KindTimestampReject Kind = "ts-reject"
	// KindDonate records altruistic lock donation at a unit boundary.
	KindDonate Kind = "donate"
	// KindWake records a transaction entering a donor's wake.
	KindWake Kind = "wake"
	// KindCommit marks a committed instance.
	KindCommit Kind = "commit"
	// KindTxnAbort marks an aborted instance (protocol decision, stall
	// victimization, recoverability or cascade; see Reason).
	KindTxnAbort Kind = "txn-abort"
	// KindFault records a driver-level fault-point firing (Reason names
	// the point, e.g. "txn.abort" or "sched.grant.delay").
	KindFault Kind = "fault"
	// KindShed records the admission controller changing the effective
	// multiprogramming level under an abort storm (Reason carries the
	// new limit).
	KindShed Kind = "shed"
	// KindWedge records the stall watchdog declaring the run wedged;
	// Reason carries the diagnosis.
	KindWedge Kind = "wedge"
	// KindCancel records the run context being canceled and the engine
	// starting its Recover-stage unwind; Reason carries the
	// cancellation cause. Per-instance txn-abort events (reason
	// "canceled") follow for every unwound instance.
	KindCancel Kind = "cancel"
	// KindWALAppend records one write-ahead-log append.
	KindWALAppend Kind = "wal-append"
	// KindWALRotate records a segmented lane sealing its current
	// segment and opening the next; Value carries the first GSN of the
	// new segment.
	KindWALRotate Kind = "wal-rotate"
	// KindWALGroupCommit records one group-commit flush: a lane's
	// committer draining its queue into a single fsync. Instance
	// carries the lane index, Value the records in the batch.
	KindWALGroupCommit Kind = "wal-group-commit"
	// KindStoreRead records one read under the store latch.
	KindStoreRead Kind = "store-read"
	// KindStoreWrite records one write under the store latch.
	KindStoreWrite Kind = "store-write"
)

// Event is one structured trace record. Fields are omitted from the
// JSONL encoding when empty; (Kind, TS) are always present.
type Event struct {
	// TS is nanoseconds since the tracer's epoch (its construction).
	TS int64 `json:"ts"`
	// Kind tags the event.
	Kind Kind `json:"kind"`
	// Protocol is the emitting protocol's name, when protocol-scoped.
	Protocol string `json:"protocol,omitempty"`
	// Instance is the runtime transaction instance number.
	Instance int64 `json:"instance,omitempty"`
	// Txn is the program's transaction ID.
	Txn int `json:"txn,omitempty"`
	// Seq is the operation's position in its program.
	Seq int `json:"seq,omitempty"`
	// Op renders the operation in paper notation, e.g. "r1[x]".
	Op string `json:"op,omitempty"`
	// Object names the accessed object for storage events.
	Object string `json:"object,omitempty"`
	// Order is the global execution sequence number of granted ops.
	Order int64 `json:"order,omitempty"`
	// Tick is the deterministic driver's logical clock.
	Tick int64 `json:"tick,omitempty"`
	// Reason qualifies aborts and rejections.
	Reason string `json:"reason,omitempty"`
	// Value carries the stored value for storage events.
	Value int64 `json:"value,omitempty"`
	// Version carries the object version for storage events.
	Version uint64 `json:"version,omitempty"`
	// Blockers lists the instances a lock-wait blocks on.
	Blockers []int64 `json:"blockers,omitempty"`
	// Program is the instance's full program in paper notation
	// ("r1[x] w1[y]"), set on begin events.
	Program string `json:"program,omitempty"`
	// Cycle is the rejected cycle for cycle-reject, conflict-cycle and
	// deadlock events.
	Cycle *Cycle `json:"cycle,omitempty"`
}

// Cycle is a directed cycle in a scheduler's graph: RSG operation
// vertices for RSGT, transaction vertices for SGT and the waits-for
// graph (there Seq is -1 and Op empty).
type Cycle struct {
	Nodes []CycleNode `json:"nodes"`
	Arcs  []CycleArc  `json:"arcs"`
}

// CycleNode is one vertex of a rejected cycle.
type CycleNode struct {
	Instance int64  `json:"instance"`
	Txn      int    `json:"txn"`
	Seq      int    `json:"seq"`
	Op       string `json:"op,omitempty"`
}

// CycleArc connects two nodes (by index) with the arc kinds that the
// scheduler's graph carries for the pair: "I", "D", "F", "B" masks for
// RSG cycles, "C" for conflict arcs, "W" for waits-for edges.
type CycleArc struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Kind string `json:"kind"`
}

// String renders the cycle as a one-line chain:
// "T3.1 r3[a] -D,F-> T5.0 r5[b] -I-> ... -B-> T3.1 r3[a]".
func (c *Cycle) String() string {
	if c == nil || len(c.Nodes) == 0 {
		return "(empty cycle)"
	}
	label := func(n CycleNode) string {
		if n.Seq < 0 {
			return fmt.Sprintf("T%d(i%d)", n.Txn, n.Instance)
		}
		return fmt.Sprintf("T%d.%d %s", n.Txn, n.Seq, n.Op)
	}
	var sb strings.Builder
	for i, a := range c.Arcs {
		if i == 0 {
			sb.WriteString(label(c.Nodes[a.From]))
		}
		fmt.Fprintf(&sb, " -%s-> %s", a.Kind, label(c.Nodes[a.To]))
	}
	return sb.String()
}

// Dot renders the cycle as a Graphviz digraph, the on-demand RSG
// snapshot shape emitted at rejection points.
func (c *Cycle) Dot(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=LR;\n")
	for i, n := range c.Nodes {
		label := fmt.Sprintf("T%d.%d\\n%s", n.Txn, n.Seq, n.Op)
		if n.Seq < 0 {
			label = fmt.Sprintf("T%d (inst %d)", n.Txn, n.Instance)
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\"];\n", i, label)
	}
	for _, a := range c.Arcs {
		fmt.Fprintf(&sb, "  n%d -> n%d [label=\"%s\"];\n", a.From, a.To, a.Kind)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Sink consumes events. Implementations need not be safe for
// concurrent use; the Tracer serializes Emit calls.
type Sink interface {
	Emit(Event)
}

// Tracer stamps and fans events to a sink. A nil Tracer — or one built
// over a nil sink — is disabled: Enabled() is false and Emit is a
// no-op, so instrumentation sites can share one unconditional guard.
type Tracer struct {
	mu    sync.Mutex
	sink  Sink
	epoch time.Time
	// serialize holds Emit under mu for sinks that are not safe for
	// concurrent use (the default; see NewUnserialized).
	serialize bool
	// gate is the optional per-kind admission filter consulted by
	// Wants. Installed once before the tracer is shared (SetKindGate),
	// read-only afterwards.
	gate func(Kind) bool
	// DotSink, when set before use, receives named Graphviz snapshots
	// (rejected RSG cycles) as they occur.
	DotSink func(name, dot string)
	dotSeq  int
}

// New returns a tracer over the sink. A nil sink yields a disabled
// tracer whose instrumentation costs a nil check and nothing else.
func New(sink Sink) *Tracer {
	return &Tracer{sink: sink, epoch: time.Now(), serialize: true}
}

// NewUnserialized returns a tracer that forwards events to the sink
// without holding the tracer's mutex. The sink must be safe for
// concurrent Emit calls (the flight recorder's ring is; Buffer and
// JSONLWriter are not). This removes the one point of global
// serialization from the concurrent driver's instrumented hot path.
func NewUnserialized(sink Sink) *Tracer {
	return &Tracer{sink: sink, epoch: time.Now()}
}

// Enabled reports whether events are being recorded. Safe on nil.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// SetKindGate installs a per-kind admission filter consulted by Wants.
// Hot instrumentation sites (operation grants, store latch crossings,
// WAL appends) guard event construction behind Wants, so a gate lets
// an always-on observability plane sample high-volume kinds before the
// event is even built. Install before the tracer is shared with a run;
// the gate must be safe for concurrent calls.
func (t *Tracer) SetKindGate(gate func(Kind) bool) { t.gate = gate }

// Wants reports whether an event of the given kind should be
// constructed and emitted: the tracer is enabled and the kind gate (if
// any) admits the kind. Sites without sampling semantics keep guarding
// with Enabled; events emitted past a rejecting gate are still
// forwarded — the gate is a site-side economy, not a sink-side filter.
// Safe on nil.
func (t *Tracer) Wants(k Kind) bool {
	if !t.Enabled() {
		return false
	}
	if t.gate != nil {
		return t.gate(k)
	}
	return true
}

// Emit stamps the event (if TS is zero) and forwards it to the sink.
// Safe on nil and on disabled tracers.
func (t *Tracer) Emit(ev Event) {
	if !t.Enabled() {
		return
	}
	if ev.TS == 0 {
		//rsvet:allow detlint -- observational timestamp on trace events; replay compares decisions, never TS
		ev.TS = time.Since(t.epoch).Nanoseconds()
	}
	if !t.serialize {
		t.sink.Emit(ev)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink.Emit(ev)
}

// Sink returns the sink the tracer forwards to (nil when disabled).
// Observability planes use it to tee an existing tracer's output into
// their own fan-out without re-wiring the call sites.
func (t *Tracer) Sink() Sink {
	if t == nil {
		return nil
	}
	return t.sink
}

// Epoch returns the tracer's timestamp epoch (its construction time);
// event TS fields are nanoseconds since it.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// EmitDot forwards a named Graphviz snapshot to the DotSink, if one is
// installed. The name is suffixed with a monotone sequence number.
func (t *Tracer) EmitDot(name, dot string) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	sink := t.DotSink
	t.dotSeq++
	n := t.dotSeq
	t.mu.Unlock()
	if sink != nil {
		sink(fmt.Sprintf("%s-%d", name, n), dot)
	}
}

// Buffer is an in-memory sink, the default for CLIs that post-process
// the trace (explanations, verification, export).
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// NewBuffer returns an empty buffer sink.
func NewBuffer() *Buffer { return &Buffer{} }

// Emit implements Sink.
func (b *Buffer) Emit(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, ev)
}

// Events returns a copy of the recorded events in emission order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// JSONLWriter is a sink encoding one JSON object per line.
type JSONLWriter struct {
	enc *json.Encoder
}

// NewJSONLWriter returns a sink writing JSONL to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Emit implements Sink; encoding errors are silently dropped (tracing
// must never fail the traced run).
func (j *JSONLWriter) Emit(ev Event) {
	_ = j.enc.Encode(ev)
}

// WriteJSONL encodes events as JSONL, one event per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL event stream (the inverse of WriteJSONL
// and JSONLWriter); blank lines are skipped.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return out, fmt.Errorf("trace: line %d: %v", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// CountKinds tallies events by kind, for run summaries.
func CountKinds(events []Event) map[Kind]int {
	out := make(map[Kind]int)
	for _, ev := range events {
		out[ev.Kind]++
	}
	return out
}
