package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"relser/internal/core"
)

func sampleEvents() []Event {
	return []Event{
		{TS: 10, Kind: KindBegin, Protocol: "rsgt", Instance: 1, Txn: 1, Program: "w1[x] w1[y]"},
		{TS: 15, Kind: KindBegin, Protocol: "rsgt", Instance: 2, Txn: 2, Program: "r2[x]"},
		{TS: 20, Kind: KindGrant, Protocol: "rsgt", Instance: 1, Txn: 1, Seq: 0, Op: "w1[x]", Order: 1, Tick: 1},
		{TS: 30, Kind: KindBlock, Protocol: "rsgt", Instance: 2, Txn: 2, Seq: 0, Op: "r2[x]", Blockers: []int64{1}},
		{TS: 40, Kind: KindWALAppend, Instance: 1, Object: "x", Value: 7, Version: 3},
		{TS: 50, Kind: KindCycleReject, Protocol: "rsgt", Instance: 2, Txn: 2, Seq: 0, Op: "r2[x]",
			Reason: "admission closes an RSG cycle",
			Cycle: &Cycle{
				Nodes: []CycleNode{{Instance: 1, Txn: 1, Seq: 0, Op: "w1[x]"}, {Instance: 2, Txn: 2, Seq: 0, Op: "r2[x]"}},
				Arcs:  []CycleArc{{From: 0, To: 1, Kind: "D,F"}, {From: 1, To: 0, Kind: "B"}},
			}},
		{TS: 60, Kind: KindTxnAbort, Instance: 2, Txn: 2, Reason: "protocol"},
		{TS: 70, Kind: KindCommit, Instance: 1, Txn: 1},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(events) {
		t.Errorf("JSONL has %d lines, want %d", got, len(events))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, events)
	}
}

func TestJSONLWriterSinkMatchesWriteJSONL(t *testing.T) {
	events := sampleEvents()
	var direct, viaSink bytes.Buffer
	if err := WriteJSONL(&direct, events); err != nil {
		t.Fatal(err)
	}
	sink := NewJSONLWriter(&viaSink)
	for _, ev := range events {
		sink.Emit(ev)
	}
	if direct.String() != viaSink.String() {
		t.Errorf("sink output differs from WriteJSONL")
	}
}

func TestReadJSONLSkipsBlanksAndReportsLine(t *testing.T) {
	in := "\n{\"ts\":1,\"kind\":\"grant\"}\n\n{\"ts\":2,\"kind\":\"commit\"}\n"
	events, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Kind != KindGrant || events[1].Kind != KindCommit {
		t.Errorf("got %+v", events)
	}
	_, err = ReadJSONL(strings.NewReader("{\"ts\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-numbered error, got %v", err)
	}
}

func TestDisabledTracer(t *testing.T) {
	var nilTracer *Tracer
	if nilTracer.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	nilTracer.Emit(Event{Kind: KindGrant}) // must not panic
	nilTracer.EmitDot("x", "digraph x {}")

	disabled := New(nil)
	if disabled.Enabled() {
		t.Error("tracer over nil sink reports enabled")
	}
	disabled.Emit(Event{Kind: KindGrant})
}

func TestTracerStampsAndBuffers(t *testing.T) {
	buf := NewBuffer()
	tr := New(buf)
	if !tr.Enabled() {
		t.Fatal("tracer with sink reports disabled")
	}
	tr.Emit(Event{Kind: KindGrant, Op: "r1[x]"})
	tr.Emit(Event{TS: 12345, Kind: KindCommit})
	events := buf.Events()
	if len(events) != 2 || buf.Len() != 2 {
		t.Fatalf("buffered %d events, want 2", len(events))
	}
	if events[0].TS <= 0 {
		t.Errorf("first event not timestamped: %+v", events[0])
	}
	if events[1].TS != 12345 {
		t.Errorf("explicit TS overwritten: %d", events[1].TS)
	}
	counts := CountKinds(events)
	if counts[KindGrant] != 1 || counts[KindCommit] != 1 {
		t.Errorf("CountKinds = %v", counts)
	}
}

func TestEmitDotNamesSequentially(t *testing.T) {
	tr := New(NewBuffer())
	var names []string
	tr.DotSink = func(name, dot string) { names = append(names, name) }
	tr.EmitDot("cyclereject", "digraph a {}")
	tr.EmitDot("cyclereject", "digraph b {}")
	if len(names) != 2 || names[0] != "cyclereject-1" || names[1] != "cyclereject-2" {
		t.Errorf("dot names = %v", names)
	}
}

func TestCycleStringAndDot(t *testing.T) {
	c := &Cycle{
		Nodes: []CycleNode{{Instance: 1, Txn: 1, Seq: 0, Op: "w1[x]"}, {Instance: 2, Txn: 2, Seq: 1, Op: "r2[x]"}},
		Arcs:  []CycleArc{{From: 0, To: 1, Kind: "D,F"}, {From: 1, To: 0, Kind: "B"}},
	}
	s := c.String()
	for _, want := range []string{"T1.0 w1[x]", "-D,F->", "T2.1 r2[x]", "-B->"} {
		if !strings.Contains(s, want) {
			t.Errorf("Cycle.String() = %q missing %q", s, want)
		}
	}
	dot := c.Dot("reject")
	for _, want := range []string{"digraph", "n0 -> n1", "n1 -> n0", "D,F"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Cycle.Dot() missing %q:\n%s", want, dot)
		}
	}
	var empty *Cycle
	if empty.String() != "(empty cycle)" {
		t.Errorf("nil cycle String = %q", empty.String())
	}
}

func TestWriteChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleEvents()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	// Two begins open two lanes; both close (commit + abort); the rest
	// are instants.
	if phases["B"] != 2 || phases["E"] != 2 {
		t.Errorf("span phases = %v, want 2 B and 2 E", phases)
	}
	if phases["i"] == 0 {
		t.Errorf("no instant events: %v", phases)
	}
}

// verifyFixture is the deterministic two-writer scenario whose fourth
// operation closes an RSG cycle under absolute atomicity:
// T1 = w1[x] w1[y], T2 = w2[y] w2[x]; after w1[x] w2[y] w2[x] the
// request w1[y] adds D-arc w2[y]->w1[y], whose pull-backward arc
// w2[y]->w1[x] closes against the earlier B-arc w1[x]->w2[y].
func verifyFixture(cycle *Cycle) []Event {
	return []Event{
		{TS: 1, Kind: KindBegin, Instance: 1, Txn: 1, Program: "w1[x] w1[y]"},
		{TS: 2, Kind: KindBegin, Instance: 2, Txn: 2, Program: "w2[y] w2[x]"},
		{TS: 3, Kind: KindGrant, Instance: 1, Txn: 1, Seq: 0, Op: "w1[x]"},
		{TS: 4, Kind: KindGrant, Instance: 2, Txn: 2, Seq: 0, Op: "w2[y]"},
		{TS: 5, Kind: KindGrant, Instance: 2, Txn: 2, Seq: 1, Op: "w2[x]"},
		{TS: 6, Kind: KindCycleReject, Instance: 1, Txn: 1, Seq: 1, Op: "w1[y]", Cycle: cycle},
	}
}

func absoluteCuts(_, _ *core.Transaction) []int { return nil }

func TestVerifyCyclesAccepts(t *testing.T) {
	cycle := &Cycle{
		Nodes: []CycleNode{{Instance: 1, Txn: 1, Seq: 0, Op: "w1[x]"}, {Instance: 2, Txn: 2, Seq: 0, Op: "w2[y]"}},
		Arcs:  []CycleArc{{From: 0, To: 1, Kind: "B"}, {From: 1, To: 0, Kind: "B"}},
	}
	n, err := VerifyCycles(verifyFixture(cycle), absoluteCuts)
	if err != nil {
		t.Fatalf("VerifyCycles: %v", err)
	}
	if n != 1 {
		t.Errorf("checked %d cycles, want 1", n)
	}
}

func TestVerifyCyclesRejectsWrongArcKind(t *testing.T) {
	// Claiming a D-arc w1[x]->w2[y] is wrong: the operations do not
	// conflict, so offline only the pull-backward (B) arc exists.
	cycle := &Cycle{
		Nodes: []CycleNode{{Instance: 1, Txn: 1, Seq: 0, Op: "w1[x]"}, {Instance: 2, Txn: 2, Seq: 0, Op: "w2[y]"}},
		Arcs:  []CycleArc{{From: 0, To: 1, Kind: "D"}, {From: 1, To: 0, Kind: "B"}},
	}
	_, err := VerifyCycles(verifyFixture(cycle), absoluteCuts)
	if err == nil || !strings.Contains(err.Error(), "not present in offline RSG") {
		t.Errorf("want offline-arc mismatch, got %v", err)
	}
}

func TestVerifyCyclesRejectsOpenChain(t *testing.T) {
	cycle := &Cycle{
		Nodes: []CycleNode{{Instance: 1, Txn: 1, Seq: 0, Op: "w1[x]"}, {Instance: 2, Txn: 2, Seq: 0, Op: "w2[y]"}},
		Arcs:  []CycleArc{{From: 0, To: 1, Kind: "B"}},
	}
	_, err := VerifyCycles(verifyFixture(cycle), absoluteCuts)
	if err == nil || !strings.Contains(err.Error(), "not closed") {
		t.Errorf("want open-chain error, got %v", err)
	}
}

func TestVerifyCyclesRejectsMissingBegin(t *testing.T) {
	cycle := &Cycle{
		Nodes: []CycleNode{{Instance: 9, Txn: 9, Seq: 0, Op: "w9[q]"}, {Instance: 2, Txn: 2, Seq: 0, Op: "w2[y]"}},
		Arcs:  []CycleArc{{From: 0, To: 1, Kind: "B"}, {From: 1, To: 0, Kind: "B"}},
	}
	_, err := VerifyCycles(verifyFixture(cycle), absoluteCuts)
	if err == nil || !strings.Contains(err.Error(), "no begin event") {
		t.Errorf("want missing-begin error, got %v", err)
	}
}
