package trace

import (
	"fmt"
	"sort"
	"strings"

	"relser/internal/core"
)

// CutsFunc supplies relative atomicity boundaries for replay: the unit
// cut positions of program a relative to observer b, in the same
// convention as sched.AtomicityOracle (a cut at p separates operations
// p-1 and p). Declared structurally here so the trace package does not
// import the scheduler it observes.
type CutsFunc func(a, b *core.Transaction) []int

// VerifyCycles replays a trace against the paper's offline theory: for
// every cycle-reject event it reconstructs the observed schedule prefix
// (granted operations of live instances, in grant order, plus the
// rejected operation), completes it with the unexecuted program
// suffixes, builds the offline core.RSG of that schedule under the
// oracle's specification, and checks that
//
//  1. the event's arcs form a closed cycle,
//  2. every online arc exists offline with at least the kinds the
//     event claims (I/D/F/B letter by letter), and
//  3. the offline graph is indeed cyclic (Theorem 1: the completed
//     schedule is not relatively serializable).
//
// Appending suffixes is sound: depends-on among prefix operations is
// unaffected by operations scheduled after them, and F/B arc targets
// are determined by the specification and programs alone, so every
// online arc must reappear offline.
//
// It returns the number of cycle-reject events checked and the first
// verification failure, if any. A known caveat is documented in
// EXPERIMENTS.md: RSGT conservatively retains dependencies that flowed
// through aborted instances, so in traces with aborts an online arc may
// lack an offline counterpart once the aborted instance is excluded
// from the replay; such events fail verification rather than being
// skipped.
func VerifyCycles(events []Event, cuts CutsFunc) (int, error) {
	progs := make(map[int64]*core.Transaction)
	aborted := make(map[int64]bool)
	var grants []Event
	checked := 0
	for i, ev := range events {
		switch ev.Kind {
		case KindBegin:
			ops, err := core.ParseOps(ev.Program)
			if err != nil {
				return checked, fmt.Errorf("trace: event %d: begin of instance %d has unparseable program %q: %v", i, ev.Instance, ev.Program, err)
			}
			progs[ev.Instance] = core.T(core.TxnID(ev.Txn), ops...)
		case KindTxnAbort:
			aborted[ev.Instance] = true
		case KindGrant:
			grants = append(grants, ev)
		case KindCycleReject:
			if err := verifyOne(ev, progs, aborted, grants, cuts); err != nil {
				return checked, fmt.Errorf("trace: event %d: %v", i, err)
			}
			checked++
		}
	}
	return checked, nil
}

func verifyOne(ev Event, progs map[int64]*core.Transaction, aborted map[int64]bool, grants []Event, cuts CutsFunc) error {
	cyc := ev.Cycle
	if cyc == nil || len(cyc.Arcs) == 0 {
		return fmt.Errorf("cycle-reject for %s carries no cycle", ev.Op)
	}
	for _, a := range cyc.Arcs {
		if a.From < 0 || a.From >= len(cyc.Nodes) || a.To < 0 || a.To >= len(cyc.Nodes) {
			return fmt.Errorf("cycle arc %d->%d references nodes outside [0,%d)", a.From, a.To, len(cyc.Nodes))
		}
	}
	for k, a := range cyc.Arcs {
		next := cyc.Arcs[(k+1)%len(cyc.Arcs)]
		if a.To != next.From {
			return fmt.Errorf("cycle is not closed: arc %d ends at node %d, arc %d starts at node %d", k, a.To, k+1, next.From)
		}
	}

	// Live instances to replay: anything with granted work, plus the
	// requester and every instance the cycle names.
	include := make(map[int64]bool)
	for _, g := range grants {
		if !aborted[g.Instance] {
			include[g.Instance] = true
		}
	}
	include[ev.Instance] = true
	for _, n := range cyc.Nodes {
		include[n.Instance] = true
	}
	byTxn := make(map[core.TxnID]int64)
	var txns []*core.Transaction
	for inst := range include {
		p, ok := progs[inst]
		if !ok {
			return fmt.Errorf("instance %d appears in the cycle but has no begin event", inst)
		}
		if aborted[inst] && inst != ev.Instance {
			return fmt.Errorf("cycle names aborted instance %d", inst)
		}
		if prev, dup := byTxn[p.ID]; dup {
			return fmt.Errorf("instances %d and %d both run T%d; replay is ambiguous", prev, inst, p.ID)
		}
		byTxn[p.ID] = inst
		txns = append(txns, p)
	}
	ts, err := core.NewTxnSet(txns...)
	if err != nil {
		return fmt.Errorf("rebuilding transaction set: %v", err)
	}

	// Observed prefix: grants in order, then the rejected operation.
	done := make(map[int64]int)
	var ops []core.Op
	for _, g := range grants {
		if !include[g.Instance] {
			continue
		}
		p := progs[g.Instance]
		if g.Seq != done[g.Instance] {
			return fmt.Errorf("instance %d grants out of order: got seq %d, expected %d", g.Instance, g.Seq, done[g.Instance])
		}
		ops = append(ops, p.Op(g.Seq))
		done[g.Instance]++
	}
	reqProg := progs[ev.Instance]
	if ev.Seq != done[ev.Instance] {
		return fmt.Errorf("rejected op seq %d does not follow instance %d's %d grants", ev.Seq, ev.Instance, done[ev.Instance])
	}
	rejected := reqProg.Op(ev.Seq)
	ops = append(ops, rejected)
	done[ev.Instance]++
	// Unexecuted suffixes, program by program in instance order.
	insts := make([]int64, 0, len(include))
	for inst := range include {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		p := progs[inst]
		for seq := done[inst]; seq < p.Len(); seq++ {
			ops = append(ops, p.Op(seq))
		}
	}
	s, err := core.NewSchedule(ts, ops)
	if err != nil {
		return fmt.Errorf("rebuilding schedule: %v", err)
	}

	sp := core.NewSpec(ts)
	for _, a := range ts.Txns() {
		for _, b := range ts.Txns() {
			if a.ID == b.ID {
				continue
			}
			for _, p := range cuts(a, b) {
				if err := sp.CutAfter(a.ID, b.ID, p-1); err != nil {
					return fmt.Errorf("replaying oracle cuts: %v", err)
				}
			}
		}
	}

	rsg := core.BuildRSG(s, sp)
	nodeOp := func(n CycleNode) (core.Op, error) {
		inst, ok := byTxn[core.TxnID(n.Txn)]
		if !ok || progs[inst] == nil {
			return core.Op{}, fmt.Errorf("cycle node T%d.%d has no replayed program", n.Txn, n.Seq)
		}
		p := progs[inst]
		if n.Seq < 0 || n.Seq >= p.Len() {
			return core.Op{}, fmt.Errorf("cycle node T%d.%d out of range (T%d has %d ops)", n.Txn, n.Seq, n.Txn, p.Len())
		}
		return p.Op(n.Seq), nil
	}
	for _, a := range cyc.Arcs {
		u, err := nodeOp(cyc.Nodes[a.From])
		if err != nil {
			return err
		}
		v, err := nodeOp(cyc.Nodes[a.To])
		if err != nil {
			return err
		}
		offline := rsg.ArcKinds(u, v)
		for _, letter := range strings.Split(a.Kind, ",") {
			var bit core.ArcKind
			switch letter {
			case "I":
				bit = core.IArc
			case "D":
				bit = core.DArc
			case "F":
				bit = core.FArc
			case "B":
				bit = core.BArc
			default:
				return fmt.Errorf("cycle arc %v -> %v has unknown kind %q", u, v, letter)
			}
			if offline&bit == 0 {
				return fmt.Errorf("online arc %v -%s-> %v not present in offline RSG (offline kinds: %s)", u, letter, v, offline)
			}
		}
	}
	if rsg.Acyclic() {
		return fmt.Errorf("offline RSG of the completed prefix is acyclic, but the online protocol rejected %s", rejected)
	}
	return nil
}
