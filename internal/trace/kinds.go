package trace

// allKinds is the registry of every event kind the tracer emits.
// A Kind constructed from a string literal that is not in this set is
// a typo; the rsvet registrydrift analyzer enforces membership
// statically at every conversion site.
var allKinds = []Kind{
	KindBegin,
	KindGrant,
	KindBlock,
	KindAbortDecision,
	KindCycleReject,
	KindConflictCycle,
	KindDeadlock,
	KindLockWait,
	KindTimestampReject,
	KindDonate,
	KindWake,
	KindCommit,
	KindTxnAbort,
	KindFault,
	KindShed,
	KindWedge,
	KindCancel,
	KindWALAppend,
	KindWALRotate,
	KindWALGroupCommit,
	KindStoreRead,
	KindStoreWrite,
}

// Kinds returns the registered event kinds (a copy).
func Kinds() []Kind {
	return append([]Kind(nil), allKinds...)
}

// IsKnownKind reports whether k is a registered event kind.
func IsKnownKind(k Kind) bool {
	for _, known := range allKinds {
		if k == known {
			return true
		}
	}
	return false
}
