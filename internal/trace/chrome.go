package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one record of the Chrome trace_event format
// (chrome://tracing, Perfetto). Timestamps are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	TS    float64        `json:"ts"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome renders events in Chrome trace_event JSON: each
// transaction instance becomes a thread lane whose lifetime is a
// "B"/"E" span from begin to commit/abort, and every decision,
// explanation and storage event becomes an instant on its lane. Load
// the output in chrome://tracing or ui.perfetto.dev.
func WriteChrome(w io.Writer, events []Event) error {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	var out []chromeEvent
	open := make(map[int64]bool)
	var last int64
	for _, ev := range events {
		if ev.TS > last {
			last = ev.TS
		}
		switch ev.Kind {
		case KindBegin:
			out = append(out, chromeEvent{
				Name:  fmt.Sprintf("T%d (inst %d)", ev.Txn, ev.Instance),
				Phase: "B", PID: 1, TID: ev.Instance, TS: us(ev.TS),
				Args: map[string]any{"program": ev.Program, "protocol": ev.Protocol},
			})
			open[ev.Instance] = true
		case KindCommit, KindTxnAbort:
			name := "commit"
			args := map[string]any{}
			if ev.Kind == KindTxnAbort {
				name = "abort"
				args["reason"] = ev.Reason
			}
			out = append(out, chromeEvent{
				Name: name, Phase: "i", PID: 1, TID: ev.Instance,
				TS: us(ev.TS), Scope: "t", Args: args,
			})
			if open[ev.Instance] {
				out = append(out, chromeEvent{
					Name:  fmt.Sprintf("T%d (inst %d)", ev.Txn, ev.Instance),
					Phase: "E", PID: 1, TID: ev.Instance, TS: us(ev.TS),
				})
				delete(open, ev.Instance)
			}
		default:
			name := string(ev.Kind)
			if ev.Op != "" {
				name = fmt.Sprintf("%s %s", ev.Kind, ev.Op)
			} else if ev.Object != "" {
				name = fmt.Sprintf("%s %s", ev.Kind, ev.Object)
			}
			args := map[string]any{}
			if ev.Reason != "" {
				args["reason"] = ev.Reason
			}
			if ev.Protocol != "" {
				args["protocol"] = ev.Protocol
			}
			if ev.Cycle != nil {
				args["cycle"] = ev.Cycle.String()
			}
			if len(ev.Blockers) > 0 {
				args["blockers"] = ev.Blockers
			}
			out = append(out, chromeEvent{
				Name: name, Phase: "i", PID: 1, TID: ev.Instance,
				TS: us(ev.TS), Scope: "t", Args: args,
			})
		}
	}
	// Close still-open lanes so viewers render their spans.
	for inst := range open {
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("inst %d", inst), Phase: "E",
			PID: 1, TID: inst, TS: us(last),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
