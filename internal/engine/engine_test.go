package engine_test

// Unit tests for the engine package itself: configuration validation,
// stage naming and the pipeline's one-core contract (Admit through
// Commit driven directly, no driver loop). Driver-level behavior —
// parity, cancellation, faults — lives in internal/txn's tests.

import (
	"context"
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/engine"
	"relser/internal/sched"
)

func prog(id int, ops string) *core.Transaction {
	t, err := core.ParseTxn(core.TxnID(id), ops)
	if err != nil {
		panic(err)
	}
	return t
}

func TestStageNames(t *testing.T) {
	want := map[engine.Stage]string{
		engine.StageAdmit:   "admit",
		engine.StageIssue:   "issue",
		engine.StageDecide:  "decide",
		engine.StageApply:   "apply",
		engine.StageCommit:  "commit",
		engine.StageAbort:   "abort",
		engine.StageRecover: "recover",
	}
	for stage, name := range want {
		if got := stage.String(); got != name {
			t.Errorf("stage %d: got %q, want %q", stage, got, name)
		}
	}
	if got := engine.Stage(99).String(); got != "unknown" {
		t.Errorf("out-of-range stage: got %q", got)
	}
}

func TestNewCoreValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  engine.Config
		want string
	}{
		{"no protocol", engine.Config{}, "Config.Protocol is required"},
		{"no programs", engine.Config{Protocol: sched.NewNoCC()}, "no programs"},
		{"duplicate IDs", engine.Config{
			Protocol: sched.NewNoCC(),
			Programs: []*core.Transaction{prog(1, "r[x]"), prog(1, "w[y]")},
		}, "duplicate program ID"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := engine.NewCore(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestCorePipelineDirect drives one instance through the stages with
// no driver loop at all, checking each stage's observable contract and
// that every hook fires in lifecycle order.
func TestCorePipelineDirect(t *testing.T) {
	p := prog(1, "r[x] w[y]")
	var stages []engine.Stage
	cfg := engine.Config{
		Protocol: sched.NewNoCC(),
		Programs: []*core.Transaction{p},
		Hooks:    engine.OnStages(func(s engine.Stage, _ *engine.Instance) { stages = append(stages, s) }),
	}
	eng, err := engine.NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st := eng.Admit(&engine.Pending{Program: p}, 0)
	for !st.Done {
		op := st.Program.Op(st.Next)
		req := sched.OpRequest{Instance: st.ID, Program: st.Program, Seq: st.Next, Op: op, Ctx: ctx}
		if d := eng.Decide(st, req); d != sched.Grant {
			t.Fatalf("NoCC must grant; got %v", d)
		}
		shardIdx := eng.Router.Shard(op.Object)
		if eng.Unrecoverable(st, op, shardIdx) {
			t.Fatal("single instance cannot be unrecoverable")
		}
		order := eng.Apply(ctx, st, op, shardIdx)
		eng.ObserveGrant(st, op, order, 0)
	}
	if !eng.TryCommit(st, 1) {
		t.Fatal("lone finished instance must commit")
	}
	res := eng.Finalize(1, 1)
	if res.Committed != 1 || res.OpsExecuted != 2 {
		t.Fatalf("unexpected result: %v", res)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("one-transaction schedule must certify: %v", err)
	}
	want := []engine.Stage{
		engine.StageAdmit,
		engine.StageIssue, engine.StageDecide, engine.StageApply,
		engine.StageIssue, engine.StageDecide, engine.StageApply,
		engine.StageCommit,
	}
	if len(stages) != len(want) {
		t.Fatalf("hook order %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("hook order %v, want %v", stages, want)
		}
	}
}

// TestAbortAllFiresRecoverWhenIdle pins the run-scoped Recover
// contract: the unwind hook fires even with nothing in flight.
func TestAbortAllFiresRecoverWhenIdle(t *testing.T) {
	var sawRecover bool
	cfg := engine.Config{
		Protocol: sched.NewNoCC(),
		Programs: []*core.Transaction{prog(1, "r[x]")},
		Hooks: engine.OnStages(func(s engine.Stage, _ *engine.Instance) {
			if s == engine.StageRecover {
				sawRecover = true
			}
		}),
	}
	eng, err := engine.NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.AbortAll("canceled", 0); n != 0 {
		t.Fatalf("unwound %d instances from an idle core", n)
	}
	if !sawRecover {
		t.Error("Recover hook did not fire on an idle unwind")
	}
}
