package engine

import (
	"fmt"

	"relser/internal/core"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/trace"
)

// reporter bundles a run's tracer and metrics instruments so both
// drivers share one emission discipline — it is the engine-owned
// counterpart of the Result construction, resolved once per run.
// Counters are resolved at construction; every method is safe — and
// free of allocations — when tracing and metrics are disabled.
type reporter struct {
	tr    *trace.Tracer
	proto string

	ops         *metrics.Counter
	committed   *metrics.Counter
	aborts      *metrics.Counter
	blocks      *metrics.Counter
	restarts    *metrics.Counter
	commitWaits *metrics.Counter
	recovAborts *metrics.Counter
	active      *metrics.Gauge
	latency     *metrics.Histogram
	blockWait   *metrics.Histogram

	// Resilience instruments: fault-point firings honored by the
	// driver, deadline overruns, admission-control shedding, the stall
	// watchdog and run-context cancellation.
	deadlines    *metrics.Counter
	injAborts    *metrics.Counter
	injDelays    *metrics.Counter
	loadSheds    *metrics.Counter
	livelockEsc  *metrics.Counter
	wedges       *metrics.Counter
	cancelAborts *metrics.Counter
	degraded     *metrics.Gauge
	effMPL       *metrics.Gauge

	// Contention instruments for the sharded concurrent driver
	// (initShardInstruments). Counters are atomic and histograms are
	// internally locked, so the hot path updates them without driver
	// locks.
	wakeups     *metrics.Counter
	bcastShard  *metrics.Counter
	bcastGlobal *metrics.Counter
	bcastFlood  *metrics.Counter
	shardBlocks []*metrics.Counter
	shardWait   []*metrics.Histogram

	// Bounded-memory certification gauges, refreshed from the
	// protocol's RetireStats at each commit (cheap struct copy).
	rsgLive    *metrics.Gauge
	rsgRetired *metrics.Gauge
	rsgEpochs  *metrics.Gauge
	rsgHits    *metrics.Gauge
	rsgMisses  *metrics.Gauge
}

func newReporter(cfg *Config) reporter {
	o := reporter{tr: cfg.Tracer, proto: cfg.Protocol.Name()}
	if reg := cfg.Metrics; reg != nil {
		o.ops = reg.Counter("txn.ops_executed")
		o.committed = reg.Counter("txn.committed")
		o.aborts = reg.Counter("txn.aborts")
		o.blocks = reg.Counter("txn.blocks")
		o.restarts = reg.Counter("txn.restarts")
		o.commitWaits = reg.Counter("txn.commit_waits")
		o.recovAborts = reg.Counter("txn.recoverability_aborts")
		o.active = reg.Gauge("txn.active")
		o.latency = reg.Histogram("txn.latency")
		o.blockWait = reg.Histogram("txn.block_latency")
		o.deadlines = reg.Counter("txn.deadline_aborts")
		o.injAborts = reg.Counter("txn.injected_aborts")
		o.injDelays = reg.Counter("txn.injected_delays")
		o.loadSheds = reg.Counter("txn.load_sheds")
		o.livelockEsc = reg.Counter("txn.livelock_escalations")
		o.wedges = reg.Counter("txn.watchdog_wedges")
		o.cancelAborts = reg.Counter("txn.cancel_aborts")
		o.degraded = reg.Gauge("txn.degraded")
		o.effMPL = reg.Gauge("txn.effective_mpl")
		o.effMPL.Set(float64(cfg.MPL))
		if _, ok := cfg.Protocol.(sched.Retirer); ok {
			o.rsgLive = reg.Gauge("sched.rsg.live_vertices")
			o.rsgRetired = reg.Gauge("sched.rsg.retired_total")
			o.rsgEpochs = reg.Gauge("sched.rsg.retire_epochs")
			o.rsgHits = reg.Gauge("sched.rsg.fastpath_hits")
			o.rsgMisses = reg.Gauge("sched.rsg.fastpath_misses")
		}
	}
	return o
}

// retire refreshes the bounded-memory gauges from the protocol's
// current retirement state.
func (o *reporter) retire(st sched.RetireStats) {
	if o.rsgLive == nil {
		return
	}
	o.rsgLive.Set(float64(st.LiveVertices))
	o.rsgRetired.Set(float64(st.RetiredVertices))
	o.rsgEpochs.Set(float64(st.GraphEpochs))
	o.rsgHits.Set(float64(st.FastPathHits))
	o.rsgMisses.Set(float64(st.FastPathMisses))
}

// begin records an instance's admission.
func (o *reporter) begin(st *Instance, clock int64) {
	if o.active != nil {
		o.active.Add(1)
	}
	if o.tr.Wants(trace.KindBegin) {
		o.tr.Emit(trace.Event{
			Kind: trace.KindBegin, Protocol: o.proto,
			Instance: st.ID, Txn: int(st.Program.ID),
			Program: st.Program.String(), Tick: clock,
		})
	}
}

// grant records an executed operation; order is its global execution
// sequence number. Ends any open block interval.
func (o *reporter) grant(st *Instance, op core.Op, order, clock int64) {
	if o.ops != nil {
		o.ops.Inc()
	}
	if st.BlockedSince >= 0 {
		if o.blockWait != nil {
			o.blockWait.Observe(float64(clock - st.BlockedSince))
		}
		st.BlockedSince = -1
	}
	if o.tr.Wants(trace.KindGrant) {
		ev := trace.Event{
			Kind: trace.KindGrant, Protocol: o.proto,
			Instance: st.ID, Txn: int(st.Program.ID), Seq: op.Seq,
			Op: op.String(), Object: op.Object, Order: order, Tick: clock,
		}
		if op.Kind == core.WriteOp {
			ev.Value = int64(st.Writes[op.Object])
		}
		o.tr.Emit(ev)
	}
}

// block records a protocol Block decision; the block interval closes
// at the next grant (or disappears with the instance on abort).
func (o *reporter) block(st *Instance, op core.Op, clock int64) {
	if o.blocks != nil {
		o.blocks.Inc()
	}
	if st.BlockedSince < 0 {
		st.BlockedSince = clock
	}
	if o.tr.Enabled() {
		o.tr.Emit(trace.Event{
			Kind: trace.KindBlock, Protocol: o.proto,
			Instance: st.ID, Txn: int(st.Program.ID), Seq: op.Seq,
			Op: op.String(), Object: op.Object, Tick: clock,
		})
	}
}

// abortDecision records a protocol Abort decision for a request (the
// per-instance txn-abort events follow from the cascade).
func (o *reporter) abortDecision(st *Instance, op core.Op, clock int64) {
	if o.tr.Enabled() {
		o.tr.Emit(trace.Event{
			Kind: trace.KindAbortDecision, Protocol: o.proto,
			Instance: st.ID, Txn: int(st.Program.ID), Seq: op.Seq,
			Op: op.String(), Object: op.Object, Tick: clock,
		})
	}
}

// commit records a committed instance.
func (o *reporter) commit(st *Instance, clock int64) {
	if o.committed != nil {
		o.committed.Inc()
	}
	if o.active != nil {
		o.active.Add(-1)
	}
	if o.latency != nil {
		o.latency.Observe(float64(clock - st.StartClock))
	}
	if o.tr.Wants(trace.KindCommit) {
		o.tr.Emit(trace.Event{
			Kind: trace.KindCommit, Protocol: o.proto,
			Instance: st.ID, Txn: int(st.Program.ID), Tick: clock,
		})
	}
}

// txnAbort records one aborted instance (direct victim or cascade
// co-victim) with the driver's reason.
func (o *reporter) txnAbort(st *Instance, reason string, clock int64) {
	if o.aborts != nil {
		o.aborts.Inc()
	}
	if o.active != nil {
		o.active.Add(-1)
	}
	if o.tr.Enabled() {
		o.tr.Emit(trace.Event{
			Kind: trace.KindTxnAbort, Protocol: o.proto,
			Instance: st.ID, Txn: int(st.Program.ID),
			Reason: reason, Tick: clock,
		})
	}
}

// cancel records the Recover-stage unwind starting: the run context
// was canceled with the given cause and in-flight instances are about
// to be aborted.
func (o *reporter) cancel(cause string, clock int64) {
	if o.tr.Enabled() {
		o.tr.Emit(trace.Event{
			Kind: trace.KindCancel, Protocol: o.proto,
			Reason: cause, Tick: clock,
		})
	}
}

// cancelAbort counts one instance aborted by the Recover unwind.
func (o *reporter) cancelAbort() {
	if o.cancelAborts != nil {
		o.cancelAborts.Inc()
	}
}

// initShardInstruments resolves the concurrent driver's contention
// counters: per-shard block counts and wall-clock wait histograms
// (seconds), plus broadcast counters that distinguish targeted
// per-shard wakeups from global and flood broadcasts. No-op without a
// metrics registry.
func (o *reporter) initShardInstruments(reg *metrics.Registry, shards int) {
	if reg == nil {
		return
	}
	o.wakeups = reg.Counter("txn.wakeups")
	o.bcastShard = reg.Counter("txn.cond.broadcast_shard")
	o.bcastGlobal = reg.Counter("txn.cond.broadcast_global")
	o.bcastFlood = reg.Counter("txn.cond.broadcast_flood")
	o.shardBlocks = make([]*metrics.Counter, shards)
	o.shardWait = make([]*metrics.Histogram, shards)
	for i := 0; i < shards; i++ {
		o.shardBlocks[i] = reg.Counter(fmt.Sprintf("txn.shard%02d.blocks", i))
		o.shardWait[i] = reg.Histogram(fmt.Sprintf("txn.shard%02d.wait_seconds", i))
	}
}

func (o *reporter) wakeup() {
	if o.wakeups != nil {
		o.wakeups.Inc()
	}
}

func (o *reporter) broadcastShard() {
	if o.bcastShard != nil {
		o.bcastShard.Inc()
	}
}

func (o *reporter) broadcastGlobal() {
	if o.bcastGlobal != nil {
		o.bcastGlobal.Inc()
	}
}

func (o *reporter) broadcastFlood() {
	if o.bcastFlood != nil {
		o.bcastFlood.Inc()
	}
}

func (o *reporter) restart() {
	if o.restarts != nil {
		o.restarts.Inc()
	}
}

func (o *reporter) commitWait() {
	if o.commitWaits != nil {
		o.commitWaits.Inc()
	}
}

func (o *reporter) recoverabilityAbort() {
	if o.recovAborts != nil {
		o.recovAborts.Inc()
	}
}

func (o *reporter) deadlineAbort() {
	if o.deadlines != nil {
		o.deadlines.Inc()
	}
}

// fault records a driver-level fault-point firing (injected abort or
// grant delay) against the instance it hit.
func (o *reporter) fault(point fault.Point, inst int64, clock int64) {
	switch point {
	case fault.TxnForcedAbort:
		if o.injAborts != nil {
			o.injAborts.Inc()
		}
	case fault.SchedGrantDelay:
		if o.injDelays != nil {
			o.injDelays.Inc()
		}
	}
	if o.tr.Enabled() {
		o.tr.Emit(trace.Event{
			Kind: trace.KindFault, Protocol: o.proto,
			Instance: inst, Reason: string(point), Tick: clock,
		})
	}
}

// shed records the admission controller changing the effective
// multiprogramming level; dropped distinguishes a shed (halving) from
// a recovery step.
func (o *reporter) shed(effective, mpl int, dropped bool, clock int64) {
	if o.loadSheds != nil && dropped {
		o.loadSheds.Inc()
	}
	if o.effMPL != nil {
		o.effMPL.Set(float64(effective))
	}
	if o.degraded != nil {
		if effective < mpl {
			o.degraded.Set(1)
		} else {
			o.degraded.Set(0)
		}
	}
	if o.tr.Enabled() {
		o.tr.Emit(trace.Event{
			Kind: trace.KindShed, Protocol: o.proto,
			Reason: fmt.Sprintf("effective-mpl=%d/%d", effective, mpl), Tick: clock,
		})
	}
}

// livelockEscalation records the detector widening restart backoff.
func (o *reporter) livelockEscalation(level int, clock int64) {
	if o.livelockEsc != nil {
		o.livelockEsc.Inc()
	}
	if o.tr.Enabled() {
		o.tr.Emit(trace.Event{
			Kind: trace.KindFault, Protocol: o.proto,
			Reason: fmt.Sprintf("livelock-escalation level=%d", level), Tick: clock,
		})
	}
}

// wedge records the watchdog declaring the run wedged.
func (o *reporter) wedge(we *WedgeError) {
	if o.wedges != nil {
		o.wedges.Inc()
	}
	if o.tr.Enabled() {
		o.tr.Emit(trace.Event{Kind: trace.KindWedge, Protocol: o.proto, Reason: we.Error()})
	}
}
