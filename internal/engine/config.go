package engine

import (
	"errors"
	"fmt"
	"time"

	"relser/internal/core"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/shard"
	"relser/internal/storage"
	"relser/internal/trace"
)

// Semantics computes the value a write operation stores, given the
// values the transaction has read so far (keyed by operation sequence).
// Workloads use it to give programs real data semantics (transfers,
// audits); the default writes a value derived from the transaction and
// operation identity.
type Semantics interface {
	WriteValue(prog *core.Transaction, seq int, reads map[int]storage.Value) storage.Value
}

// DefaultSemantics writes txnID*1000 + seq; good enough when only the
// interleaving matters.
type DefaultSemantics struct{}

// WriteValue implements Semantics.
func (DefaultSemantics) WriteValue(prog *core.Transaction, seq int, _ map[int]storage.Value) storage.Value {
	return storage.Value(int64(prog.ID)*1000 + int64(seq))
}

// Config describes one run of the engine pipeline, whichever driver
// executes it.
type Config struct {
	Protocol sched.Protocol
	// Programs are executed to commit exactly once each; IDs must be
	// distinct.
	Programs []*core.Transaction
	// Oracle supplies relative atomicity specifications, both to
	// verification and (for protocols that take one) to scheduling. It
	// defaults to absolute atomicity.
	Oracle sched.AtomicityOracle
	// Store defaults to a fresh empty store.
	Store *storage.Store
	// Semantics defaults to DefaultSemantics.
	Semantics Semantics
	// MPL bounds concurrently active instances (default 8).
	MPL int
	// Shards is the key-space partition width for the concurrent
	// driver: per-shard wait queues and dirty tracking, with shard-safe
	// protocols admitted concurrently under per-shard locks. Normalized
	// to a power of two (default 1 — the classical single-lock driver).
	// The deterministic Runner is single-threaded; it partitions dirty
	// tracking the same way but needs no shard locks.
	Shards int
	// Seed drives the deterministic scheduler interleaving.
	Seed int64
	// MaxRestarts bounds restarts per program before the run fails
	// (default 1000).
	MaxRestarts int
	// History, when set, records committed write effects.
	History *storage.History
	// WAL, when set, receives begin/write/commit/abort records; a store
	// recovered from it (storage.Recover for the single-lane
	// *storage.WAL, storage.RecoverSegmented for *storage.ShardedWAL)
	// reproduces exactly the committed effects. Commit records go
	// through AppendSync — with a segmented log the commit stage parks
	// on the lane's group commit — and WAL errors fail the run.
	WAL storage.WALSink
	// Tracer, when set, receives structured events for every scheduling
	// decision and instance lifecycle transition; it is also attached to
	// the protocol, store and WAL so their internal decisions land in
	// the same stream.
	Tracer *trace.Tracer
	// Metrics, when set, receives run counters, the active-instance
	// gauge and latency histograms under the "txn." prefix.
	Metrics *metrics.Registry
	// Faults arms deterministic fault injection: the injector is
	// attached to the store and WAL and consulted at the driver's own
	// fault points (sched.grant.delay, txn.abort; the concurrent driver
	// additionally honors shard.stall and shard.wedge). Nil disables
	// injection entirely.
	Faults *fault.Injector
	// Deadline bounds each instance's age in logical time units (ticks
	// for Runner, executed operations for ConcurrentRunner) measured
	// from admission; an instance exceeding it on the operation path is
	// aborted with reason "deadline" and restarted. 0 disables. For
	// wall-clock bounds on the whole run, cancel the run context
	// instead (relser.RunOptions.Timeout).
	Deadline int64
	// Watchdog bounds progress-free wall time in the concurrent driver:
	// if no operation executes, commits, aborts or restarts for this
	// long, the run context is canceled with a *WedgeError cause
	// instead of hanging. 0 selects the 10s default; negative disables.
	// The deterministic Runner is single-threaded and ignores it.
	Watchdog time.Duration
	// BackoffSeed seeds the dedicated restart-backoff RNG stream. The
	// backoff draws are decoupled from the admission-shuffle stream so
	// that runs differing only in backoff pressure (e.g. under fault
	// injection) still replay the same admission order. 0 derives a
	// stream from Seed.
	BackoffSeed int64
	// Hooks observes lifecycle stage transitions (tests use it to
	// cancel runs at precise stages). Nil is free.
	Hooks Hooks
	// DisableRSGRetire turns off bounded-memory certification for
	// protocols that support it (sched.Retirer): graph retirement,
	// dependency-index rebasing and the vector-clock fast path. The
	// zero value keeps retirement ON — disabling it restores the
	// history-proportional memory profile and exists for comparison
	// runs and for replaying recordings that predate retirement.
	DisableRSGRetire bool
}

// normalize validates the configuration and fills defaults, attaching
// tracer and injector to the store and WAL. Both drivers share these
// rules.
func (cfg *Config) normalize() error {
	if cfg.Protocol == nil {
		return errors.New("txn: Config.Protocol is required")
	}
	if len(cfg.Programs) == 0 {
		return errors.New("txn: no programs to run")
	}
	seen := make(map[core.TxnID]bool)
	for _, p := range cfg.Programs {
		if p == nil || p.Len() == 0 {
			return errors.New("txn: nil or empty program")
		}
		if seen[p.ID] {
			return fmt.Errorf("txn: duplicate program ID %d", p.ID)
		}
		seen[p.ID] = true
	}
	if cfg.Oracle == nil {
		cfg.Oracle = sched.AbsoluteOracle{}
	}
	if cfg.Store == nil {
		cfg.Store = storage.NewStore()
	}
	if cfg.Semantics == nil {
		cfg.Semantics = DefaultSemantics{}
	}
	if cfg.MPL <= 0 {
		cfg.MPL = 8
	}
	cfg.Shards = shard.Normalize(cfg.Shards)
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 1000
	}
	// A typed-nil *storage.WAL (or *storage.ShardedWAL) in the WALSink
	// interface would pass every != nil check below and panic on first
	// use; flatten it to a plain nil.
	switch w := cfg.WAL.(type) {
	case *storage.WAL:
		if w == nil {
			cfg.WAL = nil
		}
	case *storage.ShardedWAL:
		if w == nil {
			cfg.WAL = nil
		}
	}
	sched.SetRetirement(cfg.Protocol, !cfg.DisableRSGRetire)
	if cfg.Tracer != nil {
		sched.Attach(cfg.Protocol, cfg.Tracer)
		cfg.Store.SetTracer(cfg.Tracer)
		if cfg.WAL != nil {
			cfg.WAL.SetTracer(cfg.Tracer)
		}
	}
	if cfg.Faults != nil {
		cfg.Store.SetInjector(cfg.Faults)
		if cfg.WAL != nil {
			cfg.WAL.SetInjector(cfg.Faults)
		}
	}
	if cfg.Metrics != nil && cfg.WAL != nil {
		if m, ok := cfg.WAL.(interface{ SetMetrics(*metrics.Registry) }); ok {
			m.SetMetrics(cfg.Metrics)
		}
	}
	return nil
}
