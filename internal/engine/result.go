package engine

import (
	"fmt"
	"sort"
	"strings"

	"relser/internal/core"
	"relser/internal/sched"
)

// Event is one executed operation in the global execution order.
type Event struct {
	Instance int64
	Program  *core.Transaction
	Op       core.Op
	// Order is the global execution sequence number; the committed
	// trace is sorted by it.
	Order int64
}

// Span records one committed instance's lifetime in the driver's
// logical clock (ticks for the deterministic driver, executed
// operations for the concurrent driver).
type Span struct {
	Instance int64
	Program  int // transaction ID of the program
	Start    int64
	End      int64
	// CommitSeq is the commit moment on the execution-order clock of
	// Event.Order (the op counter), comparable with event orders; the
	// recovery-property certifier uses it.
	CommitSeq int64
}

// Result aggregates a run.
type Result struct {
	Protocol    string
	Ticks       int
	OpsExecuted int
	Committed   int
	Aborts      int
	Blocks      int
	CommitWaits int
	Restarts    int
	// RecoverabilityAborts counts aborts issued by the driver (not the
	// protocol) because an access would have closed a dirty-data
	// dependency cycle, making commit ordering impossible.
	RecoverabilityAborts int
	// DeadlineAborts counts driver aborts for instances that exceeded
	// Config.Deadline.
	DeadlineAborts int
	// CancelAborts counts instances aborted by the Recover stage when
	// the run context was canceled mid-flight.
	CancelAborts int
	// InjectedAborts counts txn.abort fault firings honored by the
	// driver; InjectedDelays counts sched.grant.delay firings.
	InjectedAborts int
	InjectedDelays int
	// LivelockEscalations counts restart-backoff escalations by the
	// livelock detector.
	LivelockEscalations int
	// LoadSheds counts admission-limit halvings by the abort-storm
	// shedder; MinEffectiveMPL is the lowest effective multiprogramming
	// level the run degraded to (== Config.MPL when never shed).
	LoadSheds       int
	MinEffectiveMPL int
	// AvgConcurrency is the mean number of in-flight instances per
	// tick.
	AvgConcurrency float64
	// LatencyMean and LatencyP95 summarize committed-instance latency
	// in logical time units (driver ticks for the deterministic
	// runner, executed operations for the concurrent runner), measured
	// from admission to commit.
	LatencyMean float64
	LatencyP95  float64
	// Retire reports the protocol's bounded-memory state at run end
	// (zero when the protocol keeps no retirable state).
	Retire sched.RetireStats
	// Trace is the committed-instance execution trace, in order.
	Trace []Event
	// Spans records committed instances' lifetimes for Timeline.
	Spans []Span
	// Programs are the committed programs (same pointers as Config).
	Programs []*core.Transaction
	oracle   sched.AtomicityOracle
}

// CommittedSchedule reconstructs the committed execution as a
// core.Schedule together with the relative atomicity specification the
// oracle assigned the committed programs. This is the bridge from the
// online runtime back to the paper's offline theory: Theorem 1's graph
// test certifies the run.
func (res *Result) CommittedSchedule() (*core.Schedule, *core.Spec, error) {
	if res.Committed == 0 {
		return nil, nil, fmt.Errorf("txn: no committed transactions to reconstruct")
	}
	ts, err := core.NewTxnSet(res.Programs...)
	if err != nil {
		return nil, nil, fmt.Errorf("txn: committed programs do not form a set: %v", err)
	}
	ops := make([]core.Op, 0, len(res.Trace))
	for _, ev := range res.Trace {
		ops = append(ops, ev.Op)
	}
	s, err := core.NewSchedule(ts, ops)
	if err != nil {
		return nil, nil, fmt.Errorf("txn: committed trace is not a schedule: %v", err)
	}
	sp := core.NewSpec(ts)
	oracle := res.oracle
	if oracle == nil {
		oracle = sched.AbsoluteOracle{}
	}
	for _, a := range res.Programs {
		for _, b := range res.Programs {
			if a.ID == b.ID {
				continue
			}
			for _, cut := range oracle.Cuts(a, b) {
				if err := sp.CutAfter(a.ID, b.ID, cut-1); err != nil {
					return nil, nil, fmt.Errorf("txn: oracle cut invalid: %v", err)
				}
			}
		}
	}
	return s, sp, nil
}

// Verify certifies the run with the paper's tools: the committed
// schedule must be relatively serializable under the oracle's
// specification (RSG acyclic, Theorem 1). Protocols in this module
// guarantee it; NoCC runs are expected to fail here under contention.
func (res *Result) Verify() error {
	s, sp, err := res.CommittedSchedule()
	if err != nil {
		return err
	}
	rsg := core.BuildRSG(s, sp)
	if !rsg.Acyclic() {
		return fmt.Errorf("txn: committed schedule is not relatively serializable; RSG cycle through %v", rsg.Cycle())
	}
	return nil
}

// String summarizes the result.
func (res *Result) String() string {
	return fmt.Sprintf("%s: committed=%d aborts=%d restarts=%d blocks=%d ticks=%d ops=%d mpl=%.2f",
		res.Protocol, res.Committed, res.Aborts, res.Restarts, res.Blocks, res.Ticks, res.OpsExecuted, res.AvgConcurrency)
}

// RecoveryProperties reports where the run's committed execution sits
// in the classical recoverability hierarchy (Hadzilacos; Bernstein,
// Hadzilacos, Goodman):
//
//   - Recoverable: every committed reader commits after the writer it
//     read from. The runtime's commit gating enforces this, so every
//     run should report it.
//   - ACA (avoids cascading aborts): every read happens after the
//     writer's commit — no dirty reads among committed transactions.
//     Lock-free protocols (SGT, RSGT) legitimately violate it: they
//     admit reads of uncommitted data and rely on the driver's cascade
//     machinery.
//   - Strict: additionally, no write overwrites an uncommitted value.
//     Strict 2PL runs report it.
//
// The analysis sees only committed instances (aborted instances'
// operations are rolled back and never enter the trace), so it
// describes the durable execution, which is exactly what recovery
// cares about.
type RecoveryProperties struct {
	Recoverable bool
	ACA         bool
	Strict      bool
	// Violation describes the first property violation found, for
	// diagnostics.
	Violation string
}

// RecoveryProperties analyses the committed trace.
func (res *Result) RecoveryProperties() (RecoveryProperties, error) {
	props := RecoveryProperties{Recoverable: true, ACA: true, Strict: true}
	if len(res.Trace) == 0 {
		return props, fmt.Errorf("txn: no committed trace to analyse")
	}
	commitSeq := make(map[int64]int64, len(res.Spans))
	for _, sp := range res.Spans {
		commitSeq[sp.Instance] = sp.CommitSeq
	}
	note := func(target *bool, format string, args ...any) {
		if *target && props.Violation == "" {
			props.Violation = fmt.Sprintf(format, args...)
		}
		*target = false
	}
	type version struct {
		writer int64
		order  int64
	}
	current := make(map[string]version)
	for _, ev := range res.Trace {
		cw, hasWriter := current[ev.Op.Object]
		me := ev.Instance
		if ev.Op.Kind == core.ReadOp {
			if hasWriter && cw.writer != me {
				wCommit, ok := commitSeq[cw.writer]
				if !ok {
					continue
				}
				myCommit := commitSeq[me]
				if myCommit < wCommit {
					note(&props.Recoverable, "instance %d read %s from %d but committed first", me, ev.Op.Object, cw.writer)
				}
				if ev.Order < wCommit {
					note(&props.ACA, "instance %d read %s before writer %d committed", me, ev.Op.Object, cw.writer)
					props.Strict = false
				}
			}
			continue
		}
		if hasWriter && cw.writer != me {
			if wCommit, ok := commitSeq[cw.writer]; ok && ev.Order < wCommit {
				note(&props.Strict, "instance %d overwrote %s before writer %d committed", me, ev.Op.Object, cw.writer)
			}
		}
		current[ev.Op.Object] = version{writer: me, order: ev.Order}
	}
	// The hierarchy: strict ⇒ ACA ⇒ recoverable.
	if !props.ACA {
		props.Strict = false
	}
	if !props.Recoverable {
		props.ACA = false
		props.Strict = false
	}
	return props, nil
}

// Timeline renders the committed instances' lifetimes as an ASCII
// chart, one row per instance in commit order, scaled to the given
// width. It makes the concurrency structure of a run visible at a
// glance: overlapping bars are transactions in flight together.
func (res *Result) Timeline(width int) string {
	if len(res.Spans) == 0 {
		return "(no committed instances)\n"
	}
	if width < 10 {
		width = 10
	}
	spans := append([]Span(nil), res.Spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var maxEnd int64
	for _, sp := range spans {
		if sp.End > maxEnd {
			maxEnd = sp.End
		}
	}
	if maxEnd == 0 {
		maxEnd = 1
	}
	scale := func(t int64) int {
		p := int(t * int64(width-1) / maxEnd)
		if p >= width {
			p = width - 1
		}
		return p
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline (logical clock 0..%d, %s runs)\n", maxEnd, res.Protocol)
	for _, sp := range spans {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		a, b := scale(sp.Start), scale(sp.End)
		for i := a; i <= b && i < width; i++ {
			row[i] = '='
		}
		if a < width {
			row[a] = '|'
		}
		if b < width {
			row[b] = '>'
		}
		fmt.Fprintf(&sb, "T%-3d %s\n", sp.Program, row)
	}
	return sb.String()
}
