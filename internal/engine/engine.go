// Package engine is the unified transaction-execution pipeline: one
// explicit per-transaction lifecycle state machine
//
//	Admit → Issue → Decide → Apply → Commit/Abort → Recover
//
// shared by every driver. The deterministic tick driver (txn.Runner)
// and the sharded goroutine driver (txn.ConcurrentRunner) are thin
// loops — single-goroutine vs. worker pool — over the same stage
// implementations living here: admission and instance bookkeeping,
// protocol consultation, operation application with dirty-data
// tracking, commit gating, cascading abort with cross-transaction
// rollback, graceful degradation (shedding, livelock escalation) and
// the engine-owned reporter that turns a run into a Result plus trace
// and metrics emission.
//
// Cancellation is one mechanism throughout: every run threads a
// context.Context through the stages, the scheduler's grant/wait
// paths (sched.OpRequest.Ctx), the storage substrate's fault stalls
// and the fault injector's wedge points. Per-run deadlines are
// context deadlines; the concurrent driver's stall watchdog escalates
// by canceling the run context with its WedgeError as the cause. A
// canceled run unwinds through the Recover stage: every in-flight
// instance is aborted with its effects rolled back and its WAL abort
// record appended, so the store is invariant-clean and the log
// recoverable exactly as after any other abort.
package engine

// Stage names one lifecycle stage of the engine pipeline. Stage hooks
// (Config.Hooks) observe an instance crossing each stage; the tests
// use them to cancel runs at precise lifecycle points.
type Stage int

const (
	// StageAdmit is instance creation: an admission slot was free, the
	// protocol saw Begin, the WAL holds the begin record.
	StageAdmit Stage = iota
	// StageIssue is the moment the driver submits the instance's next
	// operation to the protocol.
	StageIssue
	// StageDecide is the protocol's verdict on the issued operation
	// (grant, block or abort).
	StageDecide
	// StageApply is a granted operation executing against the store.
	StageApply
	// StageCommit is commit bookkeeping for a finished instance.
	StageCommit
	// StageAbort is an abort cascade rolling an instance (and its
	// dirty-read dependents) back.
	StageAbort
	// StageRecover is the cancellation unwind: the run context was
	// canceled and the engine is aborting every in-flight instance to
	// leave the store invariant-clean and the WAL recoverable.
	StageRecover
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageAdmit:
		return "admit"
	case StageIssue:
		return "issue"
	case StageDecide:
		return "decide"
	case StageApply:
		return "apply"
	case StageCommit:
		return "commit"
	case StageAbort:
		return "abort"
	case StageRecover:
		return "recover"
	default:
		return "unknown"
	}
}

// Hooks observes lifecycle stage transitions, one optional function
// per stage; the instance is the one crossing the stage (Recover is
// run-scoped and carries none). A nil field costs its transition a
// single nil check, so observers that only need the per-instance
// lifecycle — internal/obs assembles spans from Admit/Commit/Abort —
// leave the per-operation stages (Issue, Decide, Apply) undisturbed on
// the hot path. Hooks run synchronously on the driver's execution path
// under whatever locks that path holds, so they must be fast and must
// not call back into the engine; canceling the run context is the
// intended use.
type Hooks struct {
	Admit  func(*Instance)
	Issue  func(*Instance)
	Decide func(*Instance)
	Apply  func(*Instance)
	Commit func(*Instance)
	Abort  func(*Instance)
	// Recover observes the cancellation unwind's start; the unwound
	// instances each cross Abort afterwards.
	Recover func()
}

// OnStages routes every stage transition through one function — the
// shape tests use to observe the full stage sequence or cancel a run
// at a precise lifecycle point.
func OnStages(fn func(Stage, *Instance)) Hooks {
	return Hooks{
		Admit:   func(st *Instance) { fn(StageAdmit, st) },
		Issue:   func(st *Instance) { fn(StageIssue, st) },
		Decide:  func(st *Instance) { fn(StageDecide, st) },
		Apply:   func(st *Instance) { fn(StageApply, st) },
		Commit:  func(st *Instance) { fn(StageCommit, st) },
		Abort:   func(st *Instance) { fn(StageAbort, st) },
		Recover: func() { fn(StageRecover, nil) },
	}
}
