package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// This file holds the graceful-degradation machinery shared by both
// drivers: admission-control load shedding under abort storms, livelock
// detection with escalating restart backoff, and the wedge diagnosis
// the concurrent driver's stall watchdog escalates with. All of it is
// deterministic given the run's seeds — the shedder and detector
// consume only commit/abort outcomes, and backoff draws come from
// dedicated RNG streams decoupled from scheduling decisions.

// WedgeError is the watchdog's diagnosis when the concurrent driver
// makes no progress for longer than Config.Watchdog: instead of the run
// hanging, the watchdog cancels the run context with this error as the
// cause, naming what was live at the time. Injected shard wedges
// (fault.ShardWedge) are released when the watchdog fires, so even a
// rate-1 wedge terminates.
type WedgeError struct {
	// After is the progress-free interval that tripped the watchdog.
	After time.Duration
	// Active and Sleepers snapshot the in-flight instance count and the
	// workers parked on condition variables when the wedge was declared.
	Active   int64
	Sleepers int64
	// Suspects lists driver shards whose mutex could not be acquired at
	// diagnosis time — a worker is stuck holding them.
	Suspects []int
}

func (e *WedgeError) Error() string {
	s := fmt.Sprintf("txn: watchdog: no progress for %v with %d active instances (%d asleep)",
		e.After, e.Active, e.Sleepers)
	if len(e.Suspects) > 0 {
		s += fmt.Sprintf("; wedged shards %v", e.Suspects)
	}
	return s
}

// shedWindow is the number of commit/abort outcomes per
// admission-control evaluation window.
const shedWindow = 32

// shedder is the admission controller: it watches the commit/abort mix
// in tumbling windows and halves the effective multiprogramming level
// when aborts dominate (an abort storm — thrashing restarts that only
// feed more conflicts), then recovers one slot per healthy window. The
// effective limit is stored atomically so admission paths can read it
// without the owner's lock; observe is caller-synchronized (the
// deterministic Runner is single-threaded, the concurrent driver calls
// it under the exclusive state lock).
type shedder struct {
	mpl       int
	effective atomic.Int64
	commits   int
	aborts    int
	sheds     int
	minEff    int
}

func newShedder(mpl int) *shedder {
	s := &shedder{mpl: mpl, minEff: mpl}
	s.effective.Store(int64(mpl))
	return s
}

// observe folds one commit (true) or abort (false) outcome and, at
// window boundaries, re-evaluates the limit. It returns the current
// limit and whether this call changed it.
func (s *shedder) observe(commit bool) (int, bool) {
	if commit {
		s.commits++
	} else {
		s.aborts++
	}
	if s.commits+s.aborts < shedWindow {
		return s.limit(), false
	}
	prev := s.limit()
	next := prev
	switch {
	case s.aborts >= 4*(s.commits+1):
		if next > 1 {
			next /= 2
			s.sheds++
		}
	case s.aborts <= s.commits && next < s.mpl:
		next++
	}
	s.commits, s.aborts = 0, 0
	if next != prev {
		s.effective.Store(int64(next))
		if next < s.minEff {
			s.minEff = next
		}
	}
	return next, next != prev
}

// limit returns the effective multiprogramming level. Safe from any
// goroutine.
func (s *shedder) limit() int { return int(s.effective.Load()) }

// livelock detects restart storms that never reach a commit: each
// escalation level doubles the restart budget (16, 32, 64, ...) and
// widens restart backoff, spreading contenders further apart than
// per-instance exponential backoff alone would. Caller-synchronized
// like the shedder.
type livelock struct {
	restartsSinceCommit int
	level               int
	escalations         int
}

// livelockMaxLevel caps backoff widening at 4 extra exponent steps.
const livelockMaxLevel = 4

// noteRestart records one restart and returns the current escalation
// level plus whether this restart escalated it.
func (d *livelock) noteRestart() (int, bool) {
	d.restartsSinceCommit++
	if d.level < livelockMaxLevel && d.restartsSinceCommit >= 16<<d.level {
		d.level++
		d.escalations++
		return d.level, true
	}
	return d.level, false
}

// noteCommit resets the detector: any commit is progress.
func (d *livelock) noteCommit() {
	d.restartsSinceCommit = 0
	d.level = 0
}

// jitter is the concurrent driver's restart-backoff stream: a seeded
// RNG behind a mutex (workers draw concurrently), producing capped
// exponential wall-clock sleeps. It only engages once the livelock
// detector has escalated — ordinary restarts keep the seed's
// yield-only behavior.
type jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// jitterBase is the unit backoff sleep; the exponent is capped so the
// worst case stays under ~13ms.
const (
	jitterBase   = 50 * time.Microsecond
	jitterMaxExp = 8
)

func newJitter(seed int64) *jitter {
	return &jitter{rng: rand.New(rand.NewSource(seed))}
}

// sleep blocks the caller for a random duration scaled by its restart
// count and the livelock escalation level; level 0 returns immediately.
func (j *jitter) sleep(restarts, level int) {
	if level <= 0 {
		return
	}
	exp := restarts
	if exp > 4 {
		exp = 4
	}
	exp += level
	if exp > jitterMaxExp {
		exp = jitterMaxExp
	}
	j.mu.Lock()
	d := time.Duration(j.rng.Int63n(int64(jitterBase) << exp))
	j.mu.Unlock()
	time.Sleep(d)
}

// RestartBackoffSeed derives the dedicated restart-backoff stream seed
// when Config.BackoffSeed is unset. Any fixed mix works; it just has to
// differ from the admission-shuffle stream so the two never share
// draws.
func (cfg *Config) RestartBackoffSeed() int64 {
	if cfg.BackoffSeed != 0 {
		return cfg.BackoffSeed
	}
	return cfg.Seed ^ 0x5DEECE66D
}

// DefaultWatchdog bounds progress-free wall time in the concurrent
// driver when Config.Watchdog is zero.
const DefaultWatchdog = 10 * time.Second
