package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"relser/internal/core"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/shard"
	"relser/internal/storage"
)

// Instance is one in-flight incarnation of a transaction program.
// Drivers own the synchronization: the deterministic driver touches
// instances single-threaded; the concurrent driver confines each
// instance to its worker on the operation path and to exclusive
// state-lock holders on lifecycle paths (Doomed is the one
// cross-worker flag, hence atomic).
type Instance struct {
	ID      int64
	Program *core.Transaction
	// Next is the program-order index of the next operation to issue.
	Next  int
	Undo  storage.UndoLog
	Reads map[int]storage.Value
	// DepsOn holds live instances whose uncommitted data this instance
	// read or overwrote; commit waits for them and their abort cascades
	// here.
	DepsOn   map[int64]bool
	Restarts int
	Events   []Event
	Writes   map[string]storage.Value
	// Done is set when all operations executed; the instance is waiting
	// to commit.
	Done bool
	// StartClock is the logical time at admission, for latency.
	StartClock int64
	// BlockedSince is the logical time the instance entered its current
	// block interval, or -1 when not blocked; the reporter's
	// block-latency histogram closes intervals at the next grant.
	BlockedSince int64
	// Doomed is set when a cascade initiated by another worker aborted
	// this instance; its worker observes the flag on next wake and
	// restarts the program (concurrent driver only).
	Doomed atomic.Bool
	// Obs is an opaque slot for observers layered over the stage hooks
	// (internal/obs parks the instance's live span here so lifecycle
	// hooks reach it without a table lookup). The engine never touches
	// it; access follows the same driver synchronization as the rest of
	// the instance.
	Obs any
}

// Pending is a program queued for (re-)admission.
type Pending struct {
	Program  *core.Transaction
	Restarts int
	// ReadyAt delays re-admission after an abort (restart backoff), in
	// ticks; only the deterministic driver's tick queue uses it.
	ReadyAt int
}

// Core is the engine pipeline state shared by every driver: the
// instance table, dirty-writer stacks, the dirty-read dependency
// graph, WAL emission, degradation controllers and the reporter. A
// Core implements the lifecycle stages; drivers supply the loop (one
// goroutine with a tick clock, or a worker pool with the execution
// sequence as the clock) and the synchronization discipline:
//
//   - The deterministic driver calls everything single-threaded.
//   - The concurrent driver calls Admit, TryCommit, AbortCascade and
//     AbortAll under its exclusive state lock; Decide, Unrecoverable
//     and Apply on the operation path under the shared state lock plus
//     the target object's shard lock (so the shard's dirty stacks are
//     stable). The dependency graph has its own leaf mutex for
//     operation-path mutations; lifecycle holders are excluded from
//     those by the state lock and access it directly.
type Core struct {
	Cfg    Config
	Router shard.Router

	// Active is the instance table, guarded by the driver's lifecycle
	// discipline (see type comment).
	Active       map[int64]*Instance
	nextInstance int64

	// dirty stacks uncommitted writers per object (innermost last),
	// partitioned by driver shard. Operation-path access requires the
	// object's shard lock in the concurrent driver.
	dirty []map[string][]int64

	// depMu guards dependents and every Instance.DepsOn among
	// concurrent operation-path holders; exclusive state holders access
	// them directly. Leaf mutex: never held across other locks.
	depMu      sync.Mutex
	dependents map[int64]map[int64]bool

	// walMu serializes WAL appends; append errors park in walErr until
	// a driver folds them into its run error. Leaf mutex.
	walMu  sync.Mutex
	walErr error

	// ExecSeq is the global execution sequence: every applied operation
	// draws the next value as its order. The concurrent driver also
	// uses it as the run's logical clock.
	ExecSeq atomic.Int64

	// Operation-path counters (atomic so the concurrent hot path needs
	// no extra locks); folded into the Result by Finalize.
	opsExecuted    atomic.Int64
	blocksTotal    atomic.Int64
	injectedAborts atomic.Int64
	injectedDelays atomic.Int64
	deadlineAborts atomic.Int64
	recovAborts    atomic.Int64
	cancelAborts   atomic.Int64

	// Degradation controllers; observe calls are lifecycle-locked.
	shed *shedder
	lv   livelock
	jit  *jitter

	latencies metrics.Stats
	rep       reporter

	// ret is the protocol's bounded-memory interface, resolved once
	// (nil when the protocol keeps no retirable state). The Admit and
	// TryCommit stages feed it the low-water mark, AbortAll unwinds
	// retirement-pending state, Finalize folds its stats into the
	// Result. All call sites are lifecycle-locked, so the retirement
	// calls never race Request.
	ret sched.Retirer

	res Result
}

// NewCore validates the configuration (filling defaults) and prepares
// the shared pipeline state.
func NewCore(cfg Config) (*Core, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	c := &Core{
		Cfg:        cfg,
		Router:     shard.NewRouter(cfg.Shards),
		Active:     make(map[int64]*Instance),
		dependents: make(map[int64]map[int64]bool),
		shed:       newShedder(cfg.MPL),
		jit:        newJitter(cfg.RestartBackoffSeed()),
	}
	c.dirty = make([]map[string][]int64, c.Router.Shards())
	for i := range c.dirty {
		c.dirty[i] = make(map[string][]int64)
	}
	c.rep = newReporter(&cfg)
	c.ret, _ = cfg.Protocol.(sched.Retirer)
	c.res.Protocol = cfg.Protocol.Name()
	c.res.oracle = cfg.Oracle
	return c, nil
}

// feedLowWater tells the protocol the lowest instance ID that could
// still receive a lifecycle call: all IDs below the minimum live ID
// (or below the next ID to be issued, when nothing is in flight) have
// finished for good. This is the pacemaker for the protocol's
// count-based retirement epochs. Lifecycle-locked.
//
//rsvet:deterministic
func (c *Core) feedLowWater() {
	if c.ret == nil {
		return
	}
	low := c.nextInstance + 1
	//rsvet:allow detlint -- order-insensitive: commutative min over the live IDs
	for id := range c.Active {
		if id < low {
			low = id
		}
	}
	c.ret.SetLowWater(low)
}

// Clock returns the execution-sequence clock (the concurrent driver's
// logical time).
func (c *Core) Clock() int64 { return c.ExecSeq.Load() }

// AdmitLimit returns the admission controller's current effective
// multiprogramming level. Safe from any goroutine.
func (c *Core) AdmitLimit() int { return c.shed.limit() }

// Committed returns the committed-instance count. Caller-synchronized
// (lifecycle discipline).
func (c *Core) Committed() int { return c.res.Committed }

// ActiveIDs returns the live instance IDs, ascending.
// Caller-synchronized.
func (c *Core) ActiveIDs() []int64 {
	ids := make([]int64, 0, len(c.Active))
	for id := range c.Active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Admit runs the Admit stage: a fresh instance enters the protocol,
// the WAL holds its begin record, and the admission is observed.
// Lifecycle-locked.
func (c *Core) Admit(pp *Pending, clock int64) *Instance {
	c.nextInstance++
	st := &Instance{
		ID:           c.nextInstance,
		Program:      pp.Program,
		Reads:        make(map[int]storage.Value),
		DepsOn:       make(map[int64]bool),
		Writes:       make(map[string]storage.Value),
		Restarts:     pp.Restarts,
		StartClock:   clock,
		BlockedSince: -1,
	}
	c.Active[st.ID] = st
	c.Cfg.Protocol.Begin(st.ID, st.Program)
	c.feedLowWater()
	c.LogWAL(storage.WALRecord{Kind: storage.WALBegin, Instance: st.ID})
	c.rep.begin(st, clock)
	if h := c.Cfg.Hooks.Admit; h != nil {
		h(st)
	}
	return st
}

// Decide runs the Issue and Decide stages: the instance's next
// operation is submitted to the protocol and its verdict returned. A
// request whose context is already canceled is refused with Abort
// without consulting the protocol — a canceled instance must not enter
// wait queues it will never leave. Called under whatever admission
// mutual exclusion the protocol requires (the driver's shard lock or
// protocol mutex).
func (c *Core) Decide(st *Instance, req sched.OpRequest) sched.Decision {
	if h := c.Cfg.Hooks.Issue; h != nil {
		h(st)
	}
	var dec sched.Decision
	if req.Canceled() {
		dec = sched.Abort
	} else {
		dec = c.Cfg.Protocol.Request(req)
	}
	if h := c.Cfg.Hooks.Decide; h != nil {
		h(st)
	}
	return dec
}

// Unrecoverable reports whether letting st touch op's object would
// close a dirty-data dependency cycle — neither party could ever
// commit first, so the driver must abort instead of applying. Called
// with the object's shard (shardIdx) stable per the driver's locking
// contract.
func (c *Core) Unrecoverable(st *Instance, op core.Op, shardIdx int) bool {
	w, dirty := topDirty(c.dirty[shardIdx], op.Object)
	return dirty && w != st.ID && c.depPath(w, st.ID)
}

// Apply runs the Apply stage for a granted operation: the store access
// (context-aware, so injected stalls cut short on cancellation), dirty
// tracking and dependency recording, the WAL write record, and the
// instance's event log. It returns the operation's global execution
// order. The caller must have ruled the access recoverable
// (Unrecoverable) under the same shard lock.
func (c *Core) Apply(ctx context.Context, st *Instance, op core.Op, shardIdx int) int64 {
	c.opsExecuted.Add(1)
	dirty := c.dirty[shardIdx]
	if op.Kind == core.ReadOp {
		v := c.Cfg.Store.ReadCtx(ctx, op.Object)
		st.Reads[op.Seq] = v.Value
		if w, ok := topDirty(dirty, op.Object); ok && w != st.ID {
			c.addDep(st, w)
		}
	} else {
		v := c.Cfg.Semantics.WriteValue(st.Program, op.Seq, st.Reads)
		if w, ok := topDirty(dirty, op.Object); ok && w != st.ID {
			c.addDep(st, w) // overwrote dirty data
		}
		st.Undo.WriteLoggedCtx(ctx, c.Cfg.Store, op.Object, v)
		st.Writes[op.Object] = v
		dirty[op.Object] = append(dirty[op.Object], st.ID)
		c.LogWAL(storage.WALRecord{Kind: storage.WALWrite, Instance: st.ID, Object: op.Object, Value: v})
	}
	order := c.ExecSeq.Add(1)
	st.Events = append(st.Events, Event{Instance: st.ID, Program: st.Program, Op: op, Order: order})
	st.Next++
	if st.Next == st.Program.Len() {
		st.Done = true
	}
	if h := c.Cfg.Hooks.Apply; h != nil {
		h(st)
	}
	return order
}

// TryCommit runs the Commit stage for a finished instance if its
// dirty-data dependencies have drained and the protocol agrees; a veto
// is counted as a commit wait and the driver retries.
// Lifecycle-locked.
func (c *Core) TryCommit(st *Instance, clock int64) bool {
	if len(st.DepsOn) > 0 || !c.Cfg.Protocol.CanCommit(st.ID) {
		c.res.CommitWaits++
		c.rep.commitWait()
		return false
	}
	c.Cfg.Protocol.Commit(st.ID)
	c.LogWAL(storage.WALRecord{Kind: storage.WALCommit, Instance: st.ID})
	st.Undo.Discard()
	//rsvet:allow detlint -- order-insensitive: each object's dirty entry is removed independently
	for obj := range st.Writes {
		c.removeDirty(obj, st.ID)
	}
	//rsvet:allow detlint -- order-insensitive: commutative per-dependent map deletions
	for dep := range c.dependents[st.ID] {
		if d, ok := c.Active[dep]; ok {
			delete(d.DepsOn, st.ID)
		}
	}
	delete(c.dependents, st.ID)
	delete(c.Active, st.ID)
	c.feedLowWater()
	if c.ret != nil {
		c.rep.retire(c.ret.RetireStats())
	}
	c.res.Committed++
	c.lv.noteCommit()
	prevLim := c.shed.limit()
	if lim, changed := c.shed.observe(true); changed {
		c.rep.shed(lim, c.Cfg.MPL, lim < prevLim, clock)
	}
	c.rep.commit(st, clock)
	c.latencies.Add(float64(clock - st.StartClock))
	c.res.Spans = append(c.res.Spans, Span{
		Instance: st.ID, Program: int(st.Program.ID),
		Start: st.StartClock, End: clock, CommitSeq: c.ExecSeq.Load(),
	})
	c.res.Trace = append(c.res.Trace, st.Events...)
	c.res.Programs = append(c.res.Programs, st.Program)
	if c.Cfg.History != nil {
		c.Cfg.History.Append(storage.Commit{Instance: st.ID, Writes: st.Writes})
	}
	if h := c.Cfg.Hooks.Commit; h != nil {
		h(st)
	}
	return true
}

// AbortCascade runs the Abort stage: the instance and, transitively,
// every live instance that read or overwrote its uncommitted data are
// aborted together, all their writes rolled back in global reverse
// order. onVictim is called for each victim after its engine-side
// cleanup — the deterministic driver requeues the program with backoff
// there, the concurrent driver dooms co-victims; a non-nil error stops
// the cascade and fails the run. Lifecycle-locked.
func (c *Core) AbortCascade(id int64, reason string, clock int64, onVictim func(*Instance) error) error {
	victims := map[int64]bool{}
	var collect func(v int64)
	collect = func(v int64) {
		if victims[v] {
			return
		}
		if _, ok := c.Active[v]; !ok {
			return
		}
		victims[v] = true
		for dep := range c.dependents[v] {
			collect(dep)
		}
	}
	collect(id)
	if len(victims) == 0 {
		return nil
	}
	ordered := make([]int64, 0, len(victims))
	//rsvet:allow detlint -- order-insensitive: victims are collected then sorted before any effect
	for v := range victims {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	logs := make([]*storage.UndoLog, 0, len(ordered))
	for _, v := range ordered {
		logs = append(logs, &c.Active[v].Undo)
	}
	storage.RollbackSet(c.Cfg.Store, logs)
	for _, v := range ordered {
		st := c.Active[v]
		c.Cfg.Protocol.Abort(v)
		c.LogWAL(storage.WALRecord{Kind: storage.WALAbort, Instance: v})
		c.rep.txnAbort(st, reason, clock)
		//rsvet:allow detlint -- order-insensitive: each object's dirty entry is removed independently
		for obj := range st.Writes {
			c.removeDirty(obj, v)
		}
		//rsvet:allow detlint -- order-insensitive: commutative per-dependent map deletions
		for dep := range c.dependents[v] {
			if d, ok := c.Active[dep]; ok {
				delete(d.DepsOn, v)
			}
		}
		delete(c.dependents, v)
		//rsvet:allow detlint -- order-insensitive: commutative reverse-edge deletions
		for on := range st.DepsOn {
			if deps := c.dependents[on]; deps != nil {
				delete(deps, v)
			}
		}
		delete(c.Active, v)
		c.res.Aborts++
		prevLim := c.shed.limit()
		if lim, changed := c.shed.observe(false); changed {
			c.rep.shed(lim, c.Cfg.MPL, lim < prevLim, clock)
		}
		if level, escalated := c.lv.noteRestart(); escalated {
			c.rep.livelockEscalation(level, clock)
		}
		if h := c.Cfg.Hooks.Abort; h != nil {
			h(st)
		}
		if onVictim != nil {
			if err := onVictim(st); err != nil {
				return err
			}
		}
	}
	return nil
}

// AbortAll runs the Recover stage: the run context was canceled, so
// every in-flight instance is aborted — effects rolled back, WAL abort
// records appended — leaving the store invariant-clean and the log
// recoverable exactly as after any other abort. cause names what
// canceled the run (for the trace). Returns the number of instances
// unwound. Lifecycle-locked.
func (c *Core) AbortAll(cause string, clock int64) int {
	// The run-scoped Recover hook fires even when nothing is left in
	// flight (earlier cascades may have drained every instance): the
	// unwind still marks the run's end.
	if h := c.Cfg.Hooks.Recover; h != nil {
		h()
	}
	ids := c.ActiveIDs()
	if len(ids) == 0 {
		if c.ret != nil {
			c.ret.FlushRetirement()
		}
		return 0
	}
	c.rep.cancel(cause, clock)
	n := 0
	for _, id := range ids {
		if _, ok := c.Active[id]; !ok {
			continue // already unwound by an earlier cascade
		}
		// onVictim never errors, so neither does the cascade.
		_ = c.AbortCascade(id, "canceled", clock, func(*Instance) error {
			n++
			c.cancelAborts.Add(1)
			c.rep.cancelAbort()
			return nil
		})
	}
	// The unwind leaves no retirement-pending state behind: queued
	// vertices and the overdue rebase drain now, while the Recover
	// stage still holds the lifecycle lock.
	if c.ret != nil {
		c.ret.FlushRetirement()
	}
	return n
}

// Finalize folds the operation-path counters, degradation state and
// latency stats into the Result, restores global execution order on
// the trace (commits append whole per-instance event blocks) and
// returns it. The driver supplies its tick statistics (zero for the
// concurrent driver, which has no tick clock).
func (c *Core) Finalize(ticks int, avgConcurrency float64) *Result {
	c.res.Ticks = ticks
	c.res.AvgConcurrency = avgConcurrency
	c.res.OpsExecuted = int(c.opsExecuted.Load())
	c.res.Blocks = int(c.blocksTotal.Load())
	c.res.InjectedAborts = int(c.injectedAborts.Load())
	c.res.InjectedDelays = int(c.injectedDelays.Load())
	c.res.DeadlineAborts = int(c.deadlineAborts.Load())
	c.res.RecoverabilityAborts = int(c.recovAborts.Load())
	c.res.CancelAborts = int(c.cancelAborts.Load())
	c.res.LoadSheds = c.shed.sheds
	c.res.MinEffectiveMPL = c.shed.minEff
	c.res.LivelockEscalations = c.lv.escalations
	c.res.LatencyMean = c.latencies.Mean()
	c.res.LatencyP95 = c.latencies.Percentile(95)
	if c.ret != nil {
		c.ret.FlushRetirement()
		c.res.Retire = c.ret.RetireStats()
		c.rep.retire(c.res.Retire)
	}
	sort.Slice(c.res.Trace, func(i, j int) bool { return c.res.Trace[i].Order < c.res.Trace[j].Order })
	return &c.res
}

// LogWAL appends a record, parking errors in walErr (surfaced by
// WALErr at the drivers' fold points) so the hot path never needs a
// lifecycle lock. Commit records go through AppendSync — the
// durability point where a segmented log's group commit parks the
// caller until the lane's fsync — everything else is enqueued async.
// The sink serializes internally; walMu only guards the error latch.
func (c *Core) LogWAL(rec storage.WALRecord) {
	if c.Cfg.WAL == nil {
		return
	}
	var err error
	if rec.Kind == storage.WALCommit {
		err = c.Cfg.WAL.AppendSync(rec)
	} else {
		err = c.Cfg.WAL.Append(rec)
	}
	if err != nil {
		c.walMu.Lock()
		if c.walErr == nil {
			c.walErr = fmt.Errorf("txn: WAL append failed: %w", err)
		}
		c.walMu.Unlock()
	}
}

// WALErr returns the parked WAL append error, if any, folding in the
// sink's own latched error (async appends can fail after the call
// that enqueued them returned). Safe from any goroutine.
func (c *Core) WALErr() error {
	c.walMu.Lock()
	err := c.walErr
	c.walMu.Unlock()
	if err != nil {
		return err
	}
	if c.Cfg.WAL != nil {
		if werr := c.Cfg.WAL.Err(); werr != nil {
			return fmt.Errorf("txn: WAL append failed: %w", werr)
		}
	}
	return nil
}

// FlushWAL drains the sink's group-commit queues (one final fsync per
// lane) and surfaces any append error; drivers call it once at the end
// of a run so async appends are durable before the result is final.
func (c *Core) FlushWAL() error {
	if c.Cfg.WAL != nil {
		if err := c.Cfg.WAL.Sync(); err != nil {
			c.walMu.Lock()
			if c.walErr == nil {
				c.walErr = fmt.Errorf("txn: WAL flush failed: %w", err)
			}
			c.walMu.Unlock()
		}
	}
	return c.WALErr()
}

// CountRestart records one program restart (the driver decides where
// in its loop restarts are charged). Lifecycle-locked.
func (c *Core) CountRestart() {
	c.res.Restarts++
	c.rep.restart()
}

// CountRecoverabilityAbort records one driver-issued recoverability
// abort.
func (c *Core) CountRecoverabilityAbort() {
	c.recovAborts.Add(1)
	c.rep.recoverabilityAbort()
}

// CountDeadlineAbort records one per-instance deadline overrun.
func (c *Core) CountDeadlineAbort() {
	c.deadlineAborts.Add(1)
	c.rep.deadlineAbort()
}

// CountFault records a driver-level fault-point firing (txn.abort or
// sched.grant.delay) against the instance it hit.
func (c *Core) CountFault(p fault.Point, inst int64, clock int64) {
	switch p {
	case fault.TxnForcedAbort:
		c.injectedAborts.Add(1)
	case fault.SchedGrantDelay:
		c.injectedDelays.Add(1)
	}
	c.rep.fault(p, inst, clock)
}

// ObserveGrant records an executed operation with its execution order.
func (c *Core) ObserveGrant(st *Instance, op core.Op, order, clock int64) {
	c.rep.grant(st, op, order, clock)
}

// ObserveBlock records a protocol Block decision; shardIdx, when
// non-negative, additionally charges the sharded driver's per-shard
// block counter.
func (c *Core) ObserveBlock(st *Instance, op core.Op, clock int64, shardIdx int) {
	c.blocksTotal.Add(1)
	if shardIdx >= 0 && c.rep.shardBlocks != nil {
		c.rep.shardBlocks[shardIdx].Inc()
	}
	c.rep.block(st, op, clock)
}

// ObserveAbortDecision records a protocol Abort decision for a request.
func (c *Core) ObserveAbortDecision(st *Instance, op core.Op, clock int64) {
	c.rep.abortDecision(st, op, clock)
}

// ObserveWedge records the watchdog declaring the run wedged.
func (c *Core) ObserveWedge(we *WedgeError) { c.rep.wedge(we) }

// ObserveWakeup / ObserveBroadcast* record the concurrent driver's
// cond-variable traffic.
func (c *Core) ObserveWakeup() { c.rep.wakeup() }

// ObserveBroadcastShard records a targeted per-shard broadcast.
func (c *Core) ObserveBroadcastShard() { c.rep.broadcastShard() }

// ObserveBroadcastGlobal records a global-cond broadcast.
func (c *Core) ObserveBroadcastGlobal() { c.rep.broadcastGlobal() }

// ObserveBroadcastFlood records a flood (everything) broadcast.
func (c *Core) ObserveBroadcastFlood() { c.rep.broadcastFlood() }

// InitShardInstruments resolves the sharded driver's per-shard
// contention instruments (no-op without a metrics registry).
func (c *Core) InitShardInstruments() {
	c.rep.initShardInstruments(c.Cfg.Metrics, c.Router.Shards())
}

// ShardInstruments returns shard i's block counter and wall-clock wait
// histogram (nil without metrics).
func (c *Core) ShardInstruments(i int) (*metrics.Counter, *metrics.Histogram) {
	if c.rep.shardBlocks == nil {
		return nil, nil
	}
	return c.rep.shardBlocks[i], c.rep.shardWait[i]
}

// JitterSleep blocks the caller for a seeded random backoff scaled by
// its restart count and the livelock escalation level; level 0 returns
// immediately.
func (c *Core) JitterSleep(restarts, level int) { c.jit.sleep(restarts, level) }

// LivelockLevel returns the current livelock escalation level.
// Lifecycle-locked.
func (c *Core) LivelockLevel() int { return c.lv.level }

// addDep records a dirty-read dependency from the operation path.
func (c *Core) addDep(st *Instance, on int64) {
	c.depMu.Lock()
	defer c.depMu.Unlock()
	if st.DepsOn[on] {
		return
	}
	st.DepsOn[on] = true
	deps := c.dependents[on]
	if deps == nil {
		deps = make(map[int64]bool)
		c.dependents[on] = deps
	}
	deps[st.ID] = true
}

// depPath reports whether the dependency graph has a path from -> to.
// Takes depMu; the Active map itself is stable under the caller's
// driver discipline.
func (c *Core) depPath(from, to int64) bool {
	c.depMu.Lock()
	defer c.depMu.Unlock()
	seen := map[int64]bool{}
	stack := []int64{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == to {
			return true
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		if inst, ok := c.Active[v]; ok {
			for d := range inst.DepsOn {
				stack = append(stack, d)
			}
		}
	}
	return false
}

// topDirty returns the innermost uncommitted writer of object in the
// given shard's dirty table.
func topDirty(dirty map[string][]int64, object string) (int64, bool) {
	stack := dirty[object]
	if len(stack) == 0 {
		return 0, false
	}
	return stack[len(stack)-1], true
}

// removeDirty drops every stack entry of the instance for the object.
// Lifecycle-locked (commit and cascade paths only).
func (c *Core) removeDirty(object string, id int64) {
	dirty := c.dirty[c.Router.Shard(object)]
	stack := dirty[object]
	out := stack[:0]
	for _, w := range stack {
		if w != id {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		delete(dirty, object)
	} else {
		dirty[object] = out
	}
}
