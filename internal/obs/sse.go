package obs

import (
	"sync"
	"sync/atomic"

	"relser/internal/metrics"
	"relser/internal/trace"
)

// broadcaster fans recorded events to SSE subscribers. The hot path
// pays one atomic load when nobody is listening; with subscribers it
// takes a read lock and performs non-blocking sends — a subscriber that
// cannot keep up loses events (counted) rather than stalling the run.
type broadcaster struct {
	mu      sync.RWMutex
	subs    map[int]chan trace.Event
	nextID  int
	active  atomic.Int64
	subsG   *metrics.Gauge
	dropped *metrics.Counter
}

// subscriberBuffer is each subscriber's channel depth; the tail handler
// drains it into the HTTP response.
const subscriberBuffer = 256

func newBroadcaster(reg *metrics.Registry) *broadcaster {
	b := &broadcaster{subs: make(map[int]chan trace.Event)}
	if reg != nil {
		b.subsG = reg.Gauge("obs.sse_subscribers")
		b.dropped = reg.Counter("obs.sse_dropped")
	}
	return b
}

// broadcast offers the event to every subscriber without blocking.
func (b *broadcaster) broadcast(ev trace.Event) {
	if b.active.Load() == 0 {
		return
	}
	b.mu.RLock()
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default:
			if b.dropped != nil {
				b.dropped.Inc()
			}
		}
	}
	b.mu.RUnlock()
}

// subscribe registers a new tail; the caller must unsubscribe with the
// returned id when done.
func (b *broadcaster) subscribe() (int, <-chan trace.Event) {
	ch := make(chan trace.Event, subscriberBuffer)
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	b.mu.Unlock()
	b.active.Add(1)
	if b.subsG != nil {
		b.subsG.Add(1)
	}
	return id, ch
}

func (b *broadcaster) unsubscribe(id int) {
	b.mu.Lock()
	_, ok := b.subs[id]
	delete(b.subs, id)
	b.mu.Unlock()
	if ok {
		b.active.Add(-1)
		if b.subsG != nil {
			b.subsG.Add(-1)
		}
	}
}
