package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"relser/internal/metrics"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges map directly;
// histograms map to summaries (quantile-labelled series plus _sum and
// _count) with the retained maximum as a separate <name>_max gauge.
// Metric names have their dots replaced with underscores
// (txn.commit_waits -> txn_commit_waits).
func WritePrometheus(w io.Writer, s metrics.Snapshot) error {
	var sb strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s summary\n", pn)
		fmt.Fprintf(&sb, "%s{quantile=\"0.5\"} %s\n", pn, promFloat(h.P50))
		fmt.Fprintf(&sb, "%s{quantile=\"0.95\"} %s\n", pn, promFloat(h.P95))
		fmt.Fprintf(&sb, "%s{quantile=\"0.99\"} %s\n", pn, promFloat(h.P99))
		fmt.Fprintf(&sb, "%s_sum %s\n", pn, promFloat(h.Mean*float64(h.Count)))
		fmt.Fprintf(&sb, "%s_count %d\n", pn, h.Count)
		fmt.Fprintf(&sb, "# TYPE %s_max gauge\n%s_max %s\n", pn, pn, promFloat(h.Max))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// promName maps a registry key to a valid Prometheus metric name.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if valid {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a float the way Prometheus expects (plain decimal,
// no exponent surprises for the common cases).
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
