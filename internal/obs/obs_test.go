package obs_test

// Plane tests: the full-trace mode replays through the paper's offline
// cycle verification, spans reconcile with the run result, the ops
// endpoint serves every route, the SSE tail streams live events, and
// degradation events trigger deduplicated automatic flight dumps.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"relser/internal/metrics"
	"relser/internal/obs"
	"relser/internal/sched"
	"relser/internal/trace"
	"relser/internal/txn"
	"relser/internal/workload"
)

// contendedRun executes the contended synthetic workload under RSGT
// with the given plane attached and returns the workload and result.
func contendedRun(t *testing.T, plane *obs.Plane) (*workload.Workload, *txn.Result) {
	t.Helper()
	cfg := workload.DefaultSyntheticConfig()
	cfg.Granularity = 2
	w, err := workload.Synthetic(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := w.RunWith(sched.NewRSGT(w.Oracle), workload.RunOptions{
		Seed: 1, MPL: 8, Obs: plane,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("committed schedule failed certification: %v", err)
	}
	return w, res
}

// TestPlaneFullTraceReplaysThroughVerifyCycles runs the contended
// workload with the plane in full-trace mode and replays the flight
// recorder's retained stream through the offline RSG verification —
// the recorder must be a faithful substitute for a -trace buffer when
// nothing is dropped. Spans must reconcile exactly with the result.
func TestPlaneFullTraceReplaysThroughVerifyCycles(t *testing.T) {
	plane := obs.New(obs.Options{Full: true, RingCap: 1 << 17})
	w, res := contendedRun(t, plane)
	defer plane.Close()

	flight := plane.Flight()
	if drops := plane.Registry().Snapshot().Counters["obs.ring_drops"]; drops != 0 {
		t.Fatalf("ring dropped %d events; raise RingCap so replay sees the full stream", drops)
	}
	counts := trace.CountKinds(flight)
	if counts[trace.KindCommit] != res.Committed {
		t.Fatalf("flight has %d commits, result %d", counts[trace.KindCommit], res.Committed)
	}
	rejects := counts[trace.KindCycleReject]
	if rejects == 0 {
		t.Fatal("run produced no cycle rejections; pick a more contended seed")
	}
	checked, err := trace.VerifyCycles(flight, w.Oracle.Cuts)
	if err != nil {
		t.Fatalf("flight-recorder replay failed after %d cycle(s): %v", checked, err)
	}
	if checked != rejects {
		t.Fatalf("verified %d cycles, flight has %d", checked, rejects)
	}

	spans := plane.Spans()
	var committed, aborted, linked, reasoned int
	for _, sp := range spans {
		switch sp.Status {
		case "committed":
			committed++
		case "aborted":
			aborted++
			if sp.Reason != "" {
				reasoned++
			}
		default:
			t.Fatalf("span with unexpected status %q: %+v", sp.Status, sp)
		}
		if len(sp.Links) > 0 {
			linked++
		}
		if sp.End < sp.Start {
			t.Fatalf("span ends before it starts: %+v", sp)
		}
	}
	if committed != res.Committed || aborted != res.Aborts {
		t.Fatalf("spans committed=%d aborted=%d, result %d/%d", committed, aborted, res.Committed, res.Aborts)
	}
	if linked == 0 {
		t.Error("no span carries RSG cycle evidence despite cycle rejections")
	}
	if aborted > 0 && reasoned == 0 {
		t.Error("no aborted span carries the driver's abort reason")
	}
}

// TestPlaneSamplingGate pins the gate arithmetic: SampleEvery rounds up
// to a power of two, the first event of a hot kind always passes, rare
// kinds are never sampled, and an enabled downstream tracer forces full
// mode (offline replay needs the complete stream).
func TestPlaneSamplingGate(t *testing.T) {
	plane := obs.New(obs.Options{SampleEvery: 48}) // rounds up to 64
	tr := plane.Tracer(nil)
	passed := 0
	for i := 0; i < 130; i++ {
		if tr.Wants(trace.KindGrant) {
			passed++
		}
	}
	if passed != 3 {
		t.Errorf("130 grants passed %d times, want 3 (SampleEvery 48 rounds to 64)", passed)
	}
	for i := 0; i < 10; i++ {
		if !tr.Wants(trace.KindCycleReject) || !tr.Wants(trace.KindWedge) {
			t.Fatal("rare kinds must never be sampled")
		}
	}

	buf := trace.NewBuffer()
	full := obs.New(obs.Options{}).Tracer(trace.New(buf))
	for i := 0; i < 130; i++ {
		if !full.Wants(trace.KindGrant) {
			t.Fatal("downstream sink attached: sampling must be disabled")
		}
	}
}

// TestPlaneDownstreamTee runs with both a plane and a -trace style
// buffer attached and demands the tee delivers the identical complete
// stream to both: the buffer must replay through VerifyCycles and the
// recorder must have seen every event the buffer did.
func TestPlaneDownstreamTee(t *testing.T) {
	plane := obs.New(obs.Options{RingCap: 1 << 17})
	buf := trace.NewBuffer()
	cfg := workload.DefaultSyntheticConfig()
	cfg.Granularity = 2
	w, err := workload.Synthetic(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.RunWith(sched.NewRSGT(w.Oracle), workload.RunOptions{
		Seed: 1, MPL: 8, Obs: plane, Tracer: trace.New(buf),
	}); err != nil {
		t.Fatal(err)
	}
	events := buf.Events()
	if len(events) == 0 {
		t.Fatal("downstream buffer saw no events")
	}
	if got := plane.Recorder().Recorded(); got != uint64(len(events)) {
		t.Errorf("recorder saw %d events, downstream %d; the tee must not sample", got, len(events))
	}
	if _, err := trace.VerifyCycles(events, w.Oracle.Cuts); err != nil {
		t.Errorf("downstream stream failed replay verification: %v", err)
	}
}

// TestServerEndpoints runs a workload with the plane attached and
// scrapes every ops route, checking each response reconciles with the
// in-process state.
func TestServerEndpoints(t *testing.T) {
	plane := obs.New(obs.Options{})
	srv, err := plane.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()
	_, res := contendedRun(t, plane)

	// Prometheus text exposition: canonical counter and histogram
	// summary lines for both engine and plane instruments.
	text := string(get(t, base+"/metrics"))
	for _, want := range []string{
		"# TYPE txn_committed counter",
		fmt.Sprintf("txn_committed %d", res.Committed),
		"# TYPE obs_ring_recorded counter",
		"# TYPE txn_latency summary",
		`txn_latency{quantile="0.5"}`,
		"txn_latency_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	// JSON snapshot: counters match the run result exactly.
	var snap metrics.Snapshot
	getJSON(t, base+"/metrics?format=json", &snap)
	if got := snap.Counters["txn.committed"]; got != int64(res.Committed) {
		t.Errorf("scraped txn.committed = %d, result %d", got, res.Committed)
	}

	// Health: agrees with the result, not wedged after a clean run.
	var h obs.Health
	getJSON(t, base+"/healthz", &h)
	if h.Wedged || h.Status == "" {
		t.Errorf("unexpected health after clean run: %+v", h)
	}
	if h.Committed != int64(res.Committed) {
		t.Errorf("health committed = %d, result %d", h.Committed, res.Committed)
	}

	// Flight dump: every JSONL line decodes and the count matches the
	// in-process snapshot.
	lines := jsonlLines(t, get(t, base+"/debug/flight"))
	if want := len(plane.Flight()); len(lines) != want {
		t.Errorf("/debug/flight served %d events, recorder holds %d", len(lines), want)
	}
	var ev trace.Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Errorf("flight line does not decode as a trace event: %v", err)
	}

	// Spans: JSONL and Chrome trace renderings.
	spanLines := jsonlLines(t, get(t, base+"/debug/spans"))
	spans := plane.Spans()
	if len(spanLines) != len(spans) {
		t.Errorf("/debug/spans served %d spans, table holds %d", len(spanLines), len(spans))
	}
	var sp obs.Span
	if err := json.Unmarshal([]byte(spanLines[0]), &sp); err != nil {
		t.Errorf("span line does not decode: %v", err)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	getJSON(t, base+"/debug/spans?format=chrome", &chrome)
	if len(chrome.TraceEvents) != 2*len(spans) {
		t.Errorf("chrome rendering has %d events, want B/E pairs for %d spans", len(chrome.TraceEvents), len(spans))
	}
	chrome.TraceEvents = nil
	getJSON(t, base+"/debug/flight?format=chrome", &chrome)
	if len(chrome.TraceEvents) == 0 {
		t.Error("chrome flight rendering is empty")
	}

	// pprof is mounted.
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}

	// Scrapes are themselves counted (dynamic obs.http.* keys).
	if got := plane.Registry().Snapshot().Counters["obs.http.metrics.requests"]; got < 2 {
		t.Errorf("obs.http.metrics.requests = %d, want >= 2", got)
	}

	// A wedge flips /healthz to 503 with status "wedged".
	plane.Tracer(nil).Emit(trace.Event{Kind: trace.KindWedge, Reason: "no progress for 1000 ticks"})
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "wedged" {
		t.Errorf("wedged health = %d %+v, want 503/wedged", resp.StatusCode, h)
	}
}

// TestSSELiveTail subscribes to /debug/trace and checks events emitted
// after subscription stream out as SSE data lines.
func TestSSELiveTail(t *testing.T) {
	plane := obs.New(obs.Options{})
	srv, err := plane.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := plane.Tracer(nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+srv.Addr().String()+"/debug/trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// The subscriber registers between the header flush and the first
	// channel read; emit until a line arrives so the test cannot race
	// the subscription.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				tr.Emit(trace.Event{Kind: trace.KindDonate, Instance: int64(i), Reason: "sse-test"})
			}
		}
	}()

	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev trace.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("SSE data line does not decode: %v (%q)", err, line)
		}
		if ev.Kind != trace.KindDonate || ev.Reason != "sse-test" {
			t.Fatalf("unexpected event on the tail: %+v", ev)
		}
		return // got a live event; done
	}
	t.Fatalf("SSE stream ended without an event: %v", scanner.Err())
}

// TestAutoDumpTriggers feeds the degradation events that must trigger
// automatic flight dumps — wedge, cancel, abort-storm shedding,
// livelock escalation past the threshold — plus the near misses that
// must not, and checks the dump files land deduplicated and readable.
func TestAutoDumpTriggers(t *testing.T) {
	dir := t.TempDir()
	plane := obs.New(obs.Options{DumpDir: dir})
	tr := plane.Tracer(nil)

	// Some ring content so dumps are non-empty.
	for i := 0; i < 5; i++ {
		tr.Emit(trace.Event{Kind: trace.KindCycleReject, Instance: int64(i)})
	}

	// Near misses first: routine shed recovery (above half MPL) and a
	// level-1 livelock escalation stay below the thresholds.
	tr.Emit(trace.Event{Kind: trace.KindShed, Reason: "effective-mpl=12/16"})
	tr.Emit(trace.Event{Kind: trace.KindFault, Reason: "livelock-escalation level=1"})
	plane.Close()
	if dumps, _ := plane.Dumps(); len(dumps) != 0 {
		t.Fatalf("near-miss events triggered dumps: %v", dumps)
	}

	// The real triggers, each twice — dedup must keep one dump per
	// trigger kind.
	for i := 0; i < 2; i++ {
		tr.Emit(trace.Event{Kind: trace.KindShed, Reason: "effective-mpl=4/16"})
		tr.Emit(trace.Event{Kind: trace.KindWedge, Reason: "stalled"})
		tr.Emit(trace.Event{Kind: trace.KindCancel, Reason: "context canceled"})
		tr.Emit(trace.Event{Kind: trace.KindFault, Reason: "livelock-escalation level=2"})
	}
	plane.Close()
	dumps, errs := plane.Dumps()
	if len(errs) != 0 {
		t.Fatalf("dump errors: %v", errs)
	}
	if len(dumps) != 4 {
		t.Fatalf("got %d dumps, want one per trigger kind: %v", len(dumps), dumps)
	}
	byTrigger := make(map[string]string)
	for _, path := range dumps {
		// flight-<seq>-<trigger>.jsonl, where <seq> is two digits and
		// <trigger> may itself contain dashes ("abort-storm").
		name := filepath.Base(path)
		trigger := strings.TrimSuffix(strings.TrimPrefix(name, "flight-")[3:], ".jsonl")
		byTrigger[trigger] = path
	}
	for _, want := range []string{"abort-storm", "wedge", "cancel", "livelock"} {
		path, ok := byTrigger[want]
		if !ok {
			t.Errorf("no dump for trigger %q (have %v)", want, dumps)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) == 0 || lines[0] == "" {
			t.Errorf("dump %s is empty", path)
			continue
		}
		var ev trace.Event
		if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
			t.Errorf("dump %s line does not decode: %v", path, err)
		}
	}
	if got := plane.Registry().Snapshot().Counters["obs.dump_triggers"]; got != 4 {
		t.Errorf("obs.dump_triggers = %d, want 4", got)
	}
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	if err := json.Unmarshal(get(t, url), into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func jsonlLines(t *testing.T, data []byte) []string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty JSONL body")
	}
	return lines
}

// TestDumpHeaderAndHealthAnnotations: once a run's fault schedule and
// recording are annotated, flight dumps lead with a self-describing
// header line and /healthz reports both — a dump or scrape alone
// identifies the spec, seed and .rsrec artifact that reproduce it.
func TestDumpHeaderAndHealthAnnotations(t *testing.T) {
	dir := t.TempDir()
	plane := obs.New(obs.Options{DumpDir: dir})
	plane.AnnotateFaults("shard.wedge:1", 42, func() string { return "deadbeefdeadbeef" })
	plane.SetRecording("/tmp/run.rsrec", func() int64 { return 17 })

	tr := plane.Tracer(nil)
	tr.Emit(trace.Event{Kind: trace.KindWedge, Reason: "stalled"})
	plane.Close()
	dumps, errs := plane.Dumps()
	if len(errs) != 0 || len(dumps) != 1 {
		t.Fatalf("dumps %v errs %v", dumps, errs)
	}
	data, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var hdr struct {
		Header           bool   `json:"header"`
		FaultSpec        string `json:"fault_spec"`
		FaultSeed        int64  `json:"fault_seed"`
		FaultFingerprint string `json:"fault_fingerprint"`
		Recording        string `json:"recording"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header line does not decode: %v (%q)", err, lines[0])
	}
	if !hdr.Header || hdr.FaultSpec != "shard.wedge:1" || hdr.FaultSeed != 42 ||
		hdr.FaultFingerprint != "deadbeefdeadbeef" || hdr.Recording != "/tmp/run.rsrec" {
		t.Fatalf("header %+v", hdr)
	}
	// The wedge event itself must still follow the header.
	var ev trace.Event
	if len(lines) < 2 {
		t.Fatal("header-only dump: events missing")
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil || ev.Kind != trace.KindWedge {
		t.Fatalf("second line is not the wedge event: %v %+v", err, ev)
	}

	h := plane.Health()
	if h.FaultSpec != "shard.wedge:1" || h.FaultSeed != 42 {
		t.Fatalf("health fault stamp: %+v", h)
	}
	if h.Recording == nil || !h.Recording.Active || h.Recording.Path != "/tmp/run.rsrec" || h.Recording.Stages != 17 {
		t.Fatalf("health recording status: %+v", h.Recording)
	}

	// Un-annotated planes keep the legacy headerless format.
	plain := obs.New(obs.Options{DumpDir: t.TempDir()})
	ptr := plain.Tracer(nil)
	ptr.Emit(trace.Event{Kind: trace.KindWedge, Reason: "stalled"})
	plain.Close()
	pd, _ := plain.Dumps()
	if len(pd) != 1 {
		t.Fatalf("plain dumps %v", pd)
	}
	pdata, _ := os.ReadFile(pd[0])
	first := strings.SplitN(strings.TrimSpace(string(pdata)), "\n", 2)[0]
	if strings.Contains(first, "\"header\":true") {
		t.Fatalf("un-annotated dump grew a header: %q", first)
	}
	if h := plain.Health(); h.FaultSpec != "" || h.Recording != nil {
		t.Fatalf("un-annotated health carries annotations: %+v", h)
	}
}
