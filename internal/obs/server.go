package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"relser/internal/trace"
)

// Handler returns the ops endpoint: everything an operator (or the
// planned rserve front end) mounts to watch a live system.
//
//	/metrics       Prometheus text exposition of the shared registry
//	               (?format=json for the raw snapshot)
//	/healthz       degradation state (HTTP 503 when wedged)
//	/debug/flight  flight-recorder dump (JSONL; ?format=chrome)
//	/debug/spans   completed transaction spans (JSONL; ?format=chrome)
//	/debug/trace   SSE live tail of recorded events
//	/debug/pprof/  net/http/pprof profiles
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", p.instrument("metrics", p.handleMetrics))
	mux.HandleFunc("/healthz", p.instrument("healthz", p.handleHealthz))
	mux.HandleFunc("/debug/flight", p.instrument("flight", p.handleFlight))
	mux.HandleFunc("/debug/spans", p.instrument("spans", p.handleSpans))
	mux.HandleFunc("/debug/trace", p.instrument("trace", p.handleTrace))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// instrument wraps a handler with a per-endpoint request counter. The
// keys are formatted ("obs.http.<endpoint>.requests"), which is why
// metrics.DynamicKeyPrefixes registers the "obs.http." prefix.
func (p *Plane) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	ctr := p.reg.Counter(fmt.Sprintf("obs.http.%s.requests", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		ctr.Inc()
		h(w, r)
	}
}

func (p *Plane) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := p.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, snap)
}

func (p *Plane) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := p.Health()
	w.Header().Set("Content-Type", "application/json")
	if h.Wedged {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(h)
}

func (p *Plane) handleFlight(w http.ResponseWriter, r *http.Request) {
	events := p.Flight()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteChrome(w, events)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	_ = trace.WriteJSONL(w, events)
}

func (p *Plane) handleSpans(w http.ResponseWriter, r *http.Request) {
	spans := p.Spans()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteSpansChrome(w, spans)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	_ = WriteSpansJSONL(w, spans)
}

// handleTrace streams recorded events as server-sent events until the
// client disconnects. Events a slow client cannot drain are dropped
// (counted in obs.sse_dropped) — the tail observes, it never backs up
// the run.
func (p *Plane) handleTrace(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	id, ch := p.sse.subscribe()
	defer p.sse.unsubscribe(id)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if _, err := fmt.Fprintf(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// Server is a running ops endpoint.
type Server struct {
	plane *Plane
	srv   *http.Server
	ln    net.Listener
	done  chan struct{}
}

// Serve starts the ops endpoint on addr (e.g. ":6060", "127.0.0.1:0")
// in a background goroutine and returns once the listener is bound, so
// the caller can log the resolved address before the run starts.
func (p *Plane) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		plane: p,
		srv:   &http.Server{Handler: p.Handler()},
		ln:    ln,
		done:  make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // http.ErrServerClosed on shutdown
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the endpoint down, allowing in-flight scrapes a short
// grace period, and waits for the plane's pending dumps.
func (s *Server) Close() error {
	//rsvet:allow ctxflow -- shutdown-grace root: Close has no caller context and bounds the drain itself
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	s.plane.Close()
	return err
}
