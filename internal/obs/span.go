package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"relser/internal/engine"
	"relser/internal/metrics"
	"relser/internal/trace"
)

// Span is one transaction instance's lifecycle, assembled from the
// engine's Admit→…→Commit/Abort stage transitions and enriched with the
// RSG evidence that explains its fate: the reason the driver gave for
// an abort and the conflict cycles the protocol rejected against it.
type Span struct {
	// Instance is the runtime instance number, Txn the program's ID.
	Instance int64 `json:"instance"`
	Txn      int   `json:"txn"`
	// Start and End are nanoseconds since the plane's epoch.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Status is StatusCommitted or StatusAborted.
	Status SpanStatus `json:"status"`
	// Reason qualifies aborts (the driver's abort reason).
	Reason string `json:"reason,omitempty"`
	// Ops is the number of operations the instance executed.
	Ops int `json:"ops"`
	// Restarts is the program's restart count at admission.
	Restarts int `json:"restarts"`
	// Links are the causal explanations observed against this instance
	// while it ran: RSG cycle rejections, conflict cycles, deadlocks.
	Links []SpanLink `json:"links,omitempty"`
}

// SpanStatus is a span's terminal status. The statuses form a closed
// registry (SpanStatuses); the registrydrift analyzer validates
// SpanStatus-typed string literals against it, so a typo cannot
// silently produce spans no dashboard filter matches.
type SpanStatus string

// The registered terminal span statuses.
const (
	StatusCommitted SpanStatus = "committed"
	StatusAborted   SpanStatus = "aborted"
)

// SpanStatuses returns the registered terminal span statuses.
func SpanStatuses() []SpanStatus {
	return []SpanStatus{StatusCommitted, StatusAborted}
}

// SpanLink ties a span to one piece of scheduling evidence.
type SpanLink struct {
	// Kind is the trace kind that produced the link ("cycle-reject",
	// "conflict-cycle", "deadlock").
	Kind string `json:"kind"`
	// Detail renders the evidence (the cycle chain in paper notation).
	Detail string `json:"detail"`
}

// maxSpanLinks bounds per-span evidence so an abort storm cannot grow
// one span without bound.
const maxSpanLinks = 8

// DefaultSpanCap is the default completed-span retention.
const DefaultSpanCap = 1 << 12

// spanTable assembles spans from stage hooks (lifecycle) and trace
// events (enrichment). Hooks run under the drivers' lifecycle locks and
// events arrive from the operation path, so the table has its own
// mutex; only rare kinds (admission, commit, abort, cycle evidence)
// ever reach it — the per-operation hot path never takes this lock.
type spanTable struct {
	mu     sync.Mutex
	live   map[int64]*Span
	done   []Span // ring of completed spans
	next   int    // next overwrite position in done
	wrap   bool   // done has wrapped at least once
	epoch  time.Time
	liveG  *metrics.Gauge
	doneC  *metrics.Counter
	closed uint64
}

func newSpanTable(epoch time.Time, capacity int, reg *metrics.Registry) *spanTable {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	t := &spanTable{
		live:  make(map[int64]*Span),
		done:  make([]Span, 0, capacity),
		epoch: epoch,
	}
	if reg != nil {
		t.liveG = reg.Gauge("obs.spans_live")
		t.doneC = reg.Counter("obs.spans_completed")
	}
	return t
}

func (t *spanTable) now() int64 { return time.Since(t.epoch).Nanoseconds() }

// admit opens an instance's span; Plane.Hooks chains it into the
// engine's Admit stage. The per-operation stages never reach the
// table.
func (t *spanTable) admit(st *engine.Instance) {
	sp := &Span{
		Instance: st.ID, Txn: int(st.Program.ID),
		Start: t.now(), Restarts: st.Restarts,
	}
	st.Obs = sp
	t.mu.Lock()
	t.live[st.ID] = sp
	if t.liveG != nil {
		t.liveG.Add(1)
	}
	t.mu.Unlock()
}

// finish closes the instance's span. The engine emits the txn-abort
// trace event (which carries the driver's reason) before firing the
// abort hook, so by the time finish runs the span's Reason is already
// enriched via observe.
func (t *spanTable) finish(st *engine.Instance, status SpanStatus) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.live[st.ID]
	if !ok {
		if sp, ok = st.Obs.(*Span); !ok || sp == nil {
			return
		}
	}
	delete(t.live, st.ID)
	st.Obs = nil
	sp.End = t.now()
	sp.Status = status
	sp.Ops = st.Next
	t.push(*sp)
	if t.liveG != nil {
		t.liveG.Add(-1)
	}
	if t.doneC != nil {
		t.doneC.Inc()
	}
}

// push appends a completed span, overwriting the oldest once the
// retention capacity is reached.
func (t *spanTable) push(sp Span) {
	t.closed++
	if len(t.done) < cap(t.done) {
		t.done = append(t.done, sp)
		return
	}
	t.wrap = true
	t.done[t.next] = sp
	t.next = (t.next + 1) % len(t.done)
}

// observe enriches spans from the event stream: abort reasons and cycle
// evidence. Called only for the rare kinds the plane routes here.
func (t *spanTable) observe(ev trace.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.live[ev.Instance]
	if !ok {
		return
	}
	switch ev.Kind {
	case trace.KindTxnAbort:
		sp.Reason = ev.Reason
	case trace.KindCycleReject, trace.KindConflictCycle, trace.KindDeadlock:
		if len(sp.Links) < maxSpanLinks && ev.Cycle != nil {
			sp.Links = append(sp.Links, SpanLink{Kind: string(ev.Kind), Detail: ev.Cycle.String()})
		}
	}
}

// Completed returns the retained completed spans, oldest first.
func (t *spanTable) Completed() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrap {
		return append([]Span(nil), t.done...)
	}
	out := make([]Span, 0, len(t.done))
	out = append(out, t.done[t.next:]...)
	out = append(out, t.done[:t.next]...)
	return out
}

// WriteSpansJSONL encodes spans one JSON object per line.
func WriteSpansJSONL(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// WriteSpansChrome renders spans in Chrome trace_event JSON: one lane
// per instance with a B/E pair over its lifetime, abort reasons and
// cycle links as span args. Load in chrome://tracing or
// ui.perfetto.dev.
func WriteSpansChrome(w io.Writer, spans []Span) error {
	type chromeEvent struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		PID   int            `json:"pid"`
		TID   int64          `json:"tid"`
		TS    float64        `json:"ts"`
		Args  map[string]any `json:"args,omitempty"`
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	out := make([]chromeEvent, 0, 2*len(spans))
	for _, sp := range spans {
		args := map[string]any{
			"status": sp.Status, "ops": sp.Ops, "restarts": sp.Restarts,
		}
		if sp.Reason != "" {
			args["reason"] = sp.Reason
		}
		for i, l := range sp.Links {
			args[fmt.Sprintf("link%d", i)] = fmt.Sprintf("%s: %s", l.Kind, l.Detail)
		}
		name := fmt.Sprintf("T%d (inst %d)", sp.Txn, sp.Instance)
		out = append(out,
			chromeEvent{Name: name, Phase: "B", PID: 1, TID: sp.Instance, TS: us(sp.Start), Args: args},
			chromeEvent{Name: name, Phase: "E", PID: 1, TID: sp.Instance, TS: us(sp.End)},
		)
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": out})
}
