// Package obs is the live observability plane: an always-on,
// low-overhead layer over the engine's stage hooks and trace stream
// that keeps a bounded in-memory view of a running system — a
// lock-free flight recorder over trace events, per-transaction spans
// carrying RSG conflict evidence, and a degradation health roll-up —
// and serves it over an embeddable ops HTTP endpoint (Prometheus
// /metrics, /healthz, flight dumps, SSE live tail, pprof).
//
// The plane is built not to perturb what it observes. Hot event kinds
// (per-transaction lifecycle, grants, store latch crossings, WAL
// appends) are sampled *before*
// event construction via the tracer's kind gate, the recorder ring is
// lock-free, span and health bookkeeping only runs for rare lifecycle
// kinds, and with no plane attached every instrumentation site remains
// the nil-tracer no-op it was. Attaching a full-trace downstream sink
// (rssim -trace) disables sampling so post-hoc consumers — including
// trace.VerifyCycles replay — still see the complete stream.
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"relser/internal/engine"
	"relser/internal/metrics"
	"relser/internal/trace"
)

// DefaultSampleEvery is the default sampling divisor for hot event
// kinds: one in every N begin/commit/grant/store/WAL events is
// recorded.
const DefaultSampleEvery = 64

// DefaultDumpLivelockLevel is the livelock escalation level that
// triggers an automatic flight dump.
const DefaultDumpLivelockLevel = 2

// maxAutoDumps bounds the number of automatic dump files per plane.
const maxAutoDumps = 8

// Options configures a Plane. The zero value is usable: a fresh
// registry, default ring and span retention, default sampling, no file
// dumps.
type Options struct {
	// Registry receives the plane's instruments and is the registry
	// /metrics exposes. Share it with the run (workload wiring does this
	// automatically) so one scrape covers engine and plane. Nil creates
	// a fresh registry.
	Registry *metrics.Registry
	// RingCap is the flight-recorder capacity (DefaultRingCap if <= 0).
	RingCap int
	// SpanCap is the completed-span retention (DefaultSpanCap if <= 0).
	SpanCap int
	// SampleEvery records one in every N hot-kind events
	// (DefaultSampleEvery if 0; 1 or Full disables sampling; rounded up
	// to a power of two so the gate divides with a mask). Rare kinds —
	// degradation, cycle evidence, per-instance aborts — are never
	// sampled.
	SampleEvery int
	// Full disables sampling entirely; implied when a downstream
	// full-trace sink is attached via Tracer.
	Full bool
	// DumpDir, when set, receives automatic flight dumps (JSONL) on
	// watchdog wedge, run cancellation, livelock escalation and
	// abort-storm shedding. Empty disables file dumps; the triggers are
	// still counted and the ring stays inspectable over HTTP.
	DumpDir string
	// DumpLivelockLevel is the escalation level that triggers a dump
	// (DefaultDumpLivelockLevel if 0; negative disables the trigger).
	DumpLivelockLevel int
}

// Plane bundles the flight recorder, span table, health state and SSE
// broadcaster behind one wiring surface. Construct once per process
// (or per run), wire with Tracer and Hooks, and mount Handler.
type Plane struct {
	opts   Options
	reg    *metrics.Registry
	rec    *Recorder
	spans  *spanTable
	health *healthState
	sse    *broadcaster
	epoch  time.Time

	// sampleMask is SampleEvery-1 (power of two), applied to the
	// per-kind countdowns below so the gate's modulo is a mask.
	sampleMask uint64

	// Sampling countdowns, one per gated kind (plain atomics so the
	// gate never locks).
	scBegin      atomic.Uint64
	scCommit     atomic.Uint64
	scGrant      atomic.Uint64
	scBlock      atomic.Uint64
	scLockWait   atomic.Uint64
	scStoreRead  atomic.Uint64
	scStoreWrite atomic.Uint64
	scWAL        atomic.Uint64

	dumpC    *metrics.Counter
	dumpMu   sync.Mutex
	dumped   map[string]bool
	dumps    []string
	dumpWG   sync.WaitGroup
	dumpSeq  int
	dumpErrs []error

	// Run annotations (AnnotateFaults / SetRecording): stamped into
	// flight-dump headers and /healthz so dumps and live state are
	// self-describing — a dump alone identifies the fault schedule that
	// produced it and the .rsrec artifact that can replay it.
	annotMu   sync.Mutex
	faultSpec string
	faultSeed int64
	faultFP   func() string
	recPath   string
	recStages func() int64
}

// New constructs a plane.
func New(opts Options) *Plane {
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = DefaultSampleEvery
	}
	for opts.SampleEvery&(opts.SampleEvery-1) != 0 {
		opts.SampleEvery++
	}
	if opts.DumpLivelockLevel == 0 {
		opts.DumpLivelockLevel = DefaultDumpLivelockLevel
	}
	epoch := time.Now()
	return &Plane{
		opts:       opts,
		sampleMask: uint64(opts.SampleEvery) - 1,
		reg:        reg,
		rec:        NewRecorder(opts.RingCap, reg),
		spans:      newSpanTable(epoch, opts.SpanCap, reg),
		health:     &healthState{},
		sse:        newBroadcaster(reg),
		epoch:      epoch,
		dumpC:      reg.Counter("obs.dump_triggers"),
		dumped:     make(map[string]bool),
	}
}

// Registry returns the plane's metrics registry (share it with the run
// so engine counters and plane counters land in one scrape).
func (p *Plane) Registry() *metrics.Registry { return p.reg }

// Recorder returns the flight recorder.
func (p *Plane) Recorder() *Recorder { return p.rec }

// AnnotateFaults stamps the run's fault spec and seed into the plane,
// with an optional live fingerprint source (fault.Injector.Fingerprint)
// sampled at dump time. Flight dumps gain a header line carrying all
// three, and /healthz reports the spec and seed — so a dump or scrape
// is self-describing: the schedule that produced it can be re-armed
// from the header alone.
func (p *Plane) AnnotateFaults(spec string, seed int64, fingerprint func() string) {
	p.annotMu.Lock()
	p.faultSpec, p.faultSeed, p.faultFP = spec, seed, fingerprint
	p.annotMu.Unlock()
}

// SetRecording announces an active .rsrec recording (internal/record):
// the path lands in flight-dump headers and /healthz, with stages
// sampled live for the frame count. Pass an empty path to clear.
func (p *Plane) SetRecording(path string, stages func() int64) {
	p.annotMu.Lock()
	p.recPath, p.recStages = path, stages
	p.annotMu.Unlock()
}

// dumpHeader is the first line of a flight dump: not a trace event but
// a run identification block (distinguished by "header":true).
type dumpHeader struct {
	Header           bool   `json:"header"`
	FaultSpec        string `json:"fault_spec,omitempty"`
	FaultSeed        int64  `json:"fault_seed,omitempty"`
	FaultFingerprint string `json:"fault_fingerprint,omitempty"`
	Recording        string `json:"recording,omitempty"`
}

// header snapshots the current annotations; ok is false when nothing
// has been annotated (dumps then omit the header line, keeping the
// pre-annotation format).
func (p *Plane) header() (dumpHeader, bool) {
	p.annotMu.Lock()
	defer p.annotMu.Unlock()
	h := dumpHeader{Header: true, FaultSpec: p.faultSpec, Recording: p.recPath}
	if p.faultSpec != "" {
		h.FaultSeed = p.faultSeed
		if p.faultFP != nil {
			h.FaultFingerprint = p.faultFP()
		}
	}
	return h, p.faultSpec != "" || p.recPath != ""
}

// Flight returns the flight recorder's retained events in order.
func (p *Plane) Flight() []trace.Event { return p.rec.Snapshot() }

// Spans returns the retained completed spans, oldest first.
func (p *Plane) Spans() []Span { return p.spans.Completed() }

// Health returns the current degradation roll-up.
func (p *Plane) Health() Health {
	h := p.health.snapshot(p.reg)
	p.annotMu.Lock()
	h.FaultSpec = p.faultSpec
	if p.faultSpec != "" {
		h.FaultSeed = p.faultSeed
	}
	if p.recPath != "" {
		h.Recording = &RecordingStatus{Active: true, Path: p.recPath}
		if p.recStages != nil {
			h.Recording.Stages = p.recStages()
		}
	}
	p.annotMu.Unlock()
	return h
}

// Tracer returns a tracer that feeds the plane. When downstream is an
// enabled tracer (a CLI's -trace buffer, a JSONL writer), its sink is
// teed in after the plane — behind a serializing wrapper, since the
// plane's tracer is unserialized — and sampling is disabled so the
// downstream consumer sees the complete stream (trace.VerifyCycles
// replay requires every grant). With no downstream, hot kinds are
// sampled per Options.SampleEvery before event construction.
func (p *Plane) Tracer(downstream *trace.Tracer) *trace.Tracer {
	var tee trace.Sink
	full := p.opts.Full || p.opts.SampleEvery <= 1
	if downstream.Enabled() {
		tee = &syncSink{s: downstream.Sink()}
		full = true
	}
	t := trace.NewUnserialized(&planeSink{p: p, downstream: tee})
	if !full {
		t.SetKindGate(p.admit)
	}
	return t
}

// Hooks chains the plane's span assembly in front of next on the
// lifecycle stages (Admit, Commit, Abort), preserving any hooks the
// caller installed. The per-operation stages are left exactly as the
// caller set them — for the plane alone they stay nil, so Issue,
// Decide and Apply keep costing the engine a nil check per transition.
func (p *Plane) Hooks(next engine.Hooks) engine.Hooks {
	h := next
	h.Admit = chainHook(p.spans.admit, next.Admit)
	h.Commit = chainHook(func(st *engine.Instance) { p.spans.finish(st, StatusCommitted) }, next.Commit)
	h.Abort = chainHook(func(st *engine.Instance) { p.spans.finish(st, StatusAborted) }, next.Abort)
	return h
}

// chainHook runs first, then the caller's hook when one is installed.
func chainHook(first, then func(*engine.Instance)) func(*engine.Instance) {
	if then == nil {
		return first
	}
	return func(st *engine.Instance) {
		first(st)
		then(st)
	}
}

// Close waits for in-flight automatic dumps to finish writing.
func (p *Plane) Close() {
	p.dumpWG.Wait()
}

// Dumps returns the automatic dump files written so far and any write
// errors encountered.
func (p *Plane) Dumps() ([]string, []error) {
	p.dumpMu.Lock()
	defer p.dumpMu.Unlock()
	return append([]string(nil), p.dumps...), append([]error(nil), p.dumpErrs...)
}

// admit is the tracer kind gate: hot kinds pass one in SampleEvery
// (the first of each kind always passes), everything else always. Runs
// on the instrumented hot path, so it is a string switch plus one
// atomic add and a mask — no locks, no allocation, no division.
func (p *Plane) admit(k trace.Kind) bool {
	m := p.sampleMask
	switch k {
	case trace.KindBegin:
		return p.scBegin.Add(1)&m == 1
	case trace.KindCommit:
		return p.scCommit.Add(1)&m == 1
	case trace.KindGrant:
		return p.scGrant.Add(1)&m == 1
	case trace.KindBlock:
		return p.scBlock.Add(1)&m == 1
	case trace.KindLockWait:
		return p.scLockWait.Add(1)&m == 1
	case trace.KindStoreRead:
		return p.scStoreRead.Add(1)&m == 1
	case trace.KindStoreWrite:
		return p.scStoreWrite.Add(1)&m == 1
	case trace.KindWALAppend:
		return p.scWAL.Add(1)&m == 1
	}
	return true
}

// planeSink fans one event to the plane's consumers: span enrichment
// and health for the rare kinds that need them, then the ring, the SSE
// broadcast and the optional downstream tee. Safe for concurrent use.
type planeSink struct {
	p          *Plane
	downstream trace.Sink
}

// Emit implements trace.Sink.
func (s *planeSink) Emit(ev trace.Event) {
	p := s.p
	switch ev.Kind {
	case trace.KindTxnAbort, trace.KindCycleReject, trace.KindConflictCycle, trace.KindDeadlock:
		p.spans.observe(ev)
	case trace.KindShed, trace.KindWedge, trace.KindCancel:
		p.health.observe(ev)
		p.maybeDump(ev)
	case trace.KindFault:
		if isLivelockEscalation(ev) {
			p.health.observe(ev)
			p.maybeDump(ev)
		}
	}
	p.rec.Emit(ev)
	p.sse.broadcast(ev)
	if s.downstream != nil {
		s.downstream.Emit(ev)
	}
}

// syncSink serializes Emit calls onto a sink that is not safe for
// concurrent use (trace.JSONLWriter; trace.Buffer locks internally but
// the wrapper is cheap and uniform).
type syncSink struct {
	mu sync.Mutex
	s  trace.Sink
}

// Emit implements trace.Sink.
func (s *syncSink) Emit(ev trace.Event) {
	s.mu.Lock()
	s.s.Emit(ev)
	s.mu.Unlock()
}

// maybeDump fires the automatic flight dump when a degradation event
// crosses a trigger threshold. Dumps are deduplicated per trigger kind
// and written off the emitting goroutine, so a wedge dump never runs
// under the driver locks the wedge itself is about.
func (p *Plane) maybeDump(ev trace.Event) {
	var trigger string
	switch ev.Kind {
	case trace.KindWedge:
		trigger = "wedge"
	case trace.KindCancel:
		trigger = "cancel"
	case trace.KindShed:
		// Only a storm — the controller holding admission at or below
		// half the configured level — triggers a dump; routine recovery
		// steps do not.
		var eff, mpl int
		if _, err := fmt.Sscanf(ev.Reason, "effective-mpl=%d/%d", &eff, &mpl); err != nil || mpl == 0 || eff > mpl/2 {
			return
		}
		trigger = "abort-storm"
	case trace.KindFault:
		var level int
		if _, err := fmt.Sscanf(ev.Reason, "livelock-escalation level=%d", &level); err != nil {
			return
		}
		if p.opts.DumpLivelockLevel < 0 || level < p.opts.DumpLivelockLevel {
			return
		}
		trigger = "livelock"
	default:
		return
	}
	p.dumpMu.Lock()
	if p.dumped[trigger] || p.dumpSeq >= maxAutoDumps {
		p.dumpMu.Unlock()
		return
	}
	p.dumped[trigger] = true
	p.dumpSeq++
	seq := p.dumpSeq
	p.dumpMu.Unlock()
	p.dumpC.Inc()
	if p.opts.DumpDir == "" {
		return
	}
	p.dumpWG.Add(1)
	go func() {
		defer p.dumpWG.Done()
		path := filepath.Join(p.opts.DumpDir, fmt.Sprintf("flight-%02d-%s.jsonl", seq, trigger))
		hdr, hasHdr := p.header()
		err := writeDump(path, hdr, hasHdr, p.rec.Snapshot())
		p.dumpMu.Lock()
		if err != nil {
			p.dumpErrs = append(p.dumpErrs, fmt.Errorf("obs: dump %s: %w", path, err))
		} else {
			p.dumps = append(p.dumps, path)
		}
		p.dumpMu.Unlock()
	}()
}

func writeDump(path string, hdr dumpHeader, hasHdr bool, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if hasHdr {
		line, merr := json.Marshal(hdr)
		if merr == nil {
			_, err = f.Write(append(line, '\n'))
		} else {
			err = merr
		}
		if err != nil {
			f.Close()
			return err
		}
	}
	if err := trace.WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
