package obs

import (
	"sort"
	"sync/atomic"

	"relser/internal/metrics"
	"relser/internal/trace"
)

// Recorder is the flight recorder: a fixed-size lock-free ring of trace
// events. Writers claim a slot by advancing an atomic cursor and
// publish the event with an atomic pointer store, so the hot path never
// takes a lock and -race sees only atomic operations. The ring holds
// the most recent Cap events; older entries are overwritten (counted as
// drops). Snapshot reassembles the survivors in emission order by the
// per-entry sequence number each writer stamped at claim time.
type Recorder struct {
	slots  []atomic.Pointer[ringEntry]
	cursor atomic.Uint64

	// recorded/drops are resolved once at construction; nil without a
	// registry.
	recorded *metrics.Counter
	drops    *metrics.Counter
}

// ringEntry pairs an event with the global sequence its writer claimed,
// so Snapshot can restore emission order after wraparound.
type ringEntry struct {
	seq uint64
	ev  trace.Event
}

// DefaultRingCap is the default flight-recorder capacity.
const DefaultRingCap = 1 << 14

// NewRecorder returns a recorder retaining the most recent capacity
// events (DefaultRingCap when capacity <= 0). The registry, when
// non-nil, receives the recorder's instruments.
func NewRecorder(capacity int, reg *metrics.Registry) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	r := &Recorder{slots: make([]atomic.Pointer[ringEntry], capacity)}
	if reg != nil {
		r.recorded = reg.Counter("obs.ring_recorded")
		r.drops = reg.Counter("obs.ring_drops")
	}
	return r
}

// Emit implements trace.Sink. Safe for concurrent use without external
// serialization (the plane's tracer is unserialized).
func (r *Recorder) Emit(ev trace.Event) {
	seq := r.cursor.Add(1) - 1
	e := &ringEntry{seq: seq, ev: ev}
	if old := r.slots[seq%uint64(len(r.slots))].Swap(e); old != nil {
		if r.drops != nil {
			r.drops.Inc()
		}
	}
	if r.recorded != nil {
		r.recorded.Inc()
	}
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int { return len(r.slots) }

// Recorded returns the total number of events ever recorded (including
// those since overwritten).
func (r *Recorder) Recorded() uint64 { return r.cursor.Load() }

// Snapshot returns the retained events in emission order. Taken
// concurrently with writers it is a loosely consistent view: each slot
// is read atomically, entries are ordered by claim sequence, and an
// entry a racing writer replaced mid-snapshot simply appears with its
// newer payload.
func (r *Recorder) Snapshot() []trace.Event {
	entries := make([]*ringEntry, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]trace.Event, len(entries))
	for i, e := range entries {
		out[i] = e.ev
	}
	return out
}
