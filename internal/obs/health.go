package obs

import (
	"fmt"
	"strings"
	"sync"

	"relser/internal/metrics"
	"relser/internal/trace"
)

// Health is the degradation state the /healthz endpoint reports: a
// roll-up of the engine's graceful-degradation machinery (admission
// shedding, livelock escalation, the stall watchdog, run cancellation)
// plus the headline run counters.
type Health struct {
	// Status is "ok", "degraded" (shedding or livelock escalation
	// active) or "wedged" (the watchdog declared the run stuck).
	Status string `json:"status"`
	// Shedding reports the admission controller holding the effective
	// multiprogramming level below the configured one.
	Shedding bool `json:"shedding"`
	// EffectiveMPL / MPL are the current and configured admission
	// limits (zero before the first shed observation without metrics).
	EffectiveMPL int `json:"effective_mpl"`
	MPL          int `json:"mpl"`
	// LivelockLevel is the restart-backoff escalation level.
	LivelockLevel int `json:"livelock_level"`
	// Wedged reports the stall watchdog having fired; WedgeReason is
	// its diagnosis.
	Wedged      bool   `json:"wedged"`
	WedgeReason string `json:"wedge_reason,omitempty"`
	// Canceled reports the run context having been canceled;
	// CancelCause names what canceled it.
	Canceled    bool   `json:"canceled"`
	CancelCause string `json:"cancel_cause,omitempty"`
	// Headline counters from the shared registry.
	Committed int64   `json:"committed"`
	Aborts    int64   `json:"aborts"`
	Active    float64 `json:"active"`
	// FaultSpec / FaultSeed identify the run's armed fault schedule
	// (Plane.AnnotateFaults); empty when no injector is armed.
	FaultSpec string `json:"fault_spec,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	// Recording reports an active .rsrec capture (Plane.SetRecording).
	Recording *RecordingStatus `json:"recording,omitempty"`
}

// RecordingStatus is the /healthz view of the record layer's capture.
type RecordingStatus struct {
	Active bool   `json:"active"`
	Path   string `json:"path"`
	// Stages is the number of engine lifecycle crossings captured so
	// far (record.Recorder.StageEvents).
	Stages int64 `json:"stages"`
}

// healthState accumulates degradation evidence from the rare event
// kinds; the mutex is touched only by those kinds, never by the
// per-operation hot path.
type healthState struct {
	mu          sync.Mutex
	effMPL      int
	mpl         int
	livelock    int
	wedged      bool
	wedgeReason string
	canceled    bool
	cancelCause string
}

// observe folds one degradation event into the state. Called only for
// shed, wedge, fault and cancel kinds.
func (h *healthState) observe(ev trace.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch ev.Kind {
	case trace.KindShed:
		// Reason format: "effective-mpl=<eff>/<mpl>" (engine reporter).
		var eff, mpl int
		if _, err := fmt.Sscanf(ev.Reason, "effective-mpl=%d/%d", &eff, &mpl); err == nil {
			h.effMPL, h.mpl = eff, mpl
		}
	case trace.KindWedge:
		h.wedged = true
		h.wedgeReason = ev.Reason
	case trace.KindCancel:
		h.canceled = true
		h.cancelCause = ev.Reason
	case trace.KindFault:
		// Livelock escalations ride the fault kind with a structured
		// reason: "livelock-escalation level=<n>" (engine reporter).
		var level int
		if _, err := fmt.Sscanf(ev.Reason, "livelock-escalation level=%d", &level); err == nil {
			h.livelock = level
		}
	}
}

// snapshot renders the current health, pulling live gauge levels from
// the shared registry when one is attached.
func (h *healthState) snapshot(reg *metrics.Registry) Health {
	h.mu.Lock()
	out := Health{
		EffectiveMPL:  h.effMPL,
		MPL:           h.mpl,
		LivelockLevel: h.livelock,
		Wedged:        h.wedged,
		WedgeReason:   h.wedgeReason,
		Canceled:      h.canceled,
		CancelCause:   h.cancelCause,
	}
	h.mu.Unlock()
	if reg != nil {
		out.Committed = reg.Counter("txn.committed").Value()
		out.Aborts = reg.Counter("txn.aborts").Value()
		out.Active = reg.Gauge("txn.active").Value()
		if eff := reg.Gauge("txn.effective_mpl").Value(); eff > 0 {
			out.EffectiveMPL = int(eff)
		}
		if reg.Gauge("txn.degraded").Value() > 0 {
			out.Shedding = true
		}
	}
	if out.MPL > 0 && out.EffectiveMPL > 0 && out.EffectiveMPL < out.MPL {
		out.Shedding = true
	}
	switch {
	case out.Wedged:
		out.Status = "wedged"
	case out.Shedding || out.LivelockLevel > 0:
		out.Status = "degraded"
	default:
		out.Status = "ok"
	}
	return out
}

// isLivelockEscalation reports whether a fault event is a livelock
// escalation (as opposed to an injected fault-point firing).
func isLivelockEscalation(ev trace.Event) bool {
	return ev.Kind == trace.KindFault && strings.HasPrefix(ev.Reason, "livelock-escalation ")
}
