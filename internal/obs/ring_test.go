package obs_test

// Flight-recorder ring tests: retention and ordering across
// wraparound, and the lock-free Emit/Snapshot discipline under -race.

import (
	"sync"
	"testing"

	"relser/internal/metrics"
	"relser/internal/obs"
	"relser/internal/trace"
)

// TestRecorderWraparoundOrdering overfills a small ring and checks the
// survivors are exactly the newest Cap events, still in emission
// order, with the overwrites counted as drops.
func TestRecorderWraparoundOrdering(t *testing.T) {
	reg := metrics.NewRegistry()
	r := obs.NewRecorder(8, reg)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	const total = 20
	for i := 0; i < total; i++ {
		r.Emit(trace.Event{Kind: trace.KindGrant, Order: int64(i)})
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot holds %d events, want the ring's 8", len(evs))
	}
	for i, ev := range evs {
		if want := int64(total - 8 + i); ev.Order != want {
			t.Fatalf("snapshot[%d].Order = %d, want %d (newest 8 in order)", i, ev.Order, want)
		}
	}
	if r.Recorded() != total {
		t.Errorf("Recorded = %d, want %d", r.Recorded(), total)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["obs.ring_recorded"]; got != total {
		t.Errorf("obs.ring_recorded = %d, want %d", got, total)
	}
	if got := snap.Counters["obs.ring_drops"]; got != total-8 {
		t.Errorf("obs.ring_drops = %d, want %d", got, total-8)
	}
}

// TestRecorderDefaultCap pins the zero-capacity default.
func TestRecorderDefaultCap(t *testing.T) {
	if got := obs.NewRecorder(0, nil).Cap(); got != obs.DefaultRingCap {
		t.Fatalf("default cap = %d, want %d", got, obs.DefaultRingCap)
	}
}

// TestRecorderConcurrentEmit races eight emitters against a snapshot
// reader. Under -race this pins the lock-free ring's claim/publish
// protocol; the assertions pin that snapshots taken mid-race stay
// bounded and per-emitter order survives the global sort.
func TestRecorderConcurrentEmit(t *testing.T) {
	reg := metrics.NewRegistry()
	r := obs.NewRecorder(64, reg)
	const emitters, perEmitter = 8, 500
	done := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if n := len(r.Snapshot()); n > r.Cap() {
				t.Errorf("mid-race snapshot holds %d events, cap %d", n, r.Cap())
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < perEmitter; j++ {
				r.Emit(trace.Event{Kind: trace.KindGrant, Instance: int64(g), Seq: j})
			}
		}(g)
	}
	wg.Wait()
	close(done)
	readerWG.Wait()
	if r.Recorded() != emitters*perEmitter {
		t.Errorf("Recorded = %d, want %d", r.Recorded(), emitters*perEmitter)
	}
	snap := r.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("final snapshot holds %d events, want a full ring of 64", len(snap))
	}
	// Each emitter wrote its Seq values in order, so within the
	// sequence-sorted snapshot every emitter's surviving events must
	// still be increasing.
	last := make(map[int64]int)
	for _, ev := range snap {
		if prev, ok := last[ev.Instance]; ok && ev.Seq <= prev {
			t.Fatalf("emitter %d out of order in snapshot: %d after %d", ev.Instance, ev.Seq, prev)
		}
		last[ev.Instance] = ev.Seq
	}
	s := reg.Snapshot()
	if rec, drop := s.Counters["obs.ring_recorded"], s.Counters["obs.ring_drops"]; rec != emitters*perEmitter || drop != rec-64 {
		t.Errorf("counters recorded=%d drops=%d, want %d and %d", rec, drop, emitters*perEmitter, emitters*perEmitter-64)
	}
}
