package metrics

// canonicalKeys is the registry of metric names the system emits.
// Every literal key passed to Registry.Counter/Gauge/Histogram in
// non-test code must appear here; the rsvet registrydrift analyzer
// enforces that statically, so a typo in a dashboard-facing key is a
// compile-gate failure instead of a silently empty time series.
//
// Dynamically formatted per-shard keys (txn.shard%02d.blocks,
// txn.shard%02d.wait_seconds) are outside the literal check; their
// prefixes are registered here so tooling can still recognize them.
var canonicalKeys = []string{
	"txn.ops_executed",
	"txn.committed",
	"txn.aborts",
	"txn.blocks",
	"txn.restarts",
	"txn.commit_waits",
	"txn.recoverability_aborts",
	"txn.active",
	"txn.latency",
	"txn.block_latency",
	"txn.deadline_aborts",
	"txn.injected_aborts",
	"txn.injected_delays",
	"txn.load_sheds",
	"txn.livelock_escalations",
	"txn.watchdog_wedges",
	"txn.cancel_aborts",
	"txn.degraded",
	"txn.effective_mpl",
	"txn.wakeups",
	"txn.cond.broadcast_shard",
	"txn.cond.broadcast_global",
	"txn.cond.broadcast_flood",

	// Segmented WAL (internal/storage): group-commit durability lanes.
	// Per-lane histograms (wal.shardNN.fsync_seconds,
	// wal.shardNN.batch_records) ride the "wal.shard" dynamic prefix.
	"wal.appends",
	"wal.fsyncs",
	"wal.rotations",
	"wal.group_commits",

	// Observability plane (internal/obs): flight-recorder ring, span
	// table, SSE tail and automatic dump triggers.
	"obs.ring_recorded",
	"obs.ring_drops",
	"obs.spans_live",
	"obs.spans_completed",
	"obs.sse_subscribers",
	"obs.sse_dropped",
	"obs.dump_triggers",

	// Recording layer (internal/record): .rsrec artifact emission.
	"record.frames",
	"record.bytes",

	// Bounded-memory certification (internal/sched): RSG retirement
	// epochs and the vector-clock fast path.
	"sched.rsg.live_vertices",
	"sched.rsg.retired_total",
	"sched.rsg.retire_epochs",
	"sched.rsg.fastpath_hits",
	"sched.rsg.fastpath_misses",
}

// DynamicKeyPrefixes lists the prefixes of keys built with fmt.Sprintf
// at registration time: the concurrent driver's per-shard instruments
// and the ops endpoint's per-route request counters. The obs prefix is
// deliberately "obs.http." rather than "obs." so the static obs.* keys
// above stay under the registrydrift literal check.
var DynamicKeyPrefixes = []string{"txn.shard", "obs.http.", "wal.shard"}

// Keys returns the canonical metric key set (a copy).
func Keys() []string {
	return append([]string(nil), canonicalKeys...)
}

// IsKnownKey reports whether name is a canonical key or carries a
// registered dynamic prefix.
func IsKnownKey(name string) bool {
	for _, k := range canonicalKeys {
		if name == k {
			return true
		}
	}
	for _, p := range DynamicKeyPrefixes {
		if len(name) > len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}
