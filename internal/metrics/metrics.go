// Package metrics provides the small measurement and reporting toolkit
// the experiment harness uses: counters, duration statistics and
// fixed-width table rendering matching the tabular style of the
// EXPERIMENTS.md report.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	switch {
	case math.IsNaN(x) || math.IsInf(x, 0):
		return fmt.Sprint(x)
	case x == 0:
		// Covers negative zero too, which %.2f would render "-0.00".
		return "0.00"
	case math.Abs(x) < 0.01:
		return fmt.Sprintf("%.2e", x)
	default:
		return fmt.Sprintf("%.2f", x)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the rendered data rows, for machine-readable
// exports (rsbench JSON artifacts).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = append([]string(nil), row...)
	}
	return out
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.WriteTo(&sb) //nolint:errcheck // strings.Builder cannot fail
	return sb.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// Stats summarizes a sample of float64 observations.
type Stats struct {
	values []float64
}

// Add appends an observation.
func (s *Stats) Add(v float64) { s.values = append(s.values, v) }

// N returns the sample size.
func (s *Stats) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for empty samples).
func (s *Stats) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Stddev returns the sample standard deviation.
func (s *Stats) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Min returns the smallest observation (0 for empty samples).
func (s *Stats) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 for empty samples).
func (s *Stats) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by
// nearest-rank on a sorted copy.
func (s *Stats) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Timer measures wall-clock durations for experiment rows.
type Timer struct{ start time.Time }

// StartTimer begins timing.
func StartTimer() *Timer { return &Timer{start: time.Now()} }

// Elapsed returns the duration since start.
func (t *Timer) Elapsed() time.Duration { return time.Since(t.start) }
