package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "count", "ratio")
	tb.AddRow("alpha", 10, 0.5)
	tb.AddRow("b", 2000, 1.25)
	out := tb.String()
	if !strings.HasPrefix(out, "demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	for _, want := range []string{"name", "count", "ratio", "alpha", "2000", "0.50", "1.25", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("xxxxxx", 1)
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// Header and row should start the second column at the same offset.
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	hIdx := strings.Index(lines[0], "bbbb")
	rIdx := strings.Index(lines[2], "1")
	if hIdx != rIdx {
		t.Errorf("misaligned columns: header at %d, row at %d\n%s", hIdx, rIdx, tb.String())
	}
}

func TestTableDurationAndSmallFloats(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(1500 * time.Microsecond)
	tb.AddRow(0.00001)
	out := tb.String()
	if !strings.Contains(out, "1.5ms") {
		t.Errorf("duration not rendered: %s", out)
	}
	if !strings.Contains(out, "e-05") {
		t.Errorf("small float not in scientific notation: %s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("t", "x", "y")
	tb.AddRow(1, 2)
	md := tb.Markdown()
	if !strings.Contains(md, "| x | y |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown:\n%s", md)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty stats should be zero")
	}
	for _, v := range []float64{4, 1, 3, 2} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %f", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %f/%f", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 2 {
		t.Errorf("P50 = %f", got)
	}
	if got := s.Percentile(100); got != 4 {
		t.Errorf("P100 = %f", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %f", got)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Errorf("Stddev = %f, want %f", s.Stddev(), want)
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	if tm.Elapsed() < 0 {
		t.Error("negative elapsed")
	}
}
