package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone event count, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (e.g. active transactions), safe for
// concurrent use.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores the level.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add moves the level by delta.
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates a sample distribution, safe for concurrent
// use. Percentiles are exact (nearest-rank over the retained sample),
// matching the Stats type the experiments already report with.
type Histogram struct {
	mu sync.Mutex
	s  Stats
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.s.Add(v)
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Summary returns the distribution's summary statistics.
func (h *Histogram) Summary() HistSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSummary{
		Count: h.s.N(),
		Mean:  h.s.Mean(),
		P50:   h.s.Percentile(50),
		P95:   h.s.Percentile(95),
		P99:   h.s.Percentile(99),
		Max:   h.s.Max(),
	}
}

// HistSummary is a histogram's point-in-time summary.
type HistSummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Registry is a named collection of counters, gauges and histograms.
// Lookups are get-or-create, so instrumentation sites can fetch their
// instruments once and hold the pointers (the hot-path cost is then a
// single atomic add). The zero Registry is not usable; construct with
// NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSummary, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Summary()
	}
	return s
}

// Snapshot is a point-in-time view of a registry, suitable for JSON
// export and interval accounting via Diff.
type Snapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Diff returns the snapshot relative to an earlier base: counters are
// subtracted (counting only the interval's events); gauges and
// histogram summaries are levels/distributions, so the later value is
// kept as-is.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     s.Gauges,
		Histograms: s.Histograms,
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - base.Counters[name]
	}
	return out
}

// Table renders the snapshot as a fixed-width table with one row per
// instrument, sorted by name within each instrument class.
func (s Snapshot) Table(title string) *Table {
	t := NewTable(title, "metric", "type", "count", "value", "p50", "p95", "p99", "max")
	for _, name := range sortedNames(s.Counters) {
		t.AddRow(name, "counter", s.Counters[name], "", "", "", "", "")
	}
	for _, name := range sortedNames(s.Gauges) {
		t.AddRow(name, "gauge", "", s.Gauges[name], "", "", "", "")
	}
	for _, name := range sortedNames(s.Histograms) {
		h := s.Histograms[name]
		t.AddRow(name, "histogram", h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return t
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
