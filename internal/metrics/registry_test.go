package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFormatFloatNearZero(t *testing.T) {
	cases := map[float64]string{
		0:       "0.00",
		-0.0042: "-4.20e-03",
		0.0042:  "4.20e-03",
		-1.5:    "-1.50",
		2:       "2.00",
	}
	negZero := -1.0 * 0.0
	cases[negZero] = "0.00"
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRowsCopy(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow(1, 2)
	rows := tab.Rows()
	if len(rows) != 1 || rows[0][0] != "1" || rows[0][1] != "2" {
		t.Fatalf("Rows() = %v", rows)
	}
	rows[0][0] = "mutated"
	if tab.Rows()[0][0] != "1" {
		t.Error("Rows() aliases internal storage")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(2)
	if r.Counter("ops") != c {
		t.Error("Counter does not return the same instance")
	}
	if got := r.Counter("ops").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	g := r.Gauge("active")
	g.Set(4)
	g.Add(-1)
	if r.Gauge("active").Value() != 3 {
		t.Errorf("gauge = %v, want 3", r.Gauge("active").Value())
	}
	h := r.Histogram("latency")
	for _, v := range []float64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	h.ObserveDuration(2 * time.Second)
	sum := r.Histogram("latency").Summary()
	if sum.Count != 6 || sum.Max != 100 {
		t.Errorf("histogram summary = %+v", sum)
	}
	// Sample is {1, 2, 3, 4, 100, 2}; nearest-rank p50 of the sorted
	// sample {1, 2, 2, 3, 4, 100} is the 3rd value.
	if sum.P50 != 2 {
		t.Errorf("p50 = %v, want 2", sum.P50)
	}
	if sum.P99 != 100 {
		t.Errorf("p99 = %v, want 100", sum.P99)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Errorf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h").Summary().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// TestHistogramSummaryConcurrentObserve hammers one histogram from
// eight writers while a reader keeps taking summaries, then checks the
// final nearest-rank quantiles exactly. Under -race this pins the
// Observe/Summary locking discipline the obs plane's /metrics endpoint
// relies on (scrapes summarize histograms mid-run).
func TestHistogramSummaryConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	const writers, perWriter = 8, 1000
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		last := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Summary()
			if s.Count < last {
				t.Errorf("summary count went backwards: %d after %d", s.Count, last)
				return
			}
			last = s.Count
			if s.Count > 0 && (s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max) {
				t.Errorf("mid-flight quantiles out of order: %+v", s)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				h.Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	s := h.Summary()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	// Every value 0..999 appears exactly 8 times, so nearest-rank
	// quantiles are fully determined: rank ceil(q*8000) lands on value
	// floor((rank-1)/8).
	if s.P50 != 499 {
		t.Errorf("p50 = %v, want 499", s.P50)
	}
	if s.P95 != 949 {
		t.Errorf("p95 = %v, want 949", s.P95)
	}
	if s.P99 != 989 {
		t.Errorf("p99 = %v, want 989", s.P99)
	}
	if s.Max != 999 {
		t.Errorf("max = %v, want 999", s.Max)
	}
	if s.Mean != 499.5 {
		t.Errorf("mean = %v, want 499.5", s.Mean)
	}
}

// TestSnapshotDiffIntervalSemantics pins Diff's interval accounting:
// counters subtract (a counter born after the base counts from zero),
// gauges and histogram summaries keep the later level — they are
// levels and distributions, not interval events.
func TestSnapshotDiffIntervalSemantics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(5)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(1)
	base := r.Snapshot()
	r.Counter("a").Add(2)
	r.Counter("b").Inc()
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(2)
	d := r.Snapshot().Diff(base)
	if d.Counters["a"] != 2 {
		t.Errorf("diff a = %d, want 2", d.Counters["a"])
	}
	if d.Counters["b"] != 1 {
		t.Errorf("diff b = %d, want 1 (missing base key counts from zero)", d.Counters["b"])
	}
	if d.Gauges["g"] != 9 {
		t.Errorf("diff gauge = %v, want the later level 9", d.Gauges["g"])
	}
	if h := d.Histograms["h"]; h.Count != 2 || h.Max != 2 {
		t.Errorf("diff histogram = %+v, want the later summary", h)
	}
}

func TestSnapshotDiffAndTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("txn.committed").Add(10)
	r.Gauge("txn.active").Set(2)
	r.Histogram("txn.latency").Observe(5)
	base := r.Snapshot()
	r.Counter("txn.committed").Add(7)
	r.Counter("txn.aborts").Add(1)
	diff := r.Snapshot().Diff(base)
	if diff.Counters["txn.committed"] != 7 {
		t.Errorf("diff committed = %d, want 7", diff.Counters["txn.committed"])
	}
	if diff.Counters["txn.aborts"] != 1 {
		t.Errorf("diff aborts = %d, want 1", diff.Counters["txn.aborts"])
	}
	out := r.Snapshot().Table("run metrics").String()
	for _, want := range []string{"run metrics", "txn.committed", "counter", "txn.active", "gauge", "txn.latency", "histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Rows sort counters, then gauges, then histograms.
	if !strings.HasPrefix(lines[3], "txn.aborts") {
		t.Errorf("first data row = %q, want txn.aborts first", lines[3])
	}
}
