package txn_test

import (
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

func TestConcurrentValidation(t *testing.T) {
	if _, err := txn.NewConcurrent(txn.Config{}); err == nil {
		t.Error("missing protocol accepted")
	}
}

func TestConcurrentS2PLCommitsAll(t *testing.T) {
	var progs []*core.Transaction
	for i := 1; i <= 12; i++ {
		progs = append(progs, core.T(core.TxnID(i), core.R("x"), core.W("x"), core.R("y"), core.W("y")))
	}
	r, err := txn.NewConcurrent(txn.Config{Protocol: sched.NewS2PL(), Programs: progs, MPL: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 12 {
		t.Fatalf("Committed = %d", res.Committed)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("verification: %v", err)
	}
}

func TestConcurrentDeadlockRecovery(t *testing.T) {
	progs := []*core.Transaction{
		core.T(1, core.W("x"), core.W("y")),
		core.T(2, core.W("y"), core.W("x")),
		core.T(3, core.W("x"), core.W("y")),
		core.T(4, core.W("y"), core.W("x")),
	}
	r, err := txn.NewConcurrent(txn.Config{Protocol: sched.NewS2PL(), Programs: progs, MPL: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 4 {
		t.Fatalf("Committed = %d (result %s)", res.Committed, res)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("verification: %v", err)
	}
}

func TestConcurrentRSGTWithPaperSpec(t *testing.T) {
	inst := paperfig.Figure1()
	oracle := sched.SpecOracle{Spec: inst.Spec}
	for trial := 0; trial < 20; trial++ {
		r, err := txn.NewConcurrent(txn.Config{
			Protocol: sched.NewRSGT(oracle),
			Programs: inst.Set.Txns(),
			Oracle:   oracle,
			MPL:      3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Committed != 3 {
			t.Fatalf("trial %d: Committed = %d", trial, res.Committed)
		}
		if err := res.Verify(); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

func TestConcurrentWorkloadsAllProtocols(t *testing.T) {
	// Run each workload concurrently under each protocol; check
	// outcomes and invariants (the race detector covers the rest).
	makeWorkloads := func(seed int64) []*workload.Workload {
		b, err := workload.Banking(workload.DefaultBankingConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		l, err := workload.LongLived(workload.DefaultLongLivedConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		return []*workload.Workload{b, l}
	}
	for _, w := range makeWorkloads(3) {
		for _, proto := range []string{"s2pl", "sgt", "rsgt", "altruistic"} {
			t.Run(w.Name+"/"+proto, func(t *testing.T) {
				var p sched.Protocol
				switch proto {
				case "s2pl":
					p = sched.NewS2PL()
				case "sgt":
					p = sched.NewSGT()
				case "rsgt":
					p = sched.NewRSGT(w.Oracle)
				case "altruistic":
					p = sched.NewAltruistic(w.Oracle)
				}
				store := storage.NewStore()
				store.Load(w.Initial)
				r, err := txn.NewConcurrent(txn.Config{
					Protocol:  p,
					Programs:  w.Programs,
					Oracle:    w.Oracle,
					Store:     store,
					Semantics: w.Semantics,
					MPL:       6,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := r.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.Committed != len(w.Programs) {
					t.Fatalf("committed %d of %d", res.Committed, len(w.Programs))
				}
				if err := res.Verify(); err != nil {
					t.Errorf("verification: %v", err)
				}
				if w.Invariant != nil {
					if err := w.Invariant(store.Snapshot()); err != nil {
						t.Errorf("invariant: %v", err)
					}
				}
			})
		}
	}
}

func TestConcurrentSingleWorker(t *testing.T) {
	// MPL 1 degenerates to serial execution; still must work.
	progs := []*core.Transaction{
		core.T(1, core.W("a")),
		core.T(2, core.R("a")),
	}
	r, err := txn.NewConcurrent(txn.Config{Protocol: sched.NewS2PL(), Programs: progs, MPL: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 2 || res.Aborts != 0 {
		t.Errorf("result %s", res)
	}
	s, _, err := res.CommittedSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsSerial() {
		t.Errorf("single-worker schedule should be serial: %s", s)
	}
}

func TestConcurrentMaxRestartsSurfaces(t *testing.T) {
	// Force immediate, repeated aborts: a protocol that always aborts.
	r, err := txn.NewConcurrent(txn.Config{
		Protocol:    alwaysAbort{},
		Programs:    []*core.Transaction{core.T(1, core.R("x"))},
		MPL:         1,
		MaxRestarts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Error("restart overflow should surface as an error")
	}
}

type alwaysAbort struct{}

func (alwaysAbort) Name() string                           { return "always-abort" }
func (alwaysAbort) Begin(int64, *core.Transaction)         {}
func (alwaysAbort) Request(sched.OpRequest) sched.Decision { return sched.Abort }
func (alwaysAbort) CanCommit(int64) bool                   { return true }
func (alwaysAbort) Commit(int64)                           {}
func (alwaysAbort) Abort(int64)                            {}

func TestConcurrentBlockingContention(t *testing.T) {
	// Crossing lock orders under S2PL with many workers force real
	// blocking (cond waits) and deadlock victimization in the
	// concurrent driver.
	var progs []*core.Transaction
	for i := 1; i <= 8; i++ {
		if i%2 == 0 {
			progs = append(progs, core.T(core.TxnID(i), core.W("a"), core.W("b")))
		} else {
			progs = append(progs, core.T(core.TxnID(i), core.W("b"), core.W("a")))
		}
	}
	for trial := 0; trial < 5; trial++ {
		r, err := txn.NewConcurrent(txn.Config{Protocol: sched.NewS2PL(), Programs: progs, MPL: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Committed != len(progs) {
			t.Fatalf("trial %d: committed %d", trial, res.Committed)
		}
		if err := res.Verify(); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

func TestConcurrentDirtyDataDependencies(t *testing.T) {
	// NoCC admits everything, so concurrent workers read and overwrite
	// each other's dirty data: the cascade and commit-gating paths of
	// the concurrent driver must keep outcomes consistent.
	var progs []*core.Transaction
	for i := 1; i <= 10; i++ {
		progs = append(progs, core.T(core.TxnID(i), core.R("h"), core.W("h")))
	}
	for trial := 0; trial < 5; trial++ {
		r, err := txn.NewConcurrent(txn.Config{Protocol: sched.NewNoCC(), Programs: progs, MPL: 6})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Committed != len(progs) {
			t.Fatalf("trial %d: committed %d", trial, res.Committed)
		}
	}
}

func TestConcurrentCommitWaitPath(t *testing.T) {
	// A protocol that delays commits until a peer commits first forces
	// the done-but-waiting branch (CanCommit false) in the concurrent
	// driver; the stall breaker must clean up the final holdout.
	progs := []*core.Transaction{
		core.T(1, core.W("a")),
		core.T(2, core.W("b")),
	}
	r, err := txn.NewConcurrent(txn.Config{Protocol: &commitAfterPeer{}, Programs: progs, MPL: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 2 {
		t.Fatalf("committed %d", res.Committed)
	}
}

// commitAfterPeer grants everything but lets an instance commit only
// after at least one other instance has committed (the first committer
// gets through via the stall-break path).
type commitAfterPeer struct {
	commits int
}

func (p *commitAfterPeer) Name() string                           { return "commit-after-peer" }
func (p *commitAfterPeer) Begin(int64, *core.Transaction)         {}
func (p *commitAfterPeer) Request(sched.OpRequest) sched.Decision { return sched.Grant }
func (p *commitAfterPeer) CanCommit(int64) bool                   { return p.commits > 0 }
func (p *commitAfterPeer) Commit(int64)                           { p.commits++ }
func (p *commitAfterPeer) Abort(int64)                            { p.commits++ }
