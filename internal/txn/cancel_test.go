package txn_test

// Cancellation corpus: a run context canceled while transactions are
// mid-flight must unwind through the engine's Recover stage no matter
// which lifecycle stage the cancellation lands on — effects rolled
// back, WAL abort records appended — so the store stays
// invariant-clean and the log recovers to exactly the committed
// transactions. Config.Hooks places the cancellation at each stage in
// turn, on both drivers.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"relser/internal/engine"
	"relser/internal/fault"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

var cancelStages = []txn.Stage{
	txn.StageAdmit, txn.StageIssue, txn.StageDecide,
	txn.StageApply, txn.StageCommit, txn.StageAbort,
}

// runCanceledAtStage runs the banking workload and cancels the context
// the third time the given stage fires, then checks the unwind left
// store and WAL consistent.
func runCanceledAtStage(t *testing.T, stage txn.Stage, concurrent bool) {
	t.Helper()
	w, err := workload.Banking(workload.DefaultBankingConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore()
	store.Load(w.Initial)
	var logBuf bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Int32
	var unwound atomic.Bool
	cfg := txn.Config{
		Protocol:  sched.NewRSGT(w.Oracle),
		Programs:  w.Programs,
		Oracle:    w.Oracle,
		Store:     store,
		Semantics: w.Semantics,
		MPL:       8,
		Seed:      7,
		WAL:       storage.NewWAL(&logBuf),
		// A mild abort storm keeps every stage busy — without it, low-
		// contention concurrent runs can finish before StageAbort ever
		// fires three times.
		Faults: fault.New(7, fault.MustParseSpec("txn.abort:0.2")),
		Hooks: txn.OnStages(func(s txn.Stage, _ *engine.Instance) {
			if s == txn.StageRecover {
				unwound.Store(true)
				return
			}
			if s == stage && fired.Add(1) == 3 {
				cancel()
			}
		}),
	}
	var (
		res    *txn.Result
		runErr error
	)
	if concurrent {
		cfg.Shards = 4
		r, err := txn.NewConcurrent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, runErr = r.RunContext(ctx)
	} else {
		r, err := txn.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, runErr = r.RunContext(ctx)
	}
	if runErr == nil {
		if fired.Load() < 3 {
			// The stage never fired often enough to cancel (e.g. an
			// uncontended run with no aborts); nothing to assert.
			t.Skipf("stage %s fired %d times; run completed", stage, fired.Load())
		}
		t.Fatalf("run succeeded (%v) despite cancellation at stage %s", res, stage)
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("run error does not carry the cancellation cause: %v", runErr)
	}
	if !unwound.Load() {
		t.Error("Recover stage never fired on the canceled run")
	}
	// The unwind rolled uncommitted effects back: only committed
	// transfers remain, so balance conservation must hold on the live
	// store.
	if err := w.Invariant(store.Snapshot()); err != nil {
		t.Errorf("canceled run left the store dirty: %v", err)
	}
	// The WAL is recoverable: every in-flight instance got its abort
	// record, and replay reproduces the live store.
	recovered, report, err := storage.Recover(bytes.NewReader(logBuf.Bytes()), w.Initial)
	if err != nil {
		t.Fatalf("WAL unrecoverable after cancellation: %v", err)
	}
	if report.Unfinished != 0 || report.Orphans != 0 {
		t.Errorf("canceled run left a ragged log: %s", report)
	}
	live := store.Snapshot()
	for obj, v := range recovered.Snapshot() {
		if live[obj] != v {
			t.Errorf("recovered %s=%d, live %d", obj, v, live[obj])
		}
	}
	if err := w.Invariant(recovered.Snapshot()); err != nil {
		t.Errorf("recovered store breaks invariant: %v", err)
	}
}

func TestCancelAtEachStage(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		driver := "serial"
		if concurrent {
			driver = "concurrent"
		}
		for _, stage := range cancelStages {
			t.Run(fmt.Sprintf("%s/%s", driver, stage), func(t *testing.T) {
				runCanceledAtStage(t, stage, concurrent)
			})
		}
	}
}

// TestRunOptionsTimeout exercises the workload-level wall-clock bound:
// an immediately-expiring timeout must fail the run with the deadline
// as cause on both drivers.
func TestRunOptionsTimeout(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		w, err := workload.Banking(workload.DefaultBankingConfig(), 3)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = w.RunWith(sched.NewRSGT(w.Oracle), workload.RunOptions{
			Seed: 3, MPL: 8, Concurrent: concurrent, Shards: 2,
			Timeout: time.Nanosecond,
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("concurrent=%v: want deadline cause, got %v", concurrent, err)
		}
	}
}

// TestCancelBeforeRun pins the edge case: a context already canceled
// at entry fails immediately with nothing admitted and an empty log.
func TestCancelBeforeRun(t *testing.T) {
	w, err := workload.Banking(workload.DefaultBankingConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, concurrent := range []bool{false, true} {
		var logBuf bytes.Buffer
		_, _, err := w.RunWithContext(ctx, sched.NewRSGT(w.Oracle), workload.RunOptions{
			Seed: 5, MPL: 8, Concurrent: concurrent,
			WAL: storage.NewWAL(&logBuf),
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("concurrent=%v: want canceled, got %v", concurrent, err)
		}
	}
}
