// Package txn is the transaction runtime: it executes declared
// transaction programs against the storage substrate under a pluggable
// concurrency-control protocol (internal/sched), handling blocking,
// deadlock victimization, aborts with cascading rollback, restarts and
// commit ordering — and it emits the observed committed schedule so
// the offline theory (internal/core) can certify every run.
//
// The runtime is a deterministic discrete-event loop: given the same
// seed, programs and protocol, a run reproduces exactly. Each tick it
// offers one operation of every ready instance to the protocol in a
// seeded random order, modelling concurrent clients with an open set
// of in-flight transactions bounded by the multiprogramming level.
package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"relser/internal/core"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/shard"
	"relser/internal/storage"
	"relser/internal/trace"
)

// Semantics computes the value a write operation stores, given the
// values the transaction has read so far (keyed by operation sequence).
// Workloads use it to give programs real data semantics (transfers,
// audits); the default writes a value derived from the transaction and
// operation identity.
type Semantics interface {
	WriteValue(prog *core.Transaction, seq int, reads map[int]storage.Value) storage.Value
}

// DefaultSemantics writes txnID*1000 + seq; good enough when only the
// interleaving matters.
type DefaultSemantics struct{}

// WriteValue implements Semantics.
func (DefaultSemantics) WriteValue(prog *core.Transaction, seq int, _ map[int]storage.Value) storage.Value {
	return storage.Value(int64(prog.ID)*1000 + int64(seq))
}

// Config describes one run.
type Config struct {
	Protocol sched.Protocol
	// Programs are executed to commit exactly once each; IDs must be
	// distinct.
	Programs []*core.Transaction
	// Oracle supplies relative atomicity specifications, both to
	// verification and (for protocols that take one) to scheduling. It
	// defaults to absolute atomicity.
	Oracle sched.AtomicityOracle
	// Store defaults to a fresh empty store.
	Store *storage.Store
	// Semantics defaults to DefaultSemantics.
	Semantics Semantics
	// MPL bounds concurrently active instances (default 8).
	MPL int
	// Shards is the key-space partition width for the concurrent
	// driver: per-shard wait queues and dirty tracking, with shard-safe
	// protocols admitted concurrently under per-shard locks. Normalized
	// to a power of two (default 1 — the classical single-lock driver).
	// The deterministic Runner is single-threaded and ignores it.
	Shards int
	// Seed drives the deterministic scheduler interleaving.
	Seed int64
	// MaxRestarts bounds restarts per program before the run fails
	// (default 1000).
	MaxRestarts int
	// History, when set, records committed write effects.
	History *storage.History
	// WAL, when set, receives begin/write/commit/abort records; a store
	// recovered from it (storage.Recover) reproduces exactly the
	// committed effects. WAL append errors fail the run.
	WAL *storage.WAL
	// Tracer, when set, receives structured events for every scheduling
	// decision and instance lifecycle transition; it is also attached to
	// the protocol, store and WAL so their internal decisions land in
	// the same stream.
	Tracer *trace.Tracer
	// Metrics, when set, receives run counters, the active-instance
	// gauge and latency histograms under the "txn." prefix.
	Metrics *metrics.Registry
	// Faults arms deterministic fault injection: the injector is
	// attached to the store and WAL and consulted at the driver's own
	// fault points (sched.grant.delay, txn.abort; the concurrent driver
	// additionally honors shard.stall and shard.wedge). Nil disables
	// injection entirely.
	Faults *fault.Injector
	// Deadline bounds each instance's age in logical time units (ticks
	// for Runner, executed operations for ConcurrentRunner) measured
	// from admission; an instance exceeding it on the operation path is
	// aborted with reason "deadline" and restarted. 0 disables.
	Deadline int64
	// Watchdog bounds progress-free wall time in the concurrent driver:
	// if no operation executes, commits, aborts or restarts for this
	// long, the run fails with *WedgeError instead of hanging. 0 selects
	// the 10s default; negative disables. The deterministic Runner is
	// single-threaded and ignores it.
	Watchdog time.Duration
	// BackoffSeed seeds the dedicated restart-backoff RNG stream. The
	// backoff draws are decoupled from the admission-shuffle stream so
	// that runs differing only in backoff pressure (e.g. under fault
	// injection) still replay the same admission order. 0 derives a
	// stream from Seed.
	BackoffSeed int64
}

// Event is one executed operation in the global execution order.
type Event struct {
	Instance int64
	Program  *core.Transaction
	Op       core.Op
	// Order is the global execution sequence number; the committed
	// trace is sorted by it.
	Order int64
}

// Result aggregates a run.
type Result struct {
	Protocol    string
	Ticks       int
	OpsExecuted int
	Committed   int
	Aborts      int
	Blocks      int
	CommitWaits int
	Restarts    int
	// RecoverabilityAborts counts aborts issued by the driver (not the
	// protocol) because an access would have closed a dirty-data
	// dependency cycle, making commit ordering impossible.
	RecoverabilityAborts int
	// DeadlineAborts counts driver aborts for instances that exceeded
	// Config.Deadline.
	DeadlineAborts int
	// InjectedAborts counts txn.abort fault firings honored by the
	// driver; InjectedDelays counts sched.grant.delay firings.
	InjectedAborts int
	InjectedDelays int
	// LivelockEscalations counts restart-backoff escalations by the
	// livelock detector.
	LivelockEscalations int
	// LoadSheds counts admission-limit halvings by the abort-storm
	// shedder; MinEffectiveMPL is the lowest effective multiprogramming
	// level the run degraded to (== Config.MPL when never shed).
	LoadSheds       int
	MinEffectiveMPL int
	// AvgConcurrency is the mean number of in-flight instances per
	// tick.
	AvgConcurrency float64
	// LatencyMean and LatencyP95 summarize committed-instance latency
	// in logical time units (driver ticks for the deterministic
	// runner, executed operations for the concurrent runner), measured
	// from admission to commit.
	LatencyMean float64
	LatencyP95  float64
	// Trace is the committed-instance execution trace, in order.
	Trace []Event
	// Spans records committed instances' lifetimes for Timeline.
	Spans []Span
	// Programs are the committed programs (same pointers as Config).
	Programs []*core.Transaction
	oracle   sched.AtomicityOracle
}

type instanceState struct {
	id      int64
	program *core.Transaction
	next    int
	undo    storage.UndoLog
	reads   map[int]storage.Value
	// depsOn holds live instances whose uncommitted data this instance
	// read or overwrote; commit waits for them and their abort cascades
	// here.
	depsOn   map[int64]bool
	restarts int
	events   []Event
	writes   map[string]storage.Value
	done     bool // all operations executed, waiting to commit
	// startClock is the logical time at admission, for latency.
	startClock int64
	// blockedSince is the logical time the instance entered its current
	// block interval, or -1 when not blocked; the observer's
	// block-latency histogram closes intervals at the next grant.
	blockedSince int64
	// doomed is set when a cascade initiated by another worker aborted
	// this instance; its worker observes the flag on next wake and
	// restarts the program (concurrent driver only).
	doomed atomic.Bool
}

// Runner executes a configuration.
type Runner struct {
	cfg   Config
	rng   *rand.Rand
	store *storage.Store
	// backoffRng is the dedicated restart-backoff stream (see
	// Config.BackoffSeed); rng stays reserved for scheduling decisions
	// (tick shuffles, victim picks).
	backoffRng *rand.Rand
	shed       *shedder
	lv         livelock

	nextInstance int64
	pending      []*pendingProgram
	active       map[int64]*instanceState
	// dirtyStack tracks, per object, the live instances that wrote it,
	// oldest first; the top entry owns the object's current
	// uncommitted value. Entries are removed on commit and abort, so an
	// abort re-exposes the previous uncommitted writer (if any).
	dirtyStack map[string][]int64
	// dependents inverts depsOn for cascade lookup.
	dependents map[int64]map[int64]bool
	execSeq    int64
	walErr     error
	latencies  metrics.Stats
	obs        observer

	res Result
}

type pendingProgram struct {
	program  *core.Transaction
	restarts int
	// readyAt delays re-admission after an abort (restart backoff),
	// in ticks.
	readyAt int
}

// New validates the configuration and prepares a runner.
func New(cfg Config) (*Runner, error) {
	if cfg.Protocol == nil {
		return nil, errors.New("txn: Config.Protocol is required")
	}
	if len(cfg.Programs) == 0 {
		return nil, errors.New("txn: no programs to run")
	}
	seen := make(map[core.TxnID]bool)
	for _, p := range cfg.Programs {
		if p == nil || p.Len() == 0 {
			return nil, errors.New("txn: nil or empty program")
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("txn: duplicate program ID %d", p.ID)
		}
		seen[p.ID] = true
	}
	if cfg.Oracle == nil {
		cfg.Oracle = sched.AbsoluteOracle{}
	}
	if cfg.Store == nil {
		cfg.Store = storage.NewStore()
	}
	if cfg.Semantics == nil {
		cfg.Semantics = DefaultSemantics{}
	}
	if cfg.MPL <= 0 {
		cfg.MPL = 8
	}
	cfg.Shards = shard.Normalize(cfg.Shards)
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 1000
	}
	if cfg.Tracer != nil {
		sched.Attach(cfg.Protocol, cfg.Tracer)
		cfg.Store.SetTracer(cfg.Tracer)
		if cfg.WAL != nil {
			cfg.WAL.SetTracer(cfg.Tracer)
		}
	}
	if cfg.Faults != nil {
		cfg.Store.SetInjector(cfg.Faults)
		if cfg.WAL != nil {
			cfg.WAL.SetInjector(cfg.Faults)
		}
	}
	r := &Runner{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		backoffRng: rand.New(rand.NewSource(backoffSeed(&cfg))),
		shed:       newShedder(cfg.MPL),
		store:      cfg.Store,
		active:     make(map[int64]*instanceState),
		dirtyStack: make(map[string][]int64),
		dependents: make(map[int64]map[int64]bool),
	}
	r.obs = newObserver(&cfg)
	for _, p := range cfg.Programs {
		r.pending = append(r.pending, &pendingProgram{program: p})
	}
	r.res.Protocol = cfg.Protocol.Name()
	r.res.oracle = cfg.Oracle
	return r, nil
}

// Run executes all programs to commit and returns the result.
func (r *Runner) Run() (*Result, error) {
	concurrencySum := 0
	for {
		r.admit()
		if len(r.active) == 0 && len(r.pending) == 0 {
			break
		}
		r.res.Ticks++
		if len(r.active) == 0 {
			continue // all pending programs are backing off; idle tick
		}
		concurrencySum += len(r.active)
		progress, err := r.tick()
		if err != nil {
			return nil, err
		}
		if r.walErr != nil {
			return nil, fmt.Errorf("txn: WAL append failed: %w", r.walErr)
		}
		if !progress {
			// No instance made progress: victimize one active instance
			// to break the stall (protocol-level blocking deadlock or a
			// commit-order cycle). The victim is chosen at random so no
			// single program starves across repeated stalls.
			victim := r.randomVictim()
			if victim == nil {
				return nil, errors.New("txn: stalled with no active instances")
			}
			if err := r.abortCascade(victim.id, "stall"); err != nil {
				return nil, err
			}
		}
	}
	if r.res.Ticks > 0 {
		r.res.AvgConcurrency = float64(concurrencySum) / float64(r.res.Ticks)
	}
	r.res.LatencyMean = r.latencies.Mean()
	r.res.LatencyP95 = r.latencies.Percentile(95)
	r.res.LoadSheds = r.shed.sheds
	r.res.MinEffectiveMPL = r.shed.minEff
	r.res.LivelockEscalations = r.lv.escalations
	// Commits append whole per-instance event blocks; restore global
	// execution order.
	sort.Slice(r.res.Trace, func(i, j int) bool { return r.res.Trace[i].Order < r.res.Trace[j].Order })
	return &r.res, nil
}

// admit starts ready pending programs while multiprogramming slots are
// free; programs aborted recently stay queued until their backoff
// expires.
func (r *Runner) admit() {
	limit := r.shed.limit() // admission-controlled MPL (<= cfg.MPL)
	rest := r.pending[:0]
	for i, pp := range r.pending {
		if len(r.active) >= limit || pp.readyAt > r.res.Ticks {
			rest = append(rest, r.pending[i])
			continue
		}
		r.nextInstance++
		st := &instanceState{
			id:           r.nextInstance,
			program:      pp.program,
			reads:        make(map[int]storage.Value),
			depsOn:       make(map[int64]bool),
			writes:       make(map[string]storage.Value),
			restarts:     pp.restarts,
			startClock:   int64(r.res.Ticks),
			blockedSince: -1,
		}
		r.active[st.id] = st
		r.cfg.Protocol.Begin(st.id, st.program)
		r.logWAL(storage.WALRecord{Kind: storage.WALBegin, Instance: st.id})
		r.obs.begin(st, int64(r.res.Ticks))
	}
	r.pending = rest
}

// logWAL appends a record, deferring errors to the main loop (the
// simulator's WAL sinks are in-memory or local files; an append error
// is fatal).
func (r *Runner) logWAL(rec storage.WALRecord) {
	if r.cfg.WAL == nil {
		return
	}
	if err := r.cfg.WAL.Append(rec); err != nil && r.walErr == nil {
		r.walErr = err
	}
}

// tick offers one step to every active instance in seeded random
// order; it reports whether anything progressed.
func (r *Runner) tick() (bool, error) {
	ids := make([]int64, 0, len(r.active))
	for id := range r.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	r.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	progress := false
	delayed := 0
	for _, id := range ids {
		st, ok := r.active[id]
		if !ok {
			continue // aborted by an earlier cascade this tick
		}
		if st.done {
			continue // commits happen in the post-loop commit wave
		}
		if dl := r.cfg.Deadline; dl > 0 && int64(r.res.Ticks)-st.startClock > dl {
			r.res.DeadlineAborts++
			r.obs.deadlineAbort()
			if err := r.abortCascade(st.id, "deadline"); err != nil {
				return false, err
			}
			progress = true
			continue
		}
		if r.cfg.Faults.Fire(fault.TxnForcedAbort) {
			r.res.InjectedAborts++
			r.obs.fault(fault.TxnForcedAbort, st.id, int64(r.res.Ticks))
			if err := r.abortCascade(st.id, "injected"); err != nil {
				return false, err
			}
			progress = true
			continue
		}
		if r.cfg.Faults.Fire(fault.SchedGrantDelay) {
			// The scheduler "loses" this instance's turn for a tick.
			r.res.InjectedDelays++
			r.obs.fault(fault.SchedGrantDelay, st.id, int64(r.res.Ticks))
			delayed++
			continue
		}
		op := st.program.Op(st.next)
		req := sched.OpRequest{Instance: st.id, Program: st.program, Seq: st.next, Op: op}
		switch r.cfg.Protocol.Request(req) {
		case sched.Grant:
			if !r.execute(st, op) {
				// Recoverability: the access would close a dirty-data
				// dependency cycle; commit ordering could never
				// resolve it, so abort now.
				r.res.RecoverabilityAborts++
				r.obs.recoverabilityAbort()
				if err := r.abortCascade(st.id, "recoverability"); err != nil {
					return false, err
				}
			} else {
				r.obs.grant(st, op, r.execSeq, int64(r.res.Ticks))
			}
			progress = true
		case sched.Block:
			r.res.Blocks++
			r.obs.block(st, op, int64(r.res.Ticks))
		case sched.Abort:
			r.obs.abortDecision(st, op, int64(r.res.Ticks))
			if err := r.abortCascade(st.id, "protocol"); err != nil {
				return false, err
			}
			progress = true
		}
	}
	// Commit wave: committing one instance can release another's
	// dirty-data dependency, so iterate to a fixpoint within the tick.
	for {
		committed := false
		ids = ids[:0]
		for id := range r.active {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			st, ok := r.active[id]
			if !ok || !st.done {
				continue
			}
			if r.tryCommit(st) {
				committed = true
				progress = true
			}
		}
		if !committed {
			break
		}
	}
	if !progress && delayed > 0 {
		// Only injected grant delays held the tick back; that is not a
		// protocol stall, so do not victimize anyone over it.
		progress = true
	}
	return progress, nil
}

// execute applies the granted operation to the store and updates dirty
// tracking. It reports false — without applying the operation — when
// touching the object's dirty data would create a commit-dependency
// cycle (the access is unrecoverable: neither party could ever commit
// first).
func (r *Runner) execute(st *instanceState, op core.Op) bool {
	if w, dirty := r.dirtyWriter(op.Object); dirty && w != st.id && r.depPathExists(w, st.id) {
		return false
	}
	r.res.OpsExecuted++
	if op.Kind == core.ReadOp {
		v := r.store.Read(op.Object)
		st.reads[op.Seq] = v.Value
		if w, dirty := r.dirtyWriter(op.Object); dirty && w != st.id {
			r.addDep(st, w)
		}
	} else {
		v := r.cfg.Semantics.WriteValue(st.program, op.Seq, st.reads)
		if w, dirty := r.dirtyWriter(op.Object); dirty && w != st.id {
			r.addDep(st, w) // overwrote dirty data
		}
		st.undo.WriteLogged(r.store, op.Object, v)
		st.writes[op.Object] = v
		r.dirtyStack[op.Object] = append(r.dirtyStack[op.Object], st.id)
		r.logWAL(storage.WALRecord{Kind: storage.WALWrite, Instance: st.id, Object: op.Object, Value: v})
	}
	r.execSeq++
	st.events = append(st.events, Event{Instance: st.id, Program: st.program, Op: op, Order: r.execSeq})
	st.next++
	if st.next == st.program.Len() {
		st.done = true
	}
	return true
}

// depPathExists reports whether from transitively depends on to in the
// live dirty-dependency graph.
func (r *Runner) depPathExists(from, to int64) bool {
	seen := map[int64]bool{}
	stack := []int64{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == to {
			return true
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		if inst, ok := r.active[v]; ok {
			for d := range inst.depsOn {
				stack = append(stack, d)
			}
		}
	}
	return false
}

func (r *Runner) addDep(st *instanceState, on int64) {
	if st.depsOn[on] {
		return
	}
	st.depsOn[on] = true
	deps := r.dependents[on]
	if deps == nil {
		deps = make(map[int64]bool)
		r.dependents[on] = deps
	}
	deps[st.id] = true
}

// tryCommit commits a finished instance if the protocol allows and all
// dirty-data dependencies have committed.
func (r *Runner) tryCommit(st *instanceState) bool {
	if len(st.depsOn) > 0 || !r.cfg.Protocol.CanCommit(st.id) {
		r.res.CommitWaits++
		r.obs.commitWait()
		return false
	}
	r.cfg.Protocol.Commit(st.id)
	r.logWAL(storage.WALRecord{Kind: storage.WALCommit, Instance: st.id})
	st.undo.Discard()
	for obj := range st.writes {
		r.removeDirty(obj, st.id)
	}
	for dep := range r.dependents[st.id] {
		if d, ok := r.active[dep]; ok {
			delete(d.depsOn, st.id)
		}
	}
	delete(r.dependents, st.id)
	delete(r.active, st.id)
	r.res.Committed++
	r.obs.commit(st, int64(r.res.Ticks))
	r.lv.noteCommit()
	prevLim := r.shed.limit()
	if lim, changed := r.shed.observe(true); changed {
		r.obs.shed(lim, r.cfg.MPL, lim < prevLim, int64(r.res.Ticks))
	}
	r.latencies.Add(float64(int64(r.res.Ticks) - st.startClock))
	r.res.Spans = append(r.res.Spans, Span{Instance: st.id, Program: int(st.program.ID), Start: st.startClock, End: int64(r.res.Ticks), CommitSeq: r.execSeq})
	r.res.Trace = append(r.res.Trace, st.events...)
	r.res.Programs = append(r.res.Programs, st.program)
	if r.cfg.History != nil {
		r.cfg.History.Append(storage.Commit{Instance: st.id, Writes: st.writes})
	}
	return true
}

// abortCascade aborts the instance and, transitively, every live
// instance that read or overwrote its uncommitted data, rolling back
// all their writes in global reverse order, then requeues the programs
// for restart.
func (r *Runner) abortCascade(id int64, reason string) error {
	victims := map[int64]bool{}
	var collect func(v int64)
	collect = func(v int64) {
		if victims[v] {
			return
		}
		if _, ok := r.active[v]; !ok {
			return
		}
		victims[v] = true
		for dep := range r.dependents[v] {
			collect(dep)
		}
	}
	collect(id)
	if len(victims) == 0 {
		return nil
	}
	ordered := make([]int64, 0, len(victims))
	for v := range victims {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	logs := make([]*storage.UndoLog, 0, len(ordered))
	for _, v := range ordered {
		st := r.active[v]
		logs = append(logs, &st.undo)
	}
	storage.RollbackSet(r.store, logs)
	for _, v := range ordered {
		st := r.active[v]
		r.cfg.Protocol.Abort(v)
		r.logWAL(storage.WALRecord{Kind: storage.WALAbort, Instance: v})
		r.obs.txnAbort(st, reason, int64(r.res.Ticks))
		for obj := range st.writes {
			r.removeDirty(obj, v)
		}
		for dep := range r.dependents[v] {
			if d, ok := r.active[dep]; ok {
				delete(d.depsOn, v)
			}
		}
		delete(r.dependents, v)
		for on := range st.depsOn {
			if deps := r.dependents[on]; deps != nil {
				delete(deps, v)
			}
		}
		delete(r.active, v)
		r.res.Aborts++
		st.restarts++
		if st.restarts > r.cfg.MaxRestarts {
			return fmt.Errorf("txn: program T%d exceeded %d restarts (reason %s)", st.program.ID, r.cfg.MaxRestarts, reason)
		}
		r.res.Restarts++
		r.obs.restart()
		prevLim := r.shed.limit()
		if lim, changed := r.shed.observe(false); changed {
			r.obs.shed(lim, r.cfg.MPL, lim < prevLim, int64(r.res.Ticks))
		}
		level, escalated := r.lv.noteRestart()
		if escalated {
			r.obs.livelockEscalation(level, int64(r.res.Ticks))
		}
		backoff := st.restarts
		if backoff > 6 {
			backoff = 6
		}
		// Livelock escalation widens the backoff window beyond the
		// per-instance exponential cap.
		backoff += level
		if backoff > 10 {
			backoff = 10
		}
		// Randomized exponential backoff staggers restarted programs so
		// identical contenders do not re-collide in lockstep forever.
		// Draws come from the dedicated backoff stream, keeping the
		// scheduling stream (r.rng) byte-identical across runs that
		// differ only in backoff pressure.
		r.pending = append(r.pending, &pendingProgram{
			program:  st.program,
			restarts: st.restarts,
			readyAt:  r.res.Ticks + 1 + r.backoffRng.Intn(1<<backoff),
		})
	}
	return nil
}

// dirtyWriter returns the live instance owning the object's current
// uncommitted value, if any.
func (r *Runner) dirtyWriter(object string) (int64, bool) {
	stack := r.dirtyStack[object]
	if len(stack) == 0 {
		return 0, false
	}
	return stack[len(stack)-1], true
}

// removeDirty drops every stack entry of the instance for the object.
func (r *Runner) removeDirty(object string, id int64) {
	stack := r.dirtyStack[object]
	out := stack[:0]
	for _, w := range stack {
		if w != id {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		delete(r.dirtyStack, object)
	} else {
		r.dirtyStack[object] = out
	}
}

// randomVictim picks a seeded-random active instance for stall
// breaking.
func (r *Runner) randomVictim() *instanceState {
	if len(r.active) == 0 {
		return nil
	}
	ids := make([]int64, 0, len(r.active))
	for id := range r.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return r.active[ids[r.rng.Intn(len(ids))]]
}
