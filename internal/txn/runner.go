package txn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"relser/internal/engine"
	"relser/internal/fault"
	"relser/internal/sched"
)

// Runner executes a configuration as a deterministic discrete-event
// loop over the engine pipeline: each tick it offers one operation of
// every ready instance to the protocol in a seeded random order,
// modelling concurrent clients with an open set of in-flight
// transactions bounded by the multiprogramming level. Given the same
// seed, programs and protocol, a run reproduces exactly.
type Runner struct {
	eng *engine.Core
	rng *rand.Rand
	// backoffRng is the dedicated restart-backoff stream (see
	// Config.BackoffSeed); rng stays reserved for scheduling decisions
	// (tick shuffles, victim picks).
	backoffRng *rand.Rand
	pending    []*engine.Pending
	ticks      int
}

// New validates the configuration and prepares a runner.
func New(cfg Config) (*Runner, error) {
	eng, err := engine.NewCore(cfg)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		eng:        eng,
		rng:        rand.New(rand.NewSource(eng.Cfg.Seed)),
		backoffRng: rand.New(rand.NewSource(eng.Cfg.RestartBackoffSeed())),
	}
	for _, p := range eng.Cfg.Programs {
		r.pending = append(r.pending, &engine.Pending{Program: p})
	}
	return r, nil
}

// Run executes all programs to commit and returns the result.
func (r *Runner) Run() (*Result, error) {
	//rsvet:allow ctxflow -- ctx-less convenience wrapper: RunContext is the context-aware form
	return r.RunContext(context.Background())
}

// RunContext is Run under a context: cancellation (or deadline expiry)
// is checked at every tick boundary and unwinds all in-flight
// instances through the engine's Recover stage — effects rolled back,
// WAL abort records appended — before the run fails with the
// cancellation cause.
func (r *Runner) RunContext(ctx context.Context) (*Result, error) {
	concurrencySum := 0
	for {
		if ctx.Err() != nil {
			cause := context.Cause(ctx)
			r.eng.AbortAll(cause.Error(), int64(r.ticks))
			if err := r.eng.FlushWAL(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("txn: run canceled: %w", cause)
		}
		r.admit()
		if len(r.eng.Active) == 0 && len(r.pending) == 0 {
			break
		}
		r.ticks++
		if len(r.eng.Active) == 0 {
			continue // all pending programs are backing off; idle tick
		}
		concurrencySum += len(r.eng.Active)
		progress, err := r.tick(ctx)
		if err != nil {
			return nil, err
		}
		if err := r.eng.WALErr(); err != nil {
			return nil, err
		}
		if !progress {
			// No instance made progress: victimize one active instance
			// to break the stall (protocol-level blocking deadlock or a
			// commit-order cycle). The victim is chosen at random so no
			// single program starves across repeated stalls.
			victim := r.randomVictim()
			if victim == nil {
				return nil, errors.New("txn: stalled with no active instances")
			}
			if err := r.abortCascade(victim, "stall"); err != nil {
				return nil, err
			}
		}
	}
	// Final durability barrier: async appends (begin/write/abort) must
	// be flushed — and any latched lane error surfaced — before the
	// result is declared final.
	if err := r.eng.FlushWAL(); err != nil {
		return nil, err
	}
	avg := 0.0
	if r.ticks > 0 {
		avg = float64(concurrencySum) / float64(r.ticks)
	}
	return r.eng.Finalize(r.ticks, avg), nil
}

// admit starts ready pending programs while multiprogramming slots are
// free; programs aborted recently stay queued until their backoff
// expires.
func (r *Runner) admit() {
	limit := r.eng.AdmitLimit() // admission-controlled MPL (<= cfg.MPL)
	rest := r.pending[:0]
	for i, pp := range r.pending {
		if len(r.eng.Active) >= limit || pp.ReadyAt > r.ticks {
			rest = append(rest, r.pending[i])
			continue
		}
		r.eng.Admit(pp, int64(r.ticks))
	}
	r.pending = rest
}

// tick offers one step to every active instance in seeded random
// order; it reports whether anything progressed.
func (r *Runner) tick(ctx context.Context) (bool, error) {
	ids := r.eng.ActiveIDs()
	r.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	clock := int64(r.ticks)
	progress := false
	delayed := 0
	for _, id := range ids {
		st, ok := r.eng.Active[id]
		if !ok {
			continue // aborted by an earlier cascade this tick
		}
		if st.Done {
			continue // commits happen in the post-loop commit wave
		}
		if dl := r.eng.Cfg.Deadline; dl > 0 && clock-st.StartClock > dl {
			r.eng.CountDeadlineAbort()
			if err := r.abortCascade(st, "deadline"); err != nil {
				return false, err
			}
			progress = true
			continue
		}
		if r.eng.Cfg.Faults.Fire(fault.TxnForcedAbort) {
			r.eng.CountFault(fault.TxnForcedAbort, st.ID, clock)
			if err := r.abortCascade(st, "injected"); err != nil {
				return false, err
			}
			progress = true
			continue
		}
		if r.eng.Cfg.Faults.Fire(fault.SchedGrantDelay) {
			// The scheduler "loses" this instance's turn for a tick.
			r.eng.CountFault(fault.SchedGrantDelay, st.ID, clock)
			delayed++
			continue
		}
		op := st.Program.Op(st.Next)
		req := sched.OpRequest{Instance: st.ID, Program: st.Program, Seq: st.Next, Op: op, Ctx: ctx}
		switch r.eng.Decide(st, req) {
		case sched.Grant:
			shardIdx := r.eng.Router.Shard(op.Object)
			if r.eng.Unrecoverable(st, op, shardIdx) {
				// The access would close a dirty-data dependency cycle;
				// commit ordering could never resolve it, so abort now.
				r.eng.CountRecoverabilityAbort()
				if err := r.abortCascade(st, "recoverability"); err != nil {
					return false, err
				}
			} else {
				order := r.eng.Apply(ctx, st, op, shardIdx)
				r.eng.ObserveGrant(st, op, order, clock)
			}
			progress = true
		case sched.Block:
			r.eng.ObserveBlock(st, op, clock, -1)
		case sched.Abort:
			r.eng.ObserveAbortDecision(st, op, clock)
			if err := r.abortCascade(st, "protocol"); err != nil {
				return false, err
			}
			progress = true
		}
	}
	// Commit wave: committing one instance can release another's
	// dirty-data dependency, so iterate to a fixpoint within the tick.
	for {
		committed := false
		for _, id := range r.eng.ActiveIDs() {
			st, ok := r.eng.Active[id]
			if !ok || !st.Done {
				continue
			}
			if r.eng.TryCommit(st, clock) {
				committed = true
				progress = true
			}
		}
		if !committed {
			break
		}
	}
	if !progress && delayed > 0 {
		// Only injected grant delays held the tick back; that is not a
		// protocol stall, so do not victimize anyone over it.
		progress = true
	}
	return progress, nil
}

// abortCascade aborts the instance through the engine and requeues
// each victim's program with randomized exponential backoff, so
// identical contenders do not re-collide in lockstep forever.
func (r *Runner) abortCascade(st *engine.Instance, reason string) error {
	return r.eng.AbortCascade(st.ID, reason, int64(r.ticks), func(v *engine.Instance) error {
		v.Restarts++
		if v.Restarts > r.eng.Cfg.MaxRestarts {
			return fmt.Errorf("txn: program T%d exceeded %d restarts (reason %s)", v.Program.ID, r.eng.Cfg.MaxRestarts, reason)
		}
		r.eng.CountRestart()
		backoff := v.Restarts
		if backoff > 6 {
			backoff = 6
		}
		// Livelock escalation widens the backoff window beyond the
		// per-instance exponential cap.
		backoff += r.eng.LivelockLevel()
		if backoff > 10 {
			backoff = 10
		}
		// Draws come from the dedicated backoff stream, keeping the
		// scheduling stream (r.rng) byte-identical across runs that
		// differ only in backoff pressure.
		r.pending = append(r.pending, &engine.Pending{
			Program:  v.Program,
			Restarts: v.Restarts,
			ReadyAt:  r.ticks + 1 + r.backoffRng.Intn(1<<backoff),
		})
		return nil
	})
}

// randomVictim picks a seeded-random active instance for stall
// breaking.
func (r *Runner) randomVictim() *engine.Instance {
	ids := r.eng.ActiveIDs()
	if len(ids) == 0 {
		return nil
	}
	return r.eng.Active[ids[r.rng.Intn(len(ids))]]
}
