package txn_test

import (
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
)

func twoWriters() []*core.Transaction {
	return []*core.Transaction{
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.R("x"), core.W("x")),
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := txn.New(txn.Config{}); err == nil {
		t.Error("missing protocol accepted")
	}
	if _, err := txn.New(txn.Config{Protocol: sched.NewNoCC()}); err == nil {
		t.Error("missing programs accepted")
	}
	dup := []*core.Transaction{core.T(1, core.R("x")), core.T(1, core.W("y"))}
	if _, err := txn.New(txn.Config{Protocol: sched.NewNoCC(), Programs: dup}); err == nil {
		t.Error("duplicate program IDs accepted")
	}
}

func TestRunnerCommitsEverythingUnderS2PL(t *testing.T) {
	r, err := txn.New(txn.Config{
		Protocol: sched.NewS2PL(),
		Programs: twoWriters(),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 2 {
		t.Fatalf("Committed = %d, want 2", res.Committed)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("committed schedule failed verification: %v", err)
	}
	if res.OpsExecuted < 4 {
		t.Errorf("OpsExecuted = %d", res.OpsExecuted)
	}
}

func TestRunnerDeterministic(t *testing.T) {
	run := func() string {
		r, err := txn.New(txn.Config{Protocol: sched.NewS2PL(), Programs: twoWriters(), Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		s, _, err := res.CommittedSchedule()
		if err != nil {
			t.Fatal(err)
		}
		return s.String() + "|" + res.String()
	}
	if run() != run() {
		t.Error("same seed must reproduce the identical run")
	}
}

func TestRunnerDeadlockRecovery(t *testing.T) {
	// Classic crossing writers deadlock under 2PL; the victim restarts
	// and both must eventually commit.
	progs := []*core.Transaction{
		core.T(1, core.W("x"), core.W("y")),
		core.T(2, core.W("y"), core.W("x")),
	}
	r, err := txn.New(txn.Config{Protocol: sched.NewS2PL(), Programs: progs, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 2 {
		t.Fatalf("Committed = %d, want 2 (result %s)", res.Committed, res)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("verification: %v", err)
	}
}

func TestRunnerCascadingAbort(t *testing.T) {
	// Under NoCC with heavy write-write overlap, aborts are driven only
	// by stalls, which NoCC never causes — so instead exercise the
	// cascade through RSGT, which aborts on cycles: writers and readers
	// chained on one object must still converge with a consistent
	// store.
	store := storage.NewStore()
	store.Load(map[string]storage.Value{"x": 1})
	progs := []*core.Transaction{
		core.T(1, core.R("x"), core.W("x"), core.W("y")),
		core.T(2, core.R("x"), core.W("x")),
		core.T(3, core.R("y"), core.W("x")),
	}
	r, err := txn.New(txn.Config{
		Protocol: sched.NewRSGT(sched.AbsoluteOracle{}),
		Programs: progs,
		Store:    store,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 3 {
		t.Fatalf("Committed = %d, want 3", res.Committed)
	}
	if err := res.Verify(); err != nil {
		t.Errorf("verification: %v", err)
	}
}

func TestRunnerEmitsCommittedScheduleOnly(t *testing.T) {
	progs := twoWriters()
	r, err := txn.New(txn.Config{Protocol: sched.NewSGT(), Programs: progs, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	s, sp, err := res.CommittedSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Errorf("committed schedule has %d ops, want 4", s.Len())
	}
	if !sp.IsAbsolute() {
		t.Error("absolute oracle should produce absolute spec")
	}
}

func TestRunnerHistory(t *testing.T) {
	h := storage.NewHistory()
	r, err := txn.New(txn.Config{
		Protocol: sched.NewS2PL(),
		Programs: twoWriters(),
		Seed:     5,
		History:  h,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Errorf("history recorded %d commits, want 2", h.Len())
	}
}

func TestRunnerMPLBoundsConcurrency(t *testing.T) {
	var progs []*core.Transaction
	for i := 1; i <= 10; i++ {
		progs = append(progs, core.T(core.TxnID(i), core.R("a"), core.W("b")))
	}
	r, err := txn.New(txn.Config{Protocol: sched.NewNoCC(), Programs: progs, MPL: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgConcurrency > 2.0001 {
		t.Errorf("AvgConcurrency = %f exceeds MPL 2", res.AvgConcurrency)
	}
	if res.Committed != 10 {
		t.Errorf("Committed = %d", res.Committed)
	}
}

func TestRunnerPaperInstanceThroughRSGT(t *testing.T) {
	// Run the Figure 1 transactions under RSGT with the paper's
	// specification; the committed schedule must be certified
	// relatively serializable by the offline RSG (Theorem 1 end to
	// end).
	inst := paperfig.Figure1()
	progs := inst.Set.Txns()
	for seed := int64(0); seed < 10; seed++ {
		r, err := txn.New(txn.Config{
			Protocol: sched.NewRSGT(sched.SpecOracle{Spec: inst.Spec}),
			Programs: progs,
			Oracle:   sched.SpecOracle{Spec: inst.Spec},
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Committed != 3 {
			t.Fatalf("seed %d: Committed = %d", seed, res.Committed)
		}
		if err := res.Verify(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestVerifyFailsForUncontrolledRuns(t *testing.T) {
	// NoCC admits everything; the classic lost-update pattern (read
	// clean, write over a peer's dirty value) stays recoverable yet is
	// not conflict serializable, so across contended seeds Verify must
	// reject at least one committed schedule under absolute atomicity.
	var progs []*core.Transaction
	for i := 1; i <= 6; i++ {
		progs = append(progs, core.T(core.TxnID(i), core.R("h"), core.W("h")))
	}
	sawViolation := false
	for seed := int64(0); seed < 30 && !sawViolation; seed++ {
		r, err := txn.New(txn.Config{Protocol: sched.NewNoCC(), Programs: progs, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			if !strings.Contains(err.Error(), "not relatively serializable") {
				t.Fatalf("unexpected error: %v", err)
			}
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Error("NoCC never violated serializability across 30 contended seeds (suspicious)")
	}
}

func TestResultStringAndEmpty(t *testing.T) {
	res := &txn.Result{Protocol: "x"}
	if _, _, err := res.CommittedSchedule(); err == nil {
		t.Error("empty result should not reconstruct a schedule")
	}
	if !strings.Contains(res.String(), "x:") {
		t.Errorf("String = %q", res.String())
	}
}

func TestRunnerStallVictimization(t *testing.T) {
	// A protocol that always blocks can make no progress: the driver
	// must victimize, restart with backoff, and eventually surface the
	// restart-limit error rather than hanging.
	r, err := txn.New(txn.Config{
		Protocol:    blockForever{},
		Programs:    []*core.Transaction{core.T(1, core.R("x"))},
		MaxRestarts: 3,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("expected restart-limit error")
	}
}

func TestRunnerCommitWaitsCounted(t *testing.T) {
	progs := []*core.Transaction{
		core.T(1, core.W("a")),
		core.T(2, core.W("b")),
	}
	r, err := txn.New(txn.Config{Protocol: &commitAfterPeer{}, Programs: progs, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 2 {
		t.Fatalf("committed %d", res.Committed)
	}
	if res.CommitWaits == 0 {
		t.Error("expected commit waits to be counted")
	}
	if res.Aborts == 0 {
		t.Error("expected the stall breaker to have aborted the first holdout")
	}
}

type blockForever struct{}

func (blockForever) Name() string                           { return "block-forever" }
func (blockForever) Begin(int64, *core.Transaction)         {}
func (blockForever) Request(sched.OpRequest) sched.Decision { return sched.Block }
func (blockForever) CanCommit(int64) bool                   { return true }
func (blockForever) Commit(int64)                           {}
func (blockForever) Abort(int64)                            {}

func TestRunnerLatencyStats(t *testing.T) {
	var progs []*core.Transaction
	for i := 1; i <= 6; i++ {
		progs = append(progs, core.T(core.TxnID(i), core.R("a"), core.W("b")))
	}
	r, err := txn.New(txn.Config{Protocol: sched.NewS2PL(), Programs: progs, Seed: 3, MPL: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyMean <= 0 {
		t.Errorf("LatencyMean = %f, want > 0", res.LatencyMean)
	}
	if res.LatencyP95 < res.LatencyMean {
		t.Errorf("P95 (%f) below mean (%f)", res.LatencyP95, res.LatencyMean)
	}
}

func TestTimelineRendering(t *testing.T) {
	var progs []*core.Transaction
	for i := 1; i <= 4; i++ {
		progs = append(progs, core.T(core.TxnID(i), core.R("a"), core.W("b")))
	}
	r, err := txn.New(txn.Config{Protocol: sched.NewNoCC(), Programs: progs, Seed: 1, MPL: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) != 4 {
		t.Fatalf("Spans = %d, want 4", len(res.Spans))
	}
	out := res.Timeline(40)
	for i := 1; i <= 4; i++ {
		if !strings.Contains(out, "T"+string(rune('0'+i))) {
			t.Errorf("timeline missing T%d:\n%s", i, out)
		}
	}
	if !strings.Contains(out, "=") && !strings.Contains(out, ">") {
		t.Errorf("timeline has no bars:\n%s", out)
	}
	empty := (&txn.Result{}).Timeline(40)
	if !strings.Contains(empty, "no committed instances") {
		t.Errorf("empty timeline = %q", empty)
	}
}
