package txn_test

import (
	"bytes"
	"testing"

	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

// TestWALRecoveryMatchesLiveStore runs the banking workload with a WAL
// attached, then rebuilds a store from the log alone and compares it to
// the live store. The match relies on the runtime's recoverability
// layer: per object, overwriters commit after the transactions they
// overwrote, so replaying writes grouped by commit reproduces the
// physical final state.
func TestWALRecoveryMatchesLiveStore(t *testing.T) {
	for _, proto := range []string{"s2pl", "rsgt"} {
		for seed := int64(1); seed <= 3; seed++ {
			w, err := workload.Banking(workload.DefaultBankingConfig(), seed)
			if err != nil {
				t.Fatal(err)
			}
			var p sched.Protocol
			if proto == "s2pl" {
				p = sched.NewS2PL()
			} else {
				p = sched.NewRSGT(w.Oracle)
			}
			var logBuf bytes.Buffer
			store := storage.NewStore()
			store.Load(w.Initial)
			r, err := txn.New(txn.Config{
				Protocol:  p,
				Programs:  w.Programs,
				Oracle:    w.Oracle,
				Store:     store,
				Semantics: w.Semantics,
				Seed:      seed,
				WAL:       storage.NewWAL(&logBuf),
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			recovered, report, err := storage.Recover(bytes.NewReader(logBuf.Bytes()), w.Initial)
			if err != nil {
				t.Fatal(err)
			}
			if report.Committed != res.Committed {
				t.Errorf("%s/seed %d: recovery saw %d commits, runtime %d", proto, seed, report.Committed, res.Committed)
			}
			live := store.Snapshot()
			back := recovered.Snapshot()
			for obj, v := range live {
				if back[obj] != v {
					t.Errorf("%s/seed %d: %s = %d recovered, %d live", proto, seed, obj, back[obj], v)
				}
			}
			if w.Invariant != nil {
				if err := w.Invariant(back); err != nil {
					t.Errorf("%s/seed %d: recovered store violates invariant: %v", proto, seed, err)
				}
			}
		}
	}
}

// TestWALCrashMidRunKeepsPrefix simulates a crash by truncating the
// log at every byte boundary of its tail: recovery must always succeed
// and only ever reflect fully committed transactions.
func TestWALCrashMidRunKeepsPrefix(t *testing.T) {
	w, err := workload.LongLived(workload.DefaultLongLivedConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	store := storage.NewStore()
	store.Load(w.Initial)
	r, err := txn.New(txn.Config{
		Protocol:  sched.NewRSGT(w.Oracle),
		Programs:  w.Programs,
		Oracle:    w.Oracle,
		Store:     store,
		Semantics: w.Semantics,
		Seed:      2,
		WAL:       storage.NewWAL(&logBuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	full := logBuf.Bytes()
	fullStore, fullReport, err := storage.Recover(bytes.NewReader(full), w.Initial)
	if err != nil {
		t.Fatal(err)
	}
	_ = fullStore
	cuts := make([]int, 0, len(full)/13+2)
	for cut := 0; cut < len(full); cut += 13 { // prime stride over the log
		cuts = append(cuts, cut)
	}
	cuts = append(cuts, len(full)) // always test the intact log too
	prevCommitted := -1
	for _, cut := range cuts {
		st, report, err := storage.Recover(bytes.NewReader(full[:cut]), w.Initial)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if report.Committed < prevCommitted {
			t.Fatalf("cut %d: commits went backward (%d < %d)", cut, report.Committed, prevCommitted)
		}
		prevCommitted = report.Committed
		// Every recovered object value must be explainable: between the
		// initial value and the fully recovered one in commit count.
		if report.Committed > fullReport.Committed {
			t.Fatalf("cut %d: more commits than the full log", cut)
		}
		_ = st
	}
	if prevCommitted != fullReport.Committed {
		t.Errorf("final prefix recovered %d commits, full log %d", prevCommitted, fullReport.Committed)
	}
}

func TestConcurrentRunnerWAL(t *testing.T) {
	w, err := workload.Banking(workload.DefaultBankingConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	store := storage.NewStore()
	store.Load(w.Initial)
	r, err := txn.NewConcurrent(txn.Config{
		Protocol:  sched.NewS2PL(),
		Programs:  w.Programs,
		Oracle:    w.Oracle,
		Store:     store,
		Semantics: w.Semantics,
		MPL:       6,
		WAL:       storage.NewWAL(&logBuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	recovered, report, err := storage.Recover(bytes.NewReader(logBuf.Bytes()), w.Initial)
	if err != nil {
		t.Fatal(err)
	}
	if report.Committed != res.Committed {
		t.Errorf("recovery commits %d != runtime %d", report.Committed, res.Committed)
	}
	live := store.Snapshot()
	for obj, v := range recovered.Snapshot() {
		if live[obj] != v {
			t.Errorf("%s: recovered %d, live %d", obj, v, live[obj])
		}
	}
}
