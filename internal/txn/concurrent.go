package txn

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"relser/internal/core"
	"relser/internal/engine"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/shard"
)

// ConcurrentRunner executes transaction programs on real goroutines —
// one worker per in-flight instance, bounded by the multiprogramming
// level — driving the same engine pipeline stages as the deterministic
// Runner.
//
// The hot path is sharded: the key space is partitioned over
// Config.Shards driver shards (power of two, FNV-routed, shared with
// the store's stripes and the protocol's lock tables). Each shard owns
// a wait queue (condition variable); the engine's dirty-writer stacks
// are partitioned the same way, so holding a shard's lock stabilizes
// exactly the dirty state the engine's Apply stage touches.
// Shard-safe protocols (sched.ShardSafe — NoCC, S2PL, TO) admit and
// execute operations under only the target object's shard lock, so
// requests on different shards proceed in parallel; holding the shard
// lock across Decide+Apply keeps same-object admission and execution
// in the same order, which the protocols' correctness arguments
// require. All other protocols are sequential state machines; their
// Decide+Apply pairs are serialized under pmu, which also keeps
// tracing sound for replay certification (a total order on admissions
// and their grant events).
//
// Lifecycle transitions — begin, commit, abort cascades, stall
// victimization — take the state lock exclusively, stopping the world;
// the operation path holds it shared. That makes every Begin /
// CanCommit / Commit / Abort protocol call globally serialized (the
// ShardSafe contract) and lets cascades roll back effects without
// interference.
//
// Waiting and waking are targeted to avoid a thundering herd: workers
// blocked by a shard-safe protocol sleep on their object's shard cond
// (commits broadcast only the shards their program touched — an S2PL
// waiter always waits on an object in its holder's program, so the
// holder's commit reaches it; grants wake nobody); workers blocked
// under pmu and commit-waiters sleep on the global cond; aborts and
// cascades are rare and broadcast everything.
//
// Stall detection is symmetric flag-and-check on two seq-cst atomics:
// a worker about to sleep that would leave every active instance's
// worker asleep (sleepers >= activeCount) instead victimizes itself,
// and a committer that leaves the remaining workers all asleep floods
// every cond so one of them detects the stall; the last transition
// into an all-asleep state is always observed by its own check.
//
// Cancellation rides one mechanism: RunContext derives a cancel-cause
// context; the stall watchdog escalates by canceling it (*WedgeError
// cause), external deadlines cancel it from outside, and a watcher
// goroutine floods every cond until shutdown so parked workers unwind.
// Drained in-flight instances are aborted through the engine's Recover
// stage, leaving the store invariant-clean and the WAL recoverable.
//
// Lock order: state.RLock -> pmu -> shard.mu -> {depMu, walMu};
// pmu -> commitMu; state.Lock -> {shard.mu, commitMu, walMu}. The
// leaf mutexes (depMu and walMu live in the engine; commitMu and
// shard.mu here) are never nested with one another.
//
// Concurrent runs are not reproducible (goroutine interleaving is the
// scheduler's); tests assert outcomes — everything commits, committed
// schedules verify, invariants hold — rather than traces.
type ConcurrentRunner struct {
	eng *engine.Core
	// shardSafe records whether the protocol opted into per-shard
	// admission via sched.ShardSafe.
	shardSafe bool

	// state is the world lock: the operation path holds it shared,
	// lifecycle transitions hold it exclusively. Engine lifecycle calls
	// (Admit, TryCommit, AbortCascade, AbortAll) and runErr are
	// guarded by the exclusive lock.
	state sync.RWMutex
	// pmu serializes Decide+Apply for protocols that are not
	// shard-safe.
	pmu sync.Mutex

	shards []*driverShard

	// commitMu guards registration on the global cond, where
	// commit-waiters and pmu-path blockers sleep.
	commitMu      sync.Mutex
	commitCond    *sync.Cond
	globalWaiters int

	activeCount atomic.Int64 // live instances, readable without the state lock
	sleepers    atomic.Int64 // workers asleep on any cond (or committed to sleeping)

	// progress is bumped by every executed operation, commit, abort and
	// restart; the watchdog declares a wedge when it stops moving.
	progress atomic.Int64

	runErr error // state
}

// driverShard is one partition of the driver's wait state. mu guards
// waiters and, on the operation path, the engine's same-indexed dirty
// stacks.
type driverShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiters int

	waitHist *metrics.Histogram // per-shard wall-clock wait seconds (nil without metrics)
}

// NewConcurrent validates the configuration (same rules as New) and
// prepares a concurrent runner with cfg.Shards driver shards.
func NewConcurrent(cfg Config) (*ConcurrentRunner, error) {
	eng, err := engine.NewCore(cfg)
	if err != nil {
		return nil, err
	}
	eng.InitShardInstruments()
	r := &ConcurrentRunner{
		eng:       eng,
		shardSafe: sched.IsShardSafe(eng.Cfg.Protocol),
	}
	r.commitCond = sync.NewCond(&r.commitMu)
	r.shards = make([]*driverShard, eng.Router.Shards())
	for i := range r.shards {
		sh := &driverShard{}
		sh.cond = sync.NewCond(&sh.mu)
		_, sh.waitHist = eng.ShardInstruments(i)
		r.shards[i] = sh
	}
	return r, nil
}

// Run executes all programs to commit, running up to MPL transaction
// workers concurrently, and returns the aggregated result.
func (r *ConcurrentRunner) Run() (*Result, error) {
	//rsvet:allow ctxflow -- ctx-less convenience wrapper: RunContext is the context-aware form
	return r.RunContext(context.Background())
}

// RunContext is Run under a context. Cancellation (external deadline
// or the watchdog's wedge verdict, which cancels with a *WedgeError
// cause) stops the workers, unwinds in-flight instances through the
// engine's Recover stage, and fails the run with the cause.
func (r *ConcurrentRunner) RunContext(parent context.Context) (*Result, error) {
	ctx, cancel := context.WithCancelCause(parent)
	defer cancel(nil)
	if wd := r.eng.Cfg.Watchdog; wd >= 0 {
		if wd == 0 {
			wd = engine.DefaultWatchdog
		}
		stop := r.startWatchdog(wd, cancel)
		defer stop()
	}
	// work is never closed (closing would race with a concurrent
	// requeue); shutdown is signaled on done instead. Each program has
	// at most one Pending in flight, so requeues never block.
	work := make(chan *engine.Pending, len(r.eng.Cfg.Programs))
	for _, p := range r.eng.Cfg.Programs {
		work <- &engine.Pending{Program: p}
	}
	done := make(chan struct{})
	var closeOnce sync.Once
	shutdown := func() { closeOnce.Do(func() { close(done) }) }
	// Cancellation watcher: parked workers cannot see ctx, so flood
	// every cond repeatedly until shutdown — each woken worker re-checks
	// pendingErr and unwinds. Injected wedges are released too.
	go func() {
		select {
		case <-done:
			return
		case <-ctx.Done():
		}
		r.eng.Cfg.Faults.Release()
		for {
			r.wakeAll()
			select {
			case <-done:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()
	var wg sync.WaitGroup
	workers := r.eng.Cfg.MPL
	if workers > len(r.eng.Cfg.Programs) {
		workers = len(r.eng.Cfg.Programs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var pp *engine.Pending
				select {
				case <-done:
					return
				case pp = <-work:
				}
				requeue, err := r.runProgram(ctx, pp)
				if err != nil {
					r.fail(err)
					shutdown()
					return
				}
				if requeue {
					select {
					case work <- pp:
					case <-done:
						return
					}
					continue
				}
				r.state.RLock()
				finished := r.eng.Committed() == len(r.eng.Cfg.Programs) || r.runErr != nil
				r.state.RUnlock()
				if finished {
					shutdown()
					return
				}
			}
		}()
	}
	wg.Wait()
	shutdown() // release the cancellation watcher
	// Final durability barrier before the verdict: drain the sink's
	// group-commit queues so async append errors are latched where
	// foldErrLocked can see them. Deliberately outside the state lock —
	// the flush parks on lane committers.
	r.eng.FlushWAL() //nolint:errcheck // latched error folds below
	r.state.Lock()
	defer r.state.Unlock()
	r.foldErrLocked(ctx)
	if r.runErr != nil {
		if ctx.Err() != nil {
			// Recover stage: roll back whatever is still in flight so the
			// store is invariant-clean and the WAL replays to committed
			// effects only. Non-cancellation failures (WAL append errors,
			// restart exhaustion) keep the historical behavior — aborted
			// instances' effects are already absent from recovery.
			r.eng.AbortAll(context.Cause(ctx).Error(), r.eng.Clock())
		}
		return nil, r.runErr
	}
	if r.eng.Committed() != len(r.eng.Cfg.Programs) {
		return nil, fmt.Errorf("txn: concurrent run finished with %d of %d programs committed", r.eng.Committed(), len(r.eng.Cfg.Programs))
	}
	return r.eng.Finalize(0, 0), nil
}

// runCanceled converts a canceled context into the run error: the
// cancel cause itself when one was supplied (the watchdog's
// *WedgeError), or a wrapped ctx.Err() for plain cancellations and
// deadlines.
func runCanceled(ctx context.Context) error {
	cause := context.Cause(ctx)
	if cause == ctx.Err() {
		return fmt.Errorf("txn: run canceled: %w", cause)
	}
	return cause
}

// foldErrLocked promotes a parked WAL append error or the context's
// cancellation into runErr. Requires the exclusive state lock.
func (r *ConcurrentRunner) foldErrLocked(ctx context.Context) {
	if r.runErr != nil {
		return
	}
	if err := r.eng.WALErr(); err != nil {
		r.runErr = err
		return
	}
	if ctx.Err() != nil {
		r.runErr = runCanceled(ctx)
	}
}

// pendingErr reports a failure visible from the shared state lock:
// runErr, a cancellation (external or watchdog), or a parked WAL error
// not yet folded.
func (r *ConcurrentRunner) pendingErr(ctx context.Context) error {
	if r.runErr != nil {
		return r.runErr
	}
	if ctx.Err() != nil {
		return runCanceled(ctx)
	}
	return r.eng.WALErr()
}

func (r *ConcurrentRunner) fail(err error) {
	r.state.Lock()
	if r.runErr == nil {
		r.runErr = err
	}
	r.state.Unlock()
	r.wakeAll()
}

// runProgram executes one incarnation of a program. It returns
// requeue=true when the instance aborted and the program must retry.
func (r *ConcurrentRunner) runProgram(ctx context.Context, pp *engine.Pending) (bool, error) {
	r.state.Lock()
	for {
		r.foldErrLocked(ctx)
		if err := r.runErr; err != nil {
			r.state.Unlock()
			return false, err
		}
		// Admission control: when the shedder has degraded the effective
		// MPL below the worker count, surplus workers idle here until
		// the storm clears (the limit is never below 1).
		if r.activeCount.Load() < int64(r.eng.AdmitLimit()) {
			break
		}
		r.state.Unlock()
		time.Sleep(100 * time.Microsecond)
		r.state.Lock()
	}
	st := r.eng.Admit(pp, r.eng.Clock())
	r.activeCount.Add(1)
	r.state.Unlock()

	for {
		r.state.RLock()
		if err := r.pendingErr(ctx); err != nil {
			r.state.RUnlock()
			return false, err // run failed or was canceled
		}
		if st.Doomed.Load() {
			// A cascade initiated by another worker aborted us; the
			// initiator already rolled back our effects.
			st.Doomed.Store(false)
			r.state.RUnlock()
			return r.noteRestart(pp, st)
		}
		if st.Done {
			r.state.RUnlock()
			committed, aborted, err := r.tryFinish(ctx, st)
			if err != nil {
				return false, err
			}
			if committed {
				return false, nil
			}
			if aborted {
				return r.noteRestart(pp, st)
			}
			continue
		}
		if dl := r.eng.Cfg.Deadline; dl > 0 && r.eng.Clock()-st.StartClock > dl {
			r.eng.CountDeadlineAbort()
			r.state.RUnlock()
			r.victimize(st, "deadline")
			return r.noteRestart(pp, st)
		}
		if r.eng.Cfg.Faults.Fire(fault.TxnForcedAbort) {
			r.eng.CountFault(fault.TxnForcedAbort, st.ID, r.eng.Clock())
			r.state.RUnlock()
			r.victimize(st, "injected")
			return r.noteRestart(pp, st)
		}
		if r.eng.Cfg.Faults.Fire(fault.SchedGrantDelay) {
			// The scheduler "loses" this worker's turn for a beat; a
			// canceled run stops paying for the injected latency.
			r.eng.CountFault(fault.SchedGrantDelay, st.ID, r.eng.Clock())
			r.state.RUnlock()
			fault.SleepCtx(ctx, r.eng.Cfg.Faults.Latency(fault.SchedGrantDelay))
			continue
		}
		op := st.Program.Op(st.Next)
		req := sched.OpRequest{Instance: st.ID, Program: st.Program, Seq: st.Next, Op: op, Ctx: ctx}
		shardIdx := r.eng.Router.Shard(op.Object)
		sh := r.shards[shardIdx]
		var dec sched.Decision
		if r.shardSafe {
			sh.mu.Lock()
			dec = r.eng.Decide(st, req)
		} else {
			r.pmu.Lock()
			dec = r.eng.Decide(st, req)
			if dec == sched.Grant {
				sh.mu.Lock() // for the shard's dirty stacks during Apply
			}
		}
		switch dec {
		case sched.Grant:
			order, ok := r.applySharded(ctx, st, op, sh, shardIdx)
			if !ok {
				sh.mu.Unlock()
				if !r.shardSafe {
					r.pmu.Unlock()
				}
				r.state.RUnlock()
				r.victimize(st, "recoverability")
				return r.noteRestart(pp, st)
			}
			// Emit the grant before releasing the shard (and pmu) so
			// trace order matches same-object execution order.
			r.eng.ObserveGrant(st, op, order, order)
			sh.mu.Unlock()
			if r.shardSafe {
				r.state.RUnlock()
				// Shard-safe grants wake nobody: acquiring a lock or
				// passing a timestamp check cannot unblock a waiter.
			} else {
				r.pmu.Unlock()
				r.state.RUnlock()
				// Sequential protocols may change wait state on a grant
				// (altruistic donation); their blockers sleep globally.
				r.broadcastGlobal()
			}
		case sched.Block:
			r.eng.ObserveBlock(st, op, r.eng.Clock(), shardIdx)
			var slept bool
			if r.shardSafe {
				slept = r.sleepShard(sh)
			} else {
				slept = r.sleepGlobal()
			}
			if !slept {
				// Parking would leave every active worker asleep (a stall
				// the protocol cannot see): become the victim. The sleep
				// helper released its registration locks; we still hold
				// the shared state lock.
				r.state.RUnlock()
				r.victimize(st, "stall")
				return r.noteRestart(pp, st)
			}
			// Woken (the helper released the shared state lock before
			// sleeping); re-enter the loop and retry the same operation.
		case sched.Abort:
			r.eng.ObserveAbortDecision(st, op, r.eng.Clock())
			if r.shardSafe {
				sh.mu.Unlock()
			} else {
				r.pmu.Unlock()
			}
			r.state.RUnlock()
			r.victimize(st, "protocol")
			return r.noteRestart(pp, st)
		}
	}
}

// applySharded runs the engine's recoverability check and Apply stage
// on the sharded hot path. Called with the shared state lock and sh.mu
// held (sh is the target object's shard, so the engine's dirty stacks
// for it are stable); non-shard-safe callers additionally hold pmu.
// Returns the operation's execution order and false if executing would
// create an unrecoverable read-from cycle.
//
//rsvet:locks sh.mu
func (r *ConcurrentRunner) applySharded(ctx context.Context, st *engine.Instance, op core.Op, sh *driverShard, shardIdx int) (int64, bool) {
	if r.eng.Unrecoverable(st, op, shardIdx) {
		return 0, false
	}
	if in := r.eng.Cfg.Faults; in.Active(fault.ShardStall) || in.Active(fault.ShardWedge) {
		// Both fire while holding the shard's mutex — a stalled or
		// wedged worker realistically blocks its same-shard neighbors. A
		// wedge parks until the injector is released or the run context
		// is canceled; the watchdog does both.
		//rsvet:allow stripelock -- stall must block same-shard neighbors to be realistic
		if in.Fire(fault.ShardStall) {
			fault.SleepCtx(ctx, in.Latency(fault.ShardStall))
		}
		//rsvet:allow stripelock -- wedge parks under sh.mu so the watchdog has something to detect
		if in.Fire(fault.ShardWedge) {
			//rsvet:allow stripelock
			in.WedgeCtx(ctx)
		}
	}
	order := r.eng.Apply(ctx, st, op, shardIdx)
	r.progress.Add(1)
	return order, true
}

// tryFinish attempts to commit a finished instance under the exclusive
// state lock; if dependencies or the protocol veto, the worker parks on
// the global cond until a commit or abort changes that state.
func (r *ConcurrentRunner) tryFinish(ctx context.Context, st *engine.Instance) (committed, aborted bool, err error) {
	r.state.Lock()
	r.foldErrLocked(ctx)
	if r.runErr != nil {
		err = r.runErr
		r.state.Unlock()
		return false, false, err
	}
	if st.Doomed.Load() {
		st.Doomed.Store(false)
		r.state.Unlock()
		return false, true, nil
	}
	if r.eng.TryCommit(st, r.eng.Clock()) {
		r.activeCount.Add(-1)
		r.progress.Add(1)
		r.wakeAfterCommitLocked(st)
		r.state.Unlock()
		return true, false, nil
	}
	r.commitMu.Lock()
	if s := r.sleepers.Add(1); s >= r.activeCount.Load() { // everyone else already waits: break the stall here
		r.sleepers.Add(-1)
		r.commitMu.Unlock()
		r.abortCascadeLocked(st, "stall")
		r.state.Unlock()
		r.wakeAll()
		return false, true, nil
	}
	r.globalWaiters++
	r.state.Unlock()
	r.commitCond.Wait()
	r.globalWaiters--
	r.sleepers.Add(-1)
	r.commitMu.Unlock()
	r.eng.ObserveWakeup()
	return false, false, nil
}

// sleepShard parks the worker on sh's cond. Called with the shared
// state lock and sh.mu held. On true the worker slept and was woken;
// both locks are released. On false parking would have stalled the run;
// sh.mu is released but the shared state lock is still held and the
// caller must victimize. No wakeup can be lost: waiters is registered
// and sh.mu pins the cond until Wait is entered.
//
//rsvet:locks sh.mu
func (r *ConcurrentRunner) sleepShard(sh *driverShard) bool {
	if s := r.sleepers.Add(1); s >= r.activeCount.Load() {
		r.sleepers.Add(-1)
		sh.mu.Unlock()
		return false
	}
	sh.waiters++
	start := time.Now()
	r.state.RUnlock()
	sh.cond.Wait()
	sh.waiters--
	r.sleepers.Add(-1)
	if sh.waitHist != nil {
		sh.waitHist.Observe(time.Since(start).Seconds())
	}
	sh.mu.Unlock()
	r.eng.ObserveWakeup()
	return true
}

// sleepGlobal parks the worker on the global cond. Called with the
// shared state lock and pmu held; release semantics mirror sleepShard.
// Registration (globalWaiters++) happens under commitMu before pmu is
// released, so a grant that could unblock this worker — which needs pmu
// for its own Decide — always broadcasts after the registration.
func (r *ConcurrentRunner) sleepGlobal() bool {
	r.commitMu.Lock()
	if s := r.sleepers.Add(1); s >= r.activeCount.Load() {
		r.sleepers.Add(-1)
		r.commitMu.Unlock()
		r.pmu.Unlock()
		return false
	}
	r.globalWaiters++
	r.pmu.Unlock()
	r.state.RUnlock()
	r.commitCond.Wait()
	r.globalWaiters--
	r.sleepers.Add(-1)
	r.commitMu.Unlock()
	r.eng.ObserveWakeup()
	return true
}

// broadcastGlobal wakes the global cond's sleepers if there are any.
func (r *ConcurrentRunner) broadcastGlobal() {
	r.commitMu.Lock()
	if r.globalWaiters > 0 {
		r.eng.ObserveBroadcastGlobal()
		r.commitCond.Broadcast()
	}
	r.commitMu.Unlock()
}

// wakeAll broadcasts every cond (all shards plus global). Used for
// rare events — aborts, cascades, run failure, cancellation floods —
// where targeting is not worth the complexity.
func (r *ConcurrentRunner) wakeAll() {
	for _, sh := range r.shards {
		sh.mu.Lock()
		if sh.waiters > 0 {
			sh.cond.Broadcast()
		}
		sh.mu.Unlock()
	}
	r.commitMu.Lock()
	if r.globalWaiters > 0 {
		r.commitCond.Broadcast()
	}
	r.commitMu.Unlock()
}

// wakeAfterCommitLocked wakes exactly the sleepers a commit can
// unblock: the shards of the committed program's objects and the
// global cond (commit-waiters and pmu-path blockers). Safety net: if
// the remaining active workers are all asleep after the targeted
// wakeups were chosen, flood everything so one of them runs the stall
// check. Requires the exclusive state lock.
func (r *ConcurrentRunner) wakeAfterCommitLocked(st *engine.Instance) {
	var woken [shard.MaxShards]bool
	for i := 0; i < st.Program.Len(); i++ {
		s := r.eng.Router.Shard(st.Program.Op(i).Object)
		if woken[s] {
			continue
		}
		woken[s] = true
		sh := r.shards[s]
		sh.mu.Lock()
		if sh.waiters > 0 {
			r.eng.ObserveBroadcastShard()
			sh.cond.Broadcast()
		}
		sh.mu.Unlock()
	}
	r.commitMu.Lock()
	if r.globalWaiters > 0 {
		r.eng.ObserveBroadcastGlobal()
		r.commitCond.Broadcast()
	}
	r.commitMu.Unlock()
	if ac := r.activeCount.Load(); ac > 0 && r.sleepers.Load() >= ac {
		r.eng.ObserveBroadcastFlood()
		r.wakeAll()
	}
}

// victimize aborts st's cascade under the exclusive state lock and
// wakes all sleepers. Handles the race where another worker's cascade
// doomed st between the caller releasing the shared lock and this
// acquiring the exclusive one.
func (r *ConcurrentRunner) victimize(st *engine.Instance, reason string) {
	r.state.Lock()
	if reason == "recoverability" {
		r.eng.CountRecoverabilityAbort()
	}
	if st.Doomed.Load() {
		// Someone else already aborted us (and woke everyone).
		st.Doomed.Store(false)
		r.state.Unlock()
		return
	}
	r.abortCascadeLocked(st, reason)
	r.state.Unlock()
	r.wakeAll()
}

// abortCascadeLocked runs the engine's Abort stage for st's cascade;
// co-victims running on other goroutines are marked doomed and clean
// themselves up on next wake. Requires the exclusive state lock; the
// caller broadcasts afterwards.
func (r *ConcurrentRunner) abortCascadeLocked(st *engine.Instance, reason string) {
	// onVictim never errors, so neither does the cascade.
	_ = r.eng.AbortCascade(st.ID, reason, r.eng.Clock(), func(v *engine.Instance) error {
		r.activeCount.Add(-1)
		r.progress.Add(1)
		if v.ID != st.ID {
			v.Doomed.Store(true)
		}
		return nil
	})
}

// noteRestart records restart bookkeeping after an abort and tells the
// worker loop to requeue the program.
func (r *ConcurrentRunner) noteRestart(pp *engine.Pending, st *engine.Instance) (bool, error) {
	r.state.Lock()
	pp.Restarts = st.Restarts + 1
	if pp.Restarts > r.eng.Cfg.MaxRestarts {
		err := fmt.Errorf("txn: program T%d exceeded %d restarts", st.Program.ID, r.eng.Cfg.MaxRestarts)
		if r.runErr == nil {
			r.runErr = err
		}
		r.state.Unlock()
		return false, err
	}
	r.eng.CountRestart()
	r.progress.Add(1)
	level := r.eng.LivelockLevel()
	r.state.Unlock()
	// Yield before the retry: a single-CPU scheduler can otherwise
	// livelock an abort, with the victim's worker re-acquiring the locks
	// its abort just freed before the woken waiters ever run. Once the
	// livelock detector has escalated, yielding alone does not spread
	// contenders enough: add capped, jittered wall-clock backoff from
	// the dedicated seeded stream.
	r.eng.JitterSleep(pp.Restarts, level)
	runtime.Gosched()
	return true, nil
}

// startWatchdog launches the stall watchdog and returns its stop
// function. The watchdog polls a progress counter (bumped on every
// executed operation, commit, abort and restart); if it does not move
// for the configured interval the run is declared wedged and the
// watchdog escalates through the run's cancellation mechanism: it
// releases injected shard wedges and cancels the context with the
// *WedgeError as the cause, which surfaces on every worker's next
// pendingErr check and triggers the cancellation watcher's floods.
// The watchdog never takes the state lock — a wedged worker may hold
// it transitively — so its diagnosis uses only atomics and TryLock
// probes on the shard mutexes.
func (r *ConcurrentRunner) startWatchdog(limit time.Duration, cancel context.CancelCauseFunc) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		poll := limit / 8
		if poll < time.Millisecond {
			poll = time.Millisecond
		}
		last := r.progress.Load()
		lastMove := time.Now()
		ticker := time.NewTicker(poll)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			if cur := r.progress.Load(); cur != last {
				last, lastMove = cur, time.Now()
				continue
			}
			if time.Since(lastMove) < limit {
				continue
			}
			we := &WedgeError{
				After:    limit,
				Active:   r.activeCount.Load(),
				Sleepers: r.sleepers.Load(),
				Suspects: r.suspectShards(),
			}
			r.eng.ObserveWedge(we)
			r.eng.Cfg.Faults.Release()
			cancel(we)
			return
		}
	}()
	return func() { close(stop); <-done }
}

// suspectShards probes each driver shard mutex without blocking and
// reports the ones that are held — their holders are the wedge
// suspects.
func (r *ConcurrentRunner) suspectShards() []int {
	var out []int
	for i, sh := range r.shards {
		if sh.mu.TryLock() {
			sh.mu.Unlock()
		} else {
			out = append(out, i)
		}
	}
	return out
}
