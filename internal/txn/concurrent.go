package txn

import (
	"fmt"
	"sort"
	"sync"

	"relser/internal/core"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/storage"
)

// ConcurrentRunner executes transaction programs on real goroutines —
// one worker per in-flight instance, bounded by the multiprogramming
// level — against the same protocol and store machinery as the
// deterministic Runner. Protocol calls and driver bookkeeping are
// serialized under one mutex (protocols are sequential state machines);
// blocked workers sleep on a condition variable and are woken by every
// commit, abort or grant.
//
// Concurrent runs are not reproducible (goroutine interleaving is the
// scheduler's); tests assert outcomes — everything commits, committed
// schedules verify, invariants hold — rather than traces.
type ConcurrentRunner struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond

	nextInstance int64
	active       map[int64]*instanceState
	dirtyStack   map[string][]int64
	dependents   map[int64]map[int64]bool
	doomed       map[int64]bool
	blocked      int // workers currently waiting on cond
	execSeq      int64
	latencies    metrics.Stats
	obs          observer

	res    Result
	runErr error
}

// NewConcurrent validates the configuration (same rules as New) and
// prepares a concurrent runner.
func NewConcurrent(cfg Config) (*ConcurrentRunner, error) {
	probe, err := New(cfg) // reuse validation and defaulting
	if err != nil {
		return nil, err
	}
	cfg = probe.cfg
	r := &ConcurrentRunner{
		cfg:        cfg,
		active:     make(map[int64]*instanceState),
		dirtyStack: make(map[string][]int64),
		dependents: make(map[int64]map[int64]bool),
		doomed:     make(map[int64]bool),
	}
	r.cond = sync.NewCond(&r.mu)
	r.obs = newObserver(&cfg)
	r.res.Protocol = cfg.Protocol.Name()
	r.res.oracle = cfg.Oracle
	return r, nil
}

// Run executes all programs to commit, running up to MPL transaction
// workers concurrently, and returns the aggregated result.
func (r *ConcurrentRunner) Run() (*Result, error) {
	work := make(chan *pendingProgram, len(r.cfg.Programs))
	for _, p := range r.cfg.Programs {
		work <- &pendingProgram{program: p}
	}
	var closeOnce sync.Once
	shutdown := func() { closeOnce.Do(func() { close(work) }) }
	var wg sync.WaitGroup
	workers := r.cfg.MPL
	if workers > len(r.cfg.Programs) {
		workers = len(r.cfg.Programs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pp := range work {
				requeue, err := r.runProgram(pp)
				if err != nil {
					r.fail(err)
					shutdown()
					return
				}
				if requeue {
					work <- pp
					continue
				}
				r.mu.Lock()
				done := r.res.Committed == len(r.cfg.Programs) || r.runErr != nil
				r.mu.Unlock()
				if done {
					shutdown()
					return
				}
			}
		}()
	}
	wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.runErr != nil {
		return nil, r.runErr
	}
	if r.res.Committed != len(r.cfg.Programs) {
		return nil, fmt.Errorf("txn: concurrent run finished with %d of %d programs committed", r.res.Committed, len(r.cfg.Programs))
	}
	r.res.LatencyMean = r.latencies.Mean()
	r.res.LatencyP95 = r.latencies.Percentile(95)
	sort.Slice(r.res.Trace, func(i, j int) bool { return r.res.Trace[i].Order < r.res.Trace[j].Order })
	return &r.res, nil
}

// logWALLocked appends a record under the runner mutex, surfacing
// append errors as run failures.
func (r *ConcurrentRunner) logWALLocked(rec storage.WALRecord) {
	if r.cfg.WAL == nil {
		return
	}
	if err := r.cfg.WAL.Append(rec); err != nil && r.runErr == nil {
		r.runErr = fmt.Errorf("txn: WAL append failed: %v", err)
	}
}

func (r *ConcurrentRunner) fail(err error) {
	r.mu.Lock()
	if r.runErr == nil {
		r.runErr = err
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// runProgram executes one incarnation of a program. It returns
// requeue=true when the instance aborted and the program must retry.
func (r *ConcurrentRunner) runProgram(pp *pendingProgram) (bool, error) {
	r.mu.Lock()
	if r.runErr != nil {
		r.mu.Unlock()
		return false, r.runErr
	}
	r.nextInstance++
	st := &instanceState{
		id:           r.nextInstance,
		program:      pp.program,
		reads:        make(map[int]storage.Value),
		depsOn:       make(map[int64]bool),
		writes:       make(map[string]storage.Value),
		restarts:     pp.restarts,
		startClock:   r.execSeq,
		blockedSince: -1,
	}
	r.active[st.id] = st
	r.cfg.Protocol.Begin(st.id, st.program)
	r.logWALLocked(storage.WALRecord{Kind: storage.WALBegin, Instance: st.id})
	r.obs.begin(st, r.execSeq)
	r.mu.Unlock()

	for {
		r.mu.Lock()
		if err := r.runErr; err != nil {
			r.mu.Unlock()
			return false, err // another worker already failed the run
		}
		if r.doomed[st.id] {
			// A cascade initiated by another worker aborted us; the
			// initiator already rolled back our effects and released
			// protocol state.
			delete(r.doomed, st.id)
			r.mu.Unlock()
			return r.noteRestart(pp, st)
		}
		if st.done {
			if len(st.depsOn) == 0 && r.cfg.Protocol.CanCommit(st.id) {
				r.commitLocked(st)
				r.mu.Unlock()
				r.cond.Broadcast()
				return false, nil
			}
			if aborted := r.waitOrBreak(st); aborted {
				r.mu.Unlock()
				return r.noteRestart(pp, st)
			}
			r.mu.Unlock()
			continue
		}
		op := st.program.Op(st.next)
		req := sched.OpRequest{Instance: st.id, Program: st.program, Seq: st.next, Op: op}
		switch r.cfg.Protocol.Request(req) {
		case sched.Grant:
			if !r.executeLocked(st, op) {
				r.res.RecoverabilityAborts++
				r.obs.recoverabilityAbort()
				r.abortCascadeLocked(st.id, "recoverability")
				r.mu.Unlock()
				r.cond.Broadcast()
				return r.noteRestart(pp, st)
			}
			r.obs.grant(st, op, r.execSeq, r.execSeq)
			r.mu.Unlock()
			r.cond.Broadcast()
		case sched.Block:
			r.res.Blocks++
			r.obs.block(st, op, r.execSeq)
			if aborted := r.waitOrBreak(st); aborted {
				r.mu.Unlock()
				return r.noteRestart(pp, st)
			}
			r.mu.Unlock()
		case sched.Abort:
			r.obs.abortDecision(st, op, r.execSeq)
			r.abortCascadeLocked(st.id, "protocol")
			r.mu.Unlock()
			r.cond.Broadcast()
			return r.noteRestart(pp, st)
		}
	}
}

// waitOrBreak parks the worker on the condition variable. If parking
// would leave every active worker blocked (a deadlock the protocol
// cannot see), the caller instead becomes the stall victim: its own
// cascade is aborted and true is returned. Must be called with mu
// held; returns with mu held.
func (r *ConcurrentRunner) waitOrBreak(st *instanceState) (aborted bool) {
	if r.blocked+1 >= len(r.active) {
		// Everyone else is already waiting: break the stall here.
		r.abortCascadeLocked(st.id, "stall")
		r.cond.Broadcast()
		return true
	}
	r.blocked++
	r.cond.Wait()
	r.blocked--
	if r.doomed[st.id] {
		delete(r.doomed, st.id)
		return true
	}
	return false
}

// noteRestart records restart bookkeeping after an abort and tells the
// worker loop to requeue the program.
func (r *ConcurrentRunner) noteRestart(pp *pendingProgram, st *instanceState) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	pp.restarts = st.restarts + 1
	if pp.restarts > r.cfg.MaxRestarts {
		err := fmt.Errorf("txn: program T%d exceeded %d restarts", st.program.ID, r.cfg.MaxRestarts)
		if r.runErr == nil {
			r.runErr = err
		}
		return false, err
	}
	r.res.Restarts++
	r.obs.restart()
	return true, nil
}

// executeLocked mirrors Runner.execute under the runner mutex.
func (r *ConcurrentRunner) executeLocked(st *instanceState, op core.Op) bool {
	if w, dirty := r.dirtyWriterLocked(op.Object); dirty && w != st.id && r.depPathLocked(w, st.id) {
		return false
	}
	r.res.OpsExecuted++
	if op.Kind == core.ReadOp {
		v := r.cfg.Store.Read(op.Object)
		st.reads[op.Seq] = v.Value
		if w, dirty := r.dirtyWriterLocked(op.Object); dirty && w != st.id {
			r.addDepLocked(st, w)
		}
	} else {
		v := r.cfg.Semantics.WriteValue(st.program, op.Seq, st.reads)
		if w, dirty := r.dirtyWriterLocked(op.Object); dirty && w != st.id {
			r.addDepLocked(st, w)
		}
		st.undo.WriteLogged(r.cfg.Store, op.Object, v)
		st.writes[op.Object] = v
		r.dirtyStack[op.Object] = append(r.dirtyStack[op.Object], st.id)
		r.logWALLocked(storage.WALRecord{Kind: storage.WALWrite, Instance: st.id, Object: op.Object, Value: v})
	}
	r.execSeq++
	st.events = append(st.events, Event{Instance: st.id, Program: st.program, Op: op, Order: r.execSeq})
	st.next++
	if st.next == st.program.Len() {
		st.done = true
	}
	return true
}

func (r *ConcurrentRunner) commitLocked(st *instanceState) {
	r.cfg.Protocol.Commit(st.id)
	r.logWALLocked(storage.WALRecord{Kind: storage.WALCommit, Instance: st.id})
	st.undo.Discard()
	for obj := range st.writes {
		r.removeDirtyLocked(obj, st.id)
	}
	for dep := range r.dependents[st.id] {
		if d, ok := r.active[dep]; ok {
			delete(d.depsOn, st.id)
		}
	}
	delete(r.dependents, st.id)
	delete(r.active, st.id)
	r.res.Committed++
	r.obs.commit(st, r.execSeq)
	r.latencies.Add(float64(r.execSeq - st.startClock))
	r.res.Spans = append(r.res.Spans, Span{Instance: st.id, Program: int(st.program.ID), Start: st.startClock, End: r.execSeq, CommitSeq: r.execSeq})
	r.res.Trace = append(r.res.Trace, st.events...)
	r.res.Programs = append(r.res.Programs, st.program)
	if r.cfg.History != nil {
		r.cfg.History.Append(storage.Commit{Instance: st.id, Writes: st.writes})
	}
}

// abortCascadeLocked aborts the instance and every live dependent,
// rolling all their effects back together; co-victims running on other
// goroutines are marked doomed and clean themselves up on next wake.
func (r *ConcurrentRunner) abortCascadeLocked(id int64, reason string) {
	victims := map[int64]bool{}
	var collect func(v int64)
	collect = func(v int64) {
		if victims[v] {
			return
		}
		if _, ok := r.active[v]; !ok {
			return
		}
		victims[v] = true
		for dep := range r.dependents[v] {
			collect(dep)
		}
	}
	collect(id)
	ordered := make([]int64, 0, len(victims))
	for v := range victims {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	logs := make([]*storage.UndoLog, 0, len(ordered))
	for _, v := range ordered {
		logs = append(logs, &r.active[v].undo)
	}
	storage.RollbackSet(r.cfg.Store, logs)
	for _, v := range ordered {
		st := r.active[v]
		r.cfg.Protocol.Abort(v)
		r.logWALLocked(storage.WALRecord{Kind: storage.WALAbort, Instance: v})
		r.obs.txnAbort(st, reason, r.execSeq)
		for obj := range st.writes {
			r.removeDirtyLocked(obj, v)
		}
		for dep := range r.dependents[v] {
			if d, ok := r.active[dep]; ok {
				delete(d.depsOn, v)
			}
		}
		delete(r.dependents, v)
		for on := range st.depsOn {
			if deps := r.dependents[on]; deps != nil {
				delete(deps, v)
			}
		}
		delete(r.active, v)
		r.res.Aborts++
		if v != id {
			r.doomed[v] = true
		}
	}
}

func (r *ConcurrentRunner) addDepLocked(st *instanceState, on int64) {
	if st.depsOn[on] {
		return
	}
	st.depsOn[on] = true
	deps := r.dependents[on]
	if deps == nil {
		deps = make(map[int64]bool)
		r.dependents[on] = deps
	}
	deps[st.id] = true
}

func (r *ConcurrentRunner) depPathLocked(from, to int64) bool {
	seen := map[int64]bool{}
	stack := []int64{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == to {
			return true
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		if inst, ok := r.active[v]; ok {
			for d := range inst.depsOn {
				stack = append(stack, d)
			}
		}
	}
	return false
}

func (r *ConcurrentRunner) dirtyWriterLocked(object string) (int64, bool) {
	stack := r.dirtyStack[object]
	if len(stack) == 0 {
		return 0, false
	}
	return stack[len(stack)-1], true
}

func (r *ConcurrentRunner) removeDirtyLocked(object string, id int64) {
	stack := r.dirtyStack[object]
	out := stack[:0]
	for _, w := range stack {
		if w != id {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		delete(r.dirtyStack, object)
	} else {
		r.dirtyStack[object] = out
	}
}
