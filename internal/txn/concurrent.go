package txn

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"relser/internal/core"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/shard"
	"relser/internal/storage"
)

// ConcurrentRunner executes transaction programs on real goroutines —
// one worker per in-flight instance, bounded by the multiprogramming
// level — against the same protocol and store machinery as the
// deterministic Runner.
//
// The hot path is sharded: the key space is partitioned over
// Config.Shards driver shards (power of two, FNV-routed, shared with
// the store's stripes and the protocol's lock tables). Each shard owns
// a wait queue (condition variable) and the dirty-writer stacks for its
// objects. How much of the path runs concurrently depends on the
// protocol:
//
//   - Shard-safe protocols (sched.ShardSafe — NoCC, S2PL, TO) admit
//     and execute operations under only the target object's shard lock,
//     so requests on different shards proceed in parallel. Holding the
//     shard lock across Request+execute keeps same-object admission and
//     execution in the same order, which the protocols' correctness
//     arguments require.
//   - All other protocols are sequential state machines; their
//     Request+execute pairs are serialized under pmu. Tracing stays
//     sound for replay certification (trace.VerifyCycles) because pmu
//     imposes a total order on admissions and their grant events.
//
// Lifecycle transitions — begin, commit, abort cascades, stall
// victimization — take the state lock exclusively, stopping the world;
// the operation path holds it shared. That makes every Begin /
// CanCommit / Commit / Abort protocol call globally serialized (the
// ShardSafe contract) and lets cascades roll back effects without
// interference.
//
// Waiting and waking are targeted to fix the seed's thundering herd
// (every state change woke every sleeper):
//
//   - A worker blocked by a shard-safe protocol sleeps on its object's
//     shard cond. Commits broadcast only the shards their program
//     touched — an S2PL waiter always waits on an object in its
//     holder's program, so the holder's commit reaches it. Grants wake
//     nobody (acquiring a lock cannot unblock a different waiter).
//   - Workers blocked under pmu, and commit-waiters (dirty-read
//     dependencies, CanCommit), sleep on the global cond; commits and
//     non-shard-safe grants broadcast it.
//   - Aborts and cascades are rare and broadcast everything.
//
// Stall detection is symmetric flag-and-check on two atomics: a worker
// about to sleep that would leave every active instance's worker asleep
// (sleepers >= activeCount) instead victimizes itself, and a committer
// that leaves the remaining workers all asleep floods every cond so one
// of them detects the stall. Both counters are seq-cst atomics, so the
// last transition into an all-asleep state is always observed by its
// own check.
//
// Lock order: state.RLock -> pmu -> shard.mu -> {depMu, walMu};
// pmu -> commitMu; state.Lock -> {shard.mu, commitMu, walMu}. The
// leaf mutexes (depMu, walMu, commitMu, shard.mu) are never nested
// with one another.
//
// Concurrent runs are not reproducible (goroutine interleaving is the
// scheduler's); tests assert outcomes — everything commits, committed
// schedules verify, invariants hold — rather than traces.
type ConcurrentRunner struct {
	cfg    Config
	router shard.Router
	// shardSafe records whether cfg.Protocol opted into per-shard
	// admission via sched.ShardSafe.
	shardSafe bool

	// state is the world lock: the operation path holds it shared,
	// lifecycle transitions hold it exclusively. Fields below marked
	// "state" are written only under the exclusive lock (and may be read
	// under the shared lock by their owning worker).
	state sync.RWMutex
	// pmu serializes Request+execute for protocols that are not
	// shard-safe.
	pmu sync.Mutex

	shards []*driverShard

	// depMu guards the dirty-read dependency graph (dependents and
	// every instanceState.depsOn) among concurrent operation-path
	// holders; exclusive state holders access it directly.
	depMu      sync.Mutex
	dependents map[int64]map[int64]bool

	// commitMu guards registration on the global cond, where
	// commit-waiters and pmu-path blockers sleep.
	commitMu      sync.Mutex
	commitCond    *sync.Cond
	globalWaiters int

	// walMu serializes WAL appends from the operation path; append
	// errors park in walErr until a lifecycle holder folds them into
	// runErr.
	walMu  sync.Mutex
	walErr error

	nextInstance int64                    // state
	active       map[int64]*instanceState // state (map identity; entries see field docs)

	execSeq     atomic.Int64 // global execution sequence (logical clock)
	opsExecuted atomic.Int64
	blocksTotal atomic.Int64
	activeCount atomic.Int64 // len(active), readable without the state lock
	sleepers    atomic.Int64 // workers asleep on any cond (or committed to sleeping)

	// Resilience state. progress is bumped by every executed operation,
	// commit, abort and restart; the watchdog declares a wedge when it
	// stops moving. wedgeErr is the watchdog's verdict, checked by
	// pendingErr so workers unwind without the watchdog ever needing
	// the state lock. shed and lv are guarded by the exclusive state
	// lock; jit has its own mutex.
	progress       atomic.Int64
	wedgeErr       atomic.Pointer[WedgeError]
	shed           *shedder
	lv             livelock // state
	jit            *jitter
	injectedAborts atomic.Int64
	injectedDelays atomic.Int64
	deadlineAborts atomic.Int64

	latencies metrics.Stats // state
	obs       observer

	res    Result // state
	runErr error  // state
}

// driverShard is one partition of the driver's wait/dirty state. mu
// guards waiters and (on the operation path) dirty; exclusive state
// holders access dirty directly.
type driverShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiters int
	// dirty stacks uncommitted writers per object (innermost last),
	// mirroring the deterministic runner's dirtyStack but partitioned.
	dirty map[string][]int64

	blocks   *metrics.Counter   // per-shard block decisions (nil without metrics)
	waitHist *metrics.Histogram // per-shard wall-clock wait seconds (nil without metrics)
}

// NewConcurrent validates the configuration (same rules as New) and
// prepares a concurrent runner with cfg.Shards driver shards.
func NewConcurrent(cfg Config) (*ConcurrentRunner, error) {
	probe, err := New(cfg) // reuse validation and defaulting
	if err != nil {
		return nil, err
	}
	cfg = probe.cfg
	router := shard.NewRouter(cfg.Shards)
	r := &ConcurrentRunner{
		cfg:        cfg,
		router:     router,
		shardSafe:  sched.IsShardSafe(cfg.Protocol),
		active:     make(map[int64]*instanceState),
		dependents: make(map[int64]map[int64]bool),
		shed:       newShedder(cfg.MPL),
		jit:        newJitter(backoffSeed(&cfg)),
	}
	r.commitCond = sync.NewCond(&r.commitMu)
	r.obs = newObserver(&cfg)
	r.obs.initShardInstruments(cfg.Metrics, router.Shards())
	r.shards = make([]*driverShard, router.Shards())
	for i := range r.shards {
		sh := &driverShard{dirty: make(map[string][]int64)}
		sh.cond = sync.NewCond(&sh.mu)
		if r.obs.shardBlocks != nil {
			sh.blocks = r.obs.shardBlocks[i]
			sh.waitHist = r.obs.shardWait[i]
		}
		r.shards[i] = sh
	}
	r.res.Protocol = cfg.Protocol.Name()
	r.res.oracle = cfg.Oracle
	return r, nil
}

// Run executes all programs to commit, running up to MPL transaction
// workers concurrently, and returns the aggregated result.
func (r *ConcurrentRunner) Run() (*Result, error) {
	if wd := r.cfg.Watchdog; wd >= 0 {
		if wd == 0 {
			wd = defaultWatchdog
		}
		stop := r.startWatchdog(wd)
		defer stop()
	}
	// work is never closed: each program has at most one pendingProgram
	// in flight, so the buffer always has room and requeues never block.
	// Shutdown is signaled on done instead — closing work would race
	// with a concurrent requeue (send on closed channel) when one worker
	// errors out while another is restarting a program.
	work := make(chan *pendingProgram, len(r.cfg.Programs))
	for _, p := range r.cfg.Programs {
		work <- &pendingProgram{program: p}
	}
	done := make(chan struct{})
	var closeOnce sync.Once
	shutdown := func() { closeOnce.Do(func() { close(done) }) }
	var wg sync.WaitGroup
	workers := r.cfg.MPL
	if workers > len(r.cfg.Programs) {
		workers = len(r.cfg.Programs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var pp *pendingProgram
				select {
				case <-done:
					return
				case pp = <-work:
				}
				requeue, err := r.runProgram(pp)
				if err != nil {
					r.fail(err)
					shutdown()
					return
				}
				if requeue {
					select {
					case work <- pp:
					case <-done:
						return
					}
					continue
				}
				r.state.RLock()
				finished := r.res.Committed == len(r.cfg.Programs) || r.runErr != nil
				r.state.RUnlock()
				if finished {
					shutdown()
					return
				}
			}
		}()
	}
	wg.Wait()
	r.state.Lock()
	defer r.state.Unlock()
	r.foldWALErrLocked()
	if r.runErr != nil {
		return nil, r.runErr
	}
	if r.res.Committed != len(r.cfg.Programs) {
		return nil, fmt.Errorf("txn: concurrent run finished with %d of %d programs committed", r.res.Committed, len(r.cfg.Programs))
	}
	r.res.OpsExecuted = int(r.opsExecuted.Load())
	r.res.Blocks = int(r.blocksTotal.Load())
	r.res.InjectedAborts = int(r.injectedAborts.Load())
	r.res.InjectedDelays = int(r.injectedDelays.Load())
	r.res.DeadlineAborts = int(r.deadlineAborts.Load())
	r.res.LoadSheds = r.shed.sheds
	r.res.MinEffectiveMPL = r.shed.minEff
	r.res.LivelockEscalations = r.lv.escalations
	r.res.LatencyMean = r.latencies.Mean()
	r.res.LatencyP95 = r.latencies.Percentile(95)
	sort.Slice(r.res.Trace, func(i, j int) bool { return r.res.Trace[i].Order < r.res.Trace[j].Order })
	return &r.res, nil
}

// logWAL appends a record from the operation path. Errors park in
// walErr (surfaced by the next lifecycle holder) so the hot path never
// needs the exclusive state lock.
func (r *ConcurrentRunner) logWAL(rec storage.WALRecord) {
	if r.cfg.WAL == nil {
		return
	}
	r.walMu.Lock()
	if err := r.cfg.WAL.Append(rec); err != nil && r.walErr == nil {
		r.walErr = fmt.Errorf("txn: WAL append failed: %w", err)
	}
	r.walMu.Unlock()
}

// logWALLocked appends a record while holding the exclusive state lock,
// surfacing append errors as run failures.
func (r *ConcurrentRunner) logWALLocked(rec storage.WALRecord) {
	if r.cfg.WAL == nil {
		return
	}
	r.walMu.Lock()
	err := r.cfg.WAL.Append(rec)
	r.walMu.Unlock()
	if err != nil && r.runErr == nil {
		r.runErr = fmt.Errorf("txn: WAL append failed: %w", err)
	}
}

// foldWALErrLocked promotes a parked operation-path WAL error — or the
// watchdog's wedge verdict — into runErr. Requires the exclusive state
// lock.
func (r *ConcurrentRunner) foldWALErrLocked() {
	r.walMu.Lock()
	we := r.walErr
	r.walMu.Unlock()
	if we != nil && r.runErr == nil {
		r.runErr = we
	}
	if wedge := r.wedgeErr.Load(); wedge != nil && r.runErr == nil {
		r.runErr = wedge
	}
}

// pendingErr reports a failure visible from the shared state lock:
// runErr, a watchdog wedge verdict, or a parked WAL error not yet
// folded.
func (r *ConcurrentRunner) pendingErr() error {
	if r.runErr != nil {
		return r.runErr
	}
	if wedge := r.wedgeErr.Load(); wedge != nil {
		return wedge
	}
	r.walMu.Lock()
	defer r.walMu.Unlock()
	return r.walErr
}

func (r *ConcurrentRunner) fail(err error) {
	r.state.Lock()
	if r.runErr == nil {
		r.runErr = err
	}
	r.state.Unlock()
	r.wakeAll()
}

// runProgram executes one incarnation of a program. It returns
// requeue=true when the instance aborted and the program must retry.
func (r *ConcurrentRunner) runProgram(pp *pendingProgram) (bool, error) {
	r.state.Lock()
	for {
		r.foldWALErrLocked()
		if err := r.runErr; err != nil {
			r.state.Unlock()
			return false, err
		}
		// Admission control: when the shedder has degraded the effective
		// MPL below the worker count, surplus workers idle here until the
		// storm clears. The limit is never below 1, so instances already
		// admitted always drain.
		if r.activeCount.Load() < int64(r.shed.limit()) {
			break
		}
		r.state.Unlock()
		time.Sleep(100 * time.Microsecond)
		r.state.Lock()
	}
	r.nextInstance++
	st := &instanceState{
		id:           r.nextInstance,
		program:      pp.program,
		reads:        make(map[int]storage.Value),
		depsOn:       make(map[int64]bool),
		writes:       make(map[string]storage.Value),
		restarts:     pp.restarts,
		startClock:   r.execSeq.Load(),
		blockedSince: -1,
	}
	r.active[st.id] = st
	r.activeCount.Add(1)
	r.cfg.Protocol.Begin(st.id, st.program)
	r.logWALLocked(storage.WALRecord{Kind: storage.WALBegin, Instance: st.id})
	r.obs.begin(st, r.execSeq.Load())
	r.state.Unlock()

	for {
		r.state.RLock()
		if err := r.pendingErr(); err != nil {
			r.state.RUnlock()
			return false, err // another worker already failed the run
		}
		if st.doomed.Load() {
			// A cascade initiated by another worker aborted us; the
			// initiator already rolled back our effects and released
			// protocol state.
			st.doomed.Store(false)
			r.state.RUnlock()
			return r.noteRestart(pp, st)
		}
		if st.done {
			r.state.RUnlock()
			committed, aborted, err := r.tryFinish(st)
			if err != nil {
				return false, err
			}
			if committed {
				return false, nil
			}
			if aborted {
				return r.noteRestart(pp, st)
			}
			continue
		}
		if dl := r.cfg.Deadline; dl > 0 && r.execSeq.Load()-st.startClock > dl {
			r.deadlineAborts.Add(1)
			r.obs.deadlineAbort()
			r.state.RUnlock()
			r.victimize(st, "deadline")
			return r.noteRestart(pp, st)
		}
		if r.cfg.Faults.Fire(fault.TxnForcedAbort) {
			r.injectedAborts.Add(1)
			r.obs.fault(fault.TxnForcedAbort, st.id, r.execSeq.Load())
			r.state.RUnlock()
			r.victimize(st, "injected")
			return r.noteRestart(pp, st)
		}
		if r.cfg.Faults.Fire(fault.SchedGrantDelay) {
			// The scheduler "loses" this worker's turn for a beat.
			r.injectedDelays.Add(1)
			r.obs.fault(fault.SchedGrantDelay, st.id, r.execSeq.Load())
			r.state.RUnlock()
			time.Sleep(r.cfg.Faults.Latency(fault.SchedGrantDelay))
			continue
		}
		op := st.program.Op(st.next)
		req := sched.OpRequest{Instance: st.id, Program: st.program, Seq: st.next, Op: op}
		sh := r.shards[r.router.Shard(op.Object)]
		var dec sched.Decision
		if r.shardSafe {
			sh.mu.Lock()
			dec = r.cfg.Protocol.Request(req)
		} else {
			r.pmu.Lock()
			dec = r.cfg.Protocol.Request(req)
			if dec == sched.Grant {
				sh.mu.Lock() // for the shard's dirty stacks during execute
			}
		}
		switch dec {
		case sched.Grant:
			order, ok := r.executeSharded(st, op, sh)
			if !ok {
				sh.mu.Unlock()
				if !r.shardSafe {
					r.pmu.Unlock()
				}
				r.state.RUnlock()
				r.victimize(st, "recoverability")
				return r.noteRestart(pp, st)
			}
			// Emit the grant before releasing the shard (and pmu) so
			// trace order matches same-object execution order.
			r.obs.grant(st, op, order, order)
			sh.mu.Unlock()
			if r.shardSafe {
				r.state.RUnlock()
				// Shard-safe grants wake nobody: acquiring a lock or
				// passing a timestamp check cannot unblock a waiter.
			} else {
				r.pmu.Unlock()
				r.state.RUnlock()
				// Sequential protocols may change wait state on a grant
				// (altruistic donation); their blockers sleep globally.
				r.broadcastGlobal()
			}
		case sched.Block:
			r.blocksTotal.Add(1)
			if sh.blocks != nil {
				sh.blocks.Inc()
			}
			r.obs.block(st, op, r.execSeq.Load())
			var slept bool
			if r.shardSafe {
				slept = r.sleepShard(sh)
			} else {
				slept = r.sleepGlobal()
			}
			if !slept {
				// Parking would leave every active worker asleep (a stall
				// the protocol cannot see): become the victim. The sleep
				// helper released its registration locks; we still hold
				// the shared state lock.
				r.state.RUnlock()
				r.victimize(st, "stall")
				return r.noteRestart(pp, st)
			}
			// Woken (the helper released the shared state lock before
			// sleeping); re-enter the loop and retry the same operation.
		case sched.Abort:
			r.obs.abortDecision(st, op, r.execSeq.Load())
			if r.shardSafe {
				sh.mu.Unlock()
			} else {
				r.pmu.Unlock()
			}
			r.state.RUnlock()
			r.victimize(st, "protocol")
			return r.noteRestart(pp, st)
		}
	}
}

// tryFinish attempts to commit a finished instance under the exclusive
// state lock; if dependencies or the protocol veto, the worker parks on
// the global cond until a commit or abort changes that state.
func (r *ConcurrentRunner) tryFinish(st *instanceState) (committed, aborted bool, err error) {
	r.state.Lock()
	r.foldWALErrLocked()
	if r.runErr != nil {
		err = r.runErr
		r.state.Unlock()
		return false, false, err
	}
	if st.doomed.Load() {
		st.doomed.Store(false)
		r.state.Unlock()
		return false, true, nil
	}
	if len(st.depsOn) == 0 && r.cfg.Protocol.CanCommit(st.id) {
		r.commitLocked(st)
		r.state.Unlock()
		return true, false, nil
	}
	r.res.CommitWaits++
	r.obs.commitWait()
	r.commitMu.Lock()
	if s := r.sleepers.Add(1); s >= r.activeCount.Load() {
		// Everyone else is already waiting: break the stall here.
		r.sleepers.Add(-1)
		r.commitMu.Unlock()
		r.abortCascadeLocked(st.id, "stall")
		r.state.Unlock()
		r.wakeAll()
		return false, true, nil
	}
	r.globalWaiters++
	r.state.Unlock()
	r.commitCond.Wait()
	r.globalWaiters--
	r.sleepers.Add(-1)
	r.commitMu.Unlock()
	r.obs.wakeup()
	return false, false, nil
}

// sleepShard parks the worker on sh's cond. Called with the shared
// state lock and sh.mu held. On true the worker slept and was woken;
// both locks are released. On false parking would have stalled the run;
// sh.mu is released but the shared state lock is still held and the
// caller must victimize.
//
// No wakeup can be lost: shard conds are only broadcast by exclusive
// state holders, which cannot run until this worker drops the shared
// lock — and by then waiters is registered and sh.mu pins the cond
// until Wait is entered.
//
//rsvet:locks sh.mu
func (r *ConcurrentRunner) sleepShard(sh *driverShard) bool {
	if s := r.sleepers.Add(1); s >= r.activeCount.Load() {
		r.sleepers.Add(-1)
		sh.mu.Unlock()
		return false
	}
	sh.waiters++
	start := time.Now()
	r.state.RUnlock()
	sh.cond.Wait()
	sh.waiters--
	r.sleepers.Add(-1)
	if sh.waitHist != nil {
		sh.waitHist.Observe(time.Since(start).Seconds())
	}
	sh.mu.Unlock()
	r.obs.wakeup()
	return true
}

// sleepGlobal parks the worker on the global cond. Called with the
// shared state lock and pmu held. On true the worker slept and was
// woken; pmu and the state lock are released. On false parking would
// have stalled the run; pmu is released but the shared state lock is
// still held and the caller must victimize.
//
// Registration (globalWaiters++) happens under commitMu before pmu is
// released, so a grant that could unblock this worker — which needs pmu
// for its own Request — always broadcasts after the registration.
func (r *ConcurrentRunner) sleepGlobal() bool {
	r.commitMu.Lock()
	if s := r.sleepers.Add(1); s >= r.activeCount.Load() {
		r.sleepers.Add(-1)
		r.commitMu.Unlock()
		r.pmu.Unlock()
		return false
	}
	r.globalWaiters++
	r.pmu.Unlock()
	r.state.RUnlock()
	r.commitCond.Wait()
	r.globalWaiters--
	r.sleepers.Add(-1)
	r.commitMu.Unlock()
	r.obs.wakeup()
	return true
}

// broadcastGlobal wakes the global cond's sleepers if there are any.
func (r *ConcurrentRunner) broadcastGlobal() {
	r.commitMu.Lock()
	if r.globalWaiters > 0 {
		r.obs.broadcastGlobal()
		r.commitCond.Broadcast()
	}
	r.commitMu.Unlock()
}

// wakeAll broadcasts every cond (all shards plus global). Used for
// rare events — aborts, cascades, run failure, flood fallback — where
// targeting is not worth the complexity.
func (r *ConcurrentRunner) wakeAll() {
	for _, sh := range r.shards {
		sh.mu.Lock()
		if sh.waiters > 0 {
			sh.cond.Broadcast()
		}
		sh.mu.Unlock()
	}
	r.commitMu.Lock()
	if r.globalWaiters > 0 {
		r.commitCond.Broadcast()
	}
	r.commitMu.Unlock()
}

// victimize aborts st's cascade under the exclusive state lock and
// wakes all sleepers. Handles the race where another worker's cascade
// doomed st between the caller releasing the shared lock and this
// acquiring the exclusive one.
func (r *ConcurrentRunner) victimize(st *instanceState, reason string) {
	r.state.Lock()
	if reason == "recoverability" {
		r.res.RecoverabilityAborts++
		r.obs.recoverabilityAbort()
	}
	if st.doomed.Load() {
		// Someone else already aborted us (and woke everyone).
		st.doomed.Store(false)
		r.state.Unlock()
		return
	}
	r.abortCascadeLocked(st.id, reason)
	r.state.Unlock()
	r.wakeAll()
}

// noteRestart records restart bookkeeping after an abort and tells the
// worker loop to requeue the program.
func (r *ConcurrentRunner) noteRestart(pp *pendingProgram, st *instanceState) (bool, error) {
	r.state.Lock()
	pp.restarts = st.restarts + 1
	if pp.restarts > r.cfg.MaxRestarts {
		err := fmt.Errorf("txn: program T%d exceeded %d restarts", st.program.ID, r.cfg.MaxRestarts)
		if r.runErr == nil {
			r.runErr = err
		}
		r.state.Unlock()
		return false, err
	}
	r.res.Restarts++
	r.obs.restart()
	r.progress.Add(1)
	level := r.lv.level
	r.state.Unlock()
	// Yield before the retry. Without this, a single-CPU scheduler can
	// livelock an abort: the victim's worker keeps the processor,
	// reincarnates the program, re-acquires the locks its abort just
	// freed before the woken waiters ever get scheduled, and recreates
	// the same deadlock — repeatedly, until MaxRestarts trips. Yielding
	// lets the waiters this abort unblocked run first.
	//
	// Once the livelock detector has escalated, yielding alone is not
	// spreading contenders enough: add capped, jittered wall-clock
	// backoff from the dedicated seeded stream.
	r.jit.sleep(pp.restarts, level)
	runtime.Gosched()
	return true, nil
}

// executeSharded mirrors Runner.execute on the sharded hot path.
// Called with the shared state lock and sh.mu held (sh is the target
// object's shard, so its dirty stacks are stable); non-shard-safe
// callers additionally hold pmu. Returns the operation's execution
// order and false if executing would create an unrecoverable
// read-from cycle.
//
//rsvet:locks sh.mu
func (r *ConcurrentRunner) executeSharded(st *instanceState, op core.Op, sh *driverShard) (int64, bool) {
	if w, dirty := topDirty(sh, op.Object); dirty && w != st.id && r.depPath(w, st.id) {
		return 0, false
	}
	if in := r.cfg.Faults; in.Active(fault.ShardStall) || in.Active(fault.ShardWedge) {
		// Both fire while holding the shard's mutex — a stalled or
		// wedged worker realistically blocks its same-shard neighbors. A
		// wedge parks until the injector is released, which only the
		// watchdog does: without one, a rate-1 wedge hangs the run, which
		// is exactly the failure mode the watchdog exists to surface.
		//rsvet:allow stripelock -- stall must block same-shard neighbors to be realistic
		if in.Fire(fault.ShardStall) {
			time.Sleep(in.Latency(fault.ShardStall))
		}
		//rsvet:allow stripelock -- wedge parks under sh.mu so the watchdog has something to detect
		if in.Fire(fault.ShardWedge) {
			//rsvet:allow stripelock
			in.Wedge()
		}
	}
	r.opsExecuted.Add(1)
	r.progress.Add(1)
	if op.Kind == core.ReadOp {
		v := r.cfg.Store.Read(op.Object)
		st.reads[op.Seq] = v.Value
		if w, dirty := topDirty(sh, op.Object); dirty && w != st.id {
			r.addDep(st, w)
		}
	} else {
		v := r.cfg.Semantics.WriteValue(st.program, op.Seq, st.reads)
		if w, dirty := topDirty(sh, op.Object); dirty && w != st.id {
			r.addDep(st, w)
		}
		st.undo.WriteLogged(r.cfg.Store, op.Object, v)
		st.writes[op.Object] = v
		sh.dirty[op.Object] = append(sh.dirty[op.Object], st.id)
		r.logWAL(storage.WALRecord{Kind: storage.WALWrite, Instance: st.id, Object: op.Object, Value: v})
	}
	order := r.execSeq.Add(1)
	st.events = append(st.events, Event{Instance: st.id, Program: st.program, Op: op, Order: order})
	st.next++
	if st.next == st.program.Len() {
		st.done = true
	}
	return order, true
}

func (r *ConcurrentRunner) commitLocked(st *instanceState) {
	r.progress.Add(1)
	r.lv.noteCommit()
	prevLim := r.shed.limit()
	if lim, changed := r.shed.observe(true); changed {
		r.obs.shed(lim, r.cfg.MPL, lim < prevLim, r.execSeq.Load())
	}
	r.cfg.Protocol.Commit(st.id)
	r.logWALLocked(storage.WALRecord{Kind: storage.WALCommit, Instance: st.id})
	st.undo.Discard()
	for obj := range st.writes {
		r.removeDirtyLocked(obj, st.id)
	}
	for dep := range r.dependents[st.id] {
		if d, ok := r.active[dep]; ok {
			delete(d.depsOn, st.id)
		}
	}
	delete(r.dependents, st.id)
	delete(r.active, st.id)
	r.activeCount.Add(-1)
	r.res.Committed++
	now := r.execSeq.Load()
	r.obs.commit(st, now)
	r.latencies.Add(float64(now - st.startClock))
	r.res.Spans = append(r.res.Spans, Span{Instance: st.id, Program: int(st.program.ID), Start: st.startClock, End: now, CommitSeq: now})
	r.res.Trace = append(r.res.Trace, st.events...)
	r.res.Programs = append(r.res.Programs, st.program)
	if r.cfg.History != nil {
		r.cfg.History.Append(storage.Commit{Instance: st.id, Writes: st.writes})
	}
	r.wakeAfterCommitLocked(st)
}

// wakeAfterCommitLocked wakes exactly the sleepers a commit can
// unblock: the shards of the committed program's objects (lock waiters
// there may now acquire) and the global cond (commit-waiters and
// pmu-path blockers). An S2PL-style waiter always sleeps on the shard
// of an object its blocker holds, and every held object is in the
// holder's program, so the targeted broadcast reaches it.
//
// Safety net: if the remaining active workers are all asleep after the
// targeted wakeups were chosen, flood everything so one of them runs
// the stall check. Requires the exclusive state lock.
func (r *ConcurrentRunner) wakeAfterCommitLocked(st *instanceState) {
	var woken [shard.MaxShards]bool
	for i := 0; i < st.program.Len(); i++ {
		s := r.router.Shard(st.program.Op(i).Object)
		if woken[s] {
			continue
		}
		woken[s] = true
		sh := r.shards[s]
		sh.mu.Lock()
		if sh.waiters > 0 {
			r.obs.broadcastShard()
			sh.cond.Broadcast()
		}
		sh.mu.Unlock()
	}
	r.commitMu.Lock()
	if r.globalWaiters > 0 {
		r.obs.broadcastGlobal()
		r.commitCond.Broadcast()
	}
	r.commitMu.Unlock()
	if ac := r.activeCount.Load(); ac > 0 && r.sleepers.Load() >= ac {
		r.obs.broadcastFlood()
		r.wakeAll()
	}
}

// abortCascadeLocked aborts the instance and every live dependent,
// rolling all their effects back together; co-victims running on other
// goroutines are marked doomed and clean themselves up on next wake.
// Requires the exclusive state lock; the caller broadcasts afterwards.
func (r *ConcurrentRunner) abortCascadeLocked(id int64, reason string) {
	victims := map[int64]bool{}
	var collect func(v int64)
	collect = func(v int64) {
		if victims[v] {
			return
		}
		if _, ok := r.active[v]; !ok {
			return
		}
		victims[v] = true
		for dep := range r.dependents[v] {
			collect(dep)
		}
	}
	collect(id)
	ordered := make([]int64, 0, len(victims))
	for v := range victims {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	logs := make([]*storage.UndoLog, 0, len(ordered))
	for _, v := range ordered {
		logs = append(logs, &r.active[v].undo)
	}
	storage.RollbackSet(r.cfg.Store, logs)
	now := r.execSeq.Load()
	for _, v := range ordered {
		st := r.active[v]
		r.cfg.Protocol.Abort(v)
		r.logWALLocked(storage.WALRecord{Kind: storage.WALAbort, Instance: v})
		r.obs.txnAbort(st, reason, now)
		for obj := range st.writes {
			r.removeDirtyLocked(obj, v)
		}
		for dep := range r.dependents[v] {
			if d, ok := r.active[dep]; ok {
				delete(d.depsOn, v)
			}
		}
		delete(r.dependents, v)
		for on := range st.depsOn {
			if deps := r.dependents[on]; deps != nil {
				delete(deps, v)
			}
		}
		delete(r.active, v)
		r.activeCount.Add(-1)
		r.res.Aborts++
		r.progress.Add(1)
		prevLim := r.shed.limit()
		if lim, changed := r.shed.observe(false); changed {
			r.obs.shed(lim, r.cfg.MPL, lim < prevLim, now)
		}
		if level, escalated := r.lv.noteRestart(); escalated {
			r.obs.livelockEscalation(level, now)
		}
		if v != id {
			st.doomed.Store(true)
		}
	}
}

// addDep records a dirty-read dependency from the operation path.
func (r *ConcurrentRunner) addDep(st *instanceState, on int64) {
	r.depMu.Lock()
	defer r.depMu.Unlock()
	if st.depsOn[on] {
		return
	}
	st.depsOn[on] = true
	deps := r.dependents[on]
	if deps == nil {
		deps = make(map[int64]bool)
		r.dependents[on] = deps
	}
	deps[st.id] = true
}

// depPath reports whether the dependency graph has a path from -> to.
// Takes depMu; the active map itself is stable under the caller's
// shared state lock.
func (r *ConcurrentRunner) depPath(from, to int64) bool {
	r.depMu.Lock()
	defer r.depMu.Unlock()
	seen := map[int64]bool{}
	stack := []int64{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == to {
			return true
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		if inst, ok := r.active[v]; ok {
			for d := range inst.depsOn {
				stack = append(stack, d)
			}
		}
	}
	return false
}

// topDirty returns the innermost uncommitted writer of object on sh.
// Caller holds sh.mu (operation path) or the exclusive state lock.
func topDirty(sh *driverShard, object string) (int64, bool) {
	stack := sh.dirty[object]
	if len(stack) == 0 {
		return 0, false
	}
	return stack[len(stack)-1], true
}

// removeDirtyLocked drops id from object's dirty stack. Requires the
// exclusive state lock (commit and cascade paths only).
func (r *ConcurrentRunner) removeDirtyLocked(object string, id int64) {
	sh := r.shards[r.router.Shard(object)]
	stack := sh.dirty[object]
	out := stack[:0]
	for _, w := range stack {
		if w != id {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		delete(sh.dirty, object)
	} else {
		sh.dirty[object] = out
	}
}
