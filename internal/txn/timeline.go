package txn

import (
	"fmt"
	"sort"
	"strings"
)

// Span records one committed instance's lifetime in the runner's
// logical clock (ticks for the deterministic driver, executed
// operations for the concurrent driver).
type Span struct {
	Instance int64
	Program  int // transaction ID of the program
	Start    int64
	End      int64
	// CommitSeq is the commit moment on the execution-order clock of
	// Event.Order (the op counter), comparable with event orders; the
	// recovery-property certifier uses it.
	CommitSeq int64
}

// Timeline renders the committed instances' lifetimes as an ASCII
// chart, one row per instance in commit order, scaled to the given
// width. It makes the concurrency structure of a run visible at a
// glance: overlapping bars are transactions in flight together.
func (res *Result) Timeline(width int) string {
	if len(res.Spans) == 0 {
		return "(no committed instances)\n"
	}
	if width < 10 {
		width = 10
	}
	spans := append([]Span(nil), res.Spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var maxEnd int64
	for _, sp := range spans {
		if sp.End > maxEnd {
			maxEnd = sp.End
		}
	}
	if maxEnd == 0 {
		maxEnd = 1
	}
	scale := func(t int64) int {
		p := int(t * int64(width-1) / maxEnd)
		if p >= width {
			p = width - 1
		}
		return p
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline (logical clock 0..%d, %s runs)\n", maxEnd, res.Protocol)
	for _, sp := range spans {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		a, b := scale(sp.Start), scale(sp.End)
		for i := a; i <= b && i < width; i++ {
			row[i] = '='
		}
		if a < width {
			row[a] = '|'
		}
		if b < width {
			row[b] = '>'
		}
		fmt.Fprintf(&sb, "T%-3d %s\n", sp.Program, row)
	}
	return sb.String()
}
