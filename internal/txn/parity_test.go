package txn_test

// Parity corpus: the deterministic tick driver and the concurrent
// goroutine driver are two loops over the same engine pipeline, so on
// any workload both must (a) commit every program, (b) produce a
// committed schedule that certifies relatively serializable under the
// same oracle, and (c) leave behind a WAL whose recovery replays
// exactly the committed transactions onto an invariant-clean store
// matching the live one. The schedules themselves legitimately differ
// (the drivers interleave differently); the verdicts must not.

import (
	"bytes"
	"fmt"
	"testing"

	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

// parityScenario is one cell of the corpus: a workload builder plus a
// protocol factory bound to its oracle.
type parityScenario struct {
	name  string
	build func(seed int64) (*workload.Workload, error)
	proto func(w *workload.Workload) sched.Protocol
}

func parityCorpus() []parityScenario {
	return []parityScenario{
		{
			name: "banking-rsgt",
			build: func(seed int64) (*workload.Workload, error) {
				return workload.Banking(workload.DefaultBankingConfig(), seed)
			},
			proto: func(w *workload.Workload) sched.Protocol { return sched.NewRSGT(w.Oracle) },
		},
		{
			name: "banking-s2pl",
			build: func(seed int64) (*workload.Workload, error) {
				return workload.Banking(workload.DefaultBankingConfig(), seed)
			},
			proto: func(w *workload.Workload) sched.Protocol { return sched.NewS2PL() },
		},
		{
			name: "cadcam-rsgt",
			build: func(seed int64) (*workload.Workload, error) {
				return workload.CADCAM(workload.DefaultCADCAMConfig(), seed)
			},
			proto: func(w *workload.Workload) sched.Protocol { return sched.NewRSGT(w.Oracle) },
		},
		{
			name: "synthetic-rsgt",
			build: func(seed int64) (*workload.Workload, error) {
				return workload.Synthetic(workload.DefaultSyntheticConfig(), seed)
			},
			proto: func(w *workload.Workload) sched.Protocol { return sched.NewRSGT(w.Oracle) },
		},
	}
}

// parityRun executes one driver over the scenario and returns its
// verdicts: the run result, the recovery report of its WAL, and the
// recovered snapshot (which must match the live store).
func parityRun(t *testing.T, sc parityScenario, seed int64, concurrent bool) (*txn.Result, *storage.RecoveryReport) {
	t.Helper()
	w, err := sc.build(seed)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	res, store, err := w.RunWith(sc.proto(w), workload.RunOptions{
		Seed:       seed,
		MPL:        8,
		WAL:        storage.NewWAL(&logBuf),
		Concurrent: concurrent,
		Shards:     4,
	})
	if err != nil {
		t.Fatalf("concurrent=%v: %v", concurrent, err)
	}
	if res.Committed != len(w.Programs) {
		t.Fatalf("concurrent=%v: committed %d of %d programs", concurrent, res.Committed, len(w.Programs))
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("concurrent=%v: certification verdict: %v", concurrent, err)
	}
	recovered, report, err := storage.Recover(bytes.NewReader(logBuf.Bytes()), w.Initial)
	if err != nil {
		t.Fatalf("concurrent=%v: recovery: %v", concurrent, err)
	}
	live := store.Snapshot()
	for obj, v := range recovered.Snapshot() {
		if live[obj] != v {
			t.Fatalf("concurrent=%v: recovered %s=%d, live %d", concurrent, obj, v, live[obj])
		}
	}
	if w.Invariant != nil {
		if err := w.Invariant(recovered.Snapshot()); err != nil {
			t.Fatalf("concurrent=%v: recovered store breaks invariant: %v", concurrent, err)
		}
	}
	return res, report
}

func TestSerialConcurrentParity(t *testing.T) {
	for _, sc := range parityCorpus() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", sc.name, seed), func(t *testing.T) {
				serialRes, serialRep := parityRun(t, sc, seed, false)
				concRes, concRep := parityRun(t, sc, seed, true)

				// Identical certification verdicts are asserted inside
				// parityRun (both certify); completeness must also agree.
				if serialRes.Committed != concRes.Committed {
					t.Errorf("committed diverge: serial %d, concurrent %d", serialRes.Committed, concRes.Committed)
				}
				// Equivalent recovery reports: the same transactions reach
				// the log's commit records, none are left unfinished, and
				// nothing in either log is unreadable.
				if serialRep.Committed != concRep.Committed {
					t.Errorf("recovered commits diverge: serial %d, concurrent %d", serialRep.Committed, concRep.Committed)
				}
				for _, rep := range []*storage.RecoveryReport{serialRep, concRep} {
					if rep.Committed != serialRes.Committed {
						t.Errorf("recovery found %d commits, run reported %d", rep.Committed, serialRes.Committed)
					}
					if rep.Unfinished != 0 || rep.Orphans != 0 {
						t.Errorf("recovery not clean: %s", rep)
					}
				}
			})
		}
	}
}

// TestSerialReplayDeterminism pins the deterministic driver's contract
// the parity corpus relies on: the same seed replays the same run.
func TestSerialReplayDeterminism(t *testing.T) {
	sc := parityCorpus()[0]
	a, _ := parityRun(t, sc, 42, false)
	b, _ := parityRun(t, sc, 42, false)
	if a.Ticks != b.Ticks || a.Committed != b.Committed || a.Aborts != b.Aborts || len(a.Trace) != len(b.Trace) {
		t.Fatalf("replay diverged: %v vs %v", a, b)
	}
}
