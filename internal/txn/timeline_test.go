package txn_test

import (
	"strings"
	"testing"

	"relser/internal/txn"
)

// barColumns returns the chart columns a timeline row's bar occupies
// (its "T%-3d " prefix is 5 characters wide).
func barColumns(t *testing.T, line string, width int) (lo, hi int) {
	t.Helper()
	const prefix = 5
	if len(line) != prefix+width {
		t.Fatalf("row %q has length %d, want %d", line, len(line), prefix+width)
	}
	lo, hi = -1, -1
	for i := prefix; i < len(line); i++ {
		switch line[i] {
		case '=', '|', '>':
			if lo == -1 {
				lo = i - prefix
			}
			hi = i - prefix
		case '.':
		default:
			t.Fatalf("row %q has unexpected byte %q", line, line[i])
		}
	}
	if lo == -1 {
		t.Fatalf("row %q has no bar", line)
	}
	return lo, hi
}

func TestTimelineTruncatesNarrowWidths(t *testing.T) {
	res := &txn.Result{
		Protocol: "test",
		Spans: []txn.Span{
			{Instance: 1, Program: 1, Start: 0, End: 1_000_000},
			{Instance: 2, Program: 2, Start: 999_999, End: 1_000_000},
		},
	}
	// Widths below the floor clamp to 10 columns; huge clocks must
	// still land inside the chart.
	for _, width := range []int{-5, 0, 3, 9} {
		out := res.Timeline(width)
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		if len(lines) != 3 {
			t.Fatalf("Timeline(%d) = %d lines, want header + 2 rows:\n%s", width, len(lines), out)
		}
		for _, row := range lines[1:] {
			barColumns(t, row, 10)
		}
	}
	// A requested width above the floor is honored exactly.
	out := res.Timeline(24)
	for _, row := range strings.Split(strings.TrimRight(out, "\n"), "\n")[1:] {
		lo, hi := barColumns(t, row, 24)
		if lo < 0 || hi > 23 {
			t.Errorf("bar [%d,%d] escapes width 24:\n%s", lo, hi, out)
		}
	}
}

func TestTimelineInterleaving(t *testing.T) {
	// Width 41 with maxEnd 40 makes the scale identity: clock t maps
	// to column t, so overlap in the chart equals overlap in time.
	res := &txn.Result{
		Protocol: "test",
		Spans: []txn.Span{
			{Instance: 3, Program: 3, Start: 35, End: 40},
			{Instance: 1, Program: 1, Start: 0, End: 30},
			{Instance: 2, Program: 2, Start: 10, End: 20},
		},
	}
	out := res.Timeline(41)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(lines), out)
	}
	// Rows appear in start order regardless of Spans order.
	for i, wantPrefix := range []string{"T1", "T2", "T3"} {
		if !strings.HasPrefix(lines[i+1], wantPrefix) {
			t.Fatalf("row %d = %q, want prefix %q:\n%s", i, lines[i+1], wantPrefix, out)
		}
	}
	lo1, hi1 := barColumns(t, lines[1], 41)
	lo2, hi2 := barColumns(t, lines[2], 41)
	lo3, hi3 := barColumns(t, lines[3], 41)
	if lo1 != 0 || hi1 != 30 {
		t.Errorf("T1 bar [%d,%d], want [0,30]", lo1, hi1)
	}
	if lo2 != 10 || hi2 != 20 {
		t.Errorf("T2 bar [%d,%d], want [10,20]", lo2, hi2)
	}
	if lo3 != 35 || hi3 != 40 {
		t.Errorf("T3 bar [%d,%d], want [35,40]", lo3, hi3)
	}
	// T2 ran entirely inside T1's lifetime; T3 ran after both.
	if !(lo2 >= lo1 && hi2 <= hi1) {
		t.Errorf("T2 [%d,%d] not nested in T1 [%d,%d]", lo2, hi2, lo1, hi1)
	}
	if lo3 <= hi1 || lo3 <= hi2 {
		t.Errorf("T3 [%d,%d] overlaps earlier spans", lo3, hi3)
	}
	// Start and end markers frame each bar.
	if lines[2][5+lo2] != '|' || lines[2][5+hi2] != '>' {
		t.Errorf("T2 bar not framed by | and >: %q", lines[2])
	}
}
