package txn_test

// Tests for the sharded concurrent driver: every protocol under a
// striped hot path, the targeted wake policy (thundering-herd fix)
// observed through the contention counters, cross-shard atomic units
// certified against the offline theory, and traced sharded runs
// replayed through trace.VerifyCycles.

import (
	"fmt"
	"runtime"
	"testing"

	"relser/internal/core"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/shard"
	"relser/internal/storage"
	"relser/internal/trace"
	"relser/internal/txn"
	"relser/internal/workload"
)

// TestShardedWorkloadsAllProtocols runs the banking and long-lived
// workloads with an 8-way sharded driver under every registered
// protocol that guarantees (relative) serializability, certifying each
// committed schedule offline.
func TestShardedWorkloadsAllProtocols(t *testing.T) {
	mks := []struct {
		name string
		make func(seed int64) (*workload.Workload, error)
	}{
		{"banking", func(seed int64) (*workload.Workload, error) {
			return workload.Banking(workload.DefaultBankingConfig(), seed)
		}},
		{"longlived", func(seed int64) (*workload.Workload, error) {
			return workload.LongLived(workload.DefaultLongLivedConfig(), seed)
		}},
	}
	protos := []string{"s2pl", "to", "sgt", "rsgt", "altruistic"}
	for _, m := range mks {
		for _, proto := range protos {
			t.Run(m.name+"/"+proto, func(t *testing.T) {
				w, err := m.make(7)
				if err != nil {
					t.Fatal(err)
				}
				p, err := sched.NewProtocolSharded(proto, w.Oracle, 8)
				if err != nil {
					t.Fatal(err)
				}
				store := storage.NewStore()
				store.Load(w.Initial)
				r, err := txn.NewConcurrent(txn.Config{
					Protocol:  p,
					Programs:  w.Programs,
					Oracle:    w.Oracle,
					Store:     store,
					Semantics: w.Semantics,
					MPL:       6,
					Shards:    8,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := r.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.Committed != len(w.Programs) {
					t.Fatalf("committed %d of %d", res.Committed, len(w.Programs))
				}
				if err := res.Verify(); err != nil {
					t.Errorf("verification: %v", err)
				}
				if w.Invariant != nil {
					if err := w.Invariant(store.Snapshot()); err != nil {
						t.Errorf("invariant: %v", err)
					}
				}
			})
		}
	}
}

// TestShardedDisjointObjectsStayQuiet is the thundering-herd check for
// the conflict-free case: programs touching disjoint objects under a
// sharded shard-safe protocol never block, so the driver must never
// wake or broadcast anything — the grant path is silent.
func TestShardedDisjointObjectsStayQuiet(t *testing.T) {
	var progs []*core.Transaction
	for i := 1; i <= 16; i++ {
		var ops []core.Op
		for k := 0; k < 4; k++ {
			obj := fmt.Sprintf("p%d.%d", i, k)
			ops = append(ops, core.W(obj), core.R(obj))
		}
		progs = append(progs, core.T(core.TxnID(i), ops...))
	}
	reg := metrics.NewRegistry()
	r, err := txn.NewConcurrent(txn.Config{
		Protocol: sched.NewS2PLSharded(8),
		Programs: progs,
		MPL:      8,
		Shards:   8,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != len(progs) || res.Blocks != 0 {
		t.Fatalf("result %s", res)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"txn.wakeups", "txn.cond.broadcast_shard", "txn.cond.broadcast_flood"} {
		if v := snap.Counters[name]; v != 0 {
			t.Errorf("%s = %d on a conflict-free workload", name, v)
		}
	}
}

// TestShardedHotSpotBlocksOnOneShard pins the targeted wake policy's
// premise: when every conflict is on one object, all lock waits land on
// that object's shard and no other shard's contention counter moves.
func TestShardedHotSpotBlocksOnOneShard(t *testing.T) {
	// On a single-processor host workers tend to run whole programs
	// between preemptions and never contend; extra Ps force real
	// time-slicing so the blocking path actually executes.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const shards = 8
	hot := "h"
	hotShard := shard.NewRouter(shards).Shard(hot)
	var progs []*core.Transaction
	for i := 1; i <= 12; i++ {
		ops := []core.Op{core.W(hot)}
		for k := 0; k < 6; k++ {
			ops = append(ops, core.W(fmt.Sprintf("p%d.%d", i, k)))
		}
		progs = append(progs, core.T(core.TxnID(i), ops...))
	}
	totalBlocks := 0
	for trial := 0; trial < 10; trial++ {
		reg := metrics.NewRegistry()
		r, err := txn.NewConcurrent(txn.Config{
			Protocol: sched.NewS2PLSharded(shards),
			Programs: progs,
			MPL:      8,
			Shards:   shards,
			Metrics:  reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != len(progs) {
			t.Fatalf("trial %d: committed %d", trial, res.Committed)
		}
		snap := reg.Snapshot()
		sum := int64(0)
		for s := 0; s < shards; s++ {
			v := snap.Counters[fmt.Sprintf("txn.shard%02d.blocks", s)]
			sum += v
			if s != hotShard && v != 0 {
				t.Errorf("trial %d: shard %d counted %d blocks; only shard %d (object %q) can contend",
					trial, s, v, hotShard, hot)
			}
		}
		if int(sum) != res.Blocks {
			t.Errorf("trial %d: per-shard blocks sum %d != result blocks %d", trial, sum, res.Blocks)
		}
		totalBlocks += res.Blocks
	}
	t.Logf("hot-spot blocks across trials: %d (all on shard %d)", totalBlocks, hotShard)
}

// TestShardedCrossShardUnitsCertify drives the concurrent sharded
// driver over programs whose atomic units straddle shard boundaries
// (see the sched package's exhaustive equivalence test for the same
// sets) and demands that every committed schedule passes the offline
// RSG certification.
func TestShardedCrossShardUnitsCertify(t *testing.T) {
	router := shard.NewRouter(8)
	used := make(map[int]bool)
	var objs []string
	for i := 0; len(objs) < 3; i++ {
		name := fmt.Sprintf("o%d", i)
		if s := router.Shard(name); !used[s] {
			used[s] = true
			objs = append(objs, name)
		}
	}
	a, b, c := objs[0], objs[1], objs[2]
	ts := core.MustTxnSet(
		core.T(1, core.R(a), core.W(b), core.R(b), core.W(a)),
		core.T(2, core.W(a), core.W(c)),
		core.T(3, core.W(b), core.R(c)),
	)
	sp := core.NewSpec(ts)
	for _, obs := range []core.TxnID{2, 3} {
		if err := sp.CutAfter(1, obs, 2); err != nil {
			t.Fatal(err)
		}
	}
	oracle := sched.SpecOracle{Spec: sp}
	for trial := 0; trial < 30; trial++ {
		r, err := txn.NewConcurrent(txn.Config{
			Protocol: sched.NewRSGT(oracle),
			Programs: ts.Txns(),
			Oracle:   oracle,
			MPL:      3,
			Shards:   8,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Committed != 3 {
			t.Fatalf("trial %d: committed %d", trial, res.Committed)
		}
		if err := res.Verify(); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

// TestShardedTracedRunReplayVerifies runs the synthetic workload on
// the sharded concurrent driver with tracing enabled and replays every
// cycle-rejection explanation through the offline RSG machinery.
func TestShardedTracedRunReplayVerifies(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	cfg := workload.DefaultSyntheticConfig()
	cfg.Granularity = 2
	checkedTotal := 0
	for trial := 0; trial < 5; trial++ {
		w, err := workload.Synthetic(cfg, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		buf := trace.NewBuffer()
		res, _, err := w.RunWith(sched.NewRSGT(w.Oracle), workload.RunOptions{
			Seed:       int64(trial),
			MPL:        8,
			Shards:     8,
			Concurrent: true,
			Tracer:     trace.New(buf),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("trial %d: committed schedule failed certification: %v", trial, err)
		}
		events := buf.Events()
		checked, err := trace.VerifyCycles(events, w.Oracle.Cuts)
		if err != nil {
			t.Fatalf("trial %d: replay verification failed after %d cycle(s): %v", trial, checked, err)
		}
		checkedTotal += checked
	}
	t.Logf("replay-verified %d cycle rejections across trials", checkedTotal)
}
