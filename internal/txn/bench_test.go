package txn_test

// Contention-aware benchmarks for the concurrent scheduler hot path:
// shard counts crossed with goroutine counts under low- and
// high-conflict synthetic workloads, plus the striped lock-table
// admission path on its own. These are the benchmarks the CI perf gate
// compares with benchstat across branches.

import (
	"fmt"
	"testing"

	"relser/internal/core"
	"relser/internal/obs"
	"relser/internal/sched"
	"relser/internal/txn"
	"relser/internal/workload"
)

// benchPrograms builds a synthetic program set once per configuration.
func benchPrograms(b *testing.B, cfg workload.SyntheticConfig) *workload.Workload {
	b.Helper()
	w, err := workload.Synthetic(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func benchConcurrent(b *testing.B, w *workload.Workload, shards, mpl int) {
	b.Helper()
	ops := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := w.RunWith(sched.NewS2PLSharded(shards), workload.RunOptions{
			Seed:       1,
			MPL:        mpl,
			Shards:     shards,
			Concurrent: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		ops += res.OpsExecuted
	}
	b.StopTimer()
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/s")
}

func BenchmarkConcurrentLowConflict(b *testing.B) {
	w := benchPrograms(b, workload.SyntheticConfig{
		Objects: 512, Programs: 128, OpsPerTxn: 8, WriteRatio: 0.25,
	})
	for _, shards := range []int{1, 8} {
		for _, mpl := range []int{4, 16} {
			b.Run(fmt.Sprintf("shards=%d/mpl=%d", shards, mpl), func(b *testing.B) {
				benchConcurrent(b, w, shards, mpl)
			})
		}
	}
}

func BenchmarkConcurrentHighConflict(b *testing.B) {
	// One hot object in every program: all conflicts land on a single
	// shard, stressing the blocking, wakeup and victimization paths.
	w := benchPrograms(b, workload.SyntheticConfig{
		Objects: 64, Programs: 128, OpsPerTxn: 8, WriteRatio: 0.5,
		HotFraction: 0.25, HotObjects: 1,
	})
	for _, shards := range []int{1, 8} {
		for _, mpl := range []int{4, 16} {
			b.Run(fmt.Sprintf("shards=%d/mpl=%d", shards, mpl), func(b *testing.B) {
				benchConcurrent(b, w, shards, mpl)
			})
		}
	}
}

func BenchmarkS2PLAdmission(b *testing.B) {
	// The protocol-level hot path alone: sequential admission of
	// non-conflicting requests through the striped lock table, no
	// driver, no goroutines.
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const nTxn = 64
			progs := make([]*core.Transaction, nTxn)
			for i := range progs {
				obj := fmt.Sprintf("o%d", i)
				progs[i] = core.T(core.TxnID(i+1), core.R(obj), core.W(obj))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := sched.NewS2PLSharded(shards)
				for k, tx := range progs {
					id := int64(k + 1)
					p.Begin(id, tx)
					for seq := 0; seq < tx.Len(); seq++ {
						req := sched.OpRequest{Instance: id, Program: tx, Seq: seq, Op: tx.Op(seq)}
						if d := p.Request(req); d != sched.Grant {
							b.Fatalf("decision %v", d)
						}
					}
					p.Commit(id)
				}
			}
		})
	}
}

func BenchmarkRSGTAdmission(b *testing.B) {
	// Batched RSG arc insertion through the scheduler: a stream of
	// pairwise-conflicting transactions, each granted and committed, so
	// every request exercises AddArcBatch and commit-time pruning.
	const nTxn = 64
	progs := make([]*core.Transaction, nTxn)
	for i := range progs {
		progs[i] = core.T(core.TxnID(i+1), core.R("x"), core.W("x"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := sched.NewRSGT(sched.AbsoluteOracle{})
		for k, tx := range progs {
			id := int64(k + 1)
			p.Begin(id, tx)
			for seq := 0; seq < tx.Len(); seq++ {
				req := sched.OpRequest{Instance: id, Program: tx, Seq: seq, Op: tx.Op(seq)}
				if d := p.Request(req); d != sched.Grant {
					b.Fatalf("decision %v", d)
				}
			}
			p.Commit(id)
		}
	}
}

// BenchmarkConcurrentRecorder pins the observability plane's hot-path
// cost for the perf gate: the same low-conflict sharded workload bare,
// with the default sampled plane, and with the full-trace plane. The
// sampled/off ratio is the <5% overhead budget DESIGN.md §5.3 claims
// (E17 measures it end to end; this keeps it in benchstat).
func BenchmarkConcurrentRecorder(b *testing.B) {
	w := benchPrograms(b, workload.SyntheticConfig{
		Objects: 512, Programs: 128, OpsPerTxn: 8, WriteRatio: 0.25,
	})
	run := func(b *testing.B, mkPlane func() *obs.Plane) {
		ops := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var plane *obs.Plane
			if mkPlane != nil {
				b.StopTimer()
				plane = mkPlane()
				b.StartTimer()
			}
			res, _, err := w.RunWith(sched.NewS2PLSharded(8), workload.RunOptions{
				Seed: 1, MPL: 16, Shards: 8, Concurrent: true, Obs: plane,
			})
			if err != nil {
				b.Fatal(err)
			}
			ops += res.OpsExecuted
			if plane != nil {
				plane.Close()
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/s")
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("sampled", func(b *testing.B) {
		run(b, func() *obs.Plane { return obs.New(obs.Options{}) })
	})
	b.Run("full", func(b *testing.B) {
		run(b, func() *obs.Plane { return obs.New(obs.Options{Full: true}) })
	})
}

// BenchmarkDeterministicRunner keeps the tick driver in the perf gate:
// regressions in the shared runner plumbing show up here even when the
// concurrent path masks them with goroutine scheduling noise.
func BenchmarkDeterministicRunner(b *testing.B) {
	w := benchPrograms(b, workload.SyntheticConfig{
		Objects: 128, Programs: 64, OpsPerTxn: 8, WriteRatio: 0.25,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := txn.New(txn.Config{
			Protocol: sched.NewS2PL(),
			Programs: w.Programs,
			Oracle:   w.Oracle,
			MPL:      8,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
