package txn_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"relser/internal/core"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
)

// recordingProto wraps a protocol to remember which program every
// instance (across restarts) belongs to, so WAL records can be
// attributed to programs after the run. Wrapping also hides the inner
// protocol's ShardSafe marker, which is irrelevant here.
type recordingProto struct {
	sched.Protocol
	mu   sync.Mutex
	prog map[int64]core.TxnID
}

func (p *recordingProto) Begin(id int64, t *core.Transaction) {
	p.mu.Lock()
	p.prog[id] = t.ID
	p.mu.Unlock()
	p.Protocol.Begin(id, t)
}

func (p *recordingProto) programOf(id int64) core.TxnID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.prog[id]
}

// pacedSemantics slows one program's writes so its transaction is
// genuinely long-lived on the wall clock: without it the whole program
// can execute before the other workers' goroutines are even scheduled,
// and no interleaving (hence no dirty-read chain) ever forms.
type pacedSemantics struct {
	txn.DefaultSemantics
	slow core.TxnID
}

func (s pacedSemantics) WriteValue(prog *core.Transaction, seq int, reads map[int]storage.Value) storage.Value {
	if prog.ID == s.slow {
		time.Sleep(20 * time.Microsecond)
	}
	return s.DefaultSemantics.WriteValue(prog, seq, reads)
}

// fillers returns n writes to objects private to the given program.
func fillers(pid core.TxnID, n int) []core.Op {
	ops := make([]core.Op, n)
	for i := range ops {
		ops[i] = core.W(string(rune('f')) + string(rune('0'+pid)) + "_" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
	}
	return ops
}

// TestConcurrentCascadingAbortDepth3 forces a transitive abort of a
// dirty-read chain of depth 3 on the concurrent driver and checks the
// WAL tells the truth about it. Under NoCC every operation is granted
// immediately, so the chain forms organically:
//
//	T1: w(x) + a long filler tail   — cannot commit before its deadline,
//	T2: fillers, r(x), w(y)         — reads x while T1's write is dirty,
//	T3: fillers, r(y), w(z)         — reads y while T2's write is dirty,
//
// T2 and T3 finish quickly and park on their dirty-read dependencies;
// T1's long tail overruns Config.Deadline mid-program, and the driver's
// timeout abort must cascade over both readers. The cascade's abort
// records are written consecutively (the driver holds the exclusive
// state lock across the whole cascade), and a commit record must never
// exist for any cascaded victim — every program's eventual commit comes
// from a fresh instance.
//
// Real goroutine scheduling decides whether the reads land on dirty
// data in a given round, so each attempt is only required to be
// *correct*; the depth-3 cascade must show up within the attempt
// budget (the first attempt almost always produces it).
func TestConcurrentCascadingAbortDepth3(t *testing.T) {
	// T1 is all tail: 40 operations against a 45-tick deadline, so it
	// commits solo but overruns as soon as the readers' ops interleave.
	// T2/T3 carry leading fillers (to land their reads after the writes
	// they chase) and trailing fillers (to keep foreign ticks flowing
	// while T1 is mid-tail) but stay short enough to commit pairwise.
	t1Ops := append([]core.Op{core.W("x")}, fillers(1, 39)...)
	t2Ops := append(append(fillers(2, 1), core.R("x"), core.W("y")), fillers(2, 10)...)
	t3Ops := append(append(fillers(3, 4), core.R("y"), core.W("z")), fillers(3, 10)...)
	sawCascade := false
	for attempt := 0; attempt < 10 && !sawCascade; attempt++ {
		progs := []*core.Transaction{
			core.T(1, t1Ops...),
			core.T(2, t2Ops...),
			core.T(3, t3Ops...),
		}
		proto := &recordingProto{Protocol: sched.NewNoCC(), prog: map[int64]core.TxnID{}}
		var walBuf bytes.Buffer
		r, err := txn.NewConcurrent(txn.Config{
			Protocol:    proto,
			Programs:    progs,
			Semantics:   pacedSemantics{slow: 1},
			MPL:         8,
			Seed:        int64(attempt + 1),
			Deadline:    45,
			MaxRestarts: 500,
			WAL:         storage.NewWAL(&walBuf),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if res.Committed != 3 {
			t.Fatalf("attempt %d: committed %d of 3", attempt, res.Committed)
		}
		if res.DeadlineAborts == 0 {
			t.Fatalf("attempt %d: T1 never overran its deadline", attempt)
		}
		recs, err := storage.ReadWAL(bytes.NewReader(walBuf.Bytes()))
		if err != nil {
			t.Fatalf("attempt %d: WAL: %v", attempt, err)
		}

		committed := map[int64]bool{}
		aborted := map[int64]bool{}
		for _, rec := range recs {
			switch rec.Kind {
			case storage.WALCommit:
				committed[rec.Instance] = true
			case storage.WALAbort:
				aborted[rec.Instance] = true
			}
		}
		// A cascaded victim must never have a commit record.
		commitProgs := map[core.TxnID]bool{}
		for id := range committed {
			if aborted[id] {
				t.Fatalf("attempt %d: instance %d has both commit and abort records", attempt, id)
			}
			commitProgs[proto.programOf(id)] = true
		}
		if len(committed) != 3 || len(commitProgs) != 3 {
			t.Fatalf("attempt %d: want one commit per program, got instances %v", attempt, committed)
		}

		// The depth-3 cascade: three consecutive abort records covering
		// programs 1, 2 and 3 (the driver writes a cascade's aborts in one
		// critical section, so interleaved records would disprove it).
		for i := 0; i+2 < len(recs); i++ {
			ps := map[core.TxnID]bool{}
			run := true
			for j := i; j < i+3; j++ {
				if recs[j].Kind != storage.WALAbort {
					run = false
					break
				}
				ps[proto.programOf(recs[j].Instance)] = true
			}
			if run && ps[1] && ps[2] && ps[3] {
				sawCascade = true
				break
			}
		}
	}
	if !sawCascade {
		t.Fatal("no depth-3 consecutive abort cascade covering T1,T2,T3 in any attempt")
	}
}
