package txn_test

import (
	"testing"

	"relser/internal/sched"
	"relser/internal/txn"
	"relser/internal/workload"
)

func runBanking(t *testing.T, proto string, seed int64) *txn.Result {
	t.Helper()
	w, err := workload.Banking(workload.DefaultBankingConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	var p sched.Protocol
	switch proto {
	case "s2pl":
		p = sched.NewS2PL()
	case "rsgt":
		p = sched.NewRSGT(w.Oracle)
	case "nocc":
		p = sched.NewNoCC()
	}
	res, _, err := w.RunWith(p, workload.RunOptions{Seed: seed, MPL: 8})
	if err != nil {
		// NoCC makes no correctness promise: its runs may legitimately
		// break the balance invariant (lost updates). The recovery
		// properties are still well-defined on the committed trace.
		if proto == "nocc" && res != nil {
			return res
		}
		t.Fatal(err)
	}
	return res
}

func TestRecoveryPropertiesS2PLIsStrict(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res := runBanking(t, "s2pl", seed)
		props, err := res.RecoveryProperties()
		if err != nil {
			t.Fatal(err)
		}
		if !props.Strict || !props.ACA || !props.Recoverable {
			t.Errorf("seed %d: strict 2PL must be strict; got %+v", seed, props)
		}
	}
}

func TestRecoveryPropertiesAlwaysRecoverable(t *testing.T) {
	// The driver's commit gating enforces recoverability for every
	// protocol, including NoCC.
	for _, proto := range []string{"s2pl", "rsgt", "nocc"} {
		for seed := int64(1); seed <= 5; seed++ {
			res := runBanking(t, proto, seed)
			props, err := res.RecoveryProperties()
			if err != nil {
				t.Fatal(err)
			}
			if !props.Recoverable {
				t.Errorf("%s seed %d: not recoverable: %s", proto, seed, props.Violation)
			}
		}
	}
}

func TestRecoveryPropertiesRSGTAllowsDirtyReads(t *testing.T) {
	// Graph protocols read uncommitted data by design; across contended
	// seeds at least one run should be recoverable-but-not-ACA.
	sawDirty := false
	for seed := int64(1); seed <= 20 && !sawDirty; seed++ {
		res := runBanking(t, "rsgt", seed)
		props, err := res.RecoveryProperties()
		if err != nil {
			t.Fatal(err)
		}
		if !props.Recoverable {
			t.Fatalf("seed %d: not recoverable: %s", seed, props.Violation)
		}
		if !props.ACA {
			sawDirty = true
		}
	}
	if !sawDirty {
		t.Skip("no dirty read observed across seeds (contention too low to assert)")
	}
}

func TestRecoveryPropertiesHierarchy(t *testing.T) {
	// strict ⇒ ACA ⇒ recoverable must hold on every analysed run.
	for _, proto := range []string{"s2pl", "rsgt", "nocc"} {
		for seed := int64(1); seed <= 5; seed++ {
			res := runBanking(t, proto, seed)
			props, err := res.RecoveryProperties()
			if err != nil {
				t.Fatal(err)
			}
			if props.Strict && !props.ACA {
				t.Errorf("%s seed %d: strict without ACA", proto, seed)
			}
			if props.ACA && !props.Recoverable {
				t.Errorf("%s seed %d: ACA without recoverable", proto, seed)
			}
		}
	}
}

func TestRecoveryPropertiesEmpty(t *testing.T) {
	if _, err := (&txn.Result{}).RecoveryProperties(); err == nil {
		t.Error("empty result should error")
	}
}
