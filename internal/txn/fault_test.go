package txn_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"relser/internal/core"
	"relser/internal/fault"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

// chaosBankingRun executes one seeded deterministic banking run under
// the given fault spec and returns the result (nil if the run crashed),
// the run error, the WAL bytes and the injector fingerprint.
func chaosBankingRun(t *testing.T, seed int64, spec string, cfg workload.BankingConfig) (*txn.Result, error, []byte, string) {
	t.Helper()
	w, err := workload.Banking(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sched.NewProtocol("rsgt", w.Oracle)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore()
	store.Load(w.Initial)
	var walBuf bytes.Buffer
	inj := fault.New(seed, fault.MustParseSpec(spec))
	r, err := txn.New(txn.Config{
		Protocol:    p,
		Programs:    w.Programs,
		Oracle:      w.Oracle,
		Store:       store,
		Semantics:   w.Semantics,
		MPL:         8,
		Seed:        seed,
		MaxRestarts: 100000,
		WAL:         storage.NewWAL(&walBuf),
		Faults:      inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := r.Run()
	return res, runErr, append([]byte(nil), walBuf.Bytes()...), inj.Fingerprint()
}

// TestFaultReplayByteIdentical is the reproducibility contract: two
// runs with the same seed and spec must produce the identical fault
// schedule (fingerprint) and a byte-identical WAL, including the
// injected-abort and grant-delay decisions inside the scheduler loop.
func TestFaultReplayByteIdentical(t *testing.T) {
	const spec = "txn.abort:0.1,sched.grant.delay:0.05"
	for seed := int64(1); seed <= 3; seed++ {
		res1, err1, wal1, fp1 := chaosBankingRun(t, seed, spec, workload.DefaultBankingConfig())
		res2, err2, wal2, fp2 := chaosBankingRun(t, seed, spec, workload.DefaultBankingConfig())
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: outcomes diverged: %v vs %v", seed, err1, err2)
		}
		if fp1 != fp2 {
			t.Errorf("seed %d: fingerprints diverged: %s vs %s", seed, fp1, fp2)
		}
		if !bytes.Equal(wal1, wal2) {
			t.Errorf("seed %d: WALs diverged (%d vs %d bytes)", seed, len(wal1), len(wal2))
		}
		if err1 == nil && res1.Committed != res2.Committed {
			t.Errorf("seed %d: committed diverged: %d vs %d", seed, res1.Committed, res2.Committed)
		}
		if err1 == nil && res1.InjectedAborts == 0 {
			t.Errorf("seed %d: no injected aborts fired at rate 0.1", seed)
		}
	}
}

// TestDeadlineAbortDeterministic pins the timeout-abort path on the
// deterministic driver: under S2PL, T2 blocks on T1's exclusive lock
// for six ticks, overruns its nine-tick deadline on the first
// incarnation, and completes solo on the retry — for every seed.
func TestDeadlineAbortDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t1 := core.T(1, core.W("x"), core.W("a1"), core.W("a2"), core.W("a3"), core.W("a4"), core.W("a5"))
		t2 := core.T(2, core.R("x"), core.R("b1"), core.R("b2"), core.R("b3"), core.R("b4"), core.R("b5"))
		r, err := txn.New(txn.Config{
			Protocol:    sched.NewS2PL(),
			Programs:    []*core.Transaction{t1, t2},
			MPL:         8,
			Seed:        seed,
			Deadline:    9,
			MaxRestarts: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Committed != 2 {
			t.Fatalf("seed %d: committed %d of 2", seed, res.Committed)
		}
		if res.DeadlineAborts == 0 {
			t.Errorf("seed %d: blocked T2 never overran its deadline", seed)
		}
	}
}

// TestShedUnderAbortStorm verifies graceful degradation: a 0.5-rate
// injected abort storm on short transfers must trip the admission
// controller (effective MPL degrades below the configured level), yet
// the run still completes with the balance invariant intact.
func TestShedUnderAbortStorm(t *testing.T) {
	cfg := workload.DefaultBankingConfig()
	cfg.CreditAudits = 0
	cfg.BankAudits = 0
	w, err := workload.Banking(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, _, wal, _ := chaosBankingRun(t, 1, "txn.abort:0.5", cfg)
	if res == nil {
		t.Fatal("storm run crashed; txn.abort must not kill the run")
	}
	if res.InjectedAborts == 0 {
		t.Fatal("no injected aborts at rate 0.5")
	}
	if res.LoadSheds == 0 || res.MinEffectiveMPL >= 8 {
		t.Fatalf("admission controller never shed: sheds=%d minEffectiveMPL=%d", res.LoadSheds, res.MinEffectiveMPL)
	}
	st, _, err := storage.Recover(bytes.NewReader(wal), w.Initial)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Invariant(st.Snapshot()); err != nil {
		t.Fatalf("invariant after storm recovery: %v", err)
	}
}

// TestInjectedCrashRecoversClean forces WAL crash faults and checks the
// failure surfaces as fault.ErrCrash (not silent truncation) and that
// recovery from the surviving log preserves the invariant.
func TestInjectedCrashRecoversClean(t *testing.T) {
	crashed := false
	for seed := int64(1); seed <= 10 && !crashed; seed++ {
		res, runErr, wal, _ := chaosBankingRun(t, seed, "wal.crash:0.02", workload.DefaultBankingConfig())
		if runErr != nil {
			if !errors.Is(runErr, fault.ErrCrash) {
				t.Fatalf("seed %d: crash surfaced as %v, want fault.ErrCrash", seed, runErr)
			}
			crashed = true
		} else if res.Verify() != nil {
			t.Fatalf("seed %d: surviving run failed verification", seed)
		}
		w, err := workload.Banking(workload.DefaultBankingConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		st, _, err := storage.Recover(bytes.NewReader(wal), w.Initial)
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		if err := w.Invariant(st.Snapshot()); err != nil {
			t.Fatalf("seed %d: invariant after crash recovery: %v", seed, err)
		}
	}
	if !crashed {
		t.Fatal("no crash fault fired across 10 seeds at rate 0.02")
	}
}

// TestWatchdogSurfacesWedge arms a rate-1 shard wedge under a short
// watchdog: the concurrent run must fail with a *WedgeError naming the
// wedge instead of hanging.
func TestWatchdogSurfacesWedge(t *testing.T) {
	w, err := workload.Banking(workload.DefaultBankingConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore()
	store.Load(w.Initial)
	r, err := txn.NewConcurrent(txn.Config{
		Protocol:  sched.NewNoCC(),
		Programs:  w.Programs,
		Oracle:    w.Oracle,
		Store:     store,
		Semantics: w.Semantics,
		MPL:       4,
		Seed:      1,
		Watchdog:  150 * time.Millisecond,
		Faults:    fault.New(1, fault.MustParseSpec("shard.wedge:1")),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = r.Run()
	var we *txn.WedgeError
	if !errors.As(err, &we) {
		t.Fatalf("wedged run returned %v, want *WedgeError", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to surface a rate-1 wedge", elapsed)
	}
}
