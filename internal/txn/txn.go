// Package txn is the transaction runtime: it executes declared
// transaction programs against the storage substrate under a pluggable
// concurrency-control protocol (internal/sched), handling blocking,
// deadlock victimization, aborts with cascading rollback, restarts and
// commit ordering — and it emits the observed committed schedule so
// the offline theory (internal/core) can certify every run.
//
// The lifecycle itself — admission, protocol consultation, operation
// application with dirty-data tracking, commit gating, cascading
// abort, degradation, result construction — lives once in
// internal/engine. This package contributes the two drivers over those
// stages:
//
//   - Runner, a deterministic discrete-event loop: given the same
//     seed, programs and protocol, a run reproduces exactly;
//   - ConcurrentRunner, a sharded goroutine worker pool exercising the
//     same pipeline under real parallelism.
//
// Both accept a context (RunContext); cancellation unwinds in-flight
// instances through the engine's Recover stage.
package txn

import "relser/internal/engine"

// Re-exported engine pipeline types. The runtime's configuration,
// result and lifecycle vocabulary is defined by internal/engine; these
// aliases keep this package the stable import point for callers and
// tests.
type (
	// Config describes one run (engine.Config).
	Config = engine.Config
	// Semantics computes write values from prior reads.
	Semantics = engine.Semantics
	// DefaultSemantics writes txnID*1000 + seq.
	DefaultSemantics = engine.DefaultSemantics
	// Result aggregates a run.
	Result = engine.Result
	// Event is one executed operation in global execution order.
	Event = engine.Event
	// Span records one committed instance's lifetime.
	Span = engine.Span
	// RecoveryProperties classifies the committed execution in the
	// recoverability hierarchy.
	RecoveryProperties = engine.RecoveryProperties
	// WedgeError is the stall watchdog's diagnosis.
	WedgeError = engine.WedgeError
	// Stage names an engine lifecycle stage (for Config.Hooks).
	Stage = engine.Stage
	// Hooks observes lifecycle stage transitions, one optional function
	// per stage.
	Hooks = engine.Hooks
	// Instance is one in-flight transaction incarnation
	// (engine.Instance), the argument hook functions receive.
	Instance = engine.Instance
)

// OnStages routes every stage transition through one function (see
// engine.OnStages).
var OnStages = engine.OnStages

// Lifecycle stages, re-exported for hook consumers.
const (
	StageAdmit   = engine.StageAdmit
	StageIssue   = engine.StageIssue
	StageDecide  = engine.StageDecide
	StageApply   = engine.StageApply
	StageCommit  = engine.StageCommit
	StageAbort   = engine.StageAbort
	StageRecover = engine.StageRecover
)
