package txn_test

// Segmented-durability parity: both drivers, run over a 4-lane
// group-commit WAL instead of the single log, must still certify, and
// parallel recovery of the segmented image must reproduce the live
// store and the workload invariant — the tick driver and the
// goroutine driver agree through the new durability path too.

import (
	"fmt"
	"testing"

	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

// segParityRun is parityRun over a segmented WAL: run the driver,
// close the log, recover the crash image, and cross-check.
func segParityRun(t *testing.T, sc parityScenario, seed int64, concurrent bool) (*txn.Result, *storage.SegmentedReport) {
	t.Helper()
	w, err := sc.build(seed)
	if err != nil {
		t.Fatal(err)
	}
	mem := storage.NewMemBackend()
	swal, err := storage.NewShardedWAL(mem, storage.SegmentedOptions{Shards: 4, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	res, store, err := w.RunWith(sc.proto(w), workload.RunOptions{
		Seed:       seed,
		MPL:        8,
		WAL:        swal,
		Concurrent: concurrent,
		Shards:     4,
	})
	if err != nil {
		t.Fatalf("concurrent=%v: %v", concurrent, err)
	}
	if err := swal.Close(); err != nil {
		t.Fatalf("concurrent=%v: close WAL: %v", concurrent, err)
	}
	if res.Committed != len(w.Programs) {
		t.Fatalf("concurrent=%v: committed %d of %d programs", concurrent, res.Committed, len(w.Programs))
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("concurrent=%v: certification verdict: %v", concurrent, err)
	}
	set, err := mem.SegmentSet()
	if err != nil {
		t.Fatal(err)
	}
	recovered, report, err := storage.RecoverSegmented(set, w.Initial)
	if err != nil {
		t.Fatalf("concurrent=%v: recovery: %v", concurrent, err)
	}
	if !report.Clean() {
		t.Fatalf("concurrent=%v: segmented recovery not clean: %s", concurrent, report)
	}
	live := store.Snapshot()
	for obj, v := range recovered.Snapshot() {
		if live[obj] != v {
			t.Fatalf("concurrent=%v: recovered %s=%d, live %d", concurrent, obj, v, live[obj])
		}
	}
	if w.Invariant != nil {
		if err := w.Invariant(recovered.Snapshot()); err != nil {
			t.Fatalf("concurrent=%v: recovered store breaks invariant: %v", concurrent, err)
		}
	}
	return res, report
}

func TestSegmentedDurabilityParity(t *testing.T) {
	for _, sc := range parityCorpus() {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", sc.name, seed), func(t *testing.T) {
				serialRes, serialRep := segParityRun(t, sc, seed, false)
				concRes, concRep := segParityRun(t, sc, seed, true)

				if serialRes.Committed != concRes.Committed {
					t.Errorf("committed diverge: serial %d, concurrent %d", serialRes.Committed, concRes.Committed)
				}
				if serialRep.Committed != concRep.Committed {
					t.Errorf("recovered commits diverge: serial %d, concurrent %d", serialRep.Committed, concRep.Committed)
				}
				for _, rep := range []*storage.SegmentedReport{serialRep, concRep} {
					if rep.Committed != serialRes.Committed {
						t.Errorf("recovery found %d commits, run reported %d", rep.Committed, serialRes.Committed)
					}
					if rep.Unfinished != 0 || rep.Orphans != 0 || rep.BeyondCut != 0 {
						t.Errorf("recovery not clean: %s", rep)
					}
				}
			})
		}
	}
}
