package txn

import (
	"fmt"

	"relser/internal/core"
	"relser/internal/sched"
)

// CommittedSchedule reconstructs the committed execution as a
// core.Schedule together with the relative atomicity specification the
// oracle assigned the committed programs. This is the bridge from the
// online runtime back to the paper's offline theory: Theorem 1's graph
// test certifies the run.
func (res *Result) CommittedSchedule() (*core.Schedule, *core.Spec, error) {
	if res.Committed == 0 {
		return nil, nil, fmt.Errorf("txn: no committed transactions to reconstruct")
	}
	ts, err := core.NewTxnSet(res.Programs...)
	if err != nil {
		return nil, nil, fmt.Errorf("txn: committed programs do not form a set: %v", err)
	}
	ops := make([]core.Op, 0, len(res.Trace))
	for _, ev := range res.Trace {
		ops = append(ops, ev.Op)
	}
	s, err := core.NewSchedule(ts, ops)
	if err != nil {
		return nil, nil, fmt.Errorf("txn: committed trace is not a schedule: %v", err)
	}
	sp := core.NewSpec(ts)
	oracle := res.oracle
	if oracle == nil {
		oracle = sched.AbsoluteOracle{}
	}
	for _, a := range res.Programs {
		for _, b := range res.Programs {
			if a.ID == b.ID {
				continue
			}
			for _, cut := range oracle.Cuts(a, b) {
				if err := sp.CutAfter(a.ID, b.ID, cut-1); err != nil {
					return nil, nil, fmt.Errorf("txn: oracle cut invalid: %v", err)
				}
			}
		}
	}
	return s, sp, nil
}

// Verify certifies the run with the paper's tools: the committed
// schedule must be relatively serializable under the oracle's
// specification (RSG acyclic, Theorem 1). Protocols in this module
// guarantee it; NoCC runs are expected to fail here under contention.
func (res *Result) Verify() error {
	s, sp, err := res.CommittedSchedule()
	if err != nil {
		return err
	}
	rsg := core.BuildRSG(s, sp)
	if !rsg.Acyclic() {
		return fmt.Errorf("txn: committed schedule is not relatively serializable; RSG cycle through %v", rsg.Cycle())
	}
	return nil
}

// String summarizes the result.
func (res *Result) String() string {
	return fmt.Sprintf("%s: committed=%d aborts=%d restarts=%d blocks=%d ticks=%d ops=%d mpl=%.2f",
		res.Protocol, res.Committed, res.Aborts, res.Restarts, res.Blocks, res.Ticks, res.OpsExecuted, res.AvgConcurrency)
}
