package txn

import (
	"fmt"

	"relser/internal/core"
)

// RecoveryProperties reports where the run's committed execution sits
// in the classical recoverability hierarchy (Hadzilacos; Bernstein,
// Hadzilacos, Goodman):
//
//   - Recoverable: every committed reader commits after the writer it
//     read from. The runtime's commit gating enforces this, so every
//     run should report it.
//   - ACA (avoids cascading aborts): every read happens after the
//     writer's commit — no dirty reads among committed transactions.
//     Lock-free protocols (SGT, RSGT) legitimately violate it: they
//     admit reads of uncommitted data and rely on the driver's cascade
//     machinery.
//   - Strict: additionally, no write overwrites an uncommitted value.
//     Strict 2PL runs report it.
//
// The analysis sees only committed instances (aborted instances'
// operations are rolled back and never enter the trace), so it
// describes the durable execution, which is exactly what recovery
// cares about.
type RecoveryProperties struct {
	Recoverable bool
	ACA         bool
	Strict      bool
	// Violation describes the first property violation found, for
	// diagnostics.
	Violation string
}

// RecoveryProperties analyses the committed trace.
func (res *Result) RecoveryProperties() (RecoveryProperties, error) {
	props := RecoveryProperties{Recoverable: true, ACA: true, Strict: true}
	if len(res.Trace) == 0 {
		return props, fmt.Errorf("txn: no committed trace to analyse")
	}
	commitSeq := make(map[int64]int64, len(res.Spans))
	for _, sp := range res.Spans {
		commitSeq[sp.Instance] = sp.CommitSeq
	}
	note := func(target *bool, format string, args ...any) {
		if *target && props.Violation == "" {
			props.Violation = fmt.Sprintf(format, args...)
		}
		*target = false
	}
	type version struct {
		writer int64
		order  int64
	}
	current := make(map[string]version)
	for _, ev := range res.Trace {
		cw, hasWriter := current[ev.Op.Object]
		me := ev.Instance
		if ev.Op.Kind == core.ReadOp {
			if hasWriter && cw.writer != me {
				wCommit, ok := commitSeq[cw.writer]
				if !ok {
					continue
				}
				myCommit := commitSeq[me]
				if myCommit < wCommit {
					note(&props.Recoverable, "instance %d read %s from %d but committed first", me, ev.Op.Object, cw.writer)
				}
				if ev.Order < wCommit {
					note(&props.ACA, "instance %d read %s before writer %d committed", me, ev.Op.Object, cw.writer)
					props.Strict = false
				}
			}
			continue
		}
		if hasWriter && cw.writer != me {
			if wCommit, ok := commitSeq[cw.writer]; ok && ev.Order < wCommit {
				note(&props.Strict, "instance %d overwrote %s before writer %d committed", me, ev.Op.Object, cw.writer)
			}
		}
		current[ev.Op.Object] = version{writer: me, order: ev.Order}
	}
	// The hierarchy: strict ⇒ ACA ⇒ recoverable.
	if !props.ACA {
		props.Strict = false
	}
	if !props.Recoverable {
		props.ACA = false
		props.Strict = false
	}
	return props, nil
}
