// Package replay executes a concrete schedule — in exactly its given
// interleaving — against a fresh store with caller-supplied write
// semantics, yielding the final database state and the per-operation
// values. It is the semantic microscope of the module: where the
// classes of internal/core say which interleavings are *admissible*,
// replay shows what an interleaving *does* to the data.
//
// Two facts it makes tangible (experiment E14):
//
//   - conflict-equivalent schedules produce identical states (conflict
//     equivalence preserves reads-from, hence every computed write);
//   - relatively serializable schedules may produce states that no
//     serial execution produces — the paper's relaxation is semantically
//     real, and accepting it is exactly the user's declared intent.
package replay

import (
	"fmt"
	"sort"

	"relser/internal/core"
	"relser/internal/storage"
	"relser/internal/txn"
)

// Event records one executed operation and the value it read or wrote.
type Event struct {
	Op    core.Op
	Value storage.Value
}

// Run executes the schedule in order. Writes compute their values via
// sem from the values the same transaction has read so far; reads
// return the current store value.
func Run(s *core.Schedule, sem txn.Semantics, initial map[string]storage.Value) (*storage.Store, []Event) {
	if sem == nil {
		sem = txn.DefaultSemantics{}
	}
	store := storage.NewStore()
	store.Load(initial)
	reads := make(map[core.TxnID]map[int]storage.Value)
	events := make([]Event, 0, s.Len())
	ts := s.Set()
	for pos := 0; pos < s.Len(); pos++ {
		op := s.At(pos)
		if reads[op.Txn] == nil {
			reads[op.Txn] = make(map[int]storage.Value)
		}
		var v storage.Value
		if op.Kind == core.ReadOp {
			v = store.Read(op.Object).Value
			reads[op.Txn][op.Seq] = v
		} else {
			v = sem.WriteValue(ts.Txn(op.Txn), op.Seq, reads[op.Txn])
			store.Write(op.Object, v)
		}
		events = append(events, Event{Op: op, Value: v})
	}
	return store, events
}

// FinalState replays the schedule and returns the snapshot.
func FinalState(s *core.Schedule, sem txn.Semantics, initial map[string]storage.Value) map[string]storage.Value {
	store, _ := Run(s, sem, initial)
	return store.Snapshot()
}

// StateKey renders a snapshot canonically so states can be compared
// and used as map keys.
func StateKey(snapshot map[string]storage.Value) string {
	names := make([]string, 0, len(snapshot))
	//rsvet:allow detlint -- order-insensitive: keys are collected then sorted below
	for name := range snapshot {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for i, name := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", name, snapshot[name])
	}
	return out
}

// SerialStates replays every serial order of the set and returns the
// distinct final states keyed by StateKey, with one witnessing order
// each. The enumeration is factorial; intended for paper-sized sets.
func SerialStates(ts *core.TxnSet, sem txn.Semantics, initial map[string]storage.Value) map[string][]core.TxnID {
	ids := make([]core.TxnID, 0, ts.NumTxns())
	for _, t := range ts.Txns() {
		ids = append(ids, t.ID)
	}
	out := make(map[string][]core.TxnID)
	var rec func(prefix []core.TxnID, remaining []core.TxnID)
	rec = func(prefix, remaining []core.TxnID) {
		if len(remaining) == 0 {
			s, err := core.SerialSchedule(ts, prefix...)
			if err != nil {
				panic(err) // unreachable: permutation of valid IDs
			}
			key := StateKey(FinalState(s, sem, initial))
			if _, seen := out[key]; !seen {
				out[key] = append([]core.TxnID(nil), prefix...)
			}
			return
		}
		for i := range remaining {
			next := append(prefix, remaining[i])
			rest := make([]core.TxnID, 0, len(remaining)-1)
			rest = append(rest, remaining[:i]...)
			rest = append(rest, remaining[i+1:]...)
			rec(next, rest)
		}
	}
	rec(nil, ids)
	return out
}
