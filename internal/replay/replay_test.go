package replay_test

import (
	"math/rand"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
	"relser/internal/replay"
	"relser/internal/storage"
	"relser/internal/txn"
)

// sumSemantics writes (sum of values read so far) + 10*txnID: order
// sensitive, so different serializations produce different states.
type sumSemantics struct{}

func (sumSemantics) WriteValue(prog *core.Transaction, _ int, reads map[int]storage.Value) storage.Value {
	var sum storage.Value
	for _, v := range reads {
		sum += v
	}
	return sum + storage.Value(10*int(prog.ID))
}

func TestReplayBasics(t *testing.T) {
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("y")),
		core.T(2, core.R("y")),
	)
	s, err := core.ParseSchedule(ts, "r1[x] w1[y] r2[y]")
	if err != nil {
		t.Fatal(err)
	}
	store, events := replay.Run(s, sumSemantics{}, map[string]storage.Value{"x": 5})
	// r1[x] reads 5; w1[y] writes 5+10 = 15; r2[y] reads 15.
	if events[0].Value != 5 || events[1].Value != 15 || events[2].Value != 15 {
		t.Errorf("events = %+v", events)
	}
	if store.Read("y").Value != 15 {
		t.Errorf("final y = %d", store.Read("y").Value)
	}
}

func TestReplayDefaultSemantics(t *testing.T) {
	ts := core.MustTxnSet(core.T(1, core.W("x")))
	s, err := core.SerialSchedule(ts)
	if err != nil {
		t.Fatal(err)
	}
	snap := replay.FinalState(s, nil, nil)
	if snap["x"] != 1000 { // DefaultSemantics: txnID*1000 + seq
		t.Errorf("x = %d", snap["x"])
	}
}

func TestStateKeyCanonical(t *testing.T) {
	a := map[string]storage.Value{"b": 2, "a": 1}
	b := map[string]storage.Value{"a": 1, "b": 2}
	if replay.StateKey(a) != replay.StateKey(b) {
		t.Error("StateKey must be order independent")
	}
	if replay.StateKey(a) != "a=1 b=2" {
		t.Errorf("StateKey = %q", replay.StateKey(a))
	}
}

func TestSerialStatesCount(t *testing.T) {
	inst := paperfig.Figure1()
	initial := map[string]storage.Value{"x": 1, "y": 2, "z": 3}
	states := replay.SerialStates(inst.Set, sumSemantics{}, initial)
	if len(states) == 0 || len(states) > 6 {
		t.Fatalf("3 transactions have between 1 and 3! serial states, got %d", len(states))
	}
	for key, order := range states {
		s, err := core.SerialSchedule(inst.Set, order...)
		if err != nil {
			t.Fatal(err)
		}
		if replay.StateKey(replay.FinalState(s, sumSemantics{}, initial)) != key {
			t.Errorf("witness order %v does not reproduce its state", order)
		}
	}
}

// TestConflictEquivalentSchedulesSameState is the semantic theorem the
// E14 experiment leans on: conflict equivalence preserves final states
// under any read-driven deterministic semantics.
func TestConflictEquivalentSchedulesSameState(t *testing.T) {
	inst := paperfig.Figure1()
	initial := map[string]storage.Value{"x": 1, "y": 2, "z": 3}
	srs, s2 := inst.Schedules["Srs"], inst.Schedules["S2"]
	if !core.ConflictEquivalent(srs, s2) {
		t.Fatal("fixture assumption broken")
	}
	a := replay.StateKey(replay.FinalState(srs, sumSemantics{}, initial))
	b := replay.StateKey(replay.FinalState(s2, sumSemantics{}, initial))
	if a != b {
		t.Errorf("conflict-equivalent schedules diverged:\n%s\n%s", a, b)
	}
}

func TestConflictSerializableMatchesWitnessState(t *testing.T) {
	// For conflict-serializable schedules, the serialization witness
	// must produce the identical state. Randomized.
	rng := rand.New(rand.NewSource(88))
	objects := []string{"x", "y", "z"}
	initial := map[string]storage.Value{"x": 1, "y": 2, "z": 3}
	checked := 0
	for trial := 0; trial < 200; trial++ {
		nTxn := 2 + rng.Intn(2)
		txns := make([]*core.Transaction, nTxn)
		for i := range txns {
			nOps := 1 + rng.Intn(3)
			ops := make([]core.Op, nOps)
			for k := range ops {
				obj := objects[rng.Intn(len(objects))]
				if rng.Intn(2) == 0 {
					ops[k] = core.R(obj)
				} else {
					ops[k] = core.W(obj)
				}
			}
			txns[i] = core.T(core.TxnID(i+1), ops...)
		}
		ts := core.MustTxnSet(txns...)
		cursors := make([]int, nTxn)
		ops := make([]core.Op, 0, ts.NumOps())
		for len(ops) < ts.NumOps() {
			k := rng.Intn(nTxn)
			if cursors[k] == txns[k].Len() {
				continue
			}
			ops = append(ops, txns[k].Op(cursors[k]))
			cursors[k]++
		}
		s := core.MustSchedule(ts, ops)
		if !core.IsConflictSerializable(s) {
			continue
		}
		checked++
		w, err := core.SerialWitness(s)
		if err != nil {
			t.Fatal(err)
		}
		if replay.StateKey(replay.FinalState(s, sumSemantics{}, initial)) !=
			replay.StateKey(replay.FinalState(w, sumSemantics{}, initial)) {
			t.Fatalf("trial %d: serializable schedule diverged from its witness\n%s", trial, s)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d serializable samples; generator too hot", checked)
	}
}

var _ txn.Semantics = sumSemantics{}
