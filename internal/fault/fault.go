// Package fault is a seeded, deterministic fault injector. Subsystems
// register named fault points (the WAL's torn-write path, the store's
// read latch, the drivers' grant path) and consult the injector at
// each; the injector decides — as a pure function of its seed, the
// point name and the point's call index — whether the fault fires.
//
// Determinism is the design center: the n-th consultation of a point
// fires (or not) identically across runs with the same seed and spec,
// regardless of what other points do in between. Under the
// deterministic driver this makes whole chaos runs replay
// byte-identically; under the concurrent driver the per-point firing
// schedule is still a function of call index alone, so a run's
// recorded schedule (Schedule, Fingerprint) fully identifies which
// faults it saw.
//
// Fault specs use a small grammar, one rule per point:
//
//	point:rate[:duration][,point:rate[:duration]...]
//
// e.g. "wal.torn:0.01,txn.abort:0.05,store.read.delay:0.1:2ms".
// Rate is a firing probability in [0,1]; the optional duration
// parameterizes latency-style faults.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SleepCtx sleeps for d or until ctx is canceled, whichever comes
// first. Injected stalls (store latches, shard stalls, grant delays)
// sleep through it so a canceled run stops paying for fault latency it
// no longer cares about. A nil ctx sleeps the full duration.
func SleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if ctx == nil {
		time.Sleep(d)
		return
	}
	//rsvet:allow detlint -- realizes injector-scheduled latency; the duration is decided deterministically and the elapsed time feeds no decision
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Point names one fault-injection site.
type Point string

// The registered fault points. Adding a point here (and wiring the
// consultation into its subsystem) is all a new fault needs.
const (
	// WALTorn tears the tail: the record's frame is written only
	// partially, then the log reports an injected crash.
	WALTorn Point = "wal.torn"
	// WALCorrupt silently flips a bit in the record's payload before
	// writing; the log keeps running (a lying disk).
	WALCorrupt Point = "wal.corrupt"
	// WALShort silently writes only the frame header, dropping the
	// payload; subsequent records are misframed (a short write the
	// device never reported).
	WALShort Point = "wal.short"
	// WALCrash stops the log cleanly at a record boundary and reports
	// an injected crash.
	WALCrash Point = "wal.crash"
	// WALRotateCrash (segmented log only) crashes a lane during segment
	// rotation: after the next segment is created and header-synced but
	// before it is published, leaving an unpublished file recovery must
	// ignore.
	WALRotateCrash Point = "wal.rotate.crash"
	// WALGroupPartial (segmented log only) crashes a lane mid group
	// commit: the batch's earlier frames reach the device, the firing
	// frame is cut short at an arbitrary byte — the multi-record
	// analogue of wal.torn.
	WALGroupPartial Point = "wal.group.partial"
	// StoreReadDelay stalls a store read under its stripe latch.
	StoreReadDelay Point = "store.read.delay"
	// StoreWriteDelay stalls a store write under its stripe latch.
	StoreWriteDelay Point = "store.write.delay"
	// ShardStall stalls the concurrent driver's execution path while
	// holding the target shard's lock.
	ShardStall Point = "shard.stall"
	// ShardWedge blocks the execution path indefinitely while holding
	// the shard lock, until Release is called (the stall watchdog
	// releases it when it fires). Without a watchdog a wedge hangs the
	// run — that is the scenario the watchdog exists for.
	ShardWedge Point = "shard.wedge"
	// SchedGrantDelay defers an operation the protocol would have been
	// asked about: the driver treats the request as delayed and retries.
	SchedGrantDelay Point = "sched.grant.delay"
	// TxnForcedAbort victimizes the requesting transaction instance
	// (with its full dirty-read cascade).
	TxnForcedAbort Point = "txn.abort"
)

// Points returns every registered fault point, sorted.
func Points() []Point {
	pts := []Point{
		WALTorn, WALCorrupt, WALShort, WALCrash,
		WALRotateCrash, WALGroupPartial,
		StoreReadDelay, StoreWriteDelay,
		ShardStall, ShardWedge,
		SchedGrantDelay, TxnForcedAbort,
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

// ErrCrash is the sticky error an injected crash surfaces (torn or
// clean WAL crash). Drivers propagate it as the run error; harnesses
// match it with errors.Is to distinguish an injected crash — whose
// recovery path is then certified — from a real failure.
var ErrCrash = errors.New("fault: injected crash")

// defaultDelay parameterizes latency-style points with no explicit
// duration in the spec.
const defaultDelay = 500 * time.Microsecond

// Rule arms one fault point.
type Rule struct {
	Point Point
	// Rate is the firing probability per consultation, in [0,1].
	Rate float64
	// Param parameterizes latency-style faults (stall duration).
	Param time.Duration
}

// Spec is a parsed fault specification: the set of armed points.
type Spec struct {
	Rules []Rule
}

// ParseSpec parses the "point:rate[:duration],..." grammar. Unknown
// points, malformed rates and duplicate points are errors.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	known := make(map[Point]bool)
	for _, p := range Points() {
		known[p] = true
	}
	seen := make(map[Point]bool)
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		parts := strings.Split(field, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return Spec{}, fmt.Errorf("fault: rule %q is not point:rate[:duration]", field)
		}
		p := Point(strings.TrimSpace(parts[0]))
		if !known[p] {
			return Spec{}, fmt.Errorf("fault: unknown fault point %q (have %s)", p, joinPoints())
		}
		if seen[p] {
			return Spec{}, fmt.Errorf("fault: duplicate rule for point %q", p)
		}
		seen[p] = true
		rate, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil || rate < 0 || rate > 1 {
			return Spec{}, fmt.Errorf("fault: rate %q for point %q is not a probability in [0,1]", parts[1], p)
		}
		rule := Rule{Point: p, Rate: rate}
		if len(parts) == 3 {
			d, err := time.ParseDuration(strings.TrimSpace(parts[2]))
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("fault: duration %q for point %q: %v", parts[2], p, err)
			}
			rule.Param = d
		}
		spec.Rules = append(spec.Rules, rule)
	}
	sort.Slice(spec.Rules, func(i, j int) bool { return spec.Rules[i].Point < spec.Rules[j].Point })
	return spec, nil
}

// MustParseSpec is ParseSpec for compile-time-known specs; it panics
// on error.
func MustParseSpec(s string) Spec {
	spec, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// String renders the spec in canonical (parseable, sorted) form.
func (s Spec) String() string {
	out := make([]string, 0, len(s.Rules))
	for _, r := range s.Rules {
		f := fmt.Sprintf("%s:%g", r.Point, r.Rate)
		if r.Param > 0 {
			f += ":" + r.Param.String()
		}
		out = append(out, f)
	}
	return strings.Join(out, ",")
}

func joinPoints() string {
	pts := Points()
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = string(p)
	}
	return strings.Join(out, " ")
}

// pointState tracks one armed point's consultations.
type pointState struct {
	rule  Rule
	calls atomic.Int64
	fired atomic.Int64
	mu    sync.Mutex
	// firedAt records the call indices that fired (capped; the full
	// set is folded into the fingerprint hash).
	firedAt []int64
	firedH  uint64
}

// Injector decides fault firings. All methods are safe for concurrent
// use and safe on a nil receiver (a nil *Injector never fires), so
// call sites need no guards.
type Injector struct {
	seed   int64
	spec   Spec
	points map[Point]*pointState

	releaseOnce sync.Once
	released    chan struct{}
}

// scheduleCap bounds the per-point stored firing indices; counts and
// the fingerprint always cover every firing.
const scheduleCap = 4096

// New returns an injector armed with the spec's rules, drawing
// deterministically from the seed.
func New(seed int64, spec Spec) *Injector {
	in := &Injector{
		seed:     seed,
		spec:     spec,
		points:   make(map[Point]*pointState, len(spec.Rules)),
		released: make(chan struct{}),
	}
	for _, r := range spec.Rules {
		ps := &pointState{rule: r, firedH: fnvOffset}
		in.points[r.Point] = ps
	}
	return in
}

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Spec returns the armed spec.
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// Active reports whether the point is armed (useful to skip expensive
// setup around an unarmed point).
func (in *Injector) Active(p Point) bool {
	if in == nil {
		return false
	}
	_, ok := in.points[p]
	return ok
}

// Fire consults the point: the call increments the point's call index
// and reports whether the fault fires at that index. The decision is a
// pure function of (seed, point, index).
func (in *Injector) Fire(p Point) bool {
	fired, _ := in.fire(p)
	return fired
}

// FireCut is Fire plus a deterministic cut in [0,n) drawn from the
// same consultation, for faults that need a size (how many bytes of a
// torn record survive). n must be positive.
func (in *Injector) FireCut(p Point, n int) (bool, int) {
	fired, h := in.fire(p)
	if !fired || n <= 0 {
		return fired, 0
	}
	return true, int((h >> 17) % uint64(n))
}

func (in *Injector) fire(p Point) (bool, uint64) {
	if in == nil {
		return false, 0
	}
	ps, ok := in.points[p]
	if !ok {
		return false, 0
	}
	n := ps.calls.Add(1)
	h := splitmix64(uint64(in.seed) ^ pointHash(p) ^ uint64(n)*0x9E3779B97F4A7C15)
	// 53 high bits give a uniform float in [0,1).
	if float64(h>>11)/(1<<53) >= ps.rule.Rate {
		return false, h
	}
	ps.fired.Add(1)
	ps.mu.Lock()
	if len(ps.firedAt) < scheduleCap {
		ps.firedAt = append(ps.firedAt, n)
	}
	ps.firedH = fnvMix(ps.firedH, uint64(n))
	ps.mu.Unlock()
	return true, h
}

// Latency returns the point's stall duration (its Param, defaulted for
// armed latency points with none given).
func (in *Injector) Latency(p Point) time.Duration {
	if in == nil {
		return 0
	}
	ps, ok := in.points[p]
	if !ok {
		return 0
	}
	if ps.rule.Param > 0 {
		return ps.rule.Param
	}
	return defaultDelay
}

// Wedge blocks until Release is called. The concurrent driver's
// shard-wedge fault point parks here, modeling a worker wedged inside
// the execution path; the stall watchdog calls Release when it fires.
func (in *Injector) Wedge() {
	if in == nil {
		return
	}
	<-in.released
}

// WedgeCtx is Wedge bounded by a context: it returns when Release is
// called or when ctx is canceled, whichever comes first. Run
// cancellation (a -timeout deadline, a watchdog escalation) thereby
// unwedges workers without needing a separate release channel per run.
func (in *Injector) WedgeCtx(ctx context.Context) {
	if in == nil {
		return
	}
	select {
	case <-in.released:
	case <-ctx.Done():
	}
}

// Release unwedges every current and future Wedge call. Idempotent.
func (in *Injector) Release() {
	if in == nil {
		return
	}
	in.releaseOnce.Do(func() { close(in.released) })
}

// PointSchedule summarizes one point's firings.
type PointSchedule struct {
	Point Point `json:"point"`
	// Calls is the number of consultations; Fired how many fired.
	Calls int64 `json:"calls"`
	Fired int64 `json:"fired"`
	// FiredAt lists the call indices that fired (capped at 4096; the
	// fingerprint covers all of them).
	FiredAt []int64 `json:"fired_at,omitempty"`
}

// Schedule returns the full firing schedule so far, sorted by point.
func (in *Injector) Schedule() []PointSchedule {
	if in == nil {
		return nil
	}
	out := make([]PointSchedule, 0, len(in.points))
	for p, ps := range in.points {
		ps.mu.Lock()
		fired := append([]int64(nil), ps.firedAt...)
		ps.mu.Unlock()
		out = append(out, PointSchedule{
			Point: p, Calls: ps.calls.Load(), Fired: ps.fired.Load(), FiredAt: fired,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// Fingerprint identifies the firing schedule: equal fingerprints mean
// every armed point was consulted the same number of times and fired
// at exactly the same call indices.
func (in *Injector) Fingerprint() string {
	if in == nil {
		return "none"
	}
	h := uint64(fnvOffset)
	for _, s := range in.Schedule() {
		h = fnvMix(h, pointHash(s.Point))
		h = fnvMix(h, uint64(s.Calls))
		h = fnvMix(h, uint64(s.Fired))
		ps := in.points[s.Point]
		ps.mu.Lock()
		h = fnvMix(h, ps.firedH)
		ps.mu.Unlock()
	}
	return fmt.Sprintf("%016x", h)
}

const fnvOffset = 14695981039346656037

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return h
}

func pointHash(p Point) uint64 {
	h := fnv.New64a()
	h.Write([]byte(p))
	return h.Sum64()
}

// splitmix64 is the SplitMix64 mixer; a full-avalanche bijection, so
// per-index draws are effectively independent uniform samples.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
