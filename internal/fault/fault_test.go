package fault

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("wal.torn:0.01,txn.abort:0.05,store.read.delay:0.1:2ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(spec.Rules))
	}
	// Canonical form is sorted and re-parseable.
	round, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", spec.String(), err)
	}
	if round.String() != spec.String() {
		t.Fatalf("round trip changed spec: %q vs %q", round.String(), spec.String())
	}
	var delay Rule
	for _, r := range spec.Rules {
		if r.Point == StoreReadDelay {
			delay = r
		}
	}
	if delay.Rate != 0.1 || delay.Param != 2*time.Millisecond {
		t.Fatalf("store.read.delay rule = %+v", delay)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"nope:0.5",                  // unknown point
		"wal.torn",                  // missing rate
		"wal.torn:1.5",              // rate out of range
		"wal.torn:x",                // malformed rate
		"wal.torn:0.1:zzz",          // malformed duration
		"wal.torn:0.1:1s:junk",      // too many fields
		"wal.torn:0.1,wal.torn:0.2", // duplicate
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
	if spec, err := ParseSpec("  "); err != nil || len(spec.Rules) != 0 {
		t.Errorf("blank spec should parse empty, got %v / %v", spec, err)
	}
}

func TestDeterministicFiring(t *testing.T) {
	spec := MustParseSpec("txn.abort:0.2,wal.torn:0.05")
	a := New(42, spec)
	b := New(42, spec)
	const n = 5000
	for i := 0; i < n; i++ {
		if a.Fire(TxnForcedAbort) != b.Fire(TxnForcedAbort) {
			t.Fatalf("same-seed injectors diverged at txn.abort call %d", i)
		}
		if a.Fire(WALTorn) != b.Fire(WALTorn) {
			t.Fatalf("same-seed injectors diverged at wal.torn call %d", i)
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	// Interleaving order between points must not matter: consult the
	// points in a different order and still match.
	c := New(42, spec)
	for i := 0; i < n; i++ {
		c.Fire(WALTorn)
	}
	for i := 0; i < n; i++ {
		c.Fire(TxnForcedAbort)
	}
	if c.Fingerprint() != a.Fingerprint() {
		t.Fatal("firing schedule depends on cross-point interleaving")
	}
	// A different seed yields a different schedule.
	d := New(43, spec)
	for i := 0; i < n; i++ {
		d.Fire(TxnForcedAbort)
		d.Fire(WALTorn)
	}
	if d.Fingerprint() == a.Fingerprint() {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestFiringRate(t *testing.T) {
	in := New(7, MustParseSpec("txn.abort:0.1"))
	fired := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if in.Fire(TxnForcedAbort) {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("rate 0.1 fired %.3f of %d calls", frac, n)
	}
	sched := in.Schedule()
	if len(sched) != 1 || sched[0].Calls != n || sched[0].Fired != int64(fired) {
		t.Fatalf("schedule mismatch: %+v", sched)
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Fire(WALTorn) || in.Active(WALTorn) {
		t.Fatal("nil injector fired")
	}
	if fired, _ := in.FireCut(WALTorn, 10); fired {
		t.Fatal("nil injector FireCut fired")
	}
	if in.Latency(StoreReadDelay) != 0 || in.Seed() != 0 {
		t.Fatal("nil injector leaked values")
	}
	if in.Schedule() != nil || in.Fingerprint() != "none" {
		t.Fatal("nil injector schedule not empty")
	}
	in.Wedge()   // must not block
	in.Release() // must not panic
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in := New(1, MustParseSpec("wal.torn:1"))
	for i := 0; i < 100; i++ {
		if in.Fire(TxnForcedAbort) {
			t.Fatal("unarmed point fired")
		}
	}
	if !in.Fire(WALTorn) {
		t.Fatal("rate-1 point did not fire")
	}
}

func TestFireCutBounds(t *testing.T) {
	in := New(3, MustParseSpec("wal.torn:1"))
	for i := 0; i < 1000; i++ {
		fired, cut := in.FireCut(WALTorn, 16)
		if !fired {
			t.Fatal("rate-1 point did not fire")
		}
		if cut < 0 || cut >= 16 {
			t.Fatalf("cut %d out of [0,16)", cut)
		}
	}
}

func TestWedgeRelease(t *testing.T) {
	in := New(1, Spec{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			in.Wedge()
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		t.Fatal("Wedge returned before Release")
	case <-time.After(20 * time.Millisecond):
	}
	in.Release()
	in.Release() // idempotent
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wedge did not return after Release")
	}
	in.Wedge() // post-release wedges pass straight through
}

func TestLatencyDefaults(t *testing.T) {
	in := New(1, MustParseSpec("store.read.delay:0.5,shard.stall:0.5:3ms"))
	if in.Latency(StoreReadDelay) != defaultDelay {
		t.Fatalf("default latency = %v", in.Latency(StoreReadDelay))
	}
	if in.Latency(ShardStall) != 3*time.Millisecond {
		t.Fatalf("explicit latency = %v", in.Latency(ShardStall))
	}
	if in.Latency(WALTorn) != 0 {
		t.Fatal("unarmed point has latency")
	}
}

func TestPointsRegistryCoversSpecGrammar(t *testing.T) {
	for _, p := range Points() {
		if _, err := ParseSpec(string(p) + ":0.5"); err != nil {
			t.Errorf("registered point %q rejected by parser: %v", p, err)
		}
	}
	if !strings.Contains(joinPoints(), string(WALTorn)) {
		t.Fatal("joinPoints misses registered points")
	}
}
