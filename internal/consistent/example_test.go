package consistent_test

import (
	"fmt"

	"relser/internal/consistent"
	"relser/internal/paperfig"
)

// ExampleIsRelativelyConsistent reproduces the paper's Figure 4
// separation: the schedule is relatively serial, yet exhaustive search
// finds no conflict-equivalent relatively atomic schedule.
func ExampleIsRelativelyConsistent() {
	inst := paperfig.Figure4()
	res := consistent.IsRelativelyConsistent(inst.Schedules["S"], inst.Spec)
	fmt.Println("relatively consistent:", res.Consistent)
	fmt.Println("states explored:", res.StatesExplored)
	// Output:
	// relatively consistent: false
	// states explored: 10
}

// ExampleDecide shows budgeted decisions: the search reports ErrBudget
// instead of an answer when the state bound is hit.
func ExampleDecide() {
	inst := paperfig.Figure4()
	_, err := consistent.Decide(inst.Schedules["S"], inst.Spec, consistent.Options{MaxStates: 1})
	fmt.Println(err)
	// Output:
	// consistent: state budget exhausted
}
