package consistent_test

import (
	"errors"
	"testing"

	"relser/internal/consistent"
	"relser/internal/core"
	"relser/internal/paperfig"
)

// TestE4Fig4NotRelativelyConsistent is experiment E4: the Figure 4
// schedule is relatively serial but NOT relatively consistent — the
// witness separating the paper's class from Farrag and Özsu's.
func TestE4Fig4NotRelativelyConsistent(t *testing.T) {
	inst := paperfig.Figure4()
	s := inst.Schedules["S"]

	if ok, v := core.IsRelativelySerial(s, inst.Spec); !ok {
		t.Fatalf("Figure 4's S must be relatively serial: %v", v)
	}
	res := consistent.IsRelativelyConsistent(s, inst.Spec)
	if res.Consistent {
		t.Errorf("paper: S is not conflict equivalent to any relatively atomic schedule; search found %s", res.Witness)
	}
	if res.StatesExplored == 0 {
		t.Error("search should have explored at least the initial state")
	}
}

func TestRelativelyAtomicSchedulesAreConsistent(t *testing.T) {
	// Sra (Figure 1) is itself relatively atomic, hence trivially
	// relatively consistent — and the witness search must succeed.
	inst := paperfig.Figure1()
	sra := inst.Schedules["Sra"]
	res := consistent.IsRelativelyConsistent(sra, inst.Spec)
	if !res.Consistent {
		t.Fatal("a relatively atomic schedule is relatively consistent")
	}
	if res.Witness == nil {
		t.Fatal("expected a witness")
	}
	if ok, v := core.IsRelativelyAtomic(res.Witness, inst.Spec); !ok {
		t.Errorf("witness %s is not relatively atomic: %v", res.Witness, v)
	}
	if !core.ConflictEquivalent(res.Witness, sra) {
		t.Errorf("witness %s is not conflict equivalent to Sra", res.Witness)
	}
}

func TestSrsIsRelativelyConsistent(t *testing.T) {
	// Figure 1's Srs: the interleaved operations carry no dependencies,
	// so they can be pushed/pulled out; a relatively atomic equivalent
	// exists.
	inst := paperfig.Figure1()
	srs := inst.Schedules["Srs"]
	res := consistent.IsRelativelyConsistent(srs, inst.Spec)
	if !res.Consistent {
		t.Fatal("Srs should be relatively consistent")
	}
	if ok, v := core.IsRelativelyAtomic(res.Witness, inst.Spec); !ok {
		t.Errorf("witness not relatively atomic: %v", v)
	}
	if !core.ConflictEquivalent(res.Witness, srs) {
		t.Error("witness not conflict equivalent to Srs")
	}
}

func TestSerialSchedulesAlwaysConsistent(t *testing.T) {
	for _, named := range paperfig.All() {
		s, err := core.SerialSchedule(named.Instance.Set)
		if err != nil {
			t.Fatal(err)
		}
		res := consistent.IsRelativelyConsistent(s, named.Instance.Spec)
		if !res.Consistent {
			t.Errorf("%s: serial schedule must be relatively consistent", named.Name)
		}
	}
}

func TestConsistentImpliesRelativelySerializable(t *testing.T) {
	// Figure 5's containment RC ⊆ RSer on all fixture schedules.
	for _, named := range paperfig.All() {
		for _, name := range named.Instance.Names {
			s := named.Instance.Schedules[name]
			res := consistent.IsRelativelyConsistent(s, named.Instance.Spec)
			if res.Consistent && !core.IsRelativelySerializable(s, named.Instance.Spec) {
				t.Errorf("%s/%s: relatively consistent but RSG cyclic (containment violated)", named.Name, name)
			}
		}
	}
}

func TestNonSerializableNeverConsistent(t *testing.T) {
	// A schedule that is not even relatively serializable cannot be
	// relatively consistent. Under absolute atomicity, Figure 1's Srs
	// is not conflict serializable, hence not relatively consistent.
	inst := paperfig.Figure1()
	abs := core.NewSpec(inst.Set)
	res := consistent.IsRelativelyConsistent(inst.Schedules["Srs"], abs)
	if res.Consistent {
		t.Error("Srs under absolute atomicity is not conflict serializable; must not be consistent")
	}
}

func TestAbsoluteAtomicityMatchesConflictSerializability(t *testing.T) {
	// Under absolute atomicity, relatively atomic = serial, so
	// relatively consistent = conflict serializable. Cross-check the
	// search against the SG test on all fixture schedules.
	for _, named := range paperfig.All() {
		abs := core.NewSpec(named.Instance.Set)
		for _, name := range named.Instance.Names {
			s := named.Instance.Schedules[name]
			res := consistent.IsRelativelyConsistent(s, abs)
			if res.Consistent != core.IsConflictSerializable(s) {
				t.Errorf("%s/%s: consistent=%v but conflict-serializable=%v",
					named.Name, name, res.Consistent, core.IsConflictSerializable(s))
			}
		}
	}
}

func TestDecideBudget(t *testing.T) {
	inst := paperfig.Figure4()
	s := inst.Schedules["S"]
	_, err := consistent.Decide(s, inst.Spec, consistent.Options{MaxStates: 1})
	if !errors.Is(err, consistent.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	// A generous budget decides without error.
	res, err := consistent.Decide(s, inst.Spec, consistent.Options{MaxStates: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("Figure 4's S must not be consistent")
	}
}

func TestWitnessOrderConflictsPreserved(t *testing.T) {
	// The witness must order every conflicting pair as the original.
	inst := paperfig.Figure1()
	s2 := inst.Schedules["S2"]
	res := consistent.IsRelativelyConsistent(s2, inst.Spec)
	if !res.Consistent {
		// S2 is conflict equivalent to Srs which is relatively serial;
		// whether it is relatively consistent requires the search — the
		// paper does not classify it. If inconsistent, nothing to check.
		t.Skip("S2 not relatively consistent; no witness to check")
	}
	for _, pair := range s2.ConflictPairs() {
		if !res.Witness.Precedes(pair.First, pair.Second) {
			t.Errorf("witness reorders conflicting pair %v, %v", pair.First, pair.Second)
		}
	}
}
