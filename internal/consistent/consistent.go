// Package consistent implements the comparator class of Farrag and
// Özsu [FÖ89] that the paper improves on: a schedule is *relatively
// consistent* if it is conflict equivalent to some relatively atomic
// schedule (the paper's Definition 1 schedules, Farrag and Özsu's
// "correct" schedules).
//
// Recognizing this class is NP-complete [KB92], and the package makes
// the exponent concrete: the exact decision procedure below searches
// the linear extensions of the schedule's conflict/program-order
// partial order for one that is relatively atomic, memoizing failed
// frontier states. The search is exact; on adversarial instances (many
// operations without dependencies astride atomic units — precisely the
// ambiguity §2 of the paper describes) it exhibits the exponential
// behaviour that motivates the paper's polynomial RSG test, which
// experiment E7 measures.
package consistent

import (
	"errors"
	"fmt"

	"relser/internal/core"
)

// ErrBudget is returned when the search exceeds the configured state
// budget before reaching a decision.
var ErrBudget = errors.New("consistent: state budget exhausted")

// Options configures the search.
type Options struct {
	// MaxStates bounds the number of distinct frontier states explored;
	// zero means unbounded. When the bound is hit the search returns
	// ErrBudget rather than an answer.
	MaxStates int
}

// Result reports the outcome of a relatively-consistent decision.
type Result struct {
	// Consistent reports membership: a conflict-equivalent relatively
	// atomic schedule exists.
	Consistent bool
	// Witness is such a schedule when Consistent, nil otherwise.
	Witness *core.Schedule
	// StatesExplored counts distinct frontier states visited; it is the
	// cost measure experiment E7 reports alongside wall time.
	StatesExplored int
}

// IsRelativelyConsistent decides membership with no state budget.
func IsRelativelyConsistent(s *core.Schedule, sp *core.Spec) Result {
	res, err := Decide(s, sp, Options{})
	if err != nil {
		panic(fmt.Sprintf("consistent: unbounded search returned %v", err)) // unreachable
	}
	return res
}

// Decide searches for a conflict-equivalent relatively atomic schedule
// under the given options.
//
// The schedules conflict equivalent to S are exactly the linear
// extensions of the partial order P = (program order ∪ the order S
// imposes on conflicting pairs). The search therefore builds S's
// constraint digraph once and enumerates its linear extensions
// depth-first, pruning any placement that would put an operation of Tj
// strictly inside an open atomic unit of some Ti relative to Tj, and
// memoizing frontier states (the per-transaction next-operation
// vector) that cannot be completed.
func Decide(s *core.Schedule, sp *core.Spec, opts Options) (Result, error) {
	ts := s.Set()
	sr := &searcher{
		ts:     ts,
		sp:     sp,
		txns:   ts.Txns(),
		opts:   opts,
		failed: make(map[string]bool),
	}
	sr.buildConstraints(s)
	state := make([]int, len(sr.txns))
	sr.placed = make([]core.Op, 0, ts.NumOps())
	ok, err := sr.dfs(state, ts.NumOps())
	res := Result{Consistent: ok, StatesExplored: sr.states}
	if err != nil {
		return res, err
	}
	if ok {
		w, werr := core.NewSchedule(ts, sr.placed)
		if werr != nil {
			panic(fmt.Sprintf("consistent: invalid witness: %v", werr)) // unreachable
		}
		res.Witness = w
	}
	return res, nil
}

type searcher struct {
	ts   *core.TxnSet
	sp   *core.Spec
	txns []*core.Transaction
	opts Options

	// preds[g] lists the global op indices that must precede global op
	// g in every conflict-equivalent schedule (conflict predecessors;
	// program order is implicit in per-transaction placement).
	preds [][]int

	failed map[string]bool
	placed []core.Op
	states int
}

func (sr *searcher) buildConstraints(s *core.Schedule) {
	n := sr.ts.NumOps()
	sr.preds = make([][]int, n)
	// Conflicts are same-object; scan each object's access history.
	history := make(map[string][]core.Op)
	for pos := 0; pos < s.Len(); pos++ {
		o := s.At(pos)
		history[o.Object] = append(history[o.Object], o)
	}
	for _, ops := range history {
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				if ops[i].ConflictsWith(ops[j]) {
					g := sr.ts.GlobalIndexOf(ops[j])
					sr.preds[g] = append(sr.preds[g], sr.ts.GlobalIndexOf(ops[i]))
				}
			}
		}
	}
}

func (sr *searcher) dfs(state []int, remaining int) (bool, error) {
	if remaining == 0 {
		return true, nil
	}
	key := stateKey(state)
	if sr.failed[key] {
		return false, nil
	}
	sr.states++
	if sr.opts.MaxStates > 0 && sr.states > sr.opts.MaxStates {
		return false, ErrBudget
	}
	for j, tj := range sr.txns {
		c := state[j]
		if c == tj.Len() {
			continue
		}
		op := tj.Op(c)
		if !sr.ready(op, state) || !sr.legal(tj.ID, state, j) {
			continue
		}
		state[j]++
		sr.placed = append(sr.placed, op)
		ok, err := sr.dfs(state, remaining-1)
		if ok || err != nil {
			return ok, err
		}
		sr.placed = sr.placed[:len(sr.placed)-1]
		state[j]--
	}
	sr.failed[key] = true
	return false, nil
}

// ready reports whether all conflict predecessors of op are placed.
func (sr *searcher) ready(op core.Op, state []int) bool {
	for _, g := range sr.preds[sr.ts.GlobalIndexOf(op)] {
		p := sr.ts.OpAt(g)
		// p is placed iff its transaction's cursor has passed its seq.
		if state[sr.txnIndex(p.Txn)] <= p.Seq {
			return false
		}
	}
	return true
}

// legal reports whether placing the next operation of Tj now keeps the
// prefix relatively atomic: no other transaction Ti may be strictly
// inside an atomic unit of Atomicity(Ti, Tj).
func (sr *searcher) legal(j core.TxnID, state []int, jIdx int) bool {
	for i, ti := range sr.txns {
		if i == jIdx {
			continue
		}
		c := state[i]
		if c == 0 || c == ti.Len() {
			continue
		}
		start, _ := sr.sp.UnitOf(ti.ID, c, j)
		if start < c {
			// Unit began (operations start..c-1 placed) and has pending
			// operations (c is inside it): Tj would interleave.
			return false
		}
	}
	return true
}

func (sr *searcher) txnIndex(id core.TxnID) int {
	// Transactions are sorted by ID in TxnSet; binary search is
	// overkill for the small sets this searcher sees.
	for i, t := range sr.txns {
		if t.ID == id {
			return i
		}
	}
	panic(fmt.Sprintf("consistent: unknown transaction T%d", id))
}

func stateKey(state []int) string {
	// Fixed two bytes per cursor keeps keys unambiguous (cursors are
	// bounded by transaction length, far below 65536).
	buf := make([]byte, 2*len(state))
	for i, c := range state {
		buf[2*i] = byte(c >> 8)
		buf[2*i+1] = byte(c)
	}
	return string(buf)
}
