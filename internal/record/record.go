// Package record is the deterministic record/replay layer: it captures
// one run of the engine pipeline — the admitted traffic (as workload
// build parameters, which rebuild the exact programs), the protocol and
// driver configuration, the fault spec and seed, the engine's per-stage
// lifecycle log, and the run's outcome (certification verdict, final
// store, WAL hash, fault fingerprint) — into a CRC-framed, versioned,
// append-only .rsrec artifact anchored to a storage snapshot of the
// initial state.
//
// Because the deterministic driver is a pure function of (programs,
// protocol, seed) and the fault injector a pure function of (seed,
// point, call index), a recording replays byte-identically: Replay
// re-executes the run through the same pipeline and asserts identical
// certification verdicts, WAL bytes, stage log and final store.
// Backfill mode re-runs the same traffic under a different atomicity
// spec, protocol or shard count and reports the divergence — verdict
// flips, per-object state diffs, abort-class changes — turning every
// incident into a regression scenario ("replay yesterday's wedge with
// -shards 16").
//
// Artifact format (.rsrec):
//
//	[magic "RSRC"][version u8][pad3]                      8-byte header
//	frames: [size u32][crc u32][payload]                  CRC32-Castagnoli over payload
//	payload: [type u8][body]
//
// Frame types, in file order: manifest (JSON Manifest), snapshot
// (storage.EncodeSnapshot of the initial store), zero or more stage
// frames (JSON StageEvent, one per engine lifecycle crossing), outcome
// (JSON Outcome). Like the WAL and segment formats, every byte-prefix
// of a valid artifact decodes to a frame-prefix: a torn tail truncates,
// it never invents or alters a frame.
package record

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"relser/internal/engine"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

// Artifact header. Version 2 added the manifest's rsg_retire field;
// the frame format is unchanged, so both versions decode. Version-1
// recordings predate bounded-memory certification and replay with
// retirement forced off (see Manifest.RSGRetire).
const (
	recMagic      = "RSRC"
	recVersion    = 2
	recVersionMin = 1
	headerSize    = 8
)

// Frame types.
const (
	frameManifest byte = iota + 1
	frameSnapshot
	frameStage
	frameOutcome
)

// ErrUnreadable reports an artifact that cannot be decoded: bad magic,
// unsupported version, checksum failure, or a missing mandatory frame.
// rsreplay maps it to exit status 4.
var ErrUnreadable = errors.New("record: unreadable recording")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Manifest is the recording header: everything needed to rebuild the
// run's configuration, including the fault spec and seed (so the
// artifact is self-describing — the same convention the obs plane
// stamps into flight dumps).
type Manifest struct {
	Format int `json:"format"`
	// Workload rebuilds the exact programs, oracle, semantics, initial
	// values and invariant (workload.Build).
	Workload workload.BuildParams `json:"workload"`
	Protocol string               `json:"protocol"`
	// Seed drives the driver's admission shuffle; BackoffSeed the
	// restart-backoff stream (0 derives from Seed).
	Seed        int64 `json:"seed"`
	BackoffSeed int64 `json:"backoff_seed,omitempty"`
	MPL         int   `json:"mpl"`
	Shards      int   `json:"shards,omitempty"`
	MaxRestarts int   `json:"max_restarts,omitempty"`
	// Concurrent marks a goroutine-driver run. Only deterministic
	// (tick-driver) recordings replay byte-identically; concurrent
	// recordings replay outcome-compatibly (same outcome class, same
	// commit count, same verdict).
	Concurrent bool          `json:"concurrent,omitempty"`
	Deadline   int64         `json:"deadline,omitempty"`
	Watchdog   time.Duration `json:"watchdog,omitempty"`
	// FaultSpec and FaultSeed re-arm the injector on replay; the firing
	// schedule is a pure function of (seed, point, call index).
	FaultSpec string `json:"fault_spec,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	// WALMode records the durability shape so replay reproduces the
	// same byte stream: "" (no WAL), "single" (one lane), "segmented"
	// (per-shard group-commit log with WALShards lanes rotating at
	// WALSegmentBytes).
	WALMode         string `json:"wal_mode,omitempty"`
	WALShards       int    `json:"wal_shards,omitempty"`
	WALSegmentBytes int64  `json:"wal_segment_bytes,omitempty"`
	// RSGRetire records whether bounded-memory certification was on
	// ("on") or off ("off") during the recorded run. Replay keys off
	// the field's value, not the format version: recordings that
	// predate the field (format 1, or a backfilled manifest without
	// it) replay with retirement forced off, matching the semantics
	// they were recorded under. Retirement is verdict-equivalent by
	// construction, so this is defense in depth for byte-identity.
	RSGRetire string `json:"rsg_retire,omitempty"`
}

// Stage names one recorded engine lifecycle crossing. The recorded
// stages form a closed registry (Stages); the registrydrift analyzer
// validates Stage-typed string literals against it, so a typo cannot
// silently produce a stage name replay will never match.
type Stage string

// The registered recording stages.
const (
	StageAdmit   Stage = "admit"
	StageCommit  Stage = "commit"
	StageAbort   Stage = "abort"
	StageRecover Stage = "recover"
)

// Stages returns the registered recording stages.
func Stages() []Stage {
	return []Stage{StageAdmit, StageCommit, StageAbort, StageRecover}
}

// StageEvent is one engine lifecycle crossing captured by the
// recording tap. Only the rare stages are recorded (admit, commit,
// abort, recover) — the tap leaves the per-operation stages as nil
// hook fields, one nil check each.
type StageEvent struct {
	Stage    Stage `json:"stage"`
	Instance int64 `json:"instance,omitempty"`
	Txn      int   `json:"txn,omitempty"`
	Restarts int   `json:"restarts,omitempty"`
}

// Outcome is the recorded end state of the run, the baseline replay
// compares against.
type Outcome struct {
	// Outcome classifies how the run ended: completed | crashed
	// (fault.ErrCrash) | wedged (*engine.WedgeError) | canceled |
	// error.
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// Verdict is the Theorem 1 certification of the committed schedule:
	// "pass", or the RSG cycle diagnosis. Empty when the run did not
	// complete.
	Verdict string `json:"verdict,omitempty"`
	// Invariant is the workload data-invariant check on the final
	// store: "pass" or the violation. Empty when not checked.
	Invariant string `json:"invariant,omitempty"`

	Committed      int `json:"committed"`
	Aborts         int `json:"aborts"`
	Restarts       int `json:"restarts"`
	InjectedAborts int `json:"injected_aborts,omitempty"`
	InjectedDelays int `json:"injected_delays,omitempty"`
	LoadSheds      int `json:"load_sheds,omitempty"`
	DeadlineAborts int `json:"deadline_aborts,omitempty"`
	CancelAborts   int `json:"cancel_aborts,omitempty"`

	// FaultFingerprint and FaultSchedule identify the realized firing
	// schedule (fault.Injector); equal fingerprints mean every armed
	// point fired at exactly the same call indices.
	FaultFingerprint string                `json:"fault_fingerprint,omitempty"`
	FaultSchedule    []fault.PointSchedule `json:"fault_schedule,omitempty"`

	// WALHash/WALLen fingerprint the emitted log bytes (FNV-1a 64);
	// empty when the run carried no WAL.
	WALHash string `json:"wal_hash,omitempty"`
	WALLen  int    `json:"wal_len,omitempty"`

	// StageHash fingerprints the stage log (order-sensitive).
	StageHash string `json:"stage_hash,omitempty"`

	// Final is the final store snapshot.
	Final map[string]storage.Value `json:"final,omitempty"`
}

// Recorder buffers one run's recording. Attach its Hooks to the run's
// config (or workload.RunOptions.Hooks), call Finish when the run
// returns, then WriteFile. The stage tap appends to a slice under a
// mutex — safe under the concurrent driver, and cheap enough that
// recording stays well under the observability plane's overhead
// budget.
type Recorder struct {
	mu      sync.Mutex
	m       Manifest
	initial map[string]storage.Value
	stages  []StageEvent
	outcome *Outcome
	wal     []byte

	framesC *metrics.Counter
	bytesC  *metrics.Counter
}

// NewRecorder starts a recording described by the manifest.
func NewRecorder(m Manifest) *Recorder {
	m.Format = recVersion
	return &Recorder{m: m}
}

// SetMetrics attaches a registry: frame and byte counts land under
// record.frames / record.bytes so the ops endpoint can report recording
// progress live.
func (r *Recorder) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	r.framesC = reg.Counter("record.frames")
	r.bytesC = reg.Counter("record.bytes")
	r.mu.Unlock()
}

// Manifest returns the recording's manifest.
func (r *Recorder) Manifest() Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m
}

// SetInitial anchors the recording to the run's initial store snapshot
// (taken after Workload.Initial is loaded). Replay restores from this
// anchor, so a recording replays without re-deriving state from any
// longer history.
func (r *Recorder) SetInitial(snap map[string]storage.Value) {
	cp := make(map[string]storage.Value, len(snap))
	//rsvet:allow detlint -- order-insensitive: map copy; the codec sorts keys when encoding
	for k, v := range snap {
		cp[k] = v
	}
	r.mu.Lock()
	r.initial = cp
	r.mu.Unlock()
}

// SetWALBytes records the run's emitted log bytes (single-lane WAL
// buffer, or a segmented log flattened with FlattenSegmentSet). Only
// the hash and length are persisted.
func (r *Recorder) SetWALBytes(b []byte) {
	r.mu.Lock()
	r.wal = append([]byte(nil), b...)
	r.mu.Unlock()
}

// Hooks chains the recording tap in front of next on the rare
// lifecycle stages (Admit, Commit, Abort, Recover); the per-operation
// stages keep costing the engine one nil check.
func (r *Recorder) Hooks(next txn.Hooks) txn.Hooks {
	h := next
	h.Admit = chainHook(func(st *engine.Instance) { r.stage(StageAdmit, st) }, next.Admit)
	h.Commit = chainHook(func(st *engine.Instance) { r.stage(StageCommit, st) }, next.Commit)
	h.Abort = chainHook(func(st *engine.Instance) { r.stage(StageAbort, st) }, next.Abort)
	prevRecover := next.Recover
	h.Recover = func() {
		r.mu.Lock()
		r.stages = append(r.stages, StageEvent{Stage: StageRecover})
		r.mu.Unlock()
		if prevRecover != nil {
			prevRecover()
		}
	}
	return h
}

func chainHook(first, then func(*engine.Instance)) func(*engine.Instance) {
	if then == nil {
		return first
	}
	return func(st *engine.Instance) {
		first(st)
		then(st)
	}
}

func (r *Recorder) stage(name Stage, st *engine.Instance) {
	ev := StageEvent{Stage: name, Instance: st.ID, Restarts: st.Restarts}
	if st.Program != nil {
		ev.Txn = int(st.Program.ID)
	}
	r.mu.Lock()
	r.stages = append(r.stages, ev)
	r.mu.Unlock()
}

// Outcome returns the sealed outcome; ok is false before Finish.
func (r *Recorder) Outcome() (Outcome, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.outcome == nil {
		return Outcome{}, false
	}
	return *r.outcome, true
}

// StageEvents returns the number of stage crossings captured so far
// (live recording status for /healthz).
func (r *Recorder) StageEvents() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int64(len(r.stages))
}

// Finish seals the recording with the run's outcome: the result
// counters, the Theorem 1 verdict and invariant check, the fault
// fingerprint and schedule, and the final store snapshot. Safe to call
// with a nil result (failed runs record their error class) and a nil
// injector or store.
func (r *Recorder) Finish(res *txn.Result, runErr error, inj *fault.Injector, store *storage.Store, w *workload.Workload) {
	var final map[string]storage.Value
	if store != nil {
		final = store.Snapshot()
	}
	r.mu.Lock()
	stages := r.stages
	wal := r.wal
	r.mu.Unlock()
	out := buildOutcome(res, runErr, inj, final, wal, stages, w)
	r.mu.Lock()
	r.outcome = &out
	r.mu.Unlock()
}

// buildOutcome assembles an Outcome; Replay uses the same constructor
// for the replayed run, so recorded and replayed baselines are always
// directly comparable.
func buildOutcome(res *txn.Result, runErr error, inj *fault.Injector, final map[string]storage.Value, wal []byte, stages []StageEvent, w *workload.Workload) Outcome {
	out := Outcome{Final: final}
	out.Outcome, out.Error = classifyErr(runErr)
	if res != nil {
		out.Committed = res.Committed
		out.Aborts = res.Aborts
		out.Restarts = res.Restarts
		out.InjectedAborts = res.InjectedAborts
		out.InjectedDelays = res.InjectedDelays
		out.LoadSheds = res.LoadSheds
		out.DeadlineAborts = res.DeadlineAborts
		out.CancelAborts = res.CancelAborts
		if runErr == nil {
			if err := res.Verify(); err != nil {
				out.Verdict = err.Error()
			} else {
				out.Verdict = "pass"
			}
		}
	}
	if runErr == nil && w != nil && w.Invariant != nil && final != nil {
		if err := w.Invariant(final); err != nil {
			out.Invariant = err.Error()
		} else {
			out.Invariant = "pass"
		}
	}
	if inj != nil {
		out.FaultFingerprint = inj.Fingerprint()
		out.FaultSchedule = inj.Schedule()
	}
	if wal != nil {
		out.WALHash = hashBytes(wal)
		out.WALLen = len(wal)
	}
	out.StageHash = hashStages(stages)
	return out
}

// classifyErr maps a run error to its outcome class. The class — not
// the message — is what replay compares: a *engine.WedgeError's text
// embeds wall-clock durations that legitimately vary across replays of
// the same wedge.
func classifyErr(runErr error) (string, string) {
	var we *engine.WedgeError
	switch {
	case runErr == nil:
		return "completed", ""
	case errors.Is(runErr, fault.ErrCrash):
		return "crashed", runErr.Error()
	case errors.As(runErr, &we):
		return "wedged", runErr.Error()
	case errors.Is(runErr, context.DeadlineExceeded) || errors.Is(runErr, context.Canceled):
		return "canceled", runErr.Error()
	default:
		return "error", runErr.Error()
	}
}

func hashBytes(b []byte) string {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// hashStages fingerprints the stage log, order-sensitively.
func hashStages(stages []StageEvent) string {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	for _, ev := range stages {
		for _, c := range []byte(ev.Stage) {
			h ^= uint64(c)
			h *= 1099511628211
		}
		mix(uint64(ev.Instance))
		mix(uint64(ev.Txn))
		mix(uint64(ev.Restarts))
	}
	return fmt.Sprintf("%016x", h)
}

// FlattenSegmentSet serializes a segmented log into one deterministic
// byte string (lanes in index order, segments in chain order) for WAL
// fingerprinting, the same flattening the chaos experiments use for
// byte-identical replay comparison.
func FlattenSegmentSet(set *storage.SegmentSet) []byte {
	if set == nil {
		return nil
	}
	lanes := make([]int, 0, len(set.Shards))
	//rsvet:allow detlint -- order-insensitive: lane ids are collected then sorted below
	for s := range set.Shards {
		lanes = append(lanes, s)
	}
	for i := 1; i < len(lanes); i++ {
		for j := i; j > 0 && lanes[j] < lanes[j-1]; j-- {
			lanes[j], lanes[j-1] = lanes[j-1], lanes[j]
		}
	}
	var out []byte
	for _, s := range lanes {
		for _, seg := range set.Shards[s] {
			out = binary.LittleEndian.AppendUint32(out, uint32(s))
			out = binary.LittleEndian.AppendUint32(out, uint32(len(seg)))
			out = append(out, seg...)
		}
	}
	return out
}
