package record_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"relser/internal/record"
)

// TestOldCorpusReplaysByteIdentical pins the backfill contract for
// recordings that predate bounded-memory certification: the committed
// format-1 corpus has no rsg_retire manifest field, so replay forces
// retirement off and must still be byte-identical.
func TestOldCorpusReplaysByteIdentical(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "recordings", "*.rsrec"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed corpus found: %v", err)
	}
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if b[4] != 1 {
			t.Fatalf("%s: corpus version %d, this test pins the format-1 path", path, b[4])
		}
		rec, err := record.Decode(b)
		if err != nil {
			t.Fatalf("%s: decoding format-1 artifact: %v", path, err)
		}
		if rec.Manifest.RSGRetire != "" {
			t.Fatalf("%s: format-1 manifest unexpectedly carries rsg_retire=%q", path, rec.Manifest.RSGRetire)
		}
		if !rec.Manifest.Concurrent {
			rep, err := record.Replay(context.Background(), rec, record.ReplayOptions{})
			if err != nil {
				t.Fatalf("%s: replay: %v", path, err)
			}
			if !rep.Identical {
				t.Fatalf("%s: pre-retirement recording diverged with retirement forced off: %+v", path, rep.Divergences)
			}
		}
	}
}

// TestVersionWindow: fresh artifacts carry version 2; both in-window
// versions decode, versions outside the window are unreadable.
func TestVersionWindow(t *testing.T) {
	rr, err := record.Record(context.Background(), det("banking", 5))
	if err != nil {
		t.Fatal(err)
	}
	b := rr.Encode()
	if b[4] != 2 {
		t.Fatalf("fresh artifact stamped version %d, want 2", b[4])
	}
	// The frame format is unchanged since version 1, so a version-1
	// header must still decode.
	old := append([]byte(nil), b...)
	old[4] = 1
	if _, err := record.Decode(old); err != nil {
		t.Fatalf("version-1 header rejected: %v", err)
	}
	future := append([]byte(nil), b...)
	future[4] = 3
	if _, err := record.Decode(future); !errors.Is(err, record.ErrUnreadable) {
		t.Fatalf("version-3 header accepted: %v", err)
	}
	if n, clean := record.ScanFrames(future); n != 0 || clean {
		t.Fatalf("ScanFrames accepted version 3: frames=%d clean=%v", n, clean)
	}
}

// TestRetireOnRecordingRoundTrips: a recording made with retirement on
// carries rsg_retire=on and replays byte-identically with retirement
// on — the fast path and epoch machinery are verdict- and
// schedule-invisible.
func TestRetireOnRecordingRoundTrips(t *testing.T) {
	m := det("banking", 11)
	m.Protocol = "rsgt"
	m.RSGRetire = "on"
	rec := mustRecord(t, m)
	if rec.Manifest.RSGRetire != "on" {
		t.Fatalf("manifest lost rsg_retire: %q", rec.Manifest.RSGRetire)
	}
	rep, err := record.Replay(context.Background(), rec, record.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Fatalf("retirement-on recording diverged: %+v", rep.Divergences)
	}
}
