package record

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"relser/internal/storage"
)

// Encode serializes the recording. The artifact is valid even when the
// run never finished (no outcome frame yet); Decode rejects such a
// truncated recording as unreadable, which is the right verdict for a
// replay baseline.
func (r *Recorder) Encode() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]byte, 0, 4096)
	out = append(out, recMagic...)
	out = append(out, recVersion, 0, 0, 0)
	out = appendFrame(out, frameManifest, mustJSON(r.m))
	out = appendFrame(out, frameSnapshot, storage.EncodeSnapshot(0, r.initial))
	for _, ev := range r.stages {
		out = appendFrame(out, frameStage, mustJSON(ev))
	}
	if r.outcome != nil {
		out = appendFrame(out, frameOutcome, mustJSON(*r.outcome))
	}
	if r.framesC != nil {
		r.framesC.Add(int64(2 + len(r.stages) + btoi(r.outcome != nil)))
	}
	if r.bytesC != nil {
		r.bytesC.Add(int64(len(out)))
	}
	return out
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// WriteFile encodes the recording and writes it atomically enough for
// our purposes: to a temp file in place, then rename, so a crash
// mid-write never leaves a half-artifact under the final name.
func (r *Recorder) WriteFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, r.Encode(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All frame payload types are plain structs of scalars, maps and
		// slices; marshalling cannot fail for them.
		panic(fmt.Sprintf("record: marshal: %v", err))
	}
	return b
}

func appendFrame(out []byte, typ byte, body []byte) []byte {
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, typ)
	payload = append(payload, body...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// Recording is a decoded .rsrec artifact.
type Recording struct {
	Manifest Manifest
	// Initial is the anchoring snapshot of the store state the run
	// started from.
	Initial map[string]storage.Value
	Stages  []StageEvent
	Outcome Outcome
}

// ReadFile loads and decodes an artifact; decode failures name the
// file.
func ReadFile(path string) (*Recording, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreadable, err)
	}
	rec, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// Decode parses an artifact. Every failure wraps ErrUnreadable with a
// diagnosis of what broke (magic, version, frame offset + cause,
// missing mandatory frame).
func Decode(b []byte) (*Recording, error) {
	if len(b) < headerSize || string(b[:4]) != recMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrUnreadable)
	}
	if b[4] < recVersionMin || b[4] > recVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (have %d..%d)", ErrUnreadable, b[4], recVersionMin, recVersion)
	}
	rec := &Recording{}
	var sawManifest, sawSnapshot, sawOutcome bool
	off := headerSize
	for off < len(b) {
		payload, next, err := scanFrame(b, off)
		if err != nil {
			return nil, fmt.Errorf("%w: frame at offset %d: %v", ErrUnreadable, off, err)
		}
		typ, body := payload[0], payload[1:]
		switch typ {
		case frameManifest:
			if err := json.Unmarshal(body, &rec.Manifest); err != nil {
				return nil, fmt.Errorf("%w: manifest frame: %v", ErrUnreadable, err)
			}
			sawManifest = true
		case frameSnapshot:
			_, snap, err := storage.DecodeSnapshot(body)
			if err != nil {
				return nil, fmt.Errorf("%w: snapshot frame: %v", ErrUnreadable, err)
			}
			rec.Initial = snap
			sawSnapshot = true
		case frameStage:
			var ev StageEvent
			if err := json.Unmarshal(body, &ev); err != nil {
				return nil, fmt.Errorf("%w: stage frame: %v", ErrUnreadable, err)
			}
			rec.Stages = append(rec.Stages, ev)
		case frameOutcome:
			if err := json.Unmarshal(body, &rec.Outcome); err != nil {
				return nil, fmt.Errorf("%w: outcome frame: %v", ErrUnreadable, err)
			}
			sawOutcome = true
		default:
			return nil, fmt.Errorf("%w: unknown frame type %d at offset %d", ErrUnreadable, typ, off)
		}
		off = next
	}
	switch {
	case !sawManifest:
		return nil, fmt.Errorf("%w: no manifest frame", ErrUnreadable)
	case !sawSnapshot:
		return nil, fmt.Errorf("%w: no snapshot frame", ErrUnreadable)
	case !sawOutcome:
		return nil, fmt.Errorf("%w: no outcome frame (run never finished)", ErrUnreadable)
	}
	return rec, nil
}

// ScanFrames walks the frame stream, returning how many frames decode
// cleanly before damage and whether the artifact ends exactly at a
// frame boundary. It is the prefix-safety surface the fuzz test
// exercises: for every byte-prefix of a valid artifact, the frames
// returned must be a strict prefix of the original's, and clean must
// hold only at true boundaries.
func ScanFrames(b []byte) (frames int, clean bool) {
	if len(b) < headerSize || string(b[:4]) != recMagic || b[4] < recVersionMin || b[4] > recVersion {
		return 0, false
	}
	off := headerSize
	for off < len(b) {
		_, next, err := scanFrame(b, off)
		if err != nil {
			return frames, false
		}
		frames++
		off = next
	}
	return frames, true
}

// scanFrame decodes one [size][crc][payload] frame at off, returning
// the payload and the next offset. A frame whose declared size runs
// past the buffer, or whose checksum disagrees, is damage — never
// silently reinterpreted.
func scanFrame(b []byte, off int) (payload []byte, next int, err error) {
	if off+8 > len(b) {
		return nil, 0, fmt.Errorf("truncated header (%d of 8 bytes)", len(b)-off)
	}
	size := binary.LittleEndian.Uint32(b[off : off+4])
	sum := binary.LittleEndian.Uint32(b[off+4 : off+8])
	if size == 0 {
		return nil, 0, fmt.Errorf("zero-length frame")
	}
	if uint64(off)+8+uint64(size) > uint64(len(b)) {
		return nil, 0, fmt.Errorf("truncated payload (%d of %d bytes)", len(b)-off-8, size)
	}
	payload = b[off+8 : off+8+int(size)]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, fmt.Errorf("checksum mismatch")
	}
	return payload, off + 8 + int(size), nil
}
