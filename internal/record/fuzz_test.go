package record_test

import (
	"context"
	"testing"

	"relser/internal/record"
	"relser/internal/workload"
)

func sampleArtifact(f *testing.F) []byte {
	f.Helper()
	m := record.Manifest{
		Workload:    workload.BuildParams{Name: "banking", Seed: 1},
		Protocol:    "s2pl",
		Seed:        1,
		MPL:         8,
		MaxRestarts: 100000,
		FaultSpec:   "txn.abort:0.1",
		FaultSeed:   1,
	}
	rr, err := record.Record(context.Background(), m)
	if err != nil {
		f.Fatal(err)
	}
	return rr.Encode()
}

// TestArtifactPrefixSafety is the torn-tail guarantee, exhaustively:
// cutting a valid artifact at EVERY byte offset yields a frame stream
// that is a strict prefix of the original's, and scans as clean only
// at true frame boundaries. A torn .rsrec truncates, it never invents
// or alters a frame — the same property the WAL and segment formats
// hold.
func TestArtifactPrefixSafety(t *testing.T) {
	var full []byte
	{
		// Reuse the fuzz corpus builder via a throwaway F-less path.
		rr, err := record.Record(context.Background(), record.Manifest{
			Workload:    workload.BuildParams{Name: "banking", Seed: 1},
			Protocol:    "s2pl",
			Seed:        1,
			MPL:         8,
			MaxRestarts: 100000,
			FaultSpec:   "txn.abort:0.1",
			FaultSeed:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		full = rr.Encode()
	}
	totalFrames, clean := record.ScanFrames(full)
	if !clean || totalFrames < 3 {
		t.Fatalf("full artifact: frames=%d clean=%v", totalFrames, clean)
	}
	boundaries := map[int]bool{}
	prev := 0
	for cut := 0; cut <= len(full); cut++ {
		frames, ok := record.ScanFrames(full[:cut])
		if frames > totalFrames {
			t.Fatalf("cut %d: %d frames exceeds original %d", cut, frames, totalFrames)
		}
		if frames < prev {
			t.Fatalf("cut %d: frame count regressed %d -> %d", cut, prev, frames)
		}
		prev = frames
		if ok {
			boundaries[cut] = true
			if frames == totalFrames && cut != len(full) {
				t.Fatalf("cut %d scans clean with all %d frames before the end", cut, frames)
			}
		}
	}
	if !boundaries[len(full)] {
		t.Fatal("full length does not scan clean")
	}
	// Clean points are exactly the frame boundaries: one per frame plus
	// the header.
	if len(boundaries) != totalFrames+1 {
		t.Fatalf("%d clean cut points for %d frames (want frames+1)", len(boundaries), totalFrames)
	}
}

// FuzzRecordDecode: arbitrary bytes never panic the decoder; whatever
// Decode accepts must re-encode losslessly through a fresh scan; and
// ScanFrames stays internally consistent (mirrors FuzzSegmentDecode).
func FuzzRecordDecode(f *testing.F) {
	full := sampleArtifact(f)
	f.Add(full)
	f.Add(full[:len(full)-3])
	f.Add(full[:8])
	f.Add([]byte{})
	f.Add([]byte("RSRC\x01\x00\x00\x00"))
	f.Add([]byte("RSRC\x01\x00\x00\x00\xff\xff\xff\x7f\x00\x00\x00\x00"))
	mut := append([]byte(nil), full...)
	mut[12] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, clean := record.ScanFrames(data)
		if frames < 0 {
			t.Fatalf("negative frame count %d", frames)
		}
		rec, err := record.Decode(data)
		if err != nil {
			if rec != nil {
				t.Fatal("Decode returned a recording alongside an error")
			}
			return
		}
		// A decodable artifact must scan clean, with one frame per
		// section.
		if !clean {
			t.Fatal("Decode accepted an artifact ScanFrames calls damaged")
		}
		want := 2 + len(rec.Stages) + 1
		if frames != want {
			t.Fatalf("decoded %d stages but scanned %d frames (want %d)", len(rec.Stages), frames, want)
		}
	})
}
