package record

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"time"

	"relser/internal/fault"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

// ReplayOptions overrides parts of a recording's configuration. The
// zero value replays the recording exactly as captured (byte-identical
// mode); any override switches the replay to backfill mode, where
// divergence from the recorded baseline is the deliverable rather than
// a failure.
type ReplayOptions struct {
	// Protocol re-runs the traffic under a different protocol
	// ("s2pl", "to", ...). Empty keeps the recorded one.
	Protocol string
	// Shards re-runs with a different shard count; 0 keeps the
	// recorded one.
	Shards int
	// Spec overrides the atomicity specification: "" or "recorded"
	// keeps the workload's relative spec; "absolute" substitutes
	// sched.AbsoluteOracle (full atomicity) — the classic backfill
	// question "how would this traffic have fared under
	// serializability?".
	Spec string
	// Faults selects the injector: "recorded" or "" re-arms the
	// recorded spec and seed (the firing schedule is a pure function of
	// both, so the incident itself replays); "off" disables injection;
	// anything else parses as a fault spec in the point:rate[:duration]
	// grammar.
	Faults string
	// FaultSeed overrides the injector seed; 0 keeps the recorded one.
	FaultSeed int64
	// Initial replaces the recording's snapshot anchor (rsreplay
	// -from-snapshot: replay the window against state restored from a
	// different checkpoint).
	Initial map[string]storage.Value
	// Watchdog overrides the concurrent driver's stall watchdog; 0
	// keeps the recorded value.
	Watchdog time.Duration
}

// backfill reports whether any override changes the execution from the
// recorded configuration.
func (o ReplayOptions) backfill(m Manifest) bool {
	return (o.Protocol != "" && o.Protocol != m.Protocol) ||
		(o.Shards != 0 && o.Shards != m.Shards) ||
		(o.Spec != "" && o.Spec != "recorded" && o.Spec != "relative") ||
		(o.Faults != "" && o.Faults != "recorded") ||
		(o.FaultSeed != 0 && o.FaultSeed != m.FaultSeed) ||
		o.Initial != nil
}

// Divergence is one recorded-vs-replayed difference.
type Divergence struct {
	// Kind: outcome | verdict | invariant | counter | fault | wal |
	// stage-log | state.
	Kind string `json:"kind"`
	// Field names the counter or facet; Object names the store object
	// for state divergences.
	Field    string `json:"field,omitempty"`
	Object   string `json:"object,omitempty"`
	Recorded string `json:"recorded"`
	Replayed string `json:"replayed"`
}

// Report is the structured replay comparison rsreplay emits as JSON.
type Report struct {
	// Mode is "byte-identical" (no overrides; divergence is a bug) or
	// "backfill" (overrides active; divergence is the answer).
	Mode      string `json:"mode"`
	Identical bool   `json:"identical"`
	// Deterministic records whether the full byte-level comparison
	// applied. Concurrent-driver recordings compare only
	// schedule-independent facets (outcome class, verdict, invariant) —
	// the goroutine schedule is not reproducible, so WAL bytes, stage
	// logs and counters legitimately differ.
	Deterministic bool         `json:"deterministic"`
	Divergences   []Divergence `json:"divergences,omitempty"`
	Recorded      Outcome      `json:"recorded"`
	Replayed      Outcome      `json:"replayed"`
}

// Record executes the manifest's run fresh — same resolver, drivers and
// durability shapes as Replay — recording it. The returned Recorder is
// sealed (Finish already called); Encode or WriteFile it. Run failures
// that the engine surfaces (crash, wedge, cancellation) are recorded
// outcomes, not errors.
func Record(ctx context.Context, m Manifest) (*Recorder, error) {
	rr, _, err := execute(ctx, m, nil, ReplayOptions{})
	return rr, err
}

// Replay re-executes a recording through the engine pipeline and
// compares the replayed outcome against the recorded baseline.
//
// The error return is reserved for replays that cannot run at all
// (unknown workload or protocol, bad fault spec); a run that ends in a
// crash, wedge or verdict failure is a comparison input, not an error.
func Replay(ctx context.Context, rec *Recording, opts ReplayOptions) (*Report, error) {
	initial := rec.Initial
	if opts.Initial != nil {
		initial = opts.Initial
	}
	_, replayed, err := execute(ctx, rec.Manifest, initial, opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Mode:          "byte-identical",
		Deterministic: !rec.Manifest.Concurrent,
		Recorded:      rec.Outcome,
		Replayed:      replayed,
	}
	if opts.backfill(rec.Manifest) {
		rep.Mode = "backfill"
	}
	rep.Divergences = compare(rec.Outcome, replayed, rep.Deterministic)
	rep.Identical = len(rep.Divergences) == 0
	return rep, nil
}

// execute runs one manifest-described execution (with opts overrides
// applied) under a fresh recording tap. initial overrides the starting
// state; nil starts from the workload's own initial values.
func execute(ctx context.Context, m Manifest, initial map[string]storage.Value, opts ReplayOptions) (*Recorder, Outcome, error) {
	w, err := workload.Build(m.Workload)
	if err != nil {
		return nil, Outcome{}, err
	}

	oracle := w.Oracle
	switch opts.Spec {
	case "", "recorded", "relative":
	case "absolute":
		oracle = sched.AbsoluteOracle{}
	default:
		return nil, Outcome{}, fmt.Errorf("record: unknown spec override %q (have recorded, absolute)", opts.Spec)
	}
	protoName := m.Protocol
	if opts.Protocol != "" {
		protoName = opts.Protocol
	}
	shards := m.Shards
	if opts.Shards != 0 {
		shards = opts.Shards
	}
	p, err := sched.NewProtocolSharded(protoName, oracle, shards)
	if err != nil {
		return nil, Outcome{}, err
	}

	var inj *fault.Injector
	faultSeed := m.FaultSeed
	if opts.FaultSeed != 0 {
		faultSeed = opts.FaultSeed
	}
	switch opts.Faults {
	case "", "recorded":
		if m.FaultSpec != "" {
			spec, err := fault.ParseSpec(m.FaultSpec)
			if err != nil {
				return nil, Outcome{}, fmt.Errorf("record: recorded fault spec: %v", err)
			}
			inj = fault.New(faultSeed, spec)
		}
	case "off":
	default:
		spec, err := fault.ParseSpec(opts.Faults)
		if err != nil {
			return nil, Outcome{}, err
		}
		inj = fault.New(faultSeed, spec)
	}

	if initial == nil {
		initial = w.Initial
	}
	store := storage.NewStore()
	store.Load(initial)

	// Reproduce the recorded durability shape so WAL bytes compare.
	var (
		sink   storage.WALSink
		walBuf bytes.Buffer
		mem    *storage.MemBackend
		swal   *storage.ShardedWAL
	)
	switch m.WALMode {
	case "", "none":
	case "single":
		sink = storage.NewWAL(&walBuf)
	case "segmented":
		mem = storage.NewMemBackend()
		swal, err = storage.NewShardedWAL(mem, storage.SegmentedOptions{
			Shards:       m.WALShards,
			SegmentBytes: m.WALSegmentBytes,
		})
		if err != nil {
			return nil, Outcome{}, err
		}
		sink = swal
	default:
		return nil, Outcome{}, fmt.Errorf("record: unknown WAL mode %q in manifest", m.WALMode)
	}

	watchdog := m.Watchdog
	if opts.Watchdog != 0 {
		watchdog = opts.Watchdog
	}

	rr := NewRecorder(m)
	rr.SetInitial(initial)
	cfg := txn.Config{
		Protocol:    p,
		Programs:    w.Programs,
		Oracle:      oracle,
		Store:       store,
		Semantics:   w.Semantics,
		MPL:         m.MPL,
		Shards:      shards,
		Seed:        m.Seed,
		BackoffSeed: m.BackoffSeed,
		MaxRestarts: m.MaxRestarts,
		WAL:         sink,
		Faults:      inj,
		Deadline:    m.Deadline,
		Watchdog:    watchdog,
		Hooks:       rr.Hooks(txn.Hooks{}),
		// Keyed off the field, not the format version: pre-retirement
		// recordings (and backfilled manifests without the field)
		// replay with retirement forced off.
		DisableRSGRetire: m.RSGRetire != "on",
	}

	var (
		res    *txn.Result
		runErr error
	)
	if m.Concurrent {
		var runner *txn.ConcurrentRunner
		runner, runErr = txn.NewConcurrent(cfg)
		if runErr == nil {
			res, runErr = runner.RunContext(ctx)
		}
	} else {
		var runner *txn.Runner
		runner, runErr = txn.New(cfg)
		if runErr == nil {
			res, runErr = runner.RunContext(ctx)
		}
	}
	if runErr != nil && res == nil && !isRunFailure(runErr) {
		// Construction-time errors (bad MPL, nil store) are not run
		// outcomes; surface them.
		return nil, Outcome{}, runErr
	}

	var wal []byte
	switch {
	case swal != nil:
		swal.Close() //nolint:errcheck // a latched injected crash is an expected terminal state
		set, serr := mem.SegmentSet()
		if serr != nil {
			return nil, Outcome{}, serr
		}
		wal = FlattenSegmentSet(set)
	case m.WALMode == "single":
		wal = walBuf.Bytes()
	}
	if wal != nil {
		rr.SetWALBytes(wal)
	}
	rr.Finish(res, runErr, inj, store, w)
	out, _ := rr.Outcome()
	return rr, out, nil
}

// isRunFailure reports whether an error is a legitimate end state of a
// run (and therefore a recordable outcome) rather than a configuration
// error.
func isRunFailure(err error) bool {
	cls, _ := classifyErr(err)
	return cls != "error"
}

// compare diffs a replayed outcome against the recorded baseline. For
// deterministic recordings everything must match byte-for-byte; for
// concurrent recordings only schedule-independent facets are owed
// (outcome class, certification verdict, data invariant).
func compare(rec, rep Outcome, deterministic bool) []Divergence {
	var out []Divergence
	add := func(kind, field, object, a, b string) {
		if a != b {
			out = append(out, Divergence{Kind: kind, Field: field, Object: object, Recorded: a, Replayed: b})
		}
	}
	add("outcome", "", "", rec.Outcome, rep.Outcome)
	add("verdict", "", "", rec.Verdict, rep.Verdict)
	add("invariant", "", "", rec.Invariant, rep.Invariant)
	if !deterministic {
		return out
	}
	counters := []struct {
		name     string
		rec, rep int
	}{
		{"committed", rec.Committed, rep.Committed},
		{"aborts", rec.Aborts, rep.Aborts},
		{"restarts", rec.Restarts, rep.Restarts},
		{"injected_aborts", rec.InjectedAborts, rep.InjectedAborts},
		{"injected_delays", rec.InjectedDelays, rep.InjectedDelays},
		{"load_sheds", rec.LoadSheds, rep.LoadSheds},
		{"deadline_aborts", rec.DeadlineAborts, rep.DeadlineAborts},
		{"cancel_aborts", rec.CancelAborts, rep.CancelAborts},
	}
	for _, c := range counters {
		add("counter", c.name, "", fmt.Sprint(c.rec), fmt.Sprint(c.rep))
	}
	add("fault", "fingerprint", "", rec.FaultFingerprint, rep.FaultFingerprint)
	add("wal", "hash", "", rec.WALHash, rep.WALHash)
	add("wal", "len", "", fmt.Sprint(rec.WALLen), fmt.Sprint(rep.WALLen))
	add("stage-log", "hash", "", rec.StageHash, rep.StageHash)
	out = append(out, diffState(rec.Final, rep.Final)...)
	return out
}

// diffState diffs two final-store snapshots keyed by object, in sorted
// object order so reports are stable across runs.
func diffState(rec, rep map[string]storage.Value) []Divergence {
	objs := make(map[string]bool, len(rec)+len(rep))
	//rsvet:allow detlint -- order-insensitive: set union
	for k := range rec {
		objs[k] = true
	}
	//rsvet:allow detlint -- order-insensitive: set union
	for k := range rep {
		objs[k] = true
	}
	names := make([]string, 0, len(objs))
	//rsvet:allow detlint -- order-insensitive: keys are collected then sorted below
	for k := range objs {
		names = append(names, k)
	}
	sort.Strings(names)
	var out []Divergence
	for _, k := range names {
		a, aok := rec[k]
		b, bok := rep[k]
		if aok && bok && a == b {
			continue
		}
		d := Divergence{Kind: "state", Object: k, Recorded: "<absent>", Replayed: "<absent>"}
		if aok {
			d.Recorded = fmt.Sprint(a)
		}
		if bok {
			d.Replayed = fmt.Sprint(b)
		}
		out = append(out, d)
	}
	return out
}
