package record_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"relser/internal/record"
	"relser/internal/sched"
	"relser/internal/txn"
	"relser/internal/workload"
)

func mustProto(t *testing.T, name string, w *workload.Workload) sched.Protocol {
	t.Helper()
	p, err := sched.NewProtocol(name, w.Oracle)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func det(name string, seed int64) record.Manifest {
	return record.Manifest{
		Workload:    workload.BuildParams{Name: name, Seed: seed},
		Protocol:    "s2pl",
		Seed:        seed,
		MPL:         8,
		MaxRestarts: 100000,
	}
}

func mustRecord(t *testing.T, m record.Manifest) *record.Recording {
	t.Helper()
	rr, err := record.Record(context.Background(), m)
	if err != nil {
		t.Fatalf("record %+v: %v", m.Workload, err)
	}
	rec, err := record.Decode(rr.Encode())
	if err != nil {
		t.Fatalf("decode own recording: %v", err)
	}
	return rec
}

// TestReplayByteIdentical: a recording with no overrides replays with
// zero divergences — same verdict, counters, fault fingerprint, WAL
// bytes, stage log and final store — including under fault injection
// and both WAL shapes.
func TestReplayByteIdentical(t *testing.T) {
	cases := []record.Manifest{
		det("banking", 1),
		det("cadcam", 2),
	}
	cases[0].WALMode = "single"
	cases[0].FaultSpec = "wal.torn:0.004,wal.corrupt:0.003,wal.crash:0.002"
	cases[0].FaultSeed = 7
	cases[1].WALMode = "segmented"
	cases[1].WALShards = 4
	cases[1].WALSegmentBytes = 512
	cases[1].Protocol = "to"
	for _, m := range cases {
		rec := mustRecord(t, m)
		rep, err := record.Replay(context.Background(), rec, record.ReplayOptions{})
		if err != nil {
			t.Fatalf("%s: replay: %v", m.Workload.Name, err)
		}
		if rep.Mode != "byte-identical" || !rep.Deterministic {
			t.Fatalf("%s: mode=%s deterministic=%v, want byte-identical deterministic", m.Workload.Name, rep.Mode, rep.Deterministic)
		}
		if !rep.Identical {
			t.Fatalf("%s: replay diverged: %+v", m.Workload.Name, rep.Divergences)
		}
	}
}

// TestReplayDeterminismMatrix records a seeded banking and cadcam run,
// then replays each at shards {1,4,16} x {s2pl,to}. The schedule is a
// pure function of (programs, protocol, seed) on the deterministic
// driver — shards only stripe the protocol's tables — so every cell
// must certify and land on the recorded final store.
func TestReplayDeterminismMatrix(t *testing.T) {
	for _, wl := range []string{"banking", "cadcam"} {
		rec := mustRecord(t, det(wl, 42))
		if rec.Outcome.Verdict != "pass" || rec.Outcome.Invariant != "pass" {
			t.Fatalf("%s: baseline verdict=%q invariant=%q", wl, rec.Outcome.Verdict, rec.Outcome.Invariant)
		}
		for _, proto := range []string{"s2pl", "to"} {
			for _, shards := range []int{1, 4, 16} {
				rep, err := record.Replay(context.Background(), rec, record.ReplayOptions{Protocol: proto, Shards: shards})
				if err != nil {
					t.Fatalf("%s/%s/shards=%d: %v", wl, proto, shards, err)
				}
				if rep.Replayed.Verdict != "pass" {
					t.Errorf("%s/%s/shards=%d: verdict %q", wl, proto, shards, rep.Replayed.Verdict)
				}
				if rep.Replayed.Invariant != "pass" {
					t.Errorf("%s/%s/shards=%d: invariant %q", wl, proto, shards, rep.Replayed.Invariant)
				}
				for _, d := range rep.Divergences {
					if d.Kind == "state" {
						t.Errorf("%s/%s/shards=%d: state divergence at %s: %s -> %s",
							wl, proto, shards, d.Object, d.Recorded, d.Replayed)
					}
				}
				// Shard count alone must not perturb the deterministic
				// schedule at all.
				if proto == "s2pl" && !rep.Identical {
					t.Errorf("%s/s2pl/shards=%d: expected byte-identical replay, diverged: %+v", wl, shards, rep.Divergences)
				}
			}
		}
	}
}

// TestBackfillDivergenceStable: replaying under the absolute spec is a
// backfill whose divergence report must be non-empty (the relative
// spec admits interleavings serializability pays for in blocking) and
// byte-for-byte stable across repeated backfills.
func TestBackfillDivergenceStable(t *testing.T) {
	m := det("banking", 7)
	m.Workload.Crossing = true
	m.Protocol = "rsgt"
	m.MPL = 16
	rec := mustRecord(t, m)
	var first *record.Report
	for i := 0; i < 3; i++ {
		rep, err := record.Replay(context.Background(), rec, record.ReplayOptions{Spec: "absolute"})
		if err != nil {
			t.Fatalf("backfill %d: %v", i, err)
		}
		if rep.Mode != "backfill" {
			t.Fatalf("backfill %d: mode %q", i, rep.Mode)
		}
		if len(rep.Divergences) == 0 {
			t.Fatalf("backfill %d: empty divergence report (expected the spec change to show up)", i)
		}
		if first == nil {
			first = rep
			continue
		}
		if len(rep.Divergences) != len(first.Divergences) {
			t.Fatalf("backfill %d: unstable report: %d vs %d divergences", i, len(rep.Divergences), len(first.Divergences))
		}
		for j, d := range rep.Divergences {
			if d != first.Divergences[j] {
				t.Fatalf("backfill %d: divergence %d differs: %+v vs %+v", i, j, d, first.Divergences[j])
			}
		}
	}
}

// TestReplayFaultOverrides: -faults off suppresses the recorded
// injections (a divergence in backfill mode), and a custom spec parses.
func TestReplayFaultOverrides(t *testing.T) {
	m := det("banking", 3)
	m.FaultSpec = "txn.abort:0.2"
	m.FaultSeed = 9
	rec := mustRecord(t, m)
	if rec.Outcome.InjectedAborts == 0 {
		t.Fatal("baseline recorded no injected aborts; spec did not arm")
	}
	rep, err := record.Replay(context.Background(), rec, record.ReplayOptions{Faults: "off"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "backfill" {
		t.Fatalf("faults-off mode %q", rep.Mode)
	}
	if rep.Replayed.InjectedAborts != 0 {
		t.Fatalf("faults off still injected %d aborts", rep.Replayed.InjectedAborts)
	}
	if _, err := record.Replay(context.Background(), rec, record.ReplayOptions{Faults: "no-such-point:1"}); err == nil {
		t.Fatal("bad fault spec override accepted")
	}
}

// TestRecordWedgeClass: a concurrent run wedged by injection records
// outcome class "wedged", and replaying reproduces the same class (the
// wedge itself, not merely the error text, which embeds wall-clock
// durations).
func TestRecordWedgeClass(t *testing.T) {
	m := record.Manifest{
		Workload:    workload.BuildParams{Name: "banking", Seed: 5},
		Protocol:    "nocc",
		Seed:        5,
		MPL:         8,
		Shards:      4,
		MaxRestarts: 100000,
		Concurrent:  true,
		Watchdog:    300 * 1e6, // 300ms
		FaultSpec:   "shard.wedge:1",
		FaultSeed:   5,
	}
	rec := mustRecord(t, m)
	if rec.Outcome.Outcome != "wedged" {
		t.Fatalf("recorded outcome %q, want wedged (error %q)", rec.Outcome.Outcome, rec.Outcome.Error)
	}
	rep, err := record.Replay(context.Background(), rec, record.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic {
		// Concurrent recordings compare classes only.
		if rep.Replayed.Outcome != "wedged" {
			t.Fatalf("replayed outcome %q, want wedged", rep.Replayed.Outcome)
		}
	}
	if !rep.Identical {
		t.Fatalf("wedge replay diverged: %+v", rep.Divergences)
	}
}

// TestArtifactRoundTrip writes and re-reads an artifact from disk and
// checks every section survives.
func TestArtifactRoundTrip(t *testing.T) {
	m := det("banking", 1)
	m.FaultSpec = "txn.abort:0.1"
	m.FaultSeed = 4
	rr, err := record.Record(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.rsrec")
	if err := rr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	rec, err := record.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Manifest.FaultSpec != m.FaultSpec || rec.Manifest.FaultSeed != m.FaultSeed {
		t.Fatalf("manifest fault stamp lost: %+v", rec.Manifest)
	}
	if len(rec.Initial) == 0 {
		t.Fatal("no snapshot anchor")
	}
	if len(rec.Stages) == 0 {
		t.Fatal("no stage events")
	}
	if rec.Outcome.Outcome != "completed" {
		t.Fatalf("outcome %q", rec.Outcome.Outcome)
	}
	if rec.Outcome.FaultFingerprint == "" {
		t.Fatal("no fault fingerprint in outcome")
	}
}

// TestDecodeRejectsDamage: bad magic, bad version, flipped bytes and
// truncated mandatory frames all surface ErrUnreadable, never a
// misparse.
func TestDecodeRejectsDamage(t *testing.T) {
	rr, err := record.Record(context.Background(), det("banking", 1))
	if err != nil {
		t.Fatal(err)
	}
	good := rr.Encode()
	if _, err := record.Decode(good); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}

	check := func(name string, b []byte) {
		t.Helper()
		if _, err := record.Decode(b); !errors.Is(err, record.ErrUnreadable) {
			t.Errorf("%s: got %v, want ErrUnreadable", name, err)
		}
	}
	check("empty", nil)
	check("bad magic", append([]byte("NOPE"), good[4:]...))
	bad := append([]byte(nil), good...)
	bad[4] = 99
	check("bad version", bad)
	for _, off := range []int{9, len(good) / 2, len(good) - 3} {
		flip := append([]byte(nil), good...)
		flip[off] ^= 0xff
		check("bit flip", flip)
	}
	check("truncated before outcome", good[:len(good)/2])
}

// TestHooksChain: the recording tap preserves a downstream hook set.
func TestHooksChain(t *testing.T) {
	m := det("banking", 1)
	rr := record.NewRecorder(m)
	var commits int
	h := rr.Hooks(txn.Hooks{Commit: func(*txn.Instance) { commits++ }})
	w, err := workload.Build(m.Workload)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := w.RunWith(mustProto(t, m.Protocol, w), workload.RunOptions{Seed: m.Seed, MPL: m.MPL, Hooks: h})
	if err != nil {
		t.Fatal(err)
	}
	if commits != res.Committed {
		t.Fatalf("downstream commit hook fired %d times, committed %d", commits, res.Committed)
	}
	if rr.StageEvents() == 0 {
		t.Fatal("recording tap captured nothing")
	}
}
