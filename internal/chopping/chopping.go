// Package chopping implements transaction chopping [SSV92] ("Simple
// Rational Guidance for Chopping Up Transactions", Shasha, Simon,
// Valduriez, SIGMOD 1992), the related-work technique §4 of the paper
// contrasts with relative atomicity: a transaction is chopped into
// pieces executed as independent transactions under strict two-phase
// locking, and the chopping is *correct* when the SC-graph — conflict
// (C) edges between pieces of different transactions plus sibling (S)
// edges between pieces of the same transaction — contains no SC-cycle
// (a cycle with at least one S edge and at least one C edge).
//
// The bridge to the paper: a correct chopping corresponds to a relative
// atomicity specification in which every piece is an atomic unit
// relative to every other transaction; ToSpec performs that
// translation, which lets the rest of the module (RSG test, RSGT
// scheduler) consume choppings directly.
package chopping

import (
	"fmt"
	"sort"

	"relser/internal/core"
	"relser/internal/graph"
)

// Piece identifies one piece of a chopped transaction.
type Piece struct {
	Txn core.TxnID
	// Index is the 0-based piece number within the transaction.
	Index int
	// Start and End are the inclusive operation bounds of the piece.
	Start, End int
}

// String renders "T2/1[2..3]".
func (p Piece) String() string {
	return fmt.Sprintf("T%d/%d[%d..%d]", int(p.Txn), p.Index, p.Start, p.End)
}

// Chopping is a partition of each transaction of a set into
// consecutive pieces.
type Chopping struct {
	set    *core.TxnSet
	pieces []Piece                // all pieces, grouped by transaction
	byTxn  map[core.TxnID][]Piece // pieces of each transaction in order
}

// New builds a chopping from per-transaction piece lengths. A
// transaction absent from lengths stays whole (one piece).
func New(ts *core.TxnSet, lengths map[core.TxnID][]int) (*Chopping, error) {
	c := &Chopping{set: ts, byTxn: make(map[core.TxnID][]Piece)}
	for _, t := range ts.Txns() {
		lens, ok := lengths[t.ID]
		if !ok {
			lens = []int{t.Len()}
		}
		start := 0
		for idx, l := range lens {
			if l <= 0 {
				return nil, fmt.Errorf("chopping: T%d piece %d has non-positive length %d", t.ID, idx, l)
			}
			p := Piece{Txn: t.ID, Index: idx, Start: start, End: start + l - 1}
			if p.End >= t.Len() {
				return nil, fmt.Errorf("chopping: T%d pieces exceed its %d operations", t.ID, t.Len())
			}
			c.pieces = append(c.pieces, p)
			c.byTxn[t.ID] = append(c.byTxn[t.ID], p)
			start += l
		}
		if start != t.Len() {
			return nil, fmt.Errorf("chopping: T%d pieces cover %d of %d operations", t.ID, start, t.Len())
		}
	}
	return c, nil
}

// Uniform chops every transaction into pieces of at most k operations.
func Uniform(ts *core.TxnSet, k int) (*Chopping, error) {
	if k <= 0 {
		return nil, fmt.Errorf("chopping: piece size must be positive, got %d", k)
	}
	lengths := make(map[core.TxnID][]int)
	for _, t := range ts.Txns() {
		var lens []int
		for remaining := t.Len(); remaining > 0; remaining -= k {
			l := k
			if remaining < k {
				l = remaining
			}
			lens = append(lens, l)
		}
		lengths[t.ID] = lens
	}
	return New(ts, lengths)
}

// Pieces returns all pieces in (transaction, index) order.
func (c *Chopping) Pieces() []Piece { return c.pieces }

// PiecesOf returns the pieces of one transaction in order.
func (c *Chopping) PiecesOf(id core.TxnID) []Piece { return c.byTxn[id] }

// EdgeKind distinguishes SC-graph edges.
type EdgeKind uint8

const (
	// SEdge links consecutive pieces of one transaction (sibling).
	SEdge EdgeKind = 1 << iota
	// CEdge links pieces of different transactions with conflicting
	// operations.
	CEdge
)

// String renders "S", "C" or "S,C".
func (k EdgeKind) String() string {
	switch k {
	case SEdge:
		return "S"
	case CEdge:
		return "C"
	case SEdge | CEdge:
		return "S,C"
	default:
		return "none"
	}
}

// SCGraph is the undirected chopping graph: vertices are pieces; edges
// carry S and/or C kinds.
type SCGraph struct {
	chopping *Chopping
	kind     map[[2]int]EdgeKind // key: ordered (min, max) piece indices
	adj      [][]int
}

// BuildSCGraph constructs the SC-graph of a chopping.
func BuildSCGraph(c *Chopping) *SCGraph {
	g := &SCGraph{chopping: c, kind: make(map[[2]int]EdgeKind), adj: make([][]int, len(c.pieces))}
	indexOf := make(map[[2]int]int, len(c.pieces)) // (txn, pieceIdx) -> dense index
	for i, p := range c.pieces {
		indexOf[[2]int{int(p.Txn), p.Index}] = i
	}
	addEdge := func(a, b int, kind EdgeKind) {
		if a == b {
			return
		}
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if g.kind[key] == 0 {
			g.adj[a] = append(g.adj[a], b)
			g.adj[b] = append(g.adj[b], a)
		}
		g.kind[key] |= kind
	}
	// S edges between all piece pairs of one transaction ([SSV92]
	// connects siblings pairwise; consecutive suffices for cycles, but
	// we keep the definition literal).
	for _, t := range c.set.Txns() {
		ps := c.byTxn[t.ID]
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				addEdge(indexOf[[2]int{int(t.ID), i}], indexOf[[2]int{int(t.ID), j}], SEdge)
			}
		}
	}
	// C edges between conflicting pieces of different transactions.
	for ai, a := range c.pieces {
		ta := c.set.Txn(a.Txn)
		for bi := ai + 1; bi < len(c.pieces); bi++ {
			b := c.pieces[bi]
			if b.Txn == a.Txn {
				continue
			}
			tb := c.set.Txn(b.Txn)
			conflict := false
			for sa := a.Start; sa <= a.End && !conflict; sa++ {
				for sb := b.Start; sb <= b.End; sb++ {
					if ta.Op(sa).ConflictsWith(tb.Op(sb)) {
						conflict = true
						break
					}
				}
			}
			if conflict {
				addEdge(ai, bi, CEdge)
			}
		}
	}
	for i := range g.adj {
		sort.Ints(g.adj[i])
	}
	return g
}

// EdgeKindOf returns the kinds of the edge between two pieces (0 if
// absent). Order does not matter.
func (g *SCGraph) EdgeKindOf(a, b Piece) EdgeKind {
	ai, bi := g.pieceIndex(a), g.pieceIndex(b)
	key := [2]int{ai, bi}
	if ai > bi {
		key = [2]int{bi, ai}
	}
	return g.kind[key]
}

func (g *SCGraph) pieceIndex(p Piece) int {
	for i, q := range g.chopping.pieces {
		if q.Txn == p.Txn && q.Index == p.Index {
			return i
		}
	}
	panic(fmt.Sprintf("chopping: unknown piece %v", p))
}

// NumEdges returns the number of distinct edges.
func (g *SCGraph) NumEdges() int { return len(g.kind) }

// OffendingComponent returns the pieces of one biconnected component
// of the SC-graph that contains both an S edge and a C edge, or nil if
// none exists — in which case the chopping is correct [SSV92].
//
// Two edges lie on a common simple cycle iff they belong to the same
// biconnected component, so an SC-cycle (a simple cycle with at least
// one S and at least one C edge) exists exactly when some biconnected
// component mixes the two kinds.
func (g *SCGraph) OffendingComponent() []Piece {
	n := len(g.chopping.pieces)
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	type edge struct{ u, v int }
	var (
		stack   []edge
		counter int
		found   []Piece
	)
	edgeKey := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	// checkComponent inspects the edges of one biconnected component.
	checkComponent := func(edges []edge) {
		if found != nil {
			return
		}
		var hasS, hasC bool
		members := map[int]bool{}
		for _, e := range edges {
			kind := g.kind[edgeKey(e.u, e.v)]
			if kind&SEdge != 0 {
				hasS = true
			}
			if kind&CEdge != 0 {
				hasC = true
			}
			members[e.u] = true
			members[e.v] = true
		}
		if hasS && hasC {
			idxs := make([]int, 0, len(members))
			for m := range members {
				idxs = append(idxs, m)
			}
			sort.Ints(idxs)
			for _, m := range idxs {
				found = append(found, g.chopping.pieces[m])
			}
		}
	}
	type frame struct {
		u, parent, i int
	}
	for root := 0; root < n && found == nil; root++ {
		if disc[root] != -1 {
			continue
		}
		callStack := []frame{{u: root, parent: -1}}
		disc[root], low[root] = counter, counter
		counter++
		for len(callStack) > 0 && found == nil {
			f := &callStack[len(callStack)-1]
			if f.i < len(g.adj[f.u]) {
				v := g.adj[f.u][f.i]
				f.i++
				if v == f.parent {
					continue
				}
				if disc[v] == -1 {
					stack = append(stack, edge{f.u, v})
					disc[v], low[v] = counter, counter
					counter++
					callStack = append(callStack, frame{u: v, parent: f.u})
				} else if disc[v] < disc[f.u] {
					stack = append(stack, edge{f.u, v})
					if disc[v] < low[f.u] {
						low[f.u] = disc[v]
					}
				}
			} else {
				callStack = callStack[:len(callStack)-1]
				if len(callStack) == 0 {
					continue
				}
				p := &callStack[len(callStack)-1]
				if low[f.u] < low[p.u] {
					low[p.u] = low[f.u]
				}
				if low[f.u] >= disc[p.u] {
					// p.u is an articulation point (or root): pop the
					// component's edges.
					var comp []edge
					for len(stack) > 0 {
						e := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						comp = append(comp, e)
						if e.u == p.u && e.v == f.u {
							break
						}
					}
					checkComponent(comp)
				}
			}
		}
		stack = stack[:0]
	}
	return found
}

// Correct reports whether the chopping is correct: no SC-cycle, so
// executing each piece as its own transaction under strict 2PL
// preserves serializability of the original transactions [SSV92].
func (g *SCGraph) Correct() bool { return g.OffendingComponent() == nil }

// ToSpec translates the chopping into a relative atomicity
// specification: each piece of Ti is an atomic unit of Ti relative to
// every other transaction. For a correct chopping, schedules in which
// pieces execute indivisibly are relatively atomic under this
// specification — the §4 bridge between [SSV92] and the paper.
func (c *Chopping) ToSpec() (*core.Spec, error) {
	sp := core.NewSpec(c.set)
	for _, t := range c.set.Txns() {
		lens := make([]int, 0, len(c.byTxn[t.ID]))
		for _, p := range c.byTxn[t.ID] {
			lens = append(lens, p.End-p.Start+1)
		}
		for _, other := range c.set.Txns() {
			if other.ID == t.ID {
				continue
			}
			if err := sp.SetUnits(t.ID, other.ID, lens...); err != nil {
				return nil, err
			}
		}
	}
	return sp, nil
}

// Dot renders the SC-graph in Graphviz DOT (S edges dashed, C edges
// solid).
func (g *SCGraph) Dot(name string) string {
	var d graph.DotGraph
	d.Name = name
	for i, p := range g.chopping.pieces {
		d.AddNode(i, p.String(), nil)
	}
	keys := make([][2]int, 0, len(g.kind))
	for key := range g.kind {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		kind := g.kind[key]
		style := "solid"
		if kind == SEdge {
			style = "dashed"
		}
		d.AddEdge(key[0], key[1], kind.String(), map[string]string{"style": style, "dir": "none"})
	}
	return d.String()
}
