package chopping_test

import (
	"fmt"

	"relser/internal/chopping"
	"relser/internal/core"
)

// Example analyses the canonical [SSV92] chopping: T1 updates x then y
// and is chopped between the phases; T2 touches only x, T3 only y.
// The SC-graph has no cycle mixing sibling and conflict edges, so the
// chopping is correct.
func Example() {
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x"), core.R("y"), core.W("y")),
		core.T(2, core.R("x"), core.W("x")),
		core.T(3, core.R("y"), core.W("y")),
	)
	c, err := chopping.New(ts, map[core.TxnID][]int{1: {2, 2}})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	g := chopping.BuildSCGraph(c)
	fmt.Println("pieces:", len(c.Pieces()), "edges:", g.NumEdges())
	fmt.Println("correct chopping:", g.Correct())

	// The bridge into the paper's model: pieces become atomic units.
	sp, err := c.ToSpec()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("Atomicity(T1, T2):", sp.Atomicity(1, 2))
	// Output:
	// pieces: 4 edges: 3
	// correct chopping: true
	// Atomicity(T1, T2): [r1[x] w1[x]] [r1[y] w1[y]]
}
