package chopping_test

import (
	"strings"
	"testing"

	"relser/internal/chopping"
	"relser/internal/core"
	"relser/internal/enumerate"
)

// ssv92Correct builds the classic correct-chopping example: T1 updates
// x then y and is chopped between them; T2 touches only x, T3 only y.
func ssv92Correct(t *testing.T) (*core.TxnSet, *chopping.Chopping) {
	t.Helper()
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x"), core.R("y"), core.W("y")),
		core.T(2, core.R("x"), core.W("x")),
		core.T(3, core.R("y"), core.W("y")),
	)
	c, err := chopping.New(ts, map[core.TxnID][]int{1: {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return ts, c
}

func TestChoppingConstruction(t *testing.T) {
	ts, c := ssv92Correct(t)
	if len(c.Pieces()) != 4 {
		t.Fatalf("pieces = %v", c.Pieces())
	}
	p1 := c.PiecesOf(1)
	if len(p1) != 2 || p1[0].Start != 0 || p1[0].End != 1 || p1[1].Start != 2 || p1[1].End != 3 {
		t.Errorf("T1 pieces = %v", p1)
	}
	// Unchopped transactions stay whole.
	if ps := c.PiecesOf(2); len(ps) != 1 || ps[0].End != 1 {
		t.Errorf("T2 pieces = %v", ps)
	}
	if got := p1[0].String(); got != "T1/0[0..1]" {
		t.Errorf("Piece.String = %q", got)
	}
	_ = ts
}

func TestChoppingValidation(t *testing.T) {
	ts, _ := ssv92Correct(t)
	cases := []map[core.TxnID][]int{
		{1: {2, 3}},    // too long
		{1: {2}},       // too short
		{1: {0, 4}},    // non-positive
		{1: {4, 1}},    // exceeds then covered
		{2: {1, 1, 1}}, // exceeds T2
	}
	for i, lens := range cases {
		if _, err := chopping.New(ts, lens); err == nil {
			t.Errorf("case %d: invalid lengths accepted", i)
		}
	}
}

func TestUniformChopping(t *testing.T) {
	ts, _ := ssv92Correct(t)
	c, err := chopping.Uniform(ts, 3)
	if err != nil {
		t.Fatal(err)
	}
	p1 := c.PiecesOf(1)
	if len(p1) != 2 || p1[0].End != 2 || p1[1].End != 3 {
		t.Errorf("uniform(3) T1 pieces = %v", p1)
	}
	if _, err := chopping.Uniform(ts, 0); err == nil {
		t.Error("piece size 0 accepted")
	}
}

func TestSCGraphCorrectChopping(t *testing.T) {
	_, c := ssv92Correct(t)
	g := chopping.BuildSCGraph(c)
	// Edges: S(T1/0, T1/1), C(T1/0, T2), C(T1/1, T3).
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	p1 := c.PiecesOf(1)
	if k := g.EdgeKindOf(p1[0], p1[1]); k != chopping.SEdge {
		t.Errorf("sibling edge kind = %v", k)
	}
	if k := g.EdgeKindOf(p1[0], c.PiecesOf(2)[0]); k != chopping.CEdge {
		t.Errorf("conflict edge kind = %v", k)
	}
	if !g.Correct() {
		t.Errorf("SSV92's canonical example must be a correct chopping; offending: %v", g.OffendingComponent())
	}
}

func TestSCGraphIncorrectChopping(t *testing.T) {
	// T2 now reads both x and y: the triangle S(T1/0,T1/1),
	// C(T1/0,T2), C(T1/1,T2) is an SC-cycle.
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x"), core.R("y"), core.W("y")),
		core.T(2, core.W("x"), core.W("y")),
	)
	c, err := chopping.New(ts, map[core.TxnID][]int{1: {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	g := chopping.BuildSCGraph(c)
	if g.Correct() {
		t.Fatal("chopping must be incorrect (T2 spans both pieces)")
	}
	off := g.OffendingComponent()
	if len(off) < 3 {
		t.Fatalf("offending component = %v", off)
	}
}

func TestSCCycleNeedsBothKinds(t *testing.T) {
	// Pure C cycles are fine: three unchopped transactions in a
	// conflict triangle have no S edges at all.
	ts := core.MustTxnSet(
		core.T(1, core.W("x"), core.W("y")),
		core.T(2, core.W("y"), core.W("z")),
		core.T(3, core.W("z"), core.W("x")),
	)
	c, err := chopping.New(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !chopping.BuildSCGraph(c).Correct() {
		t.Error("whole transactions are always a correct chopping")
	}
}

func TestSCCycleThroughAlternatingEdges(t *testing.T) {
	// Cycle alternating S and C twice: T1 and T2 both chopped, pieces
	// conflicting crosswise: S(T1/0,T1/1), C(T1/1,T2/0)? — build
	// T1 = w(a) w(b), T2 = w(b) w(a), both chopped into singles:
	// C(T1/0, T2/1) on a, C(T1/1, T2/0) on b, S inside each: a 4-cycle
	// with two S and two C edges. The contraction-by-C-components test
	// would miss it; the biconnected-component test must not.
	ts := core.MustTxnSet(
		core.T(1, core.W("a"), core.W("b")),
		core.T(2, core.W("b"), core.W("a")),
	)
	c, err := chopping.New(ts, map[core.TxnID][]int{1: {1, 1}, 2: {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	g := chopping.BuildSCGraph(c)
	if g.Correct() {
		t.Fatal("crosswise chopped writers form an SC-cycle; chopping must be incorrect")
	}
}

func TestToSpecBridge(t *testing.T) {
	// The chopping-to-relative-atomicity bridge: under the generated
	// spec, a schedule interleaving at piece boundaries is relatively
	// atomic, and the census respects the hierarchy.
	ts, c := ssv92Correct(t)
	sp, err := c.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumUnits(1, 2) != 2 || sp.NumUnits(1, 3) != 2 || sp.NumUnits(2, 1) != 1 {
		t.Fatalf("spec units wrong: %s", sp)
	}
	// T2 runs between T1's pieces: relatively atomic under the spec.
	s, err := core.ParseSchedule(ts,
		"r1[x] w1[x] r2[x] w2[x] r1[y] w1[y] r3[y] w3[y]")
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := core.IsRelativelyAtomic(s, sp); !ok {
		t.Errorf("piece-boundary interleaving should be relatively atomic: %v", v)
	}
	// And for a correct chopping, such a schedule is also conflict
	// serializable — the [SSV92] guarantee.
	if !core.IsConflictSerializable(s) {
		t.Error("correct chopping executions must be conflict serializable")
	}
}

func TestCorrectChoppingSchedulesSerializable(t *testing.T) {
	// Exhaustively: for the correct chopping, every schedule that is
	// relatively atomic under the chopping spec (pieces indivisible)
	// must be conflict serializable. This is the [SSV92] theorem
	// checked through the paper's machinery.
	ts, c := ssv92Correct(t)
	sp, err := c.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	enumerate.Schedules(ts, func(s *core.Schedule) bool {
		if ok, _ := core.IsRelativelyAtomic(s, sp); !ok {
			return true
		}
		checked++
		if !core.IsConflictSerializable(s) {
			t.Errorf("piece-atomic schedule not serializable: %s", s)
			return false
		}
		return true
	})
	if checked == 0 {
		t.Fatal("no piece-atomic schedules enumerated")
	}
	t.Logf("checked %d piece-atomic schedules", checked)
}

func TestIncorrectChoppingAdmitsNonSerializable(t *testing.T) {
	// Conversely, the incorrect chopping admits a piece-atomic schedule
	// that is NOT conflict serializable — the anomaly SC-cycles warn
	// about.
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x"), core.R("y"), core.W("y")),
		core.T(2, core.W("x"), core.W("y")),
	)
	c, err := chopping.New(ts, map[core.TxnID][]int{1: {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := c.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	enumerate.Schedules(ts, func(s *core.Schedule) bool {
		if ok, _ := core.IsRelativelyAtomic(s, sp); !ok {
			return true
		}
		if !core.IsConflictSerializable(s) {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("incorrect chopping should admit a non-serializable piece-atomic schedule")
	}
}

func TestSCGraphDot(t *testing.T) {
	_, c := ssv92Correct(t)
	dot := chopping.BuildSCGraph(c).Dot("sc")
	for _, want := range []string{`digraph "sc"`, `label="T1/0[0..1]"`, `label="S"`, `label="C"`, `style="dashed"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestEdgeKindString(t *testing.T) {
	if chopping.SEdge.String() != "S" || chopping.CEdge.String() != "C" {
		t.Error("kind strings")
	}
	if (chopping.SEdge | chopping.CEdge).String() != "S,C" {
		t.Error("combined kind string")
	}
	if chopping.EdgeKind(0).String() != "none" {
		t.Error("zero kind string")
	}
}
