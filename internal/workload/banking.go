package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"relser/internal/core"
	"relser/internal/storage"
	"relser/internal/txn"
)

// BankingConfig sizes the banking workload of §1: customers grouped
// into families sharing accounts, per-family credit audits and full
// bank audits.
type BankingConfig struct {
	Families          int
	AccountsPerFamily int
	// Customers is the number of transfer transactions (each within
	// one family).
	Customers int
	// CreditAudits read the accounts of a contiguous group of
	// FamiliesPerAudit families.
	CreditAudits     int
	FamiliesPerAudit int
	// BankAudits read every account and are atomic with respect to
	// everything, per the paper.
	BankAudits int
	// CrossingAudits makes every other credit audit scan its family
	// span in descending order. Two audits crossing the same families
	// in opposite orders produce transaction-level conflict cycles
	// through interleaved customer writes — schedules that are not
	// conflict serializable yet are relatively serializable thanks to
	// the audits' family-border unit boundaries. This is the knob that
	// separates RSGT from SGT in experiment E8.
	CrossingAudits bool
	// InitialBalance per account.
	InitialBalance int64
}

// DefaultBankingConfig returns a small but contended mix.
func DefaultBankingConfig() BankingConfig {
	return BankingConfig{
		Families:          4,
		AccountsPerFamily: 3,
		Customers:         12,
		CreditAudits:      4,
		FamiliesPerAudit:  2,
		BankAudits:        1,
		InitialBalance:    100,
	}
}

const (
	kindCustomer    = "customer"
	kindCreditAudit = "credit-audit"
	kindBankAudit   = "bank-audit"
)

// bankingSemantics implements transfers: a customer program reads two
// accounts then writes them, moving a deterministic amount.
type bankingSemantics struct {
	amounts map[core.TxnID]int64
}

// WriteValue implements txn.Semantics.
func (s *bankingSemantics) WriteValue(prog *core.Transaction, seq int, reads map[int]storage.Value) storage.Value {
	amt, ok := s.amounts[prog.ID]
	if !ok {
		return 0 // audits never write
	}
	// Customer program shape: r[src] r[dst] w[src] w[dst].
	switch seq {
	case 2:
		return reads[0] - storage.Value(amt)
	case 3:
		return reads[1] + storage.Value(amt)
	default:
		panic(fmt.Sprintf("workload: unexpected write seq %d in customer program", seq))
	}
}

// Banking generates the paper's banking scenario.
//
// Relative atomicity (the paper's prescription, §1):
//
//   - the bank audit is atomic with respect to every transaction and
//     vice versa (absolute defaults);
//   - a credit audit exposes unit boundaries at family borders: while
//     it audits family f, customers of other families may interleave;
//     customer transactions remain atomic units to the audit, so each
//     family snapshot is transfer-consistent;
//   - customer transfers of different families are mutually fully
//     interleavable (they share no accounts). The paper also permits
//     arbitrary interleaving of same-family customers as a user-level
//     semantic choice; this generator keeps same-family transfers
//     mutually atomic so the balance-conservation invariant remains
//     machine-checkable (documented substitution, DESIGN.md §3).
func Banking(cfg BankingConfig, seed int64) (*Workload, error) {
	if cfg.Families <= 0 || cfg.AccountsPerFamily <= 0 {
		return nil, fmt.Errorf("workload: banking needs at least one family and account")
	}
	if cfg.AccountsPerFamily < 2 && cfg.Customers > 0 {
		return nil, fmt.Errorf("workload: transfers need two accounts per family")
	}
	if cfg.FamiliesPerAudit <= 0 {
		cfg.FamiliesPerAudit = 1
	}
	rng := rand.New(rand.NewSource(seed))
	acct := func(f, a int) string { return fmt.Sprintf("acct_%d_%d", f, a) }

	initial := make(map[string]storage.Value)
	for f := 0; f < cfg.Families; f++ {
		for a := 0; a < cfg.AccountsPerFamily; a++ {
			initial[acct(f, a)] = storage.Value(cfg.InitialBalance)
		}
	}

	kinds := make(map[core.TxnID]string)
	familyOf := make(map[core.TxnID]int)     // customer -> family
	auditSpan := make(map[core.TxnID][2]int) // credit audit -> [first, last] family
	amounts := make(map[core.TxnID]int64)
	var programs []*core.Transaction
	nextID := core.TxnID(1)

	for c := 0; c < cfg.Customers; c++ {
		f := rng.Intn(cfg.Families)
		src := rng.Intn(cfg.AccountsPerFamily)
		dst := rng.Intn(cfg.AccountsPerFamily - 1)
		if dst >= src {
			dst++
		}
		p := core.T(nextID,
			core.R(acct(f, src)), core.R(acct(f, dst)),
			core.W(acct(f, src)), core.W(acct(f, dst)))
		kinds[nextID] = kindCustomer
		familyOf[nextID] = f
		amounts[nextID] = int64(1 + rng.Intn(10))
		programs = append(programs, p)
		nextID++
	}
	for a := 0; a < cfg.CreditAudits; a++ {
		first := rng.Intn(cfg.Families)
		last := first + cfg.FamiliesPerAudit - 1
		if last >= cfg.Families {
			last = cfg.Families - 1
		}
		families := make([]int, 0, last-first+1)
		for f := first; f <= last; f++ {
			families = append(families, f)
		}
		if cfg.CrossingAudits && a%2 == 1 {
			for i, j := 0, len(families)-1; i < j; i, j = i+1, j-1 {
				families[i], families[j] = families[j], families[i]
			}
		}
		var ops []core.Op
		for _, f := range families {
			for acc := 0; acc < cfg.AccountsPerFamily; acc++ {
				ops = append(ops, core.R(acct(f, acc)))
			}
		}
		p := core.T(nextID, ops...)
		kinds[nextID] = kindCreditAudit
		auditSpan[nextID] = [2]int{first, last}
		programs = append(programs, p)
		nextID++
	}
	for b := 0; b < cfg.BankAudits; b++ {
		var ops []core.Op
		for f := 0; f < cfg.Families; f++ {
			for acc := 0; acc < cfg.AccountsPerFamily; acc++ {
				ops = append(ops, core.R(acct(f, acc)))
			}
		}
		p := core.T(nextID, ops...)
		kinds[nextID] = kindBankAudit
		programs = append(programs, p)
		nextID++
	}
	if len(programs) == 0 {
		return nil, fmt.Errorf("workload: banking mix is empty")
	}

	oracle := &kindOracle{
		kinds: kinds,
		rule: func(a, b *core.Transaction, ka, kb string) []int {
			switch {
			case ka == kindBankAudit || kb == kindBankAudit:
				return nil // absolute both ways, per the paper
			case ka == kindCreditAudit:
				// Unit boundaries at family borders: observers may
				// interleave between per-family segments.
				span := auditSpan[a.ID]
				families := span[1] - span[0] + 1
				var cuts []int
				for f := 1; f < families; f++ {
					cuts = append(cuts, f*cfg.AccountsPerFamily)
				}
				return cuts
			case ka == kindCustomer && kb == kindCustomer:
				if familyOf[a.ID] != familyOf[b.ID] {
					return everyOp(a) // disjoint accounts; free interleaving
				}
				return nil // same family kept atomic (see doc comment)
			case ka == kindCustomer && kb == kindCreditAudit:
				return nil // transfers stay atomic to auditors
			default:
				return nil
			}
		},
	}

	total := storage.Value(int64(cfg.Families*cfg.AccountsPerFamily) * cfg.InitialBalance)
	invariant := func(snapshot map[string]storage.Value) error {
		var sum storage.Value
		var names []string
		for name, v := range snapshot {
			if strings.HasPrefix(name, "acct_") {
				sum += v
				names = append(names, name)
			}
		}
		if sum != total {
			sort.Strings(names)
			return fmt.Errorf("balance conservation broken: total %d, want %d (%d accounts)", sum, total, len(names))
		}
		return nil
	}

	return &Workload{
		Name:      "banking",
		Programs:  programs,
		Oracle:    oracle,
		Initial:   initial,
		Semantics: &bankingSemantics{amounts: amounts},
		Invariant: invariant,
	}, nil
}

var _ txn.Semantics = (*bankingSemantics)(nil)
