package workload_test

// Driver parity for bounded-memory certification over the committed
// deterministic corpus: the serial driver retires a reproducible
// vertex set (two runs agree exactly), and both drivers retire every
// vertex they create — after Finalize nothing is live or pending, so
// the retired set is identical to the created set on each driver.

import (
	"path/filepath"
	"testing"

	"relser/internal/record"
	"relser/internal/sched"
	"relser/internal/workload"
)

func corpusManifests(t *testing.T) []record.Manifest {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "recordings", "*.rsrec"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed corpus found: %v", err)
	}
	var ms []record.Manifest
	for _, path := range paths {
		rec, err := record.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		ms = append(ms, rec.Manifest)
	}
	return ms
}

func retireRun(t *testing.T, m record.Manifest, concurrent bool) sched.RetireStats {
	t.Helper()
	w, err := workload.Build(m.Workload)
	if err != nil {
		t.Fatalf("%s: build: %v", m.Workload.Name, err)
	}
	p, err := sched.NewProtocol(m.Protocol, w.Oracle)
	if err != nil {
		t.Fatalf("%s: protocol %q: %v", m.Workload.Name, m.Protocol, err)
	}
	if _, ok := p.(sched.Retirer); !ok {
		// Corpus entries recorded under non-certifying protocols (e.g.
		// timestamp ordering) have no graph to retire; drive the same
		// workload under the RSG certifier instead.
		if p, err = sched.NewProtocol("rsgt", w.Oracle); err != nil {
			t.Fatal(err)
		}
	}
	res, _, err := w.RunWith(p, workload.RunOptions{
		Seed:       m.Seed,
		MPL:        m.MPL,
		Concurrent: concurrent,
	})
	if err != nil {
		t.Fatalf("%s (concurrent=%v): run: %v", m.Workload.Name, concurrent, err)
	}
	return res.Retire
}

func TestRetireParityAcrossDrivers(t *testing.T) {
	for _, m := range corpusManifests(t) {
		m := m
		t.Run(m.Workload.Name, func(t *testing.T) {
			serial := retireRun(t, m, false)
			if !serial.Enabled {
				t.Fatalf("retirement off by default on protocol %q", m.Protocol)
			}
			if serial.LiveVertices != 0 || serial.PendingRetire != 0 {
				t.Fatalf("serial run finished with live=%d pending=%d, want 0/0",
					serial.LiveVertices, serial.PendingRetire)
			}
			if serial.RetiredVertices == 0 {
				t.Fatal("serial run retired nothing")
			}
			// The serial driver is deterministic, so the retired vertex set
			// — and with it every counter — must reproduce exactly.
			if again := retireRun(t, m, false); again != serial {
				t.Fatalf("serial retirement not reproducible:\n first: %+v\nsecond: %+v", serial, again)
			}
			// The concurrent driver schedules differently (so totals may
			// differ), but it must satisfy the same contract: everything it
			// created is retired by Finalize.
			conc := retireRun(t, m, true)
			if !conc.Enabled {
				t.Fatal("concurrent run lost the retirement setting")
			}
			if conc.LiveVertices != 0 || conc.PendingRetire != 0 {
				t.Fatalf("concurrent run finished with live=%d pending=%d, want 0/0",
					conc.LiveVertices, conc.PendingRetire)
			}
			if conc.RetiredVertices == 0 {
				t.Fatal("concurrent run retired nothing")
			}
		})
	}
}
