package workload

import (
	"fmt"
	"math/rand"

	"relser/internal/core"
	"relser/internal/storage"
)

// CADCAMConfig sizes the collaborative design workload of §1/§5: users
// divided into teams of specialized experts; within a team interleaving
// is permitted at part boundaries, across teams transactions observe
// each other atomically.
type CADCAMConfig struct {
	Teams        int
	PartsPerTeam int
	// Designers is the number of design-update transactions; each
	// updates a few parts of its own team's module.
	Designers      int
	PartsPerUpdate int
	// Integrators read an entire team module (their own team's), used
	// to check module-level consistency.
	Integrators int
}

// DefaultCADCAMConfig returns a contended two-team mix.
func DefaultCADCAMConfig() CADCAMConfig {
	return CADCAMConfig{
		Teams:          2,
		PartsPerTeam:   4,
		Designers:      10,
		PartsPerUpdate: 3,
		Integrators:    2,
	}
}

const (
	kindDesigner   = "designer"
	kindIntegrator = "integrator"
)

// CADCAM generates the design-collaboration scenario.
//
// Relative atomicity: a designer's transaction exposes unit boundaries
// after each part update to *same-team* transactions (each part update
// is r[part] w[part], so units have length 2) and is atomic to other
// teams; integrators are atomic to everyone (they want a consistent
// module snapshot) while designers of other teams may interleave them
// at part boundaries.
func CADCAM(cfg CADCAMConfig, seed int64) (*Workload, error) {
	if cfg.Teams <= 0 || cfg.PartsPerTeam <= 0 {
		return nil, fmt.Errorf("workload: cadcam needs teams and parts")
	}
	if cfg.PartsPerUpdate > cfg.PartsPerTeam {
		cfg.PartsPerUpdate = cfg.PartsPerTeam
	}
	rng := rand.New(rand.NewSource(seed))
	part := func(t, p int) string { return fmt.Sprintf("part_%d_%d", t, p) }

	initial := make(map[string]storage.Value)
	for t := 0; t < cfg.Teams; t++ {
		for p := 0; p < cfg.PartsPerTeam; p++ {
			initial[part(t, p)] = 1
		}
	}

	kinds := make(map[core.TxnID]string)
	teamOf := make(map[core.TxnID]int)
	var programs []*core.Transaction
	nextID := core.TxnID(1)

	for d := 0; d < cfg.Designers; d++ {
		team := rng.Intn(cfg.Teams)
		perm := rng.Perm(cfg.PartsPerTeam)[:cfg.PartsPerUpdate]
		var ops []core.Op
		for _, p := range perm {
			ops = append(ops, core.R(part(team, p)), core.W(part(team, p)))
		}
		programs = append(programs, core.T(nextID, ops...))
		kinds[nextID] = kindDesigner
		teamOf[nextID] = team
		nextID++
	}
	for i := 0; i < cfg.Integrators; i++ {
		team := rng.Intn(cfg.Teams)
		var ops []core.Op
		for p := 0; p < cfg.PartsPerTeam; p++ {
			ops = append(ops, core.R(part(team, p)))
		}
		programs = append(programs, core.T(nextID, ops...))
		kinds[nextID] = kindIntegrator
		teamOf[nextID] = team
		nextID++
	}
	if len(programs) == 0 {
		return nil, fmt.Errorf("workload: cadcam mix is empty")
	}

	oracle := &kindOracle{
		kinds: kinds,
		rule: func(a, b *core.Transaction, ka, kb string) []int {
			sameTeam := teamOf[a.ID] == teamOf[b.ID]
			switch {
			case ka == kindDesigner && sameTeam:
				return everyK(a, 2) // unit per part update (r+w)
			case ka == kindDesigner && !sameTeam:
				return nil // atomic across teams
			case ka == kindIntegrator && !sameTeam:
				return everyK(a, cfg.PartsPerTeam) // other teams don't conflict anyway
			default:
				return nil // integrator atomic to own team
			}
		},
	}

	// Invariant: every part value equals 1 plus the number of designer
	// updates that committed on it — each update writes read+1 and part
	// updates are atomic units, so increments never get lost.
	// The expected count is computed from the committed programs after
	// the run; here we can only assert positivity, so the workload
	// exposes the stronger check through ExpectedPartValue.
	invariant := func(snapshot map[string]storage.Value) error {
		updates := make(map[string]int)
		for _, p := range programs {
			for _, o := range p.Ops {
				if o.Kind == core.WriteOp {
					updates[o.Object]++
				}
			}
		}
		for obj, n := range updates {
			want := storage.Value(1 + n)
			if got := snapshot[obj]; got != want {
				return fmt.Errorf("part %s = %d, want %d (lost or duplicated update)", obj, got, want)
			}
		}
		return nil
	}

	return &Workload{
		Name:      "cadcam",
		Programs:  programs,
		Oracle:    oracle,
		Initial:   initial,
		Semantics: incrementSemantics{},
		Invariant: invariant,
	}, nil
}

// incrementSemantics writes read(previous op) + 1: programs are
// sequences of r[x] w[x] pairs (and pure reads), so each write stores
// one more than the value read immediately before it.
type incrementSemantics struct{}

// WriteValue implements txn.Semantics.
func (incrementSemantics) WriteValue(prog *core.Transaction, seq int, reads map[int]storage.Value) storage.Value {
	if v, ok := reads[seq-1]; ok {
		return v + 1
	}
	return 1
}
