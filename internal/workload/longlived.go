package workload

import (
	"fmt"
	"math/rand"

	"relser/internal/core"
	"relser/internal/storage"
)

// LongLivedConfig sizes the long-lived transaction scenario of §5 and
// [SGMA87]: a few long scan-and-update transactions sweep many
// objects while a stream of short transactions touches single objects.
type LongLivedConfig struct {
	Objects int
	// LongTxns sweep every object (read then write each).
	LongTxns int
	// ShortTxns touch one random object (read then write).
	ShortTxns int
}

// DefaultLongLivedConfig returns one long sweep over 16 objects with
// 24 short transactions.
func DefaultLongLivedConfig() LongLivedConfig {
	return LongLivedConfig{Objects: 16, LongTxns: 1, ShortTxns: 24}
}

const (
	kindLong  = "long"
	kindShort = "short"
)

// LongLived generates the altruistic-locking scenario.
//
// Relative atomicity: a long transaction exposes unit boundaries after
// every object it finishes (each unit is the r[x] w[x] pair), relative
// to every other transaction — precisely the "different atomic units"
// generalization of early lock release that §5 describes. Short
// transactions are atomic to everyone.
func LongLived(cfg LongLivedConfig, seed int64) (*Workload, error) {
	if cfg.Objects <= 0 {
		return nil, fmt.Errorf("workload: longlived needs objects")
	}
	rng := rand.New(rand.NewSource(seed))
	obj := func(i int) string { return fmt.Sprintf("x_%d", i) }

	initial := make(map[string]storage.Value)
	for i := 0; i < cfg.Objects; i++ {
		initial[obj(i)] = 0
	}

	kinds := make(map[core.TxnID]string)
	var programs []*core.Transaction
	nextID := core.TxnID(1)

	for l := 0; l < cfg.LongTxns; l++ {
		var ops []core.Op
		for i := 0; i < cfg.Objects; i++ {
			ops = append(ops, core.R(obj(i)), core.W(obj(i)))
		}
		programs = append(programs, core.T(nextID, ops...))
		kinds[nextID] = kindLong
		nextID++
	}
	for s := 0; s < cfg.ShortTxns; s++ {
		i := rng.Intn(cfg.Objects)
		programs = append(programs, core.T(nextID, core.R(obj(i)), core.W(obj(i))))
		kinds[nextID] = kindShort
		nextID++
	}

	oracle := &kindOracle{
		kinds: kinds,
		rule: func(a, _ *core.Transaction, ka, _ string) []int {
			if ka == kindLong {
				return everyK(a, 2) // one unit per swept object
			}
			return nil
		},
	}

	// Every write stores read+1, and every r/w pair is an atomic unit,
	// so each object's final value counts the transactions that updated
	// it.
	updates := make(map[string]int)
	for _, p := range programs {
		for _, o := range p.Ops {
			if o.Kind == core.WriteOp {
				updates[o.Object]++
			}
		}
	}
	invariant := func(snapshot map[string]storage.Value) error {
		for o, n := range updates {
			if got := snapshot[o]; got != storage.Value(n) {
				return fmt.Errorf("object %s = %d, want %d (lost or duplicated update)", o, got, n)
			}
		}
		return nil
	}

	return &Workload{
		Name:      "longlived",
		Programs:  programs,
		Oracle:    oracle,
		Initial:   initial,
		Semantics: incrementSemantics{},
		Invariant: invariant,
	}, nil
}
