package workload

import (
	"fmt"
	"math/rand"

	"relser/internal/core"
	"relser/internal/storage"
)

// SyntheticConfig sizes the uniform random workload used for scaling
// sweeps (experiments E6 and E9).
type SyntheticConfig struct {
	Objects   int
	Programs  int
	OpsPerTxn int
	// WriteRatio in [0, 1] is the probability an operation writes.
	WriteRatio float64
	// Granularity is the atomic-unit length every transaction exposes
	// to every other: 0 or >= OpsPerTxn means absolute atomicity, 1
	// means fully breakable.
	Granularity int
	// HotFraction concentrates this fraction of accesses on the first
	// HotObjects objects, modelling contention; zero disables skew.
	HotFraction float64
	HotObjects  int
	// ZipfS, when > 1, draws objects from a Zipf distribution with
	// exponent s instead of the uniform/hot-set mix (rank 0 is the
	// hottest object).
	ZipfS float64
}

// DefaultSyntheticConfig returns a moderately contended mix.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Objects:     32,
		Programs:    24,
		OpsPerTxn:   8,
		WriteRatio:  0.4,
		Granularity: 2,
		HotFraction: 0.3,
		HotObjects:  4,
	}
}

// Synthetic generates a uniform random workload whose relative
// atomicity granularity is a single knob, for sweeps from absolute
// atomicity (the classical model) to fully breakable transactions.
func Synthetic(cfg SyntheticConfig, seed int64) (*Workload, error) {
	if cfg.Objects <= 0 || cfg.Programs <= 0 || cfg.OpsPerTxn <= 0 {
		return nil, fmt.Errorf("workload: synthetic needs objects, programs and operations")
	}
	if cfg.HotObjects <= 0 || cfg.HotObjects > cfg.Objects {
		cfg.HotObjects = 1
	}
	rng := rand.New(rand.NewSource(seed))
	obj := func(i int) string { return fmt.Sprintf("o_%d", i) }

	initial := make(map[string]storage.Value)
	for i := 0; i < cfg.Objects; i++ {
		initial[obj(i)] = 0
	}

	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Objects-1))
	}
	pick := func() string {
		if zipf != nil {
			return obj(int(zipf.Uint64()))
		}
		if cfg.HotFraction > 0 && rng.Float64() < cfg.HotFraction {
			return obj(rng.Intn(cfg.HotObjects))
		}
		return obj(rng.Intn(cfg.Objects))
	}
	var programs []*core.Transaction
	for p := 0; p < cfg.Programs; p++ {
		ops := make([]core.Op, cfg.OpsPerTxn)
		for k := range ops {
			if rng.Float64() < cfg.WriteRatio {
				ops[k] = core.W(pick())
			} else {
				ops[k] = core.R(pick())
			}
		}
		programs = append(programs, core.T(core.TxnID(p+1), ops...))
	}

	g := cfg.Granularity
	oracle := &kindOracle{
		kinds: map[core.TxnID]string{},
		rule: func(a, _ *core.Transaction, _, _ string) []int {
			if g <= 0 || g >= a.Len() {
				return nil
			}
			return everyK(a, g)
		},
	}

	return &Workload{
		Name:     fmt.Sprintf("synthetic(g=%d)", cfg.Granularity),
		Programs: programs,
		Oracle:   oracle,
		Initial:  initial,
	}, nil
}
