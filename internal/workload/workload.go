// Package workload generates the transaction mixes the paper motivates
// (§1, §5) together with their relative atomicity specifications:
//
//   - Banking: families of accounts with customer transfers, per-family
//     credit audits and a full bank audit — the [Lyn83] example the
//     paper retells in §1;
//   - CADCAM: teams of designers updating module parts, with free
//     interleaving at part boundaries inside a team and atomicity
//     across teams;
//   - LongLived: one long scan-and-update transaction with unit
//     boundaries after every object, amid many short transactions —
//     the altruistic-locking scenario of [SGMA87] that §5 presents
//     relative atomicity as generalizing;
//   - Synthetic: uniform random read/write programs with a tunable
//     atomicity granularity knob, for scaling sweeps.
//
// Each workload carries an AtomicityOracle (the specification), initial
// object values, write semantics, and an invariant auditors can check
// after a run.
package workload

import (
	"context"
	"fmt"
	"time"

	"relser/internal/core"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/obs"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/trace"
	"relser/internal/txn"
)

// Workload bundles programs with their specification and semantics.
type Workload struct {
	Name     string
	Programs []*core.Transaction
	Oracle   sched.AtomicityOracle
	// Initial values loaded into the store before a run.
	Initial map[string]storage.Value
	// Semantics computes written values; nil means identity-based
	// defaults.
	Semantics txn.Semantics
	// Invariant validates a post-run snapshot (nil when the workload
	// has no data invariant).
	Invariant func(snapshot map[string]storage.Value) error
}

// Run executes the workload under the protocol with the given seed and
// multiprogramming level, returning the runtime result.
func (w *Workload) Run(protocol sched.Protocol, seed int64, mpl int) (*txn.Result, error) {
	res, _, err := w.RunWith(protocol, RunOptions{Seed: seed, MPL: mpl})
	return res, err
}

// RunOptions extends Run with a write-ahead log, a caller-supplied
// store, observability sinks, and the concurrent (goroutine) execution
// mode.
type RunOptions struct {
	Seed int64
	MPL  int
	// WAL is any durability sink: a single-lane *storage.WAL or a
	// per-shard segmented *storage.ShardedWAL (group commit).
	WAL        storage.WALSink
	Store      *storage.Store
	Concurrent bool
	// Shards stripes the concurrent driver's hot path (power of two;
	// zero means one shard). Ignored by the deterministic runner.
	Shards int
	// Tracer receives structured events from the runtime, the protocol
	// and the storage substrate.
	Tracer *trace.Tracer
	// Metrics receives run counters and latency histograms.
	Metrics *metrics.Registry
	// Obs attaches a live observability plane (internal/obs): its
	// flight recorder and span table become the run's tracer (Tracer,
	// when also set, is teed in downstream with sampling disabled so it
	// still sees the complete stream), its span-assembly hooks become
	// the run's stage hooks, and its registry backs the run when
	// Metrics is nil.
	Obs *obs.Plane
	// Hooks observes engine lifecycle stage transitions
	// (txn.Config.Hooks). Observers layered on top of the run — the
	// recording tap (internal/record), tests cancelling at precise
	// stages — install themselves here; when Obs is also set, the
	// plane's span hooks are chained in front.
	Hooks txn.Hooks
	// Faults arms deterministic fault injection across the run's store,
	// WAL and driver (see internal/fault).
	Faults *fault.Injector
	// Deadline bounds each instance's logical age before a driver abort;
	// 0 disables (see txn.Config.Deadline).
	Deadline int64
	// Watchdog bounds progress-free wall time in the concurrent driver;
	// 0 selects the default, negative disables (see txn.Config.Watchdog).
	Watchdog time.Duration
	// Timeout, when positive, bounds the run's wall time via a context
	// deadline layered onto the caller's context: an expired run unwinds
	// in-flight instances through the engine's Recover stage and fails
	// with context.DeadlineExceeded as the cause.
	Timeout time.Duration
	// DisableRSGRetire turns off bounded-memory certification (graph
	// retirement + vector-clock fast path) for protocols that support
	// it; the zero value keeps it on (see txn.Config.DisableRSGRetire).
	DisableRSGRetire bool
}

// RunWith executes the workload with full options and returns the
// result together with the store it ran against.
func (w *Workload) RunWith(protocol sched.Protocol, opts RunOptions) (*txn.Result, *storage.Store, error) {
	//rsvet:allow ctxflow -- ctx-less convenience wrapper: RunWithContext is the context-aware form
	return w.RunWithContext(context.Background(), protocol, opts)
}

// RunWithContext is RunWith under a caller context: cancellation and
// deadlines propagate through both drivers' run loops (txn.Runner
// checks at tick boundaries; txn.ConcurrentRunner's workers check on
// every step and are flooded awake on cancellation).
func (w *Workload) RunWithContext(ctx context.Context, protocol sched.Protocol, opts RunOptions) (*txn.Result, *storage.Store, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	store := opts.Store
	if store == nil {
		store = storage.NewStore()
	}
	store.Load(w.Initial)
	cfg := txn.Config{
		Protocol:  protocol,
		Programs:  w.Programs,
		Oracle:    w.Oracle,
		Store:     store,
		Semantics: w.Semantics,
		MPL:       opts.MPL,
		Shards:    opts.Shards,
		Seed:      opts.Seed,
		WAL:       opts.WAL,
		Tracer:    opts.Tracer,
		Metrics:   opts.Metrics,
		Faults:    opts.Faults,
		Deadline:  opts.Deadline,
		Watchdog:  opts.Watchdog,
		Hooks:     opts.Hooks,

		DisableRSGRetire: opts.DisableRSGRetire,
	}
	if opts.Obs != nil {
		cfg.Tracer = opts.Obs.Tracer(opts.Tracer)
		cfg.Hooks = opts.Obs.Hooks(cfg.Hooks)
		if cfg.Metrics == nil {
			cfg.Metrics = opts.Obs.Registry()
		}
	}
	var (
		res *txn.Result
		err error
	)
	if opts.Concurrent {
		var runner *txn.ConcurrentRunner
		runner, err = txn.NewConcurrent(cfg)
		if err == nil {
			res, err = runner.RunContext(ctx)
		}
	} else {
		var runner *txn.Runner
		runner, err = txn.New(cfg)
		if err == nil {
			res, err = runner.RunContext(ctx)
		}
	}
	if err != nil {
		return nil, store, err
	}
	if w.Invariant != nil {
		if err := w.Invariant(store.Snapshot()); err != nil {
			return res, store, fmt.Errorf("workload %s invariant violated: %v", w.Name, err)
		}
	}
	return res, store, nil
}

// kindOracle dispatches atomicity cuts on transaction kinds. Workloads
// register each program's kind and a rule table.
type kindOracle struct {
	kinds map[core.TxnID]string
	// cuts returns boundaries of a relative to b given their kinds.
	rule func(a, b *core.Transaction, ka, kb string) []int
}

// Cuts implements sched.AtomicityOracle.
func (o *kindOracle) Cuts(a, b *core.Transaction) []int {
	return o.rule(a, b, o.kinds[a.ID], o.kinds[b.ID])
}

// everyOp returns boundaries after every operation: fully breakable.
func everyOp(t *core.Transaction) []int {
	cuts := make([]int, 0, t.Len()-1)
	for p := 1; p < t.Len(); p++ {
		cuts = append(cuts, p)
	}
	return cuts
}

// everyK returns boundaries after every k-th operation.
func everyK(t *core.Transaction, k int) []int {
	if k <= 0 {
		return nil
	}
	var cuts []int
	for p := k; p < t.Len(); p += k {
		cuts = append(cuts, p)
	}
	return cuts
}
