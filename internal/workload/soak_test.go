package workload_test

import (
	"testing"

	"relser/internal/sched"
	"relser/internal/workload"
)

// TestSoakAllWorkloadsAllProtocols is the long randomized certification
// sweep: every workload under every correct protocol across many seeds
// and multiprogramming levels, with every committed schedule certified
// by the offline Theorem 1 test and every data invariant checked.
// Skipped with -short.
func TestSoakAllWorkloadsAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("soak sweep skipped with -short")
	}
	type maker struct {
		name string
		make func(seed int64) (*workload.Workload, error)
	}
	makers := []maker{
		{"banking", func(seed int64) (*workload.Workload, error) {
			cfg := workload.DefaultBankingConfig()
			cfg.CrossingAudits = true
			return workload.Banking(cfg, seed)
		}},
		{"cadcam", func(seed int64) (*workload.Workload, error) {
			return workload.CADCAM(workload.DefaultCADCAMConfig(), seed)
		}},
		{"longlived", func(seed int64) (*workload.Workload, error) {
			return workload.LongLived(workload.DefaultLongLivedConfig(), seed)
		}},
		{"synthetic-g2", func(seed int64) (*workload.Workload, error) {
			return workload.Synthetic(workload.DefaultSyntheticConfig(), seed)
		}},
		{"synthetic-zipf", func(seed int64) (*workload.Workload, error) {
			cfg := workload.DefaultSyntheticConfig()
			cfg.ZipfS = 1.3
			cfg.Granularity = 1
			return workload.Synthetic(cfg, seed)
		}},
	}
	protocols := []string{"s2pl", "sgt", "rsgt", "altruistic", "to", "ral"}
	for _, m := range makers {
		for _, proto := range protocols {
			t.Run(m.name+"/"+proto, func(t *testing.T) {
				t.Parallel()
				for seed := int64(10); seed < 18; seed++ {
					for _, mpl := range []int{3, 8} {
						w, err := m.make(seed)
						if err != nil {
							t.Fatal(err)
						}
						var p sched.Protocol
						switch proto {
						case "s2pl":
							p = sched.NewS2PL()
						case "sgt":
							p = sched.NewSGT()
						case "rsgt":
							p = sched.NewRSGT(w.Oracle)
						case "altruistic":
							p = sched.NewAltruistic(w.Oracle)
						case "to":
							p = sched.NewTO()
						case "ral":
							p = sched.NewRAL(w.Oracle)
						}
						res, err := w.Run(p, seed, mpl)
						if err != nil {
							t.Fatalf("seed=%d mpl=%d: %v", seed, mpl, err)
						}
						if res.Committed != len(w.Programs) {
							t.Fatalf("seed=%d mpl=%d: committed %d of %d",
								seed, mpl, res.Committed, len(w.Programs))
						}
						if err := res.Verify(); err != nil {
							t.Fatalf("seed=%d mpl=%d: %v", seed, mpl, err)
						}
					}
				}
			})
		}
	}
}
