package workload_test

import (
	"fmt"
	"testing"

	"relser/internal/sched"
	"relser/internal/workload"
)

// protocols returns fresh instances of every correct protocol for a
// workload (NoCC excluded: it makes no correctness promise).
func protocols(w *workload.Workload) map[string]sched.Protocol {
	return map[string]sched.Protocol{
		"s2pl":       sched.NewS2PL(),
		"sgt":        sched.NewSGT(),
		"rsgt":       sched.NewRSGT(w.Oracle),
		"altruistic": sched.NewAltruistic(w.Oracle),
		"to":         sched.NewTO(),
		"ral":        sched.NewRAL(w.Oracle),
	}
}

func runAll(t *testing.T, make func(seed int64) (*workload.Workload, error), seeds []int64) {
	t.Helper()
	for _, seed := range seeds {
		w, err := make(seed)
		if err != nil {
			t.Fatal(err)
		}
		for name, p := range protocols(w) {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				res, err := w.Run(p, seed, 8)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.Committed != len(w.Programs) {
					t.Fatalf("committed %d of %d programs", res.Committed, len(w.Programs))
				}
				if err := res.Verify(); err != nil {
					t.Errorf("schedule verification: %v", err)
				}
			})
		}
	}
}

func TestBankingAllProtocols(t *testing.T) {
	runAll(t, func(seed int64) (*workload.Workload, error) {
		return workload.Banking(workload.DefaultBankingConfig(), seed)
	}, []int64{1, 2, 3})
}

func TestCADCAMAllProtocols(t *testing.T) {
	runAll(t, func(seed int64) (*workload.Workload, error) {
		return workload.CADCAM(workload.DefaultCADCAMConfig(), seed)
	}, []int64{1, 2})
}

func TestLongLivedAllProtocols(t *testing.T) {
	runAll(t, func(seed int64) (*workload.Workload, error) {
		return workload.LongLived(workload.DefaultLongLivedConfig(), seed)
	}, []int64{1, 2})
}

func TestSyntheticAllProtocols(t *testing.T) {
	runAll(t, func(seed int64) (*workload.Workload, error) {
		return workload.Synthetic(workload.DefaultSyntheticConfig(), seed)
	}, []int64{1})
}

func TestBankingValidation(t *testing.T) {
	if _, err := workload.Banking(workload.BankingConfig{}, 1); err == nil {
		t.Error("empty banking config accepted")
	}
	if _, err := workload.Banking(workload.BankingConfig{Families: 1, AccountsPerFamily: 1, Customers: 1}, 1); err == nil {
		t.Error("transfers with one account accepted")
	}
}

func TestCADCAMValidation(t *testing.T) {
	if _, err := workload.CADCAM(workload.CADCAMConfig{}, 1); err == nil {
		t.Error("empty cadcam config accepted")
	}
}

func TestLongLivedValidation(t *testing.T) {
	if _, err := workload.LongLived(workload.LongLivedConfig{}, 1); err == nil {
		t.Error("empty longlived config accepted")
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := workload.Synthetic(workload.SyntheticConfig{}, 1); err == nil {
		t.Error("empty synthetic config accepted")
	}
}

func TestSyntheticGranularityKnob(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Granularity = 0 // absolute
	w, err := workload.Synthetic(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cuts := w.Oracle.Cuts(w.Programs[0], w.Programs[1]); len(cuts) != 0 {
		t.Errorf("granularity 0 should be absolute, got cuts %v", cuts)
	}
	cfg.Granularity = 1
	w, err = workload.Synthetic(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cuts := w.Oracle.Cuts(w.Programs[0], w.Programs[1]); len(cuts) != cfg.OpsPerTxn-1 {
		t.Errorf("granularity 1 should be fully breakable, got cuts %v", cuts)
	}
}

func TestLongLivedAltruisticBeatsS2PLOnBlocking(t *testing.T) {
	// The [SGMA87] claim §5 cites: altruistic locking lets short
	// transactions run inside the long transaction's lifetime. Compare
	// blocking: altruistic should block strictly less than plain 2PL on
	// the long-lived mix, with everything still committing.
	cfg := workload.LongLivedConfig{Objects: 12, LongTxns: 1, ShortTxns: 20}
	var blocks2pl, blocksAlt int
	for seed := int64(1); seed <= 3; seed++ {
		w, err := workload.LongLived(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := w.Run(sched.NewS2PL(), seed, 8)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := workload.LongLived(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := w2.Run(sched.NewAltruistic(w2.Oracle), seed, 8)
		if err != nil {
			t.Fatal(err)
		}
		blocks2pl += r1.Blocks
		blocksAlt += r2.Blocks
	}
	if blocksAlt >= blocks2pl {
		t.Errorf("altruistic blocked %d times vs 2PL's %d; expected less blocking", blocksAlt, blocks2pl)
	}
}

func TestBankingInvariantCatchesCorruption(t *testing.T) {
	// Sanity-check the invariant itself: running under NoCC with many
	// contended seeds should eventually corrupt balance conservation
	// (lost updates), which the invariant must report.
	cfg := workload.BankingConfig{
		Families:          1,
		AccountsPerFamily: 2,
		Customers:         10,
		InitialBalance:    100,
	}
	corrupted := false
	for seed := int64(0); seed < 40 && !corrupted; seed++ {
		w, err := workload.Banking(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(sched.NewNoCC(), seed, 8); err != nil {
			corrupted = true
		}
	}
	if !corrupted {
		t.Skip("NoCC stayed consistent across seeds (recoverability gating is strong on this mix)")
	}
}

func TestSyntheticZipfSkew(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Objects = 64
	cfg.Programs = 40
	cfg.OpsPerTxn = 10
	cfg.ZipfS = 1.5
	w, err := workload.Synthetic(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	total := 0
	for _, p := range w.Programs {
		for _, o := range p.Ops {
			counts[o.Object]++
			total++
		}
	}
	// Zipf with s=1.5 concentrates mass on rank 0: the hottest object
	// should dominate any mid-rank object.
	if counts["o_0"] <= counts["o_32"] {
		t.Errorf("zipf skew missing: o_0=%d, o_32=%d", counts["o_0"], counts["o_32"])
	}
	if counts["o_0"]*4 < total/cfg.Objects {
		t.Errorf("hottest object suspiciously cold: %d of %d", counts["o_0"], total)
	}
}
