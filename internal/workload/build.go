package workload

import "fmt"

// BuildParams names a workload and the knobs its generator takes, in a
// serializable form. The same params always rebuild the exact same
// programs, oracle, semantics and initial state (the generators draw
// from a seeded rand.Source), which is what makes a recorded run
// (internal/record) replayable: an .rsrec artifact carries BuildParams
// instead of trying to serialize oracles and invariants.
type BuildParams struct {
	// Name selects the generator: banking | cadcam | longlived |
	// synthetic.
	Name string `json:"name"`
	// Seed drives the generator's randomized choices.
	Seed int64 `json:"seed"`
	// Scale multiplies the workload's size knobs the way rssim -scale
	// does (0 is normalized to 1).
	Scale int `json:"scale,omitempty"`
	// Granularity is the synthetic workload's atomic-unit length
	// (ignored by the other generators).
	Granularity int `json:"granularity,omitempty"`
	// Crossing makes banking audits scan families in alternating
	// directions (ignored by the other generators).
	Crossing bool `json:"crossing,omitempty"`
	// Variant selects a named sub-shape of a generator. Banking knows
	// "short": customers only, no audits (the E16 abort-storm mix, where
	// long audits would spend hundreds of incarnations surviving a high
	// per-tick abort rate). Empty is the generator's default mix.
	Variant string `json:"variant,omitempty"`
}

// Build constructs a workload from its parameters. rssim and rsreplay
// share this resolver so a recording made by one rebuilds identically
// in the other.
func Build(p BuildParams) (*Workload, error) {
	scale := p.Scale
	if scale <= 0 {
		scale = 1
	}
	switch p.Name {
	case "banking":
		cfg := DefaultBankingConfig()
		cfg.Customers *= scale
		cfg.CreditAudits *= scale
		cfg.CrossingAudits = p.Crossing
		switch p.Variant {
		case "":
		case "short":
			cfg.CreditAudits = 0
			cfg.BankAudits = 0
		default:
			return nil, fmt.Errorf("workload: unknown banking variant %q (have short)", p.Variant)
		}
		return Banking(cfg, p.Seed)
	case "cadcam":
		cfg := DefaultCADCAMConfig()
		cfg.Designers *= scale
		cfg.Integrators *= scale
		return CADCAM(cfg, p.Seed)
	case "longlived":
		cfg := DefaultLongLivedConfig()
		cfg.ShortTxns *= scale
		return LongLived(cfg, p.Seed)
	case "synthetic":
		cfg := DefaultSyntheticConfig()
		cfg.Programs *= scale
		cfg.Granularity = p.Granularity
		return Synthetic(cfg, p.Seed)
	default:
		return nil, fmt.Errorf("workload: unknown workload %q (have banking cadcam longlived synthetic)", p.Name)
	}
}
