// Package sched implements online concurrency-control protocols behind
// a single admission interface:
//
//   - NoCC     — allow-everything baseline (measures raw interleaving);
//   - S2PL     — strict two-phase locking with waits-for deadlock
//     detection [EGLT76];
//   - SGT      — serialization graph testing at transaction granularity
//     [Bad79, Cas81];
//   - RSGT     — relative serialization graph testing: the protocol §3
//     of the paper proposes, maintaining the paper's RSG (I/D/F/B arcs)
//     incrementally over operations and admitting exactly the
//     relatively serializable executions (Theorem 1);
//   - Altruistic — altruistic locking for long-lived transactions
//     [SGMA87], which §5 presents as the special case relative
//     atomicity generalizes.
//
// Protocols are sequential state machines: the driver (internal/txn)
// serializes calls into them. The driver may run transactions on
// goroutines; the protocol mutex in the driver provides the required
// mutual exclusion.
package sched

import (
	"context"
	"sort"
	"sync"

	"relser/internal/core"
)

// Decision is a protocol's answer to an operation request.
type Decision int

const (
	// Grant admits the operation; the driver executes it immediately.
	Grant Decision = iota
	// Block defers the operation; the driver retries it later.
	Block
	// Abort instructs the driver to abort the requesting transaction
	// (it may restart as a fresh instance).
	Abort
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Grant:
		return "grant"
	case Block:
		return "block"
	case Abort:
		return "abort"
	default:
		return "unknown"
	}
}

// OpRequest identifies the next operation of a running transaction
// instance. Instance numbers are unique across restarts (a restarted
// transaction is a new instance of the same program).
type OpRequest struct {
	Instance int64
	Program  *core.Transaction
	Seq      int
	Op       core.Op
	// Ctx is the run context. Protocols with wait disciplines consult
	// it on their block paths (Canceled) so a canceled requester is
	// refused with Abort instead of being queued into wait state it
	// will never leave. Nil means "never canceled" (offline replays,
	// direct protocol tests).
	Ctx context.Context
}

// Canceled reports whether the request's run context has been
// canceled. Nil-context requests are never canceled.
func (req OpRequest) Canceled() bool {
	return req.Ctx != nil && req.Ctx.Err() != nil
}

// Protocol is an online concurrency-control policy. The driver calls
// Begin once per instance, Request for each operation in program
// order (re-issuing after Block), and finally exactly one of Commit or
// Abort. On Grant the driver executes the operation immediately, so
// protocols treat granted operations as executed.
type Protocol interface {
	Name() string
	Begin(instance int64, program *core.Transaction)
	Request(req OpRequest) Decision
	// CanCommit reports whether the instance may commit now; protocols
	// with commit-ordering rules (altruistic wakes) return false until
	// their dependencies have committed. The driver retries.
	CanCommit(instance int64) bool
	Commit(instance int64)
	Abort(instance int64)
}

// ShardSafe marks protocols whose Request path may be invoked
// concurrently by the sharded driver for operations on different
// objects, with only per-object (shard) mutual exclusion supplied
// externally. The contract the concurrent driver guarantees in
// exchange:
//
//   - Request calls for the same object are serialized (the driver's
//     shard lock), so a protocol's per-object state sees ordered
//     accesses; cross-object Request calls may race and the protocol
//     must stripe or atomically guard any state they share;
//   - Begin, CanCommit, Commit and Abort are called under the driver's
//     exclusive world lock — never concurrently with any Request — so
//     instance-table maintenance needs no internal locking.
//
// Protocols that keep a single global structure consulted on every
// request (serialization graphs, wake disciplines) are not shard-safe;
// the driver serializes them on one mutex exactly as before.
type ShardSafe interface {
	// ConcurrentShardSafe reports whether the instance honors the
	// contract above (a method rather than a bare marker so wrappers
	// can delegate dynamically).
	ConcurrentShardSafe() bool
}

// IsShardSafe reports whether the protocol opts into the sharded
// driver hot path.
func IsShardSafe(p Protocol) bool {
	s, ok := p.(ShardSafe)
	return ok && s.ConcurrentShardSafe()
}

// AtomicityOracle supplies relative atomicity specifications to the
// online protocols: Cuts returns the unit boundaries of transaction a
// relative to observer b (a boundary p splits ops p-1 and p; an empty
// result means a is a single atomic unit for b). Implementations
// typically derive cuts from transaction types (bank audit vs customer
// transaction) rather than instances, as [Gar83] and [FÖ89] do.
type AtomicityOracle interface {
	Cuts(a, b *core.Transaction) []int
}

// AbsoluteOracle is the traditional model: every transaction is one
// atomic unit relative to every other.
type AbsoluteOracle struct{}

// Cuts returns no boundaries.
func (AbsoluteOracle) Cuts(_, _ *core.Transaction) []int { return nil }

// OracleFunc adapts a function to the AtomicityOracle interface.
type OracleFunc func(a, b *core.Transaction) []int

// Cuts invokes the function.
func (f OracleFunc) Cuts(a, b *core.Transaction) []int { return f(a, b) }

// SpecOracle exposes a static core.Spec as an oracle for replaying
// fixed instances (e.g. the paper's figures) through the online
// protocols.
type SpecOracle struct{ Spec *core.Spec }

// Cuts converts the spec's units into boundary positions.
func (o SpecOracle) Cuts(a, b *core.Transaction) []int {
	n := o.Spec.NumUnits(a.ID, b.ID)
	cuts := make([]int, 0, n-1)
	for k := 0; k < n-1; k++ {
		_, end := o.Spec.Unit(a.ID, b.ID, k)
		cuts = append(cuts, end+1)
	}
	return cuts
}

// unitBounds returns the inclusive [start, end] bounds of the atomic
// unit containing seq, for a transaction of the given length whose
// boundaries are cuts (sorted ascending).
func unitBounds(cuts []int, length, seq int) (start, end int) {
	start, end = 0, length-1
	for _, c := range cuts {
		if c <= seq {
			start = c
		} else {
			end = c - 1
			break
		}
	}
	return start, end
}

// sortedInstances returns map keys ascending, for deterministic
// iteration in decision paths.
func sortedInstances[V any](m map[int64]V) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NoCC grants everything: the no-concurrency-control baseline. Useful
// for measuring how often uncontrolled interleavings violate relative
// serializability (its emitted schedules fail verification).
type NoCC struct{ mu sync.Mutex }

// NewNoCC returns the baseline protocol.
func NewNoCC() *NoCC { return &NoCC{} }

// Name implements Protocol.
func (*NoCC) Name() string { return "nocc" }

// ConcurrentShardSafe implements ShardSafe: the protocol is stateless.
func (*NoCC) ConcurrentShardSafe() bool { return true }

// Begin implements Protocol.
func (*NoCC) Begin(int64, *core.Transaction) {}

// Request implements Protocol: always Grant.
func (*NoCC) Request(OpRequest) Decision { return Grant }

// CanCommit implements Protocol.
func (*NoCC) CanCommit(int64) bool { return true }

// Commit implements Protocol.
func (*NoCC) Commit(int64) {}

// Abort implements Protocol.
func (*NoCC) Abort(int64) {}
