package sched

import (
	"fmt"
	"math"

	"relser/internal/core"
	"relser/internal/graph"
	"relser/internal/trace"
)

// RSGT is relative serialization graph testing — the concurrency
// control protocol §3 of the paper proposes on top of its graph tool.
// It maintains the relative serialization graph (Definition 3)
// incrementally as operations execute:
//
//   - at Begin, the instance's operations become vertices connected by
//     I-arcs (the program, and hence every atomic-unit boundary, is
//     declared up front);
//   - at Request, the operation's depends-on predecessors are computed
//     (same covering-set dynamic program as the offline checker), and
//     for every cross-transaction dependency u -> v the D-arc plus its
//     induced F-arc (PushForward(u, txn(v)) -> v) and B-arc
//     (u -> PullBackward(v, txn(u))) are inserted;
//   - if any insertion would close a cycle, the request is rejected
//     with Abort: execution has already fixed the offending dependency
//     order, so no amount of waiting can remove the cycle (arcs are
//     only ever removed by pruning committed source transactions, which
//     by definition are not on cycles).
//
// By Theorem 1, the admitted execution is relatively serializable at
// every prefix.
//
// Relative atomicity specifications come from an AtomicityOracle,
// queried lazily per ordered pair of live instances and memoized.
type RSGT struct {
	traced
	oracle AtomicityOracle
	g      *graph.Incremental

	insts map[int64]*rsgtInst
	// committed retains instances whose vertices are still in the
	// graph after commit (prune candidates).
	committedStatus map[int64]bool

	// Execution-order dependency tracking (exec indices are dense over
	// executed operations).
	execInfo []execOp
	deps     []graph.Bitset // deps[e] = exec indices op e depends on
	objHist  map[string][]int

	// pairCuts memoizes oracle answers per ordered instance pair.
	pairCuts map[[2]int64][]int

	// arcKinds mirrors the live graph's arc-kind masks, maintained only
	// while tracing so rejections can name their cycle's I/D/F/B arcs.
	// Entries for isolated vertices go stale harmlessly (vertices are
	// never reused, so explanation paths cannot reach them).
	arcKinds map[[2]int]core.ArcKind

	// Bounded-memory state (see Retirer): finished instances' vertices
	// queue here until a count-based epoch compacts the graph, and the
	// dependency index is periodically rebased onto the reachable
	// suffix. rt is the vector-clock table backing the fast path; it is
	// only maintained (and only consulted) on the untraced hot path,
	// which is fixed per run because tracer attachment precedes Begin.
	retireOn       bool
	lowWater       int64
	rt             *reachTable
	retireQ        []int
	lastRebaseLive int
	// residentCommitted counts committed instances whose vertices are
	// still in the graph; lastSweepResident is its value after the last
	// stranded-cluster sweep (the doubling base for the next one).
	residentCommitted int
	lastSweepResident int

	graphEpochs int64
	retiredVert int64
	rebases     int64
	fastHits    int64
	fastMisses  int64
}

type rsgtInst struct {
	program  *core.Transaction
	vertices []int // seq -> graph vertex
	lastExec int   // exec index of the instance's most recent op, -1 if none
	executed int   // number of executed ops

	// Fast-path clock state: the instance's reachTable slot (-1 when the
	// fast path is inactive) and the minimum sequence of any arc head
	// ever added into the instance (math.MaxInt until the first one). A
	// path entering this instance from outside can only reach sequences
	// >= minEntry, because within an instance only I-arcs (sequence-
	// forward) connect vertices.
	slot     int
	minEntry int
}

type execOp struct {
	instance int64
	seq      int
	op       core.Op
	vertex   int
}

// NewRSGT returns the paper's protocol under the given specification
// oracle.
func NewRSGT(oracle AtomicityOracle) *RSGT {
	return &RSGT{
		oracle:          oracle,
		g:               graph.NewIncremental(0),
		insts:           make(map[int64]*rsgtInst),
		committedStatus: make(map[int64]bool),
		objHist:         make(map[string][]int),
		pairCuts:        make(map[[2]int64][]int),
	}
}

// Name implements Protocol.
func (p *RSGT) Name() string { return "rsgt" }

// Begin implements Protocol: materialize the program's vertices and
// I-arcs.
func (p *RSGT) Begin(instance int64, program *core.Transaction) {
	if _, ok := p.insts[instance]; ok {
		return
	}
	inst := &rsgtInst{program: program, lastExec: -1, slot: -1, minEntry: math.MaxInt}
	if p.retireOn && !p.tr.Enabled() {
		if p.rt == nil {
			p.rt = newReachTable()
		}
		inst.slot = p.rt.alloc(instance)
	}
	inst.vertices = make([]int, program.Len())
	for seq := range inst.vertices {
		inst.vertices[seq] = p.g.AddVertex()
	}
	for seq := 0; seq+1 < program.Len(); seq++ {
		if err := p.g.AddArc(inst.vertices[seq], inst.vertices[seq+1]); err != nil {
			panic(fmt.Sprintf("sched: I-arc on fresh vertices cycled: %v", err)) // unreachable
		}
		if p.tr.Enabled() {
			p.noteKind(inst.vertices[seq], inst.vertices[seq+1], core.IArc)
		}
	}
	p.insts[instance] = inst
}

// noteKind records an arc's kind mask for explanations; tracing only.
func (p *RSGT) noteKind(u, v int, kind core.ArcKind) {
	if p.arcKinds == nil {
		p.arcKinds = make(map[[2]int]core.ArcKind)
	}
	p.arcKinds[[2]int{u, v}] |= kind
}

// Request implements Protocol.
func (p *RSGT) Request(req OpRequest) Decision {
	inst := p.insts[req.Instance]
	if inst == nil {
		panic(fmt.Sprintf("sched: Request for unknown instance %d", req.Instance))
	}
	if req.Seq != inst.executed {
		panic(fmt.Sprintf("sched: instance %d requested seq %d, expected %d", req.Instance, req.Seq, inst.executed))
	}
	// Depends-on set of the new operation: covering predecessors are
	// the instance's previous op, the last relevant write, and (for
	// writes) the reads since it.
	depSet := graph.NewBitset(len(p.execInfo))
	absorb := func(e int) {
		// Earlier dependency sets are shorter (capacities grow with the
		// execution); union into the matching prefix.
		src := p.deps[e]
		depSet[:len(src)].UnionWith(src)
		depSet.Set(e)
	}
	if inst.lastExec >= 0 {
		absorb(inst.lastExec)
	}
	hist := p.objHist[req.Op.Object]
	for i := len(hist) - 1; i >= 0; i-- {
		e := hist[i]
		info := p.execInfo[e]
		if p.insts[info.instance] == nil && !p.committedStatus[info.instance] {
			continue // aborted
		}
		if info.op.Kind == core.WriteOp {
			absorb(e)
			break
		}
		if req.Op.Kind == core.WriteOp {
			absorb(e)
		}
	}

	// Tentatively add the D/F/B arcs for every cross-transaction
	// dependency.
	v := inst.vertices[req.Seq]
	if !p.tr.Enabled() {
		// Hot path: collect the request's D/F/B delta as one epoch batch.
		// With the vector-clock fast path active, the unsuspected case
		// appends the batch without any cycle sweep (O(1) amortized per
		// arc); every new arc runs from a source instance into this
		// requester, so a cycle needs an existing path back from the
		// requester into a source A reaching a sequence <= the arc's
		// source sequence. The clocks over-approximate exactly that: the
		// path exists only if reach[requester] contains A (instance-level
		// closure) and the arc's source sequence is >= minEntry[A] (the
		// lowest sequence any outside path can reach in A). Suspected or
		// slow requests use AddArcBatch, which agrees with the per-arc
		// insertion below and rolls itself back atomically on a cycle.
		fast := p.retireOn && p.rt != nil && inst.slot >= 0
		var arcs [][2]int
		var srcSlots []int
		suspect := false
		minHead := req.Seq
		depSet.ForEach(func(e int) bool {
			info := p.execInfo[e]
			if info.instance == req.Instance {
				return true
			}
			src := p.insts[info.instance]
			if src == nil {
				return true
			}
			u := src.vertices[info.seq]
			if u != v {
				arcs = append(arcs, [2]int{u, v}) // D-arc
			}
			fuSeq := p.pushForward(info.instance, src, req.Instance, info.seq)
			if fu := src.vertices[fuSeq]; fu != v {
				arcs = append(arcs, [2]int{fu, v}) // F-arc
			}
			bvSeq := p.pullBackward(req.Instance, inst, info.instance, req.Seq)
			if bv := inst.vertices[bvSeq]; u != bv {
				arcs = append(arcs, [2]int{u, bv}) // B-arc
			}
			if bvSeq < minHead {
				minHead = bvSeq
			}
			if fast {
				if src.slot < 0 {
					// Unreachable while tracer attachment stays fixed per
					// run; treated as a suspected cycle for safety.
					suspect = true
					return true
				}
				if p.rt.reaches(inst.slot, src.slot) && fuSeq >= src.minEntry {
					suspect = true
				}
				if !p.rt.seen.has(src.slot) {
					p.rt.seen.set(src.slot)
					srcSlots = append(srcSlots, src.slot)
				}
			}
			return true
		})
		admit := true
		if len(arcs) > 0 {
			if fast && !suspect {
				p.g.AppendArcs(arcs)
			} else {
				if fast {
					p.fastMisses++
				}
				if err := p.g.AddArcBatch(arcs); err != nil {
					admit = false
				}
			}
		}
		if fast {
			if !suspect {
				p.fastHits++
			}
			for _, s := range srcSlots {
				p.rt.seen.clear(s)
			}
			if admit && len(arcs) > 0 {
				if minHead < inst.minEntry {
					inst.minEntry = minHead
				}
				p.rt.recordArcs(srcSlots, inst.slot)
			}
		}
		if !admit {
			return Abort
		}
		e := len(p.execInfo)
		p.execInfo = append(p.execInfo, execOp{instance: req.Instance, seq: req.Seq, op: req.Op, vertex: v})
		p.deps = append(p.deps, depSet)
		p.objHist[req.Op.Object] = append(hist, e)
		inst.lastExec = e
		inst.executed++
		p.maybeRebase()
		return Grant
	}
	var added [][2]int
	var kindUndo []arcKindUndo
	var failArc [2]int
	var failKind core.ArcKind
	tryArc := func(u, w int, kind core.ArcKind) bool {
		if u == w {
			return true
		}
		if err := p.g.AddArc(u, w); err != nil {
			failArc = [2]int{u, w}
			failKind = kind
			return false
		}
		added = append(added, [2]int{u, w})
		if p.tr.Enabled() {
			kindUndo = append(kindUndo, arcKindUndo{key: [2]int{u, w}, prev: p.arcKinds[[2]int{u, w}]})
			p.noteKind(u, w, kind)
		}
		return true
	}
	rollback := func() {
		for _, a := range added {
			p.g.RemoveArc(a[0], a[1])
		}
		for i := len(kindUndo) - 1; i >= 0; i-- {
			un := kindUndo[i]
			if un.prev == 0 {
				delete(p.arcKinds, un.key)
			} else {
				p.arcKinds[un.key] = un.prev
			}
		}
	}
	ok := true
	depSet.ForEach(func(e int) bool {
		info := p.execInfo[e]
		if info.instance == req.Instance {
			return true
		}
		src := p.insts[info.instance]
		if src == nil {
			// Committed-and-pruned source: its vertices are graph
			// sources, so arcs from them can never close a cycle.
			// Aborted sources can appear transitively (a live op that
			// depended on a later-aborted op keeps the dependency —
			// conservative: may cost an extra abort, never admits an
			// incorrect schedule). Either way, no arc to add.
			return true
		}
		u := src.vertices[info.seq]
		// D-arc u -> v.
		if !tryArc(u, v, core.DArc) {
			ok = false
			return false
		}
		// F-arc PushForward(u, txn(v)) -> v.
		fu := src.vertices[p.pushForward(info.instance, src, req.Instance, info.seq)]
		if !tryArc(fu, v, core.FArc) {
			ok = false
			return false
		}
		// B-arc u -> PullBackward(v, txn(u)).
		bv := inst.vertices[p.pullBackward(req.Instance, inst, info.instance, req.Seq)]
		if !tryArc(u, bv, core.BArc) {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		if p.tr.Enabled() {
			p.explainReject(req, failArc[0], failArc[1], failKind)
		}
		rollback()
		return Abort
	}

	// Admission: record execution.
	e := len(p.execInfo)
	p.execInfo = append(p.execInfo, execOp{instance: req.Instance, seq: req.Seq, op: req.Op, vertex: v})
	p.deps = append(p.deps, depSet)
	p.objHist[req.Op.Object] = append(hist, e)
	inst.lastExec = e
	inst.executed++
	return Grant
}

// arcKindUndo restores a traced arc-kind mask on rollback.
type arcKindUndo struct {
	key  [2]int
	prev core.ArcKind
}

// explainReject emits a cycle-reject event naming the concrete RSG
// cycle the refused arc u -> v would have closed: the live graph's
// path v -> ... -> u (which must exist, or AddArc would have accepted)
// plus the refused arc itself. Called before rollback so the path's
// arcs — including those added earlier in this same request — are
// still present. Tracing-only cold path.
func (p *RSGT) explainReject(req OpRequest, u, v int, kind core.ArcKind) {
	ev := trace.Event{
		Kind:     trace.KindCycleReject,
		Protocol: p.Name(),
		Instance: req.Instance,
		Txn:      int(req.Op.Txn),
		Seq:      req.Seq,
		Op:       req.Op.String(),
		Object:   req.Op.Object,
		Reason:   fmt.Sprintf("admitting %s would add a %s-arc closing an RSG cycle", req.Op, kind),
	}
	path := p.g.FindPath(v, u)
	if path != nil {
		type vertexOwner struct {
			instance int64
			txn      int
			seq      int
			op       string
		}
		owners := make(map[int]vertexOwner)
		for id, in := range p.insts {
			for seq, vert := range in.vertices {
				owners[vert] = vertexOwner{instance: id, txn: int(in.program.ID), seq: seq, op: in.program.Op(seq).String()}
			}
		}
		cyc := &trace.Cycle{}
		for _, vert := range path {
			o := owners[vert]
			cyc.Nodes = append(cyc.Nodes, trace.CycleNode{Instance: o.instance, Txn: o.txn, Seq: o.seq, Op: o.op})
		}
		for i := 0; i+1 < len(path); i++ {
			label := "?"
			if mask := p.arcKinds[[2]int{path[i], path[i+1]}]; mask != 0 {
				label = mask.String()
			}
			cyc.Arcs = append(cyc.Arcs, trace.CycleArc{From: i, To: i + 1, Kind: label})
		}
		cyc.Arcs = append(cyc.Arcs, trace.CycleArc{From: len(path) - 1, To: 0, Kind: kind.String()})
		ev.Cycle = cyc
	}
	p.tr.Emit(ev)
	p.tr.EmitDot("cyclereject", p.DotSnapshot())
}

// DotSnapshot renders the live relative serialization graph in
// Graphviz DOT: vertices are the live instances' operations, arcs
// carry their I/D/F/B kind masks (or no label for arcs that predate
// tracer attachment). This is the on-demand snapshot emitted at every
// rejection point.
func (p *RSGT) DotSnapshot() string {
	var d graph.DotGraph
	d.Name = "rsgt"
	if n := p.g.RetiredCount(); n > 0 {
		// Retired vertices collapse into one stable-prefix node instead
		// of rendering (or panicking on) remapped IDs.
		d.AddNode(-1, fmt.Sprintf("stable prefix (%d retired)", n), map[string]string{"shape": "box", "style": "dashed"})
	}
	ids := sortedInstances(p.insts)
	for _, id := range ids {
		in := p.insts[id]
		for seq, vert := range in.vertices {
			d.AddNode(vert, fmt.Sprintf("%s #%d", in.program.Op(seq), id), nil)
		}
	}
	for _, id := range ids {
		in := p.insts[id]
		for _, vert := range in.vertices {
			for _, s := range p.g.Successors(vert) {
				label := ""
				if mask := p.arcKinds[[2]int{vert, s}]; mask != 0 {
					label = mask.String()
				}
				d.AddEdge(vert, s, label, nil)
			}
		}
	}
	return d.String()
}

// pushForward returns the sequence of the last operation of the atomic
// unit of src's program containing seq, relative to the observer
// instance.
func (p *RSGT) pushForward(srcInst int64, src *rsgtInst, obsInst int64, seq int) int {
	cuts := p.cuts(srcInst, src, obsInst)
	_, end := unitBounds(cuts, src.program.Len(), seq)
	return end
}

// pullBackward returns the sequence of the first operation of the
// atomic unit of dst's program containing seq, relative to the
// observer instance.
func (p *RSGT) pullBackward(dstInst int64, dst *rsgtInst, obsInst int64, seq int) int {
	cuts := p.cuts(dstInst, dst, obsInst)
	start, _ := unitBounds(cuts, dst.program.Len(), seq)
	return start
}

// cuts memoizes oracle lookups. The observer is identified by its
// program; pruned observers keep their memoized entry harmlessly.
func (p *RSGT) cuts(aInst int64, a *rsgtInst, bInst int64) []int {
	key := [2]int64{aInst, bInst}
	if c, ok := p.pairCuts[key]; ok {
		return c
	}
	b := p.insts[bInst]
	if b == nil {
		return nil
	}
	c := p.oracle.Cuts(a.program, b.program)
	p.pairCuts[key] = c
	return c
}

// CanCommit implements Protocol.
func (p *RSGT) CanCommit(int64) bool { return true }

// Commit implements Protocol.
func (p *RSGT) Commit(instance int64) {
	if _, ok := p.insts[instance]; !ok {
		return
	}
	if p.committedStatus[instance] {
		return
	}
	p.committedStatus[instance] = true
	p.residentCommitted++
	p.prune()
	p.maybeRetire()
	p.maybeSweep()
}

// Abort implements Protocol: drop the instance's vertices from the
// graph. Its executed operations remain in the dependency tracking as
// dead entries (skipped during source discovery); the driver undoes
// their store effects and cascades dependents.
func (p *RSGT) Abort(instance int64) {
	inst := p.insts[instance]
	if inst == nil {
		return
	}
	for _, v := range inst.vertices {
		p.g.IsolateVertex(v)
	}
	p.release(instance, inst)
	delete(p.insts, instance)
	if p.committedStatus[instance] {
		p.residentCommitted--
	}
	p.prune()
	p.maybeRetire()
}

// release hands a finished instance's resources to the retirement
// machinery: its (already isolated) vertices join the next graph
// epoch, and its clock slot returns to the free list.
func (p *RSGT) release(instance int64, inst *rsgtInst) {
	if !p.retireOn {
		return
	}
	p.retireQ = append(p.retireQ, inst.vertices...)
	if p.rt != nil {
		p.rt.release(instance)
	}
}

// prune removes committed instances none of whose vertices has an
// incoming arc from another instance: new arcs always terminate at
// live requesters (or their unit boundaries), so a committed source
// can never rejoin a cycle.
func (p *RSGT) prune() {
	for {
		removed := false
		for _, instID := range sortedInstances(p.insts) {
			if !p.committedStatus[instID] {
				continue
			}
			inst := p.insts[instID]
			clean := true
			for _, v := range inst.vertices {
				for _, u := range p.g.Predecessors(v) {
					if !containsVertex(inst.vertices, u) {
						clean = false
						break
					}
				}
				if !clean {
					break
				}
			}
			if clean {
				for _, v := range inst.vertices {
					p.g.IsolateVertex(v)
				}
				p.release(instID, inst)
				delete(p.insts, instID)
				p.residentCommitted--
				removed = true
			}
		}
		if !removed {
			return
		}
	}
}

// SetRetirement implements Retirer. Must precede the first Begin: the
// clock table has to observe every arc from graph birth.
func (p *RSGT) SetRetirement(enabled bool) { p.retireOn = enabled }

// SetLowWater implements Retirer: the engine's pacemaker for epoch
// work, and the safety belt for the committed-status sweep. Epoch
// decisions are purely count-based so replays stay deterministic.
//
//rsvet:deterministic
func (p *RSGT) SetLowWater(instance int64) {
	if instance <= p.lowWater {
		return
	}
	p.lowWater = instance
	p.maybeRetire()
	p.maybeRebase()
}

// FlushRetirement implements Retirer: drains the vertex queue and
// rebases unconditionally, so Recover and Finalize leave no
// retirement-pending state behind.
func (p *RSGT) FlushRetirement() {
	if !p.retireOn {
		return
	}
	p.sweepStranded()
	p.flushRetire()
	p.rebase()
}

// RetireStats implements Retirer.
func (p *RSGT) RetireStats() RetireStats {
	return RetireStats{
		Enabled:         p.retireOn,
		GraphEpochs:     p.graphEpochs,
		RetiredVertices: p.retiredVert,
		LiveVertices:    p.g.Len(),
		PendingRetire:   len(p.retireQ),
		Rebases:         p.rebases,
		ExecEntries:     len(p.execInfo),
		FastPathHits:    p.fastHits,
		FastPathMisses:  p.fastMisses,
	}
}

// maybeRetire runs a graph compaction epoch when the pending queue is
// both big enough in absolute terms and at least half the graph, which
// makes each epoch O(1) amortized per retired vertex.
//
//rsvet:deterministic
func (p *RSGT) maybeRetire() {
	if !p.retireOn || len(p.retireQ) < retireEpochMinVerts || 2*len(p.retireQ) < p.g.Len() {
		return
	}
	p.flushRetire()
}

func (p *RSGT) flushRetire() {
	if len(p.retireQ) == 0 {
		return
	}
	res := p.g.Retire(p.retireQ)
	p.retiredVert += int64(res.Retired)
	p.graphEpochs++
	p.retireQ = p.retireQ[:0]
}

// maybeSweep runs a stranded-cluster sweep when enough committed
// instances sit in the graph and their count has at least doubled
// since the last sweep, amortizing the O(live graph) reachability walk
// to O(1) per committed transaction.
//
//rsvet:deterministic
func (p *RSGT) maybeSweep() {
	if !p.retireOn || p.residentCommitted < strandedSweepMinInsts || p.residentCommitted < 2*p.lastSweepResident {
		return
	}
	p.sweepStranded()
	p.maybeRetire()
}

// sweepStranded releases committed instances none of whose vertices is
// reachable from a live instance's vertex. prune handles the common
// case — a committed instance with no foreign in-arc — but relative
// atomicity admits instance-level interleavings (A depends on B and B
// on A through different atomic units) that keep whole clusters of
// committed transactions mutually dirty forever, even though the
// vertex graph stays acyclic. Such a cluster is still permanently
// cycle-free once no live vertex reaches it: arcs into a finished
// instance all predate its finish, so a path from any later
// transaction into the cluster would have to run through a vertex that
// is live right now — and none reaches it. Skipping future arcs out of
// swept sources (the src == nil branch in Request) is sound for the
// same reason: a cycle through such an arc u -> v needs a path v -> u,
// and v is always a live requester's vertex.
func (p *RSGT) sweepStranded() {
	if !p.retireOn || p.residentCommitted == 0 {
		return
	}
	reached := make(map[int]bool)
	var stack []int
	visit := func(v int) {
		if !reached[v] {
			reached[v] = true
			stack = append(stack, v)
		}
	}
	for _, id := range sortedInstances(p.insts) {
		if p.committedStatus[id] {
			continue
		}
		for _, v := range p.insts[id].vertices {
			visit(v)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range p.g.Successors(v) {
			visit(w)
		}
	}
	for _, id := range sortedInstances(p.insts) {
		if !p.committedStatus[id] {
			continue
		}
		inst := p.insts[id]
		stranded := true
		for _, v := range inst.vertices {
			if reached[v] {
				stranded = false
				break
			}
		}
		if !stranded {
			continue
		}
		for _, v := range inst.vertices {
			p.g.IsolateVertex(v)
		}
		p.release(id, inst)
		delete(p.insts, id)
		p.residentCommitted--
	}
	p.lastSweepResident = p.residentCommitted
}

// maybeRebase rebases the dependency index when the history has at
// least doubled since the last rebase, amortizing to O(1) per
// executed operation.
//
//rsvet:deterministic
func (p *RSGT) maybeRebase() {
	if !p.retireOn || len(p.execInfo) < rebaseMinEntries || len(p.execInfo) < 2*p.lastRebaseLive {
		return
	}
	p.rebase()
}

// rebase drops the unreachable prefix of the dependency index. An exec
// entry survives iff its instance is still resident, or it sits in the
// reachable suffix of some object history: per object, the backward
// source scan stops at the last non-aborted write (the anchor), so
// entries strictly before the anchor — and aborted entries anywhere —
// can never be absorbed again. Dependency bitsets are transitively
// closed when built (absorb unions full closures), so rewriting them
// with only the surviving bits loses no arc generation: dropped
// entries are aborted or pruned-committed, and neither ever generates
// an arc (pruned instances cannot re-enter insts).
//
//rsvet:deterministic
func (p *RSGT) rebase() {
	if !p.retireOn || len(p.execInfo) == 0 {
		return
	}
	n := len(p.execInfo)
	keep := make([]bool, n)
	for e := 0; e < n; e++ {
		if p.insts[p.execInfo[e].instance] != nil {
			keep[e] = true
		}
	}
	alive := func(e int) bool {
		id := p.execInfo[e].instance
		return p.insts[id] != nil || p.committedStatus[id]
	}
	newHist := make(map[string][]int, len(p.objHist))
	//rsvet:allow detlint -- order-insensitive: each object's suffix is computed independently
	for obj, hist := range p.objHist {
		anchor := 0
		for i := len(hist) - 1; i >= 0; i-- {
			e := hist[i]
			if alive(e) && p.execInfo[e].op.Kind == core.WriteOp {
				anchor = i
				break
			}
		}
		var kept []int
		for _, e := range hist[anchor:] {
			if alive(e) {
				keep[e] = true
				kept = append(kept, e)
			}
		}
		if kept != nil {
			newHist[obj] = kept
		}
	}
	remap := make([]int, n)
	m := 0
	for e := 0; e < n; e++ {
		if keep[e] {
			remap[e] = m
			m++
		} else {
			remap[e] = -1
		}
	}
	if m == n {
		p.lastRebaseLive = m
		p.rebases++
		return
	}
	newInfo := make([]execOp, m)
	newDeps := make([]graph.Bitset, m)
	for e := 0; e < n; e++ {
		ne := remap[e]
		if ne < 0 {
			continue
		}
		newInfo[ne] = p.execInfo[e]
		nd := graph.NewBitset(m)
		p.deps[e].ForEach(func(d int) bool {
			if remap[d] >= 0 {
				nd.Set(remap[d])
			}
			return true
		})
		newDeps[ne] = nd
	}
	//rsvet:allow detlint -- order-insensitive: rewrites each object's indices in place
	for _, hist := range newHist {
		for i, e := range hist {
			hist[i] = remap[e]
		}
	}
	//rsvet:allow detlint -- order-insensitive: remaps each resident instance's cursor independently
	for _, inst := range p.insts {
		if inst.lastExec >= 0 {
			inst.lastExec = remap[inst.lastExec]
		}
	}
	p.execInfo = newInfo
	p.deps = newDeps
	p.objHist = newHist
	// Sweep committed-status entries no longer referenced by anything:
	// resident instances, surviving exec entries, and (belt) instances
	// at or above the engine's low-water mark all stay.
	referenced := make(map[int64]bool, len(p.insts)+m)
	for e := range newInfo {
		referenced[newInfo[e].instance] = true
	}
	newStatus := make(map[int64]bool, len(p.insts))
	//rsvet:allow detlint -- order-insensitive: per-key membership test into a fresh map
	for id := range p.committedStatus {
		if p.insts[id] != nil || referenced[id] || id >= p.lowWater {
			newStatus[id] = true
		}
	}
	p.committedStatus = newStatus
	// Oracle memos for pairs with a finished side can never be asked
	// for again (cuts is only consulted for resident instances).
	newCuts := make(map[[2]int64][]int, len(p.pairCuts))
	//rsvet:allow detlint -- order-insensitive: per-key residency filter into a fresh map
	for key, c := range p.pairCuts {
		if p.insts[key[0]] != nil && p.insts[key[1]] != nil {
			newCuts[key] = c
		}
	}
	p.pairCuts = newCuts
	p.lastRebaseLive = m
	p.rebases++
}

func containsVertex(vs []int, v int) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}
