package sched

import (
	"fmt"

	"relser/internal/core"
	"relser/internal/graph"
	"relser/internal/trace"
)

// RSGT is relative serialization graph testing — the concurrency
// control protocol §3 of the paper proposes on top of its graph tool.
// It maintains the relative serialization graph (Definition 3)
// incrementally as operations execute:
//
//   - at Begin, the instance's operations become vertices connected by
//     I-arcs (the program, and hence every atomic-unit boundary, is
//     declared up front);
//   - at Request, the operation's depends-on predecessors are computed
//     (same covering-set dynamic program as the offline checker), and
//     for every cross-transaction dependency u -> v the D-arc plus its
//     induced F-arc (PushForward(u, txn(v)) -> v) and B-arc
//     (u -> PullBackward(v, txn(u))) are inserted;
//   - if any insertion would close a cycle, the request is rejected
//     with Abort: execution has already fixed the offending dependency
//     order, so no amount of waiting can remove the cycle (arcs are
//     only ever removed by pruning committed source transactions, which
//     by definition are not on cycles).
//
// By Theorem 1, the admitted execution is relatively serializable at
// every prefix.
//
// Relative atomicity specifications come from an AtomicityOracle,
// queried lazily per ordered pair of live instances and memoized.
type RSGT struct {
	traced
	oracle AtomicityOracle
	g      *graph.Incremental

	insts map[int64]*rsgtInst
	// committed retains instances whose vertices are still in the
	// graph after commit (prune candidates).
	committedStatus map[int64]bool

	// Execution-order dependency tracking (exec indices are dense over
	// executed operations).
	execInfo []execOp
	deps     []graph.Bitset // deps[e] = exec indices op e depends on
	objHist  map[string][]int

	// pairCuts memoizes oracle answers per ordered instance pair.
	pairCuts map[[2]int64][]int

	// arcKinds mirrors the live graph's arc-kind masks, maintained only
	// while tracing so rejections can name their cycle's I/D/F/B arcs.
	// Entries for isolated vertices go stale harmlessly (vertices are
	// never reused, so explanation paths cannot reach them).
	arcKinds map[[2]int]core.ArcKind
}

type rsgtInst struct {
	program  *core.Transaction
	vertices []int // seq -> graph vertex
	lastExec int   // exec index of the instance's most recent op, -1 if none
	executed int   // number of executed ops
}

type execOp struct {
	instance int64
	seq      int
	op       core.Op
	vertex   int
}

// NewRSGT returns the paper's protocol under the given specification
// oracle.
func NewRSGT(oracle AtomicityOracle) *RSGT {
	return &RSGT{
		oracle:          oracle,
		g:               graph.NewIncremental(0),
		insts:           make(map[int64]*rsgtInst),
		committedStatus: make(map[int64]bool),
		objHist:         make(map[string][]int),
		pairCuts:        make(map[[2]int64][]int),
	}
}

// Name implements Protocol.
func (p *RSGT) Name() string { return "rsgt" }

// Begin implements Protocol: materialize the program's vertices and
// I-arcs.
func (p *RSGT) Begin(instance int64, program *core.Transaction) {
	if _, ok := p.insts[instance]; ok {
		return
	}
	inst := &rsgtInst{program: program, lastExec: -1}
	inst.vertices = make([]int, program.Len())
	for seq := range inst.vertices {
		inst.vertices[seq] = p.g.AddVertex()
	}
	for seq := 0; seq+1 < program.Len(); seq++ {
		if err := p.g.AddArc(inst.vertices[seq], inst.vertices[seq+1]); err != nil {
			panic(fmt.Sprintf("sched: I-arc on fresh vertices cycled: %v", err)) // unreachable
		}
		if p.tr.Enabled() {
			p.noteKind(inst.vertices[seq], inst.vertices[seq+1], core.IArc)
		}
	}
	p.insts[instance] = inst
}

// noteKind records an arc's kind mask for explanations; tracing only.
func (p *RSGT) noteKind(u, v int, kind core.ArcKind) {
	if p.arcKinds == nil {
		p.arcKinds = make(map[[2]int]core.ArcKind)
	}
	p.arcKinds[[2]int{u, v}] |= kind
}

// Request implements Protocol.
func (p *RSGT) Request(req OpRequest) Decision {
	inst := p.insts[req.Instance]
	if inst == nil {
		panic(fmt.Sprintf("sched: Request for unknown instance %d", req.Instance))
	}
	if req.Seq != inst.executed {
		panic(fmt.Sprintf("sched: instance %d requested seq %d, expected %d", req.Instance, req.Seq, inst.executed))
	}
	// Depends-on set of the new operation: covering predecessors are
	// the instance's previous op, the last relevant write, and (for
	// writes) the reads since it.
	depSet := graph.NewBitset(len(p.execInfo))
	absorb := func(e int) {
		// Earlier dependency sets are shorter (capacities grow with the
		// execution); union into the matching prefix.
		src := p.deps[e]
		depSet[:len(src)].UnionWith(src)
		depSet.Set(e)
	}
	if inst.lastExec >= 0 {
		absorb(inst.lastExec)
	}
	hist := p.objHist[req.Op.Object]
	for i := len(hist) - 1; i >= 0; i-- {
		e := hist[i]
		info := p.execInfo[e]
		if p.insts[info.instance] == nil && !p.committedStatus[info.instance] {
			continue // aborted
		}
		if info.op.Kind == core.WriteOp {
			absorb(e)
			break
		}
		if req.Op.Kind == core.WriteOp {
			absorb(e)
		}
	}

	// Tentatively add the D/F/B arcs for every cross-transaction
	// dependency.
	v := inst.vertices[req.Seq]
	if !p.tr.Enabled() {
		// Hot path: collect the request's D/F/B delta as one epoch batch
		// and merge it with a single cycle sweep. Accept/reject agrees
		// with the per-arc insertion below (see graph.AddArcBatch); the
		// batch rolls itself back atomically on a cycle, so rejection
		// leaves the graph exactly as before the request.
		var arcs [][2]int
		depSet.ForEach(func(e int) bool {
			info := p.execInfo[e]
			if info.instance == req.Instance {
				return true
			}
			src := p.insts[info.instance]
			if src == nil {
				return true
			}
			u := src.vertices[info.seq]
			if u != v {
				arcs = append(arcs, [2]int{u, v}) // D-arc
			}
			fu := src.vertices[p.pushForward(info.instance, src, req.Instance, info.seq)]
			if fu != v {
				arcs = append(arcs, [2]int{fu, v}) // F-arc
			}
			bv := inst.vertices[p.pullBackward(req.Instance, inst, info.instance, req.Seq)]
			if u != bv {
				arcs = append(arcs, [2]int{u, bv}) // B-arc
			}
			return true
		})
		if len(arcs) > 0 {
			if err := p.g.AddArcBatch(arcs); err != nil {
				return Abort
			}
		}
		e := len(p.execInfo)
		p.execInfo = append(p.execInfo, execOp{instance: req.Instance, seq: req.Seq, op: req.Op, vertex: v})
		p.deps = append(p.deps, depSet)
		p.objHist[req.Op.Object] = append(hist, e)
		inst.lastExec = e
		inst.executed++
		return Grant
	}
	var added [][2]int
	var kindUndo []arcKindUndo
	var failArc [2]int
	var failKind core.ArcKind
	tryArc := func(u, w int, kind core.ArcKind) bool {
		if u == w {
			return true
		}
		if err := p.g.AddArc(u, w); err != nil {
			failArc = [2]int{u, w}
			failKind = kind
			return false
		}
		added = append(added, [2]int{u, w})
		if p.tr.Enabled() {
			kindUndo = append(kindUndo, arcKindUndo{key: [2]int{u, w}, prev: p.arcKinds[[2]int{u, w}]})
			p.noteKind(u, w, kind)
		}
		return true
	}
	rollback := func() {
		for _, a := range added {
			p.g.RemoveArc(a[0], a[1])
		}
		for i := len(kindUndo) - 1; i >= 0; i-- {
			un := kindUndo[i]
			if un.prev == 0 {
				delete(p.arcKinds, un.key)
			} else {
				p.arcKinds[un.key] = un.prev
			}
		}
	}
	ok := true
	depSet.ForEach(func(e int) bool {
		info := p.execInfo[e]
		if info.instance == req.Instance {
			return true
		}
		src := p.insts[info.instance]
		if src == nil {
			// Committed-and-pruned source: its vertices are graph
			// sources, so arcs from them can never close a cycle.
			// Aborted sources can appear transitively (a live op that
			// depended on a later-aborted op keeps the dependency —
			// conservative: may cost an extra abort, never admits an
			// incorrect schedule). Either way, no arc to add.
			return true
		}
		u := src.vertices[info.seq]
		// D-arc u -> v.
		if !tryArc(u, v, core.DArc) {
			ok = false
			return false
		}
		// F-arc PushForward(u, txn(v)) -> v.
		fu := src.vertices[p.pushForward(info.instance, src, req.Instance, info.seq)]
		if !tryArc(fu, v, core.FArc) {
			ok = false
			return false
		}
		// B-arc u -> PullBackward(v, txn(u)).
		bv := inst.vertices[p.pullBackward(req.Instance, inst, info.instance, req.Seq)]
		if !tryArc(u, bv, core.BArc) {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		if p.tr.Enabled() {
			p.explainReject(req, failArc[0], failArc[1], failKind)
		}
		rollback()
		return Abort
	}

	// Admission: record execution.
	e := len(p.execInfo)
	p.execInfo = append(p.execInfo, execOp{instance: req.Instance, seq: req.Seq, op: req.Op, vertex: v})
	p.deps = append(p.deps, depSet)
	p.objHist[req.Op.Object] = append(hist, e)
	inst.lastExec = e
	inst.executed++
	return Grant
}

// arcKindUndo restores a traced arc-kind mask on rollback.
type arcKindUndo struct {
	key  [2]int
	prev core.ArcKind
}

// explainReject emits a cycle-reject event naming the concrete RSG
// cycle the refused arc u -> v would have closed: the live graph's
// path v -> ... -> u (which must exist, or AddArc would have accepted)
// plus the refused arc itself. Called before rollback so the path's
// arcs — including those added earlier in this same request — are
// still present. Tracing-only cold path.
func (p *RSGT) explainReject(req OpRequest, u, v int, kind core.ArcKind) {
	ev := trace.Event{
		Kind:     trace.KindCycleReject,
		Protocol: p.Name(),
		Instance: req.Instance,
		Txn:      int(req.Op.Txn),
		Seq:      req.Seq,
		Op:       req.Op.String(),
		Object:   req.Op.Object,
		Reason:   fmt.Sprintf("admitting %s would add a %s-arc closing an RSG cycle", req.Op, kind),
	}
	path := p.g.FindPath(v, u)
	if path != nil {
		type vertexOwner struct {
			instance int64
			txn      int
			seq      int
			op       string
		}
		owners := make(map[int]vertexOwner)
		for id, in := range p.insts {
			for seq, vert := range in.vertices {
				owners[vert] = vertexOwner{instance: id, txn: int(in.program.ID), seq: seq, op: in.program.Op(seq).String()}
			}
		}
		cyc := &trace.Cycle{}
		for _, vert := range path {
			o := owners[vert]
			cyc.Nodes = append(cyc.Nodes, trace.CycleNode{Instance: o.instance, Txn: o.txn, Seq: o.seq, Op: o.op})
		}
		for i := 0; i+1 < len(path); i++ {
			label := "?"
			if mask := p.arcKinds[[2]int{path[i], path[i+1]}]; mask != 0 {
				label = mask.String()
			}
			cyc.Arcs = append(cyc.Arcs, trace.CycleArc{From: i, To: i + 1, Kind: label})
		}
		cyc.Arcs = append(cyc.Arcs, trace.CycleArc{From: len(path) - 1, To: 0, Kind: kind.String()})
		ev.Cycle = cyc
	}
	p.tr.Emit(ev)
	p.tr.EmitDot("cyclereject", p.DotSnapshot())
}

// DotSnapshot renders the live relative serialization graph in
// Graphviz DOT: vertices are the live instances' operations, arcs
// carry their I/D/F/B kind masks (or no label for arcs that predate
// tracer attachment). This is the on-demand snapshot emitted at every
// rejection point.
func (p *RSGT) DotSnapshot() string {
	var d graph.DotGraph
	d.Name = "rsgt"
	ids := sortedInstances(p.insts)
	for _, id := range ids {
		in := p.insts[id]
		for seq, vert := range in.vertices {
			d.AddNode(vert, fmt.Sprintf("%s #%d", in.program.Op(seq), id), nil)
		}
	}
	for _, id := range ids {
		in := p.insts[id]
		for _, vert := range in.vertices {
			for _, s := range p.g.Successors(vert) {
				label := ""
				if mask := p.arcKinds[[2]int{vert, s}]; mask != 0 {
					label = mask.String()
				}
				d.AddEdge(vert, s, label, nil)
			}
		}
	}
	return d.String()
}

// pushForward returns the sequence of the last operation of the atomic
// unit of src's program containing seq, relative to the observer
// instance.
func (p *RSGT) pushForward(srcInst int64, src *rsgtInst, obsInst int64, seq int) int {
	cuts := p.cuts(srcInst, src, obsInst)
	_, end := unitBounds(cuts, src.program.Len(), seq)
	return end
}

// pullBackward returns the sequence of the first operation of the
// atomic unit of dst's program containing seq, relative to the
// observer instance.
func (p *RSGT) pullBackward(dstInst int64, dst *rsgtInst, obsInst int64, seq int) int {
	cuts := p.cuts(dstInst, dst, obsInst)
	start, _ := unitBounds(cuts, dst.program.Len(), seq)
	return start
}

// cuts memoizes oracle lookups. The observer is identified by its
// program; pruned observers keep their memoized entry harmlessly.
func (p *RSGT) cuts(aInst int64, a *rsgtInst, bInst int64) []int {
	key := [2]int64{aInst, bInst}
	if c, ok := p.pairCuts[key]; ok {
		return c
	}
	b := p.insts[bInst]
	if b == nil {
		return nil
	}
	c := p.oracle.Cuts(a.program, b.program)
	p.pairCuts[key] = c
	return c
}

// CanCommit implements Protocol.
func (p *RSGT) CanCommit(int64) bool { return true }

// Commit implements Protocol.
func (p *RSGT) Commit(instance int64) {
	if _, ok := p.insts[instance]; !ok {
		return
	}
	p.committedStatus[instance] = true
	p.prune()
}

// Abort implements Protocol: drop the instance's vertices from the
// graph. Its executed operations remain in the dependency tracking as
// dead entries (skipped during source discovery); the driver undoes
// their store effects and cascades dependents.
func (p *RSGT) Abort(instance int64) {
	inst := p.insts[instance]
	if inst == nil {
		return
	}
	for _, v := range inst.vertices {
		p.g.IsolateVertex(v)
	}
	delete(p.insts, instance)
	p.prune()
}

// prune removes committed instances none of whose vertices has an
// incoming arc from another instance: new arcs always terminate at
// live requesters (or their unit boundaries), so a committed source
// can never rejoin a cycle.
func (p *RSGT) prune() {
	for {
		removed := false
		for _, instID := range sortedInstances(p.insts) {
			if !p.committedStatus[instID] {
				continue
			}
			inst := p.insts[instID]
			clean := true
			for _, v := range inst.vertices {
				for _, u := range p.g.Predecessors(v) {
					if !containsVertex(inst.vertices, u) {
						clean = false
						break
					}
				}
				if !clean {
					break
				}
			}
			if clean {
				for _, v := range inst.vertices {
					p.g.IsolateVertex(v)
				}
				delete(p.insts, instID)
				removed = true
			}
		}
		if !removed {
			return
		}
	}
}

func containsVertex(vs []int, v int) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}
