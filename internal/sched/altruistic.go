package sched

import (
	"fmt"

	"relser/internal/core"
	"relser/internal/trace"
)

// Altruistic implements altruistic locking [SGMA87], the long-lived
// transaction technique §5 of the paper presents relative atomicity as
// generalizing. It extends strict two-phase locking with *donation*:
// when a transaction completes an atomic unit (per the oracle's
// uniform boundaries) it donates the locks on objects it will not
// access again; other transactions may then lock donated objects
// before the donor commits, subject to the wake discipline:
//
//   - a transaction that acquires an object donated by D enters D's
//     wake;
//   - while in D's wake it may only lock objects that are donated by D
//     or that D's remaining program will never touch (enforceable here
//     because programs are declared at Begin);
//   - it cannot commit before D commits (the driver retries CanCommit),
//     and if D aborts the driver's dirty-data cascade aborts it.
//
// These rules keep executions serializable with the donor ordered
// first, exactly the guarantee of [SGMA87].
type Altruistic struct {
	traced
	base   *S2PL
	oracle AtomicityOracle

	progs map[int64]*core.Transaction
	// donated[d] is the set of objects instance d has donated.
	donated map[int64]map[string]bool
	// remaining[d] is the multiset of objects d's unexecuted suffix
	// still accesses.
	remaining map[int64]map[string]int
	// wakes[b] is the set of donors b is in the wake of.
	wakes map[int64]map[int64]bool
	// executedOf tracks per-instance progress to drive donation.
	executedOf map[int64]int
	committed  map[int64]bool
}

// NewAltruistic returns an altruistic-locking protocol whose donation
// points come from the oracle's atomic-unit boundaries (cuts of a
// transaction relative to itself are not defined, so the protocol uses
// the cuts relative to an arbitrary observer — donation semantics are
// per-transaction, and the workloads give transactions uniform cuts).
func NewAltruistic(oracle AtomicityOracle) *Altruistic {
	return &Altruistic{
		base:       NewS2PL(),
		oracle:     oracle,
		progs:      make(map[int64]*core.Transaction),
		donated:    make(map[int64]map[string]bool),
		remaining:  make(map[int64]map[string]int),
		wakes:      make(map[int64]map[int64]bool),
		executedOf: make(map[int64]int),
		committed:  make(map[int64]bool),
	}
}

// Name implements Protocol.
func (p *Altruistic) Name() string { return "altruistic" }

// SetTracer installs the tracer on the protocol and its embedded lock
// manager (whose program map feeds explanation events).
func (p *Altruistic) SetTracer(tr *trace.Tracer) {
	p.traced.SetTracer(tr)
	p.base.SetTracer(tr)
}

// Begin implements Protocol.
func (p *Altruistic) Begin(instance int64, program *core.Transaction) {
	p.base.Begin(instance, program)
	p.progs[instance] = program
	rem := make(map[string]int)
	for _, o := range program.Ops {
		rem[o.Object]++
	}
	p.remaining[instance] = rem
	p.donated[instance] = make(map[string]bool)
	p.wakes[instance] = make(map[int64]bool)
	p.executedOf[instance] = 0
}

// Request implements Protocol.
func (p *Altruistic) Request(req OpRequest) Decision {
	// Wake discipline: while in a donor's wake, only donated or
	// donor-disjoint objects may be locked.
	for donor := range p.wakes[req.Instance] {
		if p.committed[donor] || p.progs[donor] == nil {
			continue // donor finished; wake constraint dissolved
		}
		if p.donated[donor][req.Op.Object] {
			continue
		}
		if p.remaining[donor][req.Op.Object] > 0 {
			return Block // object still ahead of the donor; stay out
		}
	}

	st := p.base.lock(req.Op.Object)
	blockers := p.base.conflictingHolders(st, req)
	// Donated locks do not block; they instead put the requester in
	// the donor's wake — but only if the requester is not already
	// holding locks the donor's remaining program needs. Otherwise the
	// donor would wait on the requester's lock while the requester
	// waits on the donor's commit: a deadlock the waits-for graph
	// cannot see. Such requesters wait for the donor instead.
	var effective []int64
	var donors []int64
	for _, b := range blockers {
		if p.donated[b][req.Op.Object] && !p.holdsDonorNeeds(req.Instance, b) {
			donors = append(donors, b)
		} else {
			effective = append(effective, b)
		}
	}
	if len(effective) == 0 {
		p.base.clearWaits(req.Instance)
		p.base.acquire(st, req)
		for _, d := range donors {
			if p.tr.Enabled() && !p.wakes[req.Instance][d] {
				p.tr.Emit(trace.Event{
					Kind: trace.KindWake, Protocol: p.Name(),
					Instance: req.Instance, Txn: int(req.Op.Txn),
					Object: req.Op.Object, Blockers: []int64{d},
					Reason: fmt.Sprintf("acquired donated %s; entering wake of instance %d", req.Op.Object, d),
				})
			}
			p.wakes[req.Instance][d] = true
		}
		p.afterExecute(req)
		return Grant
	}
	cyc, deadlock := p.base.installWaits(req.Instance, effective)
	if deadlock {
		if p.tr.Enabled() {
			p.tr.Emit(deadlockEvent(p.Name(), req, cyc))
		}
		return Abort
	}
	if p.tr.Enabled() {
		p.tr.Emit(blockEvent(p.Name(), req, effective))
	}
	return Block
}

// afterExecute updates progress, and donates locks when the operation
// closes an atomic unit.
func (p *Altruistic) afterExecute(req OpRequest) {
	prog := p.progs[req.Instance]
	p.remaining[req.Instance][req.Op.Object]--
	p.executedOf[req.Instance] = req.Seq + 1
	// Donation happens only at oracle-declared unit boundaries; with no
	// boundaries the protocol degenerates to strict 2PL (locks release
	// at commit).
	boundary := false
	for _, c := range p.donationCuts(prog) {
		if c == req.Seq+1 {
			boundary = true
			break
		}
	}
	if !boundary {
		return
	}
	// Donate every held object the remaining suffix never touches.
	for _, obj := range p.base.heldObjects(req.Instance) {
		if p.remaining[req.Instance][obj] == 0 {
			if p.tr.Enabled() && !p.donated[req.Instance][obj] {
				p.tr.Emit(trace.Event{
					Kind: trace.KindDonate, Protocol: p.Name(),
					Instance: req.Instance, Txn: int(req.Op.Txn),
					Seq: req.Seq, Object: obj,
					Reason: fmt.Sprintf("unit boundary after seq %d; lock on %s donated", req.Seq, obj),
				})
			}
			p.donated[req.Instance][obj] = true
		}
	}
}

// holdsDonorNeeds reports whether the requester already holds a lock
// on an object the donor's unexecuted suffix will access.
func (p *Altruistic) holdsDonorNeeds(requester, donor int64) bool {
	rem := p.remaining[donor]
	for _, obj := range p.base.heldObjects(requester) {
		if rem[obj] > 0 && !p.donated[donor][obj] {
			return true
		}
	}
	return false
}

// donationCuts asks the oracle for the transaction's boundaries using
// itself as observer stand-in; workloads define uniform per-type cuts
// so any observer yields the same answer.
func (p *Altruistic) donationCuts(prog *core.Transaction) []int {
	return p.oracle.Cuts(prog, prog)
}

// CanCommit implements Protocol: a transaction in a live donor's wake
// must wait for the donor.
func (p *Altruistic) CanCommit(instance int64) bool {
	for donor := range p.wakes[instance] {
		if !p.committed[donor] && p.progs[donor] != nil {
			return false
		}
	}
	return true
}

// Commit implements Protocol.
func (p *Altruistic) Commit(instance int64) {
	p.committed[instance] = true
	p.cleanup(instance)
	p.base.Commit(instance)
}

// Abort implements Protocol. Transactions in the victim's wake read
// donated (uncommitted) data; the driver's cascade aborts them.
func (p *Altruistic) Abort(instance int64) {
	p.cleanup(instance)
	p.base.Abort(instance)
}

func (p *Altruistic) cleanup(instance int64) {
	delete(p.progs, instance)
	delete(p.remaining, instance)
	delete(p.donated, instance)
	delete(p.wakes, instance)
	delete(p.executedOf, instance)
}
