package sched_test

import (
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
	"relser/internal/sched"
	"relser/internal/txn"
)

func TestRALPlainLockingWithoutUnits(t *testing.T) {
	// Absolute atomicity: no per-observer release ever happens, so RAL
	// behaves like strict 2PL.
	t1 := core.T(1, core.W("x"))
	t2 := core.T(2, core.W("x"))
	p := sched.NewRAL(sched.AbsoluteOracle{})
	p.Begin(1, t1)
	p.Begin(2, t2)
	if d := p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 0, Op: t1.Op(0)}); d != sched.Grant {
		t.Fatalf("first writer: %v", d)
	}
	if d := p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}); d != sched.Block {
		t.Fatalf("second writer: %v, want Block", d)
	}
	p.Commit(1)
	if d := p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}); d != sched.Grant {
		t.Fatalf("after release: %v", d)
	}
	p.Commit(2)
}

func TestRALPerObserverRelease(t *testing.T) {
	// The long transaction's unit boundary after its x-phase is visible
	// to T2 but NOT to T3 (absolute for that pair): the same held lock
	// is transparent to one observer and solid to the other — the
	// pairwise semantics altruistic locking cannot express.
	long := core.T(1, core.R("x"), core.W("x"), core.R("y"), core.W("y"))
	t2 := core.T(2, core.R("x"))
	t3 := core.T(3, core.R("x"))
	oracle := sched.OracleFunc(func(a, b *core.Transaction) []int {
		if a.ID == 1 && b.ID == 2 {
			return []int{2} // unit boundary after the x-phase, for T2 only
		}
		return nil
	})
	p := sched.NewRAL(oracle)
	p.Begin(1, long)
	p.Begin(2, t2)
	p.Begin(3, t3)
	for seq := 0; seq < 2; seq++ {
		if d := p.Request(sched.OpRequest{Instance: 1, Program: long, Seq: seq, Op: long.Op(seq)}); d != sched.Grant {
			t.Fatalf("long op %d: %v", seq, d)
		}
	}
	if d := p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}); d != sched.Grant {
		t.Fatalf("T2 past the released-for-T2 lock: %v", d)
	}
	if d := p.Request(sched.OpRequest{Instance: 3, Program: t3, Seq: 0, Op: t3.Op(0)}); d != sched.Block {
		t.Fatalf("T3 must still block (no unit boundary for it): %v", d)
	}
	// T2 is in T1's wake: cannot commit first.
	if p.CanCommit(2) {
		t.Fatal("wake member must wait for the donor")
	}
	for seq := 2; seq < 4; seq++ {
		if d := p.Request(sched.OpRequest{Instance: 1, Program: long, Seq: seq, Op: long.Op(seq)}); d != sched.Grant {
			t.Fatalf("long op %d: %v", seq, d)
		}
	}
	p.Commit(1)
	if !p.CanCommit(2) {
		t.Fatal("wake dissolves after donor commit")
	}
	p.Commit(2)
	if d := p.Request(sched.OpRequest{Instance: 3, Program: t3, Seq: 0, Op: t3.Op(0)}); d != sched.Grant {
		t.Fatalf("T3 after full release: %v", d)
	}
	p.Commit(3)
}

func TestRALEmbeddedRSGStillGuards(t *testing.T) {
	// Construct an interleaving the locks would allow but the RSG must
	// reject: reuse the crossing-audit witness with FULLY released
	// audit phases — under a fully-breakable spec for customers too the
	// locks never block, so only the graph stands between the schedule
	// and a unit-violating cycle. With absolute customer units the
	// witness is admitted (it is relatively serializable); flipping one
	// audit's spec to absolute closes the RSG cycle and RAL must abort.
	a1 := core.T(1, core.R("f1"), core.R("f2"))
	a2 := core.T(2, core.R("f2"), core.R("f1"))
	c1 := core.T(3, core.R("f1"), core.W("f1"))
	c2 := core.T(4, core.R("f2"), core.W("f2"))
	// Spec A: both audits expose the family border.
	specA := sched.OracleFunc(func(a, _ *core.Transaction) []int {
		if a.ID == 1 || a.ID == 2 {
			return []int{1}
		}
		return nil
	})
	// Spec B: audit 1 is absolute — the same interleaving is no longer
	// relatively serializable.
	specB := sched.OracleFunc(func(a, _ *core.Transaction) []int {
		if a.ID == 2 {
			return []int{1}
		}
		return nil
	})
	order := []struct {
		inst int64
		prog *core.Transaction
		seq  int
	}{
		{1, a1, 0}, {2, a2, 0},
		{3, c1, 0}, {3, c1, 1},
		{4, c2, 0}, {4, c2, 1},
		{2, a2, 1}, {1, a1, 1},
	}
	run := func(oracle sched.AtomicityOracle) []sched.Decision {
		p := sched.NewRAL(oracle)
		for id, prog := range map[int64]*core.Transaction{1: a1, 2: a2, 3: c1, 4: c2} {
			p.Begin(id, prog)
		}
		var ds []sched.Decision
		for _, step := range order {
			d := p.Request(sched.OpRequest{Instance: step.inst, Program: step.prog, Seq: step.seq, Op: step.prog.Op(step.seq)})
			ds = append(ds, d)
			if d != sched.Grant {
				return ds
			}
			if step.seq == step.prog.Len()-1 {
				p.Commit(step.inst)
			}
		}
		return ds
	}
	dsA := run(specA)
	if !allGrant(dsA) {
		t.Errorf("with family-border units RAL should admit the witness: %v", dsA)
	}
	dsB := run(specB)
	if allGrant(dsB) {
		t.Error("with an absolute audit the witness is not relatively serializable; RAL must not admit it")
	}
}

func TestRALRunsPaperInstance(t *testing.T) {
	// Drive the Figure 1 transactions through the real runtime: RAL's
	// pairwise release can form waits that span the wake rule (which
	// the waits-for graph cannot see), so the driver's stall breaking
	// is part of the protocol's operating envelope. Everything must
	// commit and the committed schedule must certify.
	inst := paperfig.Figure1()
	oracle := sched.SpecOracle{Spec: inst.Spec}
	for seed := int64(0); seed < 10; seed++ {
		r, err := txn.New(txn.Config{
			Protocol: sched.NewRAL(oracle),
			Programs: inst.Set.Txns(),
			Oracle:   oracle,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Committed != 3 {
			t.Fatalf("seed %d: committed %d", seed, res.Committed)
		}
		if err := res.Verify(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
