package sched

import (
	"relser/internal/core"
)

// TO is basic timestamp ordering [RSL78], included as an additional
// classical baseline: every transaction instance carries a timestamp
// (its monotonically increasing instance number), and an operation is
// admitted only if it does not arrive "late" with respect to
// higher-timestamped accesses already executed on its object. All
// conflicting operation pairs therefore execute in timestamp order, so
// the serialization graph's arcs ascend timestamps and the emitted
// executions are conflict serializable.
//
// Late operations abort their transaction (restart assigns a fresh,
// higher timestamp). There is no Thomas write rule: writes are applied
// in place by the runtime, so silently skipping an outdated write is
// not available.
type TO struct {
	objects map[string]*toState
}

type toState struct {
	maxRead  int64
	maxWrite int64
}

// NewTO returns a basic timestamp-ordering protocol.
func NewTO() *TO {
	return &TO{objects: make(map[string]*toState)}
}

// Name implements Protocol.
func (p *TO) Name() string { return "to" }

// Begin implements Protocol. Timestamps are the instance numbers the
// runtime assigns, which are globally monotonic across restarts.
func (p *TO) Begin(int64, *core.Transaction) {}

// Request implements Protocol.
func (p *TO) Request(req OpRequest) Decision {
	st := p.objects[req.Op.Object]
	if st == nil {
		st = &toState{}
		p.objects[req.Op.Object] = st
	}
	ts := req.Instance
	if req.Op.Kind == core.ReadOp {
		if st.maxWrite > ts {
			return Abort // a younger transaction already wrote the object
		}
		if ts > st.maxRead {
			st.maxRead = ts
		}
		return Grant
	}
	if st.maxRead > ts || st.maxWrite > ts {
		return Abort // a younger transaction already read or wrote it
	}
	st.maxWrite = ts
	return Grant
}

// CanCommit implements Protocol.
func (p *TO) CanCommit(int64) bool { return true }

// Commit implements Protocol. Timestamps are retained conservatively;
// they only ever tighten admission.
func (p *TO) Commit(int64) {}

// Abort implements Protocol. The victim's timestamp marks persist —
// basic T/O does not rewind object timestamps, which is conservative
// (it may abort a later reader that would have been safe) but never
// admits an out-of-order conflict.
func (p *TO) Abort(int64) {}
