package sched

import (
	"fmt"

	"relser/internal/core"
	"relser/internal/trace"
)

// TO is basic timestamp ordering [RSL78], included as an additional
// classical baseline: every transaction instance carries a timestamp
// (its monotonically increasing instance number), and an operation is
// admitted only if it does not arrive "late" with respect to
// higher-timestamped accesses already executed on its object. All
// conflicting operation pairs therefore execute in timestamp order, so
// the serialization graph's arcs ascend timestamps and the emitted
// executions are conflict serializable.
//
// Late operations abort their transaction (restart assigns a fresh,
// higher timestamp). There is no Thomas write rule: writes are applied
// in place by the runtime, so silently skipping an outdated write is
// not available.
type TO struct {
	traced
	objects map[string]*toState
}

type toState struct {
	maxRead  int64
	maxWrite int64
}

// NewTO returns a basic timestamp-ordering protocol.
func NewTO() *TO {
	return &TO{objects: make(map[string]*toState)}
}

// Name implements Protocol.
func (p *TO) Name() string { return "to" }

// Begin implements Protocol. Timestamps are the instance numbers the
// runtime assigns, which are globally monotonic across restarts.
func (p *TO) Begin(int64, *core.Transaction) {}

// Request implements Protocol.
func (p *TO) Request(req OpRequest) Decision {
	st := p.objects[req.Op.Object]
	if st == nil {
		st = &toState{}
		p.objects[req.Op.Object] = st
	}
	ts := req.Instance
	if req.Op.Kind == core.ReadOp {
		if st.maxWrite > ts {
			p.explainReject(req, st) // a younger transaction already wrote the object
			return Abort
		}
		if ts > st.maxRead {
			st.maxRead = ts
		}
		return Grant
	}
	if st.maxRead > ts || st.maxWrite > ts {
		p.explainReject(req, st) // a younger transaction already read or wrote it
		return Abort
	}
	st.maxWrite = ts
	return Grant
}

// explainReject emits a ts-reject event naming the object timestamps
// that make the request late. Tracing-only cold path.
func (p *TO) explainReject(req OpRequest, st *toState) {
	if !p.tr.Enabled() {
		return
	}
	p.tr.Emit(trace.Event{
		Kind:     trace.KindTimestampReject,
		Protocol: p.Name(),
		Instance: req.Instance,
		Txn:      int(req.Op.Txn),
		Seq:      req.Seq,
		Op:       req.Op.String(),
		Object:   req.Op.Object,
		Reason: fmt.Sprintf("%s with timestamp %d arrives late on %s (maxRead %d, maxWrite %d)",
			req.Op, req.Instance, req.Op.Object, st.maxRead, st.maxWrite),
	})
}

// CanCommit implements Protocol.
func (p *TO) CanCommit(int64) bool { return true }

// Commit implements Protocol. Timestamps are retained conservatively;
// they only ever tighten admission.
func (p *TO) Commit(int64) {}

// Abort implements Protocol. The victim's timestamp marks persist —
// basic T/O does not rewind object timestamps, which is conservative
// (it may abort a later reader that would have been safe) but never
// admits an out-of-order conflict.
func (p *TO) Abort(int64) {}
