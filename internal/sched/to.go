package sched

import (
	"fmt"
	"sync"

	"relser/internal/core"
	"relser/internal/shard"
	"relser/internal/trace"
)

// TO is basic timestamp ordering [RSL78], included as an additional
// classical baseline: every transaction instance carries a timestamp
// (its monotonically increasing instance number), and an operation is
// admitted only if it does not arrive "late" with respect to
// higher-timestamped accesses already executed on its object. All
// conflicting operation pairs therefore execute in timestamp order, so
// the serialization graph's arcs ascend timestamps and the emitted
// executions are conflict serializable.
//
// Late operations abort their transaction (restart assigns a fresh,
// higher timestamp). There is no Thomas write rule: writes are applied
// in place by the runtime, so silently skipping an outdated write is
// not available.
//
// All protocol state is per-object, so TO stripes it over the shared
// shard router and is shard-safe: requests on different objects only
// ever touch different stripes.
type TO struct {
	traced
	router  shard.Router
	stripes []*toStripe
}

type toStripe struct {
	mu      sync.Mutex
	objects map[string]*toState
}

type toState struct {
	maxRead  int64
	maxWrite int64
}

// NewTO returns a basic timestamp-ordering protocol with a single
// object-table stripe.
func NewTO() *TO { return NewTOSharded(1) }

// NewTOSharded returns timestamp ordering with the object table
// striped over Normalize(shards) stripes.
func NewTOSharded(shards int) *TO {
	router := shard.NewRouter(shards)
	p := &TO{router: router, stripes: make([]*toStripe, router.Shards())}
	for i := range p.stripes {
		p.stripes[i] = &toStripe{objects: make(map[string]*toState)}
	}
	return p
}

// Name implements Protocol.
func (p *TO) Name() string { return "to" }

// ConcurrentShardSafe implements ShardSafe.
func (p *TO) ConcurrentShardSafe() bool { return true }

// Begin implements Protocol. Timestamps are the instance numbers the
// runtime assigns, which are globally monotonic across restarts.
func (p *TO) Begin(int64, *core.Transaction) {}

// Request implements Protocol.
func (p *TO) Request(req OpRequest) Decision {
	sp := p.stripes[p.router.Shard(req.Op.Object)]
	sp.mu.Lock()
	defer sp.mu.Unlock()
	st := sp.objects[req.Op.Object]
	if st == nil {
		st = &toState{}
		sp.objects[req.Op.Object] = st
	}
	ts := req.Instance
	if req.Op.Kind == core.ReadOp {
		if st.maxWrite > ts {
			p.explainReject(req, st) // a younger transaction already wrote the object
			return Abort
		}
		if ts > st.maxRead {
			st.maxRead = ts
		}
		return Grant
	}
	if st.maxRead > ts || st.maxWrite > ts {
		p.explainReject(req, st) // a younger transaction already read or wrote it
		return Abort
	}
	st.maxWrite = ts
	return Grant
}

// explainReject emits a ts-reject event naming the object timestamps
// that make the request late. Tracing-only cold path.
func (p *TO) explainReject(req OpRequest, st *toState) {
	if !p.tr.Enabled() {
		return
	}
	p.tr.Emit(trace.Event{
		Kind:     trace.KindTimestampReject,
		Protocol: p.Name(),
		Instance: req.Instance,
		Txn:      int(req.Op.Txn),
		Seq:      req.Seq,
		Op:       req.Op.String(),
		Object:   req.Op.Object,
		Reason: fmt.Sprintf("%s with timestamp %d arrives late on %s (maxRead %d, maxWrite %d)",
			req.Op, req.Instance, req.Op.Object, st.maxRead, st.maxWrite),
	})
}

// CanCommit implements Protocol.
func (p *TO) CanCommit(int64) bool { return true }

// Commit implements Protocol. Timestamps are retained conservatively;
// they only ever tighten admission.
func (p *TO) Commit(int64) {}

// Abort implements Protocol. The victim's timestamp marks persist —
// basic T/O does not rewind object timestamps, which is conservative
// (it may abort a later reader that would have been safe) but never
// admits an out-of-order conflict.
func (p *TO) Abort(int64) {}
