package sched_test

// Bounded-memory certification properties. The two load-bearing ones
// are exhaustive verdict equivalence — with retirement and the
// vector-clock fast path on, the protocols reach exactly the offline
// Theorem 1 / conflict-serializability verdicts over the random
// small-interleaving corpus — and per-operation decision identity
// against the retirement-off baseline (stronger: the machinery is
// invisible decision by decision, not just in the final verdict).

import (
	"math/rand"
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/sched"
)

// retiredAdmits replays s through p with retirement enabled, pruning
// aggressively: every commit is followed by a retirement flush, so the
// graph compacts while the schedule is still in flight (small corpora
// never reach the count-based epoch thresholds on their own).
func retiredAdmits(p sched.Protocol, s *core.Schedule) bool {
	r := p.(sched.Retirer)
	r.SetRetirement(true)
	ts := s.Set()
	for _, tx := range ts.Txns() {
		p.Begin(int64(tx.ID), tx)
	}
	executed := make(map[core.TxnID]int)
	for pos := 0; pos < s.Len(); pos++ {
		op := s.At(pos)
		tx := ts.Txn(op.Txn)
		req := sched.OpRequest{Instance: int64(op.Txn), Program: tx, Seq: executed[op.Txn], Op: op}
		if p.Request(req) != sched.Grant {
			return false
		}
		executed[op.Txn]++
		if executed[op.Txn] == tx.Len() {
			p.Commit(int64(op.Txn))
			r.FlushRetirement()
		}
	}
	return true
}

func TestPropertyRetiredRSGTMatchesTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 400; trial++ {
		_, sp, s := genSchedInstance(rng)
		offline := core.IsRelativelySerializable(s, sp)
		online := retiredAdmits(sched.NewRSGT(sched.SpecOracle{Spec: sp}), s)
		if offline != online {
			t.Fatalf("trial %d: offline=%v retired-online=%v\nschedule: %s\nspec:\n%s",
				trial, offline, online, s, sp)
		}
	}
}

func TestPropertyRetiredSGTMatchesConflictSerializability(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 400; trial++ {
		_, _, s := genSchedInstance(rng)
		offline := core.IsConflictSerializable(s)
		online := retiredAdmits(sched.NewSGT(), s)
		if offline != online {
			t.Fatalf("trial %d: offline=%v retired-online=%v\nschedule: %s", trial, offline, online, s)
		}
	}
}

// lockstep replays s through both protocols simultaneously and fails
// on the first operation where their decisions differ. Commit (and a
// retirement flush on the retired side) follows each transaction's
// final granted operation; the replay stops at the first non-Grant,
// like admits.
func lockstep(t *testing.T, trial int, s *core.Schedule, base, retired sched.Protocol) {
	t.Helper()
	r := retired.(sched.Retirer)
	r.SetRetirement(true)
	ts := s.Set()
	for _, tx := range ts.Txns() {
		base.Begin(int64(tx.ID), tx)
		retired.Begin(int64(tx.ID), tx)
	}
	executed := make(map[core.TxnID]int)
	for pos := 0; pos < s.Len(); pos++ {
		op := s.At(pos)
		tx := ts.Txn(op.Txn)
		req := sched.OpRequest{Instance: int64(op.Txn), Program: tx, Seq: executed[op.Txn], Op: op}
		db := base.Request(req)
		dr := retired.Request(req)
		if db != dr {
			t.Fatalf("trial %d pos %d (%s): baseline=%v retired=%v\nschedule: %s", trial, pos, op, db, dr, s)
		}
		if db != sched.Grant {
			return
		}
		executed[op.Txn]++
		if executed[op.Txn] == tx.Len() {
			base.Commit(int64(op.Txn))
			retired.Commit(int64(op.Txn))
			r.FlushRetirement()
		}
	}
}

func TestPropertyRetiredRSGTDecisionsMatchBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(1010))
	for trial := 0; trial < 300; trial++ {
		_, sp, s := genSchedInstance(rng)
		lockstep(t, trial, s,
			sched.NewRSGT(sched.SpecOracle{Spec: sp}),
			sched.NewRSGT(sched.SpecOracle{Spec: sp}))
	}
}

func TestPropertyRetiredSGTDecisionsMatchBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(1111))
	for trial := 0; trial < 300; trial++ {
		_, _, s := genSchedInstance(rng)
		lockstep(t, trial, s, sched.NewSGT(), sched.NewSGT())
	}
}

// streamWindow drives n chained transactions (each reads its
// predecessor's object, then writes its own) through p with a sliding
// window of live instances, committing the oldest as the window
// fills. Every request's dependency source is still live, so real
// D/F/B arcs stress the clocks, while steady-state commit keeps the
// retirement pipeline fed. Returns the final stats after a flush.
func streamWindow(t *testing.T, p sched.Protocol, n, window int) sched.RetireStats {
	t.Helper()
	r := p.(sched.Retirer)
	r.SetRetirement(true)
	var live []int64
	begin := func(i int64) *core.Transaction {
		tx := core.T(core.TxnID(i), core.R(obj(i-1)), core.W(obj(i)))
		p.Begin(i, tx)
		live = append(live, i)
		return tx
	}
	for i := int64(1); i <= int64(n); i++ {
		tx := begin(i)
		for seq := 0; seq < tx.Len(); seq++ {
			req := sched.OpRequest{Instance: i, Program: tx, Seq: seq, Op: tx.Op(seq)}
			if d := p.Request(req); d != sched.Grant {
				t.Fatalf("txn %d op %d: %v (forward chain cannot cycle)", i, seq, d)
			}
		}
		if len(live) >= window {
			p.Commit(live[0])
			live = live[1:]
		}
		r.SetLowWater(i - int64(window))
	}
	for _, id := range live {
		p.Commit(id)
	}
	r.FlushRetirement()
	return r.RetireStats()
}

func obj(i int64) string {
	return "x" + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10))
}

func TestRetiredRSGTStreamStaysBounded(t *testing.T) {
	const n = 3000
	st := streamWindow(t, sched.NewRSGT(sched.AbsoluteOracle{}), n, 8)
	if st.LiveVertices != 0 || st.PendingRetire != 0 {
		t.Fatalf("after flush: live=%d pending=%d, want 0/0", st.LiveVertices, st.PendingRetire)
	}
	if st.RetiredVertices != 2*n {
		t.Fatalf("retired %d vertices, want %d (every created vertex)", st.RetiredVertices, 2*n)
	}
	if st.GraphEpochs < 10 {
		t.Fatalf("only %d graph epochs over %d txns — epochs not firing", st.GraphEpochs, n)
	}
	if st.Rebases < 1 {
		t.Fatal("dependency index never rebased")
	}
	// The rebase keeps the index proportional to the live window, not
	// the history: well under the 2x-of-threshold growth ceiling.
	if st.ExecEntries > 3*1024 {
		t.Fatalf("exec index holds %d entries after %d ops — rebase not bounding it", st.ExecEntries, 2*n)
	}
	if hr := st.HitRate(); hr < 0.9 {
		t.Fatalf("fast-path hit rate %.2f on a forward chain, want >= 0.9 (hits=%d misses=%d)",
			hr, st.FastPathHits, st.FastPathMisses)
	}
}

func TestRetiredSGTStreamStaysBounded(t *testing.T) {
	const n = 3000
	st := streamWindow(t, sched.NewSGT(), n, 8)
	if st.LiveVertices != 0 || st.PendingRetire != 0 {
		t.Fatalf("after flush: live=%d pending=%d, want 0/0", st.LiveVertices, st.PendingRetire)
	}
	if st.RetiredVertices != n {
		t.Fatalf("retired %d vertices, want %d", st.RetiredVertices, n)
	}
	if st.GraphEpochs < 10 {
		t.Fatalf("only %d graph epochs over %d txns", st.GraphEpochs, n)
	}
	if st.Rebases < 1 {
		t.Fatal("history never swept")
	}
	if st.ExecEntries > 3*1024 {
		t.Fatalf("access history holds %d entries after %d ops", st.ExecEntries, 2*n)
	}
	if hr := st.HitRate(); hr < 0.9 {
		t.Fatalf("fast-path hit rate %.2f, want >= 0.9 (hits=%d misses=%d)", hr, st.FastPathHits, st.FastPathMisses)
	}
}

// interleavedPair drives one committed pair of transactions whose
// atomic units interleave both ways — wA(xi) wB(xi) wB(yi) wA(yi)
// under a spec that cuts each relative to the other — leaving
// instance-level mutual dependency (A -> B on xi, B -> A on yi) over
// an acyclic vertex graph. prune's no-foreign-in-arc test can never
// reclaim this shape; only the stranded-cluster reachability sweep
// can.
func interleavedPair(t *testing.T, p sched.Protocol, a, b *core.Transaction) {
	t.Helper()
	p.Begin(int64(a.ID), a)
	p.Begin(int64(b.ID), b)
	order := []struct {
		tx  *core.Transaction
		seq int
	}{{a, 0}, {b, 0}, {b, 1}, {a, 1}}
	for _, st := range order {
		req := sched.OpRequest{Instance: int64(st.tx.ID), Program: st.tx, Seq: st.seq, Op: st.tx.Op(st.seq)}
		if d := p.Request(req); d != sched.Grant {
			t.Fatalf("txn %d op %d: %v (spec cuts make this interleaving admissible)", st.tx.ID, st.seq, d)
		}
	}
	p.Commit(int64(a.ID))
	p.Commit(int64(b.ID))
}

// cutBothWays builds n disjoint interleaved pairs (2n transactions)
// and a spec cutting each pair's members relative to each other.
func cutBothWays(t *testing.T, n int) (*core.Spec, []*core.Transaction) {
	t.Helper()
	txns := make([]*core.Transaction, 0, 2*n)
	for i := 0; i < n; i++ {
		x, y := obj(int64(2*i)), obj(int64(2*i+1))
		txns = append(txns,
			core.T(core.TxnID(2*i+1), core.W(x), core.W(y)),
			core.T(core.TxnID(2*i+2), core.W(x), core.W(y)))
	}
	ts := core.MustTxnSet(txns...)
	sp := core.NewSpec(ts)
	for i := 0; i < n; i++ {
		a, b := txns[2*i], txns[2*i+1]
		if err := sp.CutAfter(a.ID, b.ID, 0); err != nil {
			t.Fatal(err)
		}
		if err := sp.CutAfter(b.ID, a.ID, 0); err != nil {
			t.Fatal(err)
		}
	}
	return sp, txns
}

// TestRetiredRSGTReclaimsInterleavedCommits: a mutually interleaved
// committed pair must still leave nothing behind after a flush.
func TestRetiredRSGTReclaimsInterleavedCommits(t *testing.T) {
	sp, txns := cutBothWays(t, 1)
	p := sched.NewRSGT(sched.SpecOracle{Spec: sp})
	p.SetRetirement(true)
	interleavedPair(t, p, txns[0], txns[1])
	p.FlushRetirement()
	st := p.RetireStats()
	if st.LiveVertices != 0 || st.PendingRetire != 0 {
		t.Fatalf("after flush: live=%d pending=%d, want 0/0 (interlocked committed pair stranded)", st.LiveVertices, st.PendingRetire)
	}
	if st.RetiredVertices != 4 {
		t.Fatalf("retired %d vertices, want 4", st.RetiredVertices)
	}
}

// TestRetiredRSGTStreamWithCutsStaysBounded: a long stream of disjoint
// interleaved pairs — every one of which strands under prune alone —
// must stay bounded via the count-triggered sweep, without any flush.
func TestRetiredRSGTStreamWithCutsStaysBounded(t *testing.T) {
	const pairs = 400
	sp, txns := cutBothWays(t, pairs)
	p := sched.NewRSGT(sched.SpecOracle{Spec: sp})
	p.SetRetirement(true)
	maxLive := 0
	for i := 0; i < pairs; i++ {
		interleavedPair(t, p, txns[2*i], txns[2*i+1])
		p.SetLowWater(int64(2*i - 1))
		if st := p.RetireStats(); st.LiveVertices > maxLive {
			maxLive = st.LiveVertices
		}
	}
	// Sweeps fire on the doubling schedule from a 64-instance floor, so
	// the graph holds a small multiple of the threshold, not 2*pairs
	// transactions.
	if maxLive > 1024 {
		t.Fatalf("graph peaked at %d vertices over %d interlocked pairs — stranded sweep not firing", maxLive, pairs)
	}
	p.FlushRetirement()
	st := p.RetireStats()
	if st.LiveVertices != 0 || st.PendingRetire != 0 {
		t.Fatalf("after flush: live=%d pending=%d, want 0/0", st.LiveVertices, st.PendingRetire)
	}
	if st.RetiredVertices != int64(4*pairs) {
		t.Fatalf("retired %d vertices, want %d", st.RetiredVertices, 4*pairs)
	}
}

// TestRetiredRALDelegates: RAL exposes the Retirer face of its
// embedded certifier.
func TestRetiredRALDelegates(t *testing.T) {
	p := sched.NewRAL(sched.AbsoluteOracle{})
	r, ok := sched.Protocol(p).(sched.Retirer)
	if !ok {
		t.Fatal("RAL does not implement Retirer")
	}
	r.SetRetirement(true)
	if st := r.RetireStats(); !st.Enabled {
		t.Fatal("retirement did not reach the embedded certifier")
	}
}

// TestDotSnapshotCollapsesStablePrefix: once vertices have retired,
// the DOT export renders them as one collapsed node instead of
// touching remapped IDs.
func TestDotSnapshotCollapsesStablePrefix(t *testing.T) {
	p := sched.NewRSGT(sched.AbsoluteOracle{})
	streamOK := func(i int64) {
		tx := core.T(core.TxnID(i), core.R(obj(i-1)), core.W(obj(i)))
		p.Begin(i, tx)
		for seq := 0; seq < tx.Len(); seq++ {
			req := sched.OpRequest{Instance: i, Program: tx, Seq: seq, Op: tx.Op(seq)}
			if d := p.Request(req); d != sched.Grant {
				t.Fatalf("txn %d op %d: %v", i, seq, d)
			}
		}
	}
	p.SetRetirement(true)
	for i := int64(1); i <= 5; i++ {
		streamOK(i)
		p.Commit(i)
	}
	p.FlushRetirement()
	streamOK(6) // keep one live instance so the snapshot has content
	dot := p.DotSnapshot()
	if !strings.Contains(dot, "stable prefix (10 retired)") {
		t.Fatalf("DOT snapshot missing collapsed stable-prefix node:\n%s", dot)
	}
}

// TestRetireStatsAccumulate covers the sharded-aggregation helper.
func TestRetireStatsAccumulate(t *testing.T) {
	var agg sched.RetireStats
	agg.Add(sched.RetireStats{Enabled: true, FastPathHits: 3, FastPathMisses: 1, LiveVertices: 2})
	agg.Add(sched.RetireStats{FastPathHits: 5, RetiredVertices: 7})
	if !agg.Enabled || agg.FastPathHits != 8 || agg.FastPathMisses != 1 || agg.LiveVertices != 2 || agg.RetiredVertices != 7 {
		t.Fatalf("aggregate wrong: %+v", agg)
	}
	if hr := agg.HitRate(); hr < 0.88 || hr > 0.9 {
		t.Fatalf("hit rate %.3f, want 8/9", hr)
	}
}
