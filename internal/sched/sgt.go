package sched

import (
	"fmt"

	"relser/internal/core"
	"relser/internal/graph"
	"relser/internal/trace"
)

// SGT is classical serialization graph testing [Bad79, Cas81]: one
// vertex per transaction instance, an arc Ti -> Tk whenever an
// operation of Ti conflicts with and precedes an operation of Tk, and
// an abort whenever admitting an operation would close a cycle.
// Committed vertices are pruned once they have no predecessors (only
// then can they never rejoin a cycle).
type SGT struct {
	traced
	g      *graph.Incremental
	nodeOf map[int64]int
	status map[int64]byte // live, committed
	// objs tracks per-object access history at transaction granularity
	// for conflict-source discovery; dead (aborted) entries are
	// skipped lazily.
	objs map[string]*objHistory
	// progs retains programs for explanation events; populated only
	// while tracing.
	progs map[int64]*core.Transaction

	// Bounded-memory state (see Retirer). SGT's clocks are exact
	// transaction-granularity reachability (one vertex per instance), so
	// the suspicion test is the reach bit alone — no sequence
	// refinement. The history sweep is the rebase analog: per object,
	// entries before the last non-aborted write are unreachable by the
	// conflict-source scan and can be dropped, after which the
	// committed-status map is swept down to referenced instances.
	retireOn      bool
	lowWater      int64
	rt            *reachTable
	retireQ       []int
	entryCount    int
	lastSweepLive int

	graphEpochs int64
	retiredVert int64
	sweeps      int64
	fastHits    int64
	fastMisses  int64
}

const (
	instLive byte = iota
	instCommitted
)

type objHistory struct {
	entries []objAccess
}

type objAccess struct {
	instance int64
	kind     core.OpKind
}

// NewSGT returns a serialization-graph-testing protocol.
func NewSGT() *SGT {
	return &SGT{
		g:      graph.NewIncremental(0),
		nodeOf: make(map[int64]int),
		status: make(map[int64]byte),
		objs:   make(map[string]*objHistory),
		progs:  make(map[int64]*core.Transaction),
	}
}

// Name implements Protocol.
func (p *SGT) Name() string { return "sgt" }

// Begin implements Protocol.
func (p *SGT) Begin(instance int64, program *core.Transaction) {
	if _, ok := p.nodeOf[instance]; !ok {
		p.nodeOf[instance] = p.g.AddVertex()
		p.status[instance] = instLive
		if p.retireOn && !p.tr.Enabled() {
			if p.rt == nil {
				p.rt = newReachTable()
			}
			p.rt.alloc(instance)
		}
		if p.tr.Enabled() {
			p.progs[instance] = program
		}
	}
}

// Request implements Protocol: add the conflict arcs the operation
// induces; on a cycle, abort the requester (its conflict order is
// fixed by execution, so blocking can never help).
func (p *SGT) Request(req OpRequest) Decision {
	sources := p.conflictSources(req)
	me := p.nodeOf[req.Instance]
	if p.tr.Enabled() {
		// Traced cold path: insert arcs one at a time so a rejection can
		// name the exact refused arc in its explanation.
		var added [][2]int
		for _, src := range sources {
			n, ok := p.nodeOf[src]
			if !ok {
				continue // pruned committed source: cannot be on a cycle
			}
			if n == me {
				continue
			}
			if err := p.g.AddArc(n, me); err != nil {
				p.explainReject(req, n, me)
				for _, a := range added {
					p.g.RemoveArc(a[0], a[1])
				}
				return Abort
			}
			added = append(added, [2]int{n, me})
		}
	} else {
		// Hot path: the request's conflict arcs form one epoch batch.
		// With the fast path active, an arc src -> me can only close a
		// cycle if me already reaches src, which is exactly the clock
		// bit (conservative only through stale bits of released slots);
		// the unsuspected case appends without any cycle sweep.
		// Suspected or slow requests use AddArcBatch, merged with a
		// single sweep and rolled back atomically on rejection.
		fast := p.retireOn && p.rt != nil
		mySlot := -1
		if fast {
			if s, ok := p.rt.slotOf[req.Instance]; ok {
				mySlot = s
			} else {
				fast = false
			}
		}
		var arcs [][2]int
		var srcSlots []int
		suspect := false
		for _, src := range sources {
			n, ok := p.nodeOf[src]
			if !ok || n == me {
				continue
			}
			arcs = append(arcs, [2]int{n, me})
			if fast {
				s, ok := p.rt.slotOf[src]
				if !ok {
					// Unreachable while tracer attachment stays fixed per
					// run; treated as a suspected cycle for safety.
					suspect = true
					continue
				}
				if p.rt.reaches(mySlot, s) {
					suspect = true
				}
				if !p.rt.seen.has(s) {
					p.rt.seen.set(s)
					srcSlots = append(srcSlots, s)
				}
			}
		}
		admit := true
		if len(arcs) > 0 {
			if fast && !suspect {
				p.g.AppendArcs(arcs)
			} else {
				if fast {
					p.fastMisses++
				}
				if err := p.g.AddArcBatch(arcs); err != nil {
					admit = false
				}
			}
		}
		if fast {
			if !suspect {
				p.fastHits++
			}
			for _, s := range srcSlots {
				p.rt.seen.clear(s)
			}
			if admit && len(arcs) > 0 {
				p.rt.recordArcs(srcSlots, mySlot)
			}
		}
		if !admit {
			return Abort
		}
	}
	// Record the access only after admission.
	h := p.history(req.Op.Object)
	h.entries = append(h.entries, objAccess{instance: req.Instance, kind: req.Op.Kind})
	p.entryCount++
	p.maybeSweep()
	return Grant
}

// conflictSources returns the instances whose prior accesses conflict
// with req, reduced to a covering set: the most recent live write plus
// every live read after it (for writes), or just the most recent live
// write (for reads). Transitivity through write-write chains makes
// the reduction cycle-equivalent to the full arc set.
func (p *SGT) conflictSources(req OpRequest) []int64 {
	h := p.objs[req.Op.Object]
	if h == nil {
		return nil
	}
	var out []int64
	seen := make(map[int64]bool)
	for i := len(h.entries) - 1; i >= 0; i-- {
		e := h.entries[i]
		if _, alive := p.nodeOf[e.instance]; !alive && p.status[e.instance] != instCommitted {
			continue // aborted
		}
		if e.kind == core.WriteOp {
			if !seen[e.instance] {
				out = append(out, e.instance)
			}
			return out // everything earlier is covered transitively
		}
		// Reads only matter for an incoming write.
		if req.Op.Kind == core.WriteOp && !seen[e.instance] {
			seen[e.instance] = true
			out = append(out, e.instance)
		}
	}
	return out
}

// explainReject emits a conflict-cycle event for the refused arc
// src -> me: the serialization graph's existing path me -> ... -> src
// plus the refused conflict arc is a transaction-granularity cycle.
// Called before rollback; tracing-only cold path.
func (p *SGT) explainReject(req OpRequest, src, me int) {
	ev := trace.Event{
		Kind:     trace.KindConflictCycle,
		Protocol: p.Name(),
		Instance: req.Instance,
		Txn:      int(req.Op.Txn),
		Seq:      req.Seq,
		Op:       req.Op.String(),
		Object:   req.Op.Object,
		Reason:   fmt.Sprintf("conflict on %s would close a serialization-graph cycle", req.Op.Object),
	}
	if path := p.g.FindPath(me, src); path != nil {
		instAt := make(map[int]int64, len(p.nodeOf))
		for inst, v := range p.nodeOf {
			instAt[v] = inst
		}
		cyc := &trace.Cycle{}
		for _, v := range path {
			inst := instAt[v]
			txn := 0
			if prog := p.progs[inst]; prog != nil {
				txn = int(prog.ID)
			}
			cyc.Nodes = append(cyc.Nodes, trace.CycleNode{Instance: inst, Txn: txn, Seq: -1})
		}
		for i := range path {
			cyc.Arcs = append(cyc.Arcs, trace.CycleArc{From: i, To: (i + 1) % len(path), Kind: "C"})
		}
		ev.Cycle = cyc
	}
	p.tr.Emit(ev)
}

// CanCommit implements Protocol.
func (p *SGT) CanCommit(int64) bool { return true }

// Commit implements Protocol.
func (p *SGT) Commit(instance int64) {
	p.status[instance] = instCommitted
	p.prune()
	p.maybeRetire()
}

// Abort implements Protocol.
func (p *SGT) Abort(instance int64) {
	if v, ok := p.nodeOf[instance]; ok {
		p.g.IsolateVertex(v)
		p.release(instance, v)
	}
	delete(p.nodeOf, instance)
	delete(p.status, instance)
	delete(p.progs, instance)
	p.prune()
	p.maybeRetire()
}

// release hands a finished instance's resources to the retirement
// machinery (see RSGT.release).
func (p *SGT) release(instance int64, vertex int) {
	if !p.retireOn {
		return
	}
	p.retireQ = append(p.retireQ, vertex)
	if p.rt != nil {
		p.rt.release(instance)
	}
}

// prune removes committed instances with no incoming arcs; such
// instances can never participate in a future cycle because new arcs
// only ever terminate at live requesters.
func (p *SGT) prune() {
	for {
		removed := false
		for _, inst := range sortedInstances(p.nodeOf) {
			if p.status[inst] != instCommitted {
				continue
			}
			v := p.nodeOf[inst]
			if p.g.InDegree(v) == 0 {
				p.g.IsolateVertex(v)
				p.release(inst, v)
				delete(p.nodeOf, inst)
				delete(p.progs, inst)
				// Keep the committed status so history entries still
				// count as valid conflict sources (they are skipped as
				// "pruned" in Request via the nodeOf check); the history
				// sweep reclaims it once nothing references the entry.
				removed = true
			}
		}
		if !removed {
			return
		}
	}
}

// SetRetirement implements Retirer. Must precede the first Begin.
func (p *SGT) SetRetirement(enabled bool) { p.retireOn = enabled }

// SetLowWater implements Retirer; see RSGT.SetLowWater.
//
//rsvet:deterministic
func (p *SGT) SetLowWater(instance int64) {
	if instance <= p.lowWater {
		return
	}
	p.lowWater = instance
	p.maybeRetire()
	p.maybeSweep()
}

// FlushRetirement implements Retirer.
func (p *SGT) FlushRetirement() {
	if !p.retireOn {
		return
	}
	p.flushRetire()
	p.sweep()
}

// RetireStats implements Retirer.
func (p *SGT) RetireStats() RetireStats {
	return RetireStats{
		Enabled:         p.retireOn,
		GraphEpochs:     p.graphEpochs,
		RetiredVertices: p.retiredVert,
		LiveVertices:    p.g.Len(),
		PendingRetire:   len(p.retireQ),
		Rebases:         p.sweeps,
		ExecEntries:     p.entryCount,
		FastPathHits:    p.fastHits,
		FastPathMisses:  p.fastMisses,
	}
}

// maybeRetire runs a graph compaction epoch once the pending queue is
// big both absolutely and relative to the graph; see RSGT.maybeRetire.
//
//rsvet:deterministic
func (p *SGT) maybeRetire() {
	if !p.retireOn || len(p.retireQ) < retireEpochMinVerts || 2*len(p.retireQ) < p.g.Len() {
		return
	}
	p.flushRetire()
}

func (p *SGT) flushRetire() {
	if len(p.retireQ) == 0 {
		return
	}
	res := p.g.Retire(p.retireQ)
	p.retiredVert += int64(res.Retired)
	p.graphEpochs++
	p.retireQ = p.retireQ[:0]
}

// maybeSweep sweeps the access histories when they have at least
// doubled since the last sweep, amortizing to O(1) per access.
//
//rsvet:deterministic
func (p *SGT) maybeSweep() {
	if !p.retireOn || p.entryCount < rebaseMinEntries || p.entryCount < 2*p.lastSweepLive {
		return
	}
	p.sweep()
}

// sweep drops unreachable history: per object, the conflict-source
// scan stops at the last non-aborted write, so entries strictly before
// it — and aborted entries anywhere — can never be consulted again.
// Committed statuses survive only while a resident instance or a
// retained entry references them (or, as a safety belt, while the
// instance is above the engine's low-water mark).
//
//rsvet:deterministic
func (p *SGT) sweep() {
	if !p.retireOn {
		return
	}
	alive := func(id int64) bool {
		_, res := p.nodeOf[id]
		return res || p.status[id] == instCommitted
	}
	referenced := make(map[int64]bool, len(p.nodeOf))
	total := 0
	//rsvet:allow detlint -- order-insensitive: each object's suffix is computed independently
	for obj, h := range p.objs {
		anchor := 0
		for i := len(h.entries) - 1; i >= 0; i-- {
			e := h.entries[i]
			if e.kind == core.WriteOp && alive(e.instance) {
				anchor = i
				break
			}
		}
		var kept []objAccess
		for _, e := range h.entries[anchor:] {
			if alive(e.instance) {
				kept = append(kept, e)
				referenced[e.instance] = true
			}
		}
		if len(kept) == 0 {
			delete(p.objs, obj)
			continue
		}
		h.entries = kept
		total += len(kept)
	}
	newStatus := make(map[int64]byte, len(p.nodeOf))
	//rsvet:allow detlint -- order-insensitive: per-key membership test into a fresh map
	for id, st := range p.status {
		if _, res := p.nodeOf[id]; res || referenced[id] || id >= p.lowWater {
			newStatus[id] = st
		}
	}
	p.status = newStatus
	p.entryCount = total
	p.lastSweepLive = total
	p.sweeps++
}

func (p *SGT) history(object string) *objHistory {
	h, ok := p.objs[object]
	if !ok {
		h = &objHistory{}
		p.objs[object] = h
	}
	return h
}
