package sched

import (
	"sync"

	"relser/internal/core"
	"relser/internal/graph"
	"relser/internal/shard"
	"relser/internal/trace"
)

// S2PL is strict two-phase locking: a transaction acquires a shared
// lock before reading and an exclusive lock before writing, holds all
// locks until commit or abort, and is aborted when its wait would close
// a cycle in the waits-for graph (deadlock; the requester is the
// victim).
//
// The lock table is striped over the shared shard router so the
// protocol is shard-safe: concurrent Request calls for different
// objects touch different stripes and only meet on the waits-for
// graph's mutex, which guards the blocking slow path alone. Per-
// instance bookkeeping (held locks, pending waits) is mutated only by
// the instance's own worker or under the driver's exclusive lifecycle
// lock, so it needs no locking of its own (see ShardSafe).
type S2PL struct {
	traced
	router  shard.Router
	stripes []*s2plStripe

	// wmu guards the waits-for graph and its vertex table; only the
	// blocking slow path and instance lifecycle take it.
	wmu       sync.Mutex
	nodeOf    map[int64]int
	insts     []int64 // vertex -> instance
	waits     *graph.Sparse
	waitingOn map[int64][]int64

	// entries holds per-instance state: created at Begin, dropped at
	// release, mutated only by the owning worker in between.
	entries map[int64]*s2plInst
	// progs retains programs for explanation events; populated only
	// while tracing.
	progs map[int64]*core.Transaction
}

type s2plStripe struct {
	mu    sync.Mutex
	locks map[string]*lockState
}

type s2plInst struct {
	held []string
	// waiting is set while the instance has live waits-for arcs; the
	// next grant withdraws them lazily.
	waiting bool
}

type lockState struct {
	// readers holds shared-lock holders; writer is the exclusive
	// holder (0 when none). An instance may appear in readers and as
	// the writer during an upgrade.
	readers map[int64]bool
	writer  int64
}

// NewS2PL returns a strict two-phase locking protocol with a single
// lock-table stripe (the classical global lock manager).
func NewS2PL() *S2PL { return NewS2PLSharded(1) }

// NewS2PLSharded returns strict two-phase locking with the lock table
// striped over Normalize(shards) stripes.
func NewS2PLSharded(shards int) *S2PL {
	router := shard.NewRouter(shards)
	p := &S2PL{
		router:    router,
		stripes:   make([]*s2plStripe, router.Shards()),
		nodeOf:    make(map[int64]int),
		waits:     graph.NewSparse(0),
		waitingOn: make(map[int64][]int64),
		entries:   make(map[int64]*s2plInst),
		progs:     make(map[int64]*core.Transaction),
	}
	for i := range p.stripes {
		p.stripes[i] = &s2plStripe{locks: make(map[string]*lockState)}
	}
	return p
}

// Name implements Protocol.
func (p *S2PL) Name() string { return "s2pl" }

// ConcurrentShardSafe implements ShardSafe.
func (p *S2PL) ConcurrentShardSafe() bool { return true }

// Begin implements Protocol.
func (p *S2PL) Begin(instance int64, program *core.Transaction) {
	if _, ok := p.entries[instance]; ok {
		return
	}
	p.entries[instance] = &s2plInst{}
	p.wmu.Lock()
	p.nodeOf[instance] = p.waits.AddVertex()
	p.insts = append(p.insts, instance)
	p.wmu.Unlock()
	if p.tr.Enabled() {
		p.progs[instance] = program
	}
}

// Request implements Protocol: grant if the needed lock is compatible
// with current holders; otherwise install waits-for edges and either
// block or, if that closes a cycle, abort the requester.
func (p *S2PL) Request(req OpRequest) Decision {
	e := p.entries[req.Instance]
	sp := p.stripeFor(req.Op.Object)
	sp.mu.Lock()
	st := sp.lockLocked(req.Op.Object)
	blockers := p.conflictingHolders(st, req)
	if len(blockers) == 0 {
		p.acquire(st, req)
		sp.mu.Unlock()
		if e != nil && e.waiting {
			p.clearWaits(req.Instance)
			e.waiting = false
		}
		return Grant
	}
	sp.mu.Unlock()
	// Under the concurrent driver no holder can release between the
	// stripe unlock and the waits installation (releases run under the
	// driver's exclusive lock, which the whole request path excludes),
	// and the deterministic runner is single-threaded — so blockers
	// are still live here.
	cyc, deadlock := p.installWaits(req.Instance, blockers)
	if deadlock {
		// Deadlock: the requester is the victim. Its waits edges are
		// already withdrawn; locks are released by the driver's Abort.
		if p.tr.Enabled() {
			p.tr.Emit(deadlockEvent(p.Name(), req, cyc))
		}
		return Abort
	}
	if e != nil {
		e.waiting = true
	}
	if p.tr.Enabled() {
		p.tr.Emit(blockEvent(p.Name(), req, blockers))
	}
	return Block
}

// installWaits records waits-for arcs from the instance to its
// blockers under the graph mutex. If the arcs close a cycle they are
// withdrawn again and deadlock=true is returned, together with the
// rendered cycle witness when tracing is enabled.
func (p *S2PL) installWaits(instance int64, blockers []int64) (cyc *trace.Cycle, deadlock bool) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.clearWaitsLocked(instance)
	me, ok := p.nodeOf[instance]
	if !ok {
		return nil, false
	}
	for _, b := range blockers {
		if n, alive := p.nodeOf[b]; alive {
			p.waits.AddArc(me, n)
			p.waitingOn[instance] = append(p.waitingOn[instance], b)
		}
	}
	if verts := p.waits.FindCycleFrom(me); verts != nil {
		if p.tr.Enabled() {
			cyc = waitCycle(verts, p.instanceAt, p.progs)
		}
		p.clearWaitsLocked(instance)
		return cyc, true
	}
	return nil, false
}

// instanceAt maps a waits-for graph vertex back to its instance. Must
// be called with wmu held.
func (p *S2PL) instanceAt(v int) int64 { return p.insts[v] }

// conflictingHolders returns the instances whose locks block req,
// sorted for determinism.
func (p *S2PL) conflictingHolders(st *lockState, req OpRequest) []int64 {
	var out []int64
	if req.Op.Kind == core.ReadOp {
		if st.writer != 0 && st.writer != req.Instance {
			out = append(out, st.writer)
		}
		return out
	}
	if st.writer != 0 && st.writer != req.Instance {
		out = append(out, st.writer)
	}
	for r := range st.readers {
		if r != req.Instance {
			out = append(out, r)
		}
	}
	sortInt64s(out)
	return out
}

// acquire takes the lock for req. Callers must hold the object's
// stripe mutex or otherwise serialize access to st (the wrapping
// protocols run fully serialized).
func (p *S2PL) acquire(st *lockState, req OpRequest) {
	e := p.entries[req.Instance]
	if req.Op.Kind == core.ReadOp {
		if !st.readers[req.Instance] {
			st.readers[req.Instance] = true
			if e != nil {
				e.held = append(e.held, req.Op.Object)
			}
		}
		return
	}
	if st.writer != req.Instance {
		st.writer = req.Instance
		if e != nil {
			e.held = append(e.held, req.Op.Object)
		}
	}
}

// heldObjects returns the objects the instance holds locks on (the
// live slice: callers must not mutate it).
func (p *S2PL) heldObjects(instance int64) []string {
	if e := p.entries[instance]; e != nil {
		return e.held
	}
	return nil
}

// CanCommit implements Protocol.
func (p *S2PL) CanCommit(int64) bool { return true }

// Commit implements Protocol.
func (p *S2PL) Commit(instance int64) { p.release(instance) }

// Abort implements Protocol.
func (p *S2PL) Abort(instance int64) { p.release(instance) }

// release drops all locks and waits-for state. Called from lifecycle
// context (exclusive against every Request under the concurrent
// driver), so the stripe locks below are uncontended ordering hygiene.
func (p *S2PL) release(instance int64) {
	e := p.entries[instance]
	if e != nil {
		for _, obj := range e.held {
			sp := p.stripeFor(obj)
			sp.mu.Lock()
			if st := sp.locks[obj]; st != nil {
				delete(st.readers, instance)
				if st.writer == instance {
					st.writer = 0
				}
			}
			sp.mu.Unlock()
		}
	}
	delete(p.entries, instance)
	p.wmu.Lock()
	p.clearWaitsLocked(instance)
	if v, ok := p.nodeOf[instance]; ok {
		p.waits.IsolateVertex(v)
	}
	delete(p.nodeOf, instance)
	p.wmu.Unlock()
	delete(p.progs, instance)
}

// clearWaits withdraws the instance's waits-for arcs under the graph
// mutex.
func (p *S2PL) clearWaits(instance int64) {
	p.wmu.Lock()
	p.clearWaitsLocked(instance)
	p.wmu.Unlock()
}

func (p *S2PL) clearWaitsLocked(instance int64) {
	me, ok := p.nodeOf[instance]
	if !ok {
		return
	}
	for _, b := range p.waitingOn[instance] {
		if n, alive := p.nodeOf[b]; alive && p.waits.HasArc(me, n) {
			p.waits.RemoveArc(me, n)
		}
	}
	delete(p.waitingOn, instance)
}

func (p *S2PL) stripeFor(object string) *s2plStripe {
	return p.stripes[p.router.Shard(object)]
}

// lock returns the object's lock state, creating it on first use.
func (p *S2PL) lock(object string) *lockState {
	sp := p.stripeFor(object)
	sp.mu.Lock()
	st := sp.lockLocked(object)
	sp.mu.Unlock()
	return st
}

// lockLocked is lock with the stripe mutex already held.
func (sp *s2plStripe) lockLocked(object string) *lockState {
	st, ok := sp.locks[object]
	if !ok {
		st = &lockState{readers: make(map[int64]bool)}
		sp.locks[object] = st
	}
	return st
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
