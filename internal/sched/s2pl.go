package sched

import (
	"relser/internal/core"
	"relser/internal/graph"
)

// S2PL is strict two-phase locking: a transaction acquires a shared
// lock before reading and an exclusive lock before writing, holds all
// locks until commit or abort, and is aborted when its wait would close
// a cycle in the waits-for graph (deadlock; the requester is the
// victim).
type S2PL struct {
	traced
	locks map[string]*lockState
	// nodeOf maps instances to waits-for graph vertices.
	nodeOf map[int64]int
	insts  []int64 // vertex -> instance
	waits  *graph.Sparse
	// waitingOn[instance] lists the instances it currently waits for,
	// so edges can be withdrawn when the request is granted or the
	// waiter dies.
	waitingOn map[int64][]int64
	held      map[int64][]string // instance -> objects it holds locks on
	// progs retains programs for explanation events; populated only
	// while tracing.
	progs map[int64]*core.Transaction
}

type lockState struct {
	// readers holds shared-lock holders; writer is the exclusive
	// holder (0 when none). An instance may appear in readers and as
	// the writer during an upgrade.
	readers map[int64]bool
	writer  int64
}

// NewS2PL returns a strict two-phase locking protocol.
func NewS2PL() *S2PL {
	return &S2PL{
		locks:     make(map[string]*lockState),
		nodeOf:    make(map[int64]int),
		waits:     graph.NewSparse(0),
		waitingOn: make(map[int64][]int64),
		held:      make(map[int64][]string),
		progs:     make(map[int64]*core.Transaction),
	}
}

// Name implements Protocol.
func (p *S2PL) Name() string { return "s2pl" }

// Begin implements Protocol.
func (p *S2PL) Begin(instance int64, program *core.Transaction) {
	if _, ok := p.nodeOf[instance]; !ok {
		p.nodeOf[instance] = p.waits.AddVertex()
		p.insts = append(p.insts, instance)
		if p.tr.Enabled() {
			p.progs[instance] = program
		}
	}
}

// Request implements Protocol: grant if the needed lock is compatible
// with current holders; otherwise install waits-for edges and either
// block or, if that closes a cycle, abort the requester.
func (p *S2PL) Request(req OpRequest) Decision {
	st := p.lock(req.Op.Object)
	blockers := p.conflictingHolders(st, req)
	if len(blockers) == 0 {
		p.clearWaits(req.Instance)
		p.acquire(st, req)
		return Grant
	}
	p.clearWaits(req.Instance)
	me := p.nodeOf[req.Instance]
	for _, b := range blockers {
		p.waits.AddArc(me, p.nodeOf[b])
		p.waitingOn[req.Instance] = append(p.waitingOn[req.Instance], b)
	}
	if cyc := p.waits.FindCycleFrom(me); cyc != nil {
		// Deadlock: the requester is the victim. Its waits edges go
		// away now; locks are released by the driver's Abort call.
		if p.tr.Enabled() {
			p.tr.Emit(deadlockEvent(p.Name(), req, waitCycle(cyc, p.instanceAt, p.progs)))
		}
		p.clearWaits(req.Instance)
		return Abort
	}
	if p.tr.Enabled() {
		p.tr.Emit(blockEvent(p.Name(), req, blockers))
	}
	return Block
}

// instanceAt maps a waits-for graph vertex back to its instance.
func (p *S2PL) instanceAt(v int) int64 { return p.insts[v] }

// conflictingHolders returns the instances whose locks block req,
// sorted for determinism.
func (p *S2PL) conflictingHolders(st *lockState, req OpRequest) []int64 {
	var out []int64
	if req.Op.Kind == core.ReadOp {
		if st.writer != 0 && st.writer != req.Instance {
			out = append(out, st.writer)
		}
		return out
	}
	if st.writer != 0 && st.writer != req.Instance {
		out = append(out, st.writer)
	}
	for r := range st.readers {
		if r != req.Instance {
			out = append(out, r)
		}
	}
	sortInt64s(out)
	return out
}

func (p *S2PL) acquire(st *lockState, req OpRequest) {
	if req.Op.Kind == core.ReadOp {
		if !st.readers[req.Instance] {
			st.readers[req.Instance] = true
			p.held[req.Instance] = append(p.held[req.Instance], req.Op.Object)
		}
		return
	}
	if st.writer != req.Instance {
		st.writer = req.Instance
		p.held[req.Instance] = append(p.held[req.Instance], req.Op.Object)
	}
}

// CanCommit implements Protocol.
func (p *S2PL) CanCommit(int64) bool { return true }

// Commit implements Protocol.
func (p *S2PL) Commit(instance int64) { p.release(instance) }

// Abort implements Protocol.
func (p *S2PL) Abort(instance int64) { p.release(instance) }

func (p *S2PL) release(instance int64) {
	for _, obj := range p.held[instance] {
		st := p.locks[obj]
		delete(st.readers, instance)
		if st.writer == instance {
			st.writer = 0
		}
	}
	delete(p.held, instance)
	p.clearWaits(instance)
	if v, ok := p.nodeOf[instance]; ok {
		p.waits.IsolateVertex(v)
	}
	delete(p.nodeOf, instance)
	delete(p.progs, instance)
}

func (p *S2PL) clearWaits(instance int64) {
	me, ok := p.nodeOf[instance]
	if !ok {
		return
	}
	for _, b := range p.waitingOn[instance] {
		if n, alive := p.nodeOf[b]; alive && p.waits.HasArc(me, n) {
			p.waits.RemoveArc(me, n)
		}
	}
	delete(p.waitingOn, instance)
}

func (p *S2PL) lock(object string) *lockState {
	st, ok := p.locks[object]
	if !ok {
		st = &lockState{readers: make(map[int64]bool)}
		p.locks[object] = st
	}
	return st
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
