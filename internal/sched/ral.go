package sched

import (
	"fmt"

	"relser/internal/core"
	"relser/internal/trace"
)

// RAL — relative-atomicity locking — is this module's take on the
// protocol the paper announces as future work ("we are currently
// developing efficient, lock based protocols for recognizing
// relatively serializable executions", §3/§5). It generalizes
// altruistic locking from uniform early release to **per-observer
// release**: a lock on object x held by Ti becomes transparent to Tj —
// and only to Tj — once Ti has completed the atomic unit of
// Atomicity(Ti, Tj) containing Ti's last access to x. Different
// observers see the same lock released at different times, exactly
// mirroring the pairwise atomic units of the model.
//
// Because a lock discipline alone is not known to characterize
// relative serializability exactly, RAL keeps the paper's graph in the
// loop: every lock-admitted operation still passes through an embedded
// incremental RSG (the RSGT machinery), so admitted executions are
// relatively serializable by Theorem 1 *by construction*. The locks
// act as a pessimistic filter that converts most would-be RSG cycles
// into waits instead of aborts; the graph is the safety net, never the
// victim of the discipline's optimism.
//
// Wake discipline (inherited from altruistic locking, applied per
// pair): a transaction that slips past Tj-released locks of donor Ti
// enters Ti's wake — it may not touch objects Ti still needs, cannot
// commit before Ti, and is cascaded by the driver if Ti aborts.
type RAL struct {
	traced
	base   *S2PL
	rsgt   *RSGT
	oracle AtomicityOracle

	progs    map[int64]*core.Transaction
	executed map[int64]int
	// lastUse[inst][obj] is the final sequence position at which the
	// instance's program accesses the object.
	lastUse map[int64]map[string]int
	// remaining[inst][obj] counts unexecuted accesses.
	remaining map[int64]map[string]int
	wakes     map[int64]map[int64]bool
	committed map[int64]bool
}

// NewRAL returns the hybrid locking protocol under the given oracle.
func NewRAL(oracle AtomicityOracle) *RAL {
	return &RAL{
		base:      NewS2PL(),
		rsgt:      NewRSGT(oracle),
		oracle:    oracle,
		progs:     make(map[int64]*core.Transaction),
		executed:  make(map[int64]int),
		lastUse:   make(map[int64]map[string]int),
		remaining: make(map[int64]map[string]int),
		wakes:     make(map[int64]map[int64]bool),
		committed: make(map[int64]bool),
	}
}

// Name implements Protocol.
func (p *RAL) Name() string { return "ral" }

// SetTracer installs the tracer on the protocol, its lock manager, and
// its embedded certifier. Cycle rejections surface from the certifier
// under protocol name "rsgt" (the graph makes the decision).
func (p *RAL) SetTracer(tr *trace.Tracer) {
	p.traced.SetTracer(tr)
	p.base.SetTracer(tr)
	p.rsgt.SetTracer(tr)
}

// SetRetirement implements Retirer: the embedded certifier owns all
// graph state, so retirement delegates wholesale (like SetTracer).
func (p *RAL) SetRetirement(enabled bool) { p.rsgt.SetRetirement(enabled) }

// SetLowWater implements Retirer.
func (p *RAL) SetLowWater(instance int64) { p.rsgt.SetLowWater(instance) }

// FlushRetirement implements Retirer.
func (p *RAL) FlushRetirement() { p.rsgt.FlushRetirement() }

// RetireStats implements Retirer.
func (p *RAL) RetireStats() RetireStats { return p.rsgt.RetireStats() }

// Begin implements Protocol.
func (p *RAL) Begin(instance int64, program *core.Transaction) {
	p.base.Begin(instance, program)
	p.rsgt.Begin(instance, program)
	p.progs[instance] = program
	p.executed[instance] = 0
	last := make(map[string]int)
	rem := make(map[string]int)
	for _, o := range program.Ops {
		last[o.Object] = o.Seq
		rem[o.Object]++
	}
	p.lastUse[instance] = last
	p.remaining[instance] = rem
	p.wakes[instance] = make(map[int64]bool)
}

// releasedFor reports whether holder's lock on object is transparent
// to the observer: the holder has finished the atomic unit — relative
// to the observer's program — containing its last access to the
// object.
func (p *RAL) releasedFor(holder int64, object string, observer *core.Transaction) bool {
	prog := p.progs[holder]
	if prog == nil {
		return false
	}
	last, used := p.lastUse[holder][object]
	if !used {
		return false
	}
	if p.remaining[holder][object] > 0 {
		return false // the holder itself will touch it again
	}
	cuts := p.oracle.Cuts(prog, observer)
	_, end := unitBounds(cuts, prog.Len(), last)
	if end == prog.Len()-1 {
		// The final unit never releases early: with no interior
		// boundary after it, release would only front-run commit
		// (and under absolute atomicity would break the strict-2PL
		// degeneration).
		return false
	}
	return p.executed[holder] > end
}

// Request implements Protocol.
func (p *RAL) Request(req OpRequest) Decision {
	// Wake discipline first: stay off objects a live donor still needs
	// (unless the donor has already released them to us).
	for donor := range p.wakes[req.Instance] {
		if p.committed[donor] || p.progs[donor] == nil {
			continue
		}
		if p.remaining[donor][req.Op.Object] > 0 && !p.releasedFor(donor, req.Op.Object, req.Program) {
			return Block
		}
	}

	st := p.base.lock(req.Op.Object)
	blockers := p.base.conflictingHolders(st, req)
	var effective []int64
	var donors []int64
	for _, b := range blockers {
		if p.releasedFor(b, req.Op.Object, req.Program) && !p.holdsDonorNeeds(req.Instance, b) {
			donors = append(donors, b)
		} else {
			effective = append(effective, b)
		}
	}
	if len(effective) > 0 {
		cyc, deadlock := p.base.installWaits(req.Instance, effective)
		if deadlock {
			if p.tr.Enabled() {
				p.tr.Emit(deadlockEvent(p.Name(), req, cyc))
			}
			return Abort
		}
		if p.tr.Enabled() {
			p.tr.Emit(blockEvent(p.Name(), req, effective))
		}
		return Block
	}

	// Lock discipline satisfied: certify with the paper's graph (a
	// rejection there emits its cycle-reject explanation as "rsgt").
	if d := p.rsgt.Request(req); d != Grant {
		return d
	}
	p.base.clearWaits(req.Instance)
	p.base.acquire(st, req)
	for _, d := range donors {
		if p.tr.Enabled() && !p.wakes[req.Instance][d] {
			p.tr.Emit(trace.Event{
				Kind: trace.KindWake, Protocol: p.Name(),
				Instance: req.Instance, Txn: int(req.Op.Txn),
				Object: req.Op.Object, Blockers: []int64{d},
				Reason: fmt.Sprintf("lock on %s released per-observer by instance %d; entering its wake", req.Op.Object, d),
			})
		}
		p.wakes[req.Instance][d] = true
	}
	p.executed[req.Instance] = req.Seq + 1
	p.remaining[req.Instance][req.Op.Object]--
	return Grant
}

// holdsDonorNeeds mirrors the altruistic entry guard: do not enter a
// wake while holding locks the donor's unexecuted suffix needs.
func (p *RAL) holdsDonorNeeds(requester, donor int64) bool {
	rem := p.remaining[donor]
	for _, obj := range p.base.heldObjects(requester) {
		if rem[obj] > 0 {
			return true
		}
	}
	return false
}

// CanCommit implements Protocol: wake members wait for their donors.
func (p *RAL) CanCommit(instance int64) bool {
	for donor := range p.wakes[instance] {
		if !p.committed[donor] && p.progs[donor] != nil {
			return false
		}
	}
	return p.rsgt.CanCommit(instance)
}

// Commit implements Protocol.
func (p *RAL) Commit(instance int64) {
	p.committed[instance] = true
	p.cleanup(instance)
	p.base.Commit(instance)
	p.rsgt.Commit(instance)
}

// Abort implements Protocol.
func (p *RAL) Abort(instance int64) {
	p.cleanup(instance)
	p.base.Abort(instance)
	p.rsgt.Abort(instance)
}

func (p *RAL) cleanup(instance int64) {
	delete(p.progs, instance)
	delete(p.executed, instance)
	delete(p.lastUse, instance)
	delete(p.remaining, instance)
	delete(p.wakes, instance)
}
