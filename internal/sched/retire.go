package sched

// Bounded-memory certification: the graph-based protocols (RSGT, SGT,
// and RAL via its embedded certifier) retire the vertices of finished
// transactions in count-based epoch batches and certify the common
// no-suspected-cycle case with a conservative vector-clock test, so
// scheduler memory tracks the live transaction set instead of history.
//
// Epoch pacing is strictly count-based (pending work vs. live size);
// wall-clock epochs would make replays nondeterministic, which detlint
// enforces on every decision site below.

const (
	// retireEpochMinVerts is the minimum number of pending retired
	// vertices before a graph compaction epoch runs; combined with the
	// pending >= live/2 rule the compaction cost is O(1) amortized per
	// retired vertex.
	retireEpochMinVerts = 64
	// rebaseMinEntries is the minimum execution-history length before a
	// dependency-index rebase epoch runs; combined with the
	// total >= 2*retained rule the rebase cost is O(1) amortized per
	// executed operation.
	rebaseMinEntries = 1024
	// strandedSweepMinInsts is the minimum number of committed
	// instances still resident in the graph before a stranded-cluster
	// reachability sweep runs (RSGT); combined with the
	// resident >= 2*last-sweep-survivors rule the sweep cost is O(1)
	// amortized per committed transaction.
	strandedSweepMinInsts = 64
)

// RetireStats reports a protocol's bounded-memory state: graph size,
// retirement progress, and vector-clock fast-path effectiveness.
type RetireStats struct {
	// Enabled reports whether retirement is active on the protocol.
	Enabled bool
	// GraphEpochs counts graph compaction epochs run.
	GraphEpochs int64
	// RetiredVertices counts vertices removed from the graph.
	RetiredVertices int64
	// LiveVertices is the graph's current vertex count.
	LiveVertices int
	// PendingRetire counts vertices queued for the next epoch.
	PendingRetire int
	// Rebases counts dependency-index rebase epochs (RSGT) or history
	// sweeps (SGT).
	Rebases int64
	// ExecEntries is the current dependency-tracking history length.
	ExecEntries int
	// FastPathHits counts requests certified by the vector-clock test
	// alone (no cycle sweep).
	FastPathHits int64
	// FastPathMisses counts requests where the clocks suspected a cycle
	// and the full RSG insert ran.
	FastPathMisses int64
}

// HitRate returns the fast-path hit fraction, or 0 when no request
// took either path.
func (s RetireStats) HitRate() float64 {
	total := s.FastPathHits + s.FastPathMisses
	if total == 0 {
		return 0
	}
	return float64(s.FastPathHits) / float64(total)
}

// Add accumulates other into s (for aggregating sharded or embedded
// protocols).
func (s *RetireStats) Add(other RetireStats) {
	s.Enabled = s.Enabled || other.Enabled
	s.GraphEpochs += other.GraphEpochs
	s.RetiredVertices += other.RetiredVertices
	s.LiveVertices += other.LiveVertices
	s.PendingRetire += other.PendingRetire
	s.Rebases += other.Rebases
	s.ExecEntries += other.ExecEntries
	s.FastPathHits += other.FastPathHits
	s.FastPathMisses += other.FastPathMisses
}

// Retirer is implemented by protocols that bound their memory by
// retiring finished transactions' certification state. The engine
// drives it: SetRetirement at configuration, SetLowWater from the
// Admit/Commit stages (the pacemaker for epoch work), FlushRetirement
// from Recover/Finalize so pending state unwinds deterministically.
//
// Lifecycle discipline: every method is a lifecycle call in the sense
// of the Protocol contract — the driver never invokes them
// concurrently with Request.
type Retirer interface {
	// SetRetirement enables or disables retirement. It must be called
	// before the first Begin; flipping it mid-run is unsupported (the
	// vector-clock tables must observe every arc from graph birth).
	SetRetirement(enabled bool)
	// SetLowWater feeds the engine's low-water mark: every instance ID
	// below it has finished (committed or aborted) and can never receive
	// another lifecycle call. Monotone; lower values are ignored.
	SetLowWater(instance int64)
	// FlushRetirement drains pending retirement work (queued vertices,
	// overdue rebase) immediately.
	FlushRetirement()
	// RetireStats reports the current bounded-memory state.
	RetireStats() RetireStats
}

// SetRetirement configures retirement on p if the protocol supports
// it; protocols without graph state are left alone. The Attach analog
// for the retirement lifecycle.
func SetRetirement(p Protocol, enabled bool) {
	if r, ok := p.(Retirer); ok {
		r.SetRetirement(enabled)
	}
}

// slotMask is a fixed-width bitmask over live transaction slots. All
// masks in one reachTable share the same word length, growing together.
type slotMask []uint64

func (m slotMask) has(i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }
func (m slotMask) set(i int)      { m[i>>6] |= 1 << (uint(i) & 63) }
func (m slotMask) clear(i int)    { m[i>>6] &^= 1 << (uint(i) & 63) }

func (m slotMask) reset() {
	for i := range m {
		m[i] = 0
	}
}

// orWith unions other into m, reporting whether m changed.
func (m slotMask) orWith(other slotMask) bool {
	changed := false
	for i, w := range other {
		if m[i]|w != m[i] {
			m[i] |= w
			changed = true
		}
	}
	return changed
}

func (m slotMask) intersects(other slotMask) bool {
	for i, w := range other {
		if m[i]&w != 0 {
			return true
		}
	}
	return false
}

// reachTable maintains, per live transaction slot, the set of slots
// reachable from it in the certification graph at transaction
// granularity — the "one clock per lane" half of the vector-clock fast
// path. Arcs only ever run from a source transaction to the live
// requester, so the instance-level closure is restored after each
// request by one pass over the live slots (any slot that already
// reached a changed source absorbs the requester's clock; transitivity
// held before the call, so no other slot needs updating).
//
// The table is conservative by construction: released slots leave
// stale bits in other clocks (extra suspicion, never a missed one),
// and a freshly allocated slot starts with an empty clock, which is
// exact (a new transaction's vertices have no outgoing arcs).
type reachTable struct {
	slotOf map[int64]int
	instAt []int64 // slot -> instance, -1 when free
	free   []int
	reach  []slotMask
	words  int
	// scratch masks reused across calls (same width as reach rows).
	delta slotMask
	cmask slotMask
	seen  slotMask
}

func newReachTable() *reachTable {
	return &reachTable{slotOf: make(map[int64]int), words: 1, delta: make(slotMask, 1), cmask: make(slotMask, 1), seen: make(slotMask, 1)}
}

// alloc assigns a slot to the instance, reusing freed slots.
func (rt *reachTable) alloc(inst int64) int {
	if n := len(rt.free); n > 0 {
		s := rt.free[n-1]
		rt.free = rt.free[:n-1]
		rt.instAt[s] = inst
		rt.reach[s].reset()
		rt.slotOf[inst] = s
		return s
	}
	s := len(rt.instAt)
	rt.instAt = append(rt.instAt, inst)
	if (s >> 6) >= rt.words {
		rt.words++
		for i := range rt.reach {
			rt.reach[i] = append(rt.reach[i], 0)
		}
		rt.delta = append(rt.delta, 0)
		rt.cmask = append(rt.cmask, 0)
		rt.seen = append(rt.seen, 0)
	}
	rt.reach = append(rt.reach, make(slotMask, rt.words))
	rt.slotOf[inst] = s
	return s
}

// release frees the instance's slot. Stale bits referring to it stay
// in other clocks until overwritten — conservative, see type comment.
func (rt *reachTable) release(inst int64) {
	s, ok := rt.slotOf[inst]
	if !ok {
		return
	}
	delete(rt.slotOf, inst)
	rt.instAt[s] = -1
	rt.free = append(rt.free, s)
}

// reaches reports whether the clock of slot from contains slot to.
func (rt *reachTable) reaches(from, to int) bool { return rt.reach[from].has(to) }

// recordArcs folds a request's admitted arcs (every source slot ->
// req) into the clocks, restoring the transaction-level transitive
// closure in one pass.
func (rt *reachTable) recordArcs(srcs []int, req int) {
	if len(srcs) == 0 {
		return
	}
	copy(rt.delta, rt.reach[req])
	rt.delta.set(req)
	rt.cmask.reset()
	any := false
	for _, s := range srcs {
		if rt.reach[s].orWith(rt.delta) {
			rt.cmask.set(s)
			any = true
		}
	}
	if !any {
		return
	}
	for s, m := range rt.reach {
		if rt.instAt[s] < 0 || !m.intersects(rt.cmask) {
			continue
		}
		m.orWith(rt.delta)
	}
}
