package sched

import (
	"fmt"
	"sort"

	"relser/internal/core"
	"relser/internal/trace"
)

// traced is embedded by protocols to carry an optional tracer. The
// zero value is a disabled tracer: every emission site is guarded by
// tr.Enabled(), which is a nil check, so untraced runs pay nothing.
type traced struct {
	tr *trace.Tracer
}

// SetTracer installs the tracer; protocols embedding traced satisfy
// TracerSetter through it.
func (t *traced) SetTracer(tr *trace.Tracer) { t.tr = tr }

// TracerSetter is implemented by protocols that can emit decision
// events and explanations. The Protocol interface itself is unchanged;
// drivers attach tracers with a type assertion via Attach.
type TracerSetter interface {
	SetTracer(*trace.Tracer)
}

// Attach installs tr on p if the protocol supports tracing; protocols
// without instrumentation (NoCC) are left alone.
func Attach(p Protocol, tr *trace.Tracer) {
	if s, ok := p.(TracerSetter); ok {
		s.SetTracer(tr)
	}
}

// protocolMakers is the registry behind NewProtocol. Oracle-free
// protocols ignore the oracle argument; protocols without striped
// state ignore the shard count.
var protocolMakers = map[string]func(oracle AtomicityOracle, shards int) Protocol{
	"nocc":       func(AtomicityOracle, int) Protocol { return NewNoCC() },
	"s2pl":       func(_ AtomicityOracle, n int) Protocol { return NewS2PLSharded(n) },
	"sgt":        func(AtomicityOracle, int) Protocol { return NewSGT() },
	"to":         func(_ AtomicityOracle, n int) Protocol { return NewTOSharded(n) },
	"rsgt":       func(o AtomicityOracle, _ int) Protocol { return NewRSGT(o) },
	"altruistic": func(o AtomicityOracle, _ int) Protocol { return NewAltruistic(o) },
	"ral":        func(o AtomicityOracle, _ int) Protocol { return NewRAL(o) },
}

// ProtocolNames returns the registered protocol names, sorted.
func ProtocolNames() []string {
	out := make([]string, 0, len(protocolMakers))
	for name := range protocolMakers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewProtocol constructs a registered protocol by name with unstriped
// (single-shard) state. Unknown names produce an error listing the
// valid choices.
func NewProtocol(name string, oracle AtomicityOracle) (Protocol, error) {
	return NewProtocolSharded(name, oracle, 1)
}

// NewProtocolSharded constructs a registered protocol with its
// internal tables striped over the given shard count (protocols
// without striped state ignore it). Drivers pass their own shard count
// so lock tables and wait queues partition the key space identically.
func NewProtocolSharded(name string, oracle AtomicityOracle, shards int) (Protocol, error) {
	mk, ok := protocolMakers[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown protocol %q (valid: %v)", name, ProtocolNames())
	}
	return mk(oracle, shards), nil
}

// waitCycle renders a waits-for cycle (instance-granularity vertices,
// "W" arcs) as a trace.Cycle. verts is the cycle as returned by
// Sparse.FindCycleFrom (v1 -> v2 -> ... -> vk -> v1); instOf maps
// graph vertices back to instances, progs supplies transaction IDs
// where known.
func waitCycle(verts []int, instOf func(v int) int64, progs map[int64]*core.Transaction) *trace.Cycle {
	c := &trace.Cycle{}
	for _, v := range verts {
		inst := instOf(v)
		txn := 0
		if p := progs[inst]; p != nil {
			txn = int(p.ID)
		}
		c.Nodes = append(c.Nodes, trace.CycleNode{Instance: inst, Txn: txn, Seq: -1})
	}
	for i := range verts {
		c.Arcs = append(c.Arcs, trace.CycleArc{From: i, To: (i + 1) % len(verts), Kind: "W"})
	}
	return c
}

// blockEvent builds the lock-wait event locking protocols emit when a
// request blocks behind the given holders.
func blockEvent(protocol string, req OpRequest, blockers []int64) trace.Event {
	return trace.Event{
		Kind:     trace.KindLockWait,
		Protocol: protocol,
		Instance: req.Instance,
		Txn:      int(req.Op.Txn),
		Seq:      req.Seq,
		Op:       req.Op.String(),
		Object:   req.Op.Object,
		Blockers: append([]int64(nil), blockers...),
	}
}

// deadlockEvent builds the explanation locking protocols emit when a
// request would close a waits-for cycle (the requester is the victim).
func deadlockEvent(protocol string, req OpRequest, cycle *trace.Cycle) trace.Event {
	return trace.Event{
		Kind:     trace.KindDeadlock,
		Protocol: protocol,
		Instance: req.Instance,
		Txn:      int(req.Op.Txn),
		Seq:      req.Seq,
		Op:       req.Op.String(),
		Object:   req.Op.Object,
		Reason:   "wait would close a waits-for cycle; requester is the victim",
		Cycle:    cycle,
	}
}
