package sched_test

import (
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/sched"
	"relser/internal/trace"
)

func TestProtocolRegistry(t *testing.T) {
	names := sched.ProtocolNames()
	want := []string{"altruistic", "nocc", "ral", "rsgt", "s2pl", "sgt", "to"}
	if len(names) != len(want) {
		t.Fatalf("ProtocolNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ProtocolNames() = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		p, err := sched.NewProtocol(name, sched.AbsoluteOracle{})
		if err != nil {
			t.Fatalf("NewProtocol(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewProtocol(%q).Name() = %q", name, p.Name())
		}
	}
	_, err := sched.NewProtocol("nope", sched.AbsoluteOracle{})
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid protocol %q", err, name)
		}
	}
}

// tracedReplay drives a protocol exactly like the runtime does while
// emitting the driver-side begin/grant events into the same buffer the
// protocol's explanations land in, so the trace is replay-verifiable.
type tracedReplay struct {
	t   *testing.T
	p   sched.Protocol
	tr  *trace.Tracer
	buf *trace.Buffer
}

func newTracedReplay(t *testing.T, p sched.Protocol) *tracedReplay {
	buf := trace.NewBuffer()
	tr := trace.New(buf)
	sched.Attach(p, tr)
	return &tracedReplay{t: t, p: p, tr: tr, buf: buf}
}

func (r *tracedReplay) begin(instance int64, prog *core.Transaction) {
	r.p.Begin(instance, prog)
	r.tr.Emit(trace.Event{
		Kind: trace.KindBegin, Protocol: r.p.Name(),
		Instance: instance, Txn: int(prog.ID), Program: prog.String(),
	})
}

func (r *tracedReplay) request(instance int64, prog *core.Transaction, seq int) sched.Decision {
	r.t.Helper()
	req := sched.OpRequest{Instance: instance, Program: prog, Seq: seq, Op: prog.Op(seq)}
	d := r.p.Request(req)
	if d == sched.Grant {
		r.tr.Emit(trace.Event{
			Kind: trace.KindGrant, Protocol: r.p.Name(),
			Instance: instance, Txn: int(prog.ID), Seq: seq, Op: prog.Op(seq).String(),
		})
	}
	return d
}

// TestRSGTCycleRejectExplanation drives the deterministic two-writer
// scenario into a rejection and checks the emitted explanation names a
// concrete RSG cycle that replay-verifies against the offline theory.
func TestRSGTCycleRejectExplanation(t *testing.T) {
	t1 := core.T(1, core.W("x"), core.W("y"))
	t2 := core.T(2, core.W("y"), core.W("x"))
	r := newTracedReplay(t, sched.NewRSGT(sched.AbsoluteOracle{}))
	var dots []string
	r.tr.DotSink = func(name, dot string) { dots = append(dots, dot) }

	r.begin(1, t1)
	r.begin(2, t2)
	if d := r.request(1, t1, 0); d != sched.Grant {
		t.Fatalf("w1[x]: %v", d)
	}
	if d := r.request(2, t2, 0); d != sched.Grant {
		t.Fatalf("w2[y]: %v", d)
	}
	if d := r.request(2, t2, 1); d != sched.Grant {
		t.Fatalf("w2[x]: %v", d)
	}
	if d := r.request(1, t1, 1); d != sched.Abort {
		t.Fatalf("w1[y]: got %v, want Abort", d)
	}

	events := r.buf.Events()
	var reject *trace.Event
	for i := range events {
		if events[i].Kind == trace.KindCycleReject {
			reject = &events[i]
		}
	}
	if reject == nil {
		t.Fatal("no cycle-reject event emitted")
	}
	if reject.Cycle == nil || len(reject.Cycle.Arcs) < 2 {
		t.Fatalf("cycle-reject carries no usable cycle: %+v", reject)
	}
	if reject.Op != "w1[y]" || reject.Instance != 1 {
		t.Errorf("reject identifies %s of instance %d, want w1[y] of 1", reject.Op, reject.Instance)
	}
	for _, a := range reject.Cycle.Arcs {
		for _, letter := range strings.Split(a.Kind, ",") {
			switch letter {
			case "I", "D", "F", "B":
			default:
				t.Errorf("cycle arc has non-RSG kind %q", a.Kind)
			}
		}
	}
	if len(dots) != 1 || !strings.Contains(dots[0], "digraph") {
		t.Errorf("expected one DOT snapshot at the rejection point, got %d", len(dots))
	}

	checked, err := trace.VerifyCycles(events, func(a, b *core.Transaction) []int { return nil })
	if err != nil {
		t.Fatalf("replay verification failed: %v", err)
	}
	if checked != 1 {
		t.Errorf("verified %d cycle-rejects, want 1", checked)
	}
}

// TestRSGTCycleRejectWithUnits exercises a rejection under a
// non-absolute specification: T1's first unit completes harmlessly,
// and the cycle's F-arcs target the interior unit [w1[x] w1[y]], so
// replay verification depends on the cuts actually being honored.
func TestRSGTCycleRejectWithUnits(t *testing.T) {
	// T1 = [w1[a]] [w1[x] w1[y]] relative to everyone; T2 single-unit.
	t1 := core.T(1, core.W("a"), core.W("x"), core.W("y"))
	t2 := core.T(2, core.W("y"), core.W("x"))
	cuts := func(a, _ *core.Transaction) []int {
		if a.ID == 1 {
			return []int{1}
		}
		return nil
	}
	r := newTracedReplay(t, sched.NewRSGT(sched.OracleFunc(cuts)))
	r.begin(1, t1)
	r.begin(2, t2)
	if d := r.request(1, t1, 0); d != sched.Grant {
		t.Fatalf("w1[a]: %v", d)
	}
	if d := r.request(1, t1, 1); d != sched.Grant {
		t.Fatalf("w1[x]: %v", d)
	}
	if d := r.request(2, t2, 0); d != sched.Grant {
		t.Fatalf("w2[y]: %v", d)
	}
	if d := r.request(2, t2, 1); d != sched.Grant {
		t.Fatalf("w2[x]: %v", d)
	}
	// T2 now sits astride T1's interior unit: w2[y] must precede w1[y]
	// while w2[x] follows w1[x]. Admitting w1[y] closes the F-arc cycle
	// w1[y] -> w2[x] -> w1[y].
	d := r.request(1, t1, 2)
	if d != sched.Abort {
		t.Fatalf("w1[y]: got %v, want Abort", d)
	}
	checked, err := trace.VerifyCycles(r.buf.Events(), cuts)
	if err != nil {
		t.Fatalf("replay verification failed: %v", err)
	}
	if checked != 1 {
		t.Errorf("verified %d cycle-rejects, want 1", checked)
	}
}

// TestRALCycleRejectVerifies checks that RAL's embedded certifier
// emits verifiable explanations too (under protocol name "rsgt").
// With two transactions RAL's wake-entry guard converts would-be
// cycles into blocks, so the scenario needs three: per-observer lock
// release admits a dependency chain T1 -> T2 -> T3 whose closing
// dependency T3 -> T1 is legal lock-wise but cycles the RSG because
// T1 is atomic relative to T3.
func TestRALCycleRejectVerifies(t *testing.T) {
	t1 := core.T(1, core.W("x"), core.W("z"), core.W("p"))
	t2 := core.T(2, core.W("x"), core.W("y"), core.W("q"))
	t3 := core.T(3, core.W("y"), core.W("z"), core.W("r"))
	// Every op its own unit — fully relaxed atomicity — except T1,
	// which stays atomic relative to T3.
	cuts := func(a, b *core.Transaction) []int {
		if a.ID == 1 && b.ID == 3 {
			return nil
		}
		out := make([]int, 0, a.Len()-1)
		for p := 1; p < a.Len(); p++ {
			out = append(out, p)
		}
		return out
	}
	r := newTracedReplay(t, sched.NewRAL(sched.OracleFunc(cuts)))
	r.begin(1, t1)
	r.begin(2, t2)
	r.begin(3, t3)
	if d := r.request(1, t1, 0); d != sched.Grant {
		t.Fatalf("w1[x]: %v", d)
	}
	if d := r.request(2, t2, 0); d != sched.Grant {
		t.Fatalf("w2[x]: %v", d)
	}
	if d := r.request(2, t2, 1); d != sched.Grant {
		t.Fatalf("w2[y]: %v", d)
	}
	if d := r.request(3, t3, 0); d != sched.Grant {
		t.Fatalf("w3[y]: %v", d)
	}
	if d := r.request(3, t3, 1); d != sched.Grant {
		t.Fatalf("w3[z]: %v", d)
	}
	if d := r.request(1, t1, 1); d != sched.Abort {
		t.Fatalf("w1[z]: got %v, want Abort", d)
	}
	events := r.buf.Events()
	var sawReject bool
	for _, ev := range events {
		if ev.Kind == trace.KindCycleReject {
			sawReject = true
			if ev.Protocol != "rsgt" {
				t.Errorf("RAL cycle-reject attributed to %q, want rsgt", ev.Protocol)
			}
		}
	}
	if !sawReject {
		t.Fatal("no cycle-reject from RAL's certifier")
	}
	if _, err := trace.VerifyCycles(events, cuts); err != nil {
		t.Fatalf("replay verification failed: %v", err)
	}
}

// TestS2PLDeadlockExplanation drives the classic two-transaction
// deadlock and checks the waits-for cycle event.
func TestS2PLDeadlockExplanation(t *testing.T) {
	t1 := core.T(1, core.W("x"), core.W("y"))
	t2 := core.T(2, core.W("y"), core.W("x"))
	r := newTracedReplay(t, sched.NewS2PL())
	r.begin(1, t1)
	r.begin(2, t2)
	if d := r.request(1, t1, 0); d != sched.Grant {
		t.Fatalf("w1[x]: %v", d)
	}
	if d := r.request(2, t2, 0); d != sched.Grant {
		t.Fatalf("w2[y]: %v", d)
	}
	if d := r.request(1, t1, 1); d != sched.Block {
		t.Fatalf("w1[y]: got %v, want Block", d)
	}
	if d := r.request(2, t2, 1); d != sched.Abort {
		t.Fatalf("w2[x]: got %v, want Abort (deadlock)", d)
	}
	events := r.buf.Events()
	counts := trace.CountKinds(events)
	if counts[trace.KindLockWait] != 1 {
		t.Errorf("lock-wait events = %d, want 1", counts[trace.KindLockWait])
	}
	var dl *trace.Event
	for i := range events {
		if events[i].Kind == trace.KindDeadlock {
			dl = &events[i]
		}
	}
	if dl == nil {
		t.Fatal("no deadlock event")
	}
	if dl.Cycle == nil || len(dl.Cycle.Nodes) != 2 {
		t.Fatalf("deadlock cycle = %+v, want the 2-instance waits-for cycle", dl.Cycle)
	}
	for _, a := range dl.Cycle.Arcs {
		if a.Kind != "W" {
			t.Errorf("waits-for arc kind = %q, want W", a.Kind)
		}
	}
	seen := map[int64]bool{}
	for _, n := range dl.Cycle.Nodes {
		seen[n.Instance] = true
		if n.Seq != -1 {
			t.Errorf("waits-for node has op-level seq %d, want -1", n.Seq)
		}
	}
	if !seen[1] || !seen[2] {
		t.Errorf("deadlock cycle names instances %v, want 1 and 2", dl.Cycle.Nodes)
	}
}

// TestTORejectExplanation checks TO's late-arrival reason string.
func TestTORejectExplanation(t *testing.T) {
	t1 := core.T(1, core.R("x"))
	t2 := core.T(2, core.W("x"))
	r := newTracedReplay(t, sched.NewTO())
	r.begin(1, t1)
	r.begin(2, t2)
	if d := r.request(2, t2, 0); d != sched.Grant {
		t.Fatalf("w2[x]: %v", d)
	}
	if d := r.request(1, t1, 0); d != sched.Abort {
		t.Fatalf("r1[x]: got %v, want Abort", d)
	}
	events := r.buf.Events()
	var ts *trace.Event
	for i := range events {
		if events[i].Kind == trace.KindTimestampReject {
			ts = &events[i]
		}
	}
	if ts == nil {
		t.Fatal("no ts-reject event")
	}
	if !strings.Contains(ts.Reason, "maxWrite 2") {
		t.Errorf("ts-reject reason %q does not name the blocking timestamp", ts.Reason)
	}
}

// TestAltruisticDonationEvents checks donate and wake events around a
// unit boundary.
func TestAltruisticDonationEvents(t *testing.T) {
	// T1 donates x after its first unit [w1[x]]; T2 then acquires x and
	// enters T1's wake.
	t1 := core.T(1, core.W("x"), core.W("y"))
	t2 := core.T(2, core.W("x"))
	cuts := func(a, _ *core.Transaction) []int {
		if a.ID == 1 {
			return []int{1}
		}
		return nil
	}
	r := newTracedReplay(t, sched.NewAltruistic(sched.OracleFunc(cuts)))
	r.begin(1, t1)
	r.begin(2, t2)
	if d := r.request(1, t1, 0); d != sched.Grant {
		t.Fatalf("w1[x]: %v", d)
	}
	if d := r.request(2, t2, 0); d != sched.Grant {
		t.Fatalf("w2[x] after donation: %v", d)
	}
	counts := trace.CountKinds(r.buf.Events())
	if counts[trace.KindDonate] != 1 {
		t.Errorf("donate events = %d, want 1", counts[trace.KindDonate])
	}
	if counts[trace.KindWake] != 1 {
		t.Errorf("wake events = %d, want 1", counts[trace.KindWake])
	}
}

// TestUntracedProtocolsEmitNothing guards the disabled path: replaying
// the rejection scenario without a tracer must work identically.
func TestUntracedProtocolsEmitNothing(t *testing.T) {
	t1 := core.T(1, core.W("x"), core.W("y"))
	t2 := core.T(2, core.W("y"), core.W("x"))
	p := sched.NewRSGT(sched.AbsoluteOracle{})
	p.Begin(1, t1)
	p.Begin(2, t2)
	reqs := []struct {
		inst int64
		prog *core.Transaction
		seq  int
		want sched.Decision
	}{
		{1, t1, 0, sched.Grant},
		{2, t2, 0, sched.Grant},
		{2, t2, 1, sched.Grant},
		{1, t1, 1, sched.Abort},
	}
	for _, rq := range reqs {
		d := p.Request(sched.OpRequest{Instance: rq.inst, Program: rq.prog, Seq: rq.seq, Op: rq.prog.Op(rq.seq)})
		if d != rq.want {
			t.Fatalf("%s: got %v, want %v", rq.prog.Op(rq.seq), d, rq.want)
		}
	}
}
