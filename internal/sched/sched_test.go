package sched_test

import (
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
	"relser/internal/sched"
)

// replay feeds a complete schedule through a non-blocking protocol
// (SGT, RSGT, NoCC) in order, returning the decision sequence. Begin is
// called for every transaction first; Commit after a transaction's
// last granted operation.
func replay(t *testing.T, p sched.Protocol, s *core.Schedule) []sched.Decision {
	t.Helper()
	ts := s.Set()
	for _, tx := range ts.Txns() {
		p.Begin(int64(tx.ID), tx)
	}
	executed := make(map[core.TxnID]int)
	var out []sched.Decision
	for pos := 0; pos < s.Len(); pos++ {
		op := s.At(pos)
		tx := ts.Txn(op.Txn)
		req := sched.OpRequest{Instance: int64(op.Txn), Program: tx, Seq: executed[op.Txn], Op: op}
		d := p.Request(req)
		out = append(out, d)
		if d == sched.Grant {
			executed[op.Txn]++
			if executed[op.Txn] == tx.Len() {
				if !p.CanCommit(int64(op.Txn)) {
					t.Fatalf("CanCommit false for finished T%d", op.Txn)
				}
				p.Commit(int64(op.Txn))
			}
		} else {
			p.Abort(int64(op.Txn))
			return out
		}
	}
	return out
}

func allGrant(ds []sched.Decision) bool {
	for _, d := range ds {
		if d != sched.Grant {
			return false
		}
	}
	return true
}

func TestNoCCGrantsEverything(t *testing.T) {
	inst := paperfig.Figure1()
	for _, name := range inst.Names {
		if !allGrant(replay(t, sched.NewNoCC(), inst.Schedules[name])) {
			t.Errorf("NoCC rejected an operation of %s", name)
		}
	}
}

func TestRSGTAdmitsPaperSchedules(t *testing.T) {
	// All three Figure 1 schedules are relatively serializable, so
	// RSGT must admit every operation in order.
	inst := paperfig.Figure1()
	oracle := sched.SpecOracle{Spec: inst.Spec}
	for _, name := range inst.Names {
		ds := replay(t, sched.NewRSGT(oracle), inst.Schedules[name])
		if !allGrant(ds) {
			t.Errorf("RSGT rejected an operation of %s: %v", name, ds)
		}
	}
}

func TestRSGTRejectsUnderAbsoluteAtomicity(t *testing.T) {
	// Srs is not conflict serializable; under the absolute oracle the
	// RSG must close a cycle at some prefix and abort.
	inst := paperfig.Figure1()
	ds := replay(t, sched.NewRSGT(sched.AbsoluteOracle{}), inst.Schedules["Srs"])
	if allGrant(ds) {
		t.Fatal("RSGT with absolute atomicity admitted a non-serializable schedule")
	}
	if ds[len(ds)-1] != sched.Abort {
		t.Errorf("expected trailing Abort, got %v", ds)
	}
}

func TestRSGTMatchesOfflineTheoremOnFigure2(t *testing.T) {
	// Figure 2's S1 is relatively serializable (RSG acyclic), so RSGT
	// admits it even though it is not relatively serial.
	inst := paperfig.Figure2()
	ds := replay(t, sched.NewRSGT(sched.SpecOracle{Spec: inst.Spec}), inst.Schedules["S1"])
	if !allGrant(ds) {
		t.Errorf("RSGT should admit S1 (Theorem 1): %v", ds)
	}
}

func TestSGTAdmitsSerializableOrder(t *testing.T) {
	inst := paperfig.Figure2()
	ds := replay(t, sched.NewSGT(), inst.Schedules["S1"])
	if !allGrant(ds) {
		t.Errorf("SGT should admit the conflict-serializable S1: %v", ds)
	}
}

func TestSGTRejectsNonSerializable(t *testing.T) {
	inst := paperfig.Figure1()
	ds := replay(t, sched.NewSGT(), inst.Schedules["Srs"])
	if allGrant(ds) {
		t.Fatal("SGT admitted the non-conflict-serializable Srs")
	}
}

func TestSGTPruningKeepsSourcesHarmless(t *testing.T) {
	// T1 commits before T2 touches anything; pruning must not forget
	// that T1's writes still order T2 after it (no false aborts, no
	// crash).
	t1 := core.T(1, core.W("x"))
	t2 := core.T(2, core.R("x"), core.W("x"))
	p := sched.NewSGT()
	p.Begin(1, t1)
	if d := p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 0, Op: t1.Op(0)}); d != sched.Grant {
		t.Fatal(d)
	}
	p.Commit(1)
	p.Begin(2, t2)
	for seq := 0; seq < 2; seq++ {
		if d := p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: seq, Op: t2.Op(seq)}); d != sched.Grant {
			t.Fatalf("op %d: %v", seq, d)
		}
	}
	p.Commit(2)
}

func TestS2PLGrantAndConflictBlock(t *testing.T) {
	t1 := core.T(1, core.W("x"))
	t2 := core.T(2, core.R("x"))
	p := sched.NewS2PL()
	p.Begin(1, t1)
	p.Begin(2, t2)
	if d := p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 0, Op: t1.Op(0)}); d != sched.Grant {
		t.Fatalf("writer: %v", d)
	}
	if d := p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}); d != sched.Block {
		t.Fatalf("reader under write lock: %v", d)
	}
	p.Commit(1)
	if d := p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}); d != sched.Grant {
		t.Fatalf("reader after release: %v", d)
	}
	p.Commit(2)
}

func TestS2PLSharedReadersThenWriterBlocks(t *testing.T) {
	t1 := core.T(1, core.R("x"))
	t2 := core.T(2, core.R("x"))
	t3 := core.T(3, core.W("x"))
	p := sched.NewS2PL()
	for id, tx := range map[int64]*core.Transaction{1: t1, 2: t2, 3: t3} {
		p.Begin(id, tx)
	}
	if p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 0, Op: t1.Op(0)}) != sched.Grant {
		t.Fatal("reader 1")
	}
	if p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}) != sched.Grant {
		t.Fatal("reader 2 should share")
	}
	if p.Request(sched.OpRequest{Instance: 3, Program: t3, Seq: 0, Op: t3.Op(0)}) != sched.Block {
		t.Fatal("writer should block under shared lock")
	}
	p.Commit(1)
	if p.Request(sched.OpRequest{Instance: 3, Program: t3, Seq: 0, Op: t3.Op(0)}) != sched.Block {
		t.Fatal("writer still blocked by reader 2")
	}
	p.Commit(2)
	if p.Request(sched.OpRequest{Instance: 3, Program: t3, Seq: 0, Op: t3.Op(0)}) != sched.Grant {
		t.Fatal("writer after all releases")
	}
}

func TestS2PLDeadlockAbortsRequester(t *testing.T) {
	t1 := core.T(1, core.W("x"), core.W("y"))
	t2 := core.T(2, core.W("y"), core.W("x"))
	p := sched.NewS2PL()
	p.Begin(1, t1)
	p.Begin(2, t2)
	if p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 0, Op: t1.Op(0)}) != sched.Grant {
		t.Fatal("T1 locks x")
	}
	if p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}) != sched.Grant {
		t.Fatal("T2 locks y")
	}
	if p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 1, Op: t1.Op(1)}) != sched.Block {
		t.Fatal("T1 should wait for y")
	}
	// T2 requesting x closes the waits-for cycle: deadlock, abort.
	if d := p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 1, Op: t2.Op(1)}); d != sched.Abort {
		t.Fatalf("expected deadlock abort, got %v", d)
	}
	p.Abort(2)
	// T1 can now proceed.
	if p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 1, Op: t1.Op(1)}) != sched.Grant {
		t.Fatal("T1 after victim release")
	}
}

func TestS2PLUpgrade(t *testing.T) {
	t1 := core.T(1, core.R("x"), core.W("x"))
	p := sched.NewS2PL()
	p.Begin(1, t1)
	if p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 0, Op: t1.Op(0)}) != sched.Grant {
		t.Fatal("read lock")
	}
	if p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 1, Op: t1.Op(1)}) != sched.Grant {
		t.Fatal("sole reader should upgrade to write")
	}
}

func TestAltruisticDonationAllowsEarlyAccess(t *testing.T) {
	// Long transaction sweeps x then y with a unit boundary after each
	// r/w pair; once it moves past x, a short transaction may lock x
	// even though the long transaction still holds (donated) it.
	long := core.T(1, core.R("x"), core.W("x"), core.R("y"), core.W("y"))
	short := core.T(2, core.R("x"), core.W("x"))
	oracle := sched.OracleFunc(func(a, _ *core.Transaction) []int {
		if a.ID == 1 {
			return []int{2}
		}
		return nil
	})
	p := sched.NewAltruistic(oracle)
	p.Begin(1, long)
	p.Begin(2, short)
	for seq := 0; seq < 2; seq++ { // long finishes unit [r x, w x]
		if d := p.Request(sched.OpRequest{Instance: 1, Program: long, Seq: seq, Op: long.Op(seq)}); d != sched.Grant {
			t.Fatalf("long op %d: %v", seq, d)
		}
	}
	// Short may now take x (donated) ...
	if d := p.Request(sched.OpRequest{Instance: 2, Program: short, Seq: 0, Op: short.Op(0)}); d != sched.Grant {
		t.Fatalf("short read of donated x: %v", d)
	}
	if d := p.Request(sched.OpRequest{Instance: 2, Program: short, Seq: 1, Op: short.Op(1)}); d != sched.Grant {
		t.Fatalf("short write of donated x: %v", d)
	}
	// ... but cannot commit before its donor.
	if p.CanCommit(2) {
		t.Fatal("wake member must wait for donor's commit")
	}
	for seq := 2; seq < 4; seq++ {
		if d := p.Request(sched.OpRequest{Instance: 1, Program: long, Seq: seq, Op: long.Op(seq)}); d != sched.Grant {
			t.Fatalf("long op %d: %v", seq, d)
		}
	}
	p.Commit(1)
	if !p.CanCommit(2) {
		t.Fatal("wake dissolves after donor commit")
	}
	p.Commit(2)
}

func TestAltruisticWakeDiscipline(t *testing.T) {
	// A wake member may not jump ahead of its donor onto objects the
	// donor still needs.
	long := core.T(1, core.R("x"), core.W("x"), core.R("y"), core.W("y"))
	short := core.T(2, core.R("x"), core.R("y"))
	oracle := sched.OracleFunc(func(a, _ *core.Transaction) []int {
		if a.ID == 1 {
			return []int{2}
		}
		return nil
	})
	p := sched.NewAltruistic(oracle)
	p.Begin(1, long)
	p.Begin(2, short)
	for seq := 0; seq < 2; seq++ {
		if p.Request(sched.OpRequest{Instance: 1, Program: long, Seq: seq, Op: long.Op(seq)}) != sched.Grant {
			t.Fatal("long unit 1")
		}
	}
	if p.Request(sched.OpRequest{Instance: 2, Program: short, Seq: 0, Op: short.Op(0)}) != sched.Grant {
		t.Fatal("short enters wake via donated x")
	}
	// y is still ahead of the donor: blocked by the wake rule.
	if d := p.Request(sched.OpRequest{Instance: 2, Program: short, Seq: 1, Op: short.Op(1)}); d != sched.Block {
		t.Fatalf("wake member touching donor's future object: %v, want Block", d)
	}
	for seq := 2; seq < 4; seq++ {
		if p.Request(sched.OpRequest{Instance: 1, Program: long, Seq: seq, Op: long.Op(seq)}) != sched.Grant {
			t.Fatal("long unit 2")
		}
	}
	p.Commit(1)
	if d := p.Request(sched.OpRequest{Instance: 2, Program: short, Seq: 1, Op: short.Op(1)}); d != sched.Grant {
		t.Fatalf("after donor commit: %v", d)
	}
	p.Commit(2)
}

func TestAltruisticPlainLockingStillWorks(t *testing.T) {
	// Without donations it degenerates to strict 2PL.
	t1 := core.T(1, core.W("x"))
	t2 := core.T(2, core.W("x"))
	p := sched.NewAltruistic(sched.AbsoluteOracle{})
	p.Begin(1, t1)
	p.Begin(2, t2)
	if p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 0, Op: t1.Op(0)}) != sched.Grant {
		t.Fatal("first writer")
	}
	if p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}) != sched.Block {
		t.Fatal("second writer should block (no donation)")
	}
	p.Commit(1)
	if p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}) != sched.Grant {
		t.Fatal("after release")
	}
	p.Commit(2)
}

func TestDecisionString(t *testing.T) {
	if sched.Grant.String() != "grant" || sched.Block.String() != "block" || sched.Abort.String() != "abort" {
		t.Error("Decision strings wrong")
	}
	if sched.Decision(9).String() != "unknown" {
		t.Error("unknown decision string")
	}
}

func TestSpecOracleRoundTrip(t *testing.T) {
	inst := paperfig.Figure1()
	oracle := sched.SpecOracle{Spec: inst.Spec}
	t1 := inst.Set.Txn(1)
	t2 := inst.Set.Txn(2)
	cuts := oracle.Cuts(t1, t2)
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Errorf("Cuts(T1, T2) = %v, want [2]", cuts)
	}
	cuts = oracle.Cuts(t1, inst.Set.Txn(3))
	if len(cuts) != 2 || cuts[0] != 2 || cuts[1] != 3 {
		t.Errorf("Cuts(T1, T3) = %v, want [2 3]", cuts)
	}
}

func TestTOOrdersConflictsByTimestamp(t *testing.T) {
	t1 := core.T(1, core.W("x"))
	t2 := core.T(2, core.R("x"))
	p := sched.NewTO()
	p.Begin(1, t1)
	p.Begin(2, t2)
	// Younger T2 reads first; elder T1's late write must abort.
	if d := p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}); d != sched.Grant {
		t.Fatalf("T2 read: %v", d)
	}
	if d := p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 0, Op: t1.Op(0)}); d != sched.Abort {
		t.Fatalf("late write by elder: %v, want Abort", d)
	}
	p.Abort(1)
	p.Commit(2)
	// Restarted incarnation (fresh, higher instance) succeeds.
	p.Begin(3, t1)
	if d := p.Request(sched.OpRequest{Instance: 3, Program: t1, Seq: 0, Op: t1.Op(0)}); d != sched.Grant {
		t.Fatalf("restarted write: %v", d)
	}
	p.Commit(3)
}

func TestTOAdmitsTimestampOrder(t *testing.T) {
	// All three Figure 1 schedules replayed with instance = txn id:
	// T/O admits an operation iff no younger access beat it; Sra has
	// r2[y] before T3's writes and r1 ops before w3 — all ascending
	// conflicts? Verify at least that a serial ascending replay works.
	inst := paperfig.Figure1()
	s, err := core.SerialSchedule(inst.Set)
	if err != nil {
		t.Fatal(err)
	}
	if !allGrant(replay(t, sched.NewTO(), s)) {
		t.Error("ascending serial schedule must be fully admitted by T/O")
	}
}

func TestTOLateRead(t *testing.T) {
	t1 := core.T(1, core.R("x"))
	t2 := core.T(2, core.W("x"))
	p := sched.NewTO()
	p.Begin(1, t1)
	p.Begin(2, t2)
	if d := p.Request(sched.OpRequest{Instance: 2, Program: t2, Seq: 0, Op: t2.Op(0)}); d != sched.Grant {
		t.Fatalf("T2 write: %v", d)
	}
	if d := p.Request(sched.OpRequest{Instance: 1, Program: t1, Seq: 0, Op: t1.Op(0)}); d != sched.Abort {
		t.Fatalf("late read by elder: %v, want Abort", d)
	}
}

func TestProtocolNames(t *testing.T) {
	inst := paperfig.Figure1()
	oracle := sched.SpecOracle{Spec: inst.Spec}
	for want, p := range map[string]sched.Protocol{
		"nocc":       sched.NewNoCC(),
		"s2pl":       sched.NewS2PL(),
		"sgt":        sched.NewSGT(),
		"rsgt":       sched.NewRSGT(oracle),
		"altruistic": sched.NewAltruistic(oracle),
		"to":         sched.NewTO(),
		"ral":        sched.NewRAL(oracle),
	} {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
		// The trivial lifecycle methods must be safe on fresh state.
		p.Begin(99, inst.Set.Txn(1))
		if !p.CanCommit(99) && want != "ral" && want != "altruistic" {
			t.Errorf("%s: fresh instance cannot commit", want)
		}
		p.Abort(99)
	}
}
