package sched_test

// Cross-shard conflict tests: transaction sets whose atomic-unit
// boundaries straddle shard boundaries of the runtime's key-space
// partition. The RSGT hot path inserts each request's D/F/B delta as
// one batch (graph.AddArcBatch) and relies on the batch rolling itself
// back atomically on a cycle; these tests pin down that the batched
// path accepts and rejects exactly the interleavings the offline
// Theorem 1 test does, exhaustively over every schedule of the sets.

import (
	"fmt"
	"testing"

	"relser/internal/core"
	"relser/internal/enumerate"
	"relser/internal/sched"
	"relser/internal/shard"
)

// crossShardObjects returns nObjects names that all land on distinct
// shards of an n-shard router, so consecutive operations on them are
// guaranteed to cross shard boundaries.
func crossShardObjects(t *testing.T, n, nObjects int) []string {
	t.Helper()
	router := shard.NewRouter(n)
	used := make(map[int]bool)
	var out []string
	for i := 0; len(out) < nObjects && i < 10000; i++ {
		name := fmt.Sprintf("o%d", i)
		s := router.Shard(name)
		if used[s] {
			continue
		}
		used[s] = true
		out = append(out, name)
	}
	if len(out) < nObjects {
		t.Fatalf("could not find %d objects on distinct shards of %d", nObjects, n)
	}
	return out
}

func TestCrossShardObjectsAreDistinct(t *testing.T) {
	objs := crossShardObjects(t, 8, 4)
	router := shard.NewRouter(8)
	seen := make(map[int]string)
	for _, o := range objs {
		s := router.Shard(o)
		if prev, dup := seen[s]; dup {
			t.Fatalf("objects %s and %s share shard %d", prev, o, s)
		}
		seen[s] = o
	}
}

// TestCrossShardUnitsRSGTMatchesOffline enumerates every interleaving
// of transaction sets whose atomic units straddle shards and checks
// that replaying each through RSGT (batched arc insertion) reaches the
// same verdict as the offline relative serializability test.
func TestCrossShardUnitsRSGTMatchesOffline(t *testing.T) {
	objs := crossShardObjects(t, 8, 3)
	a, b, c := objs[0], objs[1], objs[2]

	cases := []struct {
		name string
		mk   func() (*core.TxnSet, *core.Spec)
	}{
		{
			// T1's two units each span two shards; T2 and T3 conflict
			// with one unit each from a third shard.
			name: "two-units-straddling",
			mk: func() (*core.TxnSet, *core.Spec) {
				ts := core.MustTxnSet(
					core.T(1, core.R(a), core.W(b), core.R(b), core.W(a)),
					core.T(2, core.W(a), core.W(c)),
					core.T(3, core.W(b), core.R(c)),
				)
				sp := core.NewSpec(ts)
				// One boundary in the middle of T1 relative to both
				// observers: each unit covers objects on two shards.
				mustCut(t, sp, 1, 2, 2)
				mustCut(t, sp, 1, 3, 2)
				return ts, sp
			},
		},
		{
			// Asymmetric view: T2 sees T1 in single-op units (fully
			// breakable), T3 sees T1 atomically; every T1 unit boundary
			// is also a shard boundary crossing.
			name: "asymmetric-views",
			mk: func() (*core.TxnSet, *core.Spec) {
				ts := core.MustTxnSet(
					core.T(1, core.W(a), core.W(b), core.W(c)),
					core.T(2, core.R(a), core.R(c)),
					core.T(3, core.R(c), core.R(a)),
				)
				sp := core.NewSpec(ts)
				mustCut(t, sp, 1, 2, 1)
				mustCut(t, sp, 1, 2, 2)
				return ts, sp
			},
		},
		{
			// Mutual relaxation across shards: both long transactions
			// are breakable relative to each other at a cross-shard
			// boundary, with a short pivot transaction.
			name: "mutual-cross-shard",
			mk: func() (*core.TxnSet, *core.Spec) {
				ts := core.MustTxnSet(
					core.T(1, core.W(a), core.R(b), core.W(c)),
					core.T(2, core.W(c), core.R(a), core.W(b)),
					core.T(3, core.R(b), core.W(a)),
				)
				sp := core.NewSpec(ts)
				mustCut(t, sp, 1, 2, 1)
				mustCut(t, sp, 2, 1, 2)
				return ts, sp
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, sp := tc.mk()
			oracle := sched.SpecOracle{Spec: sp}
			total, admitted, rejected := 0, 0, 0
			enumerate.Schedules(ts, func(s *core.Schedule) bool {
				total++
				offline := core.IsRelativelySerializable(s, sp)
				online := admits(sched.NewRSGT(oracle), s)
				if offline != online {
					t.Fatalf("schedule %s: offline=%v online=%v", s, offline, online)
				}
				if online {
					admitted++
				} else {
					rejected++
				}
				return true
			})
			if admitted == 0 || rejected == 0 {
				t.Fatalf("degenerate case: %d schedules, %d admitted, %d rejected",
					total, admitted, rejected)
			}
		})
	}
}

func mustCut(t *testing.T, sp *core.Spec, a, b core.TxnID, p int) {
	t.Helper()
	if err := sp.CutAfter(a, b, p); err != nil {
		t.Fatal(err)
	}
}
