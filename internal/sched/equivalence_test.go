package sched_test

// Online/offline equivalence properties: replaying a complete schedule
// through the graph-testing protocols (one op at a time, committing
// each transaction after its last operation) must reach the same
// verdict as the offline theory on the whole schedule:
//
//   - SGT fully admits S  ⟺  S is conflict serializable;
//   - RSGT fully admits S ⟺  S is relatively serializable (Theorem 1).
//
// Both directions hold because the graphs the protocols build online
// are exactly the offline graphs restricted to executed prefixes, and
// committed-source pruning can never remove a cycle participant.

import (
	"math/rand"
	"testing"

	"relser/internal/core"
	"relser/internal/sched"
)

// genSchedInstance builds a random set, spec and complete schedule.
func genSchedInstance(rng *rand.Rand) (*core.TxnSet, *core.Spec, *core.Schedule) {
	objects := []string{"x", "y", "z"}
	nTxn := 2 + rng.Intn(3)
	txns := make([]*core.Transaction, nTxn)
	for i := range txns {
		nOps := 1 + rng.Intn(4)
		ops := make([]core.Op, nOps)
		for k := range ops {
			obj := objects[rng.Intn(len(objects))]
			if rng.Intn(2) == 0 {
				ops[k] = core.R(obj)
			} else {
				ops[k] = core.W(obj)
			}
		}
		txns[i] = core.T(core.TxnID(i+1), ops...)
	}
	ts := core.MustTxnSet(txns...)
	sp := core.NewSpec(ts)
	for _, a := range txns {
		for _, b := range txns {
			if a.ID == b.ID {
				continue
			}
			for p := 0; p+1 < a.Len(); p++ {
				if rng.Intn(3) == 0 {
					if err := sp.CutAfter(a.ID, b.ID, p); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	// Random interleaving.
	cursors := make([]int, nTxn)
	ops := make([]core.Op, 0, ts.NumOps())
	for len(ops) < ts.NumOps() {
		k := rng.Intn(nTxn)
		if cursors[k] == txns[k].Len() {
			continue
		}
		ops = append(ops, txns[k].Op(cursors[k]))
		cursors[k]++
	}
	return ts, sp, core.MustSchedule(ts, ops)
}

// admits replays s through p, committing each transaction after its
// final operation, and reports whether every operation was granted.
func admits(p sched.Protocol, s *core.Schedule) bool {
	ts := s.Set()
	for _, tx := range ts.Txns() {
		p.Begin(int64(tx.ID), tx)
	}
	executed := make(map[core.TxnID]int)
	for pos := 0; pos < s.Len(); pos++ {
		op := s.At(pos)
		tx := ts.Txn(op.Txn)
		req := sched.OpRequest{Instance: int64(op.Txn), Program: tx, Seq: executed[op.Txn], Op: op}
		if p.Request(req) != sched.Grant {
			return false
		}
		executed[op.Txn]++
		if executed[op.Txn] == tx.Len() {
			p.Commit(int64(op.Txn))
		}
	}
	return true
}

func TestPropertyRSGTMatchesTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 400; trial++ {
		_, sp, s := genSchedInstance(rng)
		offline := core.IsRelativelySerializable(s, sp)
		online := admits(sched.NewRSGT(sched.SpecOracle{Spec: sp}), s)
		if offline != online {
			t.Fatalf("trial %d: offline=%v online=%v\nschedule: %s\nspec:\n%s",
				trial, offline, online, s, sp)
		}
	}
}

func TestPropertySGTMatchesConflictSerializability(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 400; trial++ {
		_, _, s := genSchedInstance(rng)
		offline := core.IsConflictSerializable(s)
		online := admits(sched.NewSGT(), s)
		if offline != online {
			t.Fatalf("trial %d: offline=%v online=%v\nschedule: %s", trial, offline, online, s)
		}
	}
}

func TestPropertyRSGTAbsoluteEqualsSGT(t *testing.T) {
	// Under the absolute oracle the two protocols accept exactly the
	// same schedules (the online face of Lemma 1).
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 300; trial++ {
		_, _, s := genSchedInstance(rng)
		rsgt := admits(sched.NewRSGT(sched.AbsoluteOracle{}), s)
		sgt := admits(sched.NewSGT(), s)
		if rsgt != sgt {
			t.Fatalf("trial %d: rsgt=%v sgt=%v on %s", trial, rsgt, sgt, s)
		}
	}
}

func TestPropertyRSGTMonotoneInSpec(t *testing.T) {
	// Finer units never shrink the admitted set: everything RSGT
	// admits under absolute atomicity it also admits under any
	// relaxation. (The offline classes have the same monotonicity.)
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 300; trial++ {
		_, sp, s := genSchedInstance(rng)
		absOK := admits(sched.NewRSGT(sched.AbsoluteOracle{}), s)
		if !absOK {
			continue
		}
		if !admits(sched.NewRSGT(sched.SpecOracle{Spec: sp}), s) {
			t.Fatalf("trial %d: admitted under absolute but rejected under relaxed spec\nschedule: %s\nspec:\n%s", trial, s, sp)
		}
	}
}

func TestRSGTPruningBoundsGraph(t *testing.T) {
	// Sequential (non-overlapping) transactions must be pruned as they
	// commit: the incremental graph's live vertex count stays bounded
	// while hundreds of transactions stream through. We observe this
	// indirectly: the replay stays fast and admits everything.
	p := sched.NewRSGT(sched.AbsoluteOracle{})
	for i := 1; i <= 500; i++ {
		tx := core.T(core.TxnID(i), core.R("x"), core.W("x"))
		p.Begin(int64(i), tx)
		for seq := 0; seq < 2; seq++ {
			req := sched.OpRequest{Instance: int64(i), Program: tx, Seq: seq, Op: tx.Op(seq)}
			if d := p.Request(req); d != sched.Grant {
				t.Fatalf("sequential txn %d op %d: %v", i, seq, d)
			}
		}
		p.Commit(int64(i))
	}
}

func TestPropertyTOAdmissionsAreSerializable(t *testing.T) {
	// Whatever basic T/O admits is conflict serializable: every granted
	// conflicting pair executes in ascending timestamp order, so the
	// serialization graph's arcs ascend timestamps.
	rng := rand.New(rand.NewSource(808))
	admitted := 0
	for trial := 0; trial < 400; trial++ {
		_, _, s := genSchedInstance(rng)
		if admits(sched.NewTO(), s) {
			admitted++
			if !core.IsConflictSerializable(s) {
				t.Fatalf("trial %d: T/O admitted a non-serializable schedule %s", trial, s)
			}
		}
	}
	if admitted == 0 {
		t.Fatal("T/O admitted nothing across 400 trials (generator broken?)")
	}
}

func TestPropertyRALAdmissionsAreRelativelySerializable(t *testing.T) {
	// RAL embeds the RSG, so anything it fully admits must pass the
	// offline Theorem 1 test. (RAL may also Block where RSGT would
	// grant, so it admits a subset — soundness is the property, not
	// equality.)
	rng := rand.New(rand.NewSource(909))
	admitted := 0
	for trial := 0; trial < 400; trial++ {
		_, sp, s := genSchedInstance(rng)
		if admits(sched.NewRAL(sched.SpecOracle{Spec: sp}), s) {
			admitted++
			if !core.IsRelativelySerializable(s, sp) {
				t.Fatalf("trial %d: RAL admitted a non-relatively-serializable schedule %s", trial, s)
			}
		}
	}
	if admitted == 0 {
		t.Fatal("RAL admitted nothing across 400 trials")
	}
}
