package spec_test

import (
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
	"relser/internal/spec"
)

func threeTxns(t *testing.T) *core.TxnSet {
	t.Helper()
	return core.MustTxnSet(
		core.T(1, core.R("a"), core.W("a")),
		core.T(2, core.R("b"), core.W("b")),
		core.T(3, core.R("c"), core.W("c")),
	)
}

func TestCompatibilitySets(t *testing.T) {
	ts := threeTxns(t)
	sp, err := spec.CompatibilitySets(ts, [][]core.TxnID{{1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	// Same set: fully interleavable both ways.
	if sp.NumUnits(1, 2) != 2 || sp.NumUnits(2, 1) != 2 {
		t.Error("same-set pairs should be fully split")
	}
	// Different sets: absolute.
	if sp.NumUnits(1, 3) != 1 || sp.NumUnits(3, 1) != 1 || sp.NumUnits(3, 2) != 1 {
		t.Error("cross-set pairs should be absolute")
	}
}

func TestCompatibilitySetsValidation(t *testing.T) {
	ts := threeTxns(t)
	cases := []struct {
		name   string
		groups [][]core.TxnID
		want   string
	}{
		{"unknown txn", [][]core.TxnID{{1, 2, 9}, {3}}, "unknown transaction"},
		{"duplicate", [][]core.TxnID{{1, 2}, {2, 3}}, "appears in compatibility sets"},
		{"missing", [][]core.TxnID{{1, 2}}, "in no compatibility set"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := spec.CompatibilitySets(ts, tc.groups)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestCompatibilitySetsSemantics(t *testing.T) {
	// Garcia-Molina semantics: schedules interleaving same-set
	// transactions arbitrarily are relatively atomic; interleaving
	// cross-set transactions is rejected.
	ts := core.MustTxnSet(
		core.T(1, core.R("a"), core.W("a")),
		core.T(2, core.R("b"), core.W("b")),
		core.T(3, core.R("c"), core.W("c")),
	)
	sp, err := spec.CompatibilitySets(ts, [][]core.TxnID{{1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	okSched, err := core.ParseSchedule(ts, "r1[a] r2[b] w1[a] w2[b] r3[c] w3[c]")
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := core.IsRelativelyAtomic(okSched, sp); !ok {
		t.Errorf("same-set interleaving must be relatively atomic: %v", v)
	}
	badSched, err := core.ParseSchedule(ts, "r1[a] r3[c] w1[a] w3[c] r2[b] w2[b]")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := core.IsRelativelyAtomic(badSched, sp); ok {
		t.Error("cross-set interleaving must violate relative atomicity")
	}
}

func TestBreakpoints(t *testing.T) {
	ts := threeTxns(t)
	sp := core.NewSpec(ts)
	if err := spec.Breakpoints(sp, 1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if sp.NumUnits(1, 2) != 2 || sp.NumUnits(1, 3) != 1 {
		t.Error("breakpoint should affect only the named pair")
	}
	if err := spec.Breakpoints(sp, 1, 2, 99); err == nil {
		t.Error("out-of-range breakpoint accepted")
	}
}

func TestUniformBreakpoints(t *testing.T) {
	ts := threeTxns(t)
	sp := core.NewSpec(ts)
	if err := spec.UniformBreakpoints(sp, 1, 0); err != nil {
		t.Fatal(err)
	}
	if sp.NumUnits(1, 2) != 2 || sp.NumUnits(1, 3) != 2 {
		t.Error("uniform breakpoints should affect all observers")
	}
	if sp.NumUnits(2, 1) != 1 {
		t.Error("uniform breakpoints must not affect other transactions")
	}
}

func TestMultilevelCompile(t *testing.T) {
	ts := threeTxns(t)
	// Hierarchy: root( team(T1, T2), T3 ). Within the team T1 exposes a
	// breakpoint after its first operation; to outsiders it is atomic.
	m := &spec.Multilevel{
		Set:  ts,
		Root: spec.Group("root", spec.Group("team", spec.Leaf(1), spec.Leaf(2)), spec.Leaf(3)),
		Cuts: map[core.TxnID][][]int{
			1: {0: nil, 1: {1}}, // depth 0 (vs T3): atomic; depth 1 (vs T2): cut at 1
		},
	}
	sp, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumUnits(1, 2) != 2 {
		t.Errorf("NumUnits(1,2) = %d, want 2 (team-level cut)", sp.NumUnits(1, 2))
	}
	if sp.NumUnits(1, 3) != 1 {
		t.Errorf("NumUnits(1,3) = %d, want 1 (atomic to outsiders)", sp.NumUnits(1, 3))
	}
	if sp.NumUnits(2, 1) != 1 || sp.NumUnits(3, 1) != 1 {
		t.Error("unspecified transactions default to atomic")
	}
}

func TestMultilevelNestingViolation(t *testing.T) {
	ts := threeTxns(t)
	m := &spec.Multilevel{
		Set:  ts,
		Root: spec.Group("root", spec.Group("team", spec.Leaf(1), spec.Leaf(2)), spec.Leaf(3)),
		Cuts: map[core.TxnID][][]int{
			// Coarser at deeper level: cut at depth 0 missing from depth 1.
			1: {0: {1}, 1: nil},
		},
	}
	if _, err := m.Compile(); err == nil || !strings.Contains(err.Error(), "nesting violated") {
		t.Errorf("err = %v, want nesting violation", err)
	}
}

func TestMultilevelTreeValidation(t *testing.T) {
	ts := threeTxns(t)
	cases := []struct {
		name string
		m    *spec.Multilevel
		want string
	}{
		{"no root", &spec.Multilevel{Set: ts}, "no root"},
		{"missing txn", &spec.Multilevel{Set: ts, Root: spec.Group("r", spec.Leaf(1), spec.Leaf(2))}, "missing from hierarchy"},
		{"duplicate leaf", &spec.Multilevel{Set: ts, Root: spec.Group("r", spec.Leaf(1), spec.Leaf(1), spec.Leaf(2), spec.Leaf(3))}, "two leaves"},
		{"unknown leaf", &spec.Multilevel{Set: ts, Root: spec.Group("r", spec.Leaf(1), spec.Leaf(2), spec.Leaf(3), spec.Leaf(9))}, "unknown transaction"},
		{"leaf without txn", &spec.Multilevel{Set: ts, Root: spec.Group("r", spec.Group("empty"), spec.Leaf(1), spec.Leaf(2), spec.Leaf(3))}, "leaf without transaction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.m.Compile()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestMultilevelString(t *testing.T) {
	ts := threeTxns(t)
	m := &spec.Multilevel{
		Set:  ts,
		Root: spec.Group("root", spec.Group("team", spec.Leaf(1), spec.Leaf(2)), spec.Leaf(3)),
	}
	out := m.String()
	for _, want := range []string{"root", "team", "T1", "T3"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

// TestE11CompatibilitySetsAreMultilevelExpressible: Garcia-Molina's
// model is a special case of Lynch's, which is a special case of
// relative atomicity (§1).
func TestE11CompatibilitySetsAreMultilevelExpressible(t *testing.T) {
	ts := threeTxns(t)
	sp, err := spec.CompatibilitySets(ts, [][]core.TxnID{{1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	ok, m := spec.MultilevelExpressible(sp)
	if !ok {
		t.Fatal("compatibility sets must be multilevel expressible")
	}
	// The found hierarchy must compile back to the same specification.
	back, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != sp.String() {
		t.Errorf("recompiled spec differs:\n%s\nwant:\n%s", back, sp)
	}
}

// TestE11CyclicSpecNotMultilevelExpressible constructs the §4 claim:
// a relative atomicity specification no hierarchy can realize. Each
// transaction is fine-grained to exactly one other in a 3-cycle
// (T1 fine to T2, T2 fine to T3, T3 fine to T1), forcing contradictory
// LCA depths.
func TestE11CyclicSpecNotMultilevelExpressible(t *testing.T) {
	ts := threeTxns(t)
	sp := core.NewSpec(ts)
	for _, pair := range [][2]core.TxnID{{1, 2}, {2, 3}, {3, 1}} {
		if err := sp.AllowAll(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	if ok, m := spec.MultilevelExpressible(sp); ok {
		t.Errorf("cyclic fine-grainedness should not be multilevel expressible; got hierarchy:\n%s", m)
	}
}

// TestE11Figure1NotMultilevelExpressible: the paper's own running
// example (Figure 1) already exceeds Lynch's model — T2 presents
// different atomic units to T1 and T3 even though any 3-leaf hierarchy
// forces at least one transaction to see two others at the same depth
// with incompatible unit structures.
func TestE11Figure1NotMultilevelExpressible(t *testing.T) {
	inst := paperfig.Figure1()
	if ok, m := spec.MultilevelExpressible(inst.Spec); ok {
		t.Errorf("Figure 1's specification should not be multilevel expressible; got:\n%s", m)
	}
}

func TestMultilevelExpressibleAbsolute(t *testing.T) {
	// Absolute atomicity is trivially expressible (flat hierarchy, no
	// cuts).
	ts := threeTxns(t)
	ok, m := spec.MultilevelExpressible(core.NewSpec(ts))
	if !ok {
		t.Fatal("absolute atomicity must be expressible")
	}
	back, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsAbsolute() {
		t.Error("recompiled hierarchy should be absolute")
	}
}

func TestMultilevelExpressibleFigure4(t *testing.T) {
	// Figure 4's spec: T2, T3, T4 each split relative to the two others
	// of {T2,T3,T4} except symmetric absolutes toward T1... decide and,
	// if expressible, verify the round trip (the answer itself is part
	// of E11's report).
	inst := paperfig.Figure4()
	ok, m := spec.MultilevelExpressible(inst.Spec)
	if ok {
		back, err := m.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if back.String() != inst.Spec.String() {
			t.Errorf("hierarchy found but recompilation differs:\n%s\nwant:\n%s", back, inst.Spec)
		}
	}
}
