// Package spec provides higher-level front-ends that compile into the
// general relative atomicity specifications of internal/core,
// reproducing the related-work models §1 and §4 of the paper compare
// against:
//
//   - Garcia-Molina's compatibility sets [Gar83]: transactions in the
//     same set interleave arbitrarily; transactions in different sets
//     observe each other as single atomic units.
//   - Lynch's multilevel (hierarchical) atomicity [Lyn83]: transactions
//     are the leaves of a hierarchy; a transaction's atomic units
//     relative to another are determined by their lowest common
//     ancestor, with finer units for closer relatives.
//   - Farrag and Özsu's breakpoints [FÖ89]: per-observer cut positions,
//     a thin convenience over core.Spec.CutAfter.
//
// The package also decides *expressibility*: MultilevelExpressible
// reports whether a general relative atomicity specification can be
// realized by any multilevel hierarchy, witnessing the paper's claim
// that "it is easy to construct examples that can be specified using
// relative atomicity but cannot be specified using multilevel
// atomicity" (§4).
package spec

import (
	"fmt"

	"relser/internal/core"
)

// CompatibilitySets compiles Garcia-Molina's model: groups partitions
// the transaction IDs of ts; members of one group are fully
// interleavable with each other, and transactions in different groups
// are mutually absolute. Every transaction must appear in exactly one
// group.
func CompatibilitySets(ts *core.TxnSet, groups [][]core.TxnID) (*core.Spec, error) {
	seen := make(map[core.TxnID]int)
	for gi, g := range groups {
		for _, id := range g {
			if !ts.Has(id) {
				return nil, fmt.Errorf("spec: compatibility set %d names unknown transaction T%d", gi, id)
			}
			if prev, dup := seen[id]; dup {
				return nil, fmt.Errorf("spec: transaction T%d appears in compatibility sets %d and %d", id, prev, gi)
			}
			seen[id] = gi
		}
	}
	for _, t := range ts.Txns() {
		if _, ok := seen[t.ID]; !ok {
			return nil, fmt.Errorf("spec: transaction T%d is in no compatibility set", t.ID)
		}
	}
	sp := core.NewSpec(ts)
	for _, ti := range ts.Txns() {
		for _, tj := range ts.Txns() {
			if ti.ID == tj.ID {
				continue
			}
			if seen[ti.ID] == seen[tj.ID] {
				if err := sp.AllowAll(ti.ID, tj.ID); err != nil {
					return nil, err
				}
			}
			// Different sets: absolute atomicity, the default.
		}
	}
	return sp, nil
}

// Breakpoints applies Farrag-Özsu style breakpoints: Ti gains a unit
// boundary after each listed operation index, as observed by Tj.
func Breakpoints(sp *core.Spec, i, j core.TxnID, after ...int) error {
	for _, seq := range after {
		if err := sp.CutAfter(i, j, seq); err != nil {
			return err
		}
	}
	return nil
}

// UniformBreakpoints gives Ti the same unit boundaries relative to
// every other transaction in the set — the common case where a
// transaction type's breakpoints do not depend on the observer.
func UniformBreakpoints(sp *core.Spec, i core.TxnID, after ...int) error {
	for _, t := range sp.Set().Txns() {
		if t.ID == i {
			continue
		}
		if err := Breakpoints(sp, i, t.ID, after...); err != nil {
			return err
		}
	}
	return nil
}
