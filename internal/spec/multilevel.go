package spec

import (
	"fmt"
	"sort"
	"strings"

	"relser/internal/core"
)

// Node is one vertex of a multilevel atomicity hierarchy [Lyn83].
// Leaves carry a transaction ID; internal nodes group subtrees. The
// deeper the lowest common ancestor of two transactions, the finer the
// atomic units they present to each other.
type Node struct {
	// Txn is the transaction at this leaf; zero for internal nodes.
	Txn core.TxnID
	// Children are the subtrees of an internal node.
	Children []*Node
	// Name optionally labels the node for diagnostics ("team-A").
	Name string
}

// Leaf returns a leaf node for the transaction.
func Leaf(id core.TxnID) *Node { return &Node{Txn: id} }

// Group returns an internal node over the given subtrees.
func Group(name string, children ...*Node) *Node {
	return &Node{Name: name, Children: children}
}

// Multilevel is a complete multilevel atomicity specification: a
// hierarchy over the transaction set plus, for every transaction, its
// unit boundaries ("breakpoints") at each depth of its root path.
// Boundaries must be nested: the cut set at depth d+1 contains the cut
// set at depth d (closer relatives may interleave at least as freely).
type Multilevel struct {
	Set  *core.TxnSet
	Root *Node
	// Cuts[id][d] lists Ti's unit boundaries exposed to transactions
	// whose lowest common ancestor with Ti sits at depth d (root = 0).
	// A missing entry means no boundaries (single atomic unit).
	Cuts map[core.TxnID][][]int
}

// Compile checks the hierarchy and nesting constraints and produces
// the equivalent general relative atomicity specification:
// Atomicity(Ti, Tj) uses Ti's cuts at depth(LCA(Ti, Tj)).
func (m *Multilevel) Compile() (*core.Spec, error) {
	_, leafPath, err := m.validateTree()
	if err != nil {
		return nil, err
	}
	// Validate nesting per transaction.
	for id, byDepth := range m.Cuts {
		if !m.Set.Has(id) {
			return nil, fmt.Errorf("spec: multilevel cuts name unknown transaction T%d", id)
		}
		var prev []int
		for d := 0; d < len(byDepth); d++ {
			cur := byDepth[d]
			if !subsetOf(prev, cur) {
				return nil, fmt.Errorf("spec: T%d's cuts at depth %d do not contain its cuts at depth %d (multilevel nesting violated)", id, d, d-1)
			}
			prev = cur
		}
	}
	sp := core.NewSpec(m.Set)
	for _, ti := range m.Set.Txns() {
		for _, tj := range m.Set.Txns() {
			if ti.ID == tj.ID {
				continue
			}
			d := lcaDepth(leafPath[ti.ID], leafPath[tj.ID])
			for _, cut := range m.cutsAt(ti.ID, d) {
				if err := sp.CutAfter(ti.ID, tj.ID, cut-1); err != nil {
					return nil, fmt.Errorf("spec: T%d cuts at depth %d: %v", ti.ID, d, err)
				}
			}
		}
	}
	return sp, nil
}

// cutsAt returns Ti's cut positions for an LCA at the given depth; a
// transaction with no entry at that depth inherits its deepest
// shallower entry (nesting makes the deepest defined prefix correct).
func (m *Multilevel) cutsAt(id core.TxnID, depth int) []int {
	byDepth := m.Cuts[id]
	for d := depth; d >= 0; d-- {
		if d < len(byDepth) && byDepth[d] != nil {
			return byDepth[d]
		}
	}
	return nil
}

// validateTree checks that every transaction appears at exactly one
// leaf and returns node depths and root paths.
func (m *Multilevel) validateTree() (map[*Node]int, map[core.TxnID][]*Node, error) {
	if m.Root == nil {
		return nil, nil, fmt.Errorf("spec: multilevel hierarchy has no root")
	}
	depthOf := make(map[*Node]int)
	leafPath := make(map[core.TxnID][]*Node)
	var walk func(n *Node, depth int, path []*Node) error
	walk = func(n *Node, depth int, path []*Node) error {
		depthOf[n] = depth
		path = append(path, n)
		if len(n.Children) == 0 {
			if n.Txn == 0 {
				return fmt.Errorf("spec: leaf without transaction at depth %d", depth)
			}
			if !m.Set.Has(n.Txn) {
				return fmt.Errorf("spec: hierarchy leaf names unknown transaction T%d", n.Txn)
			}
			if _, dup := leafPath[n.Txn]; dup {
				return fmt.Errorf("spec: transaction T%d appears at two leaves", n.Txn)
			}
			leafPath[n.Txn] = append([]*Node(nil), path...)
			return nil
		}
		if n.Txn != 0 {
			return fmt.Errorf("spec: internal node carries transaction T%d", n.Txn)
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1, path); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(m.Root, 0, nil); err != nil {
		return nil, nil, err
	}
	for _, t := range m.Set.Txns() {
		if _, ok := leafPath[t.ID]; !ok {
			return nil, nil, fmt.Errorf("spec: transaction T%d missing from hierarchy", t.ID)
		}
	}
	return depthOf, leafPath, nil
}

func lcaDepth(a, b []*Node) int {
	d := 0
	for d < len(a) && d < len(b) && a[d] == b[d] {
		d++
	}
	return d - 1 // depth of last common node
}

func subsetOf(sub, super []int) bool {
	set := make(map[int]bool, len(super))
	for _, c := range super {
		set[c] = true
	}
	for _, c := range sub {
		if !set[c] {
			return false
		}
	}
	return true
}

// String renders the hierarchy for diagnostics.
func (m *Multilevel) String() string {
	var sb strings.Builder
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		if len(n.Children) == 0 {
			fmt.Fprintf(&sb, "%sT%d\n", indent, int(n.Txn))
			return
		}
		name := n.Name
		if name == "" {
			name = "·"
		}
		fmt.Fprintf(&sb, "%s%s\n", indent, name)
		for _, c := range n.Children {
			walk(c, indent+"  ")
		}
	}
	walk(m.Root, "")
	return sb.String()
}

// MultilevelExpressible decides whether a general relative atomicity
// specification can be realized by some multilevel hierarchy: a rooted
// tree over the transactions such that (a) for each Ti, all Tj sharing
// the same lowest common ancestor with Ti see identical atomic units of
// Ti, and (b) units get finer (cut sets grow) as the LCA gets deeper.
// The search enumerates hierarchical partitions, so it is intended for
// the small instances of the paper's examples. On success it returns a
// realizing hierarchy.
func MultilevelExpressible(sp *core.Spec) (bool, *Multilevel) {
	ts := sp.Set()
	ids := make([]core.TxnID, 0, ts.NumTxns())
	for _, t := range ts.Txns() {
		ids = append(ids, t.ID)
	}
	if len(ids) == 1 {
		m := &Multilevel{Set: ts, Root: Leaf(ids[0]), Cuts: map[core.TxnID][][]int{}}
		return true, m
	}
	cutKey := func(i, j core.TxnID) string {
		n := sp.NumUnits(i, j)
		parts := make([]string, 0, n)
		for k := 0; k < n-1; k++ {
			_, e := sp.Unit(i, j, k)
			parts = append(parts, fmt.Sprint(e+1))
		}
		return strings.Join(parts, ",")
	}
	cutsOf := func(i, j core.TxnID) []int {
		n := sp.NumUnits(i, j)
		out := make([]int, 0, n-1)
		for k := 0; k < n-1; k++ {
			_, e := sp.Unit(i, j, k)
			out = append(out, e+1)
		}
		return out
	}
	var found *Node
	// check validates conditions (a) and (b) for a candidate full tree.
	check := func(root *Node) bool {
		m := &Multilevel{Set: ts, Root: root}
		_, leafPath, err := m.validateTree()
		if err != nil {
			return false
		}
		for _, ti := range ids {
			byDepth := make(map[int]string)
			for _, tj := range ids {
				if ti == tj {
					continue
				}
				d := lcaDepth(leafPath[ti], leafPath[tj])
				key := cutKey(ti, tj)
				if prev, ok := byDepth[d]; ok && prev != key {
					return false // (a) violated
				}
				byDepth[d] = key
			}
			// (b): cuts must be nested as depth increases.
			depths := make([]int, 0, len(byDepth))
			for d := range byDepth {
				depths = append(depths, d)
			}
			sort.Ints(depths)
			for k := 1; k < len(depths); k++ {
				var shallow, deep []int
				for _, tj := range ids {
					if tj == ti {
						continue
					}
					d := lcaDepth(leafPath[ti], leafPath[tj])
					if d == depths[k-1] {
						shallow = cutsOf(ti, tj)
					}
					if d == depths[k] {
						deep = cutsOf(ti, tj)
					}
				}
				if !subsetOf(shallow, deep) {
					return false
				}
			}
		}
		return true
	}
	// Enumerate hierarchies: a hierarchy over a member set is either a
	// single leaf, or a partition into >= 2 blocks each carrying a
	// sub-hierarchy. Enumeration is exponential; instance sizes here
	// are the paper's (3-5 transactions).
	var build func(members []core.TxnID, done func(*Node) bool) bool
	build = func(members []core.TxnID, done func(*Node) bool) bool {
		if len(members) == 1 {
			return done(Leaf(members[0]))
		}
		blocksList := partitions(members)
		for _, blocks := range blocksList {
			if len(blocks) < 2 {
				continue
			}
			node := &Node{}
			var fill func(k int) bool
			fill = func(k int) bool {
				if k == len(blocks) {
					return done(node)
				}
				return build(blocks[k], func(child *Node) bool {
					node.Children = append(node.Children, child)
					if fill(k + 1) {
						return true
					}
					node.Children = node.Children[:len(node.Children)-1]
					return false
				})
			}
			if fill(0) {
				return true
			}
		}
		return false
	}
	ok := build(ids, func(root *Node) bool {
		if check(root) {
			found = root
			return true
		}
		return false
	})
	if !ok {
		return false, nil
	}
	// Reconstruct the cut tables from the spec for the found tree.
	m := &Multilevel{Set: ts, Root: found, Cuts: make(map[core.TxnID][][]int)}
	_, leafPath, err := m.validateTree()
	if err != nil {
		return false, nil
	}
	for _, ti := range ids {
		maxDepth := 0
		for _, tj := range ids {
			if ti == tj {
				continue
			}
			if d := lcaDepth(leafPath[ti], leafPath[tj]); d > maxDepth {
				maxDepth = d
			}
		}
		byDepth := make([][]int, maxDepth+1)
		for _, tj := range ids {
			if ti == tj {
				continue
			}
			d := lcaDepth(leafPath[ti], leafPath[tj])
			byDepth[d] = cutsOf(ti, tj)
		}
		m.Cuts[ti] = byDepth
	}
	return true, m
}

// partitions enumerates all set partitions of members (including the
// trivial one-block partition, which callers skip).
func partitions(members []core.TxnID) [][][]core.TxnID {
	if len(members) == 0 {
		return [][][]core.TxnID{{}}
	}
	head, rest := members[0], members[1:]
	var out [][][]core.TxnID
	for _, sub := range partitions(rest) {
		// Insert head into each existing block.
		for i := range sub {
			blocks := make([][]core.TxnID, len(sub))
			for k := range sub {
				blocks[k] = append([]core.TxnID(nil), sub[k]...)
			}
			blocks[i] = append(blocks[i], head)
			out = append(out, blocks)
		}
		// Or as its own block.
		blocks := make([][]core.TxnID, len(sub), len(sub)+1)
		for k := range sub {
			blocks[k] = append([]core.TxnID(nil), sub[k]...)
		}
		blocks = append(blocks, []core.TxnID{head})
		out = append(out, blocks)
	}
	return out
}
