package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"relser/internal/metrics"
	"relser/internal/record"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

// runE19 certifies the record/replay harness (internal/record, rssim
// -record, rsreplay) end to end:
//
//   - Determinism: every recorded run on the tick driver — clean, under
//     WAL chaos, under an abort storm — replays byte-identically after a
//     round trip through the .rsrec codec: same verdict, same fault
//     schedule and fingerprint, same WAL bytes, same stage log, same
//     final store.
//   - Incident time-travel: a recorded watchdog wedge (rate-1 shard
//     wedge on the goroutine driver) replays as the same incident class
//     — the artifact alone reproduces the outage.
//   - Backfill: replaying recorded relative-atomicity traffic under the
//     absolute spec yields a non-empty divergence report, and the
//     report is stable across repeated backfills — the counterfactual
//     is an answer, not noise.
//   - Overhead: the recording tap (stage log + snapshot + hashing +
//     encode) costs <5% wall time over the identical untapped run.
func runE19(opts Options) (*Report, error) {
	rep := &Report{}
	//rsvet:allow ctxflow -- experiment entry point: runE19 is the lifecycle root for this run
	ctx := context.Background()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	if err := replayMatrix(ctx, rep, opts); err != nil {
		return nil, err
	}
	if err := replayWedge(ctx, rep, opts); err != nil {
		return nil, err
	}
	if err := replayBackfill(ctx, rep, opts); err != nil {
		return nil, err
	}
	if err := replayOverhead(ctx, rep, opts); err != nil {
		return nil, err
	}
	rep.AddNote("reproduce any row from the shell: rssim -workload banking -protocol <p> -seed <s> [-faults '<spec>' -wal f.wal] -record run.rsrec, then rsreplay -in run.rsrec (exit 0 identical, 3 divergence, 4 unreadable)")
	return rep, nil
}

// replayMatrix records deterministic banking runs across fault mixes,
// protocols and seeds, round-trips each artifact through the codec, and
// replays it expecting byte identity.
func replayMatrix(ctx context.Context, rep *Report, opts Options) error {
	mixes := []struct {
		name string
		spec string
	}{
		{"clean", ""},
		{"wal-chaos", "wal.torn:0.004,wal.corrupt:0.003,wal.crash:0.002"},
		{"abort-storm", "txn.abort:0.3"},
	}
	protocols := []string{"s2pl", "rsgt", "to"}
	seeds := 3
	if opts.Quick {
		protocols = []string{"rsgt", "to"}
		seeds = 2
	}
	tb := metrics.NewTable("Record -> replay byte identity (banking, deterministic driver, single-lane WAL)",
		"faults", "protocol", "seed", "outcome", "committed", "stages", "artifact bytes", "identical")
	all := true
	for _, mix := range mixes {
		for _, proto := range protocols {
			for s := 0; s < seeds; s++ {
				seed := opts.Seed + int64(s)
				m := record.Manifest{
					Workload:    workload.BuildParams{Name: "banking", Seed: seed, Crossing: true},
					Protocol:    proto,
					Seed:        seed,
					MPL:         8,
					MaxRestarts: 100000,
					WALMode:     "single",
				}
				if mix.spec != "" {
					m.FaultSpec = mix.spec
					m.FaultSeed = seed
				}
				rr, err := record.Record(ctx, m)
				if err != nil {
					return fmt.Errorf("record %s/%s seed %d: %v", mix.name, proto, seed, err)
				}
				raw := rr.Encode()
				rec, err := record.Decode(raw)
				if err != nil {
					return fmt.Errorf("decode %s/%s seed %d: %v", mix.name, proto, seed, err)
				}
				report, err := record.Replay(ctx, rec, record.ReplayOptions{})
				if err != nil {
					return fmt.Errorf("replay %s/%s seed %d: %v", mix.name, proto, seed, err)
				}
				if !report.Identical || !report.Deterministic {
					all = false
				}
				tb.AddRow(mix.name, proto, seed, rec.Outcome.Outcome, rec.Outcome.Committed,
					len(rec.Stages), len(raw), boolMark(report.Identical))
			}
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.AddClaim(all, "every deterministic recording replays byte-identically after a codec round trip: outcome, verdict, fault schedule, WAL bytes, stage log and final store all match")
	return nil
}

// replayWedge records a rate-1 shard wedge on the goroutine driver (the
// E16 wedge leg) and replays the artifact: the run is nondeterministic,
// so identity is owed at incident-class level — the replay must wedge
// too.
func replayWedge(ctx context.Context, rep *Report, opts Options) error {
	m := record.Manifest{
		Workload:   workload.BuildParams{Name: "banking", Seed: opts.Seed},
		Protocol:   "nocc",
		Seed:       opts.Seed,
		MPL:        4,
		Shards:     opts.Shards,
		Concurrent: true,
		Watchdog:   300 * time.Millisecond,
		FaultSpec:  "shard.wedge:1",
		FaultSeed:  opts.Seed,
	}
	rr, err := record.Record(ctx, m)
	if err != nil {
		return fmt.Errorf("record wedge: %v", err)
	}
	rec, err := record.Decode(rr.Encode())
	if err != nil {
		return fmt.Errorf("decode wedge: %v", err)
	}
	report, err := record.Replay(ctx, rec, record.ReplayOptions{})
	if err != nil {
		return fmt.Errorf("replay wedge: %v", err)
	}
	ok := rec.Outcome.Outcome == "wedged" && report.Identical && !report.Deterministic
	rep.AddClaim(ok,
		"a recorded watchdog wedge replays as the same incident class (recorded %q, replayed %q) with the concurrent recording correctly downgraded to class-level comparison",
		rec.Outcome.Outcome, report.Replayed.Outcome)
	return nil
}

// replayBackfill replays recorded relative-atomicity traffic under the
// absolute spec, twice, expecting a non-empty divergence report that is
// identical across backfills.
func replayBackfill(ctx context.Context, rep *Report, opts Options) error {
	m := record.Manifest{
		// Seed 7 under rsgt at MPL 16 is a known-divergent cell: the
		// relative spec admits interleavings absolute atomicity rejects.
		Workload:    workload.BuildParams{Name: "banking", Seed: 7, Crossing: true},
		Protocol:    "rsgt",
		Seed:        7,
		MPL:         16,
		MaxRestarts: 100000,
		WALMode:     "single",
	}
	rr, err := record.Record(ctx, m)
	if err != nil {
		return fmt.Errorf("record backfill base: %v", err)
	}
	rec, err := record.Decode(rr.Encode())
	if err != nil {
		return fmt.Errorf("decode backfill base: %v", err)
	}
	var reports [][]byte
	nonEmpty := true
	for i := 0; i < 2; i++ {
		report, err := record.Replay(ctx, rec, record.ReplayOptions{Spec: "absolute"})
		if err != nil {
			return fmt.Errorf("backfill %d: %v", i, err)
		}
		if report.Mode != "backfill" || report.Identical || len(report.Divergences) == 0 {
			nonEmpty = false
		}
		js, err := json.Marshal(report)
		if err != nil {
			return err
		}
		reports = append(reports, js)
	}
	stable := string(reports[0]) == string(reports[1])
	rep.AddClaim(nonEmpty && stable,
		"backfilling recorded relative-atomicity traffic under the absolute spec diverges (mode=backfill, non-empty report) and the report is byte-stable across repeated backfills")
	return nil
}

// replayOverhead times the identical deterministic run with and without
// the recording tap (tap cost = stage log + snapshot anchor + WAL and
// stage hashing + artifact encode) and bounds the overhead. Best-of-reps
// on both sides, the same discipline E17 uses for its plane overhead.
func replayOverhead(ctx context.Context, rep *Report, opts Options) error {
	scale := 32
	reps := 5
	if opts.Quick {
		scale = 4
		reps = 2
	}
	m := record.Manifest{
		Workload:    workload.BuildParams{Name: "synthetic", Seed: opts.Seed, Scale: scale, Granularity: 2},
		Protocol:    "s2pl",
		Seed:        opts.Seed,
		MPL:         16,
		MaxRestarts: 100000,
	}
	best := func(f func() error) (time.Duration, error) {
		bestD := time.Duration(0)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if d := time.Since(start); bestD == 0 || d < bestD {
				bestD = d
			}
		}
		return bestD, nil
	}
	// The untapped side is the same manifest driven directly — build,
	// protocol, tick driver, verify — with no recorder hooks attached;
	// the tapped side is record.Record plus the artifact encode.
	untappedRun := func() error {
		w, err := workload.Build(m.Workload)
		if err != nil {
			return err
		}
		p, err := sched.NewProtocol(m.Protocol, w.Oracle)
		if err != nil {
			return err
		}
		store := storage.NewStore()
		store.Load(w.Initial)
		r, err := txn.New(txn.Config{
			Protocol:    p,
			Programs:    w.Programs,
			Oracle:      w.Oracle,
			Store:       store,
			Semantics:   w.Semantics,
			MPL:         m.MPL,
			Seed:        m.Seed,
			MaxRestarts: m.MaxRestarts,
		})
		if err != nil {
			return err
		}
		res, err := r.RunContext(ctx)
		if err != nil {
			return err
		}
		return res.Verify()
	}
	tapped, err := best(func() error {
		r2, err := record.Record(ctx, m)
		if err != nil {
			return err
		}
		_ = r2.Encode()
		return nil
	})
	if err != nil {
		return err
	}
	untapped, err := best(untappedRun)
	if err != nil {
		return err
	}
	ratio := float64(tapped) / float64(untapped)
	tb := metrics.NewTable("Recording tap overhead (synthetic, deterministic driver, best of reps)",
		"mode", "wall", "vs untapped")
	tb.AddRow("untapped run (direct driver)", untapped.Round(time.Microsecond).String(), "1.00x")
	tb.AddRow("recorded run + encode", tapped.Round(time.Microsecond).String(), fmt.Sprintf("%.2fx", ratio))
	rep.Tables = append(rep.Tables, tb)
	if opts.Quick {
		rep.AddNote("quick mode reports the recording overhead without claiming it (%.2fx at reduced size); the <5%% budget is asserted on full-size runs", ratio)
	} else {
		rep.AddClaim(ratio <= 1.05,
			"capturing a run (stage log, snapshot anchor, hashing, artifact encode) costs <5%% wall time over the identical untapped execution (%.2fx)", ratio)
	}
	return nil
}
