package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"time"

	"relser/internal/core"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/workload"
)

// e20Soak is one measured soak leg: a window of live transactions
// streams through the certifier while history accumulates (or
// retires).
type e20Soak struct {
	maxLive  int     // peak RSG vertex count observed at sample points
	maxExec  int     // peak dependency-index entry count at sample points
	tput     float64 // certification requests per second
	retained uint64  // heap bytes retained across the run (post-GC delta)
	stats    sched.RetireStats
}

// e20Window is the live-transaction window the soak holds open; with
// retirement on, memory must track this window, not the soak length.
const e20Window = 8

// runE20 measures bounded-memory certification (ISSUE: epoch-based
// graph retirement + vector-clock fast path). Three cells:
//
//  1. Soak: a sliding window of e20Window live transactions, each
//     reading its predecessor's object and writing its own, streams
//     through RSGT. With retirement on, the graph and the dependency
//     index stay bounded by epoch thresholds regardless of soak length
//     and throughput stays flat; with retirement off, the graph holds
//     every vertex ever created (2 per transaction) and the
//     transitively-closed dependency bitsets make each request cost
//     O(history), so the off legs run at deliberately smaller sizes.
//  2. Fast-path hit rate on the E15 workload mix under RSGT through
//     the serial driver: >=90% of certification requests must avoid
//     the full cycle sweep.
//  3. Verdict equivalence: with retirement forced aggressive (a flush
//     after every commit), online RSGT must agree with the offline
//     Theorem 1 test and online SGT with the classical conflict-
//     serializability test on every random schedule.
func runE20(opts Options) (*Report, error) {
	rep := &Report{}

	onSizes := []int{250_000, 500_000, 1_000_000}
	offSizes := []int{15_000, 30_000, 60_000}
	if opts.Quick {
		onSizes = []int{5_000, 10_000, 20_000}
		offSizes = []int{1_000, 2_000, 4_000}
	}

	tb := metrics.NewTable("RSGT soak: sliding window of 8 live txns (chain workload)",
		"txns", "retire", "ops/sec", "peak vertices", "peak dep entries",
		"retired", "epochs", "rebases", "fastpath", "retained KB")
	row := func(n int, mode string, r e20Soak) {
		fp := "-"
		if r.stats.Enabled {
			fp = fmt.Sprintf("%.1f%%", 100*r.stats.HitRate())
		}
		tb.AddRow(n, mode, fmt.Sprintf("%.0f", r.tput), r.maxLive, r.maxExec,
			r.stats.RetiredVertices, r.stats.GraphEpochs, r.stats.Rebases, fp, r.retained/1024)
	}

	on := make([]e20Soak, len(onSizes))
	for i, n := range onSizes {
		on[i] = soakRSGT(n, true)
		row(n, "on", on[i])
	}
	off := make([]e20Soak, len(offSizes))
	for i, n := range offSizes {
		off[i] = soakRSGT(n, false)
		row(n, "off", off[i])
	}
	rep.Tables = append(rep.Tables, tb)

	// Bounded vs monotone growth — deterministic counters, not timing.
	bounded := true
	for i, r := range on {
		// Epoch thresholds cap the graph at the pending-queue trigger
		// (retire fires at 64 pending once they outnumber the live half)
		// and the dependency index at the rebase trigger (2x the 1024
		// entry floor), independent of soak length.
		if r.maxLive > 256 || r.maxExec > 4096 {
			bounded = false
			rep.AddNote("soak %d txns (on): peak vertices %d / dep entries %d exceed the epoch-threshold bound",
				onSizes[i], r.maxLive, r.maxExec)
		}
	}
	rep.AddClaim(bounded,
		"retirement on: peak graph size and dependency index stay under the epoch-threshold bounds (256 vertices, 4096 entries) at every soak length up to %d txns", onSizes[len(onSizes)-1])

	monotone := true
	for i, r := range off {
		if r.stats.LiveVertices != 2*offSizes[i] {
			monotone = false
		}
	}
	rep.AddClaim(monotone,
		"retirement off: the graph ends holding exactly 2 vertices per transaction at every size — memory grows linearly with history")

	allHits := true
	for _, r := range on {
		if r.stats.HitRate() < 0.99 {
			allHits = false
		}
	}
	rep.AddClaim(allHits,
		"retirement on: the vector-clock fast path certifies >=99%% of chain-soak requests without a cycle sweep (forward arcs never look like a cycle)")

	if !opts.Quick {
		first, last := on[0], on[len(on)-1]
		rep.AddClaim(last.tput >= 0.5*first.tput,
			"retirement on: throughput is flat across a %dx soak-length sweep (%.0f ops/sec at %d txns vs %.0f at %d)",
			onSizes[len(onSizes)-1]/onSizes[0], last.tput, onSizes[len(onSizes)-1], first.tput, onSizes[0])
	}

	// Cell 2: fast-path hit rate on the E15 mix, end to end through the
	// serial driver (engine Admit/Commit hooks feed the low-water mark).
	mixCfg := workload.SyntheticConfig{
		Objects:     512,
		Programs:    1024,
		OpsPerTxn:   16,
		WriteRatio:  0.25,
		Granularity: 0,
		HotFraction: 0,
	}
	if opts.Quick {
		mixCfg.Programs = 96
	}
	w, err := workload.Synthetic(mixCfg, opts.Seed)
	if err != nil {
		return nil, err
	}
	p, err := sched.NewProtocol("rsgt", w.Oracle)
	if err != nil {
		return nil, err
	}
	res, _, err := w.RunWith(p, workload.RunOptions{Seed: opts.Seed, MPL: 8, Timeout: opts.Timeout})
	if err != nil {
		return nil, fmt.Errorf("E15-mix run: %v", err)
	}
	ret := res.Retire
	mt := metrics.NewTable("E15 workload mix under RSGT (serial driver, retirement on)",
		"programs", "committed", "fastpath hits", "misses", "hit rate", "retired", "live after finalize")
	mt.AddRow(mixCfg.Programs, res.Committed, ret.FastPathHits, ret.FastPathMisses,
		fmt.Sprintf("%.1f%%", 100*ret.HitRate()), ret.RetiredVertices, ret.LiveVertices)
	rep.Tables = append(rep.Tables, mt)
	rep.AddClaim(ret.Enabled && ret.HitRate() >= 0.9,
		"the fast path certifies >=90%% of E15-mix requests (measured %.1f%%)", 100*ret.HitRate())
	rep.AddClaim(ret.LiveVertices == 0 && ret.PendingRetire == 0,
		"Finalize leaves no live or retirement-pending vertices behind")

	// Cell 3: verdict equivalence under aggressive retirement.
	trials := 2000
	if opts.Quick {
		trials = 300
	}
	rng := rand.New(rand.NewSource(opts.Seed + 20))
	rsgtAgree, sgtAgree, serializable := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		sp, s := randomSpecInstance(rng)
		if core.IsRelativelySerializable(s, sp) == admitsRetired(sched.NewRSGT(sched.SpecOracle{Spec: sp}), s) {
			rsgtAgree++
		}
		csr := core.IsConflictSerializable(s)
		if csr == admitsRetired(sched.NewSGT(), s) {
			sgtAgree++
		}
		if csr {
			serializable++
		}
	}
	et := metrics.NewTable("Verdict equivalence under aggressive retirement (flush after every commit)",
		"trials", "rsgt = Theorem 1", "sgt = conflict-serializable", "conflict-serializable", "not")
	et.AddRow(trials, rsgtAgree, sgtAgree, serializable, trials-serializable)
	rep.Tables = append(rep.Tables, et)
	rep.AddClaim(rsgtAgree == trials,
		"retired online RSGT agrees with the offline Theorem 1 test on all %d random schedules", trials)
	rep.AddClaim(sgtAgree == trials,
		"retired online SGT agrees with offline conflict serializability on all %d random schedules", trials)
	rep.AddClaim(serializable > 0 && serializable < trials,
		"the sample exercises both admissible and inadmissible schedules")

	rep.AddNote(fmt.Sprintf("retirement-off legs run at %dx smaller sizes: without retirement each request walks the transitively-closed dependency history, so cost and memory grow with every committed transaction", onSizes[0]/offSizes[0]))
	rep.AddNote("retained KB is the post-GC heap delta across each soak leg; it is reported as data (GC pacing is host-dependent), the memory claims rest on the deterministic vertex and entry counters")
	return rep, nil
}

// soakRSGT streams n chained transactions through RSGT with a sliding
// window of live instances, emulating the engine's low-water feed, and
// samples graph size along the way. Deterministic apart from timing.
func soakRSGT(n int, retire bool) e20Soak {
	p := sched.NewRSGT(sched.AbsoluteOracle{})
	p.SetRetirement(retire)
	obj := func(i int64) string { return "x" + strconv.FormatInt(i%257, 10) }

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	sample := n / 64
	if sample == 0 {
		sample = 1
	}
	var out e20Soak
	var live []int64
	start := time.Now()
	for i := int64(1); i <= int64(n); i++ {
		tx := core.T(core.TxnID(i), core.R(obj(i-1)), core.W(obj(i)))
		p.Begin(i, tx)
		live = append(live, i)
		for seq := 0; seq < tx.Len(); seq++ {
			p.Request(sched.OpRequest{Instance: i, Program: tx, Seq: seq, Op: tx.Op(seq)})
		}
		if len(live) >= e20Window {
			p.Commit(live[0])
			live = live[1:]
		}
		p.SetLowWater(i - e20Window)
		if i%int64(sample) == 0 {
			st := p.RetireStats()
			if v := st.LiveVertices + st.PendingRetire; v > out.maxLive {
				out.maxLive = v
			}
			if st.ExecEntries > out.maxExec {
				out.maxExec = st.ExecEntries
			}
		}
	}
	for _, id := range live {
		p.Commit(id)
	}
	wall := time.Since(start)
	out.tput = float64(2*n) / wall.Seconds()

	// Read the live graph size before the final flush: with retirement
	// off this is the monotone-growth evidence.
	out.stats = p.RetireStats()
	if st := out.stats; st.LiveVertices+st.PendingRetire > out.maxLive {
		out.maxLive = st.LiveVertices + st.PendingRetire
	}
	if out.stats.ExecEntries > out.maxExec {
		out.maxExec = out.stats.ExecEntries
	}
	p.FlushRetirement()
	if retire {
		out.stats = p.RetireStats()
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		out.retained = after.HeapAlloc - before.HeapAlloc
	}
	runtime.KeepAlive(p)
	return out
}

// randomSpecInstance builds a random transaction set, a random
// relative-atomicity spec over it (random unit cuts), and a random
// complete interleaving — the E10 generator extended with cuts so the
// RSG and the classical serialization graph genuinely diverge.
func randomSpecInstance(rng *rand.Rand) (*core.Spec, *core.Schedule) {
	objects := []string{"x", "y", "z"}
	nTxn := 2 + rng.Intn(3)
	txns := make([]*core.Transaction, nTxn)
	for i := range txns {
		nOps := 1 + rng.Intn(4)
		ops := make([]core.Op, nOps)
		for k := range ops {
			obj := objects[rng.Intn(len(objects))]
			if rng.Intn(2) == 0 {
				ops[k] = core.R(obj)
			} else {
				ops[k] = core.W(obj)
			}
		}
		txns[i] = core.T(core.TxnID(i+1), ops...)
	}
	ts := core.MustTxnSet(txns...)
	sp := core.NewSpec(ts)
	for _, a := range txns {
		for _, b := range txns {
			if a.ID == b.ID {
				continue
			}
			for pos := 0; pos+1 < a.Len(); pos++ {
				if rng.Intn(3) == 0 {
					if err := sp.CutAfter(a.ID, b.ID, pos); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	return sp, randomInterleaving(rng, ts)
}

// admitsRetired replays s through p with retirement enabled and a
// flush after every commit — the most aggressive pruning schedule the
// runtime can produce — and reports whether every op was granted.
func admitsRetired(p sched.Protocol, s *core.Schedule) bool {
	r := p.(sched.Retirer)
	r.SetRetirement(true)
	ts := s.Set()
	for _, tx := range ts.Txns() {
		p.Begin(int64(tx.ID), tx)
	}
	executed := make(map[core.TxnID]int)
	for pos := 0; pos < s.Len(); pos++ {
		op := s.At(pos)
		tx := ts.Txn(op.Txn)
		if p.Request(sched.OpRequest{Instance: int64(op.Txn), Program: tx, Seq: executed[op.Txn], Op: op}) != sched.Grant {
			return false
		}
		executed[op.Txn]++
		if executed[op.Txn] == tx.Len() {
			p.Commit(int64(op.Txn))
			r.FlushRetirement()
		}
	}
	return true
}
