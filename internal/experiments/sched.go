package experiments

import (
	"fmt"
	"strings"

	"relser/internal/core"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/workload"
)

// protocolFactories builds fresh protocol instances for a workload.
func protocolFactories(w *workload.Workload) []struct {
	name string
	make func() sched.Protocol
} {
	return []struct {
		name string
		make func() sched.Protocol
	}{
		{"s2pl", func() sched.Protocol { return sched.NewS2PL() }},
		{"altruistic", func() sched.Protocol { return sched.NewAltruistic(w.Oracle) }},
		{"to", func() sched.Protocol { return sched.NewTO() }},
		{"ral", func() sched.Protocol { return sched.NewRAL(w.Oracle) }},
		{"sgt", func() sched.Protocol { return sched.NewSGT() }},
		{"rsgt", func() sched.Protocol { return sched.NewRSGT(w.Oracle) }},
	}
}

type protoAgg struct {
	ticks, commits, aborts, blocks int
	runs                           int
	verified                       bool
}

// runE8 compares the online protocols on the banking workload across
// multiprogramming levels; every run's committed schedule is certified
// with the offline RSG test.
func runE8(opts Options) (*Report, error) {
	rep := &Report{}
	seeds := []int64{1, 2, 3, 4, 5}
	mpls := []int{2, 4, 8}
	cfg := workload.DefaultBankingConfig()
	cfg.Customers = 16
	cfg.CreditAudits = 4
	cfg.CrossingAudits = true
	if opts.Quick {
		seeds = []int64{1, 2}
		mpls = []int{4}
		cfg.Customers = 8
		cfg.CreditAudits = 2
	}
	tb := metrics.NewTable("Banking workload: protocol comparison",
		"mpl", "protocol", "commits/ktick", "ticks(avg)", "aborts(avg)", "blocks(avg)", "verified")
	type key struct {
		mpl  int
		name string
	}
	aggs := map[key]*protoAgg{}
	var order []key
	for _, mpl := range mpls {
		for _, seed := range seeds {
			w, err := workload.Banking(cfg, opts.Seed+seed)
			if err != nil {
				return nil, err
			}
			for _, pf := range protocolFactories(w) {
				res, _, err := w.RunWith(pf.make(), workload.RunOptions{
					Seed: seed, MPL: mpl, Tracer: opts.Tracer, Metrics: opts.Metrics,
					Obs: opts.Obs, Timeout: opts.Timeout, DisableRSGRetire: opts.DisableRSGRetire,
				})
				if err != nil {
					return nil, fmt.Errorf("%s mpl=%d seed=%d: %v", pf.name, mpl, seed, err)
				}
				k := key{mpl, pf.name}
				a := aggs[k]
				if a == nil {
					a = &protoAgg{verified: true}
					aggs[k] = a
					order = append(order, k)
				}
				a.runs++
				a.ticks += res.Ticks
				a.commits += res.Committed
				a.aborts += res.Aborts
				a.blocks += res.Blocks
				if err := res.Verify(); err != nil {
					a.verified = false
					rep.AddClaim(false, "%s mpl=%d seed=%d emitted a non-relatively-serializable schedule: %v", pf.name, mpl, seed, err)
				}
			}
		}
	}
	throughput := map[key]float64{}
	for _, k := range order {
		a := aggs[k]
		tput := 1000 * float64(a.commits) / float64(a.ticks)
		throughput[k] = tput
		tb.AddRow(k.mpl, k.name, tput, float64(a.ticks)/float64(a.runs),
			float64(a.aborts)/float64(a.runs), float64(a.blocks)/float64(a.runs), boolMark(a.verified))
	}
	rep.Tables = append(rep.Tables, tb)

	allVerified := true
	for _, a := range aggs {
		allVerified = allVerified && a.verified
	}
	rep.AddClaim(allVerified, "every committed schedule of every protocol run is relatively serializable (Theorem 1 certification)")
	topMPL := mpls[len(mpls)-1]
	rep.AddClaim(throughput[key{topMPL, "rsgt"}] > throughput[key{topMPL, "s2pl"}],
		"RSGT outperforms strict 2PL at mpl=%d on the banking mix (relative atomicity buys concurrency, §1)", topMPL)
	rep.AddNote("expected shape: rsgt ≥ sgt ≥ locking protocols in commits per tick as contention rises; absolute numbers are simulator ticks, not wall time")

	if err := e8SeparationWitness(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// e8SeparationWitness replays a crossing-audit interleaving through
// SGT and RSGT deterministically: two audits scan two family balances
// in opposite orders with customer updates between their phases. The
// execution's serialization graph is cyclic (SGT must abort an audit),
// yet every interleaving respects the audits' family-border unit
// boundaries, so the relative serialization graph stays acyclic and
// RSGT admits everything.
func e8SeparationWitness(rep *Report) error {
	a1 := core.T(1, core.R("f1"), core.R("f2"))
	a2 := core.T(2, core.R("f2"), core.R("f1"))
	c1 := core.T(3, core.R("f1"), core.W("f1"))
	c2 := core.T(4, core.R("f2"), core.W("f2"))
	ts, err := core.NewTxnSet(a1, a2, c1, c2)
	if err != nil {
		return err
	}
	sp := core.NewSpec(ts)
	for _, obs := range []core.TxnID{2, 3, 4} {
		if err := sp.SetUnits(1, obs, 1, 1); err != nil {
			return err
		}
	}
	for _, obs := range []core.TxnID{1, 3, 4} {
		if err := sp.SetUnits(2, obs, 1, 1); err != nil {
			return err
		}
	}
	s, err := core.ParseSchedule(ts,
		"r1[f1] r2[f2] r3[f1] w3[f1] r4[f2] w4[f2] r2[f1] r1[f2]")
	if err != nil {
		return err
	}
	rep.AddClaim(!core.IsConflictSerializable(s),
		"separation witness: the crossing-audit interleaving is NOT conflict serializable")
	rep.AddClaim(core.IsRelativelySerializable(s, sp),
		"separation witness: it IS relatively serializable under family-border units")

	oracle := sched.SpecOracle{Spec: sp}
	sgtDecisions := replayThrough(sched.NewSGT(), s)
	rsgtDecisions := replayThrough(sched.NewRSGT(oracle), s)
	tb := metrics.NewTable("SGT vs RSGT on the separation witness",
		"protocol", "decisions", "outcome")
	tb.AddRow("sgt", decisionString(sgtDecisions), outcomeOf(sgtDecisions))
	tb.AddRow("rsgt", decisionString(rsgtDecisions), outcomeOf(rsgtDecisions))
	rep.Tables = append(rep.Tables, tb)
	rep.AddClaim(hasAbort(sgtDecisions), "SGT aborts a transaction on the witness (conflict cycle)")
	rep.AddClaim(!hasAbort(rsgtDecisions) && len(rsgtDecisions) == s.Len(),
		"RSGT admits every operation of the witness (RSG stays acyclic)")
	return nil
}

// replayThrough feeds a schedule in order through a non-blocking
// protocol, stopping after the first abort.
func replayThrough(p sched.Protocol, s *core.Schedule) []sched.Decision {
	ts := s.Set()
	for _, tx := range ts.Txns() {
		p.Begin(int64(tx.ID), tx)
	}
	executed := make(map[core.TxnID]int)
	var out []sched.Decision
	for pos := 0; pos < s.Len(); pos++ {
		op := s.At(pos)
		tx := ts.Txn(op.Txn)
		d := p.Request(sched.OpRequest{Instance: int64(op.Txn), Program: tx, Seq: executed[op.Txn], Op: op})
		out = append(out, d)
		if d != sched.Grant {
			p.Abort(int64(op.Txn))
			return out
		}
		executed[op.Txn]++
		if executed[op.Txn] == tx.Len() {
			p.Commit(int64(op.Txn))
		}
	}
	return out
}

func decisionString(ds []sched.Decision) string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.String()
	}
	return strings.Join(parts, " ")
}

func outcomeOf(ds []sched.Decision) string {
	if hasAbort(ds) {
		return "aborted at op " + fmt.Sprint(len(ds))
	}
	return "all admitted"
}

func hasAbort(ds []sched.Decision) bool {
	for _, d := range ds {
		if d != sched.Grant {
			return true
		}
	}
	return false
}

// runE9 sweeps the atomicity granularity knob on the synthetic
// workload: from absolute atomicity (classical model) to fully
// breakable transactions, measuring what the relaxation buys RSGT and
// what altruistic locking extracts from the same boundaries.
func runE9(opts Options) (*Report, error) {
	rep := &Report{}
	grans := []int{0, 8, 4, 2, 1}
	seeds := []int64{1, 2, 3}
	cfg := workload.DefaultSyntheticConfig()
	cfg.Programs = 20
	if opts.Quick {
		grans = []int{0, 2}
		seeds = []int64{1}
		cfg.Programs = 10
	}
	tb := metrics.NewTable("Granularity sweep (synthetic, RSGT and altruistic)",
		"granularity", "protocol", "commits/ktick", "aborts(avg)", "blocks(avg)", "verified")
	type row struct {
		tput, aborts, blocks float64
		verified             bool
	}
	results := map[int]map[string]*row{}
	for _, g := range grans {
		results[g] = map[string]*row{}
		for _, proto := range []string{"rsgt", "altruistic"} {
			agg := &protoAgg{verified: true}
			for _, seed := range seeds {
				cfg.Granularity = g
				w, err := workload.Synthetic(cfg, opts.Seed+seed)
				if err != nil {
					return nil, err
				}
				var p sched.Protocol
				if proto == "rsgt" {
					p = sched.NewRSGT(w.Oracle)
				} else {
					p = sched.NewAltruistic(w.Oracle)
				}
				res, _, err := w.RunWith(p, workload.RunOptions{
					Seed: seed, MPL: 8, Tracer: opts.Tracer, Metrics: opts.Metrics,
					Obs: opts.Obs, Timeout: opts.Timeout, DisableRSGRetire: opts.DisableRSGRetire,
				})
				if err != nil {
					return nil, fmt.Errorf("g=%d %s seed=%d: %v", g, proto, seed, err)
				}
				agg.runs++
				agg.ticks += res.Ticks
				agg.commits += res.Committed
				agg.aborts += res.Aborts
				agg.blocks += res.Blocks
				if err := res.Verify(); err != nil {
					agg.verified = false
				}
			}
			r := &row{
				tput:     1000 * float64(agg.commits) / float64(agg.ticks),
				aborts:   float64(agg.aborts) / float64(agg.runs),
				blocks:   float64(agg.blocks) / float64(agg.runs),
				verified: agg.verified,
			}
			results[g][proto] = r
			gname := fmt.Sprint(g)
			if g == 0 {
				gname = "absolute"
			}
			tb.AddRow(gname, proto, r.tput, r.aborts, r.blocks, boolMark(r.verified))
		}
	}
	rep.Tables = append(rep.Tables, tb)
	for _, g := range grans {
		for _, proto := range []string{"rsgt", "altruistic"} {
			if !results[g][proto].verified {
				rep.AddClaim(false, "g=%d %s emitted an uncertified schedule", g, proto)
			}
		}
	}
	finest := grans[len(grans)-1]
	rep.AddClaim(results[finest]["rsgt"].aborts <= results[0]["rsgt"].aborts,
		"relaxing granularity does not increase RSGT aborts (finer units remove cycles)")
	rep.AddClaim(len(rep.Claims) == 1 || rep.Pass(), "all runs certified relatively serializable")
	rep.AddNote("expected shape: aborts and blocks fall as units shrink; absolute atomicity reproduces the classical schedulers' behaviour")
	return rep, nil
}
