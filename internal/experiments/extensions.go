package experiments

import (
	"fmt"

	"relser/internal/chopping"
	"relser/internal/core"
	"relser/internal/enumerate"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

// runE12 reproduces the §4 chopping comparison [SSV92]: the SC-graph
// test on the canonical correct and incorrect choppings, the theorem
// that correct choppings only admit serializable piece-atomic
// executions (checked exhaustively), and the embedding of chopping
// specifications into relative atomicity.
func runE12(Options) (*Report, error) {
	rep := &Report{}

	// Canonical correct chopping: T1 split between its x-phase and
	// y-phase; T2 touches only x, T3 only y.
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x"), core.R("y"), core.W("y")),
		core.T(2, core.R("x"), core.W("x")),
		core.T(3, core.R("y"), core.W("y")),
	)
	good, err := chopping.New(ts, map[core.TxnID][]int{1: {2, 2}})
	if err != nil {
		return nil, err
	}
	gGood := chopping.BuildSCGraph(good)

	// Incorrect chopping: T2 now spans both of T1's pieces.
	tsBad := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x"), core.R("y"), core.W("y")),
		core.T(2, core.W("x"), core.W("y")),
	)
	bad, err := chopping.New(tsBad, map[core.TxnID][]int{1: {2, 2}})
	if err != nil {
		return nil, err
	}
	gBad := chopping.BuildSCGraph(bad)

	tb := metrics.NewTable("SC-graph correctness test",
		"chopping", "pieces", "edges", "correct", "offending pieces")
	off := func(ps []chopping.Piece) string {
		if ps == nil {
			return "-"
		}
		out := ""
		for i, p := range ps {
			if i > 0 {
				out += " "
			}
			out += p.String()
		}
		return out
	}
	tb.AddRow("T1=[rx wx][ry wy]; T2 on x; T3 on y", len(good.Pieces()), gGood.NumEdges(), boolMark(gGood.Correct()), off(gGood.OffendingComponent()))
	tb.AddRow("T1=[rx wx][ry wy]; T2 on x AND y", len(bad.Pieces()), gBad.NumEdges(), boolMark(gBad.Correct()), off(gBad.OffendingComponent()))
	rep.Tables = append(rep.Tables, tb)

	rep.AddClaim(gGood.Correct(), "the canonical [SSV92] chopping has no SC-cycle (correct)")
	rep.AddClaim(!gBad.Correct(), "a transaction spanning both pieces creates an SC-cycle (incorrect)")

	// The [SSV92] theorem through the paper's machinery: piece-atomic
	// executions of the correct chopping are conflict serializable;
	// the incorrect chopping admits a non-serializable one.
	spGood, err := good.ToSpec()
	if err != nil {
		return nil, err
	}
	goodTotal, goodSerializable := 0, 0
	enumerate.Schedules(ts, func(s *core.Schedule) bool {
		if ok, _ := core.IsRelativelyAtomic(s, spGood); !ok {
			return true
		}
		goodTotal++
		if core.IsConflictSerializable(s) {
			goodSerializable++
		}
		return true
	})
	spBad, err := bad.ToSpec()
	if err != nil {
		return nil, err
	}
	badTotal, badSerializable := 0, 0
	enumerate.Schedules(tsBad, func(s *core.Schedule) bool {
		if ok, _ := core.IsRelativelyAtomic(s, spBad); !ok {
			return true
		}
		badTotal++
		if core.IsConflictSerializable(s) {
			badSerializable++
		}
		return true
	})
	tb2 := metrics.NewTable("Piece-atomic executions (exhaustive)",
		"chopping", "piece-atomic schedules", "conflict serializable")
	tb2.AddRow("correct", goodTotal, goodSerializable)
	tb2.AddRow("incorrect", badTotal, badSerializable)
	rep.Tables = append(rep.Tables, tb2)
	rep.AddClaim(goodTotal > 0 && goodSerializable == goodTotal,
		"every piece-atomic execution of the correct chopping is conflict serializable ([SSV92]'s theorem, %d/%d)", goodSerializable, goodTotal)
	rep.AddClaim(badSerializable < badTotal,
		"the incorrect chopping admits non-serializable piece-atomic executions (%d of %d)", badTotal-badSerializable, badTotal)
	rep.AddNote("chopping specs embed into relative atomicity via Chopping.ToSpec: each piece becomes an atomic unit relative to every other transaction — the §4 bridge")
	return rep, nil
}

// runE13 exercises the concurrent goroutine runtime: the banking and
// long-lived workloads under every protocol on real goroutines, with
// every committed schedule certified by the offline RSG test and every
// data invariant checked.
func runE13(opts Options) (*Report, error) {
	rep := &Report{}
	trials := 3
	if opts.Quick {
		trials = 1
	}
	tb := metrics.NewTable("Concurrent runtime certification",
		"workload", "protocol", "runs", "committed", "aborts", "all verified", "invariants ok", "recoverable")
	type mk struct {
		name string
		make func(seed int64) (*workload.Workload, error)
	}
	mks := []mk{
		{"banking", func(seed int64) (*workload.Workload, error) {
			return workload.Banking(workload.DefaultBankingConfig(), seed)
		}},
		{"longlived", func(seed int64) (*workload.Workload, error) {
			return workload.LongLived(workload.DefaultLongLivedConfig(), seed)
		}},
	}
	for _, m := range mks {
		for _, proto := range []string{"s2pl", "sgt", "rsgt", "altruistic"} {
			committed, aborts := 0, 0
			verified, invariants, recoverable := true, true, true
			for trial := 0; trial < trials; trial++ {
				w, err := m.make(opts.Seed + int64(trial))
				if err != nil {
					return nil, err
				}
				var p sched.Protocol
				switch proto {
				case "s2pl":
					p = sched.NewS2PLSharded(opts.Shards)
				case "sgt":
					p = sched.NewSGT()
				case "rsgt":
					p = sched.NewRSGT(w.Oracle)
				case "altruistic":
					p = sched.NewAltruistic(w.Oracle)
				}
				store := storage.NewStore()
				store.Load(w.Initial)
				r, err := txn.NewConcurrent(txn.Config{
					Protocol:  p,
					Programs:  w.Programs,
					Oracle:    w.Oracle,
					Store:     store,
					Semantics: w.Semantics,
					MPL:       6,
					Shards:    opts.Shards,

					DisableRSGRetire: opts.DisableRSGRetire,
				})
				if err != nil {
					return nil, err
				}
				res, err := r.Run()
				if err != nil {
					return nil, fmt.Errorf("%s/%s trial %d: %v", m.name, proto, trial, err)
				}
				committed += res.Committed
				aborts += res.Aborts
				if err := res.Verify(); err != nil {
					verified = false
				}
				if w.Invariant != nil {
					if err := w.Invariant(store.Snapshot()); err != nil {
						invariants = false
					}
				}
				if props, perr := res.RecoveryProperties(); perr != nil || !props.Recoverable {
					recoverable = false
				}
			}
			tb.AddRow(m.name, proto, trials, committed, aborts, boolMark(verified), boolMark(invariants), boolMark(recoverable))
			rep.AddClaim(verified, "%s under %s: every concurrent committed schedule is relatively serializable", m.name, proto)
			rep.AddClaim(invariants, "%s under %s: data invariants hold after concurrent runs", m.name, proto)
			rep.AddClaim(recoverable, "%s under %s: committed executions are recoverable (commit order follows dirty reads-from)", m.name, proto)
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.AddNote("goroutine interleavings are nondeterministic; the claims are outcome properties, and `go test -race ./internal/txn` covers memory safety")
	return rep, nil
}
