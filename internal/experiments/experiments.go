// Package experiments regenerates every figure and claim of the paper
// as a runnable experiment, plus the quantitative studies the paper
// argues for but does not run (see DESIGN.md §4 for the index):
//
//	E1  Figure 1 and the §2 schedules Sra/Srs/S2 — class membership
//	E2  Figure 2 — transitive depends-on is required (ablation)
//	E3  Figure 3 — exact RSG arc reconstruction
//	E4  Figure 4 — relatively serial but not relatively consistent
//	E5  Figure 5 — class census over full interleaving spaces
//	E6  §3 — polynomial RSG testing: scaling with schedule length
//	E7  §1/[KB92] — exponential relatively-consistent test vs RSG
//	E8  §1/§5 — online protocols on the banking workload
//	E9  §5 — atomicity granularity sweep
//	E10 Lemma 1 — absolute atomicity collapses to conflict
//	    serializability (randomized property check)
//	E11 §4 — related-work models compile into relative atomicity;
//	    expressibility separation from multilevel atomicity
//	E12 §4 — transaction chopping [SSV92]: SC-graph correctness and the
//	    embedding into relative atomicity
//	E13 runtime robustness: concurrent goroutine runs certified by the
//	    offline theory
//	E14 state semantics: conflict-equivalent schedules share final
//	    states; admitted non-serializable interleavings do not match any
//	    serial state — the declared trade of the model
//	E15 sharded scheduler scaling: concurrent throughput over
//	    shards x goroutines against the single-lock baseline
//	E16 chaos certification: seeded fault injection (WAL damage,
//	    crashes, abort storms, latency spikes, shard wedges) with
//	    RSG-certified commits, invariant-clean recovery from every WAL
//	    prefix, watchdog-bounded wedges and byte-identical replays
//	E17 observability plane: flight-recorder + span overhead on the E15
//	    hot path, and live /metrics scrape fidelity against the
//	    end-of-run Result
//	E18 segmented WAL durability: group commit, parallel recovery,
//	    compaction
//	E19 record/replay harness: every deterministic recorded run replays
//	    byte-identically (verdicts, fault schedules, WAL bytes, final
//	    state), a recorded watchdog wedge replays as the same incident
//	    class, backfill under absolute atomicity yields a stable
//	    divergence report, and the recording tap costs <5%
//	E20 bounded-memory certification: epoch-based RSG retirement keeps
//	    graph size and throughput flat over a long soak (vs monotone
//	    growth with retirement off), the vector-clock fast path certifies
//	    >=90% of requests without a cycle sweep, and retired online
//	    verdicts stay equivalent to the offline Theorem 1 oracle
//
// Each experiment produces a Report of tables and checked claims; the
// rsbench binary renders them, and EXPERIMENTS.md records one full
// run.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"relser/internal/metrics"
	"relser/internal/obs"
	"relser/internal/trace"
)

// Claim is one paper assertion an experiment verifies mechanically.
type Claim struct {
	Text string `json:"text"`
	Pass bool   `json:"pass"`
}

// Report is the outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Claims []Claim
	// Notes carries free-form commentary (expected shapes, caveats).
	Notes []string
}

// Pass reports whether every claim held.
func (r *Report) Pass() bool {
	for _, c := range r.Claims {
		if !c.Pass {
			return false
		}
	}
	return true
}

// AddClaim records a checked claim.
func (r *Report) AddClaim(pass bool, format string, args ...any) {
	r.Claims = append(r.Claims, Claim{Text: fmt.Sprintf(format, args...), Pass: pass})
}

// AddNote records commentary.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		sb.WriteByte('\n')
		sb.WriteString(t.String())
	}
	if len(r.Claims) > 0 {
		sb.WriteString("\nClaims:\n")
		for _, c := range r.Claims {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(&sb, "  [%s] %s\n", mark, c.Text)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "\nNote: %s\n", n)
	}
	return sb.String()
}

// Runner produces a report; Options tune cost for bench vs CLI runs.
type Runner func(opts Options) (*Report, error)

// Options tunes experiment sizes.
type Options struct {
	// Quick shrinks sweeps for use inside unit tests and smoke runs.
	Quick bool
	// Seed drives every randomized component.
	Seed int64
	// Tracer, when set, receives structured runtime events from every
	// workload run the experiment performs.
	Tracer *trace.Tracer
	// Metrics, when set, accumulates runtime counters and histograms
	// across the experiment's runs.
	Metrics *metrics.Registry
	// Obs, when set, attaches the live observability plane to every
	// workload run the experiment performs (E15 and E17 run their own
	// instrumented configurations and ignore it).
	Obs *obs.Plane
	// Shards stripes the concurrent driver's hot path in experiments
	// that run the goroutine runtime (E13); zero means one shard. E15
	// sweeps its own shard counts and ignores it.
	Shards int
	// FaultSpec, when non-empty, replaces E16's built-in chaos specs
	// with one custom fault spec (internal/fault grammar, e.g.
	// "wal.torn:0.01,txn.abort:0.2"). Other experiments ignore it.
	FaultSpec string
	// Timeout, when positive, bounds each workload run inside an
	// experiment with a context deadline (workload.RunOptions.Timeout);
	// an expired run surfaces as an experiment error, not a hang.
	Timeout time.Duration
	// DisableRSGRetire forces bounded-memory certification (graph
	// retirement + the vector-clock fast path) off in every experiment
	// that runs the online drivers; the zero value keeps it on, matching
	// the runtime default. E20 ignores it — that experiment sweeps both
	// sides of the comparison itself.
	DisableRSGRetire bool
	// RecordDir, when non-empty, makes E16 capture every deterministic
	// chaos run as a .rsrec artifact (internal/record) in that
	// directory, named e16-<leg>-<protocol>-seed<N>.rsrec. Any failed
	// leg can then be time-traveled with rsreplay; CI uploads the
	// directory when the chaos job fails. Other experiments ignore it.
	RecordDir string
}

// TableData is a metrics.Table flattened for JSON artifacts.
type TableData struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Artifact is the machine-readable form of a Report; rsbench -json
// writes one per experiment as BENCH_<id>.json.
type Artifact struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Quick  bool        `json:"quick"`
	Seed   int64       `json:"seed"`
	WallMS int64       `json:"wall_ms"`
	Pass   bool        `json:"pass"`
	Claims []Claim     `json:"claims"`
	Tables []TableData `json:"tables"`
	Notes  []string    `json:"notes,omitempty"`
	// GitSHA and Shards stamp the provenance of a benchmark artifact:
	// the commit the binary was built from and the -shards setting the
	// run used. rsbench fills GitSHA; Shards mirrors Options.Shards.
	GitSHA string `json:"git_sha,omitempty"`
	Shards int    `json:"shards,omitempty"`
}

// Artifact flattens the report for JSON output. Wall time is measured
// by the caller (the report itself is timing-free and deterministic).
func (r *Report) Artifact(opts Options, wallMS int64) Artifact {
	a := Artifact{
		ID:     r.ID,
		Title:  r.Title,
		Quick:  opts.Quick,
		Seed:   opts.Seed,
		WallMS: wallMS,
		Pass:   r.Pass(),
		Claims: r.Claims,
		Notes:  r.Notes,
		Shards: opts.Shards,
	}
	for _, t := range r.Tables {
		a.Tables = append(a.Tables, TableData{Title: t.Title, Columns: t.Columns, Rows: t.Rows()})
	}
	return a
}

var registry = map[string]struct {
	title string
	run   Runner
}{
	"E1":  {"Figure 1 schedules: relatively atomic / serial / serializable", runE1},
	"E2":  {"Figure 2: direct conflicts are not sufficient (ablation)", runE2},
	"E3":  {"Figure 3: exact relative serialization graph", runE3},
	"E4":  {"Figure 4: relatively serial but not relatively consistent", runE4},
	"E5":  {"Figure 5: class census over full interleaving spaces", runE5},
	"E6":  {"RSG test scaling (polynomial, §3)", runE6},
	"E7":  {"Relatively-consistent search blowup vs RSG [KB92]", runE7},
	"E8":  {"Online protocols on the banking workload (§1)", runE8},
	"E9":  {"Atomicity granularity sweep (§5)", runE9},
	"E10": {"Lemma 1: absolute atomicity = conflict serializability", runE10},
	"E11": {"Related-work models and multilevel expressibility (§4)", runE11},
	"E12": {"Transaction chopping [SSV92] and its embedding (§4)", runE12},
	"E13": {"Concurrent runtime certification (goroutine driver)", runE13},
	"E14": {"State semantics of the relaxation (replay)", runE14},
	"E15": {"Sharded scheduler scaling (shards x goroutines)", runE15},
	"E16": {"Chaos certification under deterministic fault injection", runE16},
	"E17": {"Observability plane overhead and live-scrape fidelity", runE17},
	"E18": {"Segmented WAL durability: group commit, parallel recovery, compaction", runE18},
	"E19": {"Record/replay determinism, incident time-travel and backfill", runE19},
	"E20": {"Bounded-memory certification: retirement soak, fast-path hit rate, verdict equivalence", runE20},
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Title returns an experiment's title.
func Title(id string) string { return registry[id].title }

// Run executes one experiment.
func Run(id string, opts Options) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	rep, err := e.run(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %v", id, err)
	}
	rep.ID, rep.Title = id, e.title
	return rep, nil
}

// RunAll executes every experiment in order.
func RunAll(opts Options) ([]*Report, error) {
	var out []*Report
	for _, id := range IDs() {
		rep, err := Run(id, opts)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
