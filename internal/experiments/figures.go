package experiments

import (
	"relser/internal/consistent"
	"relser/internal/core"
	"relser/internal/enumerate"
	"relser/internal/metrics"
	"relser/internal/paperfig"
)

// runE1 classifies the Figure 1 schedules and checks the paper's §2
// claims about them.
func runE1(Options) (*Report, error) {
	rep := &Report{}
	inst := paperfig.Figure1()
	tb := metrics.NewTable("Figure 1 schedule classification",
		"schedule", "serial", "rel-atomic", "rel-serial", "rel-serializable", "conflict-serializable")
	cls := map[string]enumerate.Classification{}
	for _, name := range inst.Names {
		c := enumerate.Classify(inst.Schedules[name], inst.Spec, false)
		cls[name] = c
		tb.AddRow(name, boolMark(c.Serial), boolMark(c.RelativelyAtomic), boolMark(c.RelativelySerial),
			boolMark(c.RelativelySerializable), boolMark(c.ConflictSerializable))
	}
	rep.Tables = append(rep.Tables, tb)

	rep.AddClaim(!cls["Sra"].Serial && cls["Sra"].RelativelyAtomic,
		"Sra is correct (relatively atomic) though not serial (§2)")
	rep.AddClaim(cls["Srs"].RelativelySerial && !cls["Srs"].RelativelyAtomic,
		"Srs is relatively serial but not relatively atomic (§2)")
	rep.AddClaim(!cls["S2"].RelativelySerial && cls["S2"].RelativelySerializable,
		"S2 is relatively serializable but not relatively serial (§2)")
	rep.AddClaim(core.ConflictEquivalent(inst.Schedules["S2"], inst.Schedules["Srs"]),
		"S2 is conflict equivalent to Srs (§2)")
	rep.AddClaim(!cls["Srs"].ConflictSerializable,
		"Srs lies outside the classical conflict-serializable class (the gain of relative atomicity)")

	w, err := core.BuildRSG(inst.Schedules["S2"], inst.Spec).Witness()
	if err != nil {
		return nil, err
	}
	okRS, _ := core.IsRelativelySerial(w, inst.Spec)
	rep.AddClaim(okRS && core.ConflictEquivalent(w, inst.Schedules["S2"]),
		"topologically sorting RSG(S2) yields a conflict-equivalent relatively serial witness (Theorem 1)")
	rep.AddNote("witness for S2: %s", w)
	return rep, nil
}

// runE2 demonstrates that the transitive depends-on relation is
// necessary: the direct-conflicts ablation wrongly accepts Figure 2's
// S1.
func runE2(Options) (*Report, error) {
	rep := &Report{}
	inst := paperfig.Figure2()
	s1 := inst.Schedules["S1"]
	tb := metrics.NewTable("Figure 2: S1 under full vs direct-only depends-on",
		"relation", "relatively-serial verdict", "violation")
	okFull, vFull := core.IsRelativelySerial(s1, inst.Spec)
	viol := ""
	if vFull != nil {
		viol = vFull.Error()
	}
	tb.AddRow("transitive (paper)", boolMark(okFull), viol)
	okDirect, _ := core.IsRelativelySerialUnder(s1, inst.Spec, core.ComputeDirectDepends(s1))
	tb.AddRow("direct conflicts only (ablation)", boolMark(okDirect), "(wrongly accepted)")
	rep.Tables = append(rep.Tables, tb)

	rep.AddClaim(!okFull, "S1 is not relatively serial: r1[z] transitively depends on w2[y] through T3 (§2)")
	rep.AddClaim(okDirect, "with direct conflicts only, S1 would wrongly count as correct (§2)")
	d := core.ComputeDepends(s1)
	r1z := inst.Set.Txn(1).Op(1)
	w2y := inst.Set.Txn(2).Op(0)
	rep.AddClaim(d.DependsOn(r1z, w2y), "the dependency chain w2[y] -> r3[y] -> w3[z] -> r1[z] is captured")
	rep.AddClaim(core.IsRelativelySerializable(s1, inst.Spec),
		"S1 remains relatively serializable (conflict equivalent to serial T2 T3 T1); the figure's point concerns Definition 2")
	return rep, nil
}

// runE3 reconstructs the relative serialization graph of Figure 3 and
// compares it arc by arc with the figure.
func runE3(Options) (*Report, error) {
	rep := &Report{}
	inst := paperfig.Figure3()
	s2 := inst.Schedules["S2"]
	rsg := core.BuildRSG(s2, inst.Spec)

	op := func(t core.TxnID, seq int) core.Op { return inst.Set.Txn(t).Op(seq) }
	w1x, r1z := op(1, 0), op(1, 1)
	r2x, w2y := op(2, 0), op(2, 1)
	r3z, r3y := op(3, 0), op(3, 1)
	want := []struct {
		u, v core.Op
		kind core.ArcKind
	}{
		{w1x, r1z, core.IArc},
		{r2x, w2y, core.IArc},
		{r3z, r3y, core.IArc},
		{w1x, r2x, core.DArc | core.BArc},
		{w1x, w2y, core.DArc | core.BArc},
		{w1x, r3y, core.DArc | core.FArc | core.BArc},
		{r2x, r3y, core.DArc | core.FArc},
		{w2y, r3y, core.DArc | core.FArc},
		{r1z, r2x, core.FArc},
		{r1z, w2y, core.FArc},
		{r2x, r3z, core.BArc},
		{w2y, r3z, core.BArc},
	}
	tb := metrics.NewTable("RSG(S2) arcs vs Figure 3", "arc", "computed kinds", "figure kinds", "match")
	allMatch := true
	for _, a := range want {
		got := rsg.ArcKinds(a.u, a.v)
		match := got == a.kind
		allMatch = allMatch && match
		tb.AddRow(a.u.String()+" -> "+a.v.String(), got.String(), a.kind.String(), boolMark(match))
	}
	rep.Tables = append(rep.Tables, tb)

	rep.AddClaim(allMatch && rsg.NumArcs() == len(want),
		"RSG(S2) has exactly the %d arcs Figure 3 draws, with matching I/D/F/B labels", len(want))
	rep.AddClaim(rsg.ArcKinds(r1z, r2x) == core.FArc,
		"the F-arc r1[z] -> r2[x] called out in §3 is present")
	rep.AddClaim(rsg.ArcKinds(w2y, r3z) == core.BArc,
		"the B-arc w2[y] -> r3[z] called out in §3 is present")
	rep.AddClaim(rsg.Acyclic(), "RSG(S2) is acyclic, so S2 is relatively serializable (Theorem 1)")
	return rep, nil
}

// runE4 verifies the Figure 4 separation: S is relatively serial yet
// not conflict equivalent to any relatively atomic schedule.
func runE4(Options) (*Report, error) {
	rep := &Report{}
	inst := paperfig.Figure4()
	s := inst.Schedules["S"]
	okRS, _ := core.IsRelativelySerial(s, inst.Spec)
	res := consistent.IsRelativelyConsistent(s, inst.Spec)
	okRSer := core.IsRelativelySerializable(s, inst.Spec)

	tb := metrics.NewTable("Figure 4 schedule S", "property", "value")
	tb.AddRow("schedule", s.String())
	tb.AddRow("relatively serial", boolMark(okRS))
	tb.AddRow("relatively consistent [FÖ89]", boolMark(res.Consistent))
	tb.AddRow("relatively serializable", boolMark(okRSer))
	tb.AddRow("search states explored", res.StatesExplored)
	rep.Tables = append(rep.Tables, tb)

	rep.AddClaim(okRS, "S is relatively serial (§4)")
	rep.AddClaim(!res.Consistent,
		"exhaustive search confirms no conflict-equivalent relatively atomic schedule exists (§4)")
	rep.AddClaim(okRSer, "S is relatively serializable (Lemma 2)")
	rep.AddNote("this witnesses the proper containment: relatively consistent ⊂ relatively serializable (Figure 5)")
	return rep, nil
}

// runE5 takes the full-interleaving census of each figure instance,
// regenerating Figure 5 as numbers.
func runE5(opts Options) (*Report, error) {
	rep := &Report{}
	tb := metrics.NewTable("Class census over all interleavings",
		"instance", "schedules", "serial", "rel-atomic", "rel-consistent", "rel-serial", "rel-serializable", "conflict-ser")
	type inst struct {
		name string
		set  *core.TxnSet
		spec *core.Spec
	}
	var cases []inst
	for _, named := range paperfig.All() {
		cases = append(cases, inst{named.Name, named.Instance.Set, named.Instance.Spec})
	}
	// Absolute-atomicity control on the Figure 1 transactions: the
	// hierarchy must collapse per Lemma 1.
	fig1 := paperfig.Figure1()
	cases = append(cases, inst{"fig1-absolute", fig1.Set, core.NewSpec(fig1.Set)})

	violations := 0
	var rcProper, rsProper bool
	for _, c := range cases {
		if opts.Quick && c.set.NumOps() > 8 {
			continue
		}
		census := enumerate.TakeCensus(c.set, c.spec, true)
		violations += census.ContainmentViolations
		tb.AddRow(c.name, census.Total, census.Serial, census.RelativelyAtomic, census.RelativelyConsistent,
			census.RelativelySerial, census.RelativelySerializable, census.ConflictSerializable)
		if census.RelativelyConsistent < census.RelativelySerializable {
			rcProper = true
		}
		if census.Witnesses["serial-not-consistent"] != nil {
			rsProper = true
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.AddClaim(violations == 0, "every Figure 5 containment holds on every enumerated schedule")
	if !opts.Quick {
		rep.AddClaim(rcProper, "relatively serializable properly contains relatively consistent on at least one instance")
		rep.AddClaim(rsProper, "a relatively serial, non-consistent schedule exists (the Figure 4 gap) in some census")
	}
	rep.AddNote("fig1-absolute row: relatively atomic collapses to serial and relatively serializable to conflict serializable (Lemma 1)")
	return rep, nil
}
