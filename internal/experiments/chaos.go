package experiments

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"relser/internal/core"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/obs"
	"relser/internal/record"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/txn"
	"relser/internal/workload"
)

// withObs wires the live observability plane into a driver config the
// same way workload.RunOptions.Obs does: the plane becomes the tracer
// (teeing any existing tracer downstream), its span hooks become the
// stage hooks, and its registry backs the run when none is set.
func withObs(cfg txn.Config, p *obs.Plane) txn.Config {
	if p == nil {
		return cfg
	}
	cfg.Tracer = p.Tracer(cfg.Tracer)
	cfg.Hooks = p.Hooks(cfg.Hooks)
	if cfg.Metrics == nil {
		cfg.Metrics = p.Registry()
	}
	return cfg
}

// runE16 is the chaos certification: every built-in fault spec (or the
// one passed via Options.FaultSpec / rsbench -faults) runs the banking
// workload under seeded deterministic fault injection, and each run is
// certified on three axes:
//
//   - Correctness under faults: a run either completes — with its
//     committed schedule passing the offline RSG test and the balance
//     invariant holding — or crashes cleanly (fault.ErrCrash from an
//     injected WAL torn write or crash).
//   - Durability: recovery from EVERY prefix of the emitted WAL (all
//     record boundaries plus mid-record tears) yields a store whose
//     balance invariant is intact — torn tails truncate, they never
//     corrupt.
//   - Reproducibility: rerunning with the same seed produces the
//     identical fault schedule (injector fingerprint), byte-identical
//     WAL, and the same committed count — a chaos failure is replayable
//     from its seed alone.
//
// Two more legs exercise the graceful-degradation machinery on real
// goroutines: a latency-spike run that must complete certified, and a
// rate-1 shard wedge that the stall watchdog must surface as a
// *txn.WedgeError instead of hanging.
func runE16(opts Options) (*Report, error) {
	rep := &Report{}

	type leg struct {
		name string
		spec string
	}
	legs := []leg{
		{"wal-chaos", "wal.torn:0.004,wal.corrupt:0.003,wal.crash:0.002"},
		{"abort-storm", "txn.abort:0.5,sched.grant.delay:0.05"},
		{"latency", "store.read.delay:0.05:200us,store.write.delay:0.05:200us"},
	}
	if opts.FaultSpec != "" {
		if _, err := fault.ParseSpec(opts.FaultSpec); err != nil {
			return nil, err
		}
		legs = []leg{{"custom", opts.FaultSpec}}
	}
	protocols := []string{"s2pl", "rsgt"}
	seeds := 3
	if opts.Quick {
		protocols = []string{"rsgt"}
		seeds = 2
	}

	tb := metrics.NewTable("Deterministic chaos runs (banking workload)",
		"spec", "protocol", "seed", "outcome", "committed", "aborts", "injected", "sheds", "deadline", "wal prefixes", "replay")
	for _, lg := range legs {
		spec := fault.MustParseSpec(lg.spec)
		allCertified, allPrefixes, allReplay := true, true, true
		sawShed, sawInjected := false, false
		for _, proto := range protocols {
			for s := 0; s < seeds; s++ {
				seed := opts.Seed + int64(s)
				first, err := chaosRun(lg.name, proto, seed, spec, opts)
				if err != nil {
					return nil, fmt.Errorf("%s/%s seed %d: %v", lg.name, proto, seed, err)
				}
				if !first.certified {
					allCertified = false
				}
				if !first.prefixesClean {
					allPrefixes = false
				}
				sawShed = sawShed || first.sheds > 0
				sawInjected = sawInjected || first.injected > 0
				// Replay: the same seed must reproduce the identical fault
				// schedule, WAL bytes and outcome.
				second, err := chaosRun(lg.name, proto, seed, spec, opts)
				if err != nil {
					return nil, fmt.Errorf("%s/%s seed %d replay: %v", lg.name, proto, seed, err)
				}
				replayOK := first.fingerprint == second.fingerprint &&
					bytes.Equal(first.wal, second.wal) &&
					first.committed == second.committed &&
					first.outcome == second.outcome
				if !replayOK {
					allReplay = false
				}
				tb.AddRow(lg.name, proto, seed, first.outcome, first.committed, first.aborts,
					first.injected, first.sheds, first.deadlineAborts, first.prefixes, boolMark(replayOK))
			}
		}
		rep.AddClaim(allCertified,
			"%s: every run completes RSG-certified with the invariant intact, or crashes cleanly via fault.ErrCrash", lg.name)
		rep.AddClaim(allPrefixes,
			"%s: recovery from every WAL prefix (record boundaries and mid-record tears) preserves balance conservation", lg.name)
		rep.AddClaim(allReplay,
			"%s: same seed reproduces the identical fault schedule (fingerprint), WAL bytes and outcome", lg.name)
		if lg.name == "abort-storm" {
			rep.AddClaim(sawInjected, "abort-storm: injected txn.abort faults actually fired")
			rep.AddClaim(sawShed, "abort-storm: the admission controller shed load (effective MPL degraded below configured MPL)")
		}
	}

	// Segmented-WAL legs: the same chaos discipline through the 4-lane
	// group-commit log, plus its two dedicated fault points.
	if opts.FaultSpec == "" {
		if err := chaosSegmented(rep, tb, opts); err != nil {
			return nil, err
		}
	}

	// Deadline leg: under S2PL, T2 blocks on T1's exclusive lock long
	// enough to overrun its deadline deterministically; after the
	// timeout-abort and restart it completes solo within budget.
	if dres, err := chaosDeadline(opts); err != nil {
		return nil, err
	} else {
		rep.AddClaim(dres.DeadlineAborts > 0 && dres.Committed == 2,
			"deadline: a blocked transaction overruns its deadline, is timeout-aborted (%d deadline aborts) and completes on retry", dres.DeadlineAborts)
	}

	// Concurrent legs: latency spikes must not break certification, and
	// a rate-1 shard wedge must be surfaced by the watchdog, not hung on.
	if opts.FaultSpec == "" {
		if err := chaosConcurrentLatency(rep, opts); err != nil {
			return nil, err
		}
		if err := chaosWedge(rep, opts); err != nil {
			return nil, err
		}
	}

	rep.Tables = append(rep.Tables, tb)
	rep.AddNote("fault specs use the internal/fault grammar point:rate[:duration]; reproduce any row with rssim -faults '<spec>' -seed <seed> (the injector fingerprint is a pure function of seed and per-point call indices)")
	return rep, nil
}

// chaosOutcome captures one deterministic chaos run for certification
// and replay comparison.
type chaosOutcome struct {
	outcome        string // "completed" | "crashed"
	committed      int
	aborts         int
	injected       int
	sheds          int
	deadlineAborts int
	certified      bool
	prefixes       int
	prefixesClean  bool
	fingerprint    string
	wal            []byte
}

// chaosRun executes one seeded banking run under the spec on the
// deterministic driver, then certifies the outcome and sweeps WAL
// prefix recovery.
func chaosRun(leg, proto string, seed int64, spec fault.Spec, opts Options) (*chaosOutcome, error) {
	params := workload.BuildParams{Name: "banking", Seed: seed}
	if leg == "abort-storm" {
		// Short transactions only: long audits would spend hundreds of
		// incarnations surviving a 0.5 per-tick abort rate.
		params.Variant = "short"
	}
	w, err := workload.Build(params)
	if err != nil {
		return nil, err
	}
	p, err := sched.NewProtocol(proto, w.Oracle)
	if err != nil {
		return nil, err
	}
	store := storage.NewStore()
	store.Load(w.Initial)
	var walBuf bytes.Buffer
	inj := fault.New(seed, spec)
	cfg := txn.Config{
		Protocol:    p,
		Programs:    w.Programs,
		Oracle:      w.Oracle,
		Store:       store,
		Semantics:   w.Semantics,
		MPL:         8,
		Seed:        seed,
		MaxRestarts: 100000,
		WAL:         storage.NewWAL(&walBuf),
		Tracer:      opts.Tracer,
		Metrics:     opts.Metrics,
		Faults:      inj,
	}
	recorder := chaosRecorder(proto, params, spec, "single", 0, 0, w, opts)
	if recorder != nil {
		cfg.Hooks = recorder.Hooks(cfg.Hooks)
	}
	r, err := txn.New(withObs(cfg, opts.Obs))
	if err != nil {
		return nil, err
	}
	out := &chaosOutcome{fingerprint: inj.Fingerprint()}
	res, runErr := r.Run()
	out.fingerprint = inj.Fingerprint()
	out.wal = append([]byte(nil), walBuf.Bytes()...)
	switch {
	case runErr == nil:
		out.outcome = "completed"
		out.committed = res.Committed
		out.aborts = res.Aborts
		out.injected = res.InjectedAborts + res.InjectedDelays
		out.sheds = res.LoadSheds
		out.deadlineAborts = res.DeadlineAborts
		out.certified = res.Verify() == nil && w.Invariant(store.Snapshot()) == nil
	case errors.Is(runErr, fault.ErrCrash):
		// An injected WAL crash or torn write ended the run; durability
		// is certified by the prefix sweep below.
		out.outcome = "crashed"
		out.certified = true
	default:
		return nil, runErr
	}
	if recorder != nil {
		if err := chaosSaveRecording(recorder, leg, proto, seed, out.wal, res, runErr, inj, store, w, opts); err != nil {
			return nil, err
		}
	}
	out.prefixes, out.prefixesClean = sweepWALPrefixes(out.wal, w)
	return out, nil
}

// chaosRecorder builds the recording tap for one chaos cell when
// Options.RecordDir asks for artifacts; nil otherwise. The manifest
// mirrors the cell's exact driver configuration so rsreplay re-runs it
// byte-identically.
func chaosRecorder(proto string, params workload.BuildParams, spec fault.Spec, walMode string, walShards int, walSegBytes int64, w *workload.Workload, opts Options) *record.Recorder {
	if opts.RecordDir == "" {
		return nil
	}
	rr := record.NewRecorder(record.Manifest{
		Workload:        params,
		Protocol:        proto,
		Seed:            params.Seed,
		MPL:             8,
		MaxRestarts:     100000,
		FaultSpec:       spec.String(),
		FaultSeed:       params.Seed,
		WALMode:         walMode,
		WALShards:       walShards,
		WALSegmentBytes: walSegBytes,
	})
	rr.SetInitial(w.Initial)
	if opts.Metrics != nil {
		rr.SetMetrics(opts.Metrics)
	}
	return rr
}

// chaosSaveRecording seals one chaos cell's recording and writes its
// .rsrec artifact into Options.RecordDir.
func chaosSaveRecording(rr *record.Recorder, leg, proto string, seed int64, wal []byte, res *txn.Result, runErr error, inj *fault.Injector, store *storage.Store, w *workload.Workload, opts Options) error {
	rr.SetWALBytes(wal)
	rr.Finish(res, runErr, inj, store, w)
	path := filepath.Join(opts.RecordDir, fmt.Sprintf("e16-%s-%s-seed%d.rsrec", leg, proto, seed))
	if err := rr.WriteFile(path); err != nil {
		return fmt.Errorf("chaos recording %s: %v", path, err)
	}
	return nil
}

// sweepWALPrefixes recovers the workload's store from every record
// boundary of the log plus a mid-record tear inside each record, and
// checks the workload invariant on each recovered snapshot. Returns the
// number of prefixes checked and whether all were clean.
func sweepWALPrefixes(wal []byte, w *workload.Workload) (int, bool) {
	cuts := []int{0}
	off := 0
	for off+8 <= len(wal) {
		size := int(binary.LittleEndian.Uint32(wal[off : off+4]))
		if size <= 0 || off+8+size > len(wal) {
			// Damaged or torn frame: add one cut inside it and stop.
			cuts = append(cuts, off+min(len(wal)-off, 8+size/2))
			break
		}
		if size > 2 {
			cuts = append(cuts, off+8+size/2) // mid-record tear
		}
		off += 8 + size
		cuts = append(cuts, off)
	}
	if off < len(wal) {
		cuts = append(cuts, len(wal))
	}
	checked, clean := 0, true
	for _, cut := range cuts {
		st, _, err := storage.Recover(bytes.NewReader(wal[:cut]), w.Initial)
		checked++
		if err != nil || w.Invariant(st.Snapshot()) != nil {
			clean = false
		}
	}
	return checked, clean
}

// chaosDeadline builds the deterministic deadline-overrun scenario:
// T1 holds x exclusively for six ticks, so T2 (blocked on x from
// admission, then six ops of its own) cannot finish within its
// nine-tick deadline on the first incarnation, but completes alone
// after the timeout-abort.
func chaosDeadline(opts Options) (*txn.Result, error) {
	t1 := core.T(1, core.W("x"), core.W("a1"), core.W("a2"), core.W("a3"), core.W("a4"), core.W("a5"))
	t2 := core.T(2, core.R("x"), core.R("b1"), core.R("b2"), core.R("b3"), core.R("b4"), core.R("b5"))
	r, err := txn.New(withObs(txn.Config{
		Protocol:    sched.NewS2PL(),
		Programs:    []*core.Transaction{t1, t2},
		MPL:         8,
		Seed:        opts.Seed,
		Deadline:    9,
		MaxRestarts: 100,
		Tracer:      opts.Tracer,
		Metrics:     opts.Metrics,
	}, opts.Obs))
	if err != nil {
		return nil, err
	}
	res, err := r.Run()
	if err != nil {
		return nil, fmt.Errorf("deadline leg: %v", err)
	}
	return res, nil
}

// chaosConcurrentLatency runs the banking workload on goroutines under
// storage latency spikes and a shard-stall point, certifying that
// slowness degrades throughput but never correctness.
func chaosConcurrentLatency(rep *Report, opts Options) error {
	spec := fault.MustParseSpec("store.read.delay:0.05:200us,store.write.delay:0.05:200us,shard.stall:0.02:500us")
	w, err := workload.Banking(workload.DefaultBankingConfig(), opts.Seed)
	if err != nil {
		return err
	}
	store := storage.NewStore()
	store.Load(w.Initial)
	r, err := txn.NewConcurrent(withObs(txn.Config{
		Protocol:  sched.NewS2PLSharded(opts.Shards),
		Programs:  w.Programs,
		Oracle:    w.Oracle,
		Store:     store,
		Semantics: w.Semantics,
		MPL:       6,
		Shards:    opts.Shards,
		Seed:      opts.Seed,
		Watchdog:  10 * time.Second,
		Faults:    fault.New(opts.Seed, spec),
		Tracer:    opts.Tracer,
		Metrics:   opts.Metrics,
	}, opts.Obs))
	if err != nil {
		return err
	}
	res, err := r.Run()
	ok := err == nil && res.Verify() == nil && w.Invariant(store.Snapshot()) == nil
	rep.AddClaim(ok, "latency (concurrent): storage delay spikes and shard stalls degrade speed, never certification (err=%v)", err)
	return nil
}

// chaosWedge arms shard.wedge at rate 1 under a short watchdog: the
// first operation of every worker parks inside the driver holding its
// shard mutex, and the run must fail with *txn.WedgeError instead of
// hanging.
func chaosWedge(rep *Report, opts Options) error {
	w, err := workload.Banking(workload.DefaultBankingConfig(), opts.Seed)
	if err != nil {
		return err
	}
	store := storage.NewStore()
	store.Load(w.Initial)
	r, err := txn.NewConcurrent(withObs(txn.Config{
		Protocol:  sched.NewNoCC(),
		Programs:  w.Programs,
		Oracle:    w.Oracle,
		Store:     store,
		Semantics: w.Semantics,
		MPL:       4,
		Shards:    opts.Shards,
		Seed:      opts.Seed,
		Watchdog:  300 * time.Millisecond,
		Faults:    fault.New(opts.Seed, fault.MustParseSpec("shard.wedge:1")),
		Tracer:    opts.Tracer,
		Metrics:   opts.Metrics,
	}, opts.Obs))
	if err != nil {
		return err
	}
	start := time.Now()
	_, err = r.Run()
	var we *txn.WedgeError
	detected := errors.As(err, &we)
	rep.AddClaim(detected,
		"wedge (concurrent): a rate-1 shard wedge is surfaced by the watchdog as *txn.WedgeError in %v, not a hang (err=%v)",
		time.Since(start).Round(time.Millisecond), err)
	return nil
}

// chaosSegmented certifies the per-shard segmented WAL under the same
// deterministic chaos discipline as the single-lane legs, including
// the two fault points unique to it: wal.rotate.crash (die between
// sealing segment k and publishing k+1) and wal.group.partial (a
// group-commit batch torn mid-frame). Each run is certified
// completed-or-crashed, swept for per-shard prefix durability (every
// lane's crash prefixes recover invariant-clean through the
// cross-shard cut), and replayed byte-identically from its seed.
func chaosSegmented(rep *Report, tb *metrics.Table, opts Options) error {
	legs := []struct {
		name string
		spec string
	}{
		{"seg-wal-chaos", "wal.torn:0.004,wal.corrupt:0.003,wal.crash:0.002"},
		{"seg-rotate-crash", "wal.rotate.crash:0.08"},
		{"seg-group-partial", "wal.group.partial:0.01"},
	}
	protocols := []string{"s2pl", "rsgt"}
	seeds := 3
	if opts.Quick {
		protocols = []string{"rsgt"}
		seeds = 2
	}
	for _, lg := range legs {
		spec := fault.MustParseSpec(lg.spec)
		allCertified, allPrefixes, allReplay := true, true, true
		for _, proto := range protocols {
			for s := 0; s < seeds; s++ {
				seed := opts.Seed + int64(s)
				first, err := chaosSegmentedRun(lg.name, proto, seed, spec, opts)
				if err != nil {
					return fmt.Errorf("%s/%s seed %d: %v", lg.name, proto, seed, err)
				}
				if !first.certified {
					allCertified = false
				}
				if !first.prefixesClean {
					allPrefixes = false
				}
				second, err := chaosSegmentedRun(lg.name, proto, seed, spec, opts)
				if err != nil {
					return fmt.Errorf("%s/%s seed %d replay: %v", lg.name, proto, seed, err)
				}
				replayOK := first.fingerprint == second.fingerprint &&
					bytes.Equal(first.wal, second.wal) &&
					first.committed == second.committed &&
					first.outcome == second.outcome
				if !replayOK {
					allReplay = false
				}
				tb.AddRow(lg.name, proto, seed, first.outcome, first.committed, first.aborts,
					first.injected, first.sheds, first.deadlineAborts, first.prefixes, boolMark(replayOK))
			}
		}
		rep.AddClaim(allCertified,
			"%s: every 4-lane segmented run completes RSG-certified with the invariant intact, or crashes cleanly via fault.ErrCrash", lg.name)
		rep.AddClaim(allPrefixes,
			"%s: recovery from every per-shard WAL prefix is invariant-clean (cross-shard cut reconciliation)", lg.name)
		rep.AddClaim(allReplay,
			"%s: same seed reproduces identical fault schedule, segment bytes on every lane, and outcome", lg.name)
	}
	return nil
}

// chaosSegmentedRun is chaosRun over a 4-lane segmented WAL with
// 512-byte segments (so rotation and compaction paths are exercised by
// the banking workload's modest log volume).
func chaosSegmentedRun(leg, proto string, seed int64, spec fault.Spec, opts Options) (*chaosOutcome, error) {
	params := workload.BuildParams{Name: "banking", Seed: seed}
	w, err := workload.Build(params)
	if err != nil {
		return nil, err
	}
	p, err := sched.NewProtocol(proto, w.Oracle)
	if err != nil {
		return nil, err
	}
	store := storage.NewStore()
	store.Load(w.Initial)
	mem := storage.NewMemBackend()
	swal, err := storage.NewShardedWAL(mem, storage.SegmentedOptions{Shards: 4, SegmentBytes: 512})
	if err != nil {
		return nil, err
	}
	inj := fault.New(seed, spec)
	cfg := txn.Config{
		Protocol:    p,
		Programs:    w.Programs,
		Oracle:      w.Oracle,
		Store:       store,
		Semantics:   w.Semantics,
		MPL:         8,
		Seed:        seed,
		MaxRestarts: 100000,
		WAL:         swal,
		Tracer:      opts.Tracer,
		Metrics:     opts.Metrics,
		Faults:      inj,
	}
	recorder := chaosRecorder(proto, params, spec, "segmented", 4, 512, w, opts)
	if recorder != nil {
		cfg.Hooks = recorder.Hooks(cfg.Hooks)
	}
	r, err := txn.New(withObs(cfg, opts.Obs))
	if err != nil {
		return nil, err
	}
	out := &chaosOutcome{}
	res, runErr := r.Run()
	swal.Close() //nolint:errcheck // a latched crash is the expected terminal state under injection
	out.fingerprint = inj.Fingerprint()
	set, err := mem.SegmentSet()
	if err != nil {
		return nil, err
	}
	out.wal = record.FlattenSegmentSet(set)
	if recorder != nil && (runErr == nil || errors.Is(runErr, fault.ErrCrash)) {
		if err := chaosSaveRecording(recorder, leg, proto, seed, out.wal, res, runErr, inj, store, w, opts); err != nil {
			return nil, err
		}
	}
	switch {
	case runErr == nil:
		out.outcome = "completed"
		out.committed = res.Committed
		out.aborts = res.Aborts
		out.injected = res.InjectedAborts + res.InjectedDelays
		out.sheds = res.LoadSheds
		out.deadlineAborts = res.DeadlineAborts
		certified := res.Verify() == nil && w.Invariant(store.Snapshot()) == nil
		// Full recovery of a clean run must reproduce the live store.
		rst, rrep, rerr := storage.RecoverSegmented(set, w.Initial)
		if rerr != nil || !rrep.Clean() {
			certified = false
		} else {
			live := store.Snapshot()
			for obj, v := range rst.Snapshot() {
				if live[obj] != v {
					certified = false
				}
			}
		}
		out.certified = certified
	case errors.Is(runErr, fault.ErrCrash):
		out.outcome = "crashed"
		rst, _, rerr := storage.RecoverSegmented(set, w.Initial)
		out.certified = rerr == nil && w.Invariant(rst.Snapshot()) == nil
	default:
		return nil, runErr
	}
	out.prefixes, out.prefixesClean = sweepSegmentPrefixes(set, w, opts.Quick)
	return out, nil
}

// sweepSegmentPrefixes truncates each lane's final segment at every
// frame boundary and mid-frame tear (sampled in quick mode), recovers
// the resulting crash image through the cross-shard cut, and checks
// the workload invariant each time. Whole trailing segments are also
// dropped one by one, modeling a crash before rotation's publish.
func sweepSegmentPrefixes(set *storage.SegmentSet, w *workload.Workload, quick bool) (int, bool) {
	checked, clean := 0, true
	try := func(mod *storage.SegmentSet, lane int) {
		checked++
		st, rep, err := storage.RecoverSegmented(mod, w.Initial)
		if err != nil {
			clean = false
			return
		}
		// A truncation at a clean frame boundary (or a cleanly dropped
		// sealed segment) silently loses fsynced, acked commits — no
		// physical crash produces that image (ack follows fsync), and
		// recovery cannot detect it. The invariant is only owed when the
		// damage is visible, engaging the cross-shard cut.
		damaged := false
		for _, sh := range rep.Shards {
			if sh.Shard == lane && sh.Damaged {
				damaged = true
			}
		}
		if !damaged {
			return
		}
		if w.Invariant(st.Snapshot()) != nil {
			clean = false
		}
	}
	for lane, segs := range set.Shards {
		if len(segs) == 0 {
			continue
		}
		// Crash prefixes of the lane's last segment.
		last := segs[len(segs)-1]
		cuts := segmentCuts(last)
		step := 1
		if quick && len(cuts) > 24 {
			step = len(cuts) / 24
		}
		for i := 0; i < len(cuts); i += step {
			mod := cloneSet(set)
			mod.Shards[lane] = append(append([][]byte(nil), segs[:len(segs)-1]...), last[:cuts[i]])
			try(mod, lane)
		}
		// Lost trailing segments (crash before a later publish).
		for drop := 1; drop < len(segs) && drop <= 2; drop++ {
			mod := cloneSet(set)
			mod.Shards[lane] = append([][]byte(nil), segs[:len(segs)-drop]...)
			try(mod, lane)
		}
	}
	return checked, clean
}

// segmentCuts returns truncation offsets for one segment: inside the
// header, every frame boundary, and a mid-frame tear per record.
func segmentCuts(seg []byte) []int {
	cuts := []int{0}
	if len(seg) < storage.SegmentHeaderSize {
		cuts = append(cuts, len(seg)/2)
		return cuts
	}
	cuts = append(cuts, storage.SegmentHeaderSize/2, storage.SegmentHeaderSize)
	off := storage.SegmentHeaderSize
	for off+8 <= len(seg) {
		size := int(binary.LittleEndian.Uint32(seg[off : off+4]))
		if size <= 0 || off+8+size > len(seg) {
			cuts = append(cuts, off+min(len(seg)-off, (8+size)/2))
			break
		}
		cuts = append(cuts, off+8+size/2)
		off += 8 + size
		cuts = append(cuts, off)
	}
	return cuts
}

// cloneSet shallow-copies a SegmentSet with a fresh Shards map (the
// segment byte slices themselves are shared and never mutated).
func cloneSet(set *storage.SegmentSet) *storage.SegmentSet {
	mod := &storage.SegmentSet{
		Shards:      make(map[int][][]byte, len(set.Shards)),
		SnapshotGSN: set.SnapshotGSN,
		Snapshot:    set.Snapshot,
		Unpublished: set.Unpublished,
	}
	for s, segs := range set.Shards {
		mod.Shards[s] = segs
	}
	return mod
}
