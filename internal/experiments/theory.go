package experiments

import (
	"math/rand"

	"relser/internal/core"
	"relser/internal/metrics"
	"relser/internal/paperfig"
	"relser/internal/spec"
)

// runE10 checks Lemma 1's consequence at scale: under absolute
// atomicity specifications, the RSG test must agree with the classical
// serialization-graph test on random schedules.
func runE10(opts Options) (*Report, error) {
	rep := &Report{}
	trials := 2000
	if opts.Quick {
		trials = 200
	}
	rng := rand.New(rand.NewSource(opts.Seed + 10))
	objects := []string{"x", "y", "z", "u", "v"}
	agree, csrCount := 0, 0
	for trial := 0; trial < trials; trial++ {
		nTxn := 2 + rng.Intn(3)
		txns := make([]*core.Transaction, nTxn)
		for i := range txns {
			nOps := 1 + rng.Intn(4)
			ops := make([]core.Op, nOps)
			for k := range ops {
				obj := objects[rng.Intn(len(objects))]
				if rng.Intn(2) == 0 {
					ops[k] = core.R(obj)
				} else {
					ops[k] = core.W(obj)
				}
			}
			txns[i] = core.T(core.TxnID(i+1), ops...)
		}
		ts, err := core.NewTxnSet(txns...)
		if err != nil {
			return nil, err
		}
		s := randomInterleaving(rng, ts)
		rser := core.IsRelativelySerializable(s, core.NewSpec(ts))
		csr := core.IsConflictSerializable(s)
		if rser == csr {
			agree++
		}
		if csr {
			csrCount++
		}
	}
	tb := metrics.NewTable("Lemma 1 randomized check (absolute atomicity)",
		"trials", "agreements", "conflict-serializable", "non-serializable")
	tb.AddRow(trials, agree, csrCount, trials-csrCount)
	rep.Tables = append(rep.Tables, tb)
	rep.AddClaim(agree == trials,
		"RSG acyclicity under absolute atomicity coincides with SG acyclicity on all %d random schedules (Lemma 1)", trials)
	rep.AddClaim(csrCount > 0 && csrCount < trials,
		"the sample exercises both serializable and non-serializable schedules")
	return rep, nil
}

// runE11 reproduces the §4 comparison: Garcia-Molina's and Lynch's
// models compile into relative atomicity, and relative atomicity is
// strictly more expressive than multilevel atomicity — the paper's own
// Figure 1 specification is already inexpressible as a hierarchy.
func runE11(Options) (*Report, error) {
	rep := &Report{}
	tb := metrics.NewTable("Specification models compiled into relative atomicity",
		"model", "instance", "multilevel-expressible")

	// Garcia-Molina compatibility sets.
	ts := core.MustTxnSet(
		core.T(1, core.R("a"), core.W("a")),
		core.T(2, core.R("b"), core.W("b")),
		core.T(3, core.R("c"), core.W("c")),
	)
	gm, err := spec.CompatibilitySets(ts, [][]core.TxnID{{1, 2}, {3}})
	if err != nil {
		return nil, err
	}
	gmOK, _ := spec.MultilevelExpressible(gm)
	tb.AddRow("compatibility sets [Gar83]", "{T1,T2},{T3}", boolMark(gmOK))

	// A hand-built Lynch hierarchy compiles and round-trips.
	ml := &spec.Multilevel{
		Set:  ts,
		Root: spec.Group("root", spec.Group("team", spec.Leaf(1), spec.Leaf(2)), spec.Leaf(3)),
		Cuts: map[core.TxnID][][]int{1: {nil, {1}}, 2: {nil, {1}}},
	}
	mlSpec, err := ml.Compile()
	if err != nil {
		return nil, err
	}
	mlOK, _ := spec.MultilevelExpressible(mlSpec)
	tb.AddRow("multilevel atomicity [Lyn83]", "root(team(T1,T2),T3)", boolMark(mlOK))

	// The paper's Figure 1 specification.
	fig1 := paperfig.Figure1()
	figOK, _ := spec.MultilevelExpressible(fig1.Spec)
	tb.AddRow("relative atomicity (paper)", "Figure 1", boolMark(figOK))

	// The cyclic fine-grainedness example.
	cyc := core.NewSpec(ts)
	for _, pair := range [][2]core.TxnID{{1, 2}, {2, 3}, {3, 1}} {
		if err := cyc.AllowAll(pair[0], pair[1]); err != nil {
			return nil, err
		}
	}
	cycOK, _ := spec.MultilevelExpressible(cyc)
	tb.AddRow("relative atomicity (cyclic)", "T1 fine to T2 fine to T3 fine to T1", boolMark(cycOK))
	rep.Tables = append(rep.Tables, tb)

	rep.AddClaim(gmOK, "compatibility sets are a special case of multilevel atomicity (§1)")
	rep.AddClaim(mlOK, "compiled multilevel hierarchies remain multilevel expressible (sanity)")
	rep.AddClaim(!figOK, "the paper's own Figure 1 specification cannot be expressed as any hierarchy (§4's separation)")
	rep.AddClaim(!cycOK, "cyclic fine-grainedness is inexpressible in multilevel atomicity (§4)")
	return rep, nil
}
