package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/obs"
	"relser/internal/sched"
	"relser/internal/workload"
)

// runE17 measures what the live observability plane costs on the E15
// hot path and whether its live endpoint tells the truth.
//
// Overhead leg: the E15 low-conflict synthetic configuration (8 shards,
// 16 goroutines, striped S2PL) runs with no plane attached and with the
// plane attached in its default always-on mode (flight recorder +
// spans, hot kinds sampled 1/64 before event construction). Throughput
// is peak-of-reps on both sides — the capability comparison E15
// established, robust to scheduling noise on busy hosts. The plane's
// full-trace mode (sampling off, every event constructed and recorded)
// is reported as data for calibration, with no claim attached.
//
// Fidelity leg: an abort-storm banking run (E16's storm spec plus a
// logical deadline) executes with the plane's ops endpoint actually
// serving HTTP; /healthz and /metrics are scraped while the run is in
// flight, and the final /metrics scrape is compared counter-by-counter
// against the end-of-run Result — the scrape must report exactly the
// sheds, deadline aborts, commits and aborts the run itself reports.
func runE17(opts Options) (*Report, error) {
	rep := &Report{}
	cfg := workload.SyntheticConfig{
		Objects:     512,
		Programs:    1024,
		OpsPerTxn:   16,
		WriteRatio:  0.25,
		Granularity: 0,
		HotFraction: 0,
	}
	const shards, mpl = 8, 16
	reps := 5
	if opts.Quick {
		cfg.Programs = 96
		reps = 2
	}

	measure := func(withMetrics bool, mkPlane func(reg *metrics.Registry) *obs.Plane) (float64, *obs.Plane, error) {
		var best float64
		var lastPlane *obs.Plane
		for i := 0; i < reps; i++ {
			w, err := workload.Synthetic(cfg, opts.Seed)
			if err != nil {
				return 0, nil, err
			}
			var reg *metrics.Registry
			if withMetrics {
				reg = metrics.NewRegistry()
			}
			var plane *obs.Plane
			if mkPlane != nil {
				plane = mkPlane(reg)
			}
			start := time.Now()
			res, _, err := w.RunWith(sched.NewS2PLSharded(shards), workload.RunOptions{
				Seed:             opts.Seed,
				MPL:              mpl,
				Shards:           shards,
				Concurrent:       true,
				Metrics:          reg,
				Obs:              plane,
				Timeout:          opts.Timeout,
				DisableRSGRetire: opts.DisableRSGRetire,
			})
			wall := time.Since(start)
			if err != nil {
				return 0, nil, err
			}
			if t := float64(res.OpsExecuted) / wall.Seconds(); t > best {
				best = t
			}
			if plane != nil {
				plane.Close()
				lastPlane = plane
			}
		}
		return best, lastPlane, nil
	}

	bare, _, err := measure(false, nil)
	if err != nil {
		return nil, fmt.Errorf("uninstrumented: %v", err)
	}
	off, _, err := measure(true, nil)
	if err != nil {
		return nil, fmt.Errorf("recorder off: %v", err)
	}
	sampled, sampledPlane, err := measure(true, func(reg *metrics.Registry) *obs.Plane {
		return obs.New(obs.Options{Registry: reg})
	})
	if err != nil {
		return nil, fmt.Errorf("recorder on: %v", err)
	}
	full, fullPlane, err := measure(true, func(reg *metrics.Registry) *obs.Plane {
		return obs.New(obs.Options{Registry: reg, Full: true})
	})
	if err != nil {
		return nil, fmt.Errorf("recorder full: %v", err)
	}

	tb := metrics.NewTable("Observability overhead (E15 hot path: 8 shards, 16 goroutines, peak ops/sec)",
		"mode", "ops/sec", "vs off", "events recorded", "ring retained", "spans")
	tb.AddRow("uninstrumented (no metrics)", fmt.Sprintf("%.0f", bare),
		fmt.Sprintf("%.2fx", bare/off), 0, 0, 0)
	tb.AddRow("recorder off (metrics only)", fmt.Sprintf("%.0f", off), "1.00x", 0, 0, 0)
	tb.AddRow("recorder on (sampled 1/64)", fmt.Sprintf("%.0f", sampled),
		fmt.Sprintf("%.2fx", sampled/off),
		sampledPlane.Recorder().Recorded(), len(sampledPlane.Flight()), len(sampledPlane.Spans()))
	tb.AddRow("recorder full (unsampled)", fmt.Sprintf("%.0f", full),
		fmt.Sprintf("%.2fx", full/off),
		fullPlane.Recorder().Recorded(), len(fullPlane.Flight()), len(fullPlane.Spans()))
	rep.Tables = append(rep.Tables, tb)

	if opts.Quick {
		rep.AddNote("quick mode reports the overhead without claiming it (%.2fx of baseline at reduced size); the <5%% budget is asserted on full-size runs", sampled/off)
	} else {
		rep.AddClaim(sampled >= 0.95*off,
			"flight recorder + spans in default sampled mode cost <5%% peak throughput over the metrics-instrumented E15 hot path (%.0f vs %.0f ops/sec, %.2fx)",
			sampled, off, sampled/off)
	}
	rep.AddNote("the recorder-off baseline carries the metrics registry the plane scrapes (it predates the plane and is what /metrics exposes); the uninstrumented row shows what the registry itself costs")

	if err := scrapeFidelity(rep, opts); err != nil {
		return nil, err
	}
	rep.AddNote("full-trace mode constructs and records every event (what rssim -trace pays); the default plane samples grant/store/WAL kinds before event construction, which is why its cost stays within budget")
	return rep, nil
}

// scrapeFidelity runs the abort-storm banking chaos leg with the ops
// endpoint live, scrapes it during and after the run, and checks the
// final scrape against the end-of-run Result.
func scrapeFidelity(rep *Report, opts Options) error {
	plane := obs.New(obs.Options{})
	srv, err := plane.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	base := fmt.Sprintf("http://%s", srv.Addr())

	cfg := workload.DefaultBankingConfig()
	cfg.CreditAudits = 0
	cfg.BankAudits = 0
	w, err := workload.Banking(cfg, opts.Seed)
	if err != nil {
		return err
	}
	// Scrape while the run is in flight: /healthz must answer with a
	// well-formed roll-up from the first request on.
	midHealth := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		var firstErr error
		for {
			select {
			case <-stop:
				midHealth <- firstErr
				return
			default:
			}
			var h obs.Health
			if err := getJSON(base+"/healthz", &h); err == nil {
				if h.Status == "" && firstErr == nil {
					firstErr = fmt.Errorf("mid-run /healthz returned empty status")
				}
			}
		}
	}()
	res, _, err := w.RunWith(mustProtocol("rsgt", w), workload.RunOptions{
		Seed:     opts.Seed,
		MPL:      8,
		Obs:      plane,
		Faults:   fault.New(opts.Seed, fault.MustParseSpec("txn.abort:0.5,sched.grant.delay:0.05")),
		Deadline: 16,
		Timeout:  opts.Timeout,
	})
	close(stop)
	if err != nil {
		return fmt.Errorf("fidelity run: %v", err)
	}
	if err := <-midHealth; err != nil {
		return err
	}

	var snap metrics.Snapshot
	if err := getJSON(base+"/metrics?format=json", &snap); err != nil {
		return err
	}
	type pair struct {
		key  string
		want int64
	}
	pairs := []pair{
		{"txn.committed", int64(res.Committed)},
		{"txn.aborts", int64(res.Aborts)},
		{"txn.load_sheds", int64(res.LoadSheds)},
		{"txn.deadline_aborts", int64(res.DeadlineAborts)},
		{"txn.injected_aborts", int64(res.InjectedAborts)},
		{"txn.livelock_escalations", int64(res.LivelockEscalations)},
		{"txn.cancel_aborts", int64(res.CancelAborts)},
	}
	exact := true
	tb := metrics.NewTable("Live /metrics scrape vs end-of-run Result (abort-storm banking)",
		"counter", "scraped", "result", "match")
	for _, p := range pairs {
		got := snap.Counters[p.key]
		ok := got == p.want
		exact = exact && ok
		tb.AddRow(p.key, got, p.want, boolMark(ok))
	}
	rep.Tables = append(rep.Tables, tb)
	rep.AddClaim(exact, "the live /metrics scrape after an abort-storm run matches the end-of-run Result counter-for-counter (sheds, deadline aborts, commits, aborts)")
	rep.AddClaim(res.LoadSheds > 0, "the storm actually shed load (%d sheds, min effective MPL %d), so the scrape compared real degradation, not zeros", res.LoadSheds, res.MinEffectiveMPL)

	var h obs.Health
	if err := getJSON(base+"/healthz", &h); err != nil {
		return err
	}
	rep.AddClaim(h.Committed == int64(res.Committed) && !h.Wedged,
		"/healthz agrees with the result (%d committed, wedged=%v) after the storm", h.Committed, h.Wedged)
	return nil
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(into)
}

func mustProtocol(name string, w *workload.Workload) sched.Protocol {
	p, err := sched.NewProtocol(name, w.Oracle)
	if err != nil {
		panic(err)
	}
	return p
}
