package experiments

import (
	"fmt"
	"runtime"
	"time"

	"relser/internal/core"
	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/txn"
	"relser/internal/workload"
)

// sequentialOnly hides a protocol's sched.ShardSafe marker, forcing the
// concurrent driver down its sequential path: one global mutex
// serializes every Request+execute pair and every grant broadcasts the
// global wait queue. That is exactly the pre-sharding driver
// architecture, so it serves as E15's single-lock baseline.
type sequentialOnly struct{ sched.Protocol }

// e15Run is one measured configuration: peak wall-clock throughput
// over repetitions (the peak is the capability measurement — scheduling
// noise on a busy host only subtracts), plus the contention traffic the
// runs generated.
type e15Run struct {
	tput    float64 // ops/sec, best of reps
	blocks  int     // total block decisions across reps
	wakeups int     // total cond wakeups across reps
}

// runE15 measures the sharded scheduler hot path: the low-conflict
// synthetic workload under striped S2PL, swept over shard counts and
// goroutine counts (MPL), against the single-lock baseline at the same
// MPL; a hot-object "thundering herd" contrast at high MPL; and a
// conflict-free run whose wake counters must stay at exactly zero.
// Each configuration is certified by the offline RSG test on a
// reduced-size run (the offline check is polynomial but superlinear in
// the number of programs, so certifying the full-size measurement runs
// would dwarf the measurement itself).
//
// What the sweep can claim depends on the host. On multi-core hosts,
// disjoint shards genuinely overlap and the sweep asserts the >=2x
// throughput target at 8 shards / 16 goroutines. On a single CPU the
// two architectures execute the same serial work and differ only in
// serialization and wakeup overhead, so the experiment instead asserts
// that sharding does not regress peak throughput. The thundering-herd
// fix is asserted where it is deterministic — a conflict-free workload
// must generate zero wakeups and zero broadcasts, because the grant
// path wakes nobody — while the herd contrast table reports the noisy
// contended counters as data (the deterministic per-shard versions of
// those assertions live in the txn package's sharded tests).
func runE15(opts Options) (*Report, error) {
	rep := &Report{}
	cfg := workload.SyntheticConfig{
		Objects:     512,
		Programs:    1024,
		OpsPerTxn:   16,
		WriteRatio:  0.25,
		Granularity: 0, // absolute atomicity: plain serializability
		HotFraction: 0, // low conflict: uniform access
	}
	shardCounts := []int{1, 2, 4, 8}
	mpls := []int{1, 2, 4, 8, 16}
	reps := 5
	if opts.Quick {
		cfg.Programs = 96
		shardCounts = []int{1, 8}
		mpls = []int{4, 16}
		reps = 1
	}

	// certify runs a reduced-size workload through the same driver
	// configuration and checks the committed schedule against the
	// offline RSG test.
	certCfg := cfg
	certCfg.Programs = 96
	certify := func(mkProto func() sched.Protocol, shards, mpl int) error {
		w, err := workload.Synthetic(certCfg, opts.Seed)
		if err != nil {
			return err
		}
		res, _, err := w.RunWith(mkProto(), workload.RunOptions{
			Seed:             opts.Seed,
			MPL:              mpl,
			Shards:           shards,
			Concurrent:       true,
			Timeout:          opts.Timeout,
			DisableRSGRetire: opts.DisableRSGRetire,
		})
		if err != nil {
			return fmt.Errorf("shards=%d mpl=%d: %v", shards, mpl, err)
		}
		if err := res.Verify(); err != nil {
			return fmt.Errorf("shards=%d mpl=%d: uncertified schedule: %v", shards, mpl, err)
		}
		return nil
	}

	measure := func(mcfg workload.SyntheticConfig, mkProto func() sched.Protocol, shards, mpl int) (e15Run, error) {
		var out e15Run
		if err := certify(mkProto, shards, mpl); err != nil {
			return out, err
		}
		for i := 0; i < reps; i++ {
			w, err := workload.Synthetic(mcfg, opts.Seed)
			if err != nil {
				return out, err
			}
			reg := metrics.NewRegistry()
			start := time.Now()
			res, _, err := w.RunWith(mkProto(), workload.RunOptions{
				Seed:             opts.Seed,
				MPL:              mpl,
				Shards:           shards,
				Concurrent:       true,
				Metrics:          reg,
				Timeout:          opts.Timeout,
				DisableRSGRetire: opts.DisableRSGRetire,
			})
			wall := time.Since(start)
			if err != nil {
				return out, fmt.Errorf("shards=%d mpl=%d: %v", shards, mpl, err)
			}
			if t := float64(res.OpsExecuted) / wall.Seconds(); t > out.tput {
				out.tput = t
			}
			out.blocks += res.Blocks
			out.wakeups += int(reg.Snapshot().Counters["txn.wakeups"])
		}
		return out, nil
	}

	// Single-lock baseline: the sequential driver path at each MPL.
	baseline := make(map[int]e15Run)
	for _, mpl := range mpls {
		r, err := measure(cfg, func() sched.Protocol { return sequentialOnly{sched.NewS2PL()} }, 1, mpl)
		if err != nil {
			return nil, fmt.Errorf("baseline: %v", err)
		}
		baseline[mpl] = r
	}

	tb := metrics.NewTable("Sharded S2PL throughput (synthetic low-conflict, peak ops/sec)",
		"shards", "goroutines", "ops/sec", "vs single-lock", "blocks", "wakeups")
	sharded := make(map[[2]int]e15Run)
	for _, sc := range shardCounts {
		for _, mpl := range mpls {
			r, err := measure(cfg, func() sched.Protocol { return sched.NewS2PLSharded(sc) }, sc, mpl)
			if err != nil {
				return nil, err
			}
			sharded[[2]int{sc, mpl}] = r
			tb.AddRow(sc, mpl, fmt.Sprintf("%.0f", r.tput),
				fmt.Sprintf("%.2fx", r.tput/baseline[mpl].tput), r.blocks, r.wakeups)
		}
	}
	bt := metrics.NewTable("Single-lock baseline (sequential driver path)",
		"goroutines", "ops/sec", "blocks", "wakeups")
	for _, mpl := range mpls {
		b := baseline[mpl]
		bt.AddRow(mpl, fmt.Sprintf("%.0f", b.tput), b.blocks, b.wakeups)
	}
	rep.Tables = append(rep.Tables, tb, bt)

	// Thundering-herd contrast: a hot-object workload at high MPL
	// produces structural contention, so the wake policies separate —
	// the baseline broadcasts its global queue, the sharded driver
	// wakes only the shards a commit touched. Reported as data; on a
	// single CPU the absolute counts swing widely between runs.
	herdCfg := workload.SyntheticConfig{
		Objects:     512,
		Programs:    1024,
		OpsPerTxn:   32,
		WriteRatio:  0.3,
		HotFraction: 0.1,
		HotObjects:  1,
	}
	if opts.Quick {
		herdCfg.Programs = 96
		herdCfg.OpsPerTxn = 16
	}
	herdMPL := 64
	herdBase, err := measure(herdCfg, func() sched.Protocol { return sequentialOnly{sched.NewS2PL()} }, 1, herdMPL)
	if err != nil {
		return nil, fmt.Errorf("herd baseline: %v", err)
	}
	herdShard, err := measure(herdCfg, func() sched.Protocol { return sched.NewS2PLSharded(8) }, 8, herdMPL)
	if err != nil {
		return nil, fmt.Errorf("herd sharded: %v", err)
	}
	ht := metrics.NewTable("Thundering herd (hot object, 64 goroutines)",
		"driver", "ops/sec", "blocks", "wakeups")
	ht.AddRow("single-lock", fmt.Sprintf("%.0f", herdBase.tput), herdBase.blocks, herdBase.wakeups)
	ht.AddRow("8 shards", fmt.Sprintf("%.0f", herdShard.tput), herdShard.blocks, herdShard.wakeups)
	rep.Tables = append(rep.Tables, ht)

	// Grant-path silence: programs on disjoint objects never conflict,
	// so under the targeted wake policy no condition variable is ever
	// broadcast and nothing ever wakes — deterministically zero.
	quietWakeups, quietBroadcasts, err := runQuietSharded(opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("quiet run: %v", err)
	}

	rep.AddClaim(true, "every configuration committed all programs and passed offline RSG certification on its reduced-size certification run")
	rep.AddClaim(quietWakeups == 0 && quietBroadcasts == 0,
		"a conflict-free workload on the sharded driver is silent: %d wakeups, %d broadcasts (grants and commits wake nobody)",
		quietWakeups, quietBroadcasts)
	if !opts.Quick {
		topMPL := mpls[len(mpls)-1]
		hi := sharded[[2]int{8, topMPL}]
		base := baseline[topMPL]
		if runtime.NumCPU() > 1 {
			rep.AddClaim(hi.tput >= 2*base.tput,
				"8 shards / %d goroutines sustains >=2x the single-lock baseline (%.0f vs %.0f ops/sec)",
				topMPL, hi.tput, base.tput)
		} else {
			// Single CPU: both architectures execute the same serial
			// work; assert no regression instead of a parallel speedup
			// the hardware cannot express.
			rep.AddClaim(hi.tput >= 0.75*base.tput,
				"single-CPU host: 8 shards / %d goroutines does not regress the single-lock baseline (peak %.0f vs %.0f ops/sec; >=2x scaling requires multiple CPUs)",
				topMPL, hi.tput, base.tput)
		}
	}
	rep.AddNote("the single-lock baseline serializes admission+execution under one mutex and broadcasts all sleepers on every grant (the pre-sharding driver); sharded runs admit under per-shard locks and wake only the shards a commit touched")
	rep.AddNote(fmt.Sprintf("host has %d CPU(s); on a single CPU the sweep measures serialization and wakeup overhead removed, while multi-core hosts additionally overlap disjoint shards", runtime.NumCPU()))
	rep.AddNote("contended wakeup counts swing widely between single-CPU runs (goroutine scheduling decides how many sleepers accumulate); the deterministic per-shard assertions live in internal/txn's sharded tests")
	return rep, nil
}

// runQuietSharded runs 64 programs over disjoint objects on the 8-way
// sharded driver and returns the wakeup and broadcast counter totals,
// which the targeted wake policy keeps at exactly zero.
func runQuietSharded(seed int64) (wakeups, broadcasts int64, err error) {
	var progs []*core.Transaction
	for i := 1; i <= 64; i++ {
		var ops []core.Op
		for k := 0; k < 4; k++ {
			obj := fmt.Sprintf("q%d.%d", i, k)
			ops = append(ops, core.W(obj), core.R(obj))
		}
		progs = append(progs, core.T(core.TxnID(i), ops...))
	}
	reg := metrics.NewRegistry()
	r, err := txn.NewConcurrent(txn.Config{
		Protocol: sched.NewS2PLSharded(8),
		Programs: progs,
		MPL:      16,
		Shards:   8,
		Seed:     seed,
		Metrics:  reg,
	})
	if err != nil {
		return 0, 0, err
	}
	res, err := r.Run()
	if err != nil {
		return 0, 0, err
	}
	if res.Committed != len(progs) {
		return 0, 0, fmt.Errorf("committed %d of %d", res.Committed, len(progs))
	}
	snap := reg.Snapshot()
	wakeups = snap.Counters["txn.wakeups"]
	broadcasts = snap.Counters["txn.cond.broadcast_shard"] +
		snap.Counters["txn.cond.broadcast_global"] +
		snap.Counters["txn.cond.broadcast_flood"]
	return wakeups, broadcasts, nil
}
