package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"relser/internal/consistent"
	"relser/internal/core"
	"relser/internal/metrics"
	"relser/internal/paperfig"
	"relser/internal/workload"
)

// randomInterleaving builds a uniformly random complete schedule over
// the set.
func randomInterleaving(rng *rand.Rand, ts *core.TxnSet) *core.Schedule {
	cursors := make([]int, ts.NumTxns())
	txns := ts.Txns()
	remaining := ts.NumOps()
	ops := make([]core.Op, 0, remaining)
	for remaining > 0 {
		k := rng.Intn(len(txns))
		if cursors[k] == txns[k].Len() {
			continue
		}
		ops = append(ops, txns[k].Op(cursors[k]))
		cursors[k]++
		remaining--
	}
	return core.MustSchedule(ts, ops)
}

// syntheticInstance generates a transaction set with a uniform
// granularity spec and one random interleaving of it.
func syntheticInstance(totalOps, opsPerTxn, objects, granularity int, seed int64) (*core.Schedule, *core.Spec, error) {
	cfg := workload.SyntheticConfig{
		Objects:     objects,
		Programs:    (totalOps + opsPerTxn - 1) / opsPerTxn,
		OpsPerTxn:   opsPerTxn,
		WriteRatio:  0.3,
		Granularity: granularity,
	}
	w, err := workload.Synthetic(cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	ts, err := core.NewTxnSet(w.Programs...)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	s := randomInterleaving(rng, ts)
	sp := core.NewSpec(ts)
	for _, a := range w.Programs {
		for _, b := range w.Programs {
			if a.ID == b.ID {
				continue
			}
			for _, cut := range w.Oracle.Cuts(a, b) {
				if err := sp.CutAfter(a.ID, b.ID, cut-1); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return s, sp, nil
}

// runE6 measures RSG construction plus acyclicity testing against
// schedule length: the §3 claim that recognition is polynomial.
func runE6(opts Options) (*Report, error) {
	rep := &Report{}
	sizes := []int{256, 512, 1024, 2048, 4096, 8192}
	if opts.Quick {
		sizes = []int{128, 256, 512}
	}
	tb := metrics.NewTable("RSG build + acyclicity vs schedule length",
		"ops", "arcs", "time", "ns/op^2", "acyclic")
	var ratios []float64
	for _, n := range sizes {
		s, sp, err := syntheticInstance(n, 8, n/4, 2, opts.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rsg := core.BuildRSG(s, sp)
		ac := rsg.Acyclic()
		elapsed := time.Since(start)
		perN2 := float64(elapsed.Nanoseconds()) / (float64(n) * float64(n))
		ratios = append(ratios, perN2)
		tb.AddRow(n, rsg.NumArcs(), elapsed, perN2, boolMark(ac))
	}
	rep.Tables = append(rep.Tables, tb)
	// Polynomial check: time per n^2 must not grow superlinearly in n;
	// allow generous constant-factor noise.
	last, first := ratios[len(ratios)-1], ratios[0]
	rep.AddClaim(first <= 0 || last/first < 16,
		"time grows no worse than ~quadratically in schedule length (graph is polynomial, §3)")
	rep.AddNote("D-arcs are dense in the worst case, so the expected shape is Θ(n²) — polynomial, versus the NP-complete relatively-consistent test (E7)")
	return rep, nil
}

// e7Instance builds the adversarial family for the exponential
// separation: the Figure 4 core (unsatisfiable for the RC search) plus
// p padding transactions whose operations carry no dependencies but sit
// astride the core's atomic units — exactly the ambiguity §2 blames for
// NP-completeness. Every padding placement must be explored before the
// search can conclude "no".
func e7Instance(padding int) (*core.Schedule, *core.Spec, error) {
	fig := paperfig.Figure4()
	txns := append([]*core.Transaction(nil), fig.Set.Txns()...)
	nextID := core.TxnID(5)
	for p := 0; p < padding; p++ {
		obj := fmt.Sprintf("pad%d", p)
		txns = append(txns, core.T(nextID, core.W(obj), core.W(obj)))
		nextID++
	}
	ts, err := core.NewTxnSet(txns...)
	if err != nil {
		return nil, nil, err
	}
	sp := core.NewSpec(ts)
	// Rebuild the Figure 4 specification on the enlarged set.
	for _, pair := range [][4]core.TxnID{{2, 4}, {3, 2}, {3, 4}, {4, 2}, {4, 3}} {
		if err := sp.SetUnits(pair[0], pair[1], 1, 1); err != nil {
			return nil, nil, err
		}
	}
	// Padding transactions are absolute to everyone (defaults), and the
	// core is absolute to them, keeping them dependency-free but
	// position-constrained.
	figOps := fig.Schedules["S"].Ops()
	ops := make([]core.Op, 0, ts.NumOps())
	ops = append(ops, figOps[:4]...) // w4x w3t w4t w1x
	for p := 0; p < padding; p++ {
		ops = append(ops, ts.Txn(core.TxnID(5+p)).Op(0))
	}
	ops = append(ops, figOps[4:6]...) // w1y w2z
	for p := 0; p < padding; p++ {
		ops = append(ops, ts.Txn(core.TxnID(5+p)).Op(1))
	}
	ops = append(ops, figOps[6:]...) // w2y w3z
	s, err := core.NewSchedule(ts, ops)
	if err != nil {
		return nil, nil, err
	}
	return s, sp, nil
}

// runE7 contrasts the exact relatively-consistent decision procedure
// (exponential state space) with the polynomial RSG test on the
// adversarial family.
func runE7(opts Options) (*Report, error) {
	rep := &Report{}
	paddings := []int{0, 2, 4, 6, 8, 10}
	if opts.Quick {
		paddings = []int{0, 2, 4}
	}
	tb := metrics.NewTable("Relatively-consistent search vs RSG test",
		"padding txns", "ops", "RC states", "RC time", "RSG time", "RC verdict", "RSG verdict")
	var states []int
	for _, p := range paddings {
		s, sp, err := e7Instance(p)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res := consistent.IsRelativelyConsistent(s, sp)
		rcTime := time.Since(start)
		start = time.Now()
		rser := core.IsRelativelySerializable(s, sp)
		rsgTime := time.Since(start)
		states = append(states, res.StatesExplored)
		tb.AddRow(p, s.Len(), res.StatesExplored, rcTime, rsgTime,
			boolMark(res.Consistent), boolMark(rser))
		if res.Consistent {
			rep.AddClaim(false, "padding %d: instance unexpectedly became relatively consistent", p)
		}
		if !rser {
			rep.AddClaim(false, "padding %d: instance must stay relatively serializable (padding is dependency-free)", p)
		}
	}
	rep.Tables = append(rep.Tables, tb)
	growth := float64(states[len(states)-1]) / float64(states[0])
	perStep := float64(states[len(states)-1]) / float64(states[len(states)-2])
	rep.AddClaim(growth > 8 && perStep > 1.5,
		"RC search states grow multiplicatively with padding (×%.0f overall), while the RSG test stays polynomial", growth)
	rep.AddNote("the padding operations have no dependencies yet sit astride atomic units — the exact §2 ambiguity behind the NP-completeness of [KB92]")
	return rep, nil
}
