package experiments

import (
	"fmt"
	"sort"

	"relser/internal/core"
	"relser/internal/metrics"
	"relser/internal/paperfig"
	"relser/internal/replay"
	"relser/internal/storage"
)

// orderSensitiveSemantics writes (sum of the transaction's reads so
// far) + 10·txnID, so final states distinguish execution orders.
type orderSensitiveSemantics struct{}

// WriteValue implements txn.Semantics.
func (orderSensitiveSemantics) WriteValue(prog *core.Transaction, _ int, reads map[int]storage.Value) storage.Value {
	var sum storage.Value
	for _, v := range reads {
		sum += v
	}
	return sum + storage.Value(10*int(prog.ID))
}

// runE14 makes the relaxation's semantics tangible: replaying the
// Figure 1 schedules with order-sensitive write semantics and
// comparing each transaction's *observations* — the values its reads
// returned — against every serial execution. Conflict-equivalent
// schedules observe identically; the relatively atomic / relatively
// serial schedules the model admits observe value combinations no
// serial execution can produce. That divergence is the declared trade
// of the model — the extra concurrency the user buys by asserting the
// interleavings are semantically acceptable.
func runE14(Options) (*Report, error) {
	rep := &Report{}
	inst := paperfig.Figure1()
	initial := map[string]storage.Value{"x": 1, "y": 2, "z": 3}
	sem := orderSensitiveSemantics{}

	// Observation vectors of all 6 serial orders.
	serialObs := map[string][]core.TxnID{}
	perms := [][]core.TxnID{
		{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1},
	}
	for _, order := range perms {
		key := observationKey(mustSerial(inst.Set, order...), sem, initial)
		if _, seen := serialObs[key]; !seen {
			serialObs[key] = order
		}
	}

	tb := metrics.NewTable("Read observations under order-sensitive semantics (Figure 1)",
		"schedule", "class", "observations", "matches a serial execution")
	type row struct {
		name, class string
		s           *core.Schedule
	}
	rows := []row{
		{"serial T1 T2 T3", "serial", mustSerial(inst.Set, 1, 2, 3)},
		{"Sra", "relatively atomic", inst.Schedules["Sra"]},
		{"Srs", "relatively serial", inst.Schedules["Srs"]},
		{"S2", "relatively serializable", inst.Schedules["S2"]},
	}
	matches := map[string]bool{}
	obs := map[string]string{}
	for _, r := range rows {
		key := observationKey(r.s, sem, initial)
		_, isSerial := serialObs[key]
		matches[r.name] = isSerial
		obs[r.name] = key
		tb.AddRow(r.name, r.class, key, boolMark(isSerial))
	}
	rep.Tables = append(rep.Tables, tb)

	rep.AddClaim(matches["serial T1 T2 T3"], "a serial execution trivially matches a serial observation vector")
	rep.AddClaim(obs["Srs"] == obs["S2"],
		"S2 and Srs are conflict equivalent, so every transaction observes identical values in both")
	rep.AddClaim(!matches["Srs"],
		"Srs (relatively serial, admitted by the model) yields observations no serial execution produces (T2 sees the pre-T3 y but the post-T3 x)")
	rep.AddClaim(!matches["Sra"],
		"even the relatively atomic Sra diverges from every serial execution — Definition 1 correctness is the user's semantic choice, not serializability in disguise")
	rep.AddNote("distinct serial observation vectors on this instance: %d of 6 orders", len(serialObs))
	rep.AddNote("conflict-serializable schedules always observe exactly as their serialization order (theorem; randomized check in internal/replay tests)")
	return rep, nil
}

// observationKey canonically renders every read's (txn, seq, value),
// sorted by transaction and program position so vectors from different
// interleavings compare structurally.
func observationKey(s *core.Schedule, sem orderSensitiveSemantics, initial map[string]storage.Value) string {
	_, events := replay.Run(s, sem, initial)
	var reads []replay.Event
	for _, ev := range events {
		if ev.Op.Kind == core.ReadOp {
			reads = append(reads, ev)
		}
	}
	sort.Slice(reads, func(i, j int) bool {
		if reads[i].Op.Txn != reads[j].Op.Txn {
			return reads[i].Op.Txn < reads[j].Op.Txn
		}
		return reads[i].Op.Seq < reads[j].Op.Seq
	})
	out := ""
	for _, ev := range reads {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s#%d=%d", ev.Op, ev.Op.Seq, ev.Value)
	}
	return out
}

func mustSerial(ts *core.TxnSet, order ...core.TxnID) *core.Schedule {
	s, err := core.SerialSchedule(ts, order...)
	if err != nil {
		panic(err)
	}
	return s
}
