package experiments_test

import (
	"strings"
	"testing"

	"relser/internal/experiments"
)

func TestIDsOrdered(t *testing.T) {
	ids := experiments.IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := experiments.Run("E99", experiments.Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTitles(t *testing.T) {
	for _, id := range experiments.IDs() {
		if experiments.Title(id) == "" {
			t.Errorf("%s has no title", id)
		}
	}
}

// TestAllExperimentsPassQuick runs the full suite at quick sizes; every
// mechanically checked paper claim must hold.
func TestAllExperimentsPassQuick(t *testing.T) {
	reps, err := experiments.RunAll(experiments.Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(experiments.IDs()) {
		t.Fatalf("got %d reports", len(reps))
	}
	for _, rep := range reps {
		for _, c := range rep.Claims {
			if !c.Pass {
				t.Errorf("%s: claim failed: %s", rep.ID, c.Text)
			}
		}
		out := rep.String()
		if !strings.Contains(out, rep.ID) || !strings.Contains(out, "Claims:") {
			t.Errorf("%s: report rendering incomplete:\n%s", rep.ID, out)
		}
	}
}

// TestFigureExperimentsFullSize runs the exact figure reproductions at
// full size (they are cheap); these are the paper's own tables.
func TestFigureExperimentsFullSize(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E11", "E12", "E14"} {
		rep, err := experiments.Run(id, experiments.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !rep.Pass() {
			for _, c := range rep.Claims {
				if !c.Pass {
					t.Errorf("%s: %s", id, c.Text)
				}
			}
		}
	}
}

func TestReportPassAndClaims(t *testing.T) {
	rep := &experiments.Report{ID: "X", Title: "t"}
	rep.AddClaim(true, "ok %d", 1)
	if !rep.Pass() {
		t.Error("all-pass report should pass")
	}
	rep.AddClaim(false, "bad")
	if rep.Pass() {
		t.Error("failed claim should fail the report")
	}
	out := rep.String()
	if !strings.Contains(out, "[PASS] ok 1") || !strings.Contains(out, "[FAIL] bad") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestDeterministicReports(t *testing.T) {
	// Same seed, same report text (wall-clock timing columns vary, so
	// compare a timing-free experiment).
	a, err := experiments.Run("E5", experiments.Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Run("E5", experiments.Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("E5 report not deterministic")
	}
}
