package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"time"

	"relser/internal/metrics"
	"relser/internal/storage"
)

// runE18 measures the per-shard segmented WAL (DESIGN.md §5.4) against
// the classic one-log-one-fsync-per-commit design on three axes:
//
//   - Group commit: W concurrent committers against a simulated
//     fixed-cost fsync device. The legacy discipline serializes W
//     fsyncs per W commits; the segmented log amortizes a batch into
//     one fsync per lane, so p50/p99 commit latency and total fsync
//     count must drop once lanes and writers grow.
//   - Parallel recovery: the same committed history spread over more
//     lanes recovers faster, because per-lane scans run concurrently
//     and the cross-shard merge is a sort over surviving commits.
//   - Compaction: a checkpoint snapshot plus prefix truncation bounds
//     replay; recovery after compaction replays only the post-snapshot
//     suffix yet reproduces the same store.
//
// Timing claims compare medians of repeated measurements on the same
// process and device model, and the recovery-scaling claim only fires
// when the host actually has the cores to scan in parallel.
func runE18(opts Options) (*Report, error) {
	rep := &Report{}

	fsyncCost := 200 * time.Microsecond
	writerCounts := []int{1, 4, 16}
	txnsPerWriter := 150
	if opts.Quick {
		fsyncCost = 50 * time.Microsecond
		writerCounts = []int{1, 8}
		txnsPerWriter = 40
	}

	// ---- Leg 1: group-commit latency sweep -------------------------
	type cell struct {
		name        string
		p50, p99    float64 // per-commit latency, microseconds
		fsyncs      int64
		commits     int
		wall        time.Duration
		groupSample float64 // mean records per group commit (0 legacy)
	}
	lat := metrics.NewTable("Commit latency vs writers (simulated fsync "+fsyncCost.String()+")",
		"writers", "durability", "p50 us", "p99 us", "fsyncs", "commits", "wall", "batch avg")
	var (
		legacyP50 = map[int]float64{}
		segP50    = map[int]float64{}
		segFsyncs = map[int]int64{}
	)
	for _, writers := range writerCounts {
		commits := writers * txnsPerWriter
		cells := []cell{}

		// Legacy discipline: one log, one fsync per commit, serialized.
		{
			dev := &fsyncDevice{cost: fsyncCost}
			var stats metrics.Stats
			start := time.Now()
			runCommitters(writers, txnsPerWriter, &stats, func(id int64) error {
				return dev.commit()
			})
			cells = append(cells, cell{
				name: "single-wal",
				p50:  stats.Percentile(50), p99: stats.Percentile(99),
				fsyncs: dev.count(), commits: commits, wall: time.Since(start),
			})
			legacyP50[writers] = stats.Percentile(50)
		}

		// Segmented group commit at 1 and 4 lanes.
		for _, lanes := range []int{1, 4} {
			mem := storage.NewMemBackend()
			mem.SyncDelay = fsyncCost
			w, err := storage.NewShardedWAL(mem, storage.SegmentedOptions{Shards: lanes, SegmentBytes: 1 << 20})
			if err != nil {
				return nil, err
			}
			var stats metrics.Stats
			start := time.Now()
			runCommitters(writers, txnsPerWriter, &stats, func(id int64) error {
				return w.AppendSync(storage.WALRecord{Kind: storage.WALCommit, Instance: id})
			})
			wall := time.Since(start)
			if err := w.Close(); err != nil {
				return nil, err
			}
			ws := w.Stats()
			batch := 0.0
			if ws.GroupCommits > 0 {
				batch = float64(ws.Appends) / float64(ws.GroupCommits)
			}
			cells = append(cells, cell{
				name: fmt.Sprintf("segmented/%d-lane", lanes),
				p50:  stats.Percentile(50), p99: stats.Percentile(99),
				fsyncs: ws.Fsyncs, commits: commits, wall: wall, groupSample: batch,
			})
			if lanes == 4 {
				segP50[writers] = stats.Percentile(50)
				segFsyncs[writers] = ws.Fsyncs
			}
		}
		for _, c := range cells {
			lat.AddRow(writers, c.name, fmt.Sprintf("%.0f", c.p50), fmt.Sprintf("%.0f", c.p99),
				c.fsyncs, c.commits, c.wall.Round(time.Millisecond), fmt.Sprintf("%.1f", c.groupSample))
		}
	}
	rep.Tables = append(rep.Tables, lat)

	maxW := writerCounts[len(writerCounts)-1]
	rep.AddClaim(segP50[maxW] < legacyP50[maxW],
		"group commit: with %d concurrent committers, 4-lane p50 commit latency (%.0fus) beats one-fsync-per-commit (%.0fus)",
		maxW, segP50[maxW], legacyP50[maxW])
	rep.AddClaim(segFsyncs[maxW] < int64(maxW*txnsPerWriter),
		"group commit: %d commits on %d writers cost %d fsyncs — batching amortizes the device",
		maxW*txnsPerWriter, maxW, segFsyncs[maxW])

	// ---- Leg 2: parallel recovery scaling --------------------------
	recTxns := 20000
	laneCounts := []int{1, 4, 16}
	if opts.Quick {
		recTxns = 3000
		laneCounts = []int{1, 4}
	}
	recTab := metrics.NewTable(fmt.Sprintf("Recovery wall time (%d txns, best of 5)", recTxns),
		"log", "records", "recover", "committed")
	recTime := map[int]time.Duration{}

	// Baseline: the same history through the legacy single-file WAL.
	legacyRecover, err := timeLegacyRecovery(recTxns, recTab)
	if err != nil {
		return nil, err
	}
	for _, lanes := range laneCounts {
		set, err := buildRecoverySet(lanes, recTxns)
		if err != nil {
			return nil, err
		}
		var best time.Duration
		var committed, records int
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			_, r, err := storage.RecoverSegmented(set, nil)
			if err != nil {
				return nil, err
			}
			if !r.Clean() || r.Committed != recTxns {
				return nil, fmt.Errorf("recovery of %d-lane set: %s", lanes, r)
			}
			el := time.Since(start)
			if best == 0 || el < best {
				best = el
			}
			committed, records = r.Committed, r.Records
		}
		recTime[lanes] = best
		recTab.AddRow(fmt.Sprintf("segmented/%d-lane", lanes), records, best.Round(10*time.Microsecond), committed)
	}
	rep.Tables = append(rep.Tables, recTab)
	rep.AddClaim(recTime[4] < 5*legacyRecover/2,
		"parallel recovery: 4-lane segmented recovery (%v) stays within 2.5x of the legacy single-WAL scan (%v) even with no parallelism assumed — the segment/cut machinery is not a recovery tax",
		recTime[4].Round(10*time.Microsecond), legacyRecover.Round(10*time.Microsecond))
	if runtime.NumCPU() >= 4 {
		rep.AddClaim(recTime[4] < recTime[1],
			"parallel recovery: the same %d-txn history recovers faster on 4 lanes (%v) than 1 (%v) with %d cores",
			recTxns, recTime[4].Round(10*time.Microsecond), recTime[1].Round(10*time.Microsecond), runtime.NumCPU())
	} else {
		rep.AddNote("recovery speedup claim skipped: host has %d cores (<4), per-lane scans cannot run in parallel; the table still reports wall time per lane count", runtime.NumCPU())
	}

	// ---- Leg 3: snapshot compaction --------------------------------
	preTxns, postTxns := 2000, 100
	if opts.Quick {
		preTxns = 400
	}
	mem := storage.NewMemBackend()
	w, err := storage.NewShardedWAL(mem, storage.SegmentedOptions{Shards: 4, SegmentBytes: 8 << 10})
	if err != nil {
		return nil, err
	}
	state := map[string]storage.Value{}
	for i := 1; i <= preTxns; i++ {
		obj := fmt.Sprintf("o%d", i%97)
		if err := logCommit(w, int64(i), obj, storage.Value(i)); err != nil {
			return nil, err
		}
		state[obj] = storage.Value(i)
	}
	if err := w.Checkpoint(state); err != nil {
		return nil, err
	}
	for i := preTxns + 1; i <= preTxns+postTxns; i++ {
		obj := fmt.Sprintf("o%d", i%97)
		if err := logCommit(w, int64(i), obj, storage.Value(i)); err != nil {
			return nil, err
		}
		state[obj] = storage.Value(i)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	set, err := mem.SegmentSet()
	if err != nil {
		return nil, err
	}
	st, r, err := storage.RecoverSegmented(set, nil)
	if err != nil {
		return nil, err
	}
	replayOK := r.Clean() && r.Committed == postTxns && r.SnapshotGSN > 0
	stateOK := true
	snap := st.Snapshot()
	for obj, v := range state {
		if snap[obj] != v {
			stateOK = false
		}
	}
	rep.AddClaim(replayOK && stateOK,
		"compaction: after a checkpoint at txn %d, recovery replays only the %d post-snapshot commits (%d records, snapshot GSN %d) and reproduces the full state",
		preTxns, r.Committed, r.Records, r.SnapshotGSN)

	rep.AddNote("the fsync device is simulated (fixed %v sleep per sync) so the latency comparison isolates the protocol, not the disk; rssim -wal <dir> -group-commit runs the same log against real files", fsyncCost)
	return rep, nil
}

// fsyncDevice models the legacy discipline: every commit takes the
// log's single mutex and pays one full fsync.
type fsyncDevice struct {
	mu     sync.Mutex
	cost   time.Duration
	fsyncs int64
}

func (d *fsyncDevice) commit() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	time.Sleep(d.cost)
	d.fsyncs++
	return nil
}

func (d *fsyncDevice) count() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fsyncs
}

// runCommitters drives writers goroutines through txns synchronous
// commits each, recording per-commit latency into stats.
func runCommitters(writers, txns int, stats *metrics.Stats, commit func(id int64) error) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				id := int64(g*1_000_000 + i + 1)
				start := time.Now()
				if err := commit(id); err != nil {
					return
				}
				el := float64(time.Since(start).Microseconds())
				mu.Lock()
				stats.Add(el)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
}

// timeLegacyRecovery replays the same single-write history through the
// legacy single-file WAL, adds its row to tab, and returns the best-of-5
// recovery time.
func timeLegacyRecovery(txns int, tab *metrics.Table) (time.Duration, error) {
	var buf bytes.Buffer
	lw := storage.NewWAL(&buf)
	for i := 1; i <= txns; i++ {
		id := int64(i)
		if err := lw.Append(storage.WALRecord{Kind: storage.WALBegin, Instance: id}); err != nil {
			return 0, err
		}
		if err := lw.Append(storage.WALRecord{Kind: storage.WALWrite, Instance: id, Object: fmt.Sprintf("o%d", i%997), Value: storage.Value(i)}); err != nil {
			return 0, err
		}
		if err := lw.Append(storage.WALRecord{Kind: storage.WALCommit, Instance: id}); err != nil {
			return 0, err
		}
	}
	data := buf.Bytes()
	var best time.Duration
	var records, committed int
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		_, r, err := storage.Recover(bytes.NewReader(data), nil)
		if err != nil {
			return 0, err
		}
		if r.Committed != txns {
			return 0, fmt.Errorf("legacy recovery: %d of %d commits", r.Committed, txns)
		}
		el := time.Since(start)
		if best == 0 || el < best {
			best = el
		}
		records, committed = r.Records, r.Committed
	}
	tab.AddRow("single-wal", records, best.Round(10*time.Microsecond), committed)
	return best, nil
}

// buildRecoverySet logs txns single-write transactions over lanes and
// returns the crash image.
func buildRecoverySet(lanes, txns int) (*storage.SegmentSet, error) {
	mem := storage.NewMemBackend()
	w, err := storage.NewShardedWAL(mem, storage.SegmentedOptions{Shards: lanes, SegmentBytes: 256 << 10})
	if err != nil {
		return nil, err
	}
	for i := 1; i <= txns; i++ {
		if err := logCommit(w, int64(i), fmt.Sprintf("o%d", i%997), storage.Value(i)); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return mem.SegmentSet()
}

// logCommit appends one begin/write/commit transaction without waiting
// per record (the closing Sync in Close settles durability).
func logCommit(w *storage.ShardedWAL, id int64, obj string, v storage.Value) error {
	if err := w.Append(storage.WALRecord{Kind: storage.WALBegin, Instance: id}); err != nil {
		return err
	}
	if err := w.Append(storage.WALRecord{Kind: storage.WALWrite, Instance: id, Object: obj, Value: v}); err != nil {
		return err
	}
	return w.Append(storage.WALRecord{Kind: storage.WALCommit, Instance: id})
}
