// Package analysistest runs one rsvet analyzer over a fixture
// directory and matches its diagnostics against want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest:
//
//	sh.mu.Lock()
//	other.mu.Lock() // want `acquired while`
//
// Every line carrying a `// want ...` backquoted regexp must receive
// a diagnostic whose message matches, and every diagnostic must be
// wanted. Fixtures live in internal/analysis/testdata/src/<name> and
// may import module packages; they are loaded standalone (not part of
// the module package tree), type-checked against the module's
// dependency export data.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"relser/internal/analysis"
	"relser/internal/analysis/checker"
	"relser/internal/analysis/load"
)

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Run applies the analyzer to the fixture directory (relative to the
// caller's working directory, conventionally "testdata/src/<name>")
// and reports mismatches between diagnostics and want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	moduleDir, err := findModuleDir()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := load.Dir(moduleDir, fixture)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", fixture, err)
	}
	findings, err := checker.Run([]*load.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		for i, text := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("analysistest: %s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
				}
				wants[key{name, i + 1}] = append(wants[key{name, i + 1}], re)
			}
		}
	}

	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", f.Pos, f.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
		}
	}
}

// findModuleDir walks up from the working directory to the module
// root (the directory holding go.mod).
func findModuleDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
