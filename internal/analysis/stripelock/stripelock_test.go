package stripelock_test

import (
	"testing"

	"relser/internal/analysis/analysistest"
	"relser/internal/analysis/stripelock"
)

func TestStripelock(t *testing.T) {
	analysistest.Run(t, stripelock.Analyzer, "../testdata/src/stripelock")
}
