// Package stripelock enforces the stripe-mutex discipline of the
// sharded hot path (internal/txn's driver shards, internal/sched's
// striped lock tables, internal/storage's store stripes):
//
//  1. Stripe mutexes of one stripe array must be acquired in ascending
//     index order, and never nested unless that order is provable
//     (both indices constant). Nesting two distinct stripes that the
//     analyzer cannot order — or re-acquiring a held stripe — is
//     reported.
//  2. While a stripe mutex is held, the critical section must stay
//     local: no channel send, no Broadcast/Signal on a condition
//     variable that does not belong to the held stripe, and no
//     fault-injector consultation (Fire/FireCut/Wedge) — each of
//     those hands control to another goroutine or to the seeded
//     injector while same-shard neighbors are blocked.
//
// A stripe mutex is a sync.Mutex/RWMutex owned (as a field or by
// embedding) by a struct whose type name contains "stripe" or "shard"
// (case-insensitive): driverShard, s2plStripe, toStripe, storeStripe.
// Tracking is intraprocedural; functions documented with an
// "//rsvet:locks <expr>" directive are analyzed as if <expr> were
// locked on entry (the repo's "called with sh.mu held" contracts).
// Deliberate violations — the shard.stall fault point fires under the
// shard lock by design — carry //rsvet:allow stripelock suppressions.
package stripelock

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"relser/internal/analysis"
)

// Analyzer is the stripe-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "stripelock",
	Doc:  "check stripe-mutex ordering and forbidden operations under a held stripe",
	Run:  run,
}

var stripeTypeRe = regexp.MustCompile(`(?i)(stripe|shard)`)

// faultInjectorPath is the fault injector's package; consulting it
// while a stripe is held serializes the injector's deterministic
// schedule behind the stripe and stalls same-shard neighbors.
const faultInjectorPath = "relser/internal/fault"

// held is one currently-held stripe mutex.
type held struct {
	expr string // printed mutex expression, e.g. "sh.mu"
	base string // owning stripe expression, e.g. "sh" or "p.stripes[i]"
	arr  string // stripe array expression if indexed, e.g. "p.stripes"
	idx  ast.Expr
	pos  token.Pos
}

type walker struct {
	pass *analysis.Pass
}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var entry []held
			for _, expr := range analysis.LocksDirective(fn) {
				entry = append(entry, held{expr: expr, base: strings.TrimSuffix(expr, ".mu")})
			}
			w.stmts(fn.Body.List, entry)
		}
	}
	return nil
}

// stmts scans a statement sequence linearly, threading the held-lock
// set through it, and returns the set at the end of the sequence.
// Branch and loop bodies are scanned with a copy of the entry set and
// assumed lock-balanced (the codebase convention); a deferred Unlock
// keeps its mutex in the set, which is exactly the "held until return"
// semantics the checks need.
func (w *walker) stmts(list []ast.Stmt, locks []held) []held {
	for _, stmt := range list {
		locks = w.stmt(stmt, locks)
	}
	return locks
}

func (w *walker) stmt(stmt ast.Stmt, locks []held) []held {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return w.expr(s.X, locks)
	case *ast.SendStmt:
		w.checkSend(s, locks)
		w.exprOnly(s.Value, locks)
		return locks
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprOnly(e, locks)
		}
		return locks
	case *ast.DeferStmt:
		// A deferred Unlock releases at return: the mutex stays held
		// for the remainder of the function, so keep it in the set.
		// Other deferred calls run after the body; skip their args.
		return locks
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, nil)
		}
		return locks
	case *ast.BlockStmt:
		w.stmts(s.List, append([]held(nil), locks...))
		return locks
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, locks)
		}
		w.exprOnly(s.Cond, locks)
		w.stmts(s.Body.List, append([]held(nil), locks...))
		if s.Else != nil {
			w.stmt(s.Else, append([]held(nil), locks...))
		}
		return locks
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, locks)
		}
		w.stmts(s.Body.List, append([]held(nil), locks...))
		return locks
	case *ast.RangeStmt:
		w.stmts(s.Body.List, append([]held(nil), locks...))
		return locks
	case *ast.SwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.stmts(cc.Body, append([]held(nil), locks...))
			}
		}
		return locks
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.stmts(cc.Body, append([]held(nil), locks...))
			}
		}
		return locks
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					w.checkSend(send, locks)
				}
				w.stmts(cc.Body, append([]held(nil), locks...))
			}
		}
		return locks
	case *ast.ReturnStmt, *ast.BranchStmt, *ast.IncDecStmt, *ast.DeclStmt,
		*ast.LabeledStmt, *ast.EmptyStmt:
		return locks
	default:
		return locks
	}
}

// expr handles an expression statement: mutex transitions and the
// forbidden-call checks.
func (w *walker) expr(e ast.Expr, locks []held) []held {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return locks
	}
	if h, op, isStripe := w.mutexOp(call); op != "" && isStripe {
		switch op {
		case "Lock", "RLock":
			w.checkOrder(h, locks)
			return append(locks, h)
		case "Unlock", "RUnlock":
			for i, l := range locks {
				if l.expr == h.expr {
					return append(append([]held(nil), locks[:i]...), locks[i+1:]...)
				}
			}
			return locks
		}
	}
	w.exprOnly(e, locks)
	return locks
}

// exprOnly checks an expression tree for forbidden calls under held
// stripes without changing the lock set.
func (w *walker) exprOnly(e ast.Expr, locks []held) {
	if e == nil || len(locks) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, nil)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.checkCondCall(call, locks)
		w.checkFaultCall(call, locks)
		return true
	})
}

// checkOrder reports nesting violations when acquiring h with locks
// already held.
func (w *walker) checkOrder(h held, locks []held) {
	for _, l := range locks {
		if l.expr == h.expr {
			w.pass.Reportf(h.pos, "stripe mutex %s acquired while already held (self-deadlock)", h.expr)
			continue
		}
		if l.arr != "" && l.arr == h.arr {
			ci, iok := w.constInt(l.idx)
			cj, jok := w.constInt(h.idx)
			switch {
			case iok && jok && cj > ci:
				// Provably ascending: allowed.
			case iok && jok:
				w.pass.Reportf(h.pos,
					"stripe %s[%d] locked while %s[%d] is held; stripes must be acquired in ascending index order",
					h.arr, cj, l.arr, ci)
			default:
				w.pass.Reportf(h.pos,
					"stripe mutex %s acquired while %s is held and the index order cannot be proven ascending",
					h.expr, l.expr)
			}
			continue
		}
		w.pass.Reportf(h.pos,
			"stripe mutex %s acquired while stripe mutex %s is held; nested stripes need a provable ascending order",
			h.expr, l.expr)
	}
}

func (w *walker) checkSend(s *ast.SendStmt, locks []held) {
	if len(locks) == 0 {
		return
	}
	w.pass.Reportf(s.Arrow,
		"channel send on %s while stripe mutex %s is held; sends can block the whole stripe",
		render(s.Chan), locks[0].expr)
}

// checkCondCall flags Broadcast/Signal on a sync.Cond that does not
// belong to a held stripe (waking the stripe's own cond under its
// mutex is the standard pattern and stays allowed).
func (w *walker) checkCondCall(call *ast.CallExpr, locks []held) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Broadcast" && sel.Sel.Name != "Signal") {
		return
	}
	if !isNamed(w.typeOf(sel.X), "sync", "Cond") {
		return
	}
	condBase := render(sel.X)
	if dot := strings.LastIndex(condBase, "."); dot >= 0 {
		condBase = condBase[:dot]
	}
	for _, l := range locks {
		if condBase != l.base {
			w.pass.Reportf(call.Pos(),
				"%s on foreign condition variable %s while stripe mutex %s is held",
				sel.Sel.Name, render(sel.X), l.expr)
			return
		}
	}
}

// checkFaultCall flags fault-injector consultations under a stripe.
func (w *walker) checkFaultCall(call *ast.CallExpr, locks []held) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Fire", "FireCut", "Wedge":
	default:
		return
	}
	obj, ok := w.pass.TypesInfo.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != faultInjectorPath {
		return
	}
	w.pass.Reportf(call.Pos(),
		"fault injector %s consulted while stripe mutex %s is held; injection under a stripe stalls same-shard neighbors",
		sel.Sel.Name, locks[0].expr)
}

// mutexOp recognizes Lock/RLock/Unlock/RUnlock calls on a stripe
// mutex and returns its descriptor.
func (w *walker) mutexOp(call *ast.CallExpr) (held, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return held{}, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return held{}, "", false
	}
	recv := sel.X // the mutex expression, or the stripe for embedding
	t := w.typeOf(recv)
	var stripe ast.Expr
	switch {
	case isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex"):
		// Field form: stripe.mu.Lock(). The owner is the selector base.
		s, ok := recv.(*ast.SelectorExpr)
		if !ok || !isStripeType(w.typeOf(s.X)) {
			return held{}, sel.Sel.Name, false
		}
		stripe = s.X
	case isStripeType(t):
		// Embedded form: stripe.Lock().
		stripe = recv
	default:
		return held{}, sel.Sel.Name, false
	}
	h := held{expr: render(recv), base: render(stripe), pos: call.Pos()}
	if ix, ok := stripe.(*ast.IndexExpr); ok {
		h.arr = render(ix.X)
		h.idx = ix.Index
	}
	return h, sel.Sel.Name, true
}

func (w *walker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (w *walker) constInt(e ast.Expr) (int64, bool) {
	if e == nil {
		return 0, false
	}
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// isStripeType reports whether t (after pointer indirection) is a
// named struct whose name marks it a stripe/shard.
func isStripeType(t types.Type) bool {
	t = deref(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return false
	}
	return stripeTypeRe.MatchString(named.Obj().Name())
}

func isNamed(t types.Type, pkg, name string) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkg
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// render prints an expression compactly for identity comparison and
// diagnostics.
func render(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
