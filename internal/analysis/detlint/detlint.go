// Package detlint guards the determinism contract that record/replay
// (DESIGN.md §5.5) rests on: nothing that feeds an engine decision may
// read the wall clock, draw from unseeded randomness, or branch on Go
// map iteration order. A violation is the class of bug that silently
// breaks `.rsrec` byte-identity — the recording replays on the same
// seed yet diverges because some decision consulted a source the seed
// does not pin.
//
// Deterministic roots are
//
//   - the engine's decision-stage methods (engine.Core's Admit,
//     Decide, Unrecoverable, TryCommit, AbortCascade and AbortAll);
//   - every function of internal/record and internal/replay (the
//     capture and re-execution halves of the harness);
//   - any function whose doc comment carries //rsvet:deterministic.
//
// Two checks with different reach:
//
//  1. Interprocedural: a call to time.Now/Since/Until (or the timer
//     constructors) or to a math/rand global-source function anywhere
//     in the call graph reachable from a root is reported at the call
//     site, with the shortest root chain in the message. Methods on a
//     *rand.Rand instance are exempt — instances are seeded from the
//     run config by convention.
//  2. Local: a `range` over a map directly inside a root function is
//     reported. Order-insensitive folds are common, so this check
//     deliberately does not follow calls; a deliberate fold carries
//     //rsvet:allow detlint with its order-insensitivity argument.
//
// Soundness caveats (documented, not accidental): calls through
// function values and interfaces are not followed, and goroutines
// spawned with `go` are outside the synchronous contract.
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"relser/internal/analysis"
	"relser/internal/analysis/callgraph"
)

// Analyzer is the determinism-contract check.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc:  "check that no wall clock, unseeded randomness or map-order dependence is reachable from deterministic roots",
	Run:  run,
}

const (
	enginePath = "relser/internal/engine"
	recordPath = "relser/internal/record"
	replayPath = "relser/internal/replay"
)

// decisionStages are the engine.Core methods whose control flow decides
// transaction outcomes; everything they reach must be pinned by the
// run seed.
var decisionStages = map[string]bool{
	"Admit": true, "Decide": true, "Unrecoverable": true,
	"TryCommit": true, "AbortCascade": true, "AbortAll": true,
}

// wallClock lists time-package functions whose results depend on when
// the program runs.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// globalRand lists math/rand (and v2) package-level functions backed by
// the shared, unseeded-by-default source. rand.New/NewSource are fine:
// they construct the seeded instances the engine is supposed to use.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

// finding is one precomputed diagnostic, attached to the package whose
// pass should report it.
type finding struct {
	pkgPath string
	pos     token.Pos
	message string
}

func run(pass *analysis.Pass) error {
	if pass.Graph == nil {
		return fmt.Errorf("detlint: no call graph on pass")
	}
	findings := callgraph.Memo(pass.Graph, "detlint.findings", func() []finding {
		return compute(pass.Graph)
	})
	path := pass.Pkg.Path()
	for _, f := range findings {
		if f.pkgPath == path {
			pass.Reportf(f.pos, "%s", f.message)
		}
	}
	return nil
}

// compute derives the program-wide findings once per graph.
func compute(g *callgraph.Graph) []finding {
	roots := make(map[callgraph.FuncID]bool)
	for id, n := range g.Nodes {
		if isRoot(n) {
			roots[id] = true
		}
	}
	var out []finding
	reach := g.ReachableFrom(roots)
	ids := make([]callgraph.FuncID, 0, len(reach))
	for id := range reach {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := g.Nodes[id]
		chain := reach[id]
		for _, e := range n.Calls {
			if msg, bad := nondetCall(e.Callee); bad {
				out = append(out, finding{
					pkgPath: n.Pkg.PkgPath, pos: e.Pos,
					message: fmt.Sprintf("%s in deterministic section (reachable via %s): %s",
						callgraph.Chain{e.Callee}.String(), chain, msg),
				})
			}
		}
		if roots[id] {
			out = append(out, mapRanges(n)...)
		}
	}
	return out
}

// isRoot classifies a node as a deterministic root.
func isRoot(n *callgraph.Node) bool {
	if _, ok := analysis.Directive(n.Doc(), "deterministic"); ok {
		return true
	}
	switch n.Pkg.PkgPath {
	case recordPath, replayPath:
		return n.Decl != nil
	case enginePath:
		return n.Decl != nil && n.Decl.Recv != nil &&
			recvTypeName(n) == "Core" && decisionStages[n.Decl.Name.Name]
	}
	return false
}

func recvTypeName(n *callgraph.Node) string {
	id := string(n.ID)
	open := strings.IndexByte(id, '(')
	close := strings.IndexByte(id, ')')
	if open < 0 || close < open {
		return ""
	}
	return strings.TrimPrefix(id[open+1:close], "*")
}

// nondetCall classifies a callee identity as a nondeterminism source.
func nondetCall(id callgraph.FuncID) (string, bool) {
	s := string(id)
	if strings.ContainsRune(s, '(') {
		return "", false // methods: seeded *rand.Rand instances etc.
	}
	dot := strings.LastIndexByte(s, '.')
	if dot < 0 {
		return "", false
	}
	pkg, name := s[:dot], s[dot+1:]
	switch pkg {
	case "time":
		if wallClock[name] {
			return "wall-clock reads change engine decisions between record and replay; derive times from the run's logical clock or seed", true
		}
	case "math/rand", "math/rand/v2":
		if globalRand[name] {
			return "the global rand source is not pinned by the run seed; draw from a rand.Rand seeded from the config", true
		}
	}
	return "", false
}

// mapRanges flags `range` statements over map-typed expressions
// directly inside a root function.
func mapRanges(n *callgraph.Node) []finding {
	var out []finding
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false // literals are their own nodes, not roots
		}
		rng, ok := node.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := n.Pkg.TypesInfo.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		out = append(out, finding{
			pkgPath: n.Pkg.PkgPath, pos: rng.Pos(),
			message: fmt.Sprintf(
				"map iteration in deterministic root %s: range order varies between runs; iterate a sorted copy, or document order-insensitivity with //rsvet:allow detlint",
				n.Name()),
		})
		return true
	})
	return out
}
