package detlint_test

import (
	"testing"

	"relser/internal/analysis/analysistest"
	"relser/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, detlint.Analyzer, "../testdata/src/detlint")
}
