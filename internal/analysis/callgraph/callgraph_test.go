package callgraph_test

import (
	"os"
	"path/filepath"
	"testing"

	"relser/internal/analysis/callgraph"
	"relser/internal/analysis/load"
)

func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	moduleDir, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(moduleDir, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", moduleDir, err)
	}
	pkg, err := load.Dir(moduleDir, "../testdata/src/callgraph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return callgraph.Build([]*load.Package{pkg})
}

func TestEdgesAndLiterals(t *testing.T) {
	g := buildFixture(t)
	for _, id := range []callgraph.FuncID{
		"fixture.a", "fixture.b", "fixture.c", "fixture.d", "fixture.e",
		"fixture.b$1", "fixture.e$1",
	} {
		if g.Nodes[id] == nil {
			t.Fatalf("missing node %s (have %d nodes)", id, len(g.Nodes))
		}
	}

	callees := func(id callgraph.FuncID) map[callgraph.FuncID]bool {
		out := map[callgraph.FuncID]bool{}
		for _, e := range g.Nodes[id].Calls {
			out[e.Callee] = true
		}
		return out
	}
	if got := callees("fixture.a"); !got["fixture.b"] {
		t.Errorf("a should call b, got %v", got)
	}
	// The deferred literal is part of b's synchronous behavior.
	if got := callees("fixture.b"); !got["fixture.c"] || !got["fixture.b$1"] {
		t.Errorf("b should reach c and its literal, got %v", got)
	}
	if got := callees("fixture.b$1"); !got["fixture.d"] {
		t.Errorf("b$1 should call d, got %v", got)
	}
	// A goroutine body is a node but not a synchronous edge.
	if got := callees("fixture.e"); got["fixture.e$1"] {
		t.Errorf("go-spawned literal must not be an edge of e, got %v", got)
	}
}

func TestCallersAndTransitive(t *testing.T) {
	g := buildFixture(t)
	callers := g.Callers("fixture.c")
	want := map[callgraph.FuncID]bool{"fixture.b": true, "fixture.e$1": true}
	for _, id := range callers {
		if !want[id] {
			t.Errorf("unexpected caller of c: %s", id)
		}
		delete(want, id)
	}
	for id := range want {
		t.Errorf("missing caller of c: %s", id)
	}

	reachesD := g.Transitive(func(n *callgraph.Node) bool { return n.ID == "fixture.d" })
	for _, id := range []callgraph.FuncID{"fixture.d", "fixture.b$1", "fixture.b", "fixture.a"} {
		if !reachesD[id] {
			t.Errorf("%s should transitively reach d", id)
		}
	}
	if reachesD["fixture.e"] {
		t.Error("e must not reach d (goroutine boundary)")
	}
}

func TestReachableFromChains(t *testing.T) {
	g := buildFixture(t)
	reach := g.ReachableFrom(map[callgraph.FuncID]bool{"fixture.a": true})
	if _, ok := reach["fixture.e"]; ok {
		t.Error("e is not reachable from a")
	}
	chain, ok := reach["fixture.d"]
	if !ok {
		t.Fatal("d should be reachable from a through b's literal")
	}
	if got := chain.String(); got != "fixture.a → fixture.b → fixture.b$1 → fixture.d" {
		t.Errorf("unexpected chain to d: %s", got)
	}
}

func TestMemo(t *testing.T) {
	g := buildFixture(t)
	calls := 0
	compute := func() int { calls++; return 42 }
	if v := callgraph.Memo(g, "test.key", compute); v != 42 {
		t.Fatalf("memo value = %d", v)
	}
	if v := callgraph.Memo(g, "test.key", compute); v != 42 || calls != 1 {
		t.Fatalf("memo recomputed: v=%d calls=%d", v, calls)
	}
}
