// Package callgraph builds a lightweight interprocedural call graph
// over the packages the rsvet loader type-checked, so analyzers can
// follow a call from engine.Core into internal/storage or a user
// workload without golang.org/x/tools/go/ssa.
//
// Nodes are declared functions and function literals of the loaded
// (source-checked) packages; edges are statically resolvable calls:
// direct calls of package functions, method calls resolved through the
// static receiver type, and nested function literals (a literal counts
// as part of its enclosing function's synchronous behavior, whether
// invoked, deferred, or handed onward — conservative in the flagging
// direction). Calls through interface values, function-typed
// variables and fields stay unresolved — the graph records the callee
// identity (for interface methods) but has no body to follow. Calls in
// `go` statements are deliberately not edges: the spawned goroutine's
// behavior is not part of the caller's synchronous contract, which is
// what the contract analyzers (detlint, walsync, hookshape) reason
// about.
//
// Identity is name-based, not object-based: the loader type-checks
// each target package against the *export data* of its dependencies,
// so the *types.Func for storage.Store.Write seen from internal/txn is
// a different object than the one minted when internal/storage itself
// is checked from source. A FuncID ("pkg/path.(*Recv).Name") is stable
// across that split and lets an edge resolved from export data land on
// the node built from source.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"relser/internal/analysis/load"
)

// FuncID names a function uniquely across the loaded program:
// "pkg/path.Name" for package functions, "pkg/path.(Recv).Name" or
// "pkg/path.(*Recv).Name" for methods, and "parentID$n" for the n-th
// function literal inside parent.
type FuncID string

// Node is one function with a known body.
type Node struct {
	ID  FuncID
	Pkg *load.Package
	// Decl is the declaration; nil for function literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Body is the function body (never nil for a node).
	Body *ast.BlockStmt
	// Calls are the statically resolved call sites, in source order.
	Calls []Edge
}

// Name returns the declared name, or the parent-qualified literal tag.
func (n *Node) Name() string {
	if n.Decl != nil {
		return n.Decl.Name.Name
	}
	return string(n.ID[strings.LastIndexByte(string(n.ID), '.')+1:])
}

// Pos returns the function's position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Doc returns the declaration's doc comment (nil for literals).
func (n *Node) Doc() *ast.CommentGroup {
	if n.Decl != nil {
		return n.Decl.Doc
	}
	return nil
}

// Edge is one resolved call site.
type Edge struct {
	// Callee is the target's identity. The graph may or may not hold a
	// node for it: std-lib and export-data callees have no body here.
	Callee FuncID
	// Pos is the call position in the caller.
	Pos token.Pos
	// Call is the call expression.
	Call *ast.CallExpr
}

// Graph is the program-wide call graph plus a memo table analyzers use
// to share derived facts across per-package passes.
type Graph struct {
	// Nodes maps every function with a loaded body.
	Nodes map[FuncID]*Node

	mu      sync.Mutex
	memo    map[string]any
	callers map[FuncID][]FuncID
}

// Build constructs the graph over the loaded packages.
func Build(pkgs []*load.Package) *Graph {
	g := &Graph{Nodes: make(map[FuncID]*Node), memo: make(map[string]any)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{ID: IDOf(obj), Pkg: pkg, Decl: fn, Body: fn.Body}
				g.Nodes[n.ID] = n
				g.scan(n)
			}
		}
	}
	return g
}

// scan walks one function body, recording resolved call edges and
// materializing nodes for nested function literals.
func (g *Graph) scan(n *Node) {
	lits := 0
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			lits++
			child := &Node{
				ID: FuncID(fmt.Sprintf("%s$%d", n.ID, lits)), Pkg: n.Pkg,
				Lit: e, Body: e.Body,
			}
			g.Nodes[child.ID] = child
			g.scan(child)
			// A literal defined here is treated as part of the enclosing
			// function's synchronous behavior (invoked, deferred, or
			// handed to a callee that invokes it) — conservative in the
			// flagging direction for the contract analyzers.
			n.Calls = append(n.Calls, Edge{Callee: child.ID, Pos: e.Pos()})
			return false // the child scanned its own body
		case *ast.GoStmt:
			// Not a synchronous edge; still scan nested literals so they
			// exist as nodes (hook analyzers may be handed one).
			ast.Inspect(e.Call, func(inner ast.Node) bool {
				if lit, ok := inner.(*ast.FuncLit); ok {
					lits++
					child := &Node{
						ID: FuncID(fmt.Sprintf("%s$%d", n.ID, lits)), Pkg: n.Pkg,
						Lit: lit, Body: lit.Body,
					}
					g.Nodes[child.ID] = child
					g.scan(child)
					return false
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if id, ok := g.calleeID(n.Pkg, e); ok {
				n.Calls = append(n.Calls, Edge{Callee: id, Pos: e.Pos(), Call: e})
			}
			return true
		}
		return true
	}
	ast.Inspect(n.Body, walk)
}

// calleeID resolves a call expression to a callee identity. Type
// conversions and builtin calls resolve to nothing.
func (g *Graph) calleeID(pkg *load.Package, call *ast.CallExpr) (FuncID, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.TypesInfo.Uses[fun].(*types.Func); ok {
			return IDOf(fn), true
		}
		if _, ok := pkg.TypesInfo.Defs[fun].(*types.Func); ok {
			return IDOf(pkg.TypesInfo.Defs[fun].(*types.Func)), true
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return IDOf(fn), true
		}
	case *ast.FuncLit:
		// Immediately invoked literal: the literal node was (or will
		// be) materialized by scan; the edge would need its ID, which
		// depends on visit order. The literal's body is scanned either
		// way, so facts computed per-node still see it; skip the edge.
	}
	return "", false
}

// CalleeOf resolves a call expression appearing in pkg to its callee
// identity, when statically resolvable — the same resolution edges are
// built from, for analyzers that need per-call-site classification.
func (g *Graph) CalleeOf(pkg *load.Package, call *ast.CallExpr) (FuncID, bool) {
	return g.calleeID(pkg, call)
}

// IDOf computes the stable name-based identity of a function object.
func IDOf(fn *types.Func) FuncID {
	if fn.Pkg() == nil {
		return FuncID("builtin." + fn.Name())
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		name := t.String()
		if named, isNamed := t.(*types.Named); isNamed {
			name = named.Obj().Name()
		}
		return FuncID(fn.Pkg().Path() + ".(" + ptr + name + ")." + fn.Name())
	}
	return FuncID(fn.Pkg().Path() + "." + fn.Name())
}

// Lookup returns the node for a function object, if its body was
// loaded from source.
func (g *Graph) Lookup(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[IDOf(fn)]
}

// LitNode returns the node materialized for a function literal.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node {
	for _, n := range g.Nodes {
		if n.Lit == lit {
			return n
		}
	}
	return nil
}

// Callers returns the IDs of nodes with an edge to id, sorted.
func (g *Graph) Callers(id FuncID) []FuncID {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.callers == nil {
		g.callers = make(map[FuncID][]FuncID)
		for _, n := range g.Nodes {
			seen := make(map[FuncID]bool)
			for _, e := range n.Calls {
				if !seen[e.Callee] {
					seen[e.Callee] = true
					g.callers[e.Callee] = append(g.callers[e.Callee], n.ID)
				}
			}
		}
		for _, ids := range g.callers {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
	}
	return g.callers[id]
}

// Memo returns the cached value for key, computing and caching it on
// first use. Analyzers run once per package but derive program-wide
// facts; Memo keeps that derivation to one pass per graph.
func Memo[T any](g *Graph, key string, compute func() T) T {
	// The lock is not held across compute: derivations call back into
	// Callers (which locks g.mu) and the checker runs passes serially,
	// so a racing double-compute is not a concern.
	g.mu.Lock()
	v, ok := g.memo[key]
	g.mu.Unlock()
	if ok {
		return v.(T)
	}
	computed := compute()
	g.mu.Lock()
	g.memo[key] = computed
	g.mu.Unlock()
	return computed
}

// Transitive computes the set of nodes that either satisfy direct
// themselves or have a call path to a node that does: the bottom-up
// fact propagation every contract analyzer shares. Unresolved callees
// (no node) contribute only through direct, which receives every node
// and may inspect its edges for bodyless callees.
func (g *Graph) Transitive(direct func(*Node) bool) map[FuncID]bool {
	out := make(map[FuncID]bool)
	var work []FuncID
	for id, n := range g.Nodes {
		if direct(n) {
			out[id] = true
			work = append(work, id)
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range g.Callers(id) {
			if !out[caller] {
				out[caller] = true
				work = append(work, caller)
			}
		}
	}
	return out
}

// Chain holds a shortest call path root → … → target, as IDs.
type Chain []FuncID

// String renders "a → b → c".
func (c Chain) String() string {
	parts := make([]string, len(c))
	for i, id := range c {
		parts[i] = shortName(id)
	}
	return strings.Join(parts, " → ")
}

func shortName(id FuncID) string {
	s := string(id)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// ReachableFrom walks edges forward from the root set and returns, for
// every reached node, the shortest chain from a root (roots map to a
// one-element chain). Roots are visited in sorted order so chains are
// deterministic.
func (g *Graph) ReachableFrom(roots map[FuncID]bool) map[FuncID]Chain {
	out := make(map[FuncID]Chain)
	var queue []FuncID
	ids := make([]FuncID, 0, len(roots))
	for id := range roots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if g.Nodes[id] == nil {
			continue
		}
		out[id] = Chain{id}
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n := g.Nodes[id]
		if n == nil {
			continue
		}
		for _, e := range n.Calls {
			if _, seen := out[e.Callee]; seen || g.Nodes[e.Callee] == nil {
				continue
			}
			out[e.Callee] = append(append(Chain{}, out[id]...), e.Callee)
			queue = append(queue, e.Callee)
		}
	}
	return out
}
